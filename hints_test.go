package telamalloc

// Tests for the decision-trace hint contract: AllocatePipeline exports the
// winning stage's trace, WithHints replays one as a first-try packing that
// skips the ladder, and an unusable hint falls through to the cold path
// without changing the verdict.

import (
	"strings"
	"testing"
)

func TestPipelineExportsTraceAndReplaysIt(t *testing.T) {
	p := tightProblem(t)
	cold, err := AllocatePipeline(p, WithMaxSteps(100000))
	if err != nil {
		t.Fatalf("cold pipeline: %v", err)
	}
	if cold.Trace == nil || cold.Trace.Winner != StageSearch || len(cold.Trace.Offsets) != len(p.Buffers) {
		t.Fatalf("cold trace %+v, want the search win recorded in canonical order", cold.Trace)
	}
	if cold.HintReplayed {
		t.Fatalf("cold run claims a hint replay")
	}

	warm, err := AllocatePipeline(p, WithMaxSteps(100000), WithHints(cold.Trace))
	if err != nil {
		t.Fatalf("warm pipeline: %v", err)
	}
	if !warm.HintReplayed || warm.Winner != cold.Winner {
		t.Fatalf("warm result %+v, want a replay crediting the traced winner %q", warm, cold.Winner)
	}
	if err := warm.Solution.Validate(p); err != nil {
		t.Fatalf("replayed solution invalid: %v", err)
	}
	for _, rep := range warm.Stages {
		if !rep.Skipped || !strings.Contains(rep.SkipReason, "hint replay") {
			t.Errorf("stage %s: skipped=%v reason=%q, want the whole ladder skipped by the replay",
				rep.Stage, rep.Skipped, rep.SkipReason)
		}
	}
	if warm.Trace == nil || warm.Trace.Winner != cold.Trace.Winner {
		t.Errorf("warm trace %+v, want the hint re-exported for the next caller", warm.Trace)
	}
}

// The trace is order-invariant: a reordered copy of the problem replays the
// same trace through its own canonical permutation.
func TestPipelineHintReplayAcrossReordering(t *testing.T) {
	p := tightProblem(t)
	cold, err := AllocatePipeline(p, WithMaxSteps(100000))
	if err != nil {
		t.Fatalf("cold pipeline: %v", err)
	}
	q := Problem{Memory: p.Memory, Buffers: append([]Buffer(nil), p.Buffers...)}
	for i, j := 0, len(q.Buffers)-1; i < j; i, j = i+1, j-1 {
		q.Buffers[i], q.Buffers[j] = q.Buffers[j], q.Buffers[i]
	}
	warm, err := AllocatePipeline(q, WithMaxSteps(100000), WithHints(cold.Trace))
	if err != nil {
		t.Fatalf("reordered pipeline: %v", err)
	}
	if !warm.HintReplayed {
		t.Fatalf("reordered copy did not replay the trace")
	}
	if err := warm.Solution.Validate(q); err != nil {
		t.Fatalf("replayed solution invalid for the reordered copy: %v", err)
	}
}

// A hint that does not fit — wrong shape, corrupted offsets, or nil — must
// never change the verdict: the pipeline quietly runs cold.
func TestPipelineHintFallsThroughWhenUnusable(t *testing.T) {
	p := tightProblem(t)
	cold, err := AllocatePipeline(p, WithMaxSteps(100000))
	if err != nil {
		t.Fatalf("cold pipeline: %v", err)
	}

	overlapping := &DecisionTrace{Winner: cold.Trace.Winner, Shape: cold.Trace.Shape,
		Offsets: make([]int64, len(cold.Trace.Offsets))} // all zero: co-live buffers collide
	wrongShape := &DecisionTrace{Winner: cold.Trace.Winner, Shape: "not-a-real-shape",
		Offsets: append([]int64(nil), cold.Trace.Offsets...)}
	truncated := &DecisionTrace{Winner: cold.Trace.Winner, Shape: cold.Trace.Shape,
		Offsets: cold.Trace.Offsets[:1]}
	for name, hint := range map[string]*DecisionTrace{
		"overlapping": overlapping, "wrong shape": wrongShape, "truncated": truncated, "nil": nil,
	} {
		res, rerr := AllocatePipeline(p, WithMaxSteps(100000), WithHints(hint))
		if rerr != nil {
			t.Fatalf("%s hint: %v", name, rerr)
		}
		if res.HintReplayed {
			t.Errorf("%s hint was replayed; it must fall through", name)
		}
		if res.Winner != cold.Winner || res.Degraded {
			t.Errorf("%s hint changed the verdict: winner %q degraded=%v", name, res.Winner, res.Degraded)
		}
		if verr := res.Solution.Validate(p); verr != nil {
			t.Errorf("%s hint: cold fallback invalid: %v", name, verr)
		}
	}
}

// Degraded results must not export a trace: a spill packing is not a
// solution to the original problem and replaying it would be wrong.
func TestPipelineDegradedExportsNoTrace(t *testing.T) {
	res, err := AllocatePipeline(infeasibleProblem())
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("infeasible fixture no longer degrades: %+v", res)
	}
	if res.Trace != nil {
		t.Errorf("degraded result exported a trace: %+v", res.Trace)
	}
}
