// Package telamalloc is a Go implementation of TelaMalloc, the on-chip
// memory allocator for machine-learning accelerators described in
//
//	Maas, Beaugnon, Chauhan, Ilbeyi:
//	"TelaMalloc: Efficient On-Chip Memory Allocation for Production
//	Machine Learning Accelerators", ASPLOS 2023.
//
// Given a set of buffers with fixed logical live ranges and sizes, and a
// scratchpad memory limit, Allocate assigns each buffer a non-overlapping
// address range. The problem is 2D bin packing with one fixed axis —
// NP-hard — and TelaMalloc solves it by combining domain-specific placement
// heuristics with a constraint-propagation solver that prunes infeasible
// branches early and explains conflicts so the search can backjump
// intelligently.
//
// The package also exposes the two classical baselines (a best-fit
// allocator and a greedy contention-ordered heuristic), an exact
// branch-and-bound solver for small instances, and an optional learned
// backtracking policy (see BacktrackModel).
package telamalloc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/ilp"
	"telamalloc/internal/telamon"
)

// Buffer is one allocation request: a tensor live from logical time Start
// (inclusive) to End (exclusive), occupying Size bytes. If Align > 1, the
// assigned address must be a multiple of Align.
type Buffer struct {
	Start, End int64
	Size       int64
	Align      int64
}

// Problem is a complete allocation problem.
type Problem struct {
	// Buffers are the allocation requests, in any order.
	Buffers []Buffer
	// Memory is the scratchpad capacity in bytes.
	Memory int64
	// Name optionally labels the workload for diagnostics.
	Name string
}

// Solution assigns Offsets[i] to Buffers[i].
type Solution struct {
	Offsets []int64
}

// Stats describes the search effort of an allocation.
type Stats struct {
	// Steps counts placement attempts, including failed ones.
	Steps int64
	// Placements counts successful placements (including re-placements
	// after backtracking).
	Placements int64
	// MinorBacktracks counts placements undone immediately after the
	// solver detected unsatisfiability.
	MinorBacktracks int64
	// MajorBacktracks counts exhausted decision points that forced a
	// backjump.
	MajorBacktracks int64
	// Subproblems is the number of independent components solved.
	Subproblems int
}

// Errors returned by Allocate.
var (
	// ErrNoSolution means the search space was exhausted: the problem is
	// unsatisfiable (or TelaMalloc's incomplete search could not find a
	// packing — consult SolveExact for a definitive answer on small inputs).
	ErrNoSolution = errors.New("telamalloc: no feasible packing found")
	// ErrBudget means the step budget or timeout expired first.
	ErrBudget = errors.New("telamalloc: allocation budget exhausted")
	// ErrCancelled means the WithCancel hook aborted the allocation.
	ErrCancelled = errors.New("telamalloc: allocation cancelled")
	// ErrInvalidProblem flags structurally invalid input.
	ErrInvalidProblem = errors.New("telamalloc: invalid problem")
	// ErrInternal means a component panicked — a search worker, a learned
	// policy hook, or a portfolio member — and the panic was contained at
	// the allocator boundary instead of crashing the process. The wrapped
	// message attributes the failing component. An ErrInternal result says
	// nothing about the problem's feasibility.
	ErrInternal = errors.New("telamalloc: internal allocator failure")
)

// toInternal converts the public problem to the internal representation.
func toInternal(p Problem) *buffers.Problem {
	q := &buffers.Problem{Memory: p.Memory, Name: p.Name}
	for _, b := range p.Buffers {
		q.Buffers = append(q.Buffers, buffers.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	q.Normalize()
	return q
}

// Allocate packs the problem's buffers into memory with TelaMalloc.
// A nil error guarantees the returned solution is valid: every buffer in
// bounds, aligned, and disjoint from temporal neighbours.
//
// Allocate is a thin wrapper over a shared zero-option [Allocator] handle;
// programs making repeated calls with the same options should build their
// own handle with [New] so option validation and model binding happen once.
func Allocate(p Problem, opts ...Option) (Solution, Stats, error) {
	return defaultHandle().Allocate(context.Background(), p, opts...)
}

// allocateWith runs one allocation under an already-validated config.
func allocateWith(cfg config, p Problem) (Solution, Stats, error) {
	q := toInternal(p)
	if err := q.Validate(); err != nil {
		return Solution{}, Stats{}, fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	res := core.Solve(q, cfg.finalize(q))
	st := Stats{
		Steps:           res.Stats.Steps,
		Placements:      res.Stats.Placements,
		MinorBacktracks: res.Stats.MinorBacktracks,
		MajorBacktracks: res.Stats.MajorBacktracks,
		Subproblems:     res.Subproblems,
	}
	switch res.Status {
	case telamon.Solved:
		return Solution{Offsets: res.Solution.Offsets}, st, nil
	case telamon.Budget:
		return Solution{}, st, ErrBudget
	case telamon.Cancelled:
		return Solution{}, st, ErrCancelled
	case telamon.Invalid:
		// Unreachable in practice: the problem was validated above.
		return Solution{}, st, fmt.Errorf("%w: %v", ErrInvalidProblem, res.Err)
	case telamon.Internal:
		return Solution{}, st, fmt.Errorf("%w: %v", ErrInternal, res.Err)
	default:
		return Solution{}, st, ErrNoSolution
	}
}

// Validate checks that sol is a correct packing for p.
func (sol Solution) Validate(p Problem) error {
	q := toInternal(p)
	s := &buffers.Solution{Offsets: sol.Offsets}
	return s.Validate(q)
}

// PeakUsage returns the highest address the solution uses — the smallest
// memory limit under which it would still be valid.
func (sol Solution) PeakUsage(p Problem) int64 {
	q := toInternal(p)
	s := &buffers.Solution{Offsets: sol.Offsets}
	return s.PeakUsage(q)
}

// AllocateGreedy runs the fast greedy baseline (contention-ordered skyline
// placement, §3.1 of the paper). It is orders of magnitude faster than the
// search but fails on tight instances; production systems try it first and
// fall back to Allocate.
func AllocateGreedy(p Problem) (Solution, error) {
	q := toInternal(p)
	if err := q.Validate(); err != nil {
		return Solution{}, fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	sol, err := heuristics.GreedyContention{}.Allocate(q)
	if err != nil {
		return Solution{}, ErrNoSolution
	}
	return Solution{Offsets: sol.Offsets}, nil
}

// AllocateBestFit runs the timing-unaware best-fit baseline (BFC-style).
func AllocateBestFit(p Problem) (Solution, error) {
	q := toInternal(p)
	if err := q.Validate(); err != nil {
		return Solution{}, fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	sol, err := heuristics.BestFit{}.Allocate(q)
	if err != nil {
		return Solution{}, ErrNoSolution
	}
	return Solution{Offsets: sol.Offsets}, nil
}

// SolveExact runs the exact branch-and-bound solver (the paper's ILP
// baseline). It either finds a packing, proves infeasibility
// (ErrNoSolution), or gives up at the budget (ErrBudget). Exponential in
// the worst case; intended for small instances and ground truth.
func SolveExact(p Problem, maxSteps int64, timeout time.Duration) (Solution, error) {
	q := toInternal(p)
	if err := q.Validate(); err != nil {
		return Solution{}, fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	// Timeout, not Deadline: the ILP layer resolves it when the solve
	// starts, so there is no skew between building the options and the
	// search's first node.
	res := ilp.Solve(q, nil, ilp.Options{MaxSteps: maxSteps, Timeout: timeout})
	switch res.Status {
	case ilp.Solved:
		return Solution{Offsets: res.Solution.Offsets}, nil
	case ilp.Infeasible:
		return Solution{}, ErrNoSolution
	default:
		return Solution{}, ErrBudget
	}
}

// MinimizeMemory returns the smallest memory limit for which the exact
// solver finds a packing, searching between the contention lower bound and
// p.Memory.
func MinimizeMemory(p Problem, maxSteps int64, timeout time.Duration) (int64, Solution, error) {
	q := toInternal(p)
	if err := q.Validate(); err != nil {
		return 0, Solution{}, fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	opts := ilp.Options{MaxSteps: maxSteps}
	if timeout > 0 {
		opts.Deadline = time.Now().Add(timeout)
	}
	limit, sol, ok := ilp.MinimizeMemory(q, nil, opts)
	if !ok {
		return 0, Solution{}, ErrNoSolution
	}
	return limit, Solution{Offsets: sol.Offsets}, nil
}

// MinMemoryLowerBound returns the contention peak of the problem: the sum
// of live buffer sizes maximised over time, an unconditional lower bound on
// any packing.
func MinMemoryLowerBound(p Problem) int64 {
	return buffers.Contention(toInternal(p)).Peak()
}
