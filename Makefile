GO ?= go

.PHONY: ci build test race vet bench

## ci: the full verification gate — vet, build, and the test suite under
## the race detector (the parallel subproblem solver makes -race mandatory).
ci: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...
