GO ?= go

.PHONY: ci build test race vet lint bench fuzz faultrace soak cachesoak obssoak chaossoak overloadsoak diffsoak cover

## ci: the full verification gate — lint, build, the test suite under the
## race detector (the parallel subproblem solver makes -race mandatory),
## the fault-injection suite re-run under -race, the serving-layer soak,
## the solution-cache soak, the observability soak, the subprocess chaos
## soak, the overload-control soak, the differential soak, the coverage
## floors, and a fuzz smoke of the public API.
ci: lint build race faultrace soak cachesoak obssoak chaossoak overloadsoak diffsoak cover fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint: go vet plus staticcheck when the binary is available; skipped with
## a notice otherwise (the CI image may not carry it, and lint must not be
## the reason ci cannot run from a clean checkout). Also bans fmt.Print* in
## internal/server non-test files: the serving layer reports through the obs
## registry and the tracer, never by scribbling on the process's stdout.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go vet still ran)"; \
	fi
	@bad=$$(grep -n 'fmt\.Print' internal/server/*.go | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: fmt.Print* is banned in internal/server (use obs metrics/tracer):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@bad=$$(grep -n 'time\.Sleep(' internal/client/*.go | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: bare time.Sleep is banned in internal/client (use the jittered"; \
		echo "lint: backoff helpers — fixed sleeps turn a shed fleet into a retry herd):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@bad=$$(grep -n 'time\.Sleep(' internal/server/*.go | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: bare time.Sleep is banned in internal/server (control loops are"; \
		echo "lint: ticker-driven so tests can drive them with a manual clock):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@bad=$$(grep -n 'time\.Sleep(' internal/check/*.go | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: bare time.Sleep is banned in internal/check (verification must be"; \
		echo "lint: deterministic — step budgets and start-resolved timeouts, never sleeps):"; \
		echo "$$bad"; \
		exit 1; \
	fi

## soak: the serving-layer robustness suite under the race detector —
## concurrent clients against internal/server with faults armed: exactly one
## terminal outcome per request, shedding before unbounded queue growth,
## breaker trip/probe/recovery, hedged-vs-unhedged determinism, bounded
## drain. See DESIGN.md §9.
soak:
	$(GO) test -race -count=1 -run 'Soak|Drain|Breaker|Shed|Hedge|Submit|Admit|Queue|ServeStream|Handle' ./internal/server ./cmd/telamallocd

## cachesoak: the reuse-layer acceptance soak under the race detector —
## concurrent clients replaying a fixed workload against a hedged server
## with a small cache: every cached/deduped/hint-replayed response must be
## byte-identical to the cold solve, and the cache/dedup counters must
## balance with the terminal-outcome ledger. See DESIGN.md §10.
cachesoak:
	$(GO) test -race -count=1 -run TestCacheSoak ./internal/server

## obssoak: the observability acceptance soak under the race detector — a
## hedged server under mixed load with a live scraper goroutine: the
## /metrics scrape must agree exactly with the Counters ledger after drain,
## histogram counts must equal admissions, and the tracer's span open/close
## accounting must balance with zero drops. See DESIGN.md §11.
obssoak:
	$(GO) test -race -count=1 -run 'TestObsSoak|TestMetricsScrapeMatchesSnapshot|TestTraceSpanBalance' ./internal/server

## chaossoak: the crash/restart acceptance soak under the race detector — a
## real daemon subprocess killed -9 and restarted mid-flood while a client
## fleet hammers it: every request must end in exactly one of {solved,
## degraded, typed error}, and a SIGTERM drain must complete within
## -drain-timeout with slowloris, idle, and long-solving connections armed.
## See DESIGN.md §13.
chaossoak:
	TELAMALLOC_CHAOSSOAK=1 $(GO) test -race -count=1 -run TestChaosSoak -timeout 300s ./cmd/telamallocd

## faultrace: the deterministic fault-injection harness (injected panics,
## stalls, budget starvation) under the race detector — the containment
## boundaries must hold when workers crash concurrently.
faultrace:
	$(GO) test -race -run 'Fault|Injected|Panic|Starv|Cancel' ./internal/core ./internal/faultinject ./internal/portfolio .

## overloadsoak: the overload-control acceptance soak under the race
## detector — a sustained mixed-class, mixed-tenant flood against a slowed
## server: exactly one terminal outcome per request, no solver steps on
## expired-in-queue jobs, interactive latency bounded and never shed by
## batch/background floods, the counter ledger balanced, and the brownout
## controller both engaging and disengaging with hysteresis. Plus the
## no-overload byte-identity check and the deadline/tenant/brownout unit
## suites. See DESIGN.md §14.
overloadsoak:
	$(GO) test -race -count=1 -run 'TestOverloadSoak|Priority|ClassQueue|BatchFlood|RetryAfterMonotonic|Expire|Tenant|Brownout|NoOverloadByte' ./internal/server ./cmd/telamallocd ./internal/wire

## fuzz: short native-fuzzing smoke of the public entry points — no input
## may panic, nil error implies a valid packing, every error wraps exactly
## one public sentinel — plus the cache-key invariant: fingerprint-equal
## problems must accept each other's replayed solutions, and the wire
## schema's untrusted-line parsing (FuzzWire) must never panic and must
## re-encode to a fixed point.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzAllocate -fuzztime=10s .
	$(GO) test -run='^$$' -fuzz=FuzzPipeline -fuzztime=10s .
	$(GO) test -run='^$$' -fuzz=FuzzFingerprint -fuzztime=10s ./internal/cache
	$(GO) test -run='^$$' -fuzz=FuzzWire -fuzztime=10s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzCheck -fuzztime=10s ./internal/check

## diffsoak: the differential verification soak under the race detector —
## a client fleet and a bare Allocator solve the same seeded adversarial
## stream, and every served response (cache-hit, deduped, hedged, or with
## the brownout controller armed but idle) must be byte-identical to the
## direct run and accepted by the independent checker; plus the oracle
## sweep: the heuristic ladder must never claim a packing on an instance
## the exact solver proves infeasible. See DESIGN.md §15.
diffsoak:
	TELAMALLOC_DIFFSOAK=1 $(GO) test -race -count=1 -run TestDiffSoak -timeout 300s ./cmd/telamallocd
	$(GO) test -race -count=1 -run 'TestDifferential|TestScorecardRegression' ./internal/check

## cover: coverage floors for the verification subsystem and the exact
## oracle it leans on — the checker is the last line of defence, so its own
## test coverage is gated, not merely reported.
cover:
	@$(GO) test -cover ./internal/check ./internal/ilp | tee /tmp/telamalloc_cover.txt; \
	awk '{ for (i=1;i<=NF;i++) if ($$i=="coverage:") { c=$$(i+1); sub(/%/,"",c); \
		floor = ($$2 ~ /internal\/check/) ? 80 : 85; \
		if (c+0 < floor) { printf "cover: %s at %s%% is below the %d%% floor\n", $$2, c, floor; bad=1 } } } \
		END { exit bad }' /tmp/telamalloc_cover.txt

bench:
	$(GO) test -bench=. -benchmem ./...
