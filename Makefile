GO ?= go

.PHONY: ci build test race vet lint bench fuzz faultrace soak cachesoak obssoak chaossoak overloadsoak

## ci: the full verification gate — lint, build, the test suite under the
## race detector (the parallel subproblem solver makes -race mandatory),
## the fault-injection suite re-run under -race, the serving-layer soak,
## the solution-cache soak, the observability soak, the subprocess chaos
## soak, the overload-control soak, and a fuzz smoke of the public API.
ci: lint build race faultrace soak cachesoak obssoak chaossoak overloadsoak fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint: go vet plus staticcheck when the binary is available; skipped with
## a notice otherwise (the CI image may not carry it, and lint must not be
## the reason ci cannot run from a clean checkout). Also bans fmt.Print* in
## internal/server non-test files: the serving layer reports through the obs
## registry and the tracer, never by scribbling on the process's stdout.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go vet still ran)"; \
	fi
	@bad=$$(grep -n 'fmt\.Print' internal/server/*.go | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: fmt.Print* is banned in internal/server (use obs metrics/tracer):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@bad=$$(grep -n 'time\.Sleep(' internal/client/*.go | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: bare time.Sleep is banned in internal/client (use the jittered"; \
		echo "lint: backoff helpers — fixed sleeps turn a shed fleet into a retry herd):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@bad=$$(grep -n 'time\.Sleep(' internal/server/*.go | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: bare time.Sleep is banned in internal/server (control loops are"; \
		echo "lint: ticker-driven so tests can drive them with a manual clock):"; \
		echo "$$bad"; \
		exit 1; \
	fi

## soak: the serving-layer robustness suite under the race detector —
## concurrent clients against internal/server with faults armed: exactly one
## terminal outcome per request, shedding before unbounded queue growth,
## breaker trip/probe/recovery, hedged-vs-unhedged determinism, bounded
## drain. See DESIGN.md §9.
soak:
	$(GO) test -race -count=1 -run 'Soak|Drain|Breaker|Shed|Hedge|Submit|Admit|Queue|ServeStream|Handle' ./internal/server ./cmd/telamallocd

## cachesoak: the reuse-layer acceptance soak under the race detector —
## concurrent clients replaying a fixed workload against a hedged server
## with a small cache: every cached/deduped/hint-replayed response must be
## byte-identical to the cold solve, and the cache/dedup counters must
## balance with the terminal-outcome ledger. See DESIGN.md §10.
cachesoak:
	$(GO) test -race -count=1 -run TestCacheSoak ./internal/server

## obssoak: the observability acceptance soak under the race detector — a
## hedged server under mixed load with a live scraper goroutine: the
## /metrics scrape must agree exactly with the Counters ledger after drain,
## histogram counts must equal admissions, and the tracer's span open/close
## accounting must balance with zero drops. See DESIGN.md §11.
obssoak:
	$(GO) test -race -count=1 -run 'TestObsSoak|TestMetricsScrapeMatchesSnapshot|TestTraceSpanBalance' ./internal/server

## chaossoak: the crash/restart acceptance soak under the race detector — a
## real daemon subprocess killed -9 and restarted mid-flood while a client
## fleet hammers it: every request must end in exactly one of {solved,
## degraded, typed error}, and a SIGTERM drain must complete within
## -drain-timeout with slowloris, idle, and long-solving connections armed.
## See DESIGN.md §13.
chaossoak:
	TELAMALLOC_CHAOSSOAK=1 $(GO) test -race -count=1 -run TestChaosSoak -timeout 300s ./cmd/telamallocd

## faultrace: the deterministic fault-injection harness (injected panics,
## stalls, budget starvation) under the race detector — the containment
## boundaries must hold when workers crash concurrently.
faultrace:
	$(GO) test -race -run 'Fault|Injected|Panic|Starv|Cancel' ./internal/core ./internal/faultinject ./internal/portfolio .

## overloadsoak: the overload-control acceptance soak under the race
## detector — a sustained mixed-class, mixed-tenant flood against a slowed
## server: exactly one terminal outcome per request, no solver steps on
## expired-in-queue jobs, interactive latency bounded and never shed by
## batch/background floods, the counter ledger balanced, and the brownout
## controller both engaging and disengaging with hysteresis. Plus the
## no-overload byte-identity check and the deadline/tenant/brownout unit
## suites. See DESIGN.md §14.
overloadsoak:
	$(GO) test -race -count=1 -run 'TestOverloadSoak|Priority|ClassQueue|BatchFlood|RetryAfterMonotonic|Expire|Tenant|Brownout|NoOverloadByte' ./internal/server ./cmd/telamallocd ./internal/wire

## fuzz: short native-fuzzing smoke of the public entry points — no input
## may panic, nil error implies a valid packing, every error wraps exactly
## one public sentinel — plus the cache-key invariant: fingerprint-equal
## problems must accept each other's replayed solutions, and the wire
## schema's untrusted-line parsing (FuzzWire) must never panic and must
## re-encode to a fixed point.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzAllocate -fuzztime=10s .
	$(GO) test -run='^$$' -fuzz=FuzzPipeline -fuzztime=10s .
	$(GO) test -run='^$$' -fuzz=FuzzFingerprint -fuzztime=10s ./internal/cache
	$(GO) test -run='^$$' -fuzz=FuzzWire -fuzztime=10s ./internal/wire

bench:
	$(GO) test -bench=. -benchmem ./...
