GO ?= go

.PHONY: ci build test race vet bench fuzz faultrace

## ci: the full verification gate — vet, build, the test suite under the
## race detector (the parallel subproblem solver makes -race mandatory),
## the fault-injection suite re-run under -race, and a fuzz smoke of the
## public API.
ci: vet build race faultrace fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## faultrace: the deterministic fault-injection harness (injected panics,
## stalls, budget starvation) under the race detector — the containment
## boundaries must hold when workers crash concurrently.
faultrace:
	$(GO) test -race -run 'Fault|Injected|Panic|Starv|Cancel' ./internal/core ./internal/faultinject ./internal/portfolio .

## fuzz: short native-fuzzing smoke of the public entry points — no input
## may panic, nil error implies a valid packing, every error wraps exactly
## one public sentinel.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzAllocate -fuzztime=10s .
	$(GO) test -run='^$$' -fuzz=FuzzPipeline -fuzztime=10s .

bench:
	$(GO) test -bench=. -benchmem ./...
