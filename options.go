package telamalloc

import (
	"context"
	"fmt"
	"io"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/cache"
	"telamalloc/internal/core"
	"telamalloc/internal/gbt"
	"telamalloc/internal/ilp"
	"telamalloc/internal/mlpolicy"
	"telamalloc/internal/obs"
)

// Option configures Allocate and AllocatePipeline.
type Option func(*config)

type config struct {
	core          core.Config
	model         *BacktrackModel
	gate          *StepGateModel
	gateThreshold float64
	// timeout is the wall-clock budget. It is stored as a duration and
	// resolved into core.Deadline when the solve *starts*, so a config
	// built ahead of time — or reused across calls — gets the full budget
	// on every call instead of one that silently shrank since the option
	// was applied.
	timeout time.Duration
	ctx     context.Context
	pipe    pipelineConfig
	hint    *DecisionTrace
	obsReg  *obs.Registry
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// registry resolves the metrics registry this config reports into.
func (c *config) registry() *obs.Registry {
	if c.obsReg != nil {
		return c.obsReg
	}
	return obs.Default()
}

// clone returns a copy safe to specialise with per-call options: the one
// mutable shared structure (the stage-share map) is deep-copied so a
// call-scoped WithStageShare cannot leak into the handle it came from.
func (c config) clone() config {
	if c.pipe.shares != nil {
		shares := make(map[string]float64, len(c.pipe.shares))
		for k, v := range c.pipe.shares {
			shares[k] = v
		}
		c.pipe.shares = shares
	}
	return c
}

// validate rejects structurally invalid configurations. It runs at
// Allocator construction (New), so a bad option list fails once, loudly,
// instead of failing every call — or worse, being silently reinterpreted.
func (c *config) validate() error {
	if c.timeout < 0 {
		return fmt.Errorf("%w: negative timeout %v", ErrInvalidProblem, c.timeout)
	}
	if c.core.MaxSteps < 0 {
		return fmt.Errorf("%w: negative step budget %d", ErrInvalidProblem, c.core.MaxSteps)
	}
	if c.pipe.stages != nil {
		if err := validateLadder(c.pipe.stages); err != nil {
			return err
		}
	}
	for stage, share := range c.pipe.shares {
		switch stage {
		case StageGreedy, StageBestFit, StageSearch, StageSpill:
		default:
			return fmt.Errorf("%w: stage share for unknown stage %q", ErrInvalidProblem, stage)
		}
		if share < 0 {
			return fmt.Errorf("%w: negative stage share %g for %q", ErrInvalidProblem, share, stage)
		}
	}
	if c.pipe.maxSpills < 0 {
		return fmt.Errorf("%w: negative spill cap %d", ErrInvalidProblem, c.pipe.maxSpills)
	}
	if c.gate != nil && c.gateThreshold > 1 {
		return fmt.Errorf("%w: step-gate threshold %g is not a probability", ErrInvalidProblem, c.gateThreshold)
	}
	return nil
}

// bindContext merges the call context into the config under the Allocator's
// earliest-wins deadline rule (see the Allocator doc comment). When both a
// WithContext context and a call context exist, the older one moves onto the
// cooperative-cancellation path so both are polled and whichever ends first
// stops the solve.
func (c *config) bindContext(ctx context.Context) {
	if ctx == nil || ctx == context.Background() {
		return
	}
	if c.ctx != nil {
		prev := c.core.Cancel
		done := c.ctx.Done()
		c.core.Cancel = func() bool {
			select {
			case <-done:
				return true
			default:
			}
			return prev != nil && prev()
		}
	}
	c.ctx = ctx
}

// WithObservability routes the allocation's telemetry — solver effort
// counters, per-stage histograms, the live sampled step counter — into r
// instead of the process-global obs.Default() registry. Pass a dedicated
// registry when embedding several independently-monitored allocators in one
// process, or in tests that assert on exact counter values.
func WithObservability(r *obs.Registry) Option {
	return func(c *config) { c.obsReg = r }
}

// WithMaxSteps caps the number of placement attempts (0 = unlimited).
func WithMaxSteps(n int64) Option {
	return func(c *config) { c.core.MaxSteps = n }
}

// WithTimeout aborts the allocation after d, measured from the moment the
// solve starts — not from when the option was applied — so option lists
// can be built ahead of time and reused across calls.
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithContext cancels the allocation when ctx is done — cancelled or past
// its deadline — returning ErrCancelled. Cancellation is cooperative: it is
// observed within the search's polling stride, from every parallel worker.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// WithParallelism bounds how many independent subproblems are searched
// concurrently (0 = GOMAXPROCS, 1 = sequential). The result is identical at
// every parallelism level; only wall-clock time changes.
func WithParallelism(n int) Option {
	return func(c *config) { c.core.Parallelism = n }
}

// WithCancel installs a cooperative-cancellation hook: it is polled
// periodically from every search worker (and so must be safe to call
// concurrently); the first true return aborts the allocation with
// ErrCancelled.
func WithCancel(cancel func() bool) Option {
	return func(c *config) { c.core.Cancel = cancel }
}

// WithFaultHook installs the test-only fault-injection hook at every named
// decision point the allocator announces: solver budget checks ("group<i>"),
// pipeline stage entry/exit ("stage:<name>", "stage:<name>:exit"). The hook
// may stall, panic, or return true to starve the announcing search's budget;
// panics are contained at the owning boundary and surface as ErrInternal.
// See internal/faultinject. Must not be set in production configurations —
// it exists so harnesses (and the serving layer's soak tests) can prove the
// containment contract rather than assume it.
func WithFaultHook(hook func(point string) bool) Option {
	return func(c *config) { c.core.Hook = hook }
}

// WithHints feeds a decision trace from a previous win (PipelineResult.
// Trace) back as a first-try packing. When the trace's shape fingerprint
// matches the problem and the replayed packing validates, the solve returns
// it immediately — a warm start that skips search entirely. An unusable
// trace is silently ignored; correctness never depends on the hint because
// every replayed packing is re-validated against the actual problem first.
// A nil trace is a no-op, so callers can pass a maybe-absent cache result
// unconditionally.
func WithHints(t *DecisionTrace) Option {
	return func(c *config) { c.hint = t }
}

// WithSkylinePlacement selects the simple skyline placement strategy
// (Figure 8a) instead of solver-guided placement. Mainly useful for
// experiments; solver-guided placement is strictly more capable.
func WithSkylinePlacement() Option {
	return func(c *config) { c.core.Placement = core.SkylineTop }
}

// WithoutPhases disables contention-based grouping (§5.3).
func WithoutPhases() Option {
	return func(c *config) { c.core.DisablePhases = true }
}

// WithoutSubproblemSplit disables independent-subproblem splitting.
func WithoutSubproblemSplit() Option {
	return func(c *config) { c.core.DisableSplit = true }
}

// WithStrictCandidates restricts each decision point to the paper's three
// heuristic picks per phase, instead of falling through to every unplaced
// buffer. This increases major backtracks — the regime the learned
// backtracking policy (§6) operates in. WithBacktrackModel implies it.
func WithStrictCandidates() Option {
	return func(c *config) { c.core.NoFallbackCandidates = true }
}

// WithBacktrackModel enables the learned backtracking policy of §6: on a
// major backtrack, the model ranks candidate backtrack targets and, when
// confident, overrides the default conflict-driven jump. It implies
// WithoutSubproblemSplit, since the learned policy tracks one coherent
// decision path.
func WithBacktrackModel(m *BacktrackModel) Option {
	return func(c *config) {
		c.model = m
		c.core.DisableSplit = true
		c.core.NoFallbackCandidates = true
	}
}

// StepGateModel is a trained step-level gate (§8.3 of the paper): a shallow
// tree evaluated at every decision point that decides between the cheap
// (three heuristic picks) and the expensive (full fallback) candidate path.
type StepGateModel struct {
	forest *gbt.Forest
}

// TrainStepGate collects per-decision-point risk labels from solving the
// given problems in strict candidate mode and trains the shallow gate tree.
// searchSteps bounds each collection search.
func TrainStepGate(problems []Problem, seed, searchSteps int64) (*StepGateModel, error) {
	var ds gbt.Dataset
	for _, p := range problems {
		part := mlpolicy.GateTrainingRun(toInternal(p), searchSteps)
		ds.X = append(ds.X, part.X...)
		ds.Y = append(ds.Y, part.Y...)
	}
	forest, err := mlpolicy.TrainGate(ds, seed)
	if err != nil {
		return nil, err
	}
	return &StepGateModel{forest: forest}, nil
}

// Save serialises the gate as JSON.
func (m *StepGateModel) Save(w io.Writer) error { return m.forest.Save(w) }

// LoadStepGate reads a gate saved with Save.
func LoadStepGate(r io.Reader) (*StepGateModel, error) {
	f, err := gbt.Load(r)
	if err != nil {
		return nil, err
	}
	return &StepGateModel{forest: f}, nil
}

// WithStepGate lets the trained gate decide, per decision point, whether to
// build the expensive candidate set. threshold <= 0 selects the default
// (0.5).
func WithStepGate(m *StepGateModel, threshold float64) Option {
	return func(c *config) {
		c.gate = m
		c.gateThreshold = threshold
	}
}

// finalize binds problem-dependent pieces (the learned chooser and the step
// gate) and solve-start-dependent pieces (the wall-clock deadline, the
// context) once the internal problem exists and the solve is beginning.
func (c *config) finalize(q *buffers.Problem) core.Config {
	cfg := c.core
	cfg.Obs = c.obsReg
	if c.hint != nil {
		cfg.Hint = c.hintSolution(q)
	}
	if c.timeout > 0 {
		deadline := time.Now().Add(c.timeout)
		if cfg.Deadline.IsZero() || deadline.Before(cfg.Deadline) {
			cfg.Deadline = deadline
		}
	}
	if c.ctx != nil {
		cfg.Ctx = c.ctx
	}
	if c.model != nil {
		cfg.Chooser = mlpolicy.NewChooser(c.model.forest, q)
	}
	if c.gate != nil {
		threshold := c.gateThreshold
		if threshold <= 0 {
			// The documented default: WithStepGate promises that a
			// non-positive threshold means 0.5, not "expensive path always".
			threshold = 0.5
		}
		cfg.Gate = mlpolicy.NewStepGate(c.gate.forest, q, threshold)
	}
	return cfg
}

// hintSolution replays the configured decision trace onto q, returning the
// transported packing when the shape fingerprints match and nil otherwise.
// The caller (core.Solve) re-validates the packing before trusting it, so
// this only has to be shape-safe, not correct.
func (c *config) hintSolution(q *buffers.Problem) *buffers.Solution {
	fp, perm := cache.Canonicalize(q)
	if c.hint == nil || c.hint.Shape != fp.ShapeKey {
		return nil
	}
	offsets := cache.Replay(c.hint.Offsets, perm)
	if offsets == nil {
		return nil
	}
	return &buffers.Solution{Offsets: offsets}
}

// BacktrackModel is a trained backtracking policy (a gradient boosted tree
// forest over backtrack-candidate features).
type BacktrackModel struct {
	forest *gbt.Forest
}

// LoadBacktrackModel reads a model saved with Save.
func LoadBacktrackModel(r io.Reader) (*BacktrackModel, error) {
	f, err := gbt.Load(r)
	if err != nil {
		return nil, err
	}
	return &BacktrackModel{forest: f}, nil
}

// Save serialises the model as JSON.
func (m *BacktrackModel) Save(w io.Writer) error {
	return m.forest.Save(w)
}

// TrainBacktrackModel collects imitation-learning data by solving the given
// problems with an exact-solver oracle in the loop (§6.3–6.5) and trains
// the backtracking forest. Training is deterministic per seed. oracleSteps
// bounds each oracle probe; searchSteps bounds each collection search.
func TrainBacktrackModel(problems []Problem, seed, searchSteps, oracleSteps int64) (*BacktrackModel, error) {
	var internal []*buffers.Problem
	for _, p := range problems {
		internal = append(internal, toInternal(p))
	}
	ds := mlpolicy.CollectDataset(internal, []int{100, 105, 110}, seed, searchSteps, ilp.Options{MaxSteps: oracleSteps})
	forest, err := mlpolicy.TrainModel(ds, seed)
	if err != nil {
		return nil, err
	}
	return &BacktrackModel{forest: forest}, nil
}
