package telamalloc

import (
	"context"
	"sync"
)

// Allocator is a configured, reusable allocation handle: options are
// validated, the learned models are bound, and the metrics registry is
// resolved once at construction, then every call pays only for the solve
// itself. A handle is safe for concurrent use; per-call options specialise a
// private copy of the configuration and never mutate the handle.
//
// Deadline resolution (earliest wins). Each call's effective stop time is
// the earliest of
//
//   - WithTimeout, measured from the moment the solve starts;
//   - the deadline of the call context passed to Allocate or Pipeline;
//   - the deadline of a WithContext context.
//
// Cancellation of either context, or a WithCancel hook returning true,
// stops the call as soon as it is observed — cooperatively, within the
// search's polling stride. The source of the stop picks the sentinel: an
// expired WithTimeout surfaces as ErrBudget; a done context or a firing
// WithCancel hook surfaces as ErrCancelled. When several sources are
// already expired at the same poll, cancellation (context/hook) is checked
// before the wall-clock deadline, so ErrCancelled wins ties.
type Allocator struct {
	cfg config
	pm  *pipelineMetrics
}

// New builds an allocation handle from the given options. Structurally
// invalid configurations — a negative timeout or step budget, an unknown
// ladder stage, a negative stage share or spill cap — are rejected here,
// once, with an error wrapping ErrInvalidProblem.
func New(opts ...Option) (*Allocator, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &Allocator{cfg: c, pm: pipelineMetricsFor(c.registry())}, nil
}

// callConfig specialises the handle's configuration for one call: clone,
// apply per-call options (re-validating only when there are any), and merge
// the call context under the earliest-wins rule.
func (a *Allocator) callConfig(ctx context.Context, opts []Option) (config, *pipelineMetrics, error) {
	c := a.cfg.clone()
	pm := a.pm
	if len(opts) > 0 {
		for _, o := range opts {
			o(&c)
		}
		if err := c.validate(); err != nil {
			return config{}, nil, err
		}
		if c.obsReg != a.cfg.obsReg {
			pm = pipelineMetricsFor(c.registry())
		}
	}
	c.bindContext(ctx)
	return c, pm, nil
}

// Allocate packs the problem's buffers with TelaMalloc under the handle's
// configuration, optionally specialised by per-call options. A nil error
// guarantees the returned solution is valid: every buffer in bounds,
// aligned, and disjoint from temporal neighbours. ctx participates in the
// earliest-wins deadline rule documented on Allocator.
func (a *Allocator) Allocate(ctx context.Context, p Problem, opts ...Option) (Solution, Stats, error) {
	c, _, err := a.callConfig(ctx, opts)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	return allocateWith(c, p)
}

// Pipeline packs the problem through the escalation ladder (greedy →
// best-fit → search → spill by default) under the handle's configuration.
// See AllocatePipeline for the result contract; ctx participates in the
// earliest-wins deadline rule documented on Allocator.
func (a *Allocator) Pipeline(ctx context.Context, p Problem, opts ...Option) (PipelineResult, error) {
	c, pm, err := a.callConfig(ctx, opts)
	if err != nil {
		return PipelineResult{Memory: p.Memory}, err
	}
	return pipelineWith(c, pm, p)
}

// defaultHandle backs the package-level Allocate and AllocatePipeline
// wrappers: one zero-option handle, built on first use. Zero options cannot
// fail validation.
var defaultHandle = sync.OnceValue(func() *Allocator {
	a, err := New()
	if err != nil {
		panic("telamalloc: zero-option handle failed validation: " + err.Error())
	}
	return a
})
