package telamalloc

import (
	"sync"

	"telamalloc/internal/obs"
)

// Pipeline metric names (the naming contract is recorded in DESIGN.md §11).
// Stage series carry a {stage="greedy"|"best-fit"|"search"|"spill"} label;
// outcomes additionally carry {outcome="won"|"failed"|"skipped"}.
const (
	metricPipelineRuns    = "telamalloc_pipeline_runs_total"
	metricPipelineReplays = "telamalloc_pipeline_hint_replays_total"
	metricPipelineSpilled = "telamalloc_pipeline_spilled_buffers_total"
	metricStageSeconds    = "telamalloc_stage_seconds"
	metricStageSteps      = "telamalloc_stage_steps_total"
	metricStageBudget     = "telamalloc_stage_budget_steps_total"
	metricStageOutcomes   = "telamalloc_stage_outcomes_total"
)

// stageMetrics is one ladder stage's bound series.
type stageMetrics struct {
	seconds *obs.Histogram
	steps   *obs.Counter
	budget  *obs.Counter
	won     *obs.Counter
	failed  *obs.Counter
	skipped *obs.Counter
}

// pipelineMetrics is one registry's bound set of pipeline metric handles.
// Binding happens once per registry (per handle, in practice), so per-run
// cost is a few atomic adds per stage.
type pipelineMetrics struct {
	runs    *obs.Counter
	replays *obs.Counter
	spilled *obs.Counter
	stages  map[string]*stageMetrics
}

var pipelineMetricsCache sync.Map // *obs.Registry -> *pipelineMetrics

// pipelineMetricsFor returns the bound handles for r (nil selects the
// process-global obs.Default registry).
func pipelineMetricsFor(r *obs.Registry) *pipelineMetrics {
	if r == nil {
		r = obs.Default()
	}
	if m, ok := pipelineMetricsCache.Load(r); ok {
		return m.(*pipelineMetrics)
	}
	m := &pipelineMetrics{
		runs:    r.Counter(metricPipelineRuns, "AllocatePipeline invocations"),
		replays: r.Counter(metricPipelineReplays, "pipeline runs settled by replaying a WithHints trace"),
		spilled: r.Counter(metricPipelineSpilled, "buffers evicted by winning spill stages"),
		stages:  make(map[string]*stageMetrics, len(defaultLadder)),
	}
	for _, s := range defaultLadder {
		label := obs.Label{Key: "stage", Value: s}
		m.stages[s] = &stageMetrics{
			seconds: r.Histogram(metricStageSeconds, "wall-clock time per executed pipeline stage", label),
			steps:   r.Counter(metricStageSteps, "search steps consumed per pipeline stage", label),
			budget:  r.Counter(metricStageBudget, "step-budget share carved out per pipeline stage", label),
			won: r.Counter(metricStageOutcomes, "pipeline stage outcomes",
				label, obs.Label{Key: "outcome", Value: "won"}),
			failed: r.Counter(metricStageOutcomes, "pipeline stage outcomes",
				label, obs.Label{Key: "outcome", Value: "failed"}),
			skipped: r.Counter(metricStageOutcomes, "pipeline stage outcomes",
				label, obs.Label{Key: "outcome", Value: "skipped"}),
		}
	}
	actual, _ := pipelineMetricsCache.LoadOrStore(r, m)
	return actual.(*pipelineMetrics)
}
