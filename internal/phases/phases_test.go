package phases

import (
	"math/rand"
	"testing"
	"testing/quick"

	"telamalloc/internal/buffers"
)

func TestRegionOverlaps(t *testing.T) {
	r := Region{5, 10}
	cases := []struct {
		b    buffers.Buffer
		want bool
	}{
		{buffers.Buffer{Start: 0, End: 5}, false},
		{buffers.Buffer{Start: 0, End: 6}, true},
		{buffers.Buffer{Start: 9, End: 20}, true},
		{buffers.Buffer{Start: 10, End: 20}, false},
		{buffers.Buffer{Start: 6, End: 8}, true},
	}
	for _, c := range cases {
		if got := r.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestGroupHighAndLowContention(t *testing.T) {
	// Memory 10. Two buffers of size 5 overlapping in [0,10) (100%
	// contention), then a lull, then one small buffer (20%).
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 5},
			{Start: 0, End: 10, Size: 5},
			{Start: 20, End: 30, Size: 2},
		},
		Memory: 10,
	}
	p.Normalize()
	a := Group(p)
	if len(a.Phases) < 2 {
		t.Fatalf("got %d phases, want >= 2: %+v", len(a.Phases), a.Phases)
	}
	if a.PhaseOf[0] != a.PhaseOf[1] {
		t.Errorf("high-contention buffers in different phases: %v", a.PhaseOf)
	}
	if a.PhaseOf[2] == a.PhaseOf[0] {
		t.Errorf("low-contention buffer grouped with high-contention phase")
	}
	if a.Phases[a.PhaseOf[0]].ThresholdPct != 100 {
		t.Errorf("first phase threshold = %d, want 100", a.Phases[a.PhaseOf[0]].ThresholdPct)
	}
	// Phases must be ordered by decreasing threshold.
	for i := 1; i < len(a.Phases); i++ {
		if a.Phases[i].ThresholdPct > a.Phases[i-1].ThresholdPct {
			t.Errorf("phases not in decreasing threshold order: %+v", a.Phases)
		}
	}
}

func TestGroupCatchAllPhase(t *testing.T) {
	// A single tiny buffer (contention 1% of memory) falls below every
	// threshold and must land in the catch-all phase.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{{Start: 0, End: 5, Size: 1}},
		Memory:  1000,
	}
	p.Normalize()
	a := Group(p)
	if len(a.Phases) != 1 || a.Phases[0].ThresholdPct != 0 {
		t.Fatalf("want one catch-all phase, got %+v", a.Phases)
	}
	if a.PhaseOf[0] != 0 {
		t.Errorf("PhaseOf = %v", a.PhaseOf)
	}
}

func TestGroupEveryBufferAssignedExactlyOnce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &buffers.Problem{Memory: 100}
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			start := rng.Int63n(50)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(20),
				Size:  1 + rng.Int63n(40),
			})
		}
		p.Normalize()
		a := Group(p)
		seen := make([]bool, n)
		for _, ph := range a.Phases {
			for _, id := range ph.Buffers {
				if seen[id] {
					return false // duplicate assignment
				}
				seen[id] = true
			}
		}
		for id, ok := range seen {
			if !ok || a.PhaseOf[id] < 0 {
				return false // unassigned buffer
			}
			// PhaseOf must agree with phase membership.
			found := false
			for _, b := range a.Phases[a.PhaseOf[id]].Buffers {
				if b == id {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupFigure1Example(t *testing.T) {
	// Approximate the paper's Figure 1 / §5.3 example: three contention
	// humps separated by troughs — grouping must produce at least three
	// phases and the hump members must share a phase with their hump.
	p := &buffers.Problem{Memory: 12}
	add := func(start, end, size int64) {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: start, End: end, Size: size})
	}
	// Hump 1: near-full memory in [0, 10).
	add(0, 10, 6)
	add(0, 10, 6)
	// Trough, then hump 2 in [15, 25).
	add(15, 25, 6)
	add(15, 25, 5)
	// Trough, then hump 3 in [30, 40).
	add(30, 40, 11)
	p.Normalize()
	a := Group(p)
	if a.PhaseOf[0] != a.PhaseOf[1] {
		t.Errorf("hump 1 split across phases: %v", a.PhaseOf)
	}
	if a.PhaseOf[2] != a.PhaseOf[3] {
		t.Errorf("hump 2 split across phases: %v", a.PhaseOf)
	}
	distinct := map[int]bool{a.PhaseOf[0]: true, a.PhaseOf[2]: true, a.PhaseOf[4]: true}
	if len(distinct) != 3 {
		t.Errorf("humps not in three distinct phases: %v", a.PhaseOf)
	}
}

func TestSplitIndependent(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 1},
			{Start: 3, End: 8, Size: 1},
			{Start: 8, End: 12, Size: 1}, // touches but does not overlap t=8
			{Start: 10, End: 15, Size: 1},
			{Start: 20, End: 25, Size: 1},
		},
		Memory: 10,
	}
	p.Normalize()
	groups := SplitIndependent(p)
	if len(groups) != 3 {
		t.Fatalf("got %d groups %v, want 3", len(groups), groups)
	}
	want := [][]int{{0, 1}, {2, 3}, {4}}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Errorf("group %d = %v, want %v", i, groups[i], want[i])
			continue
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Errorf("group %d = %v, want %v", i, groups[i], want[i])
			}
		}
	}
}

func TestSplitIndependentSingleComponent(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 1},
			{Start: 5, End: 15, Size: 1},
		},
		Memory: 10,
	}
	p.Normalize()
	groups := SplitIndependent(p)
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Errorf("groups = %v, want one group of two", groups)
	}
	if SplitIndependent(&buffers.Problem{}) != nil {
		t.Error("empty problem should return nil groups")
	}
}

func TestSplitIndependentCoversAllBuffers(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &buffers.Problem{Memory: 100}
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			start := rng.Int63n(60)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start, End: start + 1 + rng.Int63n(15), Size: 1,
			})
		}
		p.Normalize()
		groups := SplitIndependent(p)
		seen := make([]bool, n)
		for gi, g := range groups {
			for _, id := range g {
				if seen[id] {
					return false
				}
				seen[id] = true
				// No buffer may overlap a buffer in a different group.
				for gj, h := range groups {
					if gi == gj {
						continue
					}
					for _, other := range h {
						if p.Buffers[id].OverlapsInTime(p.Buffers[other]) {
							return false
						}
					}
				}
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
