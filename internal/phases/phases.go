// Package phases implements TelaMalloc's contention-based grouping (§5.3 of
// the paper): a pre-processing pass that (1) splits the problem at time
// points no buffer crosses, yielding independent subproblems, and (2) within
// each subproblem, groups buffers into phases of decreasing contention using
// the threshold-sweep algorithm of Figure 9. The search then prefers to
// finish placing one phase before starting the next.
package phases

import (
	"sort"

	"telamalloc/internal/buffers"
)

// Region is a half-open time range [Start, End).
type Region struct {
	Start, End int64
}

// Overlaps reports whether b's live range intersects the region.
func (r Region) Overlaps(b buffers.Buffer) bool {
	return b.Start < r.End && r.Start < b.End
}

// Phase is one contention phase: a time region and the buffers assigned to
// it. Phases are ordered by decreasing contention threshold (ties broken by
// time), matching the order in which TelaMalloc wants to place them.
type Phase struct {
	Region Region
	// ThresholdPct is the contention threshold (percent of total memory) at
	// which this phase was discovered; 0 for the catch-all phase holding
	// buffers below every threshold.
	ThresholdPct int
	// Buffers holds the IDs assigned to this phase.
	Buffers []int
}

// Assignment is the result of grouping: an ordered phase list plus the
// phase index of every buffer.
type Assignment struct {
	Phases []Phase
	// PhaseOf[id] is the index into Phases for buffer id.
	PhaseOf []int
}

// thresholds is the percent ladder from Figure 9 of the paper.
var thresholds = []int{100, 90, 80, 70, 60, 50, 40, 30, 20}

// Group runs the Figure 9 algorithm over the problem. Buffers that overlap
// no high-contention range end up in a trailing catch-all phase.
func Group(p *buffers.Problem) *Assignment {
	n := len(p.Buffers)
	a := &Assignment{PhaseOf: make([]int, n)}
	for i := range a.PhaseOf {
		a.PhaseOf[i] = -1
	}
	if n == 0 {
		return a
	}
	profile := buffers.Contention(p)
	assigned := 0
	for _, pct := range thresholds {
		if assigned == n {
			break
		}
		threshold := int64(pct) * p.Memory / 100
		for _, r := range highContentionRanges(profile, threshold) {
			var ph *Phase
			for id, b := range p.Buffers {
				if a.PhaseOf[id] >= 0 || !r.Overlaps(b) {
					continue
				}
				if ph == nil {
					a.Phases = append(a.Phases, Phase{Region: r, ThresholdPct: pct})
					ph = &a.Phases[len(a.Phases)-1]
				}
				ph.Buffers = append(ph.Buffers, id)
				a.PhaseOf[id] = len(a.Phases) - 1
				assigned++
			}
		}
	}
	if assigned < n {
		lo, hi := p.TimeHorizon()
		a.Phases = append(a.Phases, Phase{Region: Region{lo, hi}})
		idx := len(a.Phases) - 1
		ph := &a.Phases[idx]
		for id := range p.Buffers {
			if a.PhaseOf[id] < 0 {
				ph.Buffers = append(ph.Buffers, id)
				a.PhaseOf[id] = idx
			}
		}
	}
	return a
}

// highContentionRanges returns the maximal contiguous time ranges whose
// contention matches or exceeds threshold, in time order.
func highContentionRanges(profile buffers.ContentionProfile, threshold int64) []Region {
	var out []Region
	inRange := false
	var start int64
	for _, step := range profile.Steps {
		if step.Contention >= threshold {
			if !inRange {
				inRange = true
				start = step.Start
			}
		} else if inRange {
			inRange = false
			out = append(out, Region{start, step.Start})
		}
	}
	if inRange && len(profile.Steps) > 0 {
		out = append(out, Region{start, profile.Steps[len(profile.Steps)-1].End})
	}
	return out
}

// SplitIndependent finds cut points no buffer crosses and partitions the
// problem into independent subproblems that can be solved in isolation
// (§5.3: "we can divide the problem into two subproblems that can be solved
// independently"). The returned slices hold buffer IDs per subproblem, in
// time order. Problems with a single component return one group.
func SplitIndependent(p *buffers.Problem) [][]int {
	n := len(p.Buffers)
	if n == 0 {
		return nil
	}
	// Sort buffer IDs by start time; a cut exists wherever the running max
	// End so far is <= the next buffer's Start.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		bi, bj := p.Buffers[order[i]], p.Buffers[order[j]]
		if bi.Start != bj.Start {
			return bi.Start < bj.Start
		}
		return order[i] < order[j]
	})
	var groups [][]int
	cur := []int{order[0]}
	maxEnd := p.Buffers[order[0]].End
	for _, id := range order[1:] {
		b := p.Buffers[id]
		if b.Start >= maxEnd {
			groups = append(groups, cur)
			cur = nil
		}
		cur = append(cur, id)
		if b.End > maxEnd {
			maxEnd = b.End
		}
	}
	groups = append(groups, cur)
	return groups
}
