package cache

import (
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/heuristics"
)

func prob(mem int64, bufs ...buffers.Buffer) *buffers.Problem {
	p := &buffers.Problem{Memory: mem, Buffers: bufs}
	p.Normalize()
	return p
}

func TestFingerprintIgnoresOrderNameAndShift(t *testing.T) {
	base := prob(64,
		buffers.Buffer{Start: 0, End: 4, Size: 8},
		buffers.Buffer{Start: 2, End: 6, Size: 16, Align: 4},
		buffers.Buffer{Start: 5, End: 9, Size: 8},
	)
	fpBase, _ := Canonicalize(base)

	reordered := prob(64,
		buffers.Buffer{Start: 5, End: 9, Size: 8},
		buffers.Buffer{Start: 0, End: 4, Size: 8},
		buffers.Buffer{Start: 2, End: 6, Size: 16, Align: 4},
	)
	reordered.Name = "same shape, different order and name"
	if fp, _ := Canonicalize(reordered); fp.Key != fpBase.Key {
		t.Errorf("reordering buffers changed the fingerprint")
	}

	shifted := prob(64,
		buffers.Buffer{Start: 100, End: 104, Size: 8},
		buffers.Buffer{Start: 102, End: 106, Size: 16, Align: 4},
		buffers.Buffer{Start: 105, End: 109, Size: 8},
	)
	if fp, _ := Canonicalize(shifted); fp.Key != fpBase.Key {
		t.Errorf("uniform time shift changed the fingerprint")
	}

	// Align 0 and 1 both mean "unconstrained" and must hash identically.
	a0 := prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8, Align: 0})
	a1 := prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8, Align: 1})
	fp0, _ := Canonicalize(a0)
	fp1, _ := Canonicalize(a1)
	if fp0.Key != fp1.Key {
		t.Errorf("align 0 and align 1 fingerprint differently")
	}
}

func TestFingerprintSeparatesShapeAndCapacity(t *testing.T) {
	a := prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8})
	b := prob(128, buffers.Buffer{Start: 0, End: 4, Size: 8})
	fpA, _ := Canonicalize(a)
	fpB, _ := Canonicalize(b)
	if fpA.Key == fpB.Key {
		t.Errorf("different capacities share a full key")
	}
	if fpA.ShapeKey != fpB.ShapeKey {
		t.Errorf("same buffers at different capacities must share a shape key")
	}

	c := prob(64, buffers.Buffer{Start: 0, End: 4, Size: 9})
	if fpC, _ := Canonicalize(c); fpC.ShapeKey == fpA.ShapeKey {
		t.Errorf("different sizes share a shape key")
	}
}

func TestFingerprintDistinguishesShapes(t *testing.T) {
	base := prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8}, buffers.Buffer{Start: 1, End: 3, Size: 4})
	fpBase, _ := Canonicalize(base)
	variants := []*buffers.Problem{
		prob(64, buffers.Buffer{Start: 0, End: 5, Size: 8}, buffers.Buffer{Start: 1, End: 3, Size: 4}),           // lifetime
		prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8, Align: 2}, buffers.Buffer{Start: 1, End: 3, Size: 4}), // align
		prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8}),                                                      // count
		// NON-uniform shift: same multiset of lifetimes relative to their own
		// starts, different overlap structure.
		prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8}, buffers.Buffer{Start: 10, End: 12, Size: 4}),
	}
	for i, v := range variants {
		if fp, _ := Canonicalize(v); fp.Key == fpBase.Key {
			t.Errorf("variant %d shares the base fingerprint", i)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	p := prob(1<<20,
		buffers.Buffer{Start: 3, End: 7, Size: 8},
		buffers.Buffer{Start: 0, End: 4, Size: 16},
		buffers.Buffer{Start: 2, End: 6, Size: 8, Align: 4},
	)
	sol, peak := heuristics.GreedyContentionUnbounded(p)
	p.Memory = peak
	if err := sol.Validate(p); err != nil {
		t.Fatalf("fixture packing invalid: %v", err)
	}
	_, perm := Canonicalize(p)
	canon := ToCanonical(sol.Offsets, perm)
	back := Replay(canon, perm)
	for i := range back {
		if back[i] != sol.Offsets[i] {
			t.Fatalf("round trip changed offsets: %v vs %v", back, sol.Offsets)
		}
	}
	if Replay([]int64{1, 2}, perm) != nil {
		t.Errorf("length-mismatched replay must return nil")
	}
}

func TestLRUBoundAndCounters(t *testing.T) {
	c := New(2)
	fps := make([]Fingerprint, 3)
	for i := range fps {
		p := prob(int64(64+i), buffers.Buffer{Start: 0, End: 4, Size: 8})
		fps[i], _ = Canonicalize(p)
		c.Put(fps[i], Entry{Winner: "greedy", Offsets: []int64{0}})
	}
	// fps[0] is the LRU victim of inserting fps[2].
	if _, ok := c.Get(fps[0].Key); ok {
		t.Errorf("oldest entry survived past the capacity bound")
	}
	if _, ok := c.Get(fps[1].Key); !ok {
		t.Errorf("entry 1 missing")
	}
	// Touching fps[1] makes fps[2] the victim of the next insert.
	c.Put(fps[0], Entry{Winner: "greedy", Offsets: []int64{0}})
	if _, ok := c.Get(fps[2].Key); ok {
		t.Errorf("recently-used ordering not respected")
	}
	got := c.Counters()
	want := Counters{Hits: 1, Misses: 2, Insertions: 4, Evictions: 2, Len: 2}
	if got != want {
		t.Errorf("counters %+v, want %+v", got, want)
	}
	if got.Insertions-got.Evictions != int64(got.Len) {
		t.Errorf("counter ledger unbalanced: %+v", got)
	}
}

func TestGetShapeNearMiss(t *testing.T) {
	c := New(4)
	small := prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8})
	big := prob(128, buffers.Buffer{Start: 0, End: 4, Size: 8})
	fpSmall, _ := Canonicalize(small)
	fpBig, _ := Canonicalize(big)
	c.Put(fpSmall, Entry{Winner: "search", Offsets: []int64{0}})

	if _, ok := c.GetShape(fpBig.ShapeKey, fpBig.Key); !ok {
		t.Fatalf("near-miss lookup failed for a shape-equal entry")
	}
	// Looking up the shape of the entry itself must not report a near miss.
	if _, ok := c.GetShape(fpSmall.ShapeKey, fpSmall.Key); ok {
		t.Errorf("exact key excluded itself and still near-hit")
	}
	c.Drop(fpSmall.Key)
	if _, ok := c.GetShape(fpBig.ShapeKey, fpBig.Key); ok {
		t.Errorf("dropped entry still reachable through the shape index")
	}
	if n := c.Counters().NearHits; n != 1 {
		t.Errorf("near hits %d, want 1", n)
	}
}

func TestEntriesAreCopied(t *testing.T) {
	c := New(2)
	p := prob(64, buffers.Buffer{Start: 0, End: 4, Size: 8})
	fp, _ := Canonicalize(p)
	offsets := []int64{0}
	c.Put(fp, Entry{Winner: "greedy", Offsets: offsets})
	offsets[0] = 99
	e, ok := c.Get(fp.Key)
	if !ok || e.Offsets[0] != 0 {
		t.Fatalf("cache shares the caller's offset slice: %+v", e)
	}
	e.Offsets[0] = 42
	if e2, _ := c.Get(fp.Key); e2.Offsets[0] != 0 {
		t.Fatalf("Get hands out the cache's own slice")
	}
}

// FuzzFingerprint is the solution-compatibility contract: for any valid
// problem, a shuffled and time-shifted copy fingerprints identically, and a
// packing of the original transported through the canonical permutations is
// a valid packing of the copy.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{}, int16(0), uint32(0))
	f.Add([]byte{0, 4, 8, 0, 2, 5, 16, 1}, int16(100), uint32(7))
	f.Add([]byte{3, 1, 1, 2, 3, 1, 1, 2, 3, 1, 1, 2}, int16(-50), uint32(99))
	f.Add([]byte{0, 10, 200, 3, 9, 10, 200, 3, 0, 1, 7, 0}, int16(1000), uint32(1234567))
	f.Fuzz(func(t *testing.T, data []byte, shift int16, seed uint32) {
		// Decode a structurally valid problem: 4 bytes per buffer
		// (start, duration, size, align code), all clamped positive.
		aligns := []int64{1, 1, 2, 4, 8, 64}
		var p buffers.Problem
		for len(data) >= 4 && len(p.Buffers) < 20 {
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: int64(data[0]),
				End:   int64(data[0]) + 1 + int64(data[1]),
				Size:  1 + int64(data[2]),
				Align: aligns[int(data[3])%len(aligns)],
			})
			data = data[4:]
		}
		p.Normalize()

		// Shuffled + shifted copy with a different order and name.
		q := &buffers.Problem{Name: "copy"}
		q.Buffers = append([]buffers.Buffer(nil), p.Buffers...)
		rng := seed | 1
		for i := len(q.Buffers) - 1; i > 0; i-- {
			rng = rng*1664525 + 1013904223
			j := int(rng % uint32(i+1))
			q.Buffers[i], q.Buffers[j] = q.Buffers[j], q.Buffers[i]
		}
		for i := range q.Buffers {
			q.Buffers[i].Start += int64(shift)
			q.Buffers[i].End += int64(shift)
		}
		q.Normalize()

		// Pack p with the greedy heuristic at exactly its peak, so both
		// problems share a capacity the packing provably fits.
		sol, peak := heuristics.GreedyContentionUnbounded(&p)
		if peak < 1 {
			peak = 1
		}
		p.Memory, q.Memory = peak, peak

		fpP, permP := Canonicalize(&p)
		fpQ, permQ := Canonicalize(q)
		if fpP.Key != fpQ.Key || fpP.ShapeKey != fpQ.ShapeKey {
			t.Fatalf("shuffle+shift changed the fingerprint:\n p=%+v\n q=%+v", fpP, fpQ)
		}
		if len(p.Buffers) == 0 {
			return
		}
		if err := sol.Validate(&p); err != nil {
			t.Fatalf("greedy packing invalid at its own peak: %v", err)
		}
		replayed := &buffers.Solution{Offsets: Replay(ToCanonical(sol.Offsets, permP), permQ)}
		if err := replayed.Validate(q); err != nil {
			t.Fatalf("fingerprint-equal problems are not solution-compatible: %v", err)
		}
	})
}
