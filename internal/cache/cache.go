// Package cache is the cross-request reuse layer of the allocation service:
// a canonical problem fingerprint plus a bounded LRU of validated solutions.
//
// The paper's production deployment observes that accelerator compile
// traffic is dominated by *repeated* allocation problems — the same model
// recompiled with the same buffer schedule — so amortising search cost
// across requests is the biggest lever after parallelism (§2, §7.2). The
// fingerprint makes that reuse safe: it hashes the *shape* of a problem
// (live ranges, sizes, alignments, capacity) while ignoring everything a
// recompilation is allowed to change without changing the answer — buffer
// IDs, buffer order, the diagnostic name, and a uniform shift of the time
// axis. Two problems with equal fingerprints are solution-compatible: a
// packing for one, transported through the canonical permutation, is a
// packing for the other (the FuzzFingerprint target asserts exactly this).
//
// The cache itself is deliberately dumb: a mutex-guarded LRU of canonical
// solutions with hit/miss/eviction counters. All trust lives with the
// caller, which must re-validate every replayed solution against its own
// problem before serving it — a stale or corrupted entry then costs one
// validation pass, never a wrong answer.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"

	"telamalloc/internal/buffers"
)

// Fingerprint identifies an allocation problem up to the transformations
// that preserve solutions.
type Fingerprint struct {
	// Key is the full fingerprint: canonical buffer shapes plus the memory
	// capacity. Problems with equal Keys are interchangeable.
	Key string
	// ShapeKey excludes the capacity. Problems with equal ShapeKeys differ
	// at most in their memory limit — the "near miss" a cached solution can
	// still warm-start via hint replay (a packing for one capacity is a
	// packing for any larger one).
	ShapeKey string
}

// canonBuffer is one buffer in canonical form: times shifted so the
// problem's earliest start is zero, alignment normalised so 0 and 1 (both
// "unconstrained") hash identically.
type canonBuffer struct {
	start, end, size, align int64
	id                      int // original index, for the permutation
}

// Canonicalize computes p's fingerprint and the canonical permutation:
// perm[k] is the index in p.Buffers of the k-th buffer in canonical order.
// A solution stored in canonical order is transported onto p with
// offsets[perm[k]] = canonical[k] (see Replay). Buffers with identical
// shapes are interchangeable, so their relative order is immaterial for
// solution compatibility; ties break by original index for determinism.
func Canonicalize(p *buffers.Problem) (Fingerprint, []int) {
	n := len(p.Buffers)
	cs := make([]canonBuffer, n)
	var minStart int64
	for i, b := range p.Buffers {
		if i == 0 || b.Start < minStart {
			minStart = b.Start
		}
	}
	for i, b := range p.Buffers {
		align := b.Align
		if align < 1 {
			align = 1
		}
		cs[i] = canonBuffer{start: b.Start - minStart, end: b.End - minStart, size: b.Size, align: align, id: i}
	}
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.end != b.end {
			return a.end < b.end
		}
		if a.size != b.size {
			return a.size < b.size
		}
		if a.align != b.align {
			return a.align < b.align
		}
		return a.id < b.id
	})

	h := sha256.New()
	var word [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(word[:], uint64(v))
		h.Write(word[:])
	}
	put(int64(n))
	perm := make([]int, n)
	for k, c := range cs {
		perm[k] = c.id
		put(c.start)
		put(c.end)
		put(c.size)
		put(c.align)
	}
	shape := h.Sum(nil)
	put(p.Memory)
	full := h.Sum(nil)
	return Fingerprint{
		Key:      hex.EncodeToString(full),
		ShapeKey: hex.EncodeToString(shape),
	}, perm
}

// Replay transports a canonical-order solution onto a problem with the
// given canonical permutation: out[perm[k]] = canonical[k]. It returns nil
// when the lengths disagree (the hint came from a different shape).
func Replay(canonical []int64, perm []int) []int64 {
	if len(canonical) != len(perm) {
		return nil
	}
	out := make([]int64, len(perm))
	for k, id := range perm {
		out[id] = canonical[k]
	}
	return out
}

// ToCanonical is Replay's inverse: it records a problem-order solution in
// canonical order, canonical[k] = offsets[perm[k]].
func ToCanonical(offsets []int64, perm []int) []int64 {
	if len(offsets) != len(perm) {
		return nil
	}
	out := make([]int64, len(perm))
	for k, id := range perm {
		out[k] = offsets[id]
	}
	return out
}

// Entry is one cached outcome: the winning stage and the packing in
// canonical buffer order. Only full (non-degraded) packings are cached —
// they are capacity-monotone and cheap to re-validate.
type Entry struct {
	// Winner is the pipeline stage that produced the packing, echoed on
	// cache hits so warm responses are byte-identical to the cold one.
	Winner string
	// Offsets is the packing in canonical buffer order.
	Offsets []int64
}

// Counters is a point-in-time snapshot of cache telemetry.
type Counters struct {
	// Hits and Misses count Get outcomes; Hits + Misses == lookups.
	Hits, Misses int64
	// NearHits counts GetShape successes: a different capacity, same shape.
	NearHits int64
	// Insertions and Evictions count Put outcomes; Insertions - Evictions
	// == Len for a cache that has never been cleared.
	Insertions, Evictions int64
	// Len is the current entry count, bounded by the configured capacity.
	Len int
}

// Cache is a bounded, thread-safe LRU of validated solutions keyed by full
// fingerprint, with a shape index for near-miss hint lookups.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	shape    map[string]string // ShapeKey -> full Key of the newest entry

	hits, misses, nearHits, insertions, evictions int64
}

// lruItem is the list payload.
type lruItem struct {
	key   string
	shape string
	entry Entry
}

// New builds a cache bounded to capacity entries. Capacities below 1 are
// clamped to 1 — callers that want no cache simply don't build one.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
		shape:    make(map[string]string, capacity),
	}
}

// Get returns the entry stored under the full fingerprint key, marking it
// most recently used. The returned offsets are a copy; callers may keep it.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return copyEntry(el.Value.(*lruItem).entry), true
}

// GetShape returns the newest entry whose problem had the given shape but a
// *different* full key — the near-miss case where only the capacity
// changed. It does not touch recency (the hint may not even validate) and
// does not count as a hit or miss.
func (c *Cache) GetShape(shapeKey, excludeKey string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	full, ok := c.shape[shapeKey]
	if !ok || full == excludeKey {
		return Entry{}, false
	}
	el, ok := c.items[full]
	if !ok {
		return Entry{}, false
	}
	c.nearHits++
	return copyEntry(el.Value.(*lruItem).entry), true
}

// Put stores e under fp, evicting the least recently used entry when the
// cache is full. The entry's offsets are copied in.
func (c *Cache) Put(fp Fingerprint, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp.Key]; ok {
		// Refresh in place: same fingerprint, possibly a new packing.
		el.Value.(*lruItem).entry = copyEntry(e)
		c.ll.MoveToFront(el)
		c.shape[fp.ShapeKey] = fp.Key
		return
	}
	for c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		it := oldest.Value.(*lruItem)
		c.ll.Remove(oldest)
		delete(c.items, it.key)
		if c.shape[it.shape] == it.key {
			delete(c.shape, it.shape)
		}
		c.evictions++
	}
	c.items[fp.Key] = c.ll.PushFront(&lruItem{key: fp.Key, shape: fp.ShapeKey, entry: copyEntry(e)})
	c.shape[fp.ShapeKey] = fp.Key
	c.insertions++
}

// Drop removes the entry stored under key, if any. The serving layer drops
// entries whose replay failed validation — they can only waste lookups.
func (c *Cache) Drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return
	}
	it := el.Value.(*lruItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	if c.shape[it.shape] == it.key {
		delete(c.shape, it.shape)
	}
}

// Counters returns the current telemetry snapshot.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		Hits:       c.hits,
		Misses:     c.misses,
		NearHits:   c.nearHits,
		Insertions: c.insertions,
		Evictions:  c.evictions,
		Len:        c.ll.Len(),
	}
}

func copyEntry(e Entry) Entry {
	return Entry{Winner: e.Winner, Offsets: append([]int64(nil), e.Offsets...)}
}
