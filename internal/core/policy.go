package core

import (
	"sort"
	"telamalloc/internal/buffers"
	"telamalloc/internal/phases"
	"telamalloc/internal/telamon"
)

// telaPolicy is TelaMalloc's domain policy for the Telamon framework.
type telaPolicy struct {
	cfg    Config
	groups *phases.Assignment // nil when phases are disabled
}

func newPolicy(p *buffers.Problem, cfg Config) *telaPolicy {
	tp := &telaPolicy{cfg: cfg}
	if !cfg.DisablePhases {
		tp.groups = phases.Group(p)
	}
	return tp
}

// Candidates implements telamon.Policy: at each decision point, propose the
// longest-lived, largest and largest-area unplaced blocks (§5.1), preferring
// the phase of the most recently placed block and falling back to the other
// phases in contention order (§5.3), with all remaining unplaced blocks as a
// final fallback.
func (tp *telaPolicy) Candidates(st *telamon.State) []int {
	if tp.groups == nil {
		out := topPicks(st, nil)
		if !tp.expensive(st) {
			return out
		}
		seen := make(map[int]bool, len(out))
		for _, id := range out {
			seen[id] = true
		}
		return appendRemaining(st, out, seen)
	}
	cur := tp.currentPhase(st)
	out := make([]int, 0, 3*len(tp.groups.Phases))
	seen := make(map[int]bool, 8)
	appendPicks := func(ph *phases.Phase) {
		for _, c := range topPicks(st, ph.Buffers) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	if cur >= 0 {
		appendPicks(&tp.groups.Phases[cur])
	}
	for i := range tp.groups.Phases {
		if i != cur {
			appendPicks(&tp.groups.Phases[i])
		}
	}
	if tp.expensive(st) {
		// Last-resort fallback (§6.5 describes the same idea for the ML
		// path): after the heuristic picks, try the remaining unplaced
		// buffers, largest area first, before declaring the decision point
		// exhausted. The paper's strict configuration (3 candidates per
		// decision point, more major backtracks) is available via
		// Config.NoFallbackCandidates; a learned step gate (§8.3) can make
		// the call per decision point via Config.Gate.
		out = appendRemaining(st, out, seen)
	}
	return out
}

// expensive reports whether this decision point should receive the full
// fallback candidate set.
func (tp *telaPolicy) expensive(st *telamon.State) bool {
	if tp.cfg.Gate != nil {
		// Learned gates are user-supplied code: run under attribution so a
		// panic surfaces as "panic in candidate gate", not a crash.
		return safeGate(tp.cfg.Gate, st)
	}
	return !tp.cfg.NoFallbackCandidates
}

// appendRemaining adds every unplaced buffer not already in out, ordered by
// decreasing area.
func appendRemaining(st *telamon.State, out []int, seen map[int]bool) []int {
	var rest []int
	for id := range st.Prob.Buffers {
		if !st.Model.Placed(id) && !seen[id] {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		ba, bb := st.Prob.Buffers[rest[a]], st.Prob.Buffers[rest[b]]
		if aa, ab := ba.Area(), bb.Area(); aa != ab {
			return aa > ab
		}
		return rest[a] < rest[b]
	})
	return append(out, rest...)
}

// currentPhase returns the phase of the most recently committed placement,
// or -1 when nothing is placed yet.
func (tp *telaPolicy) currentPhase(st *telamon.State) int {
	for i := len(st.Stack) - 1; i >= 0; i-- {
		if b := st.Stack[i].Placed; b >= 0 {
			return tp.groups.PhaseOf[b]
		}
	}
	return -1
}

// topPicks returns up to three distinct unplaced buffers from the given ID
// set (nil = all buffers): the longest-lived, the largest, and the one with
// the largest area, in that order. The ordering mirrors §5.1: the longest
// allocation is tried first "since it likely affects the most constraints".
func topPicks(st *telamon.State, ids []int) []int {
	bestLife, bestSize, bestArea := -1, -1, -1
	var lifeV, sizeV int64 = -1, -1
	areaV := -1.0
	consider := func(id int) {
		if st.Model.Placed(id) {
			return
		}
		b := st.Prob.Buffers[id]
		if l := b.Lifetime(); l > lifeV {
			lifeV, bestLife = l, id
		}
		if b.Size > sizeV {
			sizeV, bestSize = b.Size, id
		}
		if a := b.Area(); a > areaV {
			areaV, bestArea = a, id
		}
	}
	if ids == nil {
		for id := range st.Prob.Buffers {
			consider(id)
		}
	} else {
		for _, id := range ids {
			consider(id)
		}
	}
	var out []int
	for _, id := range [3]int{bestLife, bestSize, bestArea} {
		if id < 0 {
			continue
		}
		dup := false
		for _, o := range out {
			if o == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	return out
}

// Placement implements telamon.Policy.
func (tp *telaPolicy) Placement(st *telamon.State, buf int) (int64, bool) {
	if tp.cfg.Placement == SkylineTop {
		return skylineTop(st, buf)
	}
	return st.Model.LowestFeasible(buf)
}

// skylineTop places buf on top of its placed temporal neighbours —
// Figure 8a's simple strategy, kept for ablation.
func skylineTop(st *telamon.State, buf int) (int64, bool) {
	var top int64
	for _, nb := range st.Model.Overlaps().Neighbors[buf] {
		if st.Model.Placed(nb) {
			if end := st.Model.Position(nb) + st.Prob.Buffers[nb].Size; end > top {
				top = end
			}
		}
	}
	b := st.Prob.Buffers[buf]
	if top < st.Model.MinPos(buf) {
		top = st.Model.MinPos(buf)
	}
	pos := b.AlignUp(top)
	if pos > st.Model.MaxPos(buf) {
		return 0, false
	}
	return pos, true
}

// BacktrackTarget implements telamon.Policy: delegate to the learned
// chooser when configured, otherwise use the framework default.
func (tp *telaPolicy) BacktrackTarget(st *telamon.State, dp *telamon.DecisionPoint) (int, bool) {
	if tp.cfg.Chooser != nil {
		// Learned choosers are user-supplied code: run under attribution so
		// a panic surfaces as "panic in backtrack chooser", not a crash.
		if t, ok := safeChoose(tp.cfg.Chooser, st, dp); ok {
			return t, true
		}
	}
	return 0, false
}

var _ telamon.Policy = (*telaPolicy)(nil)
