package core

import (
	"testing"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/telamon"
)

func TestDeadlineStopsSearch(t *testing.T) {
	// A hard instance with an already-expired deadline must return Budget
	// almost immediately.
	p := &buffers.Problem{Memory: 30}
	for i := 0; i < 30; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 10, Size: 3})
	}
	p.Normalize()
	start := time.Now()
	res := Solve(p, Config{Deadline: time.Now().Add(-time.Second)})
	if time.Since(start) > 5*time.Second {
		t.Fatalf("expired deadline ignored for %v", time.Since(start))
	}
	if res.Status == telamon.Solved {
		// Solving before the first deadline check is acceptable for easy
		// instances; this one packs exactly, so a quick solve is fine too.
		if err := res.Solution.Validate(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubProblemMapping(t *testing.T) {
	p := &buffers.Problem{Memory: 8, Name: "orig"}
	for i := int64(0); i < 4; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: i, End: i + 1, Size: int64(i) + 1})
	}
	p.Normalize()
	sub, back := subProblem(p, []int{2, 0})
	if sub.Name != "orig" || sub.Memory != 8 {
		t.Errorf("metadata lost: %+v", sub)
	}
	if len(sub.Buffers) != 2 || sub.Buffers[0].Size != 3 || sub.Buffers[1].Size != 1 {
		t.Errorf("wrong buffers: %+v", sub.Buffers)
	}
	if sub.Buffers[0].ID != 0 || sub.Buffers[1].ID != 1 {
		t.Error("sub-problem not normalized")
	}
	if back[0] != 2 || back[1] != 0 {
		t.Errorf("back-mapping wrong: %v", back)
	}
	// nil ids = identity.
	all, back2 := subProblem(p, nil)
	if len(all.Buffers) != 4 || back2[3] != 3 {
		t.Errorf("identity mapping wrong: %v", back2)
	}
}

func TestAccumulateStats(t *testing.T) {
	var dst telamon.Stats
	accumulate(&dst, telamon.Stats{Steps: 5, Placements: 3, MinorBacktracks: 2, MajorBacktracks: 1, MaxDepth: 7})
	accumulate(&dst, telamon.Stats{Steps: 10, MaxDepth: 4})
	if dst.Steps != 15 || dst.Placements != 3 || dst.MinorBacktracks != 2 || dst.MajorBacktracks != 1 {
		t.Errorf("sums wrong: %+v", dst)
	}
	if dst.MaxDepth != 7 {
		t.Errorf("MaxDepth = %d, want max not sum", dst.MaxDepth)
	}
}
