package core

import (
	"testing"

	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

// TestSolveRateComparison documents the trade-off behind
// Config.NoFallbackCandidates: the production fallback (try every unplaced
// buffer before a major backtrack) should solve at least as many tight
// instances as the paper's strict three-candidate mode, and the strict mode
// must stay competitive (it is what the ML experiments build on).
func TestSolveRateComparison(t *testing.T) {
	withFB, withoutFB := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		p := workload.Random(seed, 101)
		if Solve(p, Config{MaxSteps: 60000}).Status == telamon.Solved {
			withFB++
		}
		if Solve(p, Config{MaxSteps: 60000, NoFallbackCandidates: true}).Status == telamon.Solved {
			withoutFB++
		}
	}
	t.Logf("solved with fallback: %d/40, without: %d/40", withFB, withoutFB)
	if withoutFB < withFB-8 {
		t.Errorf("strict candidate mode lost too many instances: %d vs %d", withoutFB, withFB)
	}
	if withFB < withoutFB {
		t.Errorf("fallback candidates made things worse: %d vs %d", withFB, withoutFB)
	}
}
