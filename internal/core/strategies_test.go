package core

import (
	"math/rand"
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/telamon"
)

func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		StrategyMaxSize:        "max-size",
		StrategyMaxArea:        "max-area",
		StrategyMaxLifetime:    "max-lifetime",
		StrategyLowestPosition: "lowest-position",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("String(%d) = %q, want %q", s, s.String(), name)
		}
	}
	if len(Strategies) != 4 {
		t.Errorf("Strategies has %d entries", len(Strategies))
	}
}

func TestStrategiesSolveEasyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := &buffers.Problem{}
	for i := 0; i < 20; i++ {
		start := rng.Int63n(20)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start, End: start + 1 + rng.Int63n(10), Size: 1 + rng.Int63n(12),
		})
	}
	p.Normalize()
	p.Memory = buffers.Contention(p).Peak() * 2 // generous
	for _, s := range Strategies {
		res := SolveWithStrategy(p, s, 100000)
		if res.Status != telamon.Solved {
			t.Errorf("%v: status = %v", s, res.Status)
			continue
		}
		if err := res.Solution.Validate(p); err != nil {
			t.Errorf("%v: invalid solution: %v", s, err)
		}
	}
}

func TestStrategyStepBudget(t *testing.T) {
	// Tight infeasible instance: single strategies must hit the cap or
	// exhaust, never claim success.
	p := &buffers.Problem{Memory: 10}
	for i := 0; i < 6; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 10, Size: 3})
	}
	p.Normalize()
	for _, s := range Strategies {
		res := SolveWithStrategy(p, s, 2000)
		if res.Status == telamon.Solved {
			t.Errorf("%v solved an infeasible instance", s)
		}
	}
}

func TestTelaMallocBeatsSingleStrategiesOnHardInstance(t *testing.T) {
	// A phased instance at tight memory where single strategies need many
	// more steps (or fail). This reproduces Figure 14's qualitative result.
	rng := rand.New(rand.NewSource(7))
	p := &buffers.Problem{}
	for phase := int64(0); phase < 4; phase++ {
		base := phase * 12
		for i := 0; i < 10; i++ {
			start := base + rng.Int63n(4)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start, End: start + 2 + rng.Int63n(8), Size: 2 + rng.Int63n(10),
			})
		}
	}
	p.Normalize()
	p.Memory = buffers.Contention(p).Peak() * 105 / 100
	tm := Solve(p, Config{MaxSteps: 200000})
	if tm.Status != telamon.Solved {
		t.Fatalf("TelaMalloc failed: %+v", tm.Stats)
	}
	// At least one single strategy should do no better (more steps or
	// failure) than the combined policy on this instance.
	worse := 0
	for _, s := range Strategies {
		res := SolveWithStrategy(p, s, 200000)
		if res.Status != telamon.Solved || res.Stats.Steps >= tm.Stats.Steps {
			worse++
		}
	}
	if worse == 0 {
		t.Errorf("every single strategy strictly beat TelaMalloc (tm steps = %d)", tm.Stats.Steps)
	}
}

func TestLowestPositionStrategyOrdersByPosition(t *testing.T) {
	// With one block already low and another blocked above it, the lowest-
	// position strategy must pick the one that can go lowest first: on an
	// empty model that's simply a valid solve.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 2},
		},
		Memory: 6,
	}
	p.Normalize()
	res := SolveWithStrategy(p, StrategyLowestPosition, 1000)
	if res.Status != telamon.Solved {
		t.Fatalf("status %v", res.Status)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatal(err)
	}
}
