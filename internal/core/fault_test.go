package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/faultinject"
	"telamalloc/internal/phases"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

// faultParallelisms covers sequential, small-pool, and GOMAXPROCS runs.
var faultParallelisms = []int{1, 2, 0}

func multiGroup(t *testing.T) *buffers.Problem {
	t.Helper()
	p := workload.MultiComponent(4, 15, 110, 7)
	if got := len(phases.SplitIndependent(p)); got < 3 {
		t.Fatalf("fixture has %d independent groups, need >= 3", got)
	}
	return p
}

// TestInjectedPanicBecomesInternal: a panic injected at a solver choice
// point of any subproblem surfaces as telamon.Internal with an attributed
// error — never a crashed test binary — at every parallelism level.
func TestInjectedPanicBecomesInternal(t *testing.T) {
	p := multiGroup(t)
	for _, par := range faultParallelisms {
		in := faultinject.New(faultinject.Fault{Point: "group1", After: 5, Kind: faultinject.Panic})
		res := Solve(p, Config{Parallelism: par, Hook: in.Hook})
		if res.Status != telamon.Internal {
			t.Fatalf("parallelism %d: status %v, want internal-error", par, res.Status)
		}
		if res.Solution != nil {
			t.Fatalf("parallelism %d: non-nil solution on internal error", par)
		}
		if !errors.Is(res.Err, ErrPanic) {
			t.Fatalf("parallelism %d: err %v does not wrap ErrPanic", par, res.Err)
		}
		var ip *faultinject.InjectedPanic
		if !errors.As(res.Err, &ip) && !strings.Contains(res.Err.Error(), "faultinject") {
			t.Fatalf("parallelism %d: err %v does not carry the injected panic", par, res.Err)
		}
		if fired := in.Fired(); len(fired) != 1 {
			t.Fatalf("parallelism %d: fired %v, want exactly one fault", par, fired)
		}
	}
}

// panickyChooser is a user-supplied learned policy that misbehaves.
type panickyChooser struct{}

func (panickyChooser) Choose(*telamon.State, *telamon.DecisionPoint) (int, bool) {
	panic("model forest is corrupt")
}

// panickyGate misbehaves on the Nth decision point.
type panickyGate struct{ calls, after int }

func (g *panickyGate) Expensive(*telamon.State) bool {
	g.calls++
	if g.calls >= g.after {
		panic("gate feature vector out of range")
	}
	return false
}

// tightSingle returns a single-component instance hard enough to major-
// backtrack under strict candidates (verified: ~3 major backtracks), so the
// chooser hook is actually consulted.
func tightSingle() *buffers.Problem {
	return workload.Random(4, 103)
}

func TestPanicInChooserAttributed(t *testing.T) {
	p := tightSingle()
	res := Solve(p, Config{
		Chooser:              panickyChooser{},
		NoFallbackCandidates: true,
		DisableSplit:         true,
		MaxSteps:             200000,
	})
	if res.Status != telamon.Internal {
		t.Fatalf("status %v (major backtracks %d), want internal-error",
			res.Status, res.Stats.MajorBacktracks)
	}
	if !errors.Is(res.Err, ErrPanic) || !strings.Contains(res.Err.Error(), "backtrack chooser") {
		t.Fatalf("err %v: want ErrPanic attributed to the backtrack chooser", res.Err)
	}
}

func TestPanicInGateAttributed(t *testing.T) {
	p := tightSingle()
	res := Solve(p, Config{Gate: &panickyGate{after: 3}})
	if res.Status != telamon.Internal {
		t.Fatalf("status %v, want internal-error", res.Status)
	}
	if !errors.Is(res.Err, ErrPanic) || !strings.Contains(res.Err.Error(), "candidate gate") {
		t.Fatalf("err %v: want ErrPanic attributed to the candidate gate", res.Err)
	}
}

func TestPanicInCancelHookAttributed(t *testing.T) {
	p := multiGroup(t)
	for _, par := range faultParallelisms {
		var calls atomic.Int64
		cancel := func() bool {
			if calls.Add(1) >= 2 {
				panic("cancel hook dereferenced nil state")
			}
			return false
		}
		res := Solve(p, Config{Parallelism: par, Cancel: cancel})
		if res.Status != telamon.Internal {
			t.Fatalf("parallelism %d: status %v, want internal-error", par, res.Status)
		}
		if !errors.Is(res.Err, ErrPanic) || !strings.Contains(res.Err.Error(), "cancel hook") {
			t.Fatalf("parallelism %d: err %v: want ErrPanic attributed to the cancel hook", par, res.Err)
		}
	}
}

// TestInjectedStarvationBecomesBudget: a starved group reports Budget, the
// same way a genuinely exhausted step pot would.
func TestInjectedStarvationBecomesBudget(t *testing.T) {
	p := multiGroup(t)
	for _, par := range faultParallelisms {
		in := faultinject.New(faultinject.Fault{Point: "group0", After: 3, Kind: faultinject.Starve})
		res := Solve(p, Config{Parallelism: par, Hook: in.Hook})
		if res.Status != telamon.Budget {
			t.Fatalf("parallelism %d: status %v, want budget-exceeded", par, res.Status)
		}
		if res.Solution != nil {
			t.Fatalf("parallelism %d: non-nil solution on budget", par)
		}
	}
}

// TestContextCancellationLatencyBounded: even with every solver step slowed
// by a wedged hook, a context cancellation surfaces as Cancelled within the
// polling stride — the pipeline's liveness guarantee.
func TestContextCancellationLatencyBounded(t *testing.T) {
	// Big enough that the search spans several polling strides (256 budget
	// checks each): with every check slowed 50µs, the full solve would take
	// tens of milliseconds, and the 5ms cancellation must cut it short.
	p := workload.FullOverlap(400, 3)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	slow := func(string) bool {
		time.Sleep(50 * time.Microsecond)
		return false
	}
	start := time.Now()
	res := Solve(p, Config{Ctx: ctx, Hook: slow})
	elapsed := time.Since(start)
	if res.Status != telamon.Cancelled {
		t.Fatalf("status %v, want cancelled", res.Status)
	}
	// Worst case: one polling stride of slowed budget checks per group
	// after the cancel lands. Allow a very generous CI margin.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; latency bound violated", elapsed)
	}
}

// TestPreCancelledContext: a context that is already done never starts the
// search.
func TestPreCancelledContext(t *testing.T) {
	p := multiGroup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Solve(p, Config{Ctx: ctx})
	if res.Status != telamon.Cancelled {
		t.Fatalf("status %v, want cancelled", res.Status)
	}
	if res.Stats.Steps != 0 {
		t.Fatalf("search took %d steps under a pre-cancelled context", res.Stats.Steps)
	}
}

// TestDeterminismUnderStallFaults: stalls change timing, never results.
// Offsets must be byte-identical to the fault-free sequential solve at
// every parallelism level.
func TestDeterminismUnderStallFaults(t *testing.T) {
	p := multiGroup(t)
	clean := Solve(p, Config{Parallelism: 1})
	if clean.Status != telamon.Solved {
		t.Fatalf("fixture not solvable: %v", clean.Status)
	}
	for _, par := range faultParallelisms {
		in := faultinject.New(
			faultinject.Fault{Point: "group0", After: 2, Kind: faultinject.Stall, StallFor: 5 * time.Millisecond},
			faultinject.Fault{Point: "group2", After: 4, Kind: faultinject.Stall, StallFor: 5 * time.Millisecond},
		)
		res := Solve(p, Config{Parallelism: par, Hook: in.Hook})
		if res.Status != telamon.Solved {
			t.Fatalf("parallelism %d: status %v under stall faults", par, res.Status)
		}
		if !reflect.DeepEqual(res.Solution.Offsets, clean.Solution.Offsets) {
			t.Fatalf("parallelism %d: offsets diverged under stall faults", par)
		}
	}
}

// TestInternalFailureDeterministicAcrossParallelism: a point-targeted panic
// yields the same status and the same attributed group at every
// parallelism level.
func TestInternalFailureDeterministicAcrossParallelism(t *testing.T) {
	p := multiGroup(t)
	var firstErr string
	for i, par := range faultParallelisms {
		in := faultinject.New(faultinject.Fault{Point: "group2", After: 4, Kind: faultinject.Panic})
		res := Solve(p, Config{Parallelism: par, Hook: in.Hook})
		if res.Status != telamon.Internal {
			t.Fatalf("parallelism %d: status %v, want internal-error", par, res.Status)
		}
		if i == 0 {
			firstErr = res.Err.Error()
		} else if res.Err.Error() != firstErr {
			t.Fatalf("parallelism %d: error %q differs from sequential %q", par, res.Err, firstErr)
		}
	}
	if !strings.Contains(firstErr, "group 2") {
		t.Fatalf("error %q does not attribute the failing group", firstErr)
	}
}
