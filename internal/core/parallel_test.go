package core

import (
	"errors"
	"reflect"
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

// parallelisms are the pool sizes the determinism contract is checked at.
var parallelisms = []int{2, 4, 8}

// TestParallelMatchesSequential locks the tentpole contract: at every
// parallelism level, Solve returns the same Status and byte-identical
// Solution.Offsets as the sequential solve, on multi-component workloads of
// varying shape and budget.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		problem  *buffers.Problem
		maxSteps int64
	}{
		{"4x20-tight", workload.MultiComponent(4, 20, 105, 1), 0},
		{"8x12-tight", workload.MultiComponent(8, 12, 105, 2), 0},
		{"6x16-budgeted", workload.MultiComponent(6, 16, 110, 3), 200000},
		{"2x30-loose", workload.MultiComponent(2, 30, 130, 4), 0},
		{"single-component", workload.FullOverlap(60, 5), 0},
		{"tiny-budget", workload.MultiComponent(5, 10, 115, 6), 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := Solve(tc.problem, Config{MaxSteps: tc.maxSteps, Parallelism: 1})
			if seq.Status == telamon.Solved {
				if err := seq.Solution.Validate(tc.problem); err != nil {
					t.Fatalf("sequential solution invalid: %v", err)
				}
			}
			for _, par := range parallelisms {
				res := Solve(tc.problem, Config{MaxSteps: tc.maxSteps, Parallelism: par})
				if res.Status != seq.Status {
					t.Errorf("parallelism %d: status %v, sequential %v", par, res.Status, seq.Status)
					continue
				}
				if seq.Status != telamon.Solved {
					if res.Solution != nil {
						t.Errorf("parallelism %d: non-nil solution on %v", par, res.Status)
					}
					continue
				}
				if !reflect.DeepEqual(res.Solution.Offsets, seq.Solution.Offsets) {
					t.Errorf("parallelism %d: offsets differ from sequential", par)
				}
				if res.Stats != seq.Stats {
					t.Errorf("parallelism %d: stats diverge:\n par %+v\n seq %+v", par, res.Stats, seq.Stats)
				}
				if res.Subproblems != seq.Subproblems || len(res.Groups) != res.Subproblems {
					t.Errorf("parallelism %d: %d groups reported for %d subproblems",
						par, len(res.Groups), res.Subproblems)
				}
			}
		})
	}
}

// infeasibleMiddle builds three independent components where the middle one
// cannot be packed (two size-60 buffers overlapping under a limit of 100 —
// each individually fits, so validation passes), flanked by easy feasible
// components.
func infeasibleMiddle() *buffers.Problem {
	p := &buffers.Problem{Memory: 100, Name: "infeasible-middle"}
	add := func(start, end, size int64) {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: start, End: end, Size: size})
	}
	// Component 0: feasible.
	add(0, 10, 40)
	add(0, 10, 40)
	add(2, 8, 20)
	// Component 1: provably infeasible (60 + 60 > 100 while overlapping).
	add(20, 30, 60)
	add(20, 30, 60)
	// Component 2: feasible.
	add(40, 50, 50)
	add(42, 48, 30)
	p.Normalize()
	return p
}

// TestParallelInfeasibleMiddleGroup checks that the first failing group by
// group index — not wall-clock race order — determines the result at every
// parallelism level, and that failed solves carry no solution.
func TestParallelInfeasibleMiddleGroup(t *testing.T) {
	p := infeasibleMiddle()
	for _, par := range append([]int{1}, parallelisms...) {
		res := Solve(p, Config{Parallelism: par})
		if res.Status != telamon.Exhausted {
			t.Errorf("parallelism %d: status %v, want exhausted", par, res.Status)
		}
		if res.Solution != nil {
			t.Errorf("parallelism %d: failed solve returned a non-nil solution", par)
		}
		if res.Subproblems != 3 {
			t.Errorf("parallelism %d: %d subproblems, want 3", par, res.Subproblems)
		}
		// The determining group must be the middle one: group 0 solved,
		// group 1 exhausted; group 2's report is absent or cancelled.
		if len(res.Groups) != 3 {
			t.Fatalf("parallelism %d: %d group reports, want 3", par, len(res.Groups))
		}
		if res.Groups[0].Status != telamon.Solved {
			t.Errorf("parallelism %d: group 0 status %v, want solved", par, res.Groups[0].Status)
		}
		if res.Groups[1].Status != telamon.Exhausted {
			t.Errorf("parallelism %d: group 1 status %v, want exhausted", par, res.Groups[1].Status)
		}
	}
}

// TestFailedSolveReturnsNilSolution is the regression test for the
// zero-offset bug: a non-Solved result used to carry a solution whose
// unfilled offsets were 0, indistinguishable from real placements.
func TestFailedSolveReturnsNilSolution(t *testing.T) {
	// Unsatisfiable single component.
	p := &buffers.Problem{Memory: 100}
	p.Buffers = []buffers.Buffer{
		{Start: 0, End: 10, Size: 60},
		{Start: 0, End: 10, Size: 60},
	}
	p.Normalize()
	res := Solve(p, Config{})
	if res.Status != telamon.Exhausted {
		t.Fatalf("status %v, want exhausted", res.Status)
	}
	if res.Solution != nil {
		t.Fatalf("exhausted solve returned solution %+v", res.Solution)
	}

	// Budget-limited failure must also carry no solution.
	hard := workload.FullOverlap(120, 1)
	res = Solve(hard, Config{MaxSteps: 3})
	if res.Status == telamon.Solved {
		t.Skip("instance solved within 3 steps; cannot exercise budget path")
	}
	if res.Solution != nil {
		t.Fatalf("%v solve returned a non-nil solution", res.Status)
	}
}

// TestInvalidInputReportsInvalid is the regression test for the swallowed
// validation error: invalid input used to surface as Exhausted.
func TestInvalidInputReportsInvalid(t *testing.T) {
	bad := &buffers.Problem{Memory: 0}
	bad.Buffers = []buffers.Buffer{{Start: 0, End: 1, Size: 4}}
	res := Solve(bad, Config{})
	if res.Status != telamon.Invalid {
		t.Errorf("status %v, want invalid", res.Status)
	}
	if res.Err == nil {
		t.Error("Result.Err is nil for invalid input")
	}
	if !errors.Is(res.Err, buffers.ErrBadMemory) {
		t.Errorf("Err = %v, want ErrBadMemory", res.Err)
	}

	// Allocator.Allocate must return the validation error verbatim.
	_, err := Allocator{}.Allocate(bad)
	if !errors.Is(err, buffers.ErrBadMemory) {
		t.Errorf("Allocate err = %v, want ErrBadMemory", err)
	}

	negSize := &buffers.Problem{Memory: 64}
	negSize.Buffers = []buffers.Buffer{{Start: 0, End: 1, Size: -3}}
	if _, err := (Allocator{}).Allocate(negSize); !errors.Is(err, buffers.ErrNegativeSize) {
		t.Errorf("Allocate err = %v, want ErrNegativeSize", err)
	}
}

// TestCancelHookAbortsSolve exercises Config.Cancel: a tripped hook must
// abort before any group is searched.
func TestCancelHookAbortsSolve(t *testing.T) {
	p := workload.MultiComponent(4, 20, 105, 7)
	res := Solve(p, Config{Cancel: func() bool { return true }})
	if res.Status != telamon.Cancelled {
		t.Fatalf("status %v, want cancelled", res.Status)
	}
	if res.Solution != nil {
		t.Fatal("cancelled solve returned a solution")
	}
}

// TestSplitBudget pins the fair-share arithmetic of the step pot.
func TestSplitBudget(t *testing.T) {
	cases := []struct {
		pot  int64
		n    int
		want []int64
	}{
		{0, 3, []int64{0, 0, 0}},    // unlimited pot: unlimited shares
		{10, 3, []int64{4, 3, 3}},   // remainder to the earliest groups
		{9, 3, []int64{3, 3, 3}},    // even split
		{2, 4, []int64{1, 1, 1, 1}}, // pot < n: at least one step each
		{100, 1, []int64{100}},      // single group takes the whole pot
	}
	for _, tc := range cases {
		if got := splitBudget(tc.pot, tc.n); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitBudget(%d, %d) = %v, want %v", tc.pot, tc.n, got, tc.want)
		}
	}
}

// TestBudgetPotRetry verifies that unused steps flow back to the pot: a
// problem with one hard and several trivial components must still solve
// under a global budget whose fair share alone would starve the hard group.
func TestBudgetPotRetry(t *testing.T) {
	// One dense cluster plus many trivial singletons. Splitting the global
	// budget evenly gives the cluster only a small share; the singletons
	// return their unused steps, and the retry must finish the job.
	p := &buffers.Problem{Name: "pot-retry"}
	cluster := workload.FullOverlap(40, 3)
	p.Buffers = append(p.Buffers, cluster.Buffers...)
	var clock int64 = 100
	for i := 0; i < 39; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: clock, End: clock + 1, Size: 8})
		clock += 2
	}
	p.Memory = cluster.Memory
	p.Normalize()

	// Sanity: fair share alone is too small for the cluster.
	steps := Solve(p, Config{Parallelism: 1}).Stats.Steps
	budget := steps + 60 // enough overall, far too little per-group (40 groups)
	for _, par := range append([]int{1}, parallelisms...) {
		res := Solve(p, Config{MaxSteps: budget, Parallelism: par})
		if res.Status != telamon.Solved {
			t.Errorf("parallelism %d: status %v with pot %d (full solve takes %d steps)",
				par, res.Status, budget, steps)
			continue
		}
		retried := false
		for _, g := range res.Groups {
			if g.Retried {
				retried = true
			}
		}
		if !retried {
			t.Errorf("parallelism %d: expected at least one leftover-funded retry", par)
		}
	}
}
