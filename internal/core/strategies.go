package core

import (
	"sort"

	"telamalloc/internal/buffers"
	"telamalloc/internal/telamon"
)

// Strategy identifies one of the simple block-selection strategies the
// paper compares against in §7.2 / Figure 14. Each replaces TelaMalloc's
// block selection with a single rule; placement stays "lowest possible
// position" and backtracking reverts to plain last-valid-point hops.
type Strategy int

const (
	// StrategyMaxSize selects the largest unplaced block (corresponds to
	// Lee & Pisarchyk's greedy-by-size).
	StrategyMaxSize Strategy = iota
	// StrategyMaxArea selects the block with the largest size × lifetime.
	StrategyMaxArea
	// StrategyMaxLifetime selects the longest-lived block.
	StrategyMaxLifetime
	// StrategyLowestPosition selects the block that can currently be placed
	// at the lowest position (the best-fit strategy from Sekiyama et al.).
	StrategyLowestPosition
)

func (s Strategy) String() string {
	switch s {
	case StrategyMaxSize:
		return "max-size"
	case StrategyMaxArea:
		return "max-area"
	case StrategyMaxLifetime:
		return "max-lifetime"
	default:
		return "lowest-position"
	}
}

// Strategies lists all single-strategy baselines in display order.
var Strategies = []Strategy{StrategyMaxSize, StrategyMaxArea, StrategyMaxLifetime, StrategyLowestPosition}

// strategyPolicy is the single-heuristic ablation policy.
type strategyPolicy struct {
	strat Strategy
}

// Candidates returns every unplaced buffer ordered by the strategy's
// criterion, so minor backtracks naturally fall through to the next-best
// block.
func (sp strategyPolicy) Candidates(st *telamon.State) []int {
	var ids []int
	for i := range st.Prob.Buffers {
		if !st.Model.Placed(i) {
			ids = append(ids, i)
		}
	}
	switch sp.strat {
	case StrategyMaxSize:
		sort.Slice(ids, func(a, b int) bool {
			return keyDesc(st.Prob, ids[a], ids[b], func(x buffers.Buffer) int64 { return x.Size })
		})
	case StrategyMaxArea:
		sort.Slice(ids, func(a, b int) bool {
			ka, kb := st.Prob.Buffers[ids[a]].Area(), st.Prob.Buffers[ids[b]].Area()
			if ka != kb {
				return ka > kb
			}
			return ids[a] < ids[b]
		})
	case StrategyMaxLifetime:
		sort.Slice(ids, func(a, b int) bool {
			return keyDesc(st.Prob, ids[a], ids[b], buffers.Buffer.Lifetime)
		})
	case StrategyLowestPosition:
		pos := make(map[int]int64, len(ids))
		for _, id := range ids {
			if p, ok := st.Model.LowestFeasible(id); ok {
				pos[id] = p
			} else {
				pos[id] = 1 << 62
			}
		}
		sort.Slice(ids, func(a, b int) bool {
			if pos[ids[a]] != pos[ids[b]] {
				return pos[ids[a]] < pos[ids[b]]
			}
			return ids[a] < ids[b]
		})
	}
	return ids
}

func keyDesc(p *buffers.Problem, a, b int, key func(buffers.Buffer) int64) bool {
	ka, kb := key(p.Buffers[a]), key(p.Buffers[b])
	if ka != kb {
		return ka > kb
	}
	return a < b
}

// Placement places at the lowest possible position, like the paper's
// ablation setup.
func (sp strategyPolicy) Placement(st *telamon.State, buf int) (int64, bool) {
	return st.Model.LowestFeasible(buf)
}

// BacktrackTarget keeps the framework default; combined with
// DisableConflictDriven this yields plain "go to the last valid point".
func (sp strategyPolicy) BacktrackTarget(st *telamon.State, dp *telamon.DecisionPoint) (int, bool) {
	return 0, false
}

var _ telamon.Policy = strategyPolicy{}

// SolveWithStrategy runs the single-strategy searcher on p with the given
// step budget (0 = unlimited), reproducing the §7.2 ablation configuration:
// fixed backtracking, no candidate promotion, no phases.
func SolveWithStrategy(p *buffers.Problem, strat Strategy, maxSteps int64) telamon.Result {
	opts := telamon.Options{
		MaxSteps:              maxSteps,
		DisableConflictDriven: true,
		DisablePromotion:      true,
		StuckThreshold:        -1,
	}
	return telamon.Search(p, nil, strategyPolicy{strat}, opts)
}
