package core

import (
	"math/rand"
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/ilp"
	"telamalloc/internal/telamon"
)

func solveOK(t *testing.T, p *buffers.Problem, cfg Config) Result {
	t.Helper()
	res := Solve(p, cfg)
	if res.Status != telamon.Solved {
		t.Fatalf("status = %v, want solved (stats %+v)", res.Status, res.Stats)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	return res
}

func TestSolveTrivial(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 64},
			{Start: 5, End: 15, Size: 32},
		},
		Memory: 128,
	}
	p.Normalize()
	solveOK(t, p, Config{})
}

func TestSolveEmptyAndInvalid(t *testing.T) {
	empty := &buffers.Problem{Memory: 8}
	res := Solve(empty, Config{})
	if res.Status != telamon.Solved || len(res.Solution.Offsets) != 0 {
		t.Errorf("empty: %+v", res)
	}
	bad := &buffers.Problem{Memory: 0}
	if res := Solve(bad, Config{}); res.Status == telamon.Solved {
		t.Error("invalid problem reported solved")
	}
}

func TestSolveFigure1(t *testing.T) {
	// The running example of the paper: block (7) must be ordered against
	// blocks (1) and (2) correctly or the packing fails. TelaMalloc must
	// solve it at the exact optimal memory.
	p := figure1Problem()
	solveOK(t, p, Config{})
}

// figure1Problem approximates Figure 1's ten blocks at a tight limit.
func figure1Problem() *buffers.Problem {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 12, Size: 3},  // (1) long bottom block
			{Start: 0, End: 7, Size: 3},   // (2)
			{Start: 0, End: 3, Size: 2},   // (8) tall early block
			{Start: 7, End: 12, Size: 3},  // (4)
			{Start: 2, End: 9, Size: 2},   // (7) the pivotal block
			{Start: 12, End: 16, Size: 5}, // (5)
			{Start: 12, End: 16, Size: 3}, // (6)
			{Start: 16, End: 20, Size: 6}, // (9)
			{Start: 16, End: 20, Size: 2}, // (10)
			{Start: 3, End: 7, Size: 2},   // (3)
		},
		Memory: 10,
	}
	p.Normalize()
	return p
}

func TestSolveMatchesExactSolverFeasibility(t *testing.T) {
	// TelaMalloc is deliberately incomplete (the paper keeps an ILP
	// fallback for the long tail), so the property is asymmetric:
	//   - it must NEVER return a packing on a provably infeasible instance
	//     (soundness, enforced unconditionally), and
	//   - it must solve the large majority of instances the exact solver
	//     proves feasible (completeness in practice, enforced as a rate).
	rng := rand.New(rand.NewSource(12345))
	solvable, solved := 0, 0
	for trial := 0; trial < 60; trial++ {
		p := &buffers.Problem{}
		n := 2 + rng.Intn(14)
		for i := 0; i < n; i++ {
			start := rng.Int63n(15)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(10),
				Size:  1 + rng.Int63n(8),
				Align: []int64{0, 0, 2, 4}[rng.Intn(4)],
			})
		}
		p.Normalize()
		peak := buffers.Contention(p).Peak()
		p.Memory = peak + rng.Int63n(peak/2+2)
		exact := ilp.Solve(p, nil, ilp.Options{MaxSteps: 200000})
		tm := Solve(p, Config{MaxSteps: 100000})
		if tm.Status == telamon.Solved {
			if err := tm.Solution.Validate(p); err != nil {
				t.Fatalf("trial %d: invalid solution: %v", trial, err)
			}
			if exact.Status == ilp.Infeasible {
				t.Fatalf("trial %d: TelaMalloc 'solved' a provably infeasible instance", trial)
			}
		}
		if exact.Status == ilp.Solved {
			solvable++
			if tm.Status == telamon.Solved {
				solved++
			}
		}
	}
	if solvable == 0 {
		t.Fatal("no solvable instances generated")
	}
	if rate := float64(solved) / float64(solvable); rate < 0.85 {
		t.Errorf("TelaMalloc solved only %d/%d solver-solvable instances (%.0f%%)", solved, solvable, rate*100)
	} else {
		t.Logf("TelaMalloc solved %d/%d solver-solvable instances", solved, solvable)
	}
}

func TestSolveAtGenerousAndTightMemory(t *testing.T) {
	// The paper benchmarks at 1.1x the minimum required memory; TelaMalloc
	// must handle that reliably. At the exact optimum the problem is much
	// harder and occasional failures are expected (the long tail), so only
	// the aggregate is checked there.
	rng := rand.New(rand.NewSource(99))
	optFails := 0
	trials := 0
	for trial := 0; trial < 10; trial++ {
		p := &buffers.Problem{Memory: 1 << 30}
		for i := 0; i < 10; i++ {
			start := rng.Int63n(12)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start, End: start + 1 + rng.Int63n(8), Size: 1 + rng.Int63n(16),
			})
		}
		p.Normalize()
		limit, _, ok := ilp.MinimizeMemory(p, nil, ilp.Options{MaxSteps: 200000})
		if !ok {
			continue
		}
		trials++
		p.Memory = limit * 11 / 10
		solveOK(t, p, Config{MaxSteps: 200000})
		p.Memory = limit
		if res := Solve(p, Config{MaxSteps: 100000}); res.Status != telamon.Solved {
			optFails++
		}
	}
	if trials > 0 && optFails > trials/2 {
		t.Errorf("TelaMalloc failed at the exact optimum on %d/%d instances", optFails, trials)
	}
}

func TestSolveRespectsAlignment(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 5},
			{Start: 0, End: 10, Size: 8, Align: 8},
			{Start: 0, End: 10, Size: 3, Align: 4},
		},
		Memory: 24,
	}
	p.Normalize()
	res := solveOK(t, p, Config{})
	if res.Solution.Offsets[1]%8 != 0 || res.Solution.Offsets[2]%4 != 0 {
		t.Errorf("alignment violated: %v", res.Solution.Offsets)
	}
}

func TestSubproblemSplitting(t *testing.T) {
	// Two temporally disjoint clusters must be solved as two subproblems.
	p := &buffers.Problem{Memory: 8}
	for c := int64(0); c < 2; c++ {
		base := c * 100
		for i := 0; i < 2; i++ {
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: base, End: base + 10, Size: 4,
			})
		}
	}
	p.Normalize()
	res := solveOK(t, p, Config{})
	if res.Subproblems != 2 {
		t.Errorf("Subproblems = %d, want 2", res.Subproblems)
	}
	resNoSplit := solveOK(t, p, Config{DisableSplit: true})
	if resNoSplit.Subproblems != 1 {
		t.Errorf("DisableSplit Subproblems = %d, want 1", resNoSplit.Subproblems)
	}
}

func TestSolverGuidedBeatsSkylineOnOverhang(t *testing.T) {
	// §5.2's motivating case: after placing the early block and the
	// overhanging block, the late block fits only *under* the overhang.
	// Solver-guided placement finds it; skyline placement cannot, and with
	// backtracking disabled entirely the skyline variant must fail.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 2, End: 8, Size: 4}, // overhanging block (longest, placed first)
			{Start: 0, End: 4, Size: 4}, // early bottom block
			{Start: 4, End: 8, Size: 4}, // late block; must tuck underneath
		},
		Memory: 8,
	}
	p.Normalize()
	res := solveOK(t, p, Config{})
	if res.Status != telamon.Solved {
		t.Fatal("solver-guided TelaMalloc failed")
	}
	// The same instance under SkylineTop should need backtracks (or fail
	// with tiny budgets), demonstrating the value of solver placement.
	sky := Solve(p, Config{Placement: SkylineTop, MaxSteps: 4})
	solver := Solve(p, Config{MaxSteps: 4})
	if solver.Status != telamon.Solved {
		t.Errorf("solver-guided needed more than 4 steps: %+v", solver.Stats)
	}
	if sky.Status == telamon.Solved && sky.Stats.Backtracks() == 0 && solver.Stats.Backtracks() > 0 {
		t.Errorf("skyline unexpectedly strictly better: sky %+v vs solver %+v", sky.Stats, solver.Stats)
	}
}

func TestPhasesReduceWorkOnPhasedModels(t *testing.T) {
	// Models with alternating contention phases: grouping should not hurt,
	// and both configurations must solve.
	rng := rand.New(rand.NewSource(11))
	p := &buffers.Problem{Memory: 0}
	for phase := int64(0); phase < 5; phase++ {
		base := phase * 20
		for i := 0; i < 8; i++ {
			start := base + rng.Int63n(6)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start, End: start + 2 + rng.Int63n(10), Size: 2 + rng.Int63n(12),
			})
		}
	}
	p.Normalize()
	peak := buffers.Contention(p).Peak()
	p.Memory = peak * 11 / 10
	withPhases := solveOK(t, p, Config{})
	withoutPhases := solveOK(t, p, Config{DisablePhases: true})
	_ = withPhases
	_ = withoutPhases
}

func TestAllocatorInterface(t *testing.T) {
	var alloc heuristics.Allocator = Allocator{}
	p := figure1Problem()
	sol, err := alloc.Allocate(p)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if alloc.Name() != "telamalloc" {
		t.Errorf("Name = %q", alloc.Name())
	}
	bad := &buffers.Problem{Memory: 4, Buffers: []buffers.Buffer{
		{Start: 0, End: 2, Size: 4}, {Start: 0, End: 2, Size: 4},
	}}
	bad.Normalize()
	if _, err := alloc.Allocate(bad); err == nil {
		t.Error("Allocate succeeded on infeasible problem")
	}
}

func TestSolveIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := &buffers.Problem{Memory: 64}
	for i := 0; i < 30; i++ {
		start := rng.Int63n(25)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start, End: start + 1 + rng.Int63n(12), Size: 1 + rng.Int63n(10),
		})
	}
	p.Normalize()
	a := Solve(p, Config{MaxSteps: 100000})
	b := Solve(p, Config{MaxSteps: 100000})
	if a.Status != b.Status || a.Stats.Steps != b.Stats.Steps {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Status == telamon.Solved {
		for i := range a.Solution.Offsets {
			if a.Solution.Offsets[i] != b.Solution.Offsets[i] {
				t.Fatalf("offsets differ at %d", i)
			}
		}
	}
}
