package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/telamon"
)

// groupPoint is the stable fault-injection point label of a subproblem
// group: retries reuse the first attempt's label, so an injector's per-point
// counters see a deterministic call sequence at every parallelism level.
func groupPoint(i int) string { return fmt.Sprintf("group%d", i) }

// retryComponent re-runs a budget-starved group inside its own containment
// boundary: retries execute on the merge goroutine, outside runGroup's
// recover, and must not crash the process either.
func retryComponent(sub *buffers.Problem, cfg Config, budget int64, i int) (res telamon.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res = telamon.Result{Status: telamon.Internal}
			err = internalError(fmt.Sprintf("subproblem group %d (retry)", i), rec)
		}
	}()
	return solveComponent(sub, cfg, budget, cfg.Cancel, groupPoint(i)), nil
}

// GroupReport describes the outcome of one independent subproblem (§5.3
// split component), in group (time) order.
type GroupReport struct {
	// Buffers is the number of buffers in the group.
	Buffers int
	// Status is the group's final framework status. Cancelled means a
	// sibling group's definitive failure (or the caller's Cancel hook)
	// stopped this search before it reached its own verdict.
	Status telamon.Status
	// Steps is the group's final step count. When the group was retried,
	// this is the retry's count: the retry replaces the first attempt.
	Steps int64
	// Elapsed is the wall-clock time spent searching the group, summed
	// over the first attempt and any retry.
	Elapsed time.Duration
	// Retried reports whether the group re-ran with leftover budget after
	// exhausting its fair share of the step pot.
	Retried bool
}

// groupRun carries one group's solve state across the two scheduling
// phases.
type groupRun struct {
	nbuf    int
	sub     *buffers.Problem
	back    []int
	share   int64
	res     telamon.Result
	err     error // attributed panic when res.Status is telamon.Internal
	elapsed time.Duration
	retried bool
}

// effectiveParallelism resolves cfg.Parallelism against the group count and
// the config's concurrency constraints.
func effectiveParallelism(cfg Config, groups int) int {
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// The learned chooser and step gate are stateful across a solve and
	// track one coherent decision path; interleaving groups would corrupt
	// their observations, so they force sequential execution.
	if cfg.Chooser != nil || cfg.Gate != nil {
		par = 1
	}
	if par > groups {
		par = groups
	}
	return par
}

// splitBudget divides the global step pot fairly across n groups: every
// group gets pot/n, with the first pot%n groups taking one extra. A
// non-positive pot (unlimited) yields unlimited shares. A pot smaller than
// n still hands every group at least one step, because a zero share would
// read as "unlimited" downstream.
func splitBudget(pot int64, n int) []int64 {
	shares := make([]int64, n)
	if pot <= 0 {
		return shares
	}
	base, extra := pot/int64(n), pot%int64(n)
	for i := range shares {
		shares[i] = base
		if int64(i) < extra {
			shares[i]++
		}
		if shares[i] == 0 {
			shares[i] = 1
		}
	}
	return shares
}

// lowerFailed lowers the shared "lowest definitively failed group" index to
// i if i is smaller than the current value.
func lowerFailed(failed *atomic.Int64, i int) {
	for {
		cur := failed.Load()
		if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
			return
		}
	}
}

// solveGroups searches the independent subproblems on a bounded worker pool
// and merges the results deterministically. The contract, at every
// parallelism level:
//
//   - offsets are written back through each group's back mapping, so a
//     fully solved problem yields byte-identical Solution.Offsets;
//   - per-group stats are accumulated in group order;
//   - the first non-Solved group by group index — not by wall-clock race
//     order — determines the result;
//   - cfg.MaxSteps is a shared pot: each group receives a fair share up
//     front, and steps that solved groups leave unused fund sequential
//     in-order retries of groups that ran out of their share.
//
// Cooperative cancellation stops sibling searches as soon as one group
// fails definitively (Exhausted): a failure at group i cancels only groups
// with a higher index, so every group below the determining failure still
// reaches its own deterministic verdict.
func solveGroups(p *buffers.Problem, cfg Config, groups [][]int) Result {
	n := len(groups)
	runs := make([]groupRun, n)
	shares := splitBudget(cfg.MaxSteps, n)

	// failed holds the lowest group index that failed definitively; groups
	// above it are cancelled (or skipped before they start).
	var failed atomic.Int64
	failed.Store(int64(n))

	runGroup := func(i int) {
		r := &runs[i]
		// Containment boundary: a panic anywhere in this group's search —
		// worker code, the solver, or a user-supplied hook called from it —
		// is converted into an Internal result instead of crashing the
		// process (or, under parallelism, the whole program via an
		// unrecovered goroutine panic).
		defer func() {
			if rec := recover(); rec != nil {
				r.res = telamon.Result{Status: telamon.Internal}
				r.err = internalError(fmt.Sprintf("subproblem group %d", i), rec)
				lowerFailed(&failed, i)
			}
		}()
		r.share = shares[i]
		r.nbuf = len(groups[i])
		if failed.Load() < int64(i) || (cfg.Cancel != nil && cfg.Cancel()) {
			// A lower group already failed for real: this group's result
			// cannot influence the outcome, so skip the search entirely.
			r.res = telamon.Result{Status: telamon.Cancelled}
			return
		}
		r.sub, r.back = subProblem(p, groups[i])
		cancel := func() bool {
			return failed.Load() < int64(i) || (cfg.Cancel != nil && cfg.Cancel())
		}
		start := time.Now()
		r.res = solveComponent(r.sub, cfg, r.share, cancel, groupPoint(i))
		r.elapsed = time.Since(start)
		if r.res.Status == telamon.Exhausted || r.res.Status == telamon.Internal {
			lowerFailed(&failed, i)
		}
	}

	if par := effectiveParallelism(cfg, n); par <= 1 {
		for i := range runs {
			runGroup(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(par)
		for w := 0; w < par; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runGroup(i)
				}
			}()
		}
		wg.Wait()
	}

	return mergeGroups(p, cfg, runs)
}

// mergeGroups performs the deterministic sequential merge: leftover-funded
// retries in group order, stats accumulation in group order, and the first
// non-Solved group deciding the result.
func mergeGroups(p *buffers.Problem, cfg Config, runs []groupRun) Result {
	out := Result{
		Status:      telamon.Solved,
		Solution:    buffers.NewSolution(len(p.Buffers)),
		Subproblems: len(runs),
		Groups:      make([]GroupReport, len(runs)),
	}

	// The leftover pot collects the steps solved groups did not use. Only
	// groups that ran to their own verdict contribute — a cancelled group
	// stops at a wall-clock-dependent point, and counting its remainder
	// would make retry budgets (and so results) depend on timing.
	var leftover int64
	if cfg.MaxSteps > 0 {
		for i := range runs {
			if runs[i].res.Status == telamon.Solved {
				if unused := runs[i].share - runs[i].res.Stats.Steps; unused > 0 {
					leftover += unused
				}
			}
		}
	}

	for i := range runs {
		r := &runs[i]
		if r.res.Status == telamon.Budget && cfg.MaxSteps > 0 && leftover > 0 {
			// The group ran out of its fair share while siblings left
			// steps in the pot: retry from scratch with share + leftover.
			// Retries run sequentially in group order, so the budget each
			// one sees is the same at every parallelism level.
			budget := r.share + leftover
			start := time.Now()
			r.res, r.err = retryComponent(r.sub, cfg, budget, i)
			r.elapsed += time.Since(start)
			r.retried = true
			if r.res.Status == telamon.Solved {
				leftover = budget - r.res.Stats.Steps
				if leftover < 0 {
					leftover = 0
				}
			}
		}
		accumulate(&out.Stats, r.res.Stats)
		out.Groups[i] = GroupReport{
			Buffers: r.nbuf,
			Status:  r.res.Status,
			Steps:   r.res.Stats.Steps,
			Elapsed: r.elapsed,
			Retried: r.retried,
		}
		if r.res.Status != telamon.Solved {
			out.Status = r.res.Status
			out.Err = r.err
			// A failed solve has no meaningful offsets; returning the
			// partially filled solution would leave unplaced buffers at
			// address 0, indistinguishable from real placements.
			out.Solution = nil
			// Groups past the determining failure are not retried, but
			// their phase-A outcomes still belong in the report — leaving
			// them zero-valued would read as "0 buffers, solved".
			for j := i + 1; j < len(runs); j++ {
				out.Groups[j] = GroupReport{
					Buffers: runs[j].nbuf,
					Status:  runs[j].res.Status,
					Steps:   runs[j].res.Stats.Steps,
					Elapsed: runs[j].elapsed,
				}
			}
			return out
		}
		for subID, off := range r.res.Solution.Offsets {
			out.Solution.Offsets[r.back[subID]] = off
		}
	}
	return out
}
