// Package core implements TelaMalloc itself: the heuristic-guided,
// solver-backed memory allocator of the paper (§5). It plugs a
// domain-specific policy into the Telamon search framework:
//
//   - three block-selection heuristics tried in order at every decision
//     point — longest lifetime, largest size, largest area (§5.1);
//   - solver-guided placement: each block goes to the lowest position the
//     CP solver currently considers valid, which may be underneath
//     overhangs a skyline would miss (§5.2, Figure 8b);
//   - contention-based grouping: blocks in the current high-contention
//     phase are preferred, with other phases as ordered fallbacks (§5.3);
//   - smart backtracking: conflict-driven backjumps, promotion of failed
//     candidates to the backtrack target, and stuck detection, all
//     provided by the framework (§5.4);
//   - optional ML-guided backtracking via the BacktrackChooser hook (§6);
//   - independent-subproblem splitting at times no buffer crosses (§5.3).
package core

import (
	"context"
	"fmt"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/obs"
	"telamalloc/internal/phases"
	"telamalloc/internal/telamon"
)

// PlacementMode selects how a candidate block's position is chosen.
type PlacementMode int

const (
	// SolverGuided asks the CP solver for the lowest currently-valid
	// position (Figure 8b). This is TelaMalloc's production setting.
	SolverGuided PlacementMode = iota
	// SkylineTop drops the block on top of its placed temporal neighbours
	// (Figure 8a), the simple strategy the paper shows is insufficient.
	SkylineTop
)

// BacktrackChooser lets an external component (the learned model of §6)
// override major-backtrack targets. Choose returns the stack index to
// resume at; ok=false falls back to the default conflict-driven jump.
type BacktrackChooser interface {
	Choose(st *telamon.State, exhausted *telamon.DecisionPoint) (target int, ok bool)
}

// CandidateGate decides, per decision point, whether to generate the
// expensive candidate set (every unplaced buffer as fallback) or the cheap
// one (the three heuristic picks per phase). This is the step-level learned
// gate §8.3 of the paper proposes as future work; see mlpolicy.StepGate.
type CandidateGate interface {
	Expensive(st *telamon.State) bool
}

// Config tunes TelaMalloc. The zero value is the production configuration.
type Config struct {
	// MaxSteps caps placement attempts per subproblem (0 = unlimited).
	MaxSteps int64
	// Deadline aborts the allocation when passed (zero = none).
	Deadline time.Time
	// Placement selects the placement strategy (default SolverGuided).
	Placement PlacementMode
	// DisablePhases turns off contention-based grouping (ablation).
	DisablePhases bool
	// DisableSplit turns off independent-subproblem splitting (ablation).
	DisableSplit bool
	// DisableConflictDriven reverts major backtracks to fixed one-level
	// hops (ablation; the paper's "initial implementation").
	DisableConflictDriven bool
	// DisablePromotion turns off candidate promotion on major backtracks.
	DisablePromotion bool
	// NoFallbackCandidates restricts each decision point to the paper's
	// three heuristic picks per phase instead of falling through to every
	// unplaced buffer. More major backtracks occur; used when training and
	// evaluating the learned backtracking policy, which assumes the paper's
	// candidate economics.
	NoFallbackCandidates bool
	// StuckThreshold forwards to the framework (0 = default 100,
	// negative = disabled).
	StuckThreshold int
	// Parallelism bounds how many independent subproblems (§5.3 splits)
	// are searched concurrently. 0 selects GOMAXPROCS; 1 solves the
	// groups sequentially in group order. Status and Solution are
	// identical at every parallelism level; only wall-clock time and, on
	// failure paths, the per-group reports and aggregate stats may differ.
	Parallelism int
	// Cancel, when non-nil, cooperatively aborts the whole solve. It is
	// polled periodically from every search worker, so it must be safe to
	// call concurrently. A cancelled solve reports telamon.Cancelled.
	Cancel func() bool
	// Ctx, when non-nil, cancels the solve when the context is done —
	// cancelled or past its deadline — reporting telamon.Cancelled. It
	// rides the same polling path as Cancel, so cancellation latency is
	// bounded by the polling stride.
	Ctx context.Context
	// Hook, when non-nil, is a test-only fault-injection point: it is
	// called on every budget check of every subproblem search with a
	// stable point label ("group<i>"), and returning true starves that
	// search's budget (status telamon.Budget). The hook may stall or
	// panic; panics are contained and surface as telamon.Internal. See
	// internal/faultinject. Must be nil in production configurations.
	Hook func(point string) bool
	// Hint, when non-nil, proposes a complete packing to try before any
	// search: a replayed solution from the serving layer's cache. It is
	// trusted only after validating against the problem; an invalid hint is
	// silently ignored and the solve proceeds cold. Hints never change the
	// answer's validity — only how fast a repeated problem reaches it.
	Hint *buffers.Solution
	// Obs, when non-nil, routes this solve's telemetry (effort counters,
	// per-solve histograms, the stride-sampled live step counter) into the
	// given registry instead of the process-global obs.Default(). Recording
	// is always on: it costs a handful of atomic adds per solve plus one
	// atomic add per budget-poll stride, which benchmarks cannot
	// distinguish from noise.
	Obs *obs.Registry
	// Chooser, when non-nil, supplies learned backtrack decisions.
	Chooser BacktrackChooser
	// Gate, when non-nil, decides per decision point whether to build the
	// expensive candidate set; it overrides NoFallbackCandidates.
	Gate CandidateGate
}

// Result is the outcome of an allocation: the framework result plus
// aggregate statistics across subproblems.
type Result struct {
	Status telamon.Status
	// Err carries the failure detail for statuses that have one: the
	// input-validation error when Status is telamon.Invalid, the
	// attributed panic when Status is telamon.Internal, nil otherwise. It
	// keeps structurally invalid input and contained crashes
	// distinguishable from a genuinely exhausted search.
	Err error
	// Solution holds the packed offsets when Status is Solved and is nil
	// otherwise: a failed solve has no meaningful offsets, and a
	// partially filled solution would leave unplaced buffers at address
	// 0, indistinguishable from real placements.
	Solution *buffers.Solution
	Stats    telamon.Stats
	// Subproblems is the number of independent components solved.
	Subproblems int
	// Groups reports each independent component's outcome in group (time)
	// order; empty for problems with no buffers.
	Groups []GroupReport
}

// Solve runs TelaMalloc on p. Independent subproblems are dispatched to a
// bounded worker pool (Config.Parallelism) with a deterministic merge; see
// solveGroups for the contract. Every solve records its effort telemetry
// into Config.Obs (default: the process-global registry); during the
// search, progress is additionally sampled on the budget-poll stride so
// live scrapes see long solves move.
func Solve(p *buffers.Problem, cfg Config) Result {
	m := solverMetricsFor(cfg.Obs)
	start := time.Now()
	res := solve(p, cfg)
	m.record(res, time.Since(start))
	return res
}

// solve is Solve without the telemetry wrapper.
func solve(p *buffers.Problem, cfg Config) Result {
	if err := p.Validate(); err != nil {
		return Result{Status: telamon.Invalid, Err: err}
	}
	cfg = cfg.withContext()
	if len(p.Buffers) == 0 {
		return Result{Status: telamon.Solved, Solution: buffers.NewSolution(0)}
	}
	if cfg.Hint != nil && cfg.Hint.Validate(p) == nil {
		// A valid replayed packing short-circuits the whole search: the
		// answer is already proven, so a warm start costs one validation
		// sweep. Invalid hints fall through to the cold path below.
		return Result{Status: telamon.Solved, Solution: cfg.Hint.Clone()}
	}
	var groups [][]int
	if cfg.DisableSplit {
		ids := make([]int, len(p.Buffers))
		for i := range ids {
			ids[i] = i
		}
		groups = [][]int{ids}
	} else {
		groups = phases.SplitIndependent(p)
	}
	return solveGroups(p, cfg, groups)
}

// Allocator adapts Solve to the heuristics.Allocator interface so the
// experiment harness can treat every strategy uniformly.
type Allocator struct {
	Config Config
}

// Name implements heuristics.Allocator.
func (a Allocator) Name() string { return "telamalloc" }

// Allocate implements heuristics.Allocator. Validation and containment
// errors are returned verbatim so callers can distinguish bad input and
// contained panics from a failed search.
func (a Allocator) Allocate(p *buffers.Problem) (*buffers.Solution, error) {
	return a.AllocateContext(context.Background(), p)
}

// AllocateContext is Allocate with cooperative cancellation: the solve
// aborts within the polling stride once ctx is done. It satisfies
// portfolio.ContextAllocator, so a racing portfolio can stop a losing
// TelaMalloc member as soon as a sibling wins.
func (a Allocator) AllocateContext(ctx context.Context, p *buffers.Problem) (*buffers.Solution, error) {
	cfg := a.Config
	if ctx != nil {
		if cfg.Ctx != nil {
			// Both a config context and a call context: poll both. A nil
			// Done channel (e.g. context.Background) never fires.
			prev := cfg.Cancel
			done := cfg.Ctx.Done()
			cfg.Cancel = func() bool {
				select {
				case <-done:
					return true
				default:
				}
				return prev != nil && prev()
			}
		}
		cfg.Ctx = ctx
	}
	res := Solve(p, cfg)
	if res.Err != nil {
		return nil, res.Err
	}
	if res.Status != telamon.Solved {
		return nil, fmt.Errorf("telamalloc: %v after %d steps", res.Status, res.Stats.Steps)
	}
	return res.Solution, nil
}

var _ heuristics.Allocator = Allocator{}

// subProblem extracts the buffers with the given IDs into a normalized
// problem, returning the mapping from new IDs back to original ones. A nil
// ids takes every buffer.
func subProblem(p *buffers.Problem, ids []int) (*buffers.Problem, []int) {
	if ids == nil {
		ids = make([]int, len(p.Buffers))
		for i := range ids {
			ids[i] = i
		}
	}
	sub := &buffers.Problem{Memory: p.Memory, Name: p.Name}
	back := make([]int, len(ids))
	for newID, oldID := range ids {
		sub.Buffers = append(sub.Buffers, p.Buffers[oldID])
		back[newID] = oldID
	}
	sub.Normalize()
	return sub, back
}

// solveComponent searches one independent subproblem. maxSteps is the
// group's allotment from the shared pot (0 = unlimited), cancel the
// cooperative-cancellation hook (nil = never), and point the stable label
// handed to the fault-injection hook.
func solveComponent(p *buffers.Problem, cfg Config, maxSteps int64, cancel func() bool, point string) telamon.Result {
	policy := newPolicy(p, cfg)
	opts := telamon.Options{
		MaxSteps:              maxSteps,
		Deadline:              cfg.Deadline,
		StuckThreshold:        cfg.StuckThreshold,
		DisableConflictDriven: cfg.DisableConflictDriven,
		DisablePromotion:      cfg.DisablePromotion,
		Cancel:                cancel,
	}
	if cfg.Hook != nil {
		hook := cfg.Hook
		opts.TestHook = func() bool { return hook(point) }
	}
	opts.OnSample = solverMetricsFor(cfg.Obs).sampler()
	return telamon.Search(p, nil, policy, opts)
}

func accumulate(dst *telamon.Stats, src telamon.Stats) {
	dst.Steps += src.Steps
	dst.Placements += src.Placements
	dst.MinorBacktracks += src.MinorBacktracks
	dst.MajorBacktracks += src.MajorBacktracks
	if src.MaxDepth > dst.MaxDepth {
		dst.MaxDepth = src.MaxDepth
	}
	dst.SolverStats.Propagations += src.SolverStats.Propagations
	dst.SolverStats.OrderFixes += src.SolverStats.OrderFixes
	dst.SolverStats.Conflicts += src.SolverStats.Conflicts
	dst.SolverStats.PairWakeups += src.SolverStats.PairWakeups
}
