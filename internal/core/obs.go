package core

import (
	"sync"
	"time"

	"telamalloc/internal/obs"
	"telamalloc/internal/telamon"
)

// Solver metric names (the naming contract is recorded in DESIGN.md §11).
// Effort counters are exact once a solve returns; the steps counter is
// additionally live during a solve, fed on the search's budget-poll stride
// so a scrape can watch a long search make progress.
const (
	metricSolves      = "telamalloc_solver_solves_total"
	metricSteps       = "telamalloc_solver_steps_total"
	metricBacktracks  = "telamalloc_solver_backtracks_total"
	metricSubproblems = "telamalloc_solver_subproblems_total"
	metricResults     = "telamalloc_solver_results_total"
	metricStepsHist   = "telamalloc_solver_steps_per_solve"
	metricFanout      = "telamalloc_solver_subproblem_fanout"
	metricSeconds     = "telamalloc_solver_seconds"
)

// solverMetrics is one registry's bound set of solver metric handles:
// binding happens once per registry, not once per solve, so the per-solve
// cost is a handful of atomic adds.
type solverMetrics struct {
	solves      *obs.Counter
	steps       *obs.Counter
	backtracks  *obs.Counter
	subproblems *obs.Counter
	results     map[telamon.Status]*obs.Counter
	stepsHist   *obs.Histogram
	fanout      *obs.Histogram
	seconds     *obs.Histogram
}

var solverMetricsCache sync.Map // *obs.Registry -> *solverMetrics

// solverMetricsFor returns the bound handles for r (nil selects the
// process-global obs.Default registry).
func solverMetricsFor(r *obs.Registry) *solverMetrics {
	if r == nil {
		r = obs.Default()
	}
	if m, ok := solverMetricsCache.Load(r); ok {
		return m.(*solverMetrics)
	}
	m := &solverMetrics{
		solves:      r.Counter(metricSolves, "completed core.Solve calls"),
		steps:       r.Counter(metricSteps, "placement attempts across all searches, sampled on the solver's budget-poll stride"),
		backtracks:  r.Counter(metricBacktracks, "minor plus major backtracks across all searches"),
		subproblems: r.Counter(metricSubproblems, "independent subproblem components searched"),
		results:     make(map[telamon.Status]*obs.Counter),
		stepsHist:   r.Histogram(metricStepsHist, "placement attempts per core.Solve call"),
		fanout:      r.Histogram(metricFanout, "independent subproblem components per core.Solve call"),
		seconds:     r.Histogram(metricSeconds, "wall-clock time per core.Solve call"),
	}
	for _, st := range []telamon.Status{
		telamon.Solved, telamon.Exhausted, telamon.Budget,
		telamon.Cancelled, telamon.Invalid, telamon.Internal,
	} {
		m.results[st] = r.Counter(metricResults, "core.Solve outcomes by status",
			obs.Label{Key: "status", Value: st.String()})
	}
	actual, _ := solverMetricsCache.LoadOrStore(r, m)
	return actual.(*solverMetrics)
}

// sampler returns the stride-sampling callback handed to the framework: an
// atomic add on the shared steps counter. One closure per component solve;
// nothing allocates inside the search loop.
func (m *solverMetrics) sampler() func(int64) {
	steps := m.steps
	return func(d int64) { steps.Add(d) }
}

// record folds one finished solve into the registry.
func (m *solverMetrics) record(res Result, elapsed time.Duration) {
	m.solves.Inc()
	if c, ok := m.results[res.Status]; ok {
		c.Inc()
	}
	m.backtracks.Add(res.Stats.Backtracks())
	m.subproblems.Add(int64(res.Subproblems))
	m.stepsHist.Observe(float64(res.Stats.Steps))
	m.fanout.Observe(float64(res.Subproblems))
	m.seconds.ObserveDuration(elapsed.Nanoseconds())
}
