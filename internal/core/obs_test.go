package core

import (
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/obs"
	"telamalloc/internal/telamon"
)

// obsProblem is a small instance that requires a real (multi-step) search.
func obsProblem() *buffers.Problem {
	p := &buffers.Problem{Memory: 12}
	for i := int64(0); i < 6; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: i, End: i + 3, Size: 4})
	}
	p.Normalize()
	return p
}

func TestSolveRecordsEffortTelemetry(t *testing.T) {
	r := obs.NewRegistry()
	m := solverMetricsFor(r)
	if again := solverMetricsFor(r); again != m {
		t.Fatal("solver metrics must bind once per registry")
	}

	res := Solve(obsProblem(), Config{Obs: r, Parallelism: 1})
	if res.Status != telamon.Solved {
		t.Fatalf("solve failed: %v", res.Status)
	}
	if got := m.solves.Value(); got != 1 {
		t.Errorf("solves counter %d, want 1", got)
	}
	if got := m.results[telamon.Solved].Value(); got != 1 {
		t.Errorf("solved-status counter %d, want 1", got)
	}
	// The stride-sampled live counter flushes on search exit, so after the
	// solve it must equal the exact aggregate step count.
	if got, want := m.steps.Value(), res.Stats.Steps; got != want {
		t.Errorf("sampled steps %d, want exact total %d", got, want)
	}
	if got := m.stepsHist.Count(); got != 1 {
		t.Errorf("steps histogram count %d, want 1", got)
	}
	if got, want := m.subproblems.Value(), int64(res.Subproblems); got != want {
		t.Errorf("subproblems counter %d, want %d", got, want)
	}
	if m.seconds.Count() != 1 {
		t.Errorf("seconds histogram count %d, want 1", m.seconds.Count())
	}

	// A second solve on the same registry accumulates.
	Solve(obsProblem(), Config{Obs: r, Parallelism: 1})
	if got := m.solves.Value(); got != 2 {
		t.Errorf("solves counter %d after second solve, want 2", got)
	}
	if got, want := m.steps.Value(), 2*res.Stats.Steps; got != want {
		t.Errorf("sampled steps %d after identical second solve, want %d", got, want)
	}
}

func TestSolveInvalidStatusCounted(t *testing.T) {
	r := obs.NewRegistry()
	m := solverMetricsFor(r)
	p := &buffers.Problem{Memory: -1}
	p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 1, Size: 1})
	if res := Solve(p, Config{Obs: r}); res.Status != telamon.Invalid {
		t.Fatalf("status %v, want invalid", res.Status)
	}
	if got := m.results[telamon.Invalid].Value(); got != 1 {
		t.Errorf("invalid-status counter %d, want 1", got)
	}
}
