package core

import (
	"errors"
	"fmt"

	"telamalloc/internal/telamon"
)

// ErrPanic is wrapped by every error produced from a contained panic, so
// upper layers (spill planning, the public pipeline) can distinguish an
// internal failure from a genuine search failure instead of, say, evicting
// buffers to work around a crashing policy.
var ErrPanic = errors.New("core: contained panic")

// This file is the panic-containment boundary of the allocator. TelaMalloc
// runs inside production compilers where a crash in the allocator — or in a
// user-supplied learned policy plugged into it — must never take down the
// host process. Every worker goroutine and every call into user-supplied
// code (Chooser, Gate, Cancel, Hook) is guarded: a panic is recovered at
// the subproblem boundary and surfaced as telamon.Internal with an error
// naming the component that misbehaved, so callers see ErrInternal instead
// of a crash.

// hookPanic wraps a panic escaping a user-supplied hook with the hook's
// name, so the recovery boundary can attribute the failure. It is re-thrown
// immediately and only ever observed by internalError.
type hookPanic struct {
	hook string
	val  any
}

// asHookPanic tags a recovered value with the hook it escaped from,
// preserving an existing tag (the innermost hook is the culprit).
func asHookPanic(hook string, r any) hookPanic {
	if hp, ok := r.(hookPanic); ok {
		return hp
	}
	return hookPanic{hook: hook, val: r}
}

// internalError renders a recovered panic as the error carried by an
// Internal result: which component panicked, at which pipeline point, and
// the panic value itself.
func internalError(point string, r any) error {
	if hp, ok := r.(hookPanic); ok {
		return fmt.Errorf("%w in user-supplied %s (%s): %v", ErrPanic, hp.hook, point, hp.val)
	}
	return fmt.Errorf("%w in %s: %v", ErrPanic, point, r)
}

// guardCancel wraps a user-supplied cancellation hook so that a panic in it
// is attributed to "cancel hook" when the containment boundary recovers it.
func guardCancel(cancel func() bool) func() bool {
	if cancel == nil {
		return nil
	}
	return func() (v bool) {
		defer func() {
			if r := recover(); r != nil {
				panic(asHookPanic("cancel hook", r))
			}
		}()
		return cancel()
	}
}

// guardHook wraps the test-only fault-injection hook the same way.
func guardHook(hook func(point string) bool) func(point string) bool {
	if hook == nil {
		return nil
	}
	return func(point string) (v bool) {
		defer func() {
			if r := recover(); r != nil {
				panic(asHookPanic("test hook", r))
			}
		}()
		return hook(point)
	}
}

// safeChoose calls a user-supplied backtrack chooser under attribution.
func safeChoose(c BacktrackChooser, st *telamon.State, dp *telamon.DecisionPoint) (target int, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			panic(asHookPanic("backtrack chooser", r))
		}
	}()
	return c.Choose(st, dp)
}

// safeGate calls a user-supplied candidate gate under attribution.
func safeGate(g CandidateGate, st *telamon.State) (v bool) {
	defer func() {
		if r := recover(); r != nil {
			panic(asHookPanic("candidate gate", r))
		}
	}()
	return g.Expensive(st)
}

// withContext folds Config.Ctx into the cooperative-cancellation hook: once
// the context is done — cancelled or past its deadline — every poll reports
// cancellation and the solve stops with telamon.Cancelled within the
// polling stride. The user's own Cancel hook (guarded for attribution) is
// still consulted when the context is live.
func (cfg Config) withContext() Config {
	cfg.Cancel = guardCancel(cfg.Cancel)
	cfg.Hook = guardHook(cfg.Hook)
	if cfg.Ctx == nil {
		return cfg
	}
	prev := cfg.Cancel
	done := cfg.Ctx.Done()
	cfg.Cancel = func() bool {
		select {
		case <-done:
			return true
		default:
		}
		return prev != nil && prev()
	}
	return cfg
}
