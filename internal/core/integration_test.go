package core

import (
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

// TestAllModelsAllocateAtBenchmarkRatio is the end-to-end check behind
// Figure 12: at 110% of the contention peak, TelaMalloc must solve every
// benchmark model proxy with a valid packing, and whatever the baselines
// return must be valid too.
func TestAllModelsAllocateAtBenchmarkRatio(t *testing.T) {
	for _, m := range workload.Models {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			p := m.Generate(1)
			peak := buffers.Contention(p).Peak()
			p.Memory = peak * 110 / 100

			res := Solve(p, Config{MaxSteps: 500000})
			if res.Status != telamon.Solved {
				t.Fatalf("TelaMalloc failed: %+v", res.Stats)
			}
			if err := res.Solution.Validate(p); err != nil {
				t.Fatalf("invalid TelaMalloc packing: %v", err)
			}
			if got := res.Solution.PeakUsage(p); got > p.Memory {
				t.Fatalf("peak %d exceeds limit %d", got, p.Memory)
			}

			for _, alloc := range []heuristics.Allocator{
				heuristics.GreedyContention{},
				heuristics.BestFit{},
			} {
				sol, err := alloc.Allocate(p)
				if err != nil {
					continue // baselines may legitimately fail at 110%
				}
				if verr := sol.Validate(p); verr != nil {
					t.Errorf("%s returned invalid packing: %v", alloc.Name(), verr)
				}
			}
		})
	}
}

// TestModelsAcrossSeedsAndRatios sweeps seeds and memory ratios: TelaMalloc
// results must always be valid, and looser memory must never turn a
// solvable instance unsolvable.
func TestModelsAcrossSeedsAndRatios(t *testing.T) {
	models := []string{"FPN Model", "OpenPose", "SRGAN"}
	for _, name := range models {
		m, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			p := m.Generate(seed)
			peak := buffers.Contention(p).Peak()
			solvedAt := -1
			for _, ratio := range []int64{105, 115, 140} {
				q := p.Clone()
				q.Memory = peak * ratio / 100
				res := Solve(q, Config{MaxSteps: 300000})
				if res.Status == telamon.Solved {
					if err := res.Solution.Validate(q); err != nil {
						t.Fatalf("%s seed %d ratio %d: %v", name, seed, ratio, err)
					}
					if solvedAt < 0 {
						solvedAt = int(ratio)
					}
				} else if solvedAt >= 0 {
					t.Errorf("%s seed %d: solved at %d%% but failed at looser %d%%",
						name, seed, solvedAt, ratio)
				}
			}
			if solvedAt < 0 {
				t.Errorf("%s seed %d: unsolved even at 140%% of peak", name, seed)
			}
		}
	}
}

// TestStrictModeMatchesDefaultOnModels verifies the paper-faithful strict
// candidate mode still handles the benchmark models at 110%.
func TestStrictModeMatchesDefaultOnModels(t *testing.T) {
	for _, m := range workload.Models {
		p := m.Generate(1)
		peak := buffers.Contention(p).Peak()
		p.Memory = peak * 110 / 100
		res := Solve(p, Config{MaxSteps: 500000, NoFallbackCandidates: true})
		if res.Status != telamon.Solved {
			t.Errorf("%s: strict mode failed: %+v", m.Name, res.Stats)
			continue
		}
		if err := res.Solution.Validate(p); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}
