package mlpolicy

import (
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/gbt"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

func TestGateTrainingRunProducesLabelledSamples(t *testing.T) {
	var ds gbt.Dataset
	for seed := int64(0); seed < 10 && len(ds.X) == 0; seed++ {
		p := tightProblem(seed, 26, 101)
		part := GateTrainingRun(p, 40000)
		ds.X = append(ds.X, part.X...)
		ds.Y = append(ds.Y, part.Y...)
	}
	if len(ds.X) == 0 {
		t.Skip("no decision points recorded")
	}
	pos, neg := 0, 0
	for i, x := range ds.X {
		if len(x) != GateFeatures {
			t.Fatalf("sample %d has width %d", i, len(x))
		}
		for f, v := range x {
			if v < 0 || v > 1.0001 {
				t.Errorf("gate feature %d = %g out of [0,1]", f, v)
			}
		}
		if ds.Y[i] == 1 {
			pos++
		} else if ds.Y[i] == 0 {
			neg++
		} else {
			t.Fatalf("non-binary label %g", ds.Y[i])
		}
	}
	t.Logf("samples: %d risky, %d safe", pos, neg)
	if neg == 0 {
		t.Error("every decision point labelled risky — labels are degenerate")
	}
}

func TestGateEndToEnd(t *testing.T) {
	// Collect, train, and use the gate; the gated search must stay valid
	// and the gate must actually make decisions.
	var ds gbt.Dataset
	for seed := int64(0); seed < 12; seed++ {
		p := tightProblem(seed, 26, 101)
		part := GateTrainingRun(p, 40000)
		ds.X = append(ds.X, part.X...)
		ds.Y = append(ds.Y, part.Y...)
	}
	if len(ds.X) < 10 {
		t.Skip("not enough samples")
	}
	tree, err := TrainGate(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	solved := 0
	for seed := int64(50); seed < 56; seed++ {
		p := tightProblem(seed, 26, 102)
		gate := NewStepGate(tree, p, 0)
		res := core.Solve(p, core.Config{MaxSteps: 60000, DisableSplit: true, Gate: gate})
		if gate.Invocations == 0 {
			t.Error("gate never consulted")
		}
		if res.Status == telamon.Solved {
			solved++
			if err := res.Solution.Validate(p); err != nil {
				t.Fatalf("gated search produced invalid solution: %v", err)
			}
		}
	}
	t.Logf("gated search solved %d/6", solved)
}

func TestGateThresholdExtremes(t *testing.T) {
	// A constant-1 "tree" forces the expensive path; constant-0 forces the
	// cheap path. Both must be consistent with the explicit configs.
	always := constForest(1)
	never := constForest(0)
	p := tightProblem(3, 24, 101)

	gateOn := NewStepGate(always, p, 0.5)
	resOn := core.Solve(p, core.Config{MaxSteps: 60000, DisableSplit: true, Gate: gateOn})
	resExpensive := core.Solve(p, core.Config{MaxSteps: 60000, DisableSplit: true})
	if resOn.Status != resExpensive.Status || resOn.Stats.Steps != resExpensive.Stats.Steps {
		t.Errorf("always-expensive gate differs from default: %+v vs %+v", resOn.Stats, resExpensive.Stats)
	}
	if gateOn.ExpensiveTaken != gateOn.Invocations {
		t.Errorf("always-gate skipped expensive path %d/%d", gateOn.ExpensiveTaken, gateOn.Invocations)
	}

	gateOff := NewStepGate(never, p, 0.5)
	resOff := core.Solve(p, core.Config{MaxSteps: 60000, DisableSplit: true, Gate: gateOff})
	resStrict := core.Solve(p, core.Config{MaxSteps: 60000, DisableSplit: true, NoFallbackCandidates: true})
	if resOff.Status != resStrict.Status || resOff.Stats.Steps != resStrict.Stats.Steps {
		t.Errorf("never-expensive gate differs from strict mode: %+v vs %+v", resOff.Stats, resStrict.Stats)
	}
	if gateOff.ExpensiveTaken != 0 {
		t.Errorf("never-gate took the expensive path %d times", gateOff.ExpensiveTaken)
	}
}

// constForest builds a forest predicting a constant.
func constForest(v float64) *gbt.Forest {
	return &gbt.Forest{Base: v, LearningRate: 0.1, NumFeatures: GateFeatures}
}

func TestGateOnWorkloadModel(t *testing.T) {
	// Smoke: the gate must work on a real model proxy too.
	p := workload.GenOpenPose(1)
	p.Memory = buffers.Contention(p).Peak() * 105 / 100
	tree := constForest(1)
	gate := NewStepGate(tree, p, 0.5)
	res := core.Solve(p, core.Config{MaxSteps: 200000, DisableSplit: true, Gate: gate})
	if res.Status == telamon.Solved {
		if err := res.Solution.Validate(p); err != nil {
			t.Fatal(err)
		}
	}
}
