// Package mlpolicy implements the learned backtracking of §6 of the paper:
// at a major backtrack, a gradient-boosted-tree model ranks a small set of
// candidate backtrack targets; training labels come from imitation learning
// against the exact (ILP) solver.
//
// The package provides three pieces:
//
//   - feature extraction for candidate backtrack targets (§6.4),
//   - a Collector that runs inside a TelaMalloc search, interleaves oracle
//     and default decisions, and emits labelled samples (§6.3/§6.5),
//   - a Chooser that plugs a trained model into TelaMalloc via the
//     core.BacktrackChooser hook.
package mlpolicy

import (
	"telamalloc/internal/buffers"
	"telamalloc/internal/phases"
	"telamalloc/internal/telamon"
)

// NumFeatures is the width of a candidate-target feature vector.
const NumFeatures = 9

// Feature indices, in the order §6.4 lists them.
const (
	FeatSize            = iota // block size / total memory
	FeatLifetime               // block lifetime / time horizon
	FeatContention             // block contention / total memory
	FeatDecisionLevel          // decision level of the placement / current depth
	FeatReasonCount            // times the block appeared in a major-backtrack reason
	FeatBacktrackTo            // times the search backtracked to this point
	FeatSubtreeBacktrks        // backtracks within the subtree rooted here
	FeatSameRegion             // 1 if the block shares the current phase
	FeatTotalBacktracks        // total backtracks so far (scaled)
)

// FeatureNames labels the features for the importance report (Figure 17).
var FeatureNames = [NumFeatures]string{
	"size",
	"lifetime",
	"contention",
	"decision-level",
	"reason-count",
	"backtracks-to-point",
	"subtree-backtracks",
	"same-region",
	"total-backtracks",
}

// extractor computes features for backtrack candidates of one problem. It
// owns the per-search counters the features reference.
type extractor struct {
	prob       *buffers.Problem
	contention []int64
	horizon    int64
	groups     *phases.Assignment
	// reasonCount[buf] counts appearances in major-backtrack reasons.
	reasonCount map[int]int
	// backtrackTo[buf] counts backtracks that resumed at buf's placement.
	backtrackTo map[int]int
}

func newExtractor(p *buffers.Problem) *extractor {
	lo, hi := p.TimeHorizon()
	horizon := hi - lo
	if horizon <= 0 {
		horizon = 1
	}
	return &extractor{
		prob:        p,
		contention:  buffers.BufferContention(p),
		horizon:     horizon,
		groups:      phases.Group(p),
		reasonCount: make(map[int]int),
		backtrackTo: make(map[int]int),
	}
}

// observeConflict folds a major backtrack's conflict reason into the
// per-buffer counters.
func (e *extractor) observeConflict(dp *telamon.DecisionPoint) {
	if dp.LastConflict == nil {
		return
	}
	for _, buf := range dp.LastConflict.Placements {
		e.reasonCount[buf]++
	}
}

// observeChoice records that the search backtracked to the point holding buf.
func (e *extractor) observeChoice(buf int) {
	e.backtrackTo[buf]++
}

// features fills x with the feature vector for the candidate target at
// stack index lvl. curPhase is the phase of the most recently placed block
// (-1 when none).
func (e *extractor) features(st *telamon.State, lvl int, curPhase int, x []float64) {
	dp := st.Stack[lvl]
	buf := dp.Placed
	if buf < 0 {
		// An uncommitted point (should not normally be a candidate); emit
		// neutral block features.
		for i := range x {
			x[i] = 0
		}
		x[FeatDecisionLevel] = float64(lvl+1) / float64(len(st.Stack))
		x[FeatSubtreeBacktrks] = scaleCount(dp.SubtreeBacktracks)
		x[FeatTotalBacktracks] = scaleCount(int(st.Stats.Backtracks()))
		return
	}
	b := e.prob.Buffers[buf]
	x[FeatSize] = float64(b.Size) / float64(e.prob.Memory)
	x[FeatLifetime] = float64(b.Lifetime()) / float64(e.horizon)
	x[FeatContention] = float64(e.contention[buf]) / float64(e.prob.Memory)
	x[FeatDecisionLevel] = float64(lvl+1) / float64(len(st.Stack))
	x[FeatReasonCount] = scaleCount(e.reasonCount[buf])
	x[FeatBacktrackTo] = scaleCount(e.backtrackTo[buf])
	x[FeatSubtreeBacktrks] = scaleCount(dp.SubtreeBacktracks)
	if curPhase >= 0 && e.groups.PhaseOf[buf] == curPhase {
		x[FeatSameRegion] = 1
	} else {
		x[FeatSameRegion] = 0
	}
	x[FeatTotalBacktracks] = scaleCount(int(st.Stats.Backtracks()))
}

// scaleCount compresses unbounded counters into [0, 1) so tree splits stay
// meaningful across problem sizes.
func scaleCount(c int) float64 {
	return float64(c) / float64(c+32)
}

// currentPhase returns the phase of the most recent committed placement.
func (e *extractor) currentPhase(st *telamon.State) int {
	for i := len(st.Stack) - 1; i >= 0; i-- {
		if b := st.Stack[i].Placed; b >= 0 {
			return e.groups.PhaseOf[b]
		}
	}
	return -1
}
