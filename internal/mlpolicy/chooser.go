package mlpolicy

import (
	"telamalloc/internal/buffers"
	"telamalloc/internal/gbt"
	"telamalloc/internal/telamon"
)

// ScoreThreshold is the minimum (unweighted) model score required to act on
// a prediction; below it the Chooser abstains and TelaMalloc falls back to
// its default strategy (§6.5: "an overly aggressive backtrack has the
// potential to cause a lot more damage than not backtracking far enough").
const ScoreThreshold = 4.0

// Chooser plugs a trained backtracking model into TelaMalloc. It implements
// core.BacktrackChooser. A Chooser is bound to one problem (one search) and
// is not safe for concurrent use.
type Chooser struct {
	forest *gbt.Forest
	ex     *extractor
	// Invocations counts Choose calls; Decisions counts calls where the
	// model's score cleared the threshold.
	Invocations int
	Decisions   int

	featBuf  [][]float64
	scoreBuf []float64
}

// NewChooser binds a trained forest to the given problem.
func NewChooser(forest *gbt.Forest, p *buffers.Problem) *Chooser {
	return &Chooser{forest: forest, ex: newExtractor(p)}
}

// Choose implements core.BacktrackChooser: build the candidate target set,
// score each candidate with the model (as a batch, §6.5), weight by depth
// to discourage very far backtracks, and return the winner if its raw score
// clears the threshold.
func (c *Chooser) Choose(st *telamon.State, dp *telamon.DecisionPoint) (int, bool) {
	c.Invocations++
	c.ex.observeConflict(dp)
	cands := candidateTargets(st, dp)
	if len(cands) == 0 {
		return 0, false
	}
	curPhase := c.ex.currentPhase(st)
	c.featBuf = c.featBuf[:0]
	for range cands {
		c.featBuf = append(c.featBuf, make([]float64, NumFeatures))
	}
	for i, lvl := range cands {
		c.ex.features(st, lvl, curPhase, c.featBuf[i])
	}
	if cap(c.scoreBuf) < len(cands) {
		c.scoreBuf = make([]float64, len(cands))
	}
	scores := c.scoreBuf[:len(cands)]
	c.forest.PredictBatch(c.featBuf, scores)

	depth := float64(len(st.Stack))
	bestIdx := -1
	bestWeighted := 0.0
	for i, lvl := range cands {
		// Depth weighting: deeper (nearer) targets keep more of the score.
		w := 0.5 + 0.5*float64(lvl+1)/depth
		if ws := scores[i] * w; bestIdx < 0 || ws > bestWeighted {
			bestIdx, bestWeighted = i, ws
		}
	}
	if bestIdx < 0 || scores[bestIdx] < ScoreThreshold {
		return 0, false
	}
	c.Decisions++
	target := cands[bestIdx]
	if buf := st.Stack[target].Placed; buf >= 0 {
		c.ex.observeChoice(buf)
	}
	return target, true
}
