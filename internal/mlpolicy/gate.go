package mlpolicy

// The step gate implements the extension §8.3 of the paper sketches:
//
//	"we could have a single, shallow decision tree that executes at every
//	 step of the search and identifies whether to run a more expensive
//	 model that considers different blocks, or run a more expensive
//	 heuristic. Such a decision tree may execute in tens of CPU cycles and
//	 could plausibly run at every step."
//
// Here the cheap path is TelaMalloc's strict candidate set (the three
// heuristic picks per phase) and the expensive path appends every unplaced
// buffer as fallback candidates. The gate is trained to predict, from a
// handful of cheap state features, whether the upcoming decision point is
// "risky" (likely to exhaust and backtrack) — only then is the expensive
// path worth its extra scanning and queue churn.

import (
	"math"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/gbt"
	"telamalloc/internal/telamon"
)

// GateFeatures is the width of the step-gate feature vector. The features
// are deliberately cheap: everything is O(1) from search state.
const GateFeatures = 5

// Gate feature indices.
const (
	GateDepthFrac     = iota // placed buffers / total buffers
	GateRecentFailure        // backtracks / steps so far
	GateMemoryFill           // bytes placed / memory
	GateTightness            // contention peak / memory (per problem)
	GateStackBack            // subtree backtracks at the current top (scaled)
)

// StepGate decides per decision point whether to use the expensive
// candidate path. It implements core.CandidateGate.
type StepGate struct {
	tree *gbt.Forest
	prob *buffers.Problem
	// tightness is precomputed per problem.
	tightness float64
	// placedBytes tracks the bytes currently placed, updated lazily.
	Threshold float64
	// Invocations and ExpensiveTaken count decisions for reporting.
	Invocations    int
	ExpensiveTaken int
}

// NewStepGate binds a trained gate tree to a problem. threshold is the
// predicted-risk level above which the expensive path is chosen; zero
// selects 0.5.
func NewStepGate(tree *gbt.Forest, p *buffers.Problem, threshold float64) *StepGate {
	if threshold == 0 {
		threshold = 0.5
	}
	peak := buffers.Contention(p).Peak()
	return &StepGate{
		tree:      tree,
		prob:      p,
		tightness: float64(peak) / float64(p.Memory),
		Threshold: threshold,
	}
}

// Expensive implements core.CandidateGate.
func (g *StepGate) Expensive(st *telamon.State) bool {
	g.Invocations++
	var x [GateFeatures]float64
	gateFeatures(st, g.prob, g.tightness, x[:])
	if g.tree.Predict(x[:]) >= g.Threshold {
		g.ExpensiveTaken++
		return true
	}
	return false
}

var _ core.CandidateGate = (*StepGate)(nil)

// gateFeatures fills x with the cheap state features.
func gateFeatures(st *telamon.State, p *buffers.Problem, tightness float64, x []float64) {
	n := len(p.Buffers)
	placed := 0
	var placedBytes int64
	for i := 0; i < n; i++ {
		if st.Model.Placed(i) {
			placed++
			placedBytes += p.Buffers[i].Size
		}
	}
	x[GateDepthFrac] = float64(placed) / float64(n)
	steps := st.Stats.Steps
	if steps == 0 {
		steps = 1
	}
	x[GateRecentFailure] = float64(st.Stats.Backtracks()) / float64(steps)
	x[GateMemoryFill] = math.Min(1, float64(placedBytes)/float64(p.Memory))
	x[GateTightness] = tightness
	if len(st.Stack) > 0 {
		x[GateStackBack] = scaleCount(st.Stack[len(st.Stack)-1].SubtreeBacktracks)
	}
}

// gateCollector gathers (features, risk-label) samples while a strict-mode
// search runs: each decision point's features are captured when it opens,
// and the label is whether that decision point ever majorly backtracked.
type gateCollector struct {
	prob      *buffers.Problem
	tightness float64
	// open maps a decision point to its sample index.
	open    map[*telamon.DecisionPoint]int
	samples gbt.Dataset
}

// GateTrainingRun runs one strict-mode TelaMalloc search on p and returns
// step-gate training samples: the label is 1 when the decision point later
// exhausted its candidates (so the expensive path would have been useful).
func GateTrainingRun(p *buffers.Problem, maxSteps int64) gbt.Dataset {
	peak := buffers.Contention(p).Peak()
	gc := &gateCollector{
		prob:      p,
		tightness: float64(peak) / float64(p.Memory),
		open:      make(map[*telamon.DecisionPoint]int),
	}
	core.Solve(p, core.Config{
		MaxSteps:             maxSteps,
		DisableSplit:         true,
		NoFallbackCandidates: true,
		Chooser:              gc,
	})
	return gc.samples
}

// Choose implements core.BacktrackChooser but never overrides the default:
// it only observes major backtracks to label the exhausted decision point.
func (gc *gateCollector) Choose(st *telamon.State, dp *telamon.DecisionPoint) (int, bool) {
	// Record features for any newly seen decision points on the stack.
	for _, open := range st.Stack {
		if _, seen := gc.open[open]; !seen {
			x := make([]float64, GateFeatures)
			gateFeatures(st, gc.prob, gc.tightness, x)
			gc.open[open] = len(gc.samples.X)
			gc.samples.X = append(gc.samples.X, x)
			gc.samples.Y = append(gc.samples.Y, 0)
		}
	}
	// The exhausted point is risky: label it 1.
	if idx, seen := gc.open[dp]; seen {
		gc.samples.Y[idx] = 1
	} else {
		x := make([]float64, GateFeatures)
		gateFeatures(st, gc.prob, gc.tightness, x)
		gc.samples.X = append(gc.samples.X, x)
		gc.samples.Y = append(gc.samples.Y, 1)
	}
	return 0, false
}

// TrainGate fits the shallow risk tree of §8.3 (a handful of stumps rather
// than a full forest, keeping inference in the tens of nanoseconds).
func TrainGate(ds gbt.Dataset, seed int64) (*gbt.Forest, error) {
	return gbt.Train(ds, gbt.Options{
		Trees:        8,
		MaxDepth:     2,
		LearningRate: 0.5,
		MinLeaf:      4,
		Seed:         seed,
	})
}
