package mlpolicy

import (
	"sort"

	"telamalloc/internal/telamon"
)

// candidateTargets builds the set of candidate backtrack targets for a
// major backtrack, following §6.2:
//
//   - every decision level associated with the conflict reason that made
//     the CP solver fail, except the deepest one (that one is where a minor
//     backtrack would have landed anyway);
//   - for each exponentially growing range of decision levels (0-4, 5-8,
//     9-16, 17-32, ...) that has no candidate yet, the decision point at
//     the top of that range, so the search cannot get stuck when all
//     reasons cluster in one part of the tree.
//
// Returned indices are sorted ascending (shallowest first) and are all
// strictly below the current top of stack.
func candidateTargets(st *telamon.State, dp *telamon.DecisionPoint) []int {
	topIdx := len(st.Stack) - 1
	if topIdx <= 0 {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	add := func(lvl int) {
		if lvl >= 0 && lvl < topIdx && !seen[lvl] {
			seen[lvl] = true
			out = append(out, lvl)
		}
	}
	if dp.LastConflict != nil {
		levels := make([]int, 0, len(dp.LastConflict.Placements))
		for _, buf := range dp.LastConflict.Placements {
			if lvl := st.PlacedLevel[buf]; lvl >= 0 {
				levels = append(levels, lvl)
			}
		}
		sort.Ints(levels)
		// Drop the deepest reason level: backtracking there is what a minor
		// backtrack already does.
		if len(levels) > 0 {
			levels = levels[:len(levels)-1]
		}
		for _, lvl := range levels {
			add(lvl)
		}
	}
	// Exponential coverage: ranges [0,4], [5,8], [9,16], [17,32], ...
	lo, hi := 0, 4
	for lo < topIdx {
		rangeHi := hi
		if rangeHi >= topIdx {
			rangeHi = topIdx - 1
		}
		covered := false
		for _, lvl := range out {
			if lvl >= lo && lvl <= rangeHi {
				covered = true
				break
			}
		}
		if !covered {
			add(rangeHi)
		}
		lo = hi + 1
		hi *= 2
	}
	sort.Ints(out)
	return out
}
