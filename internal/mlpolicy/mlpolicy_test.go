package mlpolicy

import (
	"math/rand"
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/gbt"
	"telamalloc/internal/ilp"
	"telamalloc/internal/telamon"
)

// tightProblem builds a random instance at the given percentage of its
// contention peak — tight enough to force backtracking.
func tightProblem(seed int64, n int, ratioPct int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{}
	for i := 0; i < n; i++ {
		start := rng.Int63n(20)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start,
			End:   start + 1 + rng.Int63n(12),
			Size:  1 + rng.Int63n(10),
		})
	}
	p.Normalize()
	p.Memory = buffers.Contention(p).Peak() * ratioPct / 100
	return p
}

func TestScoreFunction(t *testing.T) {
	// §6.4's formula with B=2, M=5.
	cases := []struct {
		x    int
		want float64
	}{
		{1, 0},          // too far
		{6, 0},          // not far enough
		{2, 10},         // best target
		{3, 10 - 5.0/4}, // linearly decreasing
		{5, 10 - 15.0/4},
	}
	for _, c := range cases {
		if got := Score(c.x, 2, 5); got != c.want {
			t.Errorf("Score(%d) = %g, want %g", c.x, got, c.want)
		}
	}
	// Degenerate B == M: the single valid point scores 10.
	if got := Score(3, 3, 3); got != 10 {
		t.Errorf("Score(3,3,3) = %g, want 10", got)
	}
}

func TestCandidateTargetsProperties(t *testing.T) {
	// Run searches over tight instances; every candidate set produced must
	// be sorted, in range, and non-empty whenever the stack is deep.
	probe := probePolicyChooser{t: t}
	for seed := int64(0); seed < 6; seed++ {
		p := tightProblem(seed, 25, 102)
		core.Solve(p, core.Config{MaxSteps: 20000, Chooser: &probe, DisableSplit: true})
	}
	if probe.calls == 0 {
		t.Skip("no major backtracks occurred; instances too easy")
	}
}

type probePolicyChooser struct {
	t     *testing.T
	calls int
}

func (pc *probePolicyChooser) Choose(st *telamon.State, dp *telamon.DecisionPoint) (int, bool) {
	pc.calls++
	cands := candidateTargets(st, dp)
	top := len(st.Stack) - 1
	prev := -1
	for _, lvl := range cands {
		if lvl <= prev {
			pc.t.Errorf("candidates not strictly ascending: %v", cands)
		}
		if lvl < 0 || lvl >= top {
			pc.t.Errorf("candidate %d out of range [0,%d)", lvl, top)
		}
		prev = lvl
	}
	if top > 1 && len(cands) == 0 {
		pc.t.Errorf("no candidates despite depth %d", top+1)
	}
	// Exponential coverage: there must be a candidate at or below level 4.
	if len(cands) > 0 && cands[0] > 4 {
		pc.t.Errorf("lowest candidate %d > 4: exponential ranges missing", cands[0])
	}
	return 0, false
}

func TestFeaturesAreNormalized(t *testing.T) {
	probe := &featureProbe{t: t}
	for seed := int64(0); seed < 6; seed++ {
		p := tightProblem(seed, 25, 102)
		probe.ex = newExtractor(p)
		core.Solve(p, core.Config{MaxSteps: 20000, Chooser: probe, DisableSplit: true})
	}
	if probe.calls == 0 {
		t.Skip("no major backtracks")
	}
}

type featureProbe struct {
	t     *testing.T
	ex    *extractor
	calls int
}

func (fp *featureProbe) Choose(st *telamon.State, dp *telamon.DecisionPoint) (int, bool) {
	fp.calls++
	fp.ex.observeConflict(dp)
	cur := fp.ex.currentPhase(st)
	x := make([]float64, NumFeatures)
	for _, lvl := range candidateTargets(st, dp) {
		fp.ex.features(st, lvl, cur, x)
		for i, v := range x {
			if v < 0 || v > 1.0001 {
				fp.t.Errorf("feature %s = %g out of [0,1]", FeatureNames[i], v)
			}
		}
	}
	return 0, false
}

func TestCollectorProducesLabelledData(t *testing.T) {
	var ds gbt.Dataset
	for seed := int64(0); seed < 12 && len(ds.X) == 0; seed++ {
		p := tightProblem(seed, 28, 102)
		ds = TrainingRun(p, seed, 60000, ilp.Options{MaxSteps: 30000})
	}
	if len(ds.X) == 0 {
		t.Skip("no instance produced labelled events (all too easy or too hard)")
	}
	if len(ds.X) != len(ds.Y) {
		t.Fatalf("ragged dataset: %d vs %d", len(ds.X), len(ds.Y))
	}
	for i, x := range ds.X {
		if len(x) != NumFeatures {
			t.Fatalf("sample %d has width %d", i, len(x))
		}
		if ds.Y[i] < 0 || ds.Y[i] > 10 {
			t.Errorf("score %g outside [0,10]", ds.Y[i])
		}
	}
}

func TestCollectDatasetAndTrainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training end-to-end is slow")
	}
	var problems []*buffers.Problem
	for seed := int64(0); seed < 10; seed++ {
		problems = append(problems, tightProblem(seed, 26, 100))
	}
	ds := CollectDataset(problems, []int{100, 104, 112}, 1, 60000, ilp.Options{MaxSteps: 30000})
	if len(ds.X) < 10 {
		t.Skipf("only %d samples collected", len(ds.X))
	}
	forest, err := TrainModel(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The trained model must plug into TelaMalloc and not break it: same
	// instances must still be solved with the chooser active.
	solvedPlain, solvedML := 0, 0
	for seed := int64(20); seed < 30; seed++ {
		p := tightProblem(seed, 26, 103)
		plain := core.Solve(p, core.Config{MaxSteps: 60000})
		ch := NewChooser(forest, p)
		ml := core.Solve(p, core.Config{MaxSteps: 60000, Chooser: ch, DisableSplit: true})
		if plain.Status == telamon.Solved {
			solvedPlain++
		}
		if ml.Status == telamon.Solved {
			solvedML++
			if err := ml.Solution.Validate(p); err != nil {
				t.Fatalf("ML-guided solution invalid: %v", err)
			}
		}
	}
	t.Logf("solved plain=%d ml=%d", solvedPlain, solvedML)
	if solvedML < solvedPlain-3 {
		t.Errorf("ML chooser significantly degraded solving: %d vs %d", solvedML, solvedPlain)
	}
}

func TestChooserAbstainsWithLowScores(t *testing.T) {
	// A forest trained on constant zeros scores every candidate 0 — below
	// the threshold — so the chooser must always abstain.
	ds := gbt.Dataset{}
	for i := 0; i < 64; i++ {
		x := make([]float64, NumFeatures)
		x[0] = float64(i) / 64
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, 0)
	}
	forest, err := gbt.Train(ds, gbt.Options{Trees: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := tightProblem(3, 24, 102)
	ch := NewChooser(forest, p)
	core.Solve(p, core.Config{MaxSteps: 20000, Chooser: ch, DisableSplit: true})
	if ch.Decisions != 0 {
		t.Errorf("chooser acted %d times despite zero scores", ch.Decisions)
	}
}

func TestDeepestSolvableMonotonicity(t *testing.T) {
	// Manually validate the oracle binary search on a crafted path.
	p := &buffers.Problem{Memory: 8}
	for i := 0; i < 3; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 4})
	}
	p.Normalize() // infeasible: 12 > 8
	col := NewCollector(p, 1, ilp.Options{MaxSteps: 10000})
	if got := col.deepestSolvable(nil); got != -1 {
		t.Errorf("deepestSolvable(infeasible, empty path) = %d, want -1", got)
	}
	// Feasible two-buffer problem: empty prefix solvable, full bad prefix not.
	q := &buffers.Problem{Memory: 8}
	q.Buffers = append(q.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 4})
	q.Buffers = append(q.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 4})
	q.Normalize()
	col2 := NewCollector(q, 1, ilp.Options{MaxSteps: 10000})
	path := []placement{{0, 2}} // splits memory: unsolvable
	if got := col2.deepestSolvable(path); got != 0 {
		t.Errorf("deepestSolvable(bad placement) = %d, want 0", got)
	}
	good := []placement{{0, 0}, {1, 4}}
	if got := col2.deepestSolvable(good); got != 2 {
		t.Errorf("deepestSolvable(good path) = %d, want 2", got)
	}
	if col2.OracleCalls == 0 {
		t.Error("oracle never called")
	}
	// Cache: repeating the query must not add calls.
	before := col2.OracleCalls
	col2.deepestSolvable(good)
	if col2.OracleCalls >= before+3 {
		t.Errorf("cache ineffective: %d new calls", col2.OracleCalls-before)
	}
}
