package mlpolicy

import (
	"hash/fnv"
	"math/rand"

	"telamalloc/internal/buffers"
	"telamalloc/internal/gbt"
	"telamalloc/internal/ilp"
	"telamalloc/internal/telamon"
)

// Collector implements core.BacktrackChooser in the special training mode of
// §6.5 (Figure 11): it runs an ILP oracle alongside the normal search, uses
// the oracle's backtrack decision with 50% probability (randomising the path
// so the training data covers more of the tree), records the candidate
// targets and their features at every major backtrack, and — once the search
// has found a solution — turns them into (features, score) samples using the
// paper's score function over the best and minimum backtrack targets.
type Collector struct {
	prob   *buffers.Problem
	ov     *buffers.Overlaps
	ex     *extractor
	rng    *rand.Rand
	oracle ilp.Options

	events []event
	// solvable caches oracle verdicts keyed by a hash of the fixed prefix.
	solvable map[uint64]bool
	// OracleCalls counts ILP probes (for reporting).
	OracleCalls int
	// MaxEvents caps recorded major backtracks per search (0 = 512).
	MaxEvents int
}

type event struct {
	cands []int
	feats [][]float64
	// path holds the committed (buffer, position) pairs, stack order.
	path []placement
	// minTarget is the deepest solvable resume index (M in §6.3).
	minTarget int
}

type placement struct {
	buf int
	pos int64
}

// NewCollector builds a collector for one problem. oracle bounds each ILP
// probe; seed drives the 50/50 interleaving.
func NewCollector(p *buffers.Problem, seed int64, oracle ilp.Options) *Collector {
	return &Collector{
		prob:     p,
		ov:       buffers.ComputeOverlaps(p),
		ex:       newExtractor(p),
		rng:      rand.New(rand.NewSource(seed)),
		oracle:   oracle,
		solvable: make(map[uint64]bool),
	}
}

func (c *Collector) maxEvents() int {
	if c.MaxEvents == 0 {
		return 96
	}
	return c.MaxEvents
}

// Choose implements core.BacktrackChooser. It always records the event (so
// every major backtrack yields samples), then flips a coin between the
// oracle's minimum backtrack target and the default strategy.
func (c *Collector) Choose(st *telamon.State, dp *telamon.DecisionPoint) (int, bool) {
	c.ex.observeConflict(dp)
	if len(c.events) >= c.maxEvents() {
		// Recording budget exhausted: stop paying for oracle probes and let
		// the search continue with its default strategy.
		return 0, false
	}
	cands := candidateTargets(st, dp)
	if len(cands) == 0 {
		return 0, false
	}
	path := snapshotPath(st)
	minTarget := c.deepestSolvable(path)

	curPhase := c.ex.currentPhase(st)
	feats := make([][]float64, len(cands))
	for i, lvl := range cands {
		feats[i] = make([]float64, NumFeatures)
		c.ex.features(st, lvl, curPhase, feats[i])
	}
	c.events = append(c.events, event{
		cands:     cands,
		feats:     feats,
		path:      path,
		minTarget: minTarget,
	})

	if c.rng.Intn(2) == 0 && minTarget >= 0 {
		// Oracle path: resume at the deepest candidate at or above (i.e.,
		// not deeper than) the minimum backtrack target.
		best := -1
		for _, lvl := range cands {
			if lvl <= minTarget && lvl > best {
				best = lvl
			}
		}
		if best >= 0 {
			if buf := st.Stack[best].Placed; buf >= 0 {
				c.ex.observeChoice(buf)
			}
			return best, true
		}
	}
	return 0, false
}

// snapshotPath captures the committed placements in stack order.
func snapshotPath(st *telamon.State) []placement {
	var out []placement
	for _, dp := range st.Stack {
		if dp.Placed >= 0 {
			out = append(out, placement{dp.Placed, dp.Pos})
		}
	}
	return out
}

// probeLimit caps oracle probes per major backtrack so that an instance
// whose prefixes all exhaust the oracle budget cannot stall collection.
const probeLimit = 24

// deepestSolvable finds the largest k such that the problem with the first
// k path placements fixed is still provably solvable within the oracle
// budget. Returns the resume index (k): backtracking to index k keeps
// placements 0..k-1. Returns -1 when nothing could be proven.
//
// The scan runs linearly from the deepest prefix down, exactly as §6.3
// describes ("we backtrack one step and try again"): deep prefixes pin most
// variables and are *cheap* for the oracle, while shallow prefixes can
// exhaust the budget even when solvable — a binary search probing shallow
// midpoints would therefore discard most events.
func (c *Collector) deepestSolvable(path []placement) int {
	probes := 0
	for k := len(path); k >= 0; k-- {
		if probes >= probeLimit {
			return -1
		}
		probes++
		if c.prefixSolvable(path, k) {
			return k
		}
	}
	return -1
}

// prefixSolvable asks the ILP oracle whether the problem with the first k
// placements fixed is solvable, with caching ("for higher efficiency, we
// cache results for decision points that we have already visited", §6.3).
// Budget exhaustion counts as unsolvable (conservative).
func (c *Collector) prefixSolvable(path []placement, k int) bool {
	h := fnv.New64a()
	var b [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, pl := range path[:k] {
		put(int64(pl.buf))
		put(pl.pos)
	}
	key := h.Sum64()
	if v, ok := c.solvable[key]; ok {
		return v
	}
	fixed := make([]int64, len(c.prob.Buffers))
	for i := range fixed {
		fixed[i] = -1
	}
	for _, pl := range path[:k] {
		fixed[pl.buf] = pl.pos
	}
	c.OracleCalls++
	res := ilp.SolveWithFixed(c.prob, c.ov, fixed, c.oracle)
	v := res.Status == ilp.Solved
	c.solvable[key] = v
	return v
}

// Label converts the recorded events into training samples, given the final
// solution the search returned (nil when the search failed; no samples are
// emitted then, mirroring the paper's use of solved runs for labels).
//
// For each event, the best backtrack target B is the deepest point whose
// prefix matches the final solution; the minimum target M is the deepest
// solvable point recorded at collection time. Scores follow §6.4:
//
//	score(x) = 0                     if x < B or x > M
//	         = 10 - 5*(x-B)/(M-B+1) otherwise
func (c *Collector) Label(sol *buffers.Solution) gbt.Dataset {
	var ds gbt.Dataset
	if sol == nil {
		return ds
	}
	for _, ev := range c.events {
		if ev.minTarget < 0 {
			continue
		}
		best := 0
		for _, pl := range ev.path {
			if sol.Offsets[pl.buf] == pl.pos {
				best++
			} else {
				break
			}
		}
		if best > ev.minTarget {
			best = ev.minTarget
		}
		for i, lvl := range ev.cands {
			ds.X = append(ds.X, ev.feats[i])
			ds.Y = append(ds.Y, Score(lvl, best, ev.minTarget))
		}
	}
	return ds
}

// Score is the paper's empirically chosen label function (§6.4).
func Score(x, best, min int) float64 {
	if x < best || x > min {
		return 0
	}
	return 10 - 5*float64(x-best)/float64(min-best+1)
}

// Events reports how many major backtracks were recorded.
func (c *Collector) Events() int { return len(c.events) }
