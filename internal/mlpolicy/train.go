package mlpolicy

import (
	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/gbt"
	"telamalloc/internal/ilp"
	"telamalloc/internal/telamon"
)

// TrainingRun executes one TelaMalloc search in collection mode on p and
// returns the labelled samples (empty if the search found no solution).
func TrainingRun(p *buffers.Problem, seed int64, searchSteps int64, oracle ilp.Options) gbt.Dataset {
	col := NewCollector(p, seed, oracle)
	res := core.Solve(p, core.Config{
		MaxSteps:     searchSteps,
		Chooser:      col,
		DisableSplit: true, // collection needs one coherent decision path
		// Use the paper's candidate economics (three heuristic picks per
		// decision point) so major backtracks — the only sample source —
		// actually occur.
		NoFallbackCandidates: true,
	})
	if res.Status != telamon.Solved {
		return gbt.Dataset{}
	}
	return col.Label(res.Solution)
}

// CollectDataset runs collection over every problem, following §6.5's
// recipe of varying the maximum memory between runs for further variation.
// ratiosPct scales each problem's recorded memory (e.g. {105, 110, 125}).
func CollectDataset(problems []*buffers.Problem, ratiosPct []int, seed int64, searchSteps int64, oracle ilp.Options) gbt.Dataset {
	var ds gbt.Dataset
	if len(ratiosPct) == 0 {
		ratiosPct = []int{110}
	}
	for i, p := range problems {
		for j, pct := range ratiosPct {
			q := p.Clone()
			q.Memory = q.Memory * int64(pct) / 100
			peak := buffers.Contention(q).Peak()
			if q.Memory < peak {
				q.Memory = peak
			}
			part := TrainingRun(q, seed+int64(i*31+j), searchSteps, oracle)
			ds.X = append(ds.X, part.X...)
			ds.Y = append(ds.Y, part.Y...)
		}
	}
	return ds
}

// TrainModel fits the backtracking forest with the paper's configuration: a
// forest of 100 trees regressing the backtrack score (§6.5, §7.3).
func TrainModel(ds gbt.Dataset, seed int64) (*gbt.Forest, error) {
	return gbt.Train(ds, gbt.Options{
		Trees:        100,
		MaxDepth:     4,
		LearningRate: 0.15,
		MinLeaf:      4,
		Seed:         seed,
	})
}
