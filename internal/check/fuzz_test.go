package check_test

import (
	"testing"

	"telamalloc"
	"telamalloc/internal/check"
)

// FuzzCheck drives the independent checker with randomly generated problems
// and deliberately corrupted solutions. For every solvable instance the
// checker must accept the honest packing, and must reject each of the
// mutations — an offset nudged into a neighbour, a buffer grown past its
// allocation, and a conflict edge dropped by stretching a lifetime. A
// mutation the checker misses is exactly the class of bug a second-opinion
// validator exists to catch.
func FuzzCheck(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(0))
	f.Add(int64(7), uint8(9), uint8(1))
	f.Add(int64(42), uint8(14), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, mutation uint8) {
		fams := check.DefaultFamilies()
		p := fams[int(n)%len(fams)].Generate(seed%1000 + 1)
		res, err := telamalloc.AllocatePipeline(p,
			telamalloc.WithStages(telamalloc.StageGreedy, telamalloc.StageBestFit, telamalloc.StageSearch),
			telamalloc.WithMaxSteps(20_000),
		)
		if err != nil {
			return
		}
		offsets := res.Solution.Offsets
		if rep := check.Solution(p, offsets); !rep.OK() {
			t.Fatalf("%s: checker rejected an honest packing: %v", p.Name, rep.Err())
		}

		// Pick the victim pair: two buffers with intersecting lifetimes, so
		// each mutation below provably breaks the packing.
		vi, vj := -1, -1
		for i := range p.Buffers {
			for j := i + 1; j < len(p.Buffers); j++ {
				if p.Buffers[i].Start < p.Buffers[j].End && p.Buffers[j].Start < p.Buffers[i].End {
					vi, vj = i, j
					break
				}
			}
			if vi >= 0 {
				break
			}
		}
		if vi < 0 {
			return // no conflicting pair to corrupt
		}

		switch mutation % 3 {
		case 0:
			// Offset nudge: move vi onto vj's address. The pair conflicts in
			// time and both sizes are positive, so equal offsets must clash.
			bad := append([]int64(nil), offsets...)
			bad[vi] = offsets[vj]
			if rep := check.Solution(p, bad); rep.OK() {
				t.Fatalf("%s: offset nudge onto a live neighbour accepted", p.Name)
			}
		case 1:
			// Size grow: inflate one buffer past the memory limit. Its
			// unchanged offset now provably overflows.
			q := p
			q.Buffers = append([]telamalloc.Buffer(nil), p.Buffers...)
			q.Buffers[vi].Size = q.Memory - offsets[vi] + 1
			if rep := check.Solution(q, offsets); rep.OK() {
				t.Fatalf("%s: buffer grown past capacity accepted", p.Name)
			}
		case 2:
			// Conflict-edge drop: the original packing may rely on vi and vj
			// being temporally disjoint from *other* buffers. Stretch vi's
			// lifetime over the whole horizon and park it on any buffer that
			// was address-overlapping but time-disjoint; if no such buffer
			// exists the stretched problem may stay valid, so only assert
			// when we can point at a provable clash.
			q := p
			q.Buffers = append([]telamalloc.Buffer(nil), p.Buffers...)
			var lo, hi int64 = q.Buffers[0].Start, q.Buffers[0].End
			for _, b := range q.Buffers {
				if b.Start < lo {
					lo = b.Start
				}
				if b.End > hi {
					hi = b.End
				}
			}
			q.Buffers[vi].Start, q.Buffers[vi].End = lo, hi
			clash := false
			for j := range p.Buffers {
				if j == vi {
					continue
				}
				overlapTime := p.Buffers[vi].Start < p.Buffers[j].End && p.Buffers[j].Start < p.Buffers[vi].End
				overlapAddr := offsets[vi] < offsets[j]+p.Buffers[j].Size && offsets[j] < offsets[vi]+p.Buffers[vi].Size
				if !overlapTime && overlapAddr {
					clash = true
					break
				}
			}
			if !clash {
				return
			}
			if rep := check.Solution(q, offsets); rep.OK() {
				t.Fatalf("%s: dropped conflict edge accepted", p.Name)
			}
		}
	})
}
