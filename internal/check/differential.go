package check

import (
	"errors"
	"fmt"
	"time"

	"telamalloc"
	"telamalloc/internal/buffers"
	"telamalloc/internal/ilp"
	"telamalloc/internal/workload"
)

// The differential oracle harness (§6 of the paper, Böhm et al.'s
// heuristic-vs-exact methodology): seeded adversarial generators drive
// small problems through the public heuristic ladder AND the exact
// branch-and-bound oracle, every claimed packing is re-verified by the
// independent checker, and the aggregate lands in a machine-readable
// scorecard. Two invariants are hard failures:
//
//   - the ladder must never claim a full packing on an instance the oracle
//     proves infeasible (a wrong "Solved" is the one unrecoverable lie an
//     allocator can tell a compiler);
//   - no claimed packing may be rejected by the independent checker.
//
// The solve-rate gap — oracle solved but ladder failed — is not a failure;
// it is the paper's own quality metric, recorded per family so regressions
// are visible across PRs (BENCH_diff.json).

// Family is one seeded generator family of the differential sweep.
type Family struct {
	// Name labels the family in the scorecard.
	Name string
	// Generate builds the seed's instance.
	Generate func(seed int64) telamalloc.Problem
}

// DiffConfig parameterises a differential run.
type DiffConfig struct {
	// Families is the generator set (nil = DefaultFamilies).
	Families []Family
	// Seeds drives every family once per seed (nil = 1..8).
	Seeds []int64
	// OracleSteps bounds each exact solve (0 = the 400k default). Runs
	// meant to be reproducible must rely on steps, not wall clock.
	OracleSteps int64
	// OracleTimeout optionally adds a wall cap per exact solve, resolved
	// at solve start (ilp.Options.Timeout). Leave zero for pinned runs.
	OracleTimeout time.Duration
	// SearchSteps bounds the ladder's search stage (0 = the 60k default).
	SearchSteps int64
}

// Verdict is one instance's differential outcome.
type Verdict struct {
	Family  string `json:"family"`
	Seed    int64  `json:"seed"`
	Buffers int    `json:"buffers"`
	// Oracle is the exact solver's status string (solved / infeasible /
	// budget-exceeded).
	Oracle string `json:"oracle"`
	// Ladder is the pipeline's outcome: solved / failed.
	Ladder string `json:"ladder"`
	// Winner is the winning stage when the ladder solved.
	Winner string `json:"winner,omitempty"`
	// SolvedOnInfeasible flags the fatal disagreement.
	SolvedOnInfeasible bool `json:"solved_on_infeasible,omitempty"`
	// CheckerViolations counts independent-checker rejections across the
	// instance's claimed packings (oracle's and ladder's).
	CheckerViolations int `json:"checker_violations,omitempty"`
}

// FamilyScore aggregates one family's verdicts.
type FamilyScore struct {
	Name             string `json:"name"`
	Instances        int    `json:"instances"`
	OracleSolved     int    `json:"oracle_solved"`
	OracleInfeasible int    `json:"oracle_infeasible"`
	OracleBudget     int    `json:"oracle_budget"`
	LadderSolved     int    `json:"ladder_solved"`
	LadderFailed     int    `json:"ladder_failed"`
	// AgreedSolved counts instances both sides solved.
	AgreedSolved int `json:"agreed_solved"`
	// SolvedOnInfeasible must be zero; committed so a regression is a
	// visible diff, not just a test failure.
	SolvedOnInfeasible int `json:"solved_on_infeasible"`
	// CheckerRejections must be zero.
	CheckerRejections int `json:"checker_rejections"`
	// SolveRateGapPct is the paper's quality metric: of the instances the
	// oracle solved, the percentage the ladder missed.
	SolveRateGapPct float64 `json:"solve_rate_gap_pct"`
}

// Scorecard is the machine-readable result of a differential run
// (BENCH_diff.json). Seeds and step budgets are embedded so the run is
// reproducible byte-for-byte.
type Scorecard struct {
	Version     int           `json:"version"`
	Seeds       []int64       `json:"seeds"`
	OracleSteps int64         `json:"oracle_steps"`
	SearchSteps int64         `json:"search_steps"`
	Families    []FamilyScore `json:"families"`
	Totals      FamilyScore   `json:"totals"`
}

// DefaultFamilies returns the adversarial generator set: near-capacity
// packs, long-skinny/short-fat mixes, alignment-hostile sizes, the
// above-peak alignment trap, and §6-style tiny model graphs.
func DefaultFamilies() []Family {
	return []Family{
		{Name: "near-capacity", Generate: func(seed int64) telamalloc.Problem {
			return ToPublic(workload.NearCapacityPack(8, seed))
		}},
		{Name: "skinny-fat", Generate: func(seed int64) telamalloc.Problem {
			return ToPublic(workload.SkinnyFatMix(8, seed))
		}},
		{Name: "alignment-hostile", Generate: func(seed int64) telamalloc.Problem {
			return ToPublic(workload.AlignmentHostile(8, seed))
		}},
		{Name: "align-trap", Generate: func(seed int64) telamalloc.Problem {
			return ToPublic(workload.AlignTrap(seed))
		}},
		{Name: "tiny-model-graph", Generate: func(seed int64) telamalloc.Problem {
			return ToPublic(workload.TinyModelGraph(seed))
		}},
	}
}

// ToPublic converts an internal generator problem to the public schema the
// harness (and checker) operate on.
func ToPublic(p *buffers.Problem) telamalloc.Problem {
	q := telamalloc.Problem{Memory: p.Memory, Name: p.Name}
	for _, b := range p.Buffers {
		q.Buffers = append(q.Buffers, telamalloc.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	return q
}

// toInternal is ToPublic's inverse, for handing instances to the oracle.
func toInternal(p telamalloc.Problem) *buffers.Problem {
	q := &buffers.Problem{Memory: p.Memory, Name: p.Name}
	for _, b := range p.Buffers {
		q.Buffers = append(q.Buffers, buffers.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	q.Normalize()
	return q
}

func (c DiffConfig) withDefaults() DiffConfig {
	if c.Families == nil {
		c.Families = DefaultFamilies()
	}
	if c.Seeds == nil {
		for s := int64(1); s <= 8; s++ {
			c.Seeds = append(c.Seeds, s)
		}
	}
	if c.OracleSteps <= 0 {
		c.OracleSteps = 400_000
	}
	if c.SearchSteps <= 0 {
		c.SearchSteps = 60_000
	}
	return c
}

// RunDifferential executes the sweep and returns the scorecard plus every
// per-instance verdict. It returns an error only on harness misuse (a
// generator producing an invalid problem); disagreements and rejections are
// data, reported in the scorecard for the caller to assert on.
func RunDifferential(cfg DiffConfig) (Scorecard, []Verdict, error) {
	cfg = cfg.withDefaults()
	card := Scorecard{
		Version:     1,
		Seeds:       cfg.Seeds,
		OracleSteps: cfg.OracleSteps,
		SearchSteps: cfg.SearchSteps,
	}
	var verdicts []Verdict
	for _, fam := range cfg.Families {
		score := FamilyScore{Name: fam.Name}
		for _, seed := range cfg.Seeds {
			p := fam.Generate(seed)
			v, err := runInstance(cfg, fam.Name, seed, p)
			if err != nil {
				return Scorecard{}, nil, err
			}
			verdicts = append(verdicts, v)
			score.Instances++
			switch v.Oracle {
			case ilp.Solved.String():
				score.OracleSolved++
				if v.Ladder == "solved" {
					score.AgreedSolved++
				}
			case ilp.Infeasible.String():
				score.OracleInfeasible++
			default:
				score.OracleBudget++
			}
			if v.Ladder == "solved" {
				score.LadderSolved++
			} else {
				score.LadderFailed++
			}
			if v.SolvedOnInfeasible {
				score.SolvedOnInfeasible++
			}
			score.CheckerRejections += v.CheckerViolations
		}
		if score.OracleSolved > 0 {
			score.SolveRateGapPct = 100 * float64(score.OracleSolved-score.AgreedSolved) / float64(score.OracleSolved)
		}
		card.Families = append(card.Families, score)
		accumulate(&card.Totals, score)
	}
	card.Totals.Name = "totals"
	if card.Totals.OracleSolved > 0 {
		card.Totals.SolveRateGapPct = 100 * float64(card.Totals.OracleSolved-card.Totals.AgreedSolved) / float64(card.Totals.OracleSolved)
	}
	return card, verdicts, nil
}

func runInstance(cfg DiffConfig, family string, seed int64, p telamalloc.Problem) (Verdict, error) {
	v := Verdict{Family: family, Seed: seed, Buffers: len(p.Buffers)}
	q := toInternal(p)
	if err := q.Validate(); err != nil {
		return v, fmt.Errorf("check: family %s seed %d generated an invalid problem: %v", family, seed, err)
	}

	// The exact oracle. Step-bounded (and optionally wall-bounded via the
	// start-resolved Timeout), so pinned runs are deterministic.
	oracle := ilp.Solve(q, nil, ilp.Options{
		MaxSteps: cfg.OracleSteps,
		Timeout:  cfg.OracleTimeout,
	})
	v.Oracle = oracle.Status.String()
	if oracle.Status == ilp.Solved {
		if rep := Solution(p, oracle.Solution.Offsets); !rep.OK() {
			v.CheckerViolations += len(rep.Violations)
		}
	}

	// The heuristic ladder, exactly as production runs it minus the spill
	// stage: spilling always "succeeds" by degrading, which would blur the
	// solve-rate comparison the harness exists to make.
	res, perr := telamalloc.AllocatePipeline(p,
		telamalloc.WithStages(telamalloc.StageGreedy, telamalloc.StageBestFit, telamalloc.StageSearch),
		telamalloc.WithMaxSteps(cfg.SearchSteps),
	)
	switch {
	case perr == nil:
		v.Ladder = "solved"
		v.Winner = res.Winner
		if rep := Pipeline(p, res, perr); !rep.OK() {
			v.CheckerViolations += len(rep.Violations)
		}
		if oracle.Status == ilp.Infeasible {
			v.SolvedOnInfeasible = true
		}
	case errors.Is(perr, telamalloc.ErrInvalidProblem):
		return v, fmt.Errorf("check: family %s seed %d rejected by the ladder: %v", family, seed, perr)
	default:
		v.Ladder = "failed"
		if rep := Pipeline(p, res, perr); !rep.OK() {
			v.CheckerViolations += len(rep.Violations)
		}
	}
	// The inverse disagreement — oracle infeasible-proof wrong because the
	// ladder found a checker-clean packing — is already covered: a clean
	// packing with oracle=infeasible sets SolvedOnInfeasible, and whether
	// the lie is the oracle's or the ladder's, the harness run fails.
	return v, nil
}

func accumulate(t *FamilyScore, s FamilyScore) {
	t.Instances += s.Instances
	t.OracleSolved += s.OracleSolved
	t.OracleInfeasible += s.OracleInfeasible
	t.OracleBudget += s.OracleBudget
	t.LadderSolved += s.LadderSolved
	t.LadderFailed += s.LadderFailed
	t.AgreedSolved += s.AgreedSolved
	t.SolvedOnInfeasible += s.SolvedOnInfeasible
	t.CheckerRejections += s.CheckerRejections
}
