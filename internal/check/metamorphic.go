package check

import (
	"math/rand"
	"sort"

	"telamalloc"
)

// The metamorphic layer: transformations of an allocation problem under
// which solutions provably survive. Each returns the transformed problem
// plus whatever is needed to transport a solution across the
// transformation, so tests can assert two independent properties:
//
//   - validity transport: a checker-clean solution of the original, mapped
//     through the transformation, is checker-clean for the transform;
//   - canonical stability: for transformations the cache layer promises are
//     fingerprint-preserving (time shift, buffer permutation), the
//     deterministic pipeline must produce byte-identical canonical offsets
//     on both sides.

// TimeShift shifts every live range by delta. The cache fingerprint is
// shift-normalised, so the transform is fingerprint-equal to the original
// and solutions transport unchanged.
func TimeShift(p telamalloc.Problem, delta int64) telamalloc.Problem {
	q := telamalloc.Problem{Memory: p.Memory, Name: p.Name}
	q.Buffers = append([]telamalloc.Buffer(nil), p.Buffers...)
	for i := range q.Buffers {
		q.Buffers[i].Start += delta
		q.Buffers[i].End += delta
	}
	return q
}

// Permute reorders the buffers with the seed's permutation. It returns the
// permuted problem and perm, where permuted.Buffers[k] == p.Buffers[perm[k]];
// a solution transports as transported[k] = offsets[perm[k]]
// (PermuteSolution). Fingerprints ignore buffer order, so the transform is
// fingerprint-equal.
func Permute(p telamalloc.Problem, seed int64) (telamalloc.Problem, []int) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(p.Buffers))
	q := telamalloc.Problem{Memory: p.Memory, Name: p.Name}
	q.Buffers = make([]telamalloc.Buffer, len(p.Buffers))
	for k, id := range perm {
		q.Buffers[k] = p.Buffers[id]
	}
	return q, perm
}

// PermuteSolution transports a solution across Permute's reordering.
func PermuteSolution(offsets []int64, perm []int) []int64 {
	if len(offsets) != len(perm) {
		return nil
	}
	out := make([]int64, len(perm))
	for k, id := range perm {
		out[k] = offsets[id]
	}
	return out
}

// Scale multiplies every size, every alignment, and the capacity by k > 0.
// Solvability is preserved in both directions (divide back for the
// converse), and a solution transports by scaling each offset
// (ScaleSolution): bounds, alignment, and disjointness are all homogeneous
// under the scaling.
func Scale(p telamalloc.Problem, k int64) telamalloc.Problem {
	q := telamalloc.Problem{Memory: p.Memory * k, Name: p.Name}
	q.Buffers = append([]telamalloc.Buffer(nil), p.Buffers...)
	for i := range q.Buffers {
		q.Buffers[i].Size *= k
		if q.Buffers[i].Align > 1 {
			q.Buffers[i].Align *= k
		}
	}
	return q
}

// ScaleSolution transports a solution across Scale. Spilled offsets (-1)
// stay spilled.
func ScaleSolution(offsets []int64, k int64) []int64 {
	out := make([]int64, len(offsets))
	for i, off := range offsets {
		if off < 0 {
			out[i] = off
			continue
		}
		out[i] = off * k
	}
	return out
}

// Component is one temporally independent slice of a problem: a maximal set
// of buffers no live range crosses out of.
type Component struct {
	// Problem is the standalone subproblem, with the parent's memory limit.
	Problem telamalloc.Problem
	// Indices maps the subproblem's buffer k to the parent's buffer
	// Indices[k].
	Indices []int
}

// SplitComponents cuts the problem at every time point no live range
// crosses, independently of the solver's own §5.3 splitter (sorted-interval
// scan here, union-find-free): any packing of the whole is a packing of
// each component, and packings of the components compose into a packing of
// the whole because buffers in different components never coexist.
func SplitComponents(p telamalloc.Problem) []Component {
	if len(p.Buffers) == 0 {
		return nil
	}
	order := make([]int, len(p.Buffers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if p.Buffers[order[a]].Start != p.Buffers[order[b]].Start {
			return p.Buffers[order[a]].Start < p.Buffers[order[b]].Start
		}
		return order[a] < order[b]
	})
	var out []Component
	cur := Component{Problem: telamalloc.Problem{Memory: p.Memory, Name: p.Name}}
	maxEnd := p.Buffers[order[0]].End
	for _, idx := range order {
		b := p.Buffers[idx]
		if len(cur.Indices) > 0 && b.Start >= maxEnd {
			out = append(out, cur)
			cur = Component{Problem: telamalloc.Problem{Memory: p.Memory, Name: p.Name}}
		}
		cur.Problem.Buffers = append(cur.Problem.Buffers, b)
		cur.Indices = append(cur.Indices, idx)
		if b.End > maxEnd {
			maxEnd = b.End
		}
	}
	out = append(out, cur)
	return out
}

// ComponentSolution restricts a whole-problem solution to one component.
func ComponentSolution(offsets []int64, c Component) []int64 {
	out := make([]int64, len(c.Indices))
	for k, idx := range c.Indices {
		if idx < 0 || idx >= len(offsets) {
			return nil
		}
		out[k] = offsets[idx]
	}
	return out
}

// MergeComponentSolutions composes per-component packings back into a
// whole-problem solution. n is the parent problem's buffer count.
func MergeComponentSolutions(n int, comps []Component, sols [][]int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = -1
	}
	for c, comp := range comps {
		if c >= len(sols) || len(sols[c]) != len(comp.Indices) {
			return nil
		}
		for k, idx := range comp.Indices {
			out[idx] = sols[c][k]
		}
	}
	return out
}
