package check_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"telamalloc"
	"telamalloc/internal/check"
	"telamalloc/internal/ilp"
)

// TestDifferentialInvariants is the harness's core run: across every default
// family and seed, the heuristic ladder must never claim a packing on an
// oracle-proven-infeasible instance, and no claimed packing (oracle's or
// ladder's) may be rejected by the independent checker.
func TestDifferentialInvariants(t *testing.T) {
	card, verdicts, err := check.RunDifferential(check.DiffConfig{})
	if err != nil {
		t.Fatalf("differential run failed: %v", err)
	}
	for _, v := range verdicts {
		if v.SolvedOnInfeasible {
			t.Errorf("%s seed %d: ladder claimed a packing on an oracle-infeasible instance",
				v.Family, v.Seed)
		}
		if v.CheckerViolations > 0 {
			t.Errorf("%s seed %d: %d independent-checker rejections",
				v.Family, v.Seed, v.CheckerViolations)
		}
	}
	if card.Totals.SolvedOnInfeasible != 0 || card.Totals.CheckerRejections != 0 {
		t.Fatalf("scorecard totals carry fatal counts: %+v", card.Totals)
	}
	if card.Totals.Instances != len(card.Seeds)*len(check.DefaultFamilies()) {
		t.Fatalf("ran %d instances, expected %d", card.Totals.Instances,
			len(card.Seeds)*len(check.DefaultFamilies()))
	}
	// The sweep must exercise both sides of the oracle: at least one solved
	// and at least one infeasible instance, or the families are not
	// adversarial enough to mean anything.
	if card.Totals.OracleSolved == 0 || card.Totals.OracleInfeasible == 0 {
		t.Fatalf("sweep lacks oracle diversity: %+v", card.Totals)
	}
}

// TestDifferentialDeterministic: identical configs (steps-only budgets, no
// wall clock) must produce byte-identical scorecards — the property the
// committed BENCH_diff.json regression rests on.
func TestDifferentialDeterministic(t *testing.T) {
	a, _, err := check.RunDifferential(check.DiffConfig{Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := check.RunDifferential(check.DiffConfig{Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same config, different scorecards:\n%s\n%s", ja, jb)
	}
}

// TestDifferentialClassification pins the harness's bookkeeping on hand-built
// instances with known ground truth: a feasible pair both sides must solve,
// and a pigeonhole-infeasible pair the oracle must prove and the ladder must
// fail.
func TestDifferentialClassification(t *testing.T) {
	card, verdicts, err := check.RunDifferential(check.DiffConfig{
		Families: []check.Family{
			{Name: "known-feasible", Generate: func(seed int64) (p telamalloc.Problem) {
				p.Memory = 64
				p.Buffers = append(p.Buffers, telamalloc.Buffer{Start: 0, End: 4, Size: 16})
				p.Buffers = append(p.Buffers, telamalloc.Buffer{Start: 2, End: 6, Size: 16})
				return p
			}},
			{Name: "known-infeasible", Generate: func(seed int64) (p telamalloc.Problem) {
				p.Memory = 16
				p.Buffers = append(p.Buffers, telamalloc.Buffer{Start: 0, End: 4, Size: 12})
				p.Buffers = append(p.Buffers, telamalloc.Buffer{Start: 0, End: 4, Size: 12})
				return p
			}},
		},
		Seeds: []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	if verdicts[0].Oracle != ilp.Solved.String() || verdicts[0].Ladder != "solved" {
		t.Fatalf("feasible instance misclassified: %+v", verdicts[0])
	}
	if verdicts[1].Oracle != ilp.Infeasible.String() || verdicts[1].Ladder != "failed" {
		t.Fatalf("infeasible instance misclassified: %+v", verdicts[1])
	}
	if card.Totals.SolvedOnInfeasible != 0 {
		t.Fatalf("false disagreement reported: %+v", card.Totals)
	}
}

// TestScorecardRegression pins the committed BENCH_diff.json: re-running the
// differential sweep with the committed seeds and budgets must reproduce the
// committed scorecard exactly. A diff here means solver behaviour changed —
// deliberate changes regenerate the file (go run ./cmd/telacheck -diff -out
// BENCH_diff.json), accidental ones fail tier-1.
func TestScorecardRegression(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_diff.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading committed scorecard: %v", err)
	}
	var committed check.Scorecard
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("parsing committed scorecard: %v", err)
	}
	got, _, err := check.RunDifferential(check.DiffConfig{
		Seeds:       committed.Seeds,
		OracleSteps: committed.OracleSteps,
		SearchSteps: committed.SearchSteps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, committed) {
		gj, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("scorecard drifted from committed BENCH_diff.json.\nGot:\n%s", gj)
	}
}
