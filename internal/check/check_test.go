package check_test

import (
	"strings"
	"testing"

	"telamalloc"
	"telamalloc/internal/check"
)

// two-buffer conflict fixture: both live over [0,4), memory 10.
func conflictPair() telamalloc.Problem {
	return telamalloc.Problem{
		Memory: 10,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 4, Size: 4},
			{Start: 0, End: 4, Size: 4},
		},
	}
}

func hasKind(r check.Report, k check.Kind) bool {
	for _, v := range r.Violations {
		if v.Kind == k {
			return true
		}
	}
	return false
}

func TestSolutionAcceptsValidPacking(t *testing.T) {
	p := conflictPair()
	if rep := check.Solution(p, []int64{0, 4}); !rep.OK() {
		t.Fatalf("valid packing rejected: %v", rep.Err())
	}
}

func TestSolutionRejections(t *testing.T) {
	p := conflictPair()
	cases := []struct {
		name    string
		problem telamalloc.Problem
		offsets []int64
		kind    check.Kind
	}{
		{"count", p, []int64{0}, check.KindCount},
		{"unassigned", p, []int64{0, -1}, check.KindUnassigned},
		{"bounds", p, []int64{0, 7}, check.KindBounds},
		{"overlap-exact", p, []int64{2, 2}, check.KindConflict},
		{"overlap-partial", p, []int64{0, 3}, check.KindConflict},
		{
			"misaligned",
			telamalloc.Problem{Memory: 16, Buffers: []telamalloc.Buffer{{Start: 0, End: 1, Size: 2, Align: 8}}},
			[]int64{3},
			check.KindAlignment,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := check.Solution(tc.problem, tc.offsets)
			if rep.OK() {
				t.Fatalf("accepted a broken packing")
			}
			if !hasKind(rep, tc.kind) {
				t.Fatalf("wanted a %s violation, got %v", tc.kind, rep.Err())
			}
		})
	}
}

// Temporal disjointness: same addresses are fine when live ranges do not
// intersect, including the shared-endpoint case (End is exclusive).
func TestSolutionTemporalDisjointness(t *testing.T) {
	p := telamalloc.Problem{
		Memory: 4,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 2, Size: 4},
			{Start: 2, End: 4, Size: 4},
		},
	}
	if rep := check.Solution(p, []int64{0, 0}); !rep.OK() {
		t.Fatalf("address reuse across disjoint lifetimes rejected: %v", rep.Err())
	}
}

// The sweep must catch conflicts that exist only in a sub-interval of both
// lifetimes (a buffer bridging two otherwise-disjoint groups).
func TestSolutionBridgedConflict(t *testing.T) {
	p := telamalloc.Problem{
		Memory: 8,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 2, Size: 4},
			{Start: 3, End: 5, Size: 4},
			{Start: 1, End: 4, Size: 4}, // bridges both
		},
	}
	if rep := check.Solution(p, []int64{0, 0, 4}); !rep.OK() {
		t.Fatalf("valid bridged packing rejected: %v", rep.Err())
	}
	rep := check.Solution(p, []int64{0, 4, 4})
	if !hasKind(rep, check.KindConflict) {
		t.Fatalf("missed the bridged conflict: %v", rep.Err())
	}
}

func TestDegradedSpillPlanChecks(t *testing.T) {
	p := conflictPair()
	// Spilling buffer 1 makes the rest valid; cost defaults to its size.
	if rep := check.Degraded(p, []int64{0, -1}, []int{1}, nil, 4); !rep.OK() {
		t.Fatalf("valid degraded packing rejected: %v", rep.Err())
	}
	cases := []struct {
		name      string
		offsets   []int64
		spilled   []int
		cost      int64
		wantWords string
	}{
		{"spilled-but-assigned", []int64{0, 4}, []int{1}, 4, "on-chip offset"},
		{"unlisted-minus-one", []int64{-1, -1}, []int{1}, 4, "not in the spill plan"},
		{"out-of-range-index", []int64{0, -1}, []int{7}, 4, "out of range"},
		{"duplicate-index", []int64{0, -1}, []int{1, 1}, 4, "listed twice"},
		{"wrong-cost", []int64{0, -1}, []int{1}, 3, "independent sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := check.Degraded(p, tc.offsets, tc.spilled, nil, tc.cost)
			if rep.OK() {
				t.Fatal("accepted an inconsistent spill plan")
			}
			if err := rep.Err(); !strings.Contains(err.Error(), tc.wantWords) {
				t.Fatalf("error %q does not mention %q", err, tc.wantWords)
			}
		})
	}
	// Explicit weights override sizes in the cost sum.
	if rep := check.Degraded(p, []int64{0, -1}, []int{1}, []int64{9, 7}, 7); !rep.OK() {
		t.Fatalf("weighted cost rejected: %v", rep.Err())
	}
}

func TestLowerBoundAndPeakUsage(t *testing.T) {
	p := telamalloc.Problem{
		Memory: 100,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 3, Size: 10},
			{Start: 2, End: 5, Size: 20}, // overlaps the first only at t=2
			{Start: 5, End: 6, Size: 25}, // alone
		},
	}
	if lb := check.LowerBound(p); lb != 30 {
		t.Fatalf("lower bound %d, want 30", lb)
	}
	if pu := check.PeakUsage(p, []int64{0, 10, 0}); pu != 30 {
		t.Fatalf("peak usage %d, want 30", pu)
	}
	// End-exclusive touch must not count as contention.
	q := telamalloc.Problem{
		Memory: 100,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 2, Size: 10},
			{Start: 2, End: 4, Size: 15},
		},
	}
	if lb := check.LowerBound(q); lb != 15 {
		t.Fatalf("touching lifetimes: lower bound %d, want 15", lb)
	}
}

// The checker and the production validator must agree on generated
// workloads — agreement of two independent implementations is the property
// the differential subsystem rests on.
func TestCheckerAgreesWithProductionValidator(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		for _, fam := range check.DefaultFamilies() {
			p := fam.Generate(seed)
			sol, _, err := telamalloc.Allocate(p, telamalloc.WithMaxSteps(40_000))
			if err != nil {
				continue
			}
			if verr := sol.Validate(p); verr != nil {
				t.Fatalf("%s seed %d: production validator rejected Allocate's packing: %v",
					p.Name, seed, verr)
			}
			if rep := check.Solution(p, sol.Offsets); !rep.OK() {
				t.Fatalf("%s seed %d: independent checker rejected a packing the production validator accepts: %v",
					p.Name, seed, rep.Err())
			}
		}
	}
}

func TestPipelineReportChecks(t *testing.T) {
	p := conflictPair()
	res, err := telamalloc.AllocatePipeline(p)
	if err != nil {
		t.Fatalf("pipeline failed on a feasible pair: %v", err)
	}
	if rep := check.Pipeline(p, res, err); !rep.OK() {
		t.Fatalf("clean pipeline result rejected: %v", rep.Err())
	}
	// Tamper with the evidence: the checker must notice a lower bound that
	// does not match its own recomputation.
	res.LowerBound++
	rep := check.Pipeline(p, res, err)
	if !hasKind(rep, check.KindEvidence) {
		t.Fatalf("tampered lower bound accepted: %v", rep.Err())
	}
	// A degraded flag without a spill plan is an outcome inconsistency.
	res.LowerBound--
	res.Degraded = true
	res.Spill = nil
	if rep := check.Pipeline(p, res, err); !hasKind(rep, check.KindOutcome) {
		t.Fatalf("degraded-without-plan accepted: %v", rep.Err())
	}
}
