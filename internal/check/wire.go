package check

import (
	"telamalloc"
	"telamalloc/internal/wire"
)

// WireProblem rebuilds the public allocation problem a wire request
// describes, so offline tools (cmd/telacheck) can re-verify captured
// responses against exactly the bytes the daemon saw.
func WireProblem(req wire.Request) telamalloc.Problem {
	p := telamalloc.Problem{Memory: req.Memory, Name: req.Name}
	for _, b := range req.Buffers {
		p.Buffers = append(p.Buffers, telamalloc.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	return p
}

// Wire verifies one wire report line against the request it answered.
// Verdict outcomes (solved/degraded/failed) get the full packing, spill
// and evidence checks; protocol outcomes (shed/rejected/cancelled) are
// checked for not smuggling offsets. Unknown outcomes are violations: an
// offline checker must fail loudly on schema drift rather than skip what it
// does not recognise.
func Wire(req wire.Request, resp wire.Response) Report {
	var r Report
	if resp.V != wire.Version {
		r.add(KindOutcome, -1, -1, "response version %d, schema version %d", resp.V, wire.Version)
	}
	if req.ID != "" && resp.ID != req.ID {
		r.add(KindOutcome, -1, -1, "response id %q for request id %q", resp.ID, req.ID)
	}
	p := WireProblem(req)
	switch resp.Outcome {
	case wire.OutcomeSolved:
		if resp.Winner == "" {
			r.add(KindOutcome, -1, -1, "solved without a winning stage")
		}
		if len(resp.Spilled) > 0 {
			r.add(KindOutcome, -1, -1, "solved outcome lists %d spilled buffers", len(resp.Spilled))
		}
		sub := Solution(p, resp.Offsets)
		r.Violations = append(r.Violations, sub.Violations...)
	case wire.OutcomeDegraded:
		if len(resp.Spilled) == 0 {
			r.add(KindOutcome, -1, -1, "degraded outcome with an empty spill set")
			break
		}
		sub := Degraded(p, resp.Offsets, resp.Spilled, nil, resp.SpillCost)
		r.Violations = append(r.Violations, sub.Violations...)
	case wire.OutcomeFailed:
		if len(resp.Offsets) != 0 {
			r.add(KindOutcome, -1, -1, "failed outcome carries %d offsets", len(resp.Offsets))
		}
		// When the failure claims provable infeasibility (lower bound over
		// memory), the claim must survive independent recomputation.
		if resp.LowerBound > resp.Memory {
			if lb := LowerBound(p); lb <= p.Memory {
				r.add(KindEvidence, -1, -1,
					"claimed infeasibility (%d > %d) but independent peak is %d <= %d",
					resp.LowerBound, resp.Memory, lb, p.Memory)
			}
		}
	case wire.OutcomeShed, wire.OutcomeRejected, wire.OutcomeCancelled:
		if len(resp.Offsets) != 0 {
			r.add(KindOutcome, -1, -1, "%s outcome carries %d offsets", resp.Outcome, len(resp.Offsets))
		}
	default:
		r.add(KindOutcome, -1, -1, "unknown outcome %q", resp.Outcome)
	}
	// Evidence fields are cross-checked whenever the response committed to
	// them (verdict outcomes always do).
	switch resp.Outcome {
	case wire.OutcomeSolved, wire.OutcomeDegraded, wire.OutcomeFailed:
		if resp.Memory != p.Memory {
			r.add(KindEvidence, -1, -1, "response memory %d, request memory %d", resp.Memory, p.Memory)
		}
		if lb := LowerBound(p); resp.LowerBound != lb {
			r.add(KindEvidence, -1, -1, "response lower bound %d, independent peak %d", resp.LowerBound, lb)
		}
	}
	return r
}
