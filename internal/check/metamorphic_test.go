package check_test

import (
	"bytes"
	"fmt"
	"testing"

	"telamalloc"
	"telamalloc/internal/buffers"
	"telamalloc/internal/cache"
	"telamalloc/internal/check"
)

// solveClean runs the deterministic ladder and requires a checker-clean
// packing; metamorphic tests skip seeds whose base instance the ladder
// cannot solve (the transforms are about transporting solutions, not about
// solve rate).
func solveClean(t *testing.T, p telamalloc.Problem) ([]int64, bool) {
	t.Helper()
	res, err := telamalloc.AllocatePipeline(p,
		telamalloc.WithStages(telamalloc.StageGreedy, telamalloc.StageBestFit, telamalloc.StageSearch),
		telamalloc.WithMaxSteps(60_000),
	)
	if err != nil {
		return nil, false
	}
	if rep := check.Solution(p, res.Solution.Offsets); !rep.OK() {
		t.Fatalf("%s: ladder produced a checker-rejected packing: %v", p.Name, rep.Err())
	}
	return res.Solution.Offsets, true
}

func toBuffers(p telamalloc.Problem) *buffers.Problem {
	q := &buffers.Problem{Memory: p.Memory, Name: p.Name}
	for _, b := range p.Buffers {
		q.Buffers = append(q.Buffers, buffers.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	return q
}

// canonicalProblem rebuilds p in the cache layer's canonical form: buffers
// in canonical order, times shifted to start at zero, alignment normalised.
// Fingerprint-equal problems have value-identical canonical forms, so the
// deterministic pipeline must produce byte-identical offsets on them — the
// byte-identity half of the metamorphic contract.
func canonicalProblem(p telamalloc.Problem) telamalloc.Problem {
	_, perm := cache.Canonicalize(toBuffers(p))
	var minStart int64
	for i, b := range p.Buffers {
		if i == 0 || b.Start < minStart {
			minStart = b.Start
		}
	}
	out := telamalloc.Problem{Memory: p.Memory}
	for _, id := range perm {
		b := p.Buffers[id]
		align := b.Align
		if align < 1 {
			align = 1
		}
		out.Buffers = append(out.Buffers, telamalloc.Buffer{
			Start: b.Start - minStart, End: b.End - minStart, Size: b.Size, Align: align,
		})
	}
	return out
}

// canonicalOffsets solves p's canonical form and serialises the offsets.
func canonicalOffsets(t *testing.T, p telamalloc.Problem) ([]byte, bool) {
	t.Helper()
	offsets, ok := solveClean(t, canonicalProblem(p))
	if !ok {
		return nil, false
	}
	var buf bytes.Buffer
	for _, off := range offsets {
		fmt.Fprintf(&buf, "|%d", off)
	}
	return buf.Bytes(), true
}

func metamorphicSeeds() []int64 { return []int64{1, 2, 3, 4, 5, 6} }

func TestMetamorphicTimeShift(t *testing.T) {
	for _, fam := range check.DefaultFamilies() {
		for _, seed := range metamorphicSeeds() {
			p := fam.Generate(seed)
			offsets, ok := solveClean(t, p)
			if !ok {
				continue
			}
			for _, delta := range []int64{1, 17, 1 << 20} {
				q := check.TimeShift(p, delta)
				// Validity transport: the same offsets solve the shifted
				// problem.
				if rep := check.Solution(q, offsets); !rep.OK() {
					t.Fatalf("%s seed %d shift %d: transported solution rejected: %v",
						p.Name, seed, delta, rep.Err())
				}
				// Fingerprint equality, as the cache layer promises.
				fp, _ := cache.Canonicalize(toBuffers(p))
				fq, _ := cache.Canonicalize(toBuffers(q))
				if fp.Key != fq.Key {
					t.Fatalf("%s seed %d shift %d: fingerprint changed under time shift",
						p.Name, seed, delta)
				}
				// Canonical byte-identity of the solved offsets.
				cp, _ := canonicalOffsets(t, p)
				cq, ok := canonicalOffsets(t, q)
				if !ok || !bytes.Equal(cp, cq) {
					t.Fatalf("%s seed %d shift %d: canonical offsets diverged",
						p.Name, seed, delta)
				}
			}
		}
	}
}

func TestMetamorphicPermutation(t *testing.T) {
	for _, fam := range check.DefaultFamilies() {
		for _, seed := range metamorphicSeeds() {
			p := fam.Generate(seed)
			offsets, ok := solveClean(t, p)
			if !ok {
				continue
			}
			q, perm := check.Permute(p, seed*7+1)
			transported := check.PermuteSolution(offsets, perm)
			if rep := check.Solution(q, transported); !rep.OK() {
				t.Fatalf("%s seed %d: permuted solution rejected: %v", p.Name, seed, rep.Err())
			}
			fp, _ := cache.Canonicalize(toBuffers(p))
			fq, _ := cache.Canonicalize(toBuffers(q))
			if fp.Key != fq.Key {
				t.Fatalf("%s seed %d: fingerprint changed under permutation", p.Name, seed)
			}
			cp, _ := canonicalOffsets(t, p)
			cq, ok := canonicalOffsets(t, q)
			if !ok || !bytes.Equal(cp, cq) {
				t.Fatalf("%s seed %d: canonical offsets diverged under permutation", p.Name, seed)
			}
		}
	}
}

func TestMetamorphicScale(t *testing.T) {
	for _, fam := range check.DefaultFamilies() {
		for _, seed := range metamorphicSeeds() {
			p := fam.Generate(seed)
			offsets, ok := solveClean(t, p)
			if !ok {
				continue
			}
			for _, k := range []int64{2, 3, 8} {
				q := check.Scale(p, k)
				if rep := check.Solution(q, check.ScaleSolution(offsets, k)); !rep.OK() {
					t.Fatalf("%s seed %d scale %d: scaled solution rejected: %v",
						p.Name, seed, k, rep.Err())
				}
			}
		}
	}
}

// composite chains the instance after a time-shifted copy of itself, with
// the larger of the two memory limits: two temporally disjoint components by
// construction, which is what exercises the split/merge transform (the
// adversarial families themselves are deliberately one tight knot).
func composite(p telamalloc.Problem) telamalloc.Problem {
	var horizon int64
	for _, b := range p.Buffers {
		if b.End > horizon {
			horizon = b.End
		}
	}
	q := check.TimeShift(p, horizon+1)
	out := telamalloc.Problem{Memory: p.Memory, Name: p.Name + "-composite"}
	out.Buffers = append(out.Buffers, p.Buffers...)
	out.Buffers = append(out.Buffers, q.Buffers...)
	return out
}

func TestMetamorphicComponentSplit(t *testing.T) {
	split := false
	for _, fam := range check.DefaultFamilies() {
		for _, seed := range metamorphicSeeds() {
			p := composite(fam.Generate(seed))
			offsets, ok := solveClean(t, p)
			if !ok {
				continue
			}
			comps := check.SplitComponents(p)
			if len(comps) > 1 {
				split = true
			}
			total := 0
			var sols [][]int64
			for _, c := range comps {
				total += len(c.Indices)
				// Restriction: the whole-problem packing solves each
				// component standalone.
				sub := check.ComponentSolution(offsets, c)
				if rep := check.Solution(c.Problem, sub); !rep.OK() {
					t.Fatalf("%s seed %d: restricted solution rejected: %v",
						p.Name, seed, rep.Err())
				}
				// Independence: each component is solvable on its own, and
				// those independent packings must compose.
				s, ok := solveClean(t, c.Problem)
				if !ok {
					t.Fatalf("%s seed %d: component unsolvable though the whole was solved",
						p.Name, seed)
				}
				sols = append(sols, s)
			}
			if total != len(p.Buffers) {
				t.Fatalf("%s seed %d: split covers %d of %d buffers", p.Name, seed, total, len(p.Buffers))
			}
			merged := check.MergeComponentSolutions(len(p.Buffers), comps, sols)
			if rep := check.Solution(p, merged); !rep.OK() {
				t.Fatalf("%s seed %d: merged component packings rejected: %v",
					p.Name, seed, rep.Err())
			}
		}
	}
	if !split {
		t.Fatal("no generated instance split into multiple components; the transform went untested")
	}
}
