// Package check is the verification subsystem: an independent
// second-opinion validator for allocation results, a differential harness
// that drives the heuristic ladder against the exact ILP oracle, and a
// metamorphic layer of solution-preserving problem transformations
// (DESIGN.md §15).
//
// The checker here is deliberately NOT built on the allocator's own data
// path. buffers.Solution.Validate shares sweep-line code, event ordering
// conventions, and the Contention profile with the solvers it would be
// checking; a bug in that shared substrate could validate its own wrong
// answers. This package re-derives every verdict from first principles on
// the public problem schema: lifetime conflicts from an elementary-interval
// sweep over compressed time coordinates, capacity from an independent
// running-sum contention recomputation, alignment and bounds by direct
// arithmetic, and spill-plan consistency by set comparison. Agreement
// between the two validators is itself a checked property (the fuzz target
// mutates known-good solutions and demands both reject).
//
// Verdicts are reported as a Report of typed Violations rather than a
// first-error, so a differential scorecard can attribute *what kind* of
// wrongness appeared where, and so a checker rejection in a soak carries
// enough structure to debug without re-running the workload.
package check

import (
	"fmt"
	"sort"
	"strings"

	"telamalloc"
)

// Kind classifies a violation.
type Kind string

const (
	// KindCount: the offsets slice does not match the buffer count.
	KindCount Kind = "offset-count"
	// KindUnassigned: a buffer expected on-chip has offset < 0.
	KindUnassigned Kind = "unassigned"
	// KindBounds: offset+size exceeds the memory limit (or offset < 0 was
	// expected but a spilled buffer carries a real address).
	KindBounds Kind = "out-of-bounds"
	// KindAlignment: the offset is not a multiple of the buffer's alignment.
	KindAlignment Kind = "misaligned"
	// KindConflict: two lifetime-overlapping buffers overlap in memory.
	KindConflict Kind = "lifetime-conflict-overlap"
	// KindSpillPlan: the spill plan and the offsets disagree — a listed
	// buffer still has an address, an unlisted one is missing, an index is
	// out of range or duplicated, or the spill cost does not add up.
	KindSpillPlan Kind = "spill-plan-inconsistent"
	// KindOutcome: the result's own fields contradict each other (a win
	// with no winner, a degraded result with an empty spill set, ...).
	KindOutcome Kind = "outcome-inconsistent"
	// KindEvidence: the reported lower bound does not match the
	// independently recomputed contention peak, or infeasibility evidence
	// does not actually prove infeasibility.
	KindEvidence Kind = "infeasibility-evidence"
)

// Violation is one independently established defect in a claimed result.
type Violation struct {
	// Kind classifies the defect.
	Kind Kind
	// Buffer is the offending buffer index (-1 when not buffer-specific).
	Buffer int
	// Other is the second buffer of a conflict pair (-1 otherwise).
	Other int
	// Detail is the human-readable evidence.
	Detail string
}

func (v Violation) String() string {
	switch {
	case v.Buffer >= 0 && v.Other >= 0:
		return fmt.Sprintf("%s: buffers %d/%d: %s", v.Kind, v.Buffer, v.Other, v.Detail)
	case v.Buffer >= 0:
		return fmt.Sprintf("%s: buffer %d: %s", v.Kind, v.Buffer, v.Detail)
	default:
		return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
	}
}

// Report is the checker's verdict: every violation found, not just the
// first.
type Report struct {
	Violations []Violation
}

// OK reports a clean verdict.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean verdict and an error enumerating the
// violations otherwise.
func (r Report) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		msgs[i] = v.String()
	}
	return fmt.Errorf("check: %d violation(s): %s", len(r.Violations), strings.Join(msgs, "; "))
}

func (r *Report) add(k Kind, buffer, other int, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Kind: k, Buffer: buffer, Other: other, Detail: fmt.Sprintf(format, args...),
	})
}

// Solution verifies a claimed full packing: every buffer assigned, in
// bounds, aligned, and spatially disjoint from every lifetime-overlapping
// buffer. It is the strict verdict Allocate's nil-error contract promises.
func Solution(p telamalloc.Problem, offsets []int64) Report {
	return verify(p, offsets, nil)
}

// Degraded verifies a spill-degraded packing: spilled lists the buffer
// indices evicted off-chip, which must carry offset -1 and be excluded from
// the conflict sweep; every retained buffer must form a valid packing.
// weights gives per-buffer spill costs (nil = size), checked against
// spillCost.
func Degraded(p telamalloc.Problem, offsets []int64, spilled []int, weights []int64, spillCost int64) Report {
	r := verify(p, offsets, spilled)

	// Spill-plan consistency: the listed set and the offset<0 set must be
	// the same set, exactly once each, and the cost must add up.
	seen := make(map[int]bool, len(spilled))
	var cost int64
	for _, i := range spilled {
		if i < 0 || i >= len(p.Buffers) {
			r.add(KindSpillPlan, i, -1, "spilled index out of range (n=%d)", len(p.Buffers))
			continue
		}
		if seen[i] {
			r.add(KindSpillPlan, i, -1, "spilled index listed twice")
			continue
		}
		seen[i] = true
		if weights != nil && i < len(weights) {
			cost += weights[i]
		} else {
			cost += p.Buffers[i].Size
		}
	}
	for i, off := range offsets {
		if i < len(p.Buffers) && off < 0 && !seen[i] {
			r.add(KindSpillPlan, i, -1, "offset -1 but not in the spill plan")
		}
	}
	if len(seen) == len(spilled) && cost != spillCost {
		r.add(KindSpillPlan, -1, -1, "spill cost %d, independent sum %d", spillCost, cost)
	}
	return r
}

// verify runs the core sweeps. spilled (may be nil) lists indices allowed —
// and required — to be off-chip.
func verify(p telamalloc.Problem, offsets []int64, spilled []int) Report {
	var r Report
	if len(offsets) != len(p.Buffers) {
		r.add(KindCount, -1, -1, "%d offsets for %d buffers", len(offsets), len(p.Buffers))
		return r
	}
	isSpilled := make([]bool, len(p.Buffers))
	for _, i := range spilled {
		if i >= 0 && i < len(isSpilled) {
			isSpilled[i] = true
		}
	}

	// Per-buffer checks by direct arithmetic.
	for i, b := range p.Buffers {
		off := offsets[i]
		if isSpilled[i] {
			if off >= 0 {
				r.add(KindSpillPlan, i, -1, "spilled buffer has on-chip offset %d", off)
			}
			continue
		}
		switch {
		case off < 0:
			r.add(KindUnassigned, i, -1, "offset %d", off)
		case off+b.Size > p.Memory:
			r.add(KindBounds, i, -1, "offset %d + size %d > memory %d", off, b.Size, p.Memory)
		}
		if off >= 0 && b.Align > 1 && off%b.Align != 0 {
			r.add(KindAlignment, i, -1, "offset %d not a multiple of %d", off, b.Align)
		}
	}

	// Lifetime-conflict sweep over elementary intervals: compress the time
	// axis to the distinct start/end coordinates, and within every
	// elementary interval sort the live buffers by address — in sorted
	// order, any spatial overlap implies an overlap between some adjacent
	// pair, so the adjacent check is complete. This is a different
	// algorithm (and different code) from the event sweep in
	// buffers.Solution.Validate, which is the point: the two validators
	// share no failure mode.
	type placed struct {
		idx int
		off int64
		end int64 // off + size
	}
	times := make([]int64, 0, 2*len(p.Buffers))
	for i, b := range p.Buffers {
		if isSpilled[i] || offsets[i] < 0 {
			continue
		}
		times = append(times, b.Start, b.End)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	times = dedupInt64(times)
	reported := make(map[[2]int]bool)
	for t := 0; t+1 < len(times); t++ {
		lo := times[t]
		var live []placed
		for i, b := range p.Buffers {
			if isSpilled[i] || offsets[i] < 0 {
				continue
			}
			if b.Start <= lo && lo < b.End {
				live = append(live, placed{idx: i, off: offsets[i], end: offsets[i] + b.Size})
			}
		}
		sort.Slice(live, func(a, b int) bool {
			if live[a].off != live[b].off {
				return live[a].off < live[b].off
			}
			return live[a].idx < live[b].idx
		})
		for k := 0; k+1 < len(live); k++ {
			a, b := live[k], live[k+1]
			if b.off < a.end {
				lo2, hi := a.idx, b.idx
				if lo2 > hi {
					lo2, hi = hi, lo2
				}
				if !reported[[2]int{lo2, hi}] {
					reported[[2]int{lo2, hi}] = true
					r.add(KindConflict, lo2, hi,
						"live together at t=%d, addresses [%d,%d) and [%d,%d)",
						lo, a.off, a.end, b.off, b.end)
				}
			}
		}
	}
	return r
}

// LowerBound independently recomputes the contention peak — the summed
// sizes of live buffers maximised over time — with a running-sum event
// sweep that shares nothing with buffers.Contention's profile builder. It
// is the unconditional lower bound any packing evidence is checked against.
func LowerBound(p telamalloc.Problem) int64 {
	type ev struct {
		t     int64
		delta int64
	}
	evs := make([]ev, 0, 2*len(p.Buffers))
	for _, b := range p.Buffers {
		evs = append(evs, ev{b.Start, b.Size}, ev{b.End, -b.Size})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		// Frees before allocations at the same instant: End is exclusive.
		return evs[a].delta < evs[b].delta
	})
	var cur, peak int64
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// PeakUsage independently recomputes the highest address a packing touches.
// Spilled buffers (offset < 0) are skipped.
func PeakUsage(p telamalloc.Problem, offsets []int64) int64 {
	var peak int64
	for i, b := range p.Buffers {
		if i < len(offsets) && offsets[i] >= 0 && offsets[i]+b.Size > peak {
			peak = offsets[i] + b.Size
		}
	}
	return peak
}

// Pipeline verifies a full PipelineResult against its problem: the packing
// (full or degraded), the internal consistency of the winner/degraded/spill
// fields, and the lower-bound evidence against an independent recomputation.
// perr is the error AllocatePipeline returned alongside the result.
func Pipeline(p telamalloc.Problem, res telamalloc.PipelineResult, perr error) Report {
	var r Report
	if lb := LowerBound(p); res.LowerBound != lb {
		r.add(KindEvidence, -1, -1, "reported lower bound %d, independent peak %d", res.LowerBound, lb)
	}
	if res.Memory != p.Memory {
		r.add(KindEvidence, -1, -1, "result memory %d, problem memory %d", res.Memory, p.Memory)
	}
	if perr != nil {
		if res.Winner != "" || len(res.Solution.Offsets) != 0 {
			r.add(KindOutcome, -1, -1, "error %q alongside a solution from %q", perr, res.Winner)
		}
		return r
	}
	if res.Winner == "" {
		r.add(KindOutcome, -1, -1, "nil error but no winning stage")
	}
	if res.Degraded {
		if res.Spill == nil || len(res.Spill.Spilled) == 0 {
			r.add(KindOutcome, -1, -1, "degraded result without a non-empty spill plan")
			return r
		}
		sub := Degraded(p, res.Solution.Offsets, res.Spill.Spilled, nil, res.Spill.SpillCost)
		r.Violations = append(r.Violations, sub.Violations...)
		return r
	}
	if res.Spill != nil && len(res.Spill.Spilled) > 0 {
		r.add(KindOutcome, -1, -1, "non-degraded result lists %d spilled buffers", len(res.Spill.Spilled))
	}
	sub := Solution(p, res.Solution.Offsets)
	r.Violations = append(r.Violations, sub.Violations...)
	return r
}

func dedupInt64(xs []int64) []int64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
