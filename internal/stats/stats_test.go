package stats

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %g, want %g", name, got, want)
	}
}

func TestMean(t *testing.T) {
	approx(t, "Mean", Mean([]float64{1, 2, 3, 4}), 2.5)
	approx(t, "Mean empty", Mean(nil), 0)
}

func TestGeoMean(t *testing.T) {
	approx(t, "GeoMean", GeoMean([]float64{1, 4, 16}), 4)
	approx(t, "GeoMean single", GeoMean([]float64{7}), 7)
	approx(t, "GeoMean empty", GeoMean(nil), 0)
	if g := GeoMean([]float64{0, 4}); g <= 0 || math.IsNaN(g) {
		t.Errorf("GeoMean with zero produced %g", g)
	}
}

func TestStdDev(t *testing.T) {
	approx(t, "StdDev", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2)
	approx(t, "StdDev single", StdDev([]float64{3}), 0)
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	approx(t, "P0", Percentile(xs, 0), 15)
	approx(t, "P100", Percentile(xs, 100), 50)
	approx(t, "P50", Percentile(xs, 50), 35)
	approx(t, "P25", Percentile(xs, 25), 20)
	approx(t, "Median", Median(xs), 35)
	approx(t, "Percentile empty", Percentile(nil, 50), 0)
	// Interpolation between ranks.
	approx(t, "P10 of [0,10]", Percentile([]float64{0, 10}, 10), 1)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	approx(t, "Min", Min(xs), -1)
	approx(t, "Max", Max(xs), 7)
	approx(t, "Min empty", Min(nil), 0)
	approx(t, "Max empty", Max(nil), 0)
}

func TestRMSE(t *testing.T) {
	approx(t, "RMSE zero", RMSE([]float64{1, 2}, []float64{1, 2}), 0)
	approx(t, "RMSE", RMSE([]float64{0, 0}, []float64{3, 4}), math.Sqrt(12.5))
	approx(t, "RMSE empty", RMSE(nil, nil), 0)
}
