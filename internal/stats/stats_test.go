package stats

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %g, want %g", name, got, want)
	}
}

func TestMean(t *testing.T) {
	approx(t, "Mean", Mean([]float64{1, 2, 3, 4}), 2.5)
	approx(t, "Mean empty", Mean(nil), 0)
}

func TestGeoMean(t *testing.T) {
	approx(t, "GeoMean", GeoMean([]float64{1, 4, 16}), 4)
	approx(t, "GeoMean single", GeoMean([]float64{7}), 7)
	approx(t, "GeoMean empty", GeoMean(nil), 0)
	if g := GeoMean([]float64{0, 4}); g <= 0 || math.IsNaN(g) {
		t.Errorf("GeoMean with zero produced %g", g)
	}
}

func TestStdDev(t *testing.T) {
	approx(t, "StdDev", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2)
	approx(t, "StdDev single", StdDev([]float64{3}), 0)
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	approx(t, "P0", Percentile(xs, 0), 15)
	approx(t, "P100", Percentile(xs, 100), 50)
	approx(t, "P50", Percentile(xs, 50), 35)
	approx(t, "P25", Percentile(xs, 25), 20)
	approx(t, "Median", Median(xs), 35)
	approx(t, "Percentile empty", Percentile(nil, 50), 0)
	// Interpolation between ranks.
	approx(t, "P10 of [0,10]", Percentile([]float64{0, 10}, 10), 1)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	approx(t, "Min", Min(xs), -1)
	approx(t, "Max", Max(xs), 7)
	approx(t, "Min empty", Min(nil), 0)
	approx(t, "Max empty", Max(nil), 0)
}

// TestEWMAColdStart is the regression table for retry-after pricing on a
// freshly started daemon: the first Observe must seed the estimate directly
// instead of decaying from zero, otherwise a cold server advertises
// near-zero backoff hints and callers hammer it. The later rows pin the
// standard recurrence and the alpha clamp.
func TestEWMAColdStart(t *testing.T) {
	cases := []struct {
		name    string
		alpha   float64
		observe []float64
		want    []float64 // expected Value after each observation
	}{
		{
			name:    "first observation seeds directly",
			alpha:   0.2,
			observe: []float64{1000},
			want:    []float64{1000},
		},
		{
			name:    "seed then standard recurrence",
			alpha:   0.5,
			observe: []float64{100, 200, 400},
			want:    []float64{100, 150, 275},
		},
		{
			name:    "low alpha still seeds from the first sample",
			alpha:   0.01,
			observe: []float64{5000, 5000},
			want:    []float64{5000, 5000},
		},
		{
			name:    "seeding works for zero samples too",
			alpha:   0.2,
			observe: []float64{0, 10},
			want:    []float64{0, 2},
		},
		{
			name:    "out-of-range alpha clamps to 0.2",
			alpha:   7,
			observe: []float64{10, 20},
			want:    []float64{10, 12},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEWMA(tc.alpha)
			approx(t, "Value before any observation", e.Value(), 0)
			for i, x := range tc.observe {
				e.Observe(x)
				approx(t, "Value after observation", e.Value(), tc.want[i])
			}
		})
	}
}

func TestRMSE(t *testing.T) {
	approx(t, "RMSE zero", RMSE([]float64{1, 2}, []float64{1, 2}), 0)
	approx(t, "RMSE", RMSE([]float64{0, 0}, []float64{3, 4}), math.Sqrt(12.5))
	approx(t, "RMSE empty", RMSE(nil, nil), 0)
}
