// Package stats provides the small statistical helpers the experiment
// harness uses to summarise results (means, geometric means, percentiles)
// and the streaming estimators the serving layer feeds with per-request
// observations.
package stats

import (
	"math"
	"sort"
	"sync"
)

// EWMA is a thread-safe exponentially weighted moving average. The serving
// layer uses it to track observed request latency, which prices the
// retry-after hint attached to load-shed errors. The zero value is unusable;
// build one with NewEWMA.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	seen  bool
}

// NewEWMA builds an estimator with smoothing factor alpha in (0, 1]: higher
// alpha weights recent observations more. Out-of-range alphas are clamped.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average. The first sample seeds the
// average directly, so the estimate is meaningful from the first request on.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.seen {
		e.value, e.seen = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current estimate, or 0 before any observation.
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny positive value so that a single zero does not collapse
// the whole summary (the harness feeds step counts, which are >= 1 in
// practice). Empty input returns 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x < 1e-12 {
			x = 1e-12
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. Empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the smallest element, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// RMSE returns the root-mean-square error between predictions and targets;
// the slices must have equal length.
func RMSE(pred, target []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var ss float64
	for i := range pred {
		d := pred[i] - target[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pred)))
}
