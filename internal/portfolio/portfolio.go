// Package portfolio runs several allocation strategies as a portfolio —
// the production pattern behind the paper's deployment story. The Pixel 6
// compiler tries the greedy heuristic first and falls back to TelaMalloc
// (§7.2: "our compiler thus still tries the heuristic before using
// TelaMalloc"); before TelaMalloc existed, the fallback chain ended in an
// ILP solver. This package provides both arrangements:
//
//   - Sequential: try allocators in order, return the first success — the
//     shipped Pixel 6 flow, minimising wasted work on easy inputs.
//   - Racing: run all allocators concurrently and return the first success,
//     cancelling the rest — bounds latency by the *fastest* solver on every
//     input at the cost of parallel CPU, useful on servers (§2.3's XLA
//     setting, where compile machines have cores to spare).
package portfolio

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"telamalloc/internal/buffers"
	"telamalloc/internal/heuristics"
)

// ErrAllFailed is returned when every member failed.
var ErrAllFailed = errors.New("portfolio: every allocator failed")

// Result identifies which member produced the packing.
type Result struct {
	Solution *buffers.Solution
	// Winner is the name of the allocator that succeeded.
	Winner string
	// Attempts counts members that ran to completion before the win
	// (sequential mode) or that were started (racing mode).
	Attempts int
}

// Sequential tries members in order and returns the first valid solution.
func Sequential(p *buffers.Problem, members ...heuristics.Allocator) (*Result, error) {
	if len(members) == 0 {
		return nil, errors.New("portfolio: no members")
	}
	var errs []string
	for i, m := range members {
		sol, err := m.Allocate(p)
		if err == nil {
			if verr := sol.Validate(p); verr != nil {
				return nil, fmt.Errorf("portfolio: %s returned invalid packing: %w", m.Name(), verr)
			}
			return &Result{Solution: sol, Winner: m.Name(), Attempts: i + 1}, nil
		}
		errs = append(errs, fmt.Sprintf("%s: %v", m.Name(), err))
	}
	return nil, fmt.Errorf("%w: %s", ErrAllFailed, strings.Join(errs, "; "))
}

// Racing runs all members concurrently and returns the first valid
// solution. Members should carry their own budgets (steps or deadlines);
// Racing does not forcibly kill laggards, it just stops waiting for them —
// matching how allocator libraries without cancellation hooks are raced in
// practice.
func Racing(p *buffers.Problem, members ...heuristics.Allocator) (*Result, error) {
	if len(members) == 0 {
		return nil, errors.New("portfolio: no members")
	}
	type outcome struct {
		sol  *buffers.Solution
		name string
		err  error
	}
	results := make(chan outcome, len(members))
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m heuristics.Allocator) {
			defer wg.Done()
			// Each goroutine gets its own clone: allocators promise not to
			// mutate the problem, but isolation is cheap insurance against
			// shared scratch state.
			sol, err := m.Allocate(p.Clone())
			results <- outcome{sol, m.Name(), err}
		}(m)
	}
	go func() { wg.Wait(); close(results) }()

	var errs []string
	attempts := 0
	for out := range results {
		attempts++
		if out.err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", out.name, out.err))
			continue
		}
		if verr := out.sol.Validate(p); verr != nil {
			errs = append(errs, fmt.Sprintf("%s: invalid packing: %v", out.name, verr))
			continue
		}
		return &Result{Solution: out.sol, Winner: out.name, Attempts: len(members)}, nil
	}
	_ = attempts
	return nil, fmt.Errorf("%w: %s", ErrAllFailed, strings.Join(errs, "; "))
}
