// Package portfolio runs several allocation strategies as a portfolio —
// the production pattern behind the paper's deployment story. The Pixel 6
// compiler tries the greedy heuristic first and falls back to TelaMalloc
// (§7.2: "our compiler thus still tries the heuristic before using
// TelaMalloc"); before TelaMalloc existed, the fallback chain ended in an
// ILP solver. This package provides both arrangements:
//
//   - Sequential: try allocators in order, return the first success — the
//     shipped Pixel 6 flow, minimising wasted work on easy inputs.
//   - Racing: run all allocators concurrently and return the first success,
//     cancelling the rest — bounds latency by the *fastest* solver on every
//     input at the cost of parallel CPU, useful on servers (§2.3's XLA
//     setting, where compile machines have cores to spare).
//
// Both arrangements are hardened for production serving: a member that
// panics is contained (its goroutine recovers and the panic becomes that
// member's error), and members implementing ContextAllocator observe
// cancellation — Racing cancels losers as soon as a winner validates, so
// laggards stop burning CPU instead of running to their own budgets.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"telamalloc/internal/buffers"
	"telamalloc/internal/heuristics"
)

// ErrAllFailed is returned when every member failed.
var ErrAllFailed = errors.New("portfolio: every allocator failed")

// ContextAllocator is implemented by members that support cooperative
// cancellation (core.Allocator does). Racing uses it to stop losing members
// promptly once a winner is found; members without it simply run to their
// own budgets, matching how allocator libraries without cancellation hooks
// are raced in practice.
type ContextAllocator interface {
	heuristics.Allocator
	AllocateContext(ctx context.Context, p *buffers.Problem) (*buffers.Solution, error)
}

// Result identifies which member produced the packing.
type Result struct {
	Solution *buffers.Solution
	// Winner is the name of the allocator that succeeded.
	Winner string
	// Attempts counts members that ran to completion before the win
	// (sequential mode) or that were started (racing mode).
	Attempts int
}

// Sequential tries members in order and returns the first valid solution.
func Sequential(p *buffers.Problem, members ...heuristics.Allocator) (*Result, error) {
	return SequentialContext(context.Background(), p, members...)
}

// SequentialContext is Sequential with cooperative cancellation: the chain
// stops between members once ctx is done, and members implementing
// ContextAllocator observe cancellation mid-solve.
func SequentialContext(ctx context.Context, p *buffers.Problem, members ...heuristics.Allocator) (*Result, error) {
	if len(members) == 0 {
		return nil, errors.New("portfolio: no members")
	}
	var errs []string
	for i, m := range members {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("portfolio: cancelled after %d members: %w", i, err)
		}
		sol, err := safeAllocate(ctx, m, p)
		if err == nil {
			if verr := sol.Validate(p); verr != nil {
				return nil, fmt.Errorf("portfolio: %s returned invalid packing: %w", m.Name(), verr)
			}
			return &Result{Solution: sol, Winner: m.Name(), Attempts: i + 1}, nil
		}
		errs = append(errs, fmt.Sprintf("%s: %v", m.Name(), err))
	}
	return nil, fmt.Errorf("%w: %s", ErrAllFailed, strings.Join(errs, "; "))
}

// Racing runs all members concurrently and returns the first valid
// solution; see RacingContext for the cancellation contract.
func Racing(p *buffers.Problem, members ...heuristics.Allocator) (*Result, error) {
	return RacingContext(context.Background(), p, members...)
}

// RacingContext runs all members concurrently and returns the first valid
// solution. Losing members are cancelled as soon as the winner validates:
// every member runs under a context derived from ctx that is cancelled on
// return, so ContextAllocator members stop within their polling stride
// instead of running to their own budgets. Members without cancellation
// support are not forcibly killed — Racing stops waiting for them and their
// goroutines drain in the background.
func RacingContext(ctx context.Context, p *buffers.Problem, members ...heuristics.Allocator) (*Result, error) {
	if len(members) == 0 {
		return nil, errors.New("portfolio: no members")
	}
	raceCtx, stop := context.WithCancel(ctx)
	defer stop()
	type outcome struct {
		sol  *buffers.Solution
		name string
		err  error
	}
	results := make(chan outcome, len(members))
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m heuristics.Allocator) {
			defer wg.Done()
			// Each goroutine gets its own clone: allocators promise not to
			// mutate the problem, but isolation is cheap insurance against
			// shared scratch state.
			sol, err := safeAllocate(raceCtx, m, p.Clone())
			results <- outcome{sol, m.Name(), err}
		}(m)
	}
	go func() { wg.Wait(); close(results) }()

	var errs []string
	for out := range results {
		if out.err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", out.name, out.err))
			continue
		}
		if verr := out.sol.Validate(p); verr != nil {
			errs = append(errs, fmt.Sprintf("%s: invalid packing: %v", out.name, verr))
			continue
		}
		return &Result{Solution: out.sol, Winner: out.name, Attempts: len(members)}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("portfolio: cancelled: %w", err)
	}
	return nil, fmt.Errorf("%w: %s", ErrAllFailed, strings.Join(errs, "; "))
}

// safeAllocate invokes one member inside a containment boundary: a panic in
// the member — a learned policy, a third-party allocator — becomes that
// member's error instead of crashing the process. Members that support
// cancellation receive the context.
func safeAllocate(ctx context.Context, m heuristics.Allocator, p *buffers.Problem) (sol *buffers.Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol, err = nil, fmt.Errorf("portfolio: panic in member %s: %v", m.Name(), r)
		}
	}()
	if cm, ok := m.(ContextAllocator); ok {
		return cm.AllocateContext(ctx, p)
	}
	return m.Allocate(p)
}
