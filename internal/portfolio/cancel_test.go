package portfolio

import (
	"context"
	"errors"
	"testing"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/workload"
)

// laggard blocks until its context is cancelled, then records when it
// observed the cancellation. It stands in for a slow search member.
type laggard struct {
	observed chan struct{}
}

func (l *laggard) Name() string { return "laggard" }

func (l *laggard) Allocate(p *buffers.Problem) (*buffers.Solution, error) {
	return nil, errors.New("laggard: no context, cannot run")
}

func (l *laggard) AllocateContext(ctx context.Context, p *buffers.Problem) (*buffers.Solution, error) {
	select {
	case <-ctx.Done():
		close(l.observed)
		return nil, ctx.Err()
	case <-time.After(30 * time.Second):
		return nil, errors.New("laggard: never cancelled")
	}
}

// panicky crashes mid-allocation — the misbehaving third-party member.
type panicky struct{}

func (panicky) Name() string { return "panicky" }
func (panicky) Allocate(p *buffers.Problem) (*buffers.Solution, error) {
	panic("member corrupted its scratch state")
}

// TestRacingCancelsLaggards: once a fast member wins, losing members
// observe cancellation promptly instead of running to their own budgets.
func TestRacingCancelsLaggards(t *testing.T) {
	p := workload.NonOverlapping(10, 1)
	lag := &laggard{observed: make(chan struct{})}
	res, err := Racing(p, heuristics.GreedyContention{}, lag)
	if err != nil {
		t.Fatalf("racing failed: %v", err)
	}
	if res.Winner != "greedy-contention" {
		t.Fatalf("winner %q, want greedy-contention", res.Winner)
	}
	select {
	case <-lag.observed:
		// Laggard saw the cancellation.
	case <-time.After(5 * time.Second):
		t.Fatal("laggard did not observe cancellation within 5s of the win")
	}
}

// TestRacingTelamallocLaggardStops: the real TelaMalloc allocator, raced
// against an instant winner on a hard instance, stops via the context path
// instead of searching to exhaustion.
func TestRacingTelamallocLaggardStops(t *testing.T) {
	// Tight single-component instance: TelaMalloc would search a long time.
	p := workload.FullOverlap(60, 5)
	tela := core.Allocator{Config: core.Config{DisableSplit: true}}
	start := time.Now()
	res, err := Racing(p, heuristics.GreedyContention{}, tela)
	if err != nil {
		// Greedy may legitimately fail on a tight instance; then TelaMalloc
		// decides the race and there is no laggard to cancel.
		t.Skipf("no instant winner on this fixture: %v", err)
	}
	_ = res
	// No timing assertion here — the derived context is cancelled on
	// return; TestRacingCancelsLaggards asserts the observation. This test
	// pins that the ContextAllocator wiring accepts core.Allocator.
	_ = start
}

// TestRacingContainsPanickingMember: a panicking member becomes an error
// entry, the healthy member still wins, and the process survives.
func TestRacingContainsPanickingMember(t *testing.T) {
	p := workload.NonOverlapping(10, 2)
	res, err := Racing(p, panicky{}, heuristics.GreedyContention{})
	if err != nil {
		t.Fatalf("racing failed despite a healthy member: %v", err)
	}
	if res.Winner != "greedy-contention" {
		t.Fatalf("winner %q, want greedy-contention", res.Winner)
	}
}

// TestSequentialContainsPanickingMember: same containment in the
// sequential ladder.
func TestSequentialContainsPanickingMember(t *testing.T) {
	p := workload.NonOverlapping(10, 3)
	res, err := Sequential(p, panicky{}, heuristics.GreedyContention{})
	if err != nil {
		t.Fatalf("sequential failed despite a healthy member: %v", err)
	}
	if res.Winner != "greedy-contention" || res.Attempts != 2 {
		t.Fatalf("winner %q after %d attempts, want greedy-contention after 2", res.Winner, res.Attempts)
	}
}

// TestSequentialContextStopsBetweenMembers: a done context stops the chain
// before the next member starts.
func TestSequentialContextStopsBetweenMembers(t *testing.T) {
	p := workload.NonOverlapping(10, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SequentialContext(ctx, p, heuristics.GreedyContention{})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}

// TestAllFailedStillReported: when every member fails the sentinel is
// preserved for errors.Is.
func TestAllFailedStillReported(t *testing.T) {
	p := workload.FullOverlap(30, 6)
	p.Memory = p.Buffers[0].Size // hopeless
	_, err := Racing(p, panicky{})
	if !errors.Is(err, ErrAllFailed) {
		t.Fatalf("err %v, want ErrAllFailed", err)
	}
}
