package portfolio

import (
	"errors"
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/workload"
)

func tightProblem() *buffers.Problem {
	// A tight instance the greedy heuristic fails on but TelaMalloc solves
	// (verified: workload.Random seed 2 at 103% of its contention peak).
	return workload.Random(2, 103)
}

func easyProblem() *buffers.Problem {
	p := &buffers.Problem{
		Memory: 64,
		Buffers: []buffers.Buffer{
			{Start: 0, End: 4, Size: 8},
			{Start: 2, End: 8, Size: 8},
		},
	}
	p.Normalize()
	return p
}

// infeasibleProblem needs more memory than exists at every moment.
func infeasibleProblem() *buffers.Problem {
	p := &buffers.Problem{
		Memory: 7,
		Buffers: []buffers.Buffer{
			{Start: 0, End: 4, Size: 4},
			{Start: 0, End: 4, Size: 4},
		},
	}
	p.Normalize()
	return p
}

func members() []heuristics.Allocator {
	return []heuristics.Allocator{
		heuristics.GreedyContention{},
		core.Allocator{Config: core.Config{MaxSteps: 100000}},
	}
}

func TestSequentialFirstMemberWins(t *testing.T) {
	res, err := Sequential(easyProblem(), members()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "greedy-contention" || res.Attempts != 1 {
		t.Errorf("winner = %s after %d attempts, want greedy first", res.Winner, res.Attempts)
	}
}

func TestSequentialFallsBack(t *testing.T) {
	p := tightProblem()
	res, err := Sequential(p, members()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "telamalloc" || res.Attempts != 2 {
		t.Errorf("winner = %s after %d attempts, want telamalloc fallback", res.Winner, res.Attempts)
	}
	if verr := res.Solution.Validate(p); verr != nil {
		t.Fatal(verr)
	}
}

func TestSequentialAllFail(t *testing.T) {
	p := infeasibleProblem()
	_, err := Sequential(p, members()...)
	if !errors.Is(err, ErrAllFailed) {
		t.Errorf("err = %v, want ErrAllFailed", err)
	}
}

func TestSequentialNoMembers(t *testing.T) {
	if _, err := Sequential(easyProblem()); err == nil {
		t.Error("empty portfolio accepted")
	}
	if _, err := Racing(easyProblem()); err == nil {
		t.Error("empty racing portfolio accepted")
	}
}

func TestRacingReturnsValidWinner(t *testing.T) {
	p := tightProblem()
	res, err := Racing(p, members()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "telamalloc" {
		t.Errorf("winner = %s, want telamalloc (greedy cannot solve this)", res.Winner)
	}
	if verr := res.Solution.Validate(p); verr != nil {
		t.Fatal(verr)
	}
}

func TestRacingAllFail(t *testing.T) {
	p := infeasibleProblem()
	_, err := Racing(p, members()...)
	if !errors.Is(err, ErrAllFailed) {
		t.Errorf("err = %v, want ErrAllFailed", err)
	}
}

func TestRacingManyProblems(t *testing.T) {
	// Stress the concurrency path: many races back to back must all return
	// valid packings from some member.
	for i := 0; i < 20; i++ {
		p := easyProblem()
		res, err := Racing(p, members()...)
		if err != nil {
			t.Fatal(err)
		}
		if verr := res.Solution.Validate(p); verr != nil {
			t.Fatal(verr)
		}
	}
}
