package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/gbt"
	"telamalloc/internal/mlpolicy"
	"telamalloc/internal/workload"
)

// quickOpts keeps harness tests fast: tiny sweeps, short deadlines.
func quickOpts() Options {
	return Options{
		Seed:           1,
		SolverDeadline: 2 * time.Second,
		MaxSteps:       30000,
		Configs:        8,
		Repeats:        1,
	}
}

func TestForEachRunsAll(t *testing.T) {
	hits := make([]bool, 100)
	forEach(100, 4, func(i int) { hits[i] = true })
	for i, h := range hits {
		if !h {
			t.Fatalf("index %d not run", i)
		}
	}
	forEach(3, 0, func(i int) {}) // workers < 1 must not deadlock
}

func TestTimeIt(t *testing.T) {
	calls := 0
	d := timeIt(3, func() { calls++ })
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if d < 0 {
		t.Errorf("negative duration %v", d)
	}
}

func TestMinRequiredMemoryBounds(t *testing.T) {
	p := workload.Random(3, 150)
	p.Memory = p.TotalBytes()
	min := minRequiredMemory(p, 30000)
	peak := buffers.Contention(p).Peak()
	if min < peak {
		t.Errorf("min %d below contention peak %d", min, peak)
	}
	if min > p.TotalBytes() {
		t.Errorf("min %d above total bytes", min)
	}
}

func TestAtRatio(t *testing.T) {
	p := &buffers.Problem{Memory: 100, Buffers: []buffers.Buffer{{Start: 0, End: 1, Size: 10}}}
	q := atRatio(p, 100, 110)
	if q.Memory != 110 {
		t.Errorf("Memory = %d, want 110", q.Memory)
	}
	if q := atRatio(p, 100, 50); q.Memory != 100 {
		t.Errorf("sub-base ratio not clamped: %d", q.Memory)
	}
}

func TestTable1Shape(t *testing.T) {
	opts := quickOpts()
	rows := Table1(opts)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Per-step cost must grow from non-overlapping to full-overlap (the
	// quadratic constraint effect, Table 1's point).
	nonOv, fullOv := rows[0], rows[3]
	if fullOv.PerStepMs <= nonOv.PerStepMs {
		t.Errorf("full-overlap per-step %.4f <= non-overlapping %.4f", fullOv.PerStepMs, nonOv.PerStepMs)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "full-overlap-1K") {
		t.Error("render missing benchmark name")
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(quickOpts())
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	for _, r := range rows {
		if r.MinMemoryRatio < 0.999 {
			t.Errorf("%s: ratio %.3f below 1.0 (heuristic beating the best-known optimum?)", r.Model, r.MinMemoryRatio)
		}
		if r.MinMemoryRatio > 3 {
			t.Errorf("%s: ratio %.2f implausibly high", r.Model, r.MinMemoryRatio)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "OpenPose") {
		t.Error("render missing model")
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3(quickOpts())
	if len(r.Series) < 2 {
		t.Fatalf("got %d series", len(r.Series))
	}
	// Best-fit must need at least as much memory as the solver series.
	bf := r.Series[0]
	last := r.Series[len(r.Series)-1]
	if last.Allocator == "solver (TelaMalloc)" && bf.Peak < last.Peak {
		t.Errorf("best-fit peak %d below solver peak %d", bf.Peak, last.Peak)
	}
	var buf bytes.Buffer
	PrintFig3(&buf, r)
	if !strings.Contains(buf.String(), "best-fit") {
		t.Error("render missing series")
	}
}

func TestFig14Shape(t *testing.T) {
	opts := quickOpts()
	opts.Configs = 12
	r := Fig14(opts)
	if len(r.Rows) != 5 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	var tmFailed int
	worst := 0
	for _, row := range r.Rows {
		if row.Strategy == "telamalloc" {
			tmFailed = row.Failed
		} else if row.Failed > worst {
			worst = row.Failed
		}
	}
	if tmFailed > worst {
		t.Errorf("telamalloc failed %d, worst single strategy %d — combined policy should not be the worst", tmFailed, worst)
	}
	var buf bytes.Buffer
	PrintFig14(&buf, r)
	if !strings.Contains(buf.String(), "lowest-position") {
		t.Error("render missing strategy")
	}
}

func TestFig18Shape(t *testing.T) {
	rows := Fig18(quickOpts())
	if len(rows) != 11 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 0.99 {
			t.Errorf("%s: TelaMalloc repacker made the program slower: %.3f", r.Model, r.Speedup)
		}
		if r.PackedTM < r.PackedBF {
			t.Errorf("%s: TelaMalloc packed fewer bytes (%d) than best-fit (%d)", r.Model, r.PackedTM, r.PackedBF)
		}
	}
	var buf bytes.Buffer
	PrintFig18(&buf, rows)
	if !strings.Contains(buf.String(), "Speedup") {
		t.Error("render missing header")
	}
}

func TestFig19Shape(t *testing.T) {
	r := Fig19(quickOpts())
	if r.Peak <= 0 || len(r.Profile) == 0 {
		t.Fatalf("empty profile: %+v", r)
	}
	var buf bytes.Buffer
	PrintFig19(&buf, r)
	if !strings.Contains(buf.String(), "OpenPose") {
		t.Error("render missing model name")
	}
}

func TestTimePrefix(t *testing.T) {
	p := &buffers.Problem{Memory: 10, Buffers: []buffers.Buffer{
		{Start: 0, End: 10, Size: 1},
		{Start: 40, End: 60, Size: 1},
		{Start: 90, End: 100, Size: 1},
	}}
	p.Normalize()
	half := timePrefix(p, 50)
	if len(half.Buffers) != 2 {
		t.Fatalf("got %d buffers, want 2", len(half.Buffers))
	}
	// The second buffer must be truncated at the cut.
	if half.Buffers[1].End > 50 {
		t.Errorf("buffer not truncated: %+v", half.Buffers[1])
	}
	full := timePrefix(p, 100)
	if len(full.Buffers) != 3 {
		t.Errorf("full prefix dropped buffers: %d", len(full.Buffers))
	}
}

func TestFig12QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 is slow")
	}
	opts := quickOpts()
	rows := Fig12(opts, false, nil)
	if len(rows) != 11 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.TelaMallocOK {
			t.Errorf("%s: TelaMalloc failed at 110%% memory", r.Model)
		}
	}
	var buf bytes.Buffer
	PrintFig12(&buf, rows, false)
	if !strings.Contains(buf.String(), "median") {
		t.Error("render missing summary")
	}
}

func TestAblationQuickShape(t *testing.T) {
	opts := quickOpts()
	opts.Configs = 10
	r := Ablation(opts)
	if len(r.Rows) != 7 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	var full AblationRow
	worstFailed := 0
	for _, row := range r.Rows {
		if row.Config == "full telamalloc" {
			full = row
		}
		if row.Failed > worstFailed {
			worstFailed = row.Failed
		}
	}
	if full.Config == "" {
		t.Fatal("full configuration missing")
	}
	// The full configuration must be at least as good as the worst ablated
	// variant (each mechanism exists because removing it hurts somewhere).
	if full.Failed > worstFailed {
		t.Errorf("full config failed %d, worse than the worst ablation %d", full.Failed, worstFailed)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, r)
	if !strings.Contains(buf.String(), "skyline placement") {
		t.Error("render missing variant")
	}
}

func TestLongTailQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("longtail needs a trained model")
	}
	// A constant high-score forest makes the chooser always act; the sweep
	// must complete and produce internally consistent counts.
	forest := &gbt.Forest{Base: 10, LearningRate: 0.1, NumFeatures: mlpolicy.NumFeatures}
	model := &TrainedModel{Forest: forest}
	opts := quickOpts()
	opts.Configs = 6
	r := LongTail(opts, model)
	if r.Configs != 6 {
		t.Fatalf("Configs = %d", r.Configs)
	}
	if r.Improved > r.HardInputs {
		t.Errorf("improved %d exceeds hard inputs %d", r.Improved, r.HardInputs)
	}
	if r.TimeoutsFixed > r.Improved {
		t.Errorf("timeouts fixed %d exceeds improved %d", r.TimeoutsFixed, r.Improved)
	}
	var buf bytes.Buffer
	PrintLongTail(&buf, r)
	if !strings.Contains(buf.String(), "hard inputs") {
		t.Error("render missing summary")
	}
}
