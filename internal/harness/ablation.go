package harness

import (
	"fmt"
	"io"

	"telamalloc/internal/core"
	"telamalloc/internal/stats"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

// AblationRow summarises one TelaMalloc configuration over the sweep.
type AblationRow struct {
	Config       string
	Failed       int
	GeomeanSteps float64
	MeanBacktrks float64
}

// AblationResult is the design-choice ablation outcome.
type AblationResult struct {
	Configs   int
	CommonSet int
	Rows      []AblationRow
}

// ablationConfigs enumerates the design choices §5 introduces one by one.
func ablationConfigs(maxSteps int64) []struct {
	name string
	cfg  core.Config
} {
	return []struct {
		name string
		cfg  core.Config
	}{
		{"full telamalloc", core.Config{MaxSteps: maxSteps}},
		{"skyline placement", core.Config{MaxSteps: maxSteps, Placement: core.SkylineTop}},
		{"no phases", core.Config{MaxSteps: maxSteps, DisablePhases: true}},
		{"no subproblem split", core.Config{MaxSteps: maxSteps, DisableSplit: true}},
		{"fixed backtracking", core.Config{MaxSteps: maxSteps, DisableConflictDriven: true}},
		{"no candidate promotion", core.Config{MaxSteps: maxSteps, DisablePromotion: true}},
		{"no stuck detection", core.Config{MaxSteps: maxSteps, StuckThreshold: -1}},
	}
}

// Ablation measures each §5 mechanism's contribution by disabling it on a
// sweep of tight random instances — the quantitative version of the paper's
// qualitative claims ("this strategy is necessary ...", "can help the
// search significantly").
func Ablation(opts Options) AblationResult {
	opts = opts.withDefaults()
	n := opts.Configs
	cfgs := ablationConfigs(opts.MaxSteps)
	type cell struct {
		steps    float64
		backtrks float64
		solved   bool
	}
	grid := make([][]cell, len(cfgs))
	for i := range grid {
		grid[i] = make([]cell, n)
	}
	forEach(n, opts.Workers, func(ci int) {
		ratio := 100
		if ci%2 == 1 {
			ratio = 105
		}
		p := workload.Random(opts.Seed+int64(ci/2), ratio)
		for fi, c := range cfgs {
			res := core.Solve(p, c.cfg)
			grid[fi][ci] = cell{
				steps:    float64(res.Stats.Steps),
				backtrks: float64(res.Stats.Backtracks()),
				solved:   res.Status == telamon.Solved,
			}
		}
	})
	out := AblationResult{Configs: n}
	common := make([]bool, n)
	for ci := 0; ci < n; ci++ {
		common[ci] = true
		for fi := range cfgs {
			if !grid[fi][ci].solved {
				common[ci] = false
				break
			}
		}
		if common[ci] {
			out.CommonSet++
		}
	}
	for fi, c := range cfgs {
		row := AblationRow{Config: c.name}
		var steps, bts []float64
		for ci := 0; ci < n; ci++ {
			if !grid[fi][ci].solved {
				row.Failed++
			} else if common[ci] {
				steps = append(steps, grid[fi][ci].steps)
				bts = append(bts, grid[fi][ci].backtrks)
			}
		}
		row.GeomeanSteps = stats.GeoMean(steps)
		row.MeanBacktrks = stats.Mean(bts)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// PrintAblation renders the design-choice ablation.
func PrintAblation(w io.Writer, r AblationResult) {
	fmt.Fprintf(w, "Ablation: contribution of each §5 mechanism over %d tight configurations\n", r.Configs)
	fmt.Fprintf(w, "%-24s %10s %16s %16s\n", "Configuration", "#Failing", "Geomean steps", "Mean backtracks")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %10d %16.1f %16.1f\n", row.Config, row.Failed, row.GeomeanSteps, row.MeanBacktrks)
	}
	fmt.Fprintf(w, "(aggregates over the %d configurations every variant solved)\n", r.CommonSet)
}
