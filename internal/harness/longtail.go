package harness

import (
	"fmt"
	"io"

	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/mlpolicy"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

// LongTailResult summarises the §7.3 experiment: how the learned
// backtracking policy changes outcomes on the hard tail of a large
// configuration sweep.
type LongTailResult struct {
	Configs int
	// HardInputs counts configurations where default TelaMalloc backtracked
	// more than HardThreshold times (the paper's >1,000 criterion).
	HardInputs    int
	HardThreshold int64
	// Improved counts hard inputs where ML reduced backtracks.
	Improved int
	// TimeoutsFixed counts inputs that failed by default but solve with ML.
	TimeoutsFixed int
	// BigWins counts hard inputs with a >= 10x backtrack reduction.
	BigWins int
	// Regressions counts inputs where ML failed although the default
	// succeeded, or increased backtracks >= 10x.
	Regressions int
}

// LongTail reproduces the §7.3 sweep on Options.Configs random inputs: run
// TelaMalloc with and without the trained backtracking model and compare
// backtrack counts. Backtrack counts are timing-independent, so the worker
// pool does not distort results.
func LongTail(opts Options, model *TrainedModel) LongTailResult {
	opts = opts.withDefaults()
	n := opts.Configs
	out := LongTailResult{Configs: n, HardThreshold: 1000}
	type rec struct {
		offBT, onBT int64
		offOK, onOK bool
	}
	recs := make([]rec, n)
	forEach(n, opts.Workers, func(i int) {
		// Even indices: memory set to the greedy heuristic's minimum — the
		// instance is *provably feasible* yet tight, the regime where the
		// paper's hard-but-fixable inputs live. Odd indices: slightly above
		// the contention peak (feasibility unknown), covering the rest of
		// the distribution.
		p := workload.Random(opts.Seed+int64(i/2), 101)
		if i%2 == 0 {
			_, greedyMin := heuristics.GreedyContentionUnbounded(p)
			p.Memory = greedyMin
		}
		// Both arms use the paper's strict candidate economics so the
		// comparison isolates the backtracking policy.
		off := core.Solve(p, core.Config{MaxSteps: opts.MaxSteps, DisableSplit: true, NoFallbackCandidates: true})
		ch := mlpolicy.NewChooser(model.Forest, p)
		on := core.Solve(p, core.Config{MaxSteps: opts.MaxSteps, DisableSplit: true, NoFallbackCandidates: true, Chooser: ch})
		recs[i] = rec{
			offBT: off.Stats.Backtracks(),
			onBT:  on.Stats.Backtracks(),
			offOK: off.Status == telamon.Solved,
			onOK:  on.Status == telamon.Solved,
		}
	})
	for _, r := range recs {
		hard := r.offBT > out.HardThreshold || !r.offOK
		if hard {
			out.HardInputs++
			if !r.offOK && r.onOK {
				out.TimeoutsFixed++
				out.Improved++
			} else if r.onOK && r.onBT < r.offBT {
				out.Improved++
				if r.onBT*10 <= r.offBT {
					out.BigWins++
				}
			}
		}
		if (r.offOK && !r.onOK) || (r.offOK && r.onOK && r.onBT >= 10*r.offBT && r.offBT > 0) {
			out.Regressions++
		}
	}
	return out
}

// PrintLongTail renders the long-tail summary.
func PrintLongTail(w io.Writer, r LongTailResult) {
	fmt.Fprintf(w, "Long tail (§7.3): ML backtracking over %d configurations\n", r.Configs)
	fmt.Fprintf(w, "hard inputs (> %d backtracks or unsolved): %d\n", r.HardThreshold, r.HardInputs)
	fmt.Fprintf(w, "  improved by ML:                 %d\n", r.Improved)
	fmt.Fprintf(w, "  previously failing, now solved: %d\n", r.TimeoutsFixed)
	fmt.Fprintf(w, "  >=10x fewer backtracks:         %d\n", r.BigWins)
	fmt.Fprintf(w, "regressions (failed or >=10x more backtracks): %d\n", r.Regressions)
}
