package harness

import (
	"fmt"
	"io"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/ilp"
	"telamalloc/internal/mlpolicy"
	"telamalloc/internal/stats"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 1: microbenchmarks
// ---------------------------------------------------------------------------

// Table1Row is one microbenchmark measurement.
type Table1Row struct {
	Benchmark string
	TotalMs   float64
	PerStepMs float64
	Steps     int64
}

// Table1 reproduces the paper's microbenchmark table: TelaMalloc on
// non-overlapping and fully overlapping inputs that need no backtracking.
func Table1(opts Options) []Table1Row {
	opts = opts.withDefaults()
	cases := []struct {
		name string
		gen  func() *buffers.Problem
	}{
		{"non-overlapping-1K", func() *buffers.Problem { return workload.NonOverlapping(1000, opts.Seed) }},
		{"non-overlapping-10K", func() *buffers.Problem { return workload.NonOverlapping(10000, opts.Seed) }},
		{"full-overlap-100", func() *buffers.Problem { return workload.FullOverlap(100, opts.Seed) }},
		{"full-overlap-1K", func() *buffers.Problem { return workload.FullOverlap(1000, opts.Seed) }},
	}
	var rows []Table1Row
	for _, c := range cases {
		p := c.gen()
		var res core.Result
		d := timeIt(opts.Repeats, func() {
			res = core.Solve(p, core.Config{})
		})
		steps := res.Stats.Steps
		if steps == 0 {
			steps = 1
		}
		rows = append(rows, Table1Row{
			Benchmark: c.name,
			TotalMs:   float64(d.Microseconds()) / 1e3,
			PerStepMs: float64(d.Microseconds()) / 1e3 / float64(steps),
			Steps:     steps,
		})
	}
	return rows
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Microbenchmark results\n")
	fmt.Fprintf(w, "%-22s %14s %14s %10s\n", "Benchmark", "Total (ms)", "Time/Step (ms)", "Steps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %14.2f %14.4f %10d\n", r.Benchmark, r.TotalMs, r.PerStepMs, r.Steps)
	}
}

// ---------------------------------------------------------------------------
// Table 2: baseline heuristic quality and speed
// ---------------------------------------------------------------------------

// Table2Row reports the greedy heuristic's minimum required memory relative
// to the best-known optimum, plus its running time.
type Table2Row struct {
	Model string
	// MinMemoryRatio is heuristic minimum / best-known minimum (>= 1).
	MinMemoryRatio float64
	TimeMs         float64
}

// Table2 reproduces the heuristic-quality table over the benchmark models.
func Table2(opts Options) []Table2Row {
	opts = opts.withDefaults()
	models := benchmarkModels()
	rows := make([]Table2Row, len(models))
	forEach(len(models), opts.Workers, func(i int) {
		m := models[i]
		p := m.Generate(opts.Seed)
		p.Memory = p.TotalBytes() // structural upper bound for the searches below
		heurMin := heuristics.MinMemory(heuristics.GreedyContentionUnbounded, p)
		best := minRequiredMemory(p, opts.MaxSteps)
		if heurMin < best {
			best = heurMin
		}
		d := timeIt(opts.Repeats, func() {
			heuristics.GreedyContentionUnbounded(p)
		})
		rows[i] = Table2Row{
			Model:          m.Name,
			MinMemoryRatio: float64(heurMin) / float64(best),
			TimeMs:         float64(d.Microseconds()) / 1e3,
		}
	})
	return rows
}

// PrintTable2 renders Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: Heuristic minimum required memory (vs best-known optimum) and runtime\n")
	fmt.Fprintf(w, "%-20s %22s %12s\n", "Benchmark", "Min Required Memory", "Time (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %21.2fx %12.2f\n", r.Model, r.MinMemoryRatio, r.TimeMs)
	}
}

// benchmarkModels returns the 11 models of Figures 12/13 and Table 2
// (everything except SRGAN, which §7.3 uses separately).
func benchmarkModels() []workload.Model {
	var out []workload.Model
	for _, m := range workload.Models {
		if m.Name != "SRGAN" {
			out = append(out, m)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 3: live memory under three allocators
// ---------------------------------------------------------------------------

// Fig3Series is one allocator's usage-over-time profile.
type Fig3Series struct {
	Allocator string
	Peak      int64
	Steps     []buffers.ContentionStep
}

// Fig3Result holds the three series plus the reference memory limit.
type Fig3Result struct {
	Model       string
	MemoryLimit int64
	Series      []Fig3Series
}

// Fig3 compares live memory under best-fit, the greedy heuristic and the
// solver-based approach (TelaMalloc at the best-known minimum memory).
func Fig3(opts Options) Fig3Result {
	opts = opts.withDefaults()
	m, _ := workload.ByName("Image Model 1")
	p := m.Generate(opts.Seed)
	p.Memory = p.TotalBytes()
	best := minRequiredMemory(p, opts.MaxSteps)
	out := Fig3Result{Model: m.Name, MemoryLimit: best * 105 / 100}

	bfSol, bfPeak := heuristics.BestFitUnbounded(p)
	out.Series = append(out.Series, Fig3Series{"best-fit (BFC)", bfPeak, heuristics.UsageProfile(p, bfSol)})

	grSol, grPeak := heuristics.GreedyContentionUnbounded(p)
	out.Series = append(out.Series, Fig3Series{"greedy heuristic", grPeak, heuristics.UsageProfile(p, grSol)})

	q := p.Clone()
	q.Memory = best
	res := core.Solve(q, core.Config{MaxSteps: opts.MaxSteps})
	if res.Status == telamon.Solved {
		out.Series = append(out.Series, Fig3Series{"solver (TelaMalloc)", res.Solution.PeakUsage(q), heuristics.UsageProfile(q, res.Solution)})
	}
	return out
}

// PrintFig3 renders the peaks and a coarse per-series profile.
func PrintFig3(w io.Writer, r Fig3Result) {
	fmt.Fprintf(w, "Figure 3: Live memory by allocator on %s (hypothetical limit %d)\n", r.Model, r.MemoryLimit)
	for _, s := range r.Series {
		over := ""
		if s.Peak > r.MemoryLimit {
			over = "  <-- exceeds limit"
		}
		fmt.Fprintf(w, "%-22s peak %12d%s\n", s.Allocator, s.Peak, over)
	}
	fmt.Fprintf(w, "profile samples (time: usage per series):\n")
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %-20s", s.Allocator)
		step := len(s.Steps)/8 + 1
		for i := 0; i < len(s.Steps); i += step {
			fmt.Fprintf(w, " %d:%d", s.Steps[i].Start, s.Steps[i].Contention)
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Figures 12/13: allocation time, TelaMalloc vs baselines
// ---------------------------------------------------------------------------

// Fig12Row is one model's allocation-time comparison.
type Fig12Row struct {
	Model       string
	Buffers     int
	HeuristicMs float64
	// HeuristicOK reports whether the greedy heuristic solved the instance
	// at the benchmark memory ratio.
	HeuristicOK  bool
	TelaMallocMs float64
	TelaMallocOK bool
	ILPMs        float64
	ILPOK        bool
	// CPMs is the pure CP-encoding baseline (Figure 13 only; zero when not
	// measured).
	CPMs float64
	CPOK bool
	// MLMs is TelaMalloc with the learned backtracking policy (Figure 13
	// only; zero when no model was supplied).
	MLMs float64
	MLOK bool
	// Relative is ILP time / TelaMalloc time.
	Relative float64
	// Subproblems is the number of independent components TelaMalloc
	// split the instance into (its parallel solve dispatches them to a
	// worker pool).
	Subproblems int
}

// Fig12 measures allocation time on the benchmark models at the paper's
// 110%-of-minimum memory setting. withCP additionally measures the pure
// CP-encoding baseline and, when model is non-nil, ML-guided TelaMalloc
// (the Figure 13 variant).
func Fig12(opts Options, withCP bool, model *TrainedModel) []Fig12Row {
	opts = opts.withDefaults()
	models := benchmarkModels()
	rows := make([]Fig12Row, len(models))
	forEach(len(models), opts.Workers, func(i int) {
		m := models[i]
		base := m.Generate(opts.Seed)
		base.Memory = base.TotalBytes()
		minMem := minRequiredMemory(base, opts.MaxSteps)
		p := atRatio(base, minMem, opts.MemoryRatioPct)
		row := Fig12Row{Model: m.Name, Buffers: len(p.Buffers)}

		var hs *buffers.Solution
		var herr error
		d := timeIt(opts.Repeats, func() {
			hs, herr = heuristics.GreedyContention{}.Allocate(p)
		})
		_ = hs
		row.HeuristicMs = ms(d)
		row.HeuristicOK = herr == nil

		var tmRes core.Result
		d = timeIt(opts.Repeats, func() {
			tmRes = core.Solve(p, core.Config{
				MaxSteps:    opts.MaxSteps,
				Deadline:    time.Now().Add(opts.SolverDeadline),
				Parallelism: opts.Parallelism,
			})
		})
		row.TelaMallocMs = ms(d)
		row.TelaMallocOK = tmRes.Status == telamon.Solved
		row.Subproblems = tmRes.Subproblems

		var ilpRes ilp.Result
		d = timeIt(1, func() { // exact solver: one run, deadline-capped
			ilpRes = ilp.Solve(p, nil, opts.ilpOptions(ilp.BranchMostConstraining))
		})
		row.ILPMs = ms(d)
		row.ILPOK = ilpRes.Status == ilp.Solved

		if withCP {
			var cpRes ilp.Result
			d = timeIt(1, func() {
				cpRes = ilp.Solve(p, nil, opts.ilpOptions(ilp.BranchFirstUnresolved))
			})
			row.CPMs = ms(d)
			row.CPOK = cpRes.Status == ilp.Solved
		}
		if withCP && model != nil {
			var mlRes core.Result
			d = timeIt(opts.Repeats, func() {
				ch := mlpolicy.NewChooser(model.Forest, p)
				mlRes = core.Solve(p, core.Config{MaxSteps: opts.MaxSteps, Chooser: ch, DisableSplit: true})
			})
			row.MLMs = ms(d)
			row.MLOK = mlRes.Status == telamon.Solved
		}
		if row.TelaMallocMs > 0 {
			row.Relative = row.ILPMs / row.TelaMallocMs
		}
		rows[i] = row
	})
	return rows
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// PrintFig12 renders the allocation-time comparison.
func PrintFig12(w io.Writer, rows []Fig12Row, withCP bool) {
	title := "Figure 12"
	if withCP {
		title = "Figure 13 (workstation, with CP-SAT baseline)"
	}
	fmt.Fprintf(w, "%s: Allocation time per model (110%% of min memory)\n", title)
	fmt.Fprintf(w, "%-20s %6s %14s %14s %14s", "Model", "Bufs", "Heuristic(ms)", "TelaMalloc(ms)", "ILP(ms)")
	if withCP {
		fmt.Fprintf(w, " %14s %14s", "CP-SAT(ms)", "TM+ML(ms)")
	}
	fmt.Fprintf(w, " %10s\n", "ILP/TM")
	var rels []float64
	for _, r := range rows {
		h := fmt.Sprintf("%.1f", r.HeuristicMs)
		if !r.HeuristicOK {
			h += "*"
		}
		tm := fmt.Sprintf("%.1f", r.TelaMallocMs)
		if !r.TelaMallocOK {
			tm += "*"
		}
		il := fmt.Sprintf("%.1f", r.ILPMs)
		if !r.ILPOK {
			il += "*"
		}
		fmt.Fprintf(w, "%-20s %6d %14s %14s %14s", r.Model, r.Buffers, h, tm, il)
		if withCP {
			cp := fmt.Sprintf("%.1f", r.CPMs)
			if !r.CPOK {
				cp += "*"
			}
			ml := "-"
			if r.MLMs > 0 {
				ml = fmt.Sprintf("%.1f", r.MLMs)
				if !r.MLOK {
					ml += "*"
				}
			}
			fmt.Fprintf(w, " %14s %14s", cp, ml)
		}
		fmt.Fprintf(w, " %9.1fx\n", r.Relative)
		if r.TelaMallocOK {
			rels = append(rels, r.Relative)
		}
	}
	fmt.Fprintf(w, "(* = failed / hit deadline at this memory ratio)\n")
	fmt.Fprintf(w, "median ILP/TelaMalloc speedup: %.1fx\n", stats.Median(rels))
}
