// Package harness drives the paper's evaluation: it regenerates every table
// and figure of §7 from the reimplemented allocators and synthetic workload
// proxies. Each experiment returns a structured result with a text renderer
// so the cmd/experiments binary and the benchmark suite share one
// implementation.
//
// The paper scales its largest sweep (1,192 configurations) with a
// distributed dataflow pipeline; this package substitutes a local goroutine
// worker pool — legitimate because, as the paper notes for the same reason,
// step and backtrack counts are timing-independent.
package harness

import (
	"runtime"
	"sync"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/ilp"
	"telamalloc/internal/telamon"
)

// Options tunes experiment scale so the same code serves quick benchmark
// runs and full paper-scale regenerations.
type Options struct {
	// Seed drives all workload generation.
	Seed int64
	// SolverDeadline caps each exact-solver (ILP / CP) run; zero selects
	// 20s. TelaMalloc gets the same deadline for fairness.
	SolverDeadline time.Duration
	// MaxSteps caps search steps for step-counted experiments (default
	// 500,000 — the paper's Figure 14 cap).
	MaxSteps int64
	// Configs is the number of input configurations for the large sweeps
	// (default 1,192 as in the paper; reduce for quick runs).
	Configs int
	// Workers bounds the worker pool (default NumCPU).
	Workers int
	// Parallelism is forwarded to core.Config.Parallelism for the timed
	// TelaMalloc runs: how many independent subproblems each solve may
	// search concurrently (0 = GOMAXPROCS, 1 = sequential). Results are
	// identical either way; only wall-clock timings change.
	Parallelism int
	// MemoryRatioPct is the memory given to each model relative to its
	// minimum required memory (default 110, the paper's setting).
	MemoryRatioPct int
	// Repeats is the number of timed repetitions per measurement
	// (default 3).
	Repeats int
}

func (o Options) withDefaults() Options {
	if o.SolverDeadline == 0 {
		o.SolverDeadline = 20 * time.Second
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 500000
	}
	if o.Configs == 0 {
		o.Configs = 1192
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.MemoryRatioPct == 0 {
		o.MemoryRatioPct = 110
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	return o
}

// forEach runs fn(i) for i in [0, n) on a bounded worker pool.
func forEach(n, workers int, fn func(i int)) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// timeIt returns the best-of-k wall time of fn, mirroring the paper's
// "take the 10 best runs" protocol for noisy timing.
func timeIt(repeats int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// minRequiredMemory estimates the minimum memory any allocator needs for p:
// a binary search over TelaMalloc feasibility between the contention peak
// (unconditional lower bound) and the greedy heuristic's peak (a known
// feasible upper bound). This plays the role of the paper's ILP-computed
// optimum; on instances small enough for the exact solver the two agree
// (tested), and on large ones the exact solver is intractable for us just
// as it sometimes was for the authors.
func minRequiredMemory(p *buffers.Problem, maxSteps int64) int64 {
	_, hi := heuristics.GreedyContentionUnbounded(p)
	lo := buffers.Contention(p).Peak()
	if lo >= hi {
		return hi
	}
	feasible := func(mem int64) bool {
		q := p.Clone()
		q.Memory = mem
		// Probes run sequentially: the binary search itself is already
		// inside the harness worker pool, and sequential solves keep the
		// feasibility verdicts independent of GOMAXPROCS.
		res := core.Solve(q, core.Config{MaxSteps: maxSteps, Parallelism: 1})
		return res.Status == telamon.Solved
	}
	best := hi
	for lo < best {
		mid := lo + (best-lo)/2
		if feasible(mid) {
			best = mid
		} else {
			lo = mid + 1
		}
	}
	return best
}

// atRatio clones p with memory set to pct percent of the given base.
func atRatio(p *buffers.Problem, base int64, pct int) *buffers.Problem {
	q := p.Clone()
	q.Memory = base * int64(pct) / 100
	if q.Memory < base {
		q.Memory = base
	}
	return q
}

// ilpDeadlineOptions builds exact-solver options from the harness options.
func (o Options) ilpOptions(rule ilp.BranchRule) ilp.Options {
	return ilp.Options{
		Deadline: time.Now().Add(o.SolverDeadline),
		Rule:     rule,
	}
}
