package harness

import (
	"fmt"
	"io"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/gbt"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/ilp"
	"telamalloc/internal/mlpolicy"
	"telamalloc/internal/stats"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
	"telamalloc/internal/xlasim"
)

// ---------------------------------------------------------------------------
// Figure 14: block-selection strategy ablation over many configurations
// ---------------------------------------------------------------------------

// Fig14Row summarises one strategy over the configuration sweep.
type Fig14Row struct {
	Strategy string
	Failed   int
	// GeomeanSteps is over configurations every strategy solved (so the
	// step comparison is apples-to-apples).
	GeomeanSteps float64
}

// Fig14Result is the sweep outcome.
type Fig14Result struct {
	Configs   int
	CommonSet int
	Rows      []Fig14Row
	MaxSteps  int64
}

// Fig14 runs the §7.2 ablation: TelaMalloc's combined policy versus the
// four single block-selection strategies over a large set of input
// configurations (the paper uses 596 inputs × 2 memory sizes = 1,192;
// Options.Configs scales this). Experiments fail after Options.MaxSteps.
func Fig14(opts Options) Fig14Result {
	opts = opts.withDefaults()
	nCfg := opts.Configs
	// Half the instances at a tight ratio, half slightly looser — the
	// paper's "different memory sizes".
	type cfg struct {
		seed  int64
		ratio int
	}
	cfgs := make([]cfg, nCfg)
	for i := range cfgs {
		ratio := 102
		if i%2 == 1 {
			ratio = 112
		}
		cfgs[i] = cfg{seed: opts.Seed + int64(i/2), ratio: ratio}
	}
	strategies := []string{"telamalloc"}
	for _, s := range core.Strategies {
		strategies = append(strategies, s.String())
	}
	steps := make([][]float64, len(strategies)) // per strategy, per config; -1 = failed
	for i := range steps {
		steps[i] = make([]float64, nCfg)
	}
	forEach(nCfg, opts.Workers, func(ci int) {
		p := workload.Random(cfgs[ci].seed, cfgs[ci].ratio)
		for si, name := range strategies {
			var res telamon.Result
			if name == "telamalloc" {
				r := core.Solve(p, core.Config{MaxSteps: opts.MaxSteps})
				res = telamon.Result{Status: r.Status, Stats: r.Stats}
			} else {
				res = core.SolveWithStrategy(p, core.Strategies[si-1], opts.MaxSteps)
			}
			if res.Status == telamon.Solved {
				steps[si][ci] = float64(res.Stats.Steps)
			} else {
				steps[si][ci] = -1
			}
		}
	})
	out := Fig14Result{Configs: nCfg, MaxSteps: opts.MaxSteps}
	// Common set: configurations all strategies solved.
	common := make([]bool, nCfg)
	for ci := 0; ci < nCfg; ci++ {
		common[ci] = true
		for si := range strategies {
			if steps[si][ci] < 0 {
				common[ci] = false
				break
			}
		}
		if common[ci] {
			out.CommonSet++
		}
	}
	for si, name := range strategies {
		row := Fig14Row{Strategy: name}
		var succ []float64
		for ci := 0; ci < nCfg; ci++ {
			if steps[si][ci] < 0 {
				row.Failed++
			} else if common[ci] {
				succ = append(succ, steps[si][ci])
			}
		}
		row.GeomeanSteps = stats.GeoMean(succ)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// PrintFig14 renders the ablation summary.
func PrintFig14(w io.Writer, r Fig14Result) {
	fmt.Fprintf(w, "Figure 14: Block selection strategies over %d configurations (cap %d steps)\n", r.Configs, r.MaxSteps)
	fmt.Fprintf(w, "%-18s %10s %18s\n", "Strategy", "#Failing", "Geomean steps")
	var tmSteps float64
	for _, row := range r.Rows {
		if row.Strategy == "telamalloc" {
			tmSteps = row.GeomeanSteps
		}
	}
	for _, row := range r.Rows {
		rel := ""
		if row.Strategy != "telamalloc" && tmSteps > 0 && row.GeomeanSteps > 0 {
			rel = fmt.Sprintf("  (%.2fx vs telamalloc)", row.GeomeanSteps/tmSteps)
		}
		fmt.Fprintf(w, "%-18s %10d %18.1f%s\n", row.Strategy, row.Failed, row.GeomeanSteps, rel)
	}
	fmt.Fprintf(w, "(geomean over the %d configurations solved by every strategy)\n", r.CommonSet)
}

// ---------------------------------------------------------------------------
// ML model training shared by Figures 13, 15, 16, 17 and the long tail
// ---------------------------------------------------------------------------

// TrainedModel bundles the trained forest with its training set (the
// feature-importance figure needs held-back data).
type TrainedModel struct {
	Forest  *gbt.Forest
	Train   gbt.Dataset
	Eval    gbt.Dataset
	Samples int
}

// TrainBacktrackModel collects imitation-learning data from the benchmark
// models at several memory ratios (§6.5) and trains the paper's
// 100-tree forest. The oracle is budgeted per probe. Because samples only
// arise from searches that both backtrack *and* eventually solve, the
// collection adaptively adds random tight instances until enough samples
// exist.
func TrainBacktrackModel(opts Options) (*TrainedModel, error) {
	opts = opts.withDefaults()
	var problems []*buffers.Problem
	for _, m := range benchmarkModels() {
		p := m.Generate(opts.Seed)
		p.Memory = p.TotalBytes()
		minMem := minRequiredMemory(p, opts.MaxSteps/5)
		p.Memory = minMem
		problems = append(problems, p)
	}
	oracle := ilp.Options{MaxSteps: 20000}
	// Labelled samples require searches that backtrack AND solve; exactly-
	// minimum memory often fails, generous memory rarely backtracks. The
	// 100-103% band hits the productive middle (the paper likewise varies
	// maximum memory between runs, §6.5).
	ratios := []int{100, 101, 103}
	ds := mlpolicy.CollectDataset(problems, ratios, opts.Seed, opts.MaxSteps, oracle)
	// Top up with random tight instances until the dataset is usable.
	const wantSamples = 400
	for batch := int64(0); batch < 12 && len(ds.X) < wantSamples; batch++ {
		var extra []*buffers.Problem
		for i := int64(0); i < 8; i++ {
			extra = append(extra, workload.Random(opts.Seed+1000+batch*8+i, 101))
		}
		part := mlpolicy.CollectDataset(extra, ratios, opts.Seed+batch, opts.MaxSteps, oracle)
		ds.X = append(ds.X, part.X...)
		ds.Y = append(ds.Y, part.Y...)
	}
	if len(ds.X) < 8 {
		return nil, fmt.Errorf("harness: only %d training samples collected", len(ds.X))
	}
	// Hold out every 5th sample for evaluation.
	var tm TrainedModel
	for i := range ds.X {
		if i%5 == 0 {
			tm.Eval.X = append(tm.Eval.X, ds.X[i])
			tm.Eval.Y = append(tm.Eval.Y, ds.Y[i])
		} else {
			tm.Train.X = append(tm.Train.X, ds.X[i])
			tm.Train.Y = append(tm.Train.Y, ds.Y[i])
		}
	}
	forest, err := mlpolicy.TrainModel(tm.Train, opts.Seed)
	if err != nil {
		return nil, err
	}
	tm.Forest = forest
	tm.Samples = len(ds.X)
	return &tm, nil
}

// ---------------------------------------------------------------------------
// Figure 15: effect of ML on backtracks (SRGAN portions)
// ---------------------------------------------------------------------------

// Fig15Row compares backtracks with and without the learned policy on one
// portion of the long-tail model.
type Fig15Row struct {
	Portion       string
	BacktracksOff int64
	BacktracksOn  int64
	SolvedOff     bool
	SolvedOn      bool
}

// Fig15 slices the SRGAN proxy into growing prefixes (the "different
// portions" of the paper's Figure 15) and measures backtracks with and
// without the learned backtracking policy.
func Fig15(opts Options, model *TrainedModel) []Fig15Row {
	opts = opts.withDefaults()
	full := workload.GenSRGAN(opts.Seed)
	full.Memory = full.TotalBytes()
	var rows []Fig15Row
	fractions := []struct {
		name string
		pct  int
	}{{"first-quarter", 25}, {"first-half", 50}, {"three-quarters", 75}, {"full-model", 100}}
	for _, f := range fractions {
		p := timePrefix(full, f.pct)
		// Each portion runs at exactly its own best-known minimum memory —
		// the regime where backtracking dominates and the learned policy
		// can make a difference.
		p.Memory = p.TotalBytes()
		p.Memory = minRequiredMemory(p, opts.MaxSteps/5)
		off := core.Solve(p, core.Config{MaxSteps: opts.MaxSteps, DisableSplit: true, NoFallbackCandidates: true})
		ch := mlpolicy.NewChooser(model.Forest, p)
		on := core.Solve(p, core.Config{MaxSteps: opts.MaxSteps, DisableSplit: true, NoFallbackCandidates: true, Chooser: ch})
		rows = append(rows, Fig15Row{
			Portion:       f.name,
			BacktracksOff: off.Stats.Backtracks(),
			BacktracksOn:  on.Stats.Backtracks(),
			SolvedOff:     off.Status == telamon.Solved,
			SolvedOn:      on.Status == telamon.Solved,
		})
	}
	return rows
}

// timePrefix keeps the buffers whose live ranges start within the first
// pct percent of the time horizon.
func timePrefix(p *buffers.Problem, pct int) *buffers.Problem {
	lo, hi := p.TimeHorizon()
	cut := lo + (hi-lo)*int64(pct)/100
	q := &buffers.Problem{Name: fmt.Sprintf("%s[0:%d%%]", p.Name, pct), Memory: p.Memory}
	for _, b := range p.Buffers {
		if b.Start < cut {
			if b.End > cut {
				b.End = cut
			}
			if b.End > b.Start {
				q.Buffers = append(q.Buffers, b)
			}
		}
	}
	q.Normalize()
	return q
}

// PrintFig15 renders the ML-backtracking comparison.
func PrintFig15(w io.Writer, rows []Fig15Row) {
	fmt.Fprintf(w, "Figure 15: Effect of ML on backtracks (SRGAN portions)\n")
	fmt.Fprintf(w, "%-16s %16s %16s\n", "Portion", "default", "with ML")
	for _, r := range rows {
		off := fmt.Sprintf("%d", r.BacktracksOff)
		if !r.SolvedOff {
			off += "*"
		}
		on := fmt.Sprintf("%d", r.BacktracksOn)
		if !r.SolvedOn {
			on += "*"
		}
		fmt.Fprintf(w, "%-16s %16s %16s\n", r.Portion, off, on)
	}
	fmt.Fprintf(w, "(* = not solved within the step budget)\n")
}

// ---------------------------------------------------------------------------
// Figure 16: learned model inference time
// ---------------------------------------------------------------------------

// Fig16Row is the batched-inference time for one candidate count.
type Fig16Row struct {
	Candidates  int
	TotalMicros float64
	PerCandUs   float64
}

// Fig16 measures PredictBatch latency as a function of candidate count.
func Fig16(opts Options, model *TrainedModel) []Fig16Row {
	opts = opts.withDefaults()
	var rows []Fig16Row
	for _, n := range []int{1, 2, 5, 10, 20, 30, 50} {
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = make([]float64, mlpolicy.NumFeatures)
			for j := range xs[i] {
				xs[i][j] = float64((i*7+j*13)%97) / 97
			}
		}
		out := make([]float64, n)
		const iters = 2000
		d := timeIt(opts.Repeats, func() {
			for k := 0; k < iters; k++ {
				model.Forest.PredictBatch(xs, out)
			}
		})
		total := float64(d.Nanoseconds()) / 1e3 / iters
		rows = append(rows, Fig16Row{Candidates: n, TotalMicros: total, PerCandUs: total / float64(n)})
	}
	return rows
}

// PrintFig16 renders inference timing.
func PrintFig16(w io.Writer, rows []Fig16Row) {
	fmt.Fprintf(w, "Figure 16: Learned model inference time\n")
	fmt.Fprintf(w, "%12s %14s %16s\n", "#Candidates", "Batch (us)", "Per-cand (us)")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d %14.2f %16.3f\n", r.Candidates, r.TotalMicros, r.PerCandUs)
	}
}

// ---------------------------------------------------------------------------
// Figure 17: feature importance
// ---------------------------------------------------------------------------

// Fig17Row is one feature's permutation importance.
type Fig17Row struct {
	Feature    string
	Importance float64
}

// Fig17 computes the mean RMSE increase per permuted feature.
func Fig17(opts Options, model *TrainedModel) []Fig17Row {
	opts = opts.withDefaults()
	eval := model.Eval
	if len(eval.X) == 0 {
		eval = model.Train
	}
	imp := gbt.PermutationImportance(model.Forest, eval, opts.Seed)
	var rows []Fig17Row
	for i, v := range imp {
		rows = append(rows, Fig17Row{Feature: mlpolicy.FeatureNames[i], Importance: v})
	}
	return rows
}

// PrintFig17 renders feature importances.
func PrintFig17(w io.Writer, rows []Fig17Row) {
	fmt.Fprintf(w, "Figure 17: Feature importance (mean RMSE increase)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10.4f\n", r.Feature, r.Importance)
	}
}

// ---------------------------------------------------------------------------
// Figure 18: TPUv4 program speedup via better repacking
// ---------------------------------------------------------------------------

// Fig18Row is one model's program speedup.
type Fig18Row struct {
	Model       string
	Speedup     float64
	PackedTM    int64
	PackedBF    int64
	RepackCalls int
}

// Fig18 runs the XLA repacking simulation: TelaMalloc as the repacker
// versus the best-fit baseline, reporting modeled program speedup.
func Fig18(opts Options) []Fig18Row {
	opts = opts.withDefaults()
	models := benchmarkModels()
	rows := make([]Fig18Row, len(models))
	forEach(len(models), opts.Workers, func(i int) {
		m := models[i]
		// Mem-boundedness varies per model, muting some speedups as in the
		// paper ("not all of the ML models that use XLA are memory-bound").
		memBound := []int{85, 40, 70, 25, 90, 60, 35, 75, 50, 80, 65}[i%11]
		prog := xlasim.FromWorkload(m, opts.Seed, 100, memBound)
		tm := core.Allocator{Config: core.Config{MaxSteps: opts.MaxSteps / 5, Deadline: time.Now().Add(opts.SolverDeadline)}}
		bf := heuristics.BestFit{}
		at := xlasim.Assign(prog, tm)
		ab := xlasim.Assign(prog, bf)
		rows[i] = Fig18Row{
			Model:       m.Name,
			Speedup:     prog.ExecTime(ab) / prog.ExecTime(at),
			PackedTM:    at.PackedBytes,
			PackedBF:    ab.PackedBytes,
			RepackCalls: at.RepackCalls,
		}
	})
	return rows
}

// PrintFig18 renders the program-speedup comparison.
func PrintFig18(w io.Writer, rows []Fig18Row) {
	fmt.Fprintf(w, "Figure 18: Program speedup with TelaMalloc repacker vs best-fit (XLA simulation)\n")
	fmt.Fprintf(w, "%-20s %10s %14s %14s %8s\n", "Model", "Speedup", "TM bytes", "BF bytes", "Repacks")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %9.2f%% %14d %14d %8d\n", r.Model, (r.Speedup-1)*100, r.PackedTM, r.PackedBF, r.RepackCalls)
	}
}

// ---------------------------------------------------------------------------
// Figure 19: OpenPose contention profile
// ---------------------------------------------------------------------------

// Fig19Result is the contention profile of the OpenPose proxy.
type Fig19Result struct {
	Model   string
	Peak    int64
	Profile []buffers.ContentionStep
}

// Fig19 produces the workload-analysis profile of §8.1.
func Fig19(opts Options) Fig19Result {
	opts = opts.withDefaults()
	p := workload.GenOpenPose(opts.Seed)
	prof := buffers.Contention(p)
	return Fig19Result{Model: p.Name, Peak: prof.Peak(), Profile: prof.Steps}
}

// PrintFig19 renders the profile as an ASCII sparkline plus raw samples.
func PrintFig19(w io.Writer, r Fig19Result) {
	fmt.Fprintf(w, "Figure 19: Memory allocation problem of %s (peak %d bytes)\n", r.Model, r.Peak)
	ramp := []byte(" .:-=+*#%@")
	var line []byte
	for _, s := range r.Profile {
		lvl := int(s.Contention * int64(len(ramp)-1) / r.Peak)
		for t := s.Start; t < s.End; t++ {
			line = append(line, ramp[lvl])
		}
	}
	const width = 100
	for off := 0; off < len(line); off += width {
		end := off + width
		if end > len(line) {
			end = len(line)
		}
		fmt.Fprintf(w, "t=%4d |%s|\n", off, line[off:end])
	}
}
