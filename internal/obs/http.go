package obs

import (
	"net/http"
	"strings"
)

// Handler serves the registry in the Prometheus text exposition format
// (text/plain; version=0.0.4), suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}
