package obs

import (
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registering the same counter identity must return the same instance")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value %d, want 4", got)
	}

	var nilC *Counter
	nilC.Inc() // nil-safety: must not panic
	var nilG *Gauge
	nilG.Set(1)
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
}

func TestCounterLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("labelled_total", "h", Label{"stage", "greedy"})
	b := r.Counter("labelled_total", "h", Label{"stage", "search"})
	if a == b {
		t.Fatal("different labels must be different series")
	}
	a.Add(2)
	b.Add(3)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`labelled_total{stage="greedy"} 2`,
		`labelled_total{stage="search"} 3`,
		"# TYPE labelled_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds must panic")
		}
	}()
	r.Gauge("conflict_total", "h")
}

func TestFuncMetricsReadAtScrape(t *testing.T) {
	r := NewRegistry()
	v := int64(1)
	r.CounterFunc("func_total", "h", func() int64 { return v })
	r.GaugeFunc("func_gauge", "h", func() int64 { return v * 10 })
	read := func() string {
		var sb strings.Builder
		r.WritePrometheus(&sb)
		return sb.String()
	}
	if out := read(); !strings.Contains(out, "func_total 1") || !strings.Contains(out, "func_gauge 10") {
		t.Fatalf("first scrape wrong:\n%s", out)
	}
	v = 42
	if out := read(); !strings.Contains(out, "func_total 42") || !strings.Contains(out, "func_gauge 420") {
		t.Fatalf("func metrics must re-read at scrape time:\n%s", out)
	}
}

func TestHistogramQuantilesAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h")
	// 1000 samples spread uniformly over (0, 1]: quantiles should land near
	// their rank within the 2× bucket error bound.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	if got, want := h.Sum(), 500.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum %g, want %g", got, want)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.5}, {0.90, 0.9}, {0.99, 0.99},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%.2f = %g, want within 2x of %g", tc.q, got, tc.want)
		}
	}
	// Degenerate inputs must not corrupt the distribution.
	h.Observe(math.NaN())
	h.Observe(-1)
	if h.Count() != 1000 {
		t.Fatalf("NaN/negative observations must be dropped, count %d", h.Count())
	}
}

func TestHistogramBucketIndexCoversBounds(t *testing.T) {
	for i, bound := range histBounds {
		if got := bucketIndex(bound); got != i {
			t.Errorf("bucketIndex(%g) = %d, want %d (exact bounds belong to their own bucket)", bound, got, i)
		}
	}
	if got := bucketIndex(histBounds[histBuckets-1] * 4); got != histBuckets {
		t.Errorf("oversized sample landed in bucket %d, want overflow %d", got, histBuckets)
	}
}

// parseBuckets extracts (le, cumulative) pairs for one histogram family
// from a text exposition.
func parseBuckets(t *testing.T, exposition, name string) (les []float64, cums []int64) {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+"_bucket{") {
			continue
		}
		var le string
		var cum int64
		open := strings.Index(line, `le="`)
		rest := line[open+4:]
		end := strings.Index(rest, `"`)
		le = rest[:end]
		if _, err := fmt.Sscanf(rest[end+2:], "%d", &cum); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if le == "+Inf" {
			les = append(les, math.Inf(1))
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("unparseable le %q: %v", le, err)
			}
			les = append(les, v)
		}
		cums = append(cums, cum)
	}
	return les, cums
}

func TestHistogramExpositionMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_seconds", "h", Label{"stage", "search"})
	for _, v := range []float64{1e-7, 0.001, 0.001, 0.25, 3, 1e9} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	les, cums := parseBuckets(t, out, "mono_seconds")
	if len(les) < 2 {
		t.Fatalf("no buckets parsed from:\n%s", out)
	}
	for i := 1; i < len(les); i++ {
		if les[i] <= les[i-1] {
			t.Errorf("le bounds not increasing: %v", les)
		}
		if cums[i] < cums[i-1] {
			t.Errorf("cumulative counts not monotone: %v", cums)
		}
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Error("exposition must end with the +Inf bucket")
	}
	if cums[len(cums)-1] != 6 {
		t.Errorf("+Inf bucket %d, want 6", cums[len(cums)-1])
	}
	if !strings.Contains(out, `mono_seconds_count{stage="search"} 6`) {
		t.Errorf("missing _count line:\n%s", out)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_seconds", "h")
	c := r.Counter("race_total", "h")

	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(float64(i%100) / 1000)
				c.Inc()
			}
		}()
	}

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			r.WritePrometheus(&sb)
			_, cums := parseBuckets(t, sb.String(), "race_seconds")
			for i := 1; i < len(cums); i++ {
				if cums[i] < cums[i-1] {
					t.Errorf("mid-flight scrape non-monotone: %v", cums)
					return
				}
			}
		}
	}()

	workers.Wait()
	close(stop)
	scraper.Wait()
	if h.Count() != 20000 || c.Value() != 20000 {
		t.Fatalf("lost observations: hist %d counter %d, want 20000", h.Count(), c.Value())
	}
}

func TestHTTPHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "h").Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), "handler_total 3") {
		t.Errorf("body missing counter:\n%s", body)
	}
}
