package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits structured request-lifecycle spans as JSON Lines: one
// object per span, written atomically (one Write call per line) so
// concurrent requests interleave whole records, never bytes.
//
// The span vocabulary for the allocation service is fixed (DESIGN.md §11):
//
//	request              the root span, Submit entry to terminal outcome
//	admit                admission verdict (admitted, shed, draining)
//	queue                time spent queued before a worker dequeued
//	cache                solution-cache verdict (hit, miss, near-hit)
//	dedup                singleflight follower outcome (shared, cold)
//	stage:<name>         one pipeline stage run (greedy, best-fit, ...)
//	settle               the terminal outcome with its attributes
//
// A nil *Tracer is a valid no-op tracer: every method is nil-safe, so call
// sites carry no enabled/disabled branches. Span open/close counts are
// tracked so harnesses can assert that every started span was ended even
// under hedged racing and caller cancellation (Balance).
type Tracer struct {
	mu sync.Mutex
	w  io.Writer

	opened  atomic.Int64
	closed  atomic.Int64
	dropped atomic.Int64 // spans lost to a write or marshal error
}

// NewTracer wraps w. The tracer owns serialisation, not the writer's
// lifetime: callers close files themselves after the last span.
func NewTracer(w io.Writer) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{w: w}
}

// SpanRecord is the JSONL schema of one emitted span. Times are Unix
// microseconds; durations microseconds. Attrs carries span-specific
// attributes (steps, backtracks, outcome, breaker state, cache verdict).
type SpanRecord struct {
	Trace   string         `json:"trace"`
	Span    string         `json:"span"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Span is one in-progress span created by Start. Nil spans (from a nil
// tracer) are valid and inert.
type Span struct {
	t     *Tracer
	rec   SpanRecord
	start time.Time

	mu    sync.Mutex
	ended bool
}

// Start opens a span; every Start must be paired with exactly one End.
// Returns nil (inert) on a nil tracer.
func (t *Tracer) Start(traceID, name string) *Span {
	if t == nil {
		return nil
	}
	t.opened.Add(1)
	now := time.Now()
	return &Span{
		t:     t,
		start: now,
		rec:   SpanRecord{Trace: traceID, Span: name, StartUS: now.UnixMicro()},
	}
}

// Set attaches one attribute to the span. Later values win. Safe to call
// concurrently with other Sets; must not race with End.
func (sp *Span) Set(key string, value any) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.ended {
		return
	}
	if sp.rec.Attrs == nil {
		sp.rec.Attrs = make(map[string]any, 4)
	}
	sp.rec.Attrs[key] = value
}

// End closes the span and emits its record. Idempotent: only the first End
// emits and counts.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	sp.rec.DurUS = time.Since(sp.start).Microseconds()
	rec := sp.rec
	sp.mu.Unlock()
	sp.t.closed.Add(1)
	sp.t.write(rec)
}

// Emit writes a retroactive span — one whose start and duration were
// measured by the caller (e.g. a pipeline stage reconstructed from its
// report). A retroactive span opens and closes in the same call, so it can
// never unbalance the tracer. Nil-safe.
func (t *Tracer) Emit(traceID, name string, start time.Time, dur time.Duration, attrs map[string]any) {
	if t == nil {
		return
	}
	t.opened.Add(1)
	t.closed.Add(1)
	t.write(SpanRecord{
		Trace:   traceID,
		Span:    name,
		StartUS: start.UnixMicro(),
		DurUS:   dur.Microseconds(),
		Attrs:   attrs,
	})
}

func (t *Tracer) write(rec SpanRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		// Attrs should always be marshal-safe; an exotic value loses its
		// span, not the process.
		t.dropped.Add(1)
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	_, werr := t.w.Write(line)
	t.mu.Unlock()
	if werr != nil {
		t.dropped.Add(1)
	}
}

// Balance reports how many spans were opened and closed. After a drained
// server the two must be equal — the invariant the -race span test and the
// obs soak assert.
func (t *Tracer) Balance() (opened, closed int64) {
	if t == nil {
		return 0, 0
	}
	return t.opened.Load(), t.closed.Load()
}

// Dropped reports spans lost to marshal or write errors.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
