// Package obs is the dependency-free observability layer for the allocator
// and its serving harness: atomic counters and gauges, log-bucketed latency
// histograms with quantile estimates, a process-global registry with
// Prometheus-text and expvar exposition, and a request-lifecycle tracer
// that emits structured JSONL spans (see tracer.go).
//
// TelaMalloc's value claim is tail latency on live accelerator hosts
// (paper §6, §7): proving that a change helps — or didn't regress — needs
// stage latency distributions, breaker flaps, and cache efficacy visible
// while the service runs, not a terminal counter dump after it exits. The
// package uses only the standard library so the solver's hot path can feed
// it without pulling a metrics dependency into the allocator.
//
// Concurrency and cost contract: Counter.Add, Gauge.Set, and
// Histogram.Observe are lock-free atomics, safe from any goroutine and
// cheap enough for per-request paths. Metric construction (Registry.Counter
// and friends) takes a registry lock and should happen once, at component
// setup — the public Allocator handle and the server bind their metrics at
// construction time for exactly this reason.
package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, rendered as {key="value"} in the
// Prometheus exposition.
type Label struct {
	Key, Value string
}

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labelled time series inside a family.
type series interface {
	// expo appends the exposition lines for this series. name is the family
	// name, labels the rendered label signature ("" or `{k="v",...}`).
	expo(b *strings.Builder, name, labels string)
	// expvarValue returns the series' representation for /debug/vars.
	expvarValue() any
}

// family is all series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.RWMutex
	series map[string]series
	order  []string // label signatures in registration order
}

// Registry holds a set of metric families. The zero value is not usable;
// build one with NewRegistry or use the process-global Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // family names in registration order

	publish sync.Once
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-global registry. Library-level instrumentation
// (the solver, the pipeline) registers here unless a component binds its
// own registry; the daemon exposes it over HTTP.
func Default() *Registry { return defaultRegistry }

// labelSignature renders labels deterministically: sorted by key, in the
// exact form the exposition uses. It doubles as the series identity, so
// the same name+labels always resolves to the same series instance.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// getFamily returns the family for name, creating it on first use. A name
// reused with a different kind is a programming error and panics: silently
// splitting one name across types would corrupt the exposition.
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, series: make(map[string]series)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// getSeries returns the series for sig, creating it with make on first use.
// replace controls re-registration: func-backed series replace (last wins,
// so a rebuilt component can re-point its reader), stateful series are
// shared (two callers asking for the same counter get the same instance).
func (f *family) getSeries(sig string, replace bool, make func() series) series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[sig]; ok && !replace {
		return s
	}
	if _, ok := f.series[sig]; !ok {
		f.order = append(f.order, sig)
	}
	s := make()
	f.series[sig] = s
	return s
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0; negative deltas are
// ignored so a buggy caller cannot make a counter run backwards).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) expo(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %d\n", name, labels, c.Value())
}

func (c *Counter) expvarValue() any { return c.Value() }

// Counter returns the counter for name+labels, registering it on first use.
// Asking again with the same identity returns the same instance.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, kindCounter)
	s := f.getSeries(labelSignature(labels), false, func() series { return &Counter{} })
	return s.(*Counter)
}

// CounterFunc registers a counter whose value is read from f at exposition
// time. This is how the server folds its existing atomic Snapshot ledger
// into /metrics without double-counting: the scrape reads the very atomics
// the ledger is built from, so the two can never disagree. Re-registering
// the same identity replaces the reader (last wins).
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	f := r.getFamily(name, help, kindCounter)
	f.getSeries(labelSignature(labels), true, func() series { return funcSeries{fn} })
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) expo(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %d\n", name, labels, g.Value())
}

func (g *Gauge) expvarValue() any { return g.Value() }

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, kindGauge)
	s := f.getSeries(labelSignature(labels), false, func() series { return &Gauge{} })
	return s.(*Gauge)
}

// GaugeFunc registers a gauge read from fn at exposition time (queue depth,
// cache occupancy). Re-registering the same identity replaces the reader.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	f := r.getFamily(name, help, kindGauge)
	f.getSeries(labelSignature(labels), true, func() series { return funcSeries{fn} })
}

// funcSeries adapts a read-at-scrape-time function to the series interface.
type funcSeries struct {
	fn func() int64
}

func (s funcSeries) expo(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %d\n", name, labels, s.fn())
}

func (s funcSeries) expvarValue() any { return s.fn() }

// Histogram returns the histogram for name+labels, registering it on first
// use. See histogram.go for the bucket layout and quantile contract.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	f := r.getFamily(name, help, kindHistogram)
	s := f.getSeries(labelSignature(labels), false, func() series { return newHistogram() })
	return s.(*Histogram)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (families in registration order, series in registration order
// within a family).
func (r *Registry) WritePrometheus(b *strings.Builder) {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if f == nil {
			continue
		}
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		f.mu.RLock()
		sigs := append([]string(nil), f.order...)
		ss := make([]series, 0, len(sigs))
		for _, sig := range sigs {
			ss = append(ss, f.series[sig])
		}
		f.mu.RUnlock()
		for i, s := range ss {
			s.expo(b, f.name, sigs[i])
		}
	}
}

// expvarMap renders the registry as a flat map for /debug/vars: plain
// metrics map to their value, histograms to {count, sum, p50, p90, p99}.
func (r *Registry) expvarMap() map[string]any {
	out := make(map[string]any)
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if f == nil {
			continue
		}
		f.mu.RLock()
		for _, sig := range f.order {
			out[f.name+sig] = f.series[sig].expvarValue()
		}
		f.mu.RUnlock()
	}
	return out
}

// PublishExpvar publishes the registry under the given expvar name (shown
// at /debug/vars). Safe to call more than once; only the first call per
// registry publishes, and a name already taken in the process-wide expvar
// namespace is left alone rather than panicking.
func (r *Registry) PublishExpvar(name string) {
	r.publish.Do(func() {
		if expvar.Get(name) != nil {
			return
		}
		expvar.Publish(name, expvar.Func(func() any { return r.expvarMap() }))
	})
}
