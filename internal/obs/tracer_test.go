package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	sp := tr.Start("req-1", "request")
	sp.Set("outcome", "solved")
	sp.Set("steps", int64(42))
	sp.End()
	sp.End() // idempotent: must not double-emit or double-count

	tr.Emit("req-1", "stage:search", time.UnixMicro(1_000_000), 2500*time.Microsecond,
		map[string]any{"steps": 17, "err": ""})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d span lines, want 2:\n%s", len(lines), buf.String())
	}

	var root, stage SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &root); err != nil {
		t.Fatalf("line 0 does not round-trip: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &stage); err != nil {
		t.Fatalf("line 1 does not round-trip: %v", err)
	}
	if root.Trace != "req-1" || root.Span != "request" || root.StartUS == 0 {
		t.Errorf("root span fields wrong: %+v", root)
	}
	if root.Attrs["outcome"] != "solved" {
		t.Errorf("root attrs lost: %+v", root.Attrs)
	}
	// JSON numbers decode as float64; the schema promises numbers, not a
	// specific Go integer width.
	if got, ok := root.Attrs["steps"].(float64); !ok || got != 42 {
		t.Errorf("steps attr = %v (%T), want 42", root.Attrs["steps"], root.Attrs["steps"])
	}
	if stage.Span != "stage:search" || stage.StartUS != 1_000_000 || stage.DurUS != 2500 {
		t.Errorf("retroactive span fields wrong: %+v", stage)
	}

	if opened, closed := tr.Balance(); opened != 2 || closed != 2 {
		t.Errorf("balance %d/%d, want 2/2", opened, closed)
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped %d spans", tr.Dropped())
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "y")
	sp.Set("k", "v")
	sp.End()
	tr.Emit("x", "y", time.Now(), 0, nil)
	if o, c := tr.Balance(); o != 0 || c != 0 {
		t.Fatalf("nil tracer balance %d/%d", o, c)
	}
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) must return the inert nil tracer")
	}
}

func TestTracerConcurrentLinesStayWhole(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&safeWriter{w: &buf})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("trace", "span")
				sp.Set("g", g)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved or corrupt span line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 1600 {
		t.Fatalf("got %d whole lines, want 1600", n)
	}
	if o, c := tr.Balance(); o != 1600 || c != 1600 {
		t.Fatalf("balance %d/%d, want 1600/1600", o, c)
	}
}

// safeWriter serialises writes; bytes.Buffer alone is not safe for the
// concurrent test even though the tracer already holds its own lock — this
// stands in for the *os.File the daemon uses.
type safeWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
