package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// The bucket layout is fixed and logarithmic: bucket i covers
// (histMin·2^(i-1), histMin·2^i], with a final overflow bucket for
// observations beyond the last bound. One layout serves both latencies in
// seconds (1µs resolution at the bottom) and search-effort counts (up to
// ~5·10^11 steps at the top): 60 power-of-two buckets span 1e-6 .. 1e-6·2^59.
//
// Fixed buckets keep Observe lock-free — a single atomic add into a
// precomputed slot — and make scraped bucket counts monotone by
// construction, at the cost of ~2× relative quantile error, which is
// accurate enough to see a P99 move.
const (
	histMin     = 1e-6
	histBuckets = 60
)

// histBounds[i] is the inclusive upper bound of bucket i.
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	v := histMin
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a lock-free log-bucketed histogram with quantile estimates.
// Build one through Registry.Histogram.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // +1: overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex returns the slot for v: the smallest i with v <= histBounds[i],
// or the overflow slot when v exceeds every bound.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	i := int(math.Ceil(math.Log2(v / histMin)))
	if i >= histBuckets {
		return histBuckets
	}
	// Guard against log/pow rounding on exact powers of two: the computed
	// slot must actually cover v.
	if histBounds[i] < v {
		i++
		if i >= histBuckets {
			return histBuckets
		}
	}
	return i
}

// Observe folds one sample into the histogram. Negative and NaN samples are
// dropped (they have no meaningful bucket). Safe for concurrent use;
// allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || v < 0 {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency sample given in nanoseconds, stored in
// seconds (the Prometheus base unit for time).
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// inside the bucket that holds the target rank. Returns 0 with no
// observations. The estimate's relative error is bounded by the bucket
// growth factor (2×): good enough to watch a P99 move, not to bill by.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := lo * 2
			if i == 0 {
				hi = histBounds[0]
			}
			if i == histBuckets {
				// Overflow bucket: no meaningful upper bound, report the
				// last finite bound.
				return histBounds[histBuckets-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return histBounds[histBuckets-1]
}

// formatBound renders a bucket bound compactly for the le label.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expo renders the Prometheus histogram series: cumulative _bucket lines
// with le bounds, then _sum and _count. Empty buckets between occupied ones
// are skipped (cumulative counts stay correct); the +Inf bucket is always
// present.
func (h *Histogram) expo(b *strings.Builder, name, labels string) {
	// Merge the le label into an existing label set.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	// All counts come from one pass over the buckets, and +Inf/_count are
	// derived from that same pass, so a concurrent Observe can delay a
	// sample to the next scrape but never make the cumulative series
	// non-monotone or _count disagree with the +Inf bucket.
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", name, open, formatBound(histBounds[i]), cum)
	}
	cum += h.counts[histBuckets].Load()
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, labels, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

// expvarValue summarises the histogram for /debug/vars.
func (h *Histogram) expvarValue() any {
	return map[string]any{
		"count": h.Count(),
		"sum":   h.Sum(),
		"p50":   h.Quantile(0.50),
		"p90":   h.Quantile(0.90),
		"p99":   h.Quantile(0.99),
	}
}
