package heuristics

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"telamalloc/internal/buffers"
)

func randomProblem(rng *rand.Rand, n int, mem int64) *buffers.Problem {
	p := &buffers.Problem{Memory: mem}
	for i := 0; i < n; i++ {
		start := rng.Int63n(30)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start,
			End:   start + 1 + rng.Int63n(15),
			Size:  1 + rng.Int63n(12),
			Align: []int64{0, 0, 2, 4}[rng.Intn(4)],
		})
	}
	p.Normalize()
	return p
}

func TestBestFitProducesValidPackings(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 1+rng.Intn(30), 1<<40)
		sol, peak := BestFitUnbounded(p)
		q := p.Clone()
		q.Memory = peak // tightest limit the packing fits in
		if err := sol.Validate(q); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return sol.PeakUsage(p) == peak
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGreedyContentionProducesValidPackings(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 1+rng.Intn(30), 1<<40)
		sol, peak := GreedyContentionUnbounded(p)
		q := p.Clone()
		q.Memory = peak
		if err := sol.Validate(q); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGreedyBeatsBestFitOnFragmentingWorkload(t *testing.T) {
	// Deterministic instance reproducing the qualitative gap of Figure 3:
	// best-fit, being timing-unaware, parks a tiny long-lived buffer on top
	// of a large dying one and then cannot reuse the freed space for the
	// next large buffer. The contention heuristic places the long-lived
	// buffer at the bottom instead.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 10},  // X: big, early
			{Start: 5, End: 100, Size: 1},  // s: tiny but long-lived
			{Start: 10, End: 20, Size: 11}, // Y: big, arrives after X dies
		},
		Memory: 1 << 40,
	}
	p.Normalize()
	_, bfPeak := BestFitUnbounded(p)
	_, greedyPeak := GreedyContentionUnbounded(p)
	if bfPeak != 22 {
		t.Errorf("best-fit peak = %d, want 22 (fragmented)", bfPeak)
	}
	if greedyPeak != 12 {
		t.Errorf("greedy peak = %d, want 12", greedyPeak)
	}
}

func TestGreedyNoWorseThanBestFitInAggregate(t *testing.T) {
	// Statistical version: over many random phased workloads, the
	// contention heuristic needs no more memory than best-fit in aggregate.
	rng := rand.New(rand.NewSource(42))
	var greedyTotal, bfTotal float64
	for trial := 0; trial < 40; trial++ {
		p := &buffers.Problem{Memory: 1 << 40}
		for phase := int64(0); phase < 8; phase++ {
			base := phase * 10
			for i := 0; i < 12; i++ {
				start := base + rng.Int63n(3)
				p.Buffers = append(p.Buffers, buffers.Buffer{
					Start: start,
					End:   start + 2 + rng.Int63n(6),
					Size:  4 + rng.Int63n(60),
				})
			}
		}
		p.Normalize()
		_, bfPeak := BestFitUnbounded(p)
		_, greedyPeak := GreedyContentionUnbounded(p)
		bfTotal += float64(bfPeak)
		greedyTotal += float64(greedyPeak)
	}
	if greedyTotal > bfTotal*1.05 {
		t.Errorf("greedy aggregate peak %.0f worse than best-fit %.0f", greedyTotal, bfTotal)
	}
}

func TestAllocateEnforcesLimit(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
		},
		Memory: 8,
	}
	p.Normalize()
	for _, alloc := range []Allocator{BestFit{}, GreedyContention{}} {
		sol, err := alloc.Allocate(p)
		if err != nil {
			t.Fatalf("%s failed on a trivially packable input: %v", alloc.Name(), err)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatalf("%s produced invalid packing: %v", alloc.Name(), err)
		}
	}
	tight := p.Clone()
	tight.Memory = 7
	for _, alloc := range []Allocator{BestFit{}, GreedyContention{}} {
		if _, err := alloc.Allocate(tight); !errors.Is(err, ErrNoFit) {
			t.Errorf("%s: err = %v, want ErrNoFit", alloc.Name(), err)
		}
	}
}

func TestGreedyContentionOrdersByContentionFirst(t *testing.T) {
	// The high-contention pair must be placed at the bottom (address 0 and
	// just above), with the low-contention buffer stacked wherever is left.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 20, End: 25, Size: 2}, // low contention, listed first
			{Start: 0, End: 10, Size: 8},  // high contention
			{Start: 0, End: 10, Size: 8},  // high contention
		},
		Memory: 1 << 40,
	}
	p.Normalize()
	sol, peak := GreedyContentionUnbounded(p)
	if peak != 16 {
		t.Errorf("peak = %d, want 16", peak)
	}
	if sol.Offsets[0] != 0 {
		t.Errorf("low-contention buffer at %d, want 0 (separate phase reuses bottom)", sol.Offsets[0])
	}
}

func TestGreedyAlignmentTieBreak(t *testing.T) {
	// Equal contention: the buffer with stricter alignment goes first.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4, Align: 0},
			{Start: 0, End: 10, Size: 4, Align: 16},
		},
		Memory: 1 << 40,
	}
	p.Normalize()
	sol, _ := GreedyContentionUnbounded(p)
	if sol.Offsets[1] != 0 {
		t.Errorf("aligned buffer at %d, want 0 (placed first)", sol.Offsets[1])
	}
	if sol.Offsets[1]%16 != 0 {
		t.Errorf("aligned buffer misaligned at %d", sol.Offsets[1])
	}
}

func TestMinMemoryMatchesPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 25, 1<<40)
	for _, pack := range []UnboundedFunc{BestFitUnbounded, GreedyContentionUnbounded} {
		_, peak := pack(p)
		if got := MinMemory(pack, p); got != peak {
			t.Errorf("MinMemory = %d, want %d", got, peak)
		}
	}
}

func TestUsageProfile(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 4, Size: 4},
			{Start: 2, End: 6, Size: 4},
		},
		Memory: 16,
	}
	p.Normalize()
	sol := &buffers.Solution{Offsets: []int64{0, 4}}
	steps := UsageProfile(p, sol)
	wantAt := map[int64]int64{0: 4, 2: 8, 3: 8, 4: 8, 5: 8}
	for _, st := range steps {
		for tm := st.Start; tm < st.End; tm++ {
			if want, ok := wantAt[tm]; ok && st.Contention != want {
				t.Errorf("usage at t=%d is %d, want %d", tm, st.Contention, want)
			}
		}
	}
	// Peak of the profile must equal PeakUsage.
	var peak int64
	for _, st := range steps {
		if st.Contention > peak {
			peak = st.Contention
		}
	}
	if peak != sol.PeakUsage(p) {
		t.Errorf("profile peak %d != PeakUsage %d", peak, sol.PeakUsage(p))
	}
}

func TestUsageProfileMatchesPeakProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 1+rng.Intn(20), 1<<40)
		sol, _ := GreedyContentionUnbounded(p)
		var peak int64
		for _, st := range UsageProfile(p, sol) {
			if st.Contention > peak {
				peak = st.Contention
			}
		}
		return peak == sol.PeakUsage(p)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
