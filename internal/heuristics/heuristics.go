// Package heuristics implements the non-search baseline allocators the
// paper compares against (§3.1):
//
//   - BestFit: a timing-unaware best-fit allocator in the style of
//     TensorFlow's BFC allocator / dlmalloc. It processes buffers in start
//     order and picks the tightest gap among currently live buffers.
//   - GreedyContention: the production-quality greedy heuristic — blocks
//     ordered by contention (ties: alignment, size×lifetime², lifetime) and
//     packed bottom-up into the lowest available gaps, like pieces in a
//     game of Tetris (Figure 4).
//
// Both are fast but incomplete: they cannot backtrack, so they fail on
// tight instances that the solver-based approaches handle.
package heuristics

import (
	"errors"
	"fmt"
	"sort"

	"telamalloc/internal/buffers"
	"telamalloc/internal/intervals"
)

// ErrNoFit is returned when an allocator cannot place every buffer within
// the problem's memory limit.
var ErrNoFit = errors.New("heuristics: no placement found within the memory limit")

// Allocator is the interface shared by every allocation strategy in the
// repository. Allocate returns a complete, valid solution or an error.
type Allocator interface {
	// Name identifies the allocator in experiment output.
	Name() string
	// Allocate solves p or fails. Implementations must not mutate p.
	Allocate(p *buffers.Problem) (*buffers.Solution, error)
}

// BestFit is the BFC-style baseline: buffers are allocated in start-time
// order and freed at their end times; each allocation takes the tightest
// hole among currently live buffers. End times are otherwise ignored, which
// is why it needs far more memory than timing-aware approaches (Figure 3).
type BestFit struct{}

// Name implements Allocator.
func (BestFit) Name() string { return "best-fit" }

// Allocate implements Allocator.
func (BestFit) Allocate(p *buffers.Problem) (*buffers.Solution, error) {
	sol, peak := BestFitUnbounded(p)
	if peak > p.Memory {
		return nil, fmt.Errorf("%w: best-fit needs %d bytes, limit is %d", ErrNoFit, peak, p.Memory)
	}
	return sol, nil
}

// BestFitUnbounded runs the best-fit allocator with no memory limit and
// returns the packing together with its peak usage. Figure 3 plots this
// peak against the limit to show when best-fit fails.
func BestFitUnbounded(p *buffers.Problem) (*buffers.Solution, int64) {
	n := len(p.Buffers)
	sol := buffers.NewSolution(n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		bi, bj := p.Buffers[order[i]], p.Buffers[order[j]]
		if bi.Start != bj.Start {
			return bi.Start < bj.Start
		}
		return order[i] < order[j]
	})
	const unbounded = int64(1) << 62
	var peak int64
	occ := make([]intervals.Interval, 0, n)
	for _, id := range order {
		b := p.Buffers[id]
		// Live set: already-placed buffers whose range contains b.Start.
		occ = occ[:0]
		for j, o := range p.Buffers {
			if sol.Offsets[j] >= 0 && o.Start <= b.Start && b.Start < o.End {
				occ = append(occ, intervals.Interval{Lo: sol.Offsets[j], Hi: sol.Offsets[j] + o.Size})
			}
		}
		merged := intervals.SortAndMerge(occ)
		pos, ok := intervals.BestFit(merged, b.Size, b.Align, unbounded)
		if !ok {
			pos = 0 // cannot happen with an unbounded limit, but stay safe
		}
		sol.Offsets[id] = pos
		if pos+b.Size > peak {
			peak = pos + b.Size
		}
		occ = merged
	}
	return sol, peak
}

// GreedyContention is the paper's production baseline heuristic (§3.1):
// buffers are considered in order of decreasing contention (the maximum
// total live bytes over the buffer's lifetime), with ties broken by
// alignment, then size×lifetime², then lifetime. Each buffer lands in the
// lowest gap among its already-placed temporal neighbours (Figure 4's
// bottom-up row traversal).
type GreedyContention struct{}

// Name implements Allocator.
func (GreedyContention) Name() string { return "greedy-contention" }

// Allocate implements Allocator.
func (GreedyContention) Allocate(p *buffers.Problem) (*buffers.Solution, error) {
	sol, peak := GreedyContentionUnbounded(p)
	if peak > p.Memory {
		return nil, fmt.Errorf("%w: greedy heuristic needs %d bytes, limit is %d", ErrNoFit, peak, p.Memory)
	}
	return sol, nil
}

// GreedyContentionUnbounded runs the greedy heuristic without a memory
// limit and returns the packing and its peak usage. MinMemory probes this
// to find the smallest limit at which the heuristic succeeds (Table 2).
//
// Placement follows Figure 4 of the paper: blocks are considered in score
// order and each lands in the lowest gap among its already-placed temporal
// neighbours (the paper's row-wise skyline traversal fills the same gaps,
// bottom row first). Selection order is contention first with the paper's
// tie-breaks: alignment, then size × lifetime², then lifetime.
func GreedyContentionUnbounded(p *buffers.Problem) (*buffers.Solution, int64) {
	n := len(p.Buffers)
	sol := buffers.NewSolution(n)
	contention := buffers.BufferContention(p)
	ov := buffers.ComputeOverlaps(p)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		bi, bj := p.Buffers[i], p.Buffers[j]
		if contention[i] != contention[j] {
			return contention[i] > contention[j]
		}
		if bi.Align != bj.Align {
			return bi.Align > bj.Align
		}
		li, lj := bi.Lifetime(), bj.Lifetime()
		// size × lifetime² in float64: immune to overflow at the magnitude
		// caps Validate enforces.
		si := float64(bi.Size) * float64(li) * float64(li)
		sj := float64(bj.Size) * float64(lj) * float64(lj)
		if si != sj {
			return si > sj
		}
		if li != lj {
			return li > lj
		}
		return i < j
	})
	const unbounded = int64(1) << 62
	var peak int64
	occ := make([]intervals.Interval, 0, 32)
	for _, id := range order {
		b := p.Buffers[id]
		occ = occ[:0]
		for _, nb := range ov.Neighbors[id] {
			if off := sol.Offsets[nb]; off >= 0 {
				occ = append(occ, intervals.Interval{Lo: off, Hi: off + p.Buffers[nb].Size})
			}
		}
		merged := intervals.SortAndMerge(occ)
		pos, _ := intervals.LowestFit(merged, b.Size, b.Align, 0, unbounded)
		sol.Offsets[id] = pos
		if pos+b.Size > peak {
			peak = pos + b.Size
		}
		occ = merged
	}
	return sol, peak
}

// UnboundedFunc is the shape shared by the two *Unbounded packers.
type UnboundedFunc func(*buffers.Problem) (*buffers.Solution, int64)

// MinMemory returns the smallest memory limit at which pack succeeds, i.e.
// its peak usage (both packers are limit-oblivious, so the peak is exactly
// the minimum limit they can cope with).
func MinMemory(pack UnboundedFunc, p *buffers.Problem) int64 {
	_, peak := pack(p)
	return peak
}

// UsageProfile returns the piecewise-constant profile of the highest
// address in use over time for a given packing — the quantity Figure 3
// plots for each allocator. Steps are emitted in time order.
func UsageProfile(p *buffers.Problem, sol *buffers.Solution) []buffers.ContentionStep {
	type event struct {
		t     int64
		add   bool
		index int
	}
	events := make([]event, 0, 2*len(p.Buffers))
	for i, b := range p.Buffers {
		events = append(events, event{b.Start, true, i}, event{b.End, false, i})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return !events[a].add && events[b].add
	})
	live := map[int]struct{}{}
	var steps []buffers.ContentionStep
	var prevT int64
	first := true
	for i := 0; i < len(events); {
		t := events[i].t
		if !first && t != prevT {
			var top int64
			for id := range live {
				if end := sol.Offsets[id] + p.Buffers[id].Size; end > top {
					top = end
				}
			}
			steps = append(steps, buffers.ContentionStep{Start: prevT, End: t, Contention: top})
		}
		for i < len(events) && events[i].t == t {
			if events[i].add {
				live[events[i].index] = struct{}{}
			} else {
				delete(live, events[i].index)
			}
			i++
		}
		prevT = t
		first = false
	}
	return steps
}
