package ilp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"telamalloc/internal/buffers"
)

func solveOK(t *testing.T, p *buffers.Problem, opts Options) *buffers.Solution {
	t.Helper()
	res := Solve(p, nil, opts)
	if res.Status != Solved {
		t.Fatalf("Solve status = %v, want solved (steps=%d)", res.Status, res.Steps)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatalf("solver returned invalid packing: %v", err)
	}
	return res.Solution
}

func TestSolveTrivial(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{{Start: 0, End: 5, Size: 4}},
		Memory:  4,
	}
	p.Normalize()
	solveOK(t, p, Options{})
}

func TestSolveTightPacking(t *testing.T) {
	// Four fully overlapping buffers exactly filling memory.
	p := &buffers.Problem{Memory: 16}
	for i := 0; i < 4; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 10, Size: 4})
	}
	p.Normalize()
	sol := solveOK(t, p, Options{})
	if peak := sol.PeakUsage(p); peak != 16 {
		t.Errorf("PeakUsage = %d, want 16", peak)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &buffers.Problem{Memory: 8}
	for i := 0; i < 3; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 10, Size: 4})
	}
	p.Normalize()
	res := Solve(p, nil, Options{})
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestSolveFigure1Instance(t *testing.T) {
	// A rendition of the paper's Figure 1: the blue buffer (7) must go
	// between the long buffers; a greedy skyline would fail at this memory
	// limit, the exact solver must not.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 6, Size: 2},  // (1) long, early
			{Start: 0, End: 4, Size: 2},  // (2)
			{Start: 4, End: 6, Size: 2},  // (4)
			{Start: 1, End: 5, Size: 2},  // (7) the pivotal block
			{Start: 0, End: 2, Size: 2},  // (8)
			{Start: 6, End: 10, Size: 4}, // second hump
			{Start: 6, End: 10, Size: 2},
		},
		Memory: 8,
	}
	p.Normalize()
	solveOK(t, p, Options{})
}

func TestSolveRespectsAlignment(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 3},
			{Start: 0, End: 10, Size: 4, Align: 8},
			{Start: 0, End: 10, Size: 4, Align: 4},
		},
		Memory: 16,
	}
	p.Normalize()
	sol := solveOK(t, p, Options{})
	if sol.Offsets[1]%8 != 0 {
		t.Errorf("aligned buffer placed at %d", sol.Offsets[1])
	}
	if sol.Offsets[2]%4 != 0 {
		t.Errorf("aligned buffer placed at %d", sol.Offsets[2])
	}
}

func TestSolveBudget(t *testing.T) {
	// A hard infeasible instance with the step budget forced tiny.
	p := &buffers.Problem{Memory: 100}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: rng.Int63n(5), End: 5 + rng.Int63n(10), Size: 30 + rng.Int63n(20),
		})
	}
	p.Normalize()
	res := Solve(p, nil, Options{MaxSteps: 3})
	if res.Status == Solved {
		t.Skip("instance unexpectedly easy") // extremely unlikely
	}
	if res.Status != Budget && res.Status != Infeasible {
		t.Errorf("status = %v", res.Status)
	}
	if res.Status == Budget && res.Steps > 3+1 {
		t.Errorf("steps = %d exceeded budget", res.Steps)
	}
}

func TestBothBranchRulesAgree(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomFeasibleish(rng, 8)
		a := Solve(p, nil, Options{Rule: BranchMostConstraining, MaxSteps: 200000})
		b := Solve(p, nil, Options{Rule: BranchFirstUnresolved, MaxSteps: 200000})
		if a.Status == Budget || b.Status == Budget {
			return true // can't compare
		}
		return (a.Status == Solved) == (b.Status == Solved)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomFeasibleish builds a small random instance whose memory is between
// the contention peak and the total size, so both outcomes occur.
func randomFeasibleish(rng *rand.Rand, n int) *buffers.Problem {
	p := &buffers.Problem{}
	for i := 0; i < n; i++ {
		start := rng.Int63n(12)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start,
			End:   start + 1 + rng.Int63n(10),
			Size:  1 + rng.Int63n(8),
		})
	}
	p.Normalize()
	peak := buffers.Contention(p).Peak()
	p.Memory = peak + rng.Int63n(peak+1)
	return p
}

func TestSolveWithFixed(t *testing.T) {
	// Two buffers, memory 8. Fixing buffer 0 mid-memory leaves no room.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
		},
		Memory: 8,
	}
	p.Normalize()
	res := SolveWithFixed(p, nil, []int64{2, -1}, Options{})
	if res.Status != Infeasible {
		t.Errorf("fixed-at-2 status = %v, want infeasible", res.Status)
	}
	res = SolveWithFixed(p, nil, []int64{0, -1}, Options{})
	if res.Status != Solved {
		t.Fatalf("fixed-at-0 status = %v, want solved", res.Status)
	}
	if res.Solution.Offsets[0] != 0 {
		t.Errorf("fixed buffer moved to %d", res.Solution.Offsets[0])
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestMinimizeMemory(t *testing.T) {
	// Three size-4 buffers fully overlapping: optimum is exactly 12.
	p := &buffers.Problem{Memory: 64}
	for i := 0; i < 3; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 10, Size: 4})
	}
	p.Normalize()
	limit, sol, ok := MinimizeMemory(p, nil, Options{})
	if !ok {
		t.Fatal("MinimizeMemory failed")
	}
	if limit != 12 {
		t.Errorf("limit = %d, want 12", limit)
	}
	q := p.Clone()
	q.Memory = limit
	if err := sol.Validate(q); err != nil {
		t.Errorf("returned solution invalid at its own limit: %v", err)
	}
}

func TestMinimizeMemoryNeedsMoreThanContentionPeak(t *testing.T) {
	// Classic fragmentation instance where the optimum exceeds the
	// contention lower bound: staircase of three buffers.
	//   A [0,2) size 2, B [1,3) size 2, C [2,4) size 2, D [0,4) size 1
	// Contention peak is 5 but packing the staircase plus the long thin
	// buffer can need more depending on sizes; verify MinimizeMemory
	// returns a feasible limit >= peak.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 2, Size: 2},
			{Start: 1, End: 3, Size: 2},
			{Start: 2, End: 4, Size: 2},
			{Start: 0, End: 4, Size: 1},
		},
		Memory: 32,
	}
	p.Normalize()
	peak := buffers.Contention(p).Peak()
	limit, _, ok := MinimizeMemory(p, nil, Options{})
	if !ok {
		t.Fatal("MinimizeMemory failed")
	}
	if limit < peak {
		t.Errorf("limit %d below contention peak %d", limit, peak)
	}
}

func TestSolveMatchesBruteForceFeasibility(t *testing.T) {
	// Property: on tiny instances, the exact solver agrees with a brute
	// force enumeration of all position combinations.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		p := &buffers.Problem{Memory: 6}
		for i := 0; i < n; i++ {
			start := rng.Int63n(4)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(4),
				Size:  1 + rng.Int63n(4),
			})
		}
		p.Normalize()
		res := Solve(p, nil, Options{})
		want := bruteForceFeasible(p)
		return (res.Status == Solved) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func bruteForceFeasible(p *buffers.Problem) bool {
	n := len(p.Buffers)
	offsets := make([]int64, n)
	var try func(i int) bool
	try = func(i int) bool {
		if i == n {
			s := &buffers.Solution{Offsets: offsets}
			return s.Validate(p) == nil
		}
		for pos := int64(0); pos+p.Buffers[i].Size <= p.Memory; pos++ {
			offsets[i] = pos
			if try(i + 1) {
				return true
			}
		}
		return false
	}
	return try(0)
}

// hardInstance is small enough to validate but hard enough that a
// microsecond-scale budget expires mid-search: many same-size buffers
// fighting over a near-peak limit.
func hardInstance() *buffers.Problem {
	p := &buffers.Problem{Memory: 64}
	for i := 0; i < 12; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 8, Size: 5})
	}
	p.Normalize()
	return p
}

// TestTimeoutResolvedAtSolveStart: an Options value with a Timeout must be
// reusable — the clock starts at each Solve call, not when the struct was
// built. The regression this pins: benchmarks (and any caller holding an
// Options value) used to bake a Deadline at construction, so every solve
// after the first ran with an already-spent budget.
func TestTimeoutResolvedAtSolveStart(t *testing.T) {
	p := &buffers.Problem{Buffers: []buffers.Buffer{{Start: 0, End: 4, Size: 8}}, Memory: 8}
	p.Normalize()
	opts := Options{Timeout: 50 * time.Millisecond}
	// Sleep longer than the timeout between building the options and
	// solving. With construction-time resolution this solve would start
	// expired; with start-time resolution it has its full budget.
	time.Sleep(80 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if res := Solve(p, nil, opts); res.Status != Solved {
			t.Fatalf("solve %d with a held Options value: status %v, want solved", i, res.Status)
		}
	}
}

// TestTimeoutExpires: a tiny Timeout on a hard instance must surface as
// Budget, the same status an exhausted step pot reports.
func TestTimeoutExpires(t *testing.T) {
	res := Solve(hardInstance(), nil, Options{Timeout: time.Microsecond})
	if res.Status != Budget {
		t.Fatalf("status %v, want budget-exceeded", res.Status)
	}
}

// TestTimeoutEarliestWinsWithDeadline: when both are set, the sooner bound
// governs, whichever field it came from.
func TestTimeoutEarliestWinsWithDeadline(t *testing.T) {
	p := hardInstance()
	// Timeout sooner than Deadline: the microsecond pot must lose the race
	// long before the generous deadline would.
	res := Solve(p, nil, Options{Timeout: time.Microsecond, Deadline: time.Now().Add(time.Hour)})
	if res.Status != Budget {
		t.Fatalf("sooner timeout: status %v, want budget-exceeded", res.Status)
	}
	// Deadline sooner than Timeout: an already-expired deadline governs
	// despite the generous timeout.
	res = Solve(p, nil, Options{Timeout: time.Hour, Deadline: time.Now().Add(-time.Second)})
	if res.Status != Budget {
		t.Fatalf("sooner deadline: status %v, want budget-exceeded", res.Status)
	}
}
