package ilp

import (
	"context"
	"testing"

	"telamalloc/internal/workload"
)

// TestCancelHookAborts: a cancel hook that fires immediately yields
// Cancelled, distinguishable from Budget and Infeasible.
func TestCancelHookAborts(t *testing.T) {
	p := workload.FullOverlap(30, 2)
	res := Solve(p, nil, Options{Cancel: func() bool { return true }})
	if res.Status != Cancelled {
		t.Fatalf("status %v, want cancelled", res.Status)
	}
}

// TestCancelFromContext adapts a context into the polling hook.
func TestCancelFromContext(t *testing.T) {
	if CancelFromContext(nil) != nil {
		t.Fatal("nil ctx must yield a nil hook")
	}
	if CancelFromContext(context.Background()) != nil {
		t.Fatal("Background (never done) must yield a nil hook")
	}
	ctx, cancel := context.WithCancel(context.Background())
	hook := CancelFromContext(ctx)
	if hook == nil || hook() {
		t.Fatal("live context must yield a non-firing hook")
	}
	cancel()
	if !hook() {
		t.Fatal("hook did not observe cancellation")
	}
	p := workload.FullOverlap(30, 2)
	res := Solve(p, nil, Options{Cancel: hook})
	if res.Status != Cancelled {
		t.Fatalf("status %v, want cancelled", res.Status)
	}
}

// TestCancelDoesNotAffectCompletedSolves: with a never-firing hook the
// solver still reaches its normal verdict.
func TestCancelDoesNotAffectCompletedSolves(t *testing.T) {
	p := workload.FullOverlap(12, 3)
	res := Solve(p, nil, Options{Cancel: func() bool { return false }})
	if res.Status != Solved {
		t.Fatalf("status %v, want solved", res.Status)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatalf("solution invalid: %v", err)
	}
}
