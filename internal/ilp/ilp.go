// Package ilp implements the exact solver-only baseline of the paper
// (§3.2): branch-and-bound over the pairwise ordering variables of the
// 2D-bin-packing formulation. Once every ordering boolean is decided, the
// minimal positions follow from longest paths in the precedence DAG, which
// the underlying propagation engine computes as lower bounds — so a node
// with all pairs resolved and no wipeout is a solution.
//
// This mirrors what a MIP solver does on the big-M encoding of Figure 5
// after presolve: the integer (boolean) ordering variables are the entire
// combinatorial core; everything else is linear. Like the production ILP
// baseline, the search has no domain-specific knowledge of rectangles or
// skylines, it just explores the boolean space with generic heuristics —
// which is exactly why it is slow on hard inputs and exhibits the large
// variance reported in the paper.
//
// The same search doubles as the paper's pure "CP-SAT encoding" baseline
// (Figure 13) via BranchFirstUnresolved, and as the imitation-learning
// oracle (§6.3) via SolveWithFixed.
package ilp

import (
	"context"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/cp"
)

// Status is the outcome of a solve.
type Status int

const (
	// Solved means a valid packing was found.
	Solved Status = iota
	// Infeasible means the search space was exhausted without a solution.
	Infeasible
	// Budget means the step budget or deadline was exceeded first.
	Budget
	// Cancelled means the Options.Cancel hook (or context) aborted the
	// solve. A cancelled solve says nothing about feasibility.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case Infeasible:
		return "infeasible"
	case Cancelled:
		return "cancelled"
	default:
		return "budget-exceeded"
	}
}

// BranchRule selects which unresolved ordering pair to branch on next.
type BranchRule int

const (
	// BranchMostConstraining picks the unresolved pair with the largest
	// combined size — the generic "most constraining first" rule MIP
	// solvers approximate with pseudo-costs. This is the ILP baseline.
	BranchMostConstraining BranchRule = iota
	// BranchFirstUnresolved picks the lowest-index unresolved pair — a
	// plain CP labelling order. This is the CP-SAT-encoding baseline of
	// Figure 13.
	BranchFirstUnresolved
)

// Options configures a solve.
type Options struct {
	// MaxSteps caps the number of branch nodes explored (0 = unlimited).
	MaxSteps int64
	// Deadline aborts the solve when the wall clock passes it (zero =
	// none). Checked every few hundred nodes to stay cheap.
	Deadline time.Time
	// Timeout, when positive, is resolved against the wall clock when the
	// solve *starts* — not when the Options value was built — mirroring the
	// public WithTimeout contract, so an Options value constructed ahead of
	// time (or reused across solves, as benchmarks do) grants the full
	// budget every time instead of one that silently shrank since
	// construction. It combines with Deadline by earliest-wins. Inside
	// MinimizeMemory each feasibility probe resolves its own Timeout;
	// callers that want one deadline across all probes set Deadline.
	Timeout time.Duration
	// Cancel, when non-nil, cooperatively aborts the solve with status
	// Cancelled; polled on the same stride as Deadline. This is how
	// context cancellation reaches the exact solver: wire ctx through
	// CancelFromContext.
	Cancel func() bool
	// Rule selects the branching heuristic.
	Rule BranchRule
}

// Result reports the outcome of a solve.
type Result struct {
	Status Status
	// Solution is non-nil iff Status == Solved.
	Solution *buffers.Solution
	// Steps is the number of branch nodes explored.
	Steps int64
	// Conflicts is the number of propagation failures encountered.
	Conflicts int64
}

type searcher struct {
	m        *cp.Model
	opts     Options
	steps    int64
	conflict int64
	pairSize []int64 // combined size per pair, for BranchMostConstraining
	// stop latches the terminal budget verdict (Budget or Cancelled) once
	// a poll fires, so the unwinding recursion sees one stable status.
	stop Status
}

// CancelFromContext adapts a context to the Options.Cancel polling hook.
// A nil ctx (or one that can never be done) yields a nil hook.
func CancelFromContext(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// Solve runs the exact search on problem p. ov may be nil (computed then).
func Solve(p *buffers.Problem, ov *buffers.Overlaps, opts Options) Result {
	return SolveWithFixed(p, ov, nil, opts)
}

// SolveWithFixed runs the exact search with some buffers pre-fixed at the
// given positions: fixed[i] < 0 leaves buffer i free. This is the oracle
// query of §6.3 — "encode our problem as ILP and fix all pos variables that
// correspond to blocks that have already been placed".
func SolveWithFixed(p *buffers.Problem, ov *buffers.Overlaps, fixed []int64, opts Options) Result {
	if opts.Timeout > 0 {
		d := time.Now().Add(opts.Timeout)
		if opts.Deadline.IsZero() || d.Before(opts.Deadline) {
			opts.Deadline = d
		}
	}
	m := cp.NewModel(p, ov)
	s := &searcher{m: m, opts: opts}
	s.pairSize = make([]int64, m.NumPairs())
	for k := range s.pairSize {
		pr, _ := m.PairAt(k)
		s.pairSize[k] = p.Buffers[pr.A].Size + p.Buffers[pr.B].Size
	}
	m.Push()
	for i, pos := range fixed {
		if pos < 0 {
			continue
		}
		if c := m.Place(i, pos); c != nil {
			s.conflict++
			return Result{Status: Infeasible, Steps: s.steps, Conflicts: s.conflict}
		}
	}
	status := s.dfs()
	res := Result{Status: status, Steps: s.steps, Conflicts: s.conflict}
	if status == Solved {
		res.Solution = s.extract()
	}
	return res
}

// extract reads the solution at the current (all-pairs-resolved) node: the
// propagated lower bound of every buffer is a valid assignment because it
// satisfies every decided precedence constraint by construction.
func (s *searcher) extract() *buffers.Solution {
	n := len(s.m.Problem().Buffers)
	sol := buffers.NewSolution(n)
	for i := 0; i < n; i++ {
		sol.Offsets[i] = s.m.MinPos(i)
	}
	return sol
}

func (s *searcher) outOfBudget() bool {
	if s.stop != Solved {
		return true
	}
	if s.opts.MaxSteps > 0 && s.steps >= s.opts.MaxSteps {
		s.stop = Budget
		return true
	}
	// Poll on a stride, anchored at the first node so short solves still
	// observe cancellation at least once.
	if s.steps%256 == 1 {
		if s.opts.Cancel != nil && s.opts.Cancel() {
			s.stop = Cancelled
			return true
		}
		if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
			s.stop = Budget
			return true
		}
	}
	return false
}

// pickPair returns the index of the unresolved pair to branch on, or -1 if
// every pair is resolved.
func (s *searcher) pickPair() int {
	best := -1
	var bestSize int64 = -1
	for k := 0; k < s.m.NumPairs(); k++ {
		_, order := s.m.PairAt(k)
		if order != cp.Unknown {
			continue
		}
		if s.opts.Rule == BranchFirstUnresolved {
			return k
		}
		if s.pairSize[k] > bestSize {
			bestSize = s.pairSize[k]
			best = k
		}
	}
	return best
}

func (s *searcher) dfs() Status {
	s.steps++
	if s.outOfBudget() {
		return s.stop
	}
	k := s.pickPair()
	if k < 0 {
		return Solved
	}
	// Value ordering: the branch whose relaxation looks looser first —
	// put the buffer with the smaller lower bound below. This mimics the
	// LP-rounding value selection of a MIP solver; it knows bounds, not
	// geometry.
	pr, _ := s.m.PairAt(k)
	first, second := cp.AFirst, cp.BFirst
	if s.m.MinPos(int(pr.B)) < s.m.MinPos(int(pr.A)) {
		first, second = cp.BFirst, cp.AFirst
	}
	for _, order := range [2]cp.Order{first, second} {
		s.m.Push()
		if c := s.m.FixOrder(k, order); c != nil {
			s.conflict++
			s.m.Pop()
			continue
		}
		switch st := s.dfs(); st {
		case Solved:
			return Solved
		case Budget, Cancelled:
			s.m.Pop()
			return st
		default:
			s.m.Pop()
		}
	}
	return Infeasible
}

// MinimizeMemory binary-searches the smallest memory limit for which the
// problem is solvable, between the contention peak (an unconditional lower
// bound) and p.Memory. It returns the smallest feasible limit found and the
// corresponding solution. If even p.Memory is infeasible (or the budget ran
// out before proving anything), ok is false.
//
// Table 2 of the paper uses this as the "theoretical minimum achieved by
// the ILP solver" that heuristic memory requirements are normalised to.
func MinimizeMemory(p *buffers.Problem, ov *buffers.Overlaps, opts Options) (limit int64, sol *buffers.Solution, ok bool) {
	if ov == nil {
		ov = buffers.ComputeOverlaps(p)
	}
	lo := buffers.Contention(p).Peak()
	hi := p.Memory
	if lo > hi {
		return 0, nil, false
	}
	probe := func(mem int64) *buffers.Solution {
		q := p.Clone()
		q.Memory = mem
		res := Solve(q, nil, opts) // overlaps depend only on times; recompute is cheap relative to solve
		if res.Status == Solved {
			return res.Solution
		}
		return nil
	}
	best := probe(hi)
	if best == nil {
		return 0, nil, false
	}
	bestLimit := hi
	for lo < bestLimit {
		mid := lo + (bestLimit-lo)/2
		if s := probe(mid); s != nil {
			best, bestLimit = s, mid
		} else {
			lo = mid + 1
		}
	}
	return bestLimit, best, true
}
