// Package wire is the schema of the telamallocd line protocol, version 1
// (DESIGN.md §12): one JSON request per line, one JSON report per line,
// order not guaranteed under concurrency, correlation by "id". It exists so
// the daemon (cmd/telamallocd) and the resilient client (internal/client)
// marshal the same bytes from one definition instead of drifting apart.
//
// The schema structs carry no behaviour beyond marshalling; protocol
// *semantics* — retry floors, ambiguity, idempotence — live with the
// endpoints. The typed ErrorCode constants are the machine-readable half of
// every rejection and shed: a client must be able to decide "retry or give
// up" without parsing prose.
package wire

// Version is the wire protocol version this schema describes. Requests may
// omit "v" (treated as Version); reports always carry it.
const Version = 1

// Buffer is one allocation interval in a request.
type Buffer struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	Size  int64 `json:"size"`
	Align int64 `json:"align,omitempty"`
}

// Request is one allocation request line.
//
// Priority and Tenant are optional overload-control fields added within
// protocol version 1: absent means "batch" class and the anonymous tenant,
// and daemons predating them ignore unknown JSON fields, so both directions
// round-trip (DESIGN.md §14).
type Request struct {
	V         int      `json:"v,omitempty"`
	ID        string   `json:"id,omitempty"`
	Name      string   `json:"name,omitempty"`
	Memory    int64    `json:"memory"`
	Buffers   []Buffer `json:"buffers"`
	MaxSteps  int64    `json:"max_steps,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
	// Priority selects the admission class: "interactive", "batch", or
	// "background". Empty means "batch". Anything else is rejected with
	// CodeBadRequest — silently downgrading a typo'd "interactive" would
	// hide the misconfiguration exactly when latency matters.
	Priority string `json:"priority,omitempty"`
	// Tenant attributes the request to a fairness domain for per-tenant
	// token buckets and in-flight share limits. Empty bypasses tenant
	// accounting (the anonymous tenant is never throttled; isolation is
	// opt-in per request, not imposed on unlabelled traffic).
	Tenant string `json:"tenant,omitempty"`
}

// Response is one report line. Outcome is always set; ErrorCode is set on
// typed rejections and sheds so clients can branch without parsing Error.
type Response struct {
	V                int      `json:"v"`
	ID               string   `json:"id,omitempty"`
	Outcome          string   `json:"outcome"`
	ErrorCode        string   `json:"error_code,omitempty"`
	Winner           string   `json:"winner,omitempty"`
	Offsets          []int64  `json:"offsets,omitempty"`
	Spilled          []int    `json:"spilled,omitempty"`
	SpillCost        int64    `json:"spill_cost,omitempty"`
	LowerBound       int64    `json:"lower_bound,omitempty"`
	Memory           int64    `json:"memory,omitempty"`
	SkippedByBreaker []string `json:"skipped_by_breaker,omitempty"`
	HedgeWon         bool     `json:"hedge_won,omitempty"`
	CacheHit         bool     `json:"cache_hit,omitempty"`
	Deduped          bool     `json:"deduped,omitempty"`
	HintReplayed     bool     `json:"hint_replayed,omitempty"`
	QueueWaitMS      float64  `json:"queue_wait_ms,omitempty"`
	ElapsedMS        float64  `json:"elapsed_ms,omitempty"`
	RetryAfterMS     float64  `json:"retry_after_ms,omitempty"`
	// DegradedByBrownout marks a verdict produced while the server's
	// brownout controller had the ladder degraded (shrunk step pots,
	// hedging off, or search skipped). The answer is still valid — the
	// marker tells the client it was bought at reduced quality so
	// latency-sensitive callers can decide to re-ask later.
	DegradedByBrownout bool   `json:"degraded_by_brownout,omitempty"`
	Error              string `json:"error,omitempty"`
}

// Terminal outcomes a report can carry.
const (
	OutcomeSolved    = "solved"
	OutcomeDegraded  = "degraded"
	OutcomeFailed    = "failed"
	OutcomeShed      = "shed"
	OutcomeCancelled = "cancelled"
	OutcomeRejected  = "rejected"
)

// Typed error codes. Rejections and sheds carry exactly one of these; a
// report with an empty ErrorCode is a pipeline verdict, not a protocol or
// capacity event.
const (
	// CodeBadRequest rejects a line that is not valid JSON for the
	// request schema. Not retryable: the same bytes will fail again.
	CodeBadRequest = "bad_request"
	// CodeUnsupportedVersion rejects a request whose "v" is not the
	// protocol this daemon speaks. Not retryable against this daemon.
	CodeUnsupportedVersion = "unsupported_version"
	// CodeDraining rejects a request admitted after shutdown began.
	// Retryable: the daemon (or its replacement) may come back.
	CodeDraining = "draining"
	// CodeTooManyConnections sheds a whole connection at accept time:
	// the per-daemon connection limit is reached. Retryable after the
	// report's retry_after_ms floor plus client-side jitter.
	CodeTooManyConnections = "too_many_connections"
	// CodeOverloaded sheds one request: the admission queue is full.
	// Retryable after retry_after_ms plus client-side jitter.
	CodeOverloaded = "overloaded"
	// CodeLineTooLong rejects a request line over the daemon's line cap.
	// The connection closes after the report: the rest of the oversized
	// line cannot be resynchronized. Not retryable as-is.
	CodeLineTooLong = "line_too_long"
	// CodeTruncatedLine rejects a final line with no newline (mid-line
	// disconnect). The peer that half-sent it is usually gone; the report
	// is best-effort so the failure is visible rather than silent.
	CodeTruncatedLine = "truncated_line"
	// CodeIdleTimeout closes a connection that sent no byte for the
	// daemon's idle window. Reconnecting is the retry.
	CodeIdleTimeout = "idle_timeout"
	// CodeShuttingDown closes a connection because the daemon is
	// draining. Retryable against the restarted daemon.
	CodeShuttingDown = "shutting_down"
	// CodeWatchdogKilled fails a request whose solve overran the watchdog
	// budget multiple and was force-cancelled. Retrying the same request
	// with the same budget will likely overrun again.
	CodeWatchdogKilled = "watchdog_killed"
	// CodeDeadlineExceededInQueue fails a request whose budget expired
	// while it was still queued — no solver step was spent on it. Not
	// retryable: the same budget pushed through the same congestion will
	// expire again; the client should raise the budget or back off.
	CodeDeadlineExceededInQueue = "deadline_exceeded_in_queue"
	// CodeTenantOverloaded sheds one request because its tenant exhausted
	// its token bucket or in-flight share — the daemon as a whole may be
	// fine. Retryable after retry_after_ms plus client-side jitter.
	CodeTenantOverloaded = "tenant_overloaded"
)

// RetryableCode reports whether a typed code names a transient condition a
// client may retry against the same address (with backoff and jitter; see
// internal/client). Codes not listed are permanent for the given bytes.
func RetryableCode(code string) bool {
	switch code {
	case CodeDraining, CodeTooManyConnections, CodeOverloaded,
		CodeIdleTimeout, CodeShuttingDown, CodeTenantOverloaded:
		return true
	}
	return false
}
