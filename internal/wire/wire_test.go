package wire

import (
	"encoding/json"
	"testing"
)

// The daemon's v1 compatibility contract: a request that omits "v" must
// round-trip with V==0 (meaning Version), and report lines must always
// carry "v" even when every optional field is empty.
func TestRequestVersionOmittedMeansZero(t *testing.T) {
	var req Request
	if err := json.Unmarshal([]byte(`{"memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.V != 0 {
		t.Errorf("omitted v decoded as %d, want 0", req.V)
	}
	if req.Memory != 8 || len(req.Buffers) != 1 {
		t.Errorf("request body misdecoded: %+v", req)
	}
}

func TestResponseAlwaysCarriesVersion(t *testing.T) {
	b, err := json.Marshal(Response{V: Version, Outcome: OutcomeRejected})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	if v, ok := raw["v"].(float64); !ok || v != Version {
		t.Errorf(`marshalled report %s: "v" = %v, want %d`, b, raw["v"], Version)
	}
}

func TestRetryableCode(t *testing.T) {
	retryable := []string{CodeDraining, CodeTooManyConnections, CodeOverloaded, CodeIdleTimeout, CodeShuttingDown, CodeTenantOverloaded}
	permanent := []string{CodeBadRequest, CodeUnsupportedVersion, CodeLineTooLong, CodeTruncatedLine, CodeWatchdogKilled, CodeDeadlineExceededInQueue, "", "unknown"}
	for _, c := range retryable {
		if !RetryableCode(c) {
			t.Errorf("RetryableCode(%q) = false, want true", c)
		}
	}
	for _, c := range permanent {
		if RetryableCode(c) {
			t.Errorf("RetryableCode(%q) = true, want false", c)
		}
	}
}

// TestRequestForwardCompat pins the v1 evolution contract from both sides:
// a daemon predating priority/tenant (modelled by a decoder into the old
// field set) ignores the new optional fields, and a new daemon decodes a
// request that omits them to the zero values (batch class, anonymous
// tenant).
func TestRequestForwardCompat(t *testing.T) {
	// New client → old daemon: the old schema had no priority/tenant, and
	// encoding/json drops unknown fields, so the line still decodes.
	line := []byte(`{"memory":8,"buffers":[{"start":0,"end":4,"size":4}],"priority":"interactive","tenant":"team-a","some_future_field":{"x":1}}`)
	var old struct {
		V       int      `json:"v,omitempty"`
		Memory  int64    `json:"memory"`
		Buffers []Buffer `json:"buffers"`
	}
	if err := json.Unmarshal(line, &old); err != nil {
		t.Fatalf("old daemon rejects a new-client line: %v", err)
	}
	if old.Memory != 8 || len(old.Buffers) != 1 {
		t.Errorf("old daemon misdecoded the known fields: %+v", old)
	}

	// Old client → new daemon: absent fields decode to the zero values.
	var req Request
	if err := json.Unmarshal([]byte(`{"memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.Priority != "" || req.Tenant != "" {
		t.Errorf("absent optional fields decoded non-zero: priority=%q tenant=%q", req.Priority, req.Tenant)
	}

	// And the new fields round-trip through the new schema.
	b, err := json.Marshal(Request{Memory: 8, Priority: "background", Tenant: "t9"})
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Priority != "background" || back.Tenant != "t9" {
		t.Errorf("priority/tenant did not round-trip: %+v", back)
	}
}

// TestResponseForwardCompat: an old client decoding a new daemon's report
// (with degraded_by_brownout set) must not choke, and a new client decoding
// an old report sees the marker false.
func TestResponseForwardCompat(t *testing.T) {
	line := []byte(`{"v":1,"outcome":"solved","degraded_by_brownout":true,"offsets":[0]}`)
	var old struct {
		V       int     `json:"v"`
		Outcome string  `json:"outcome"`
		Offsets []int64 `json:"offsets,omitempty"`
	}
	if err := json.Unmarshal(line, &old); err != nil {
		t.Fatalf("old client rejects a new-daemon report: %v", err)
	}
	var resp Response
	if err := json.Unmarshal([]byte(`{"v":1,"outcome":"solved","offsets":[0]}`), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.DegradedByBrownout {
		t.Error("absent marker decoded true")
	}
}
