package wire

import (
	"encoding/json"
	"testing"
)

// The daemon's v1 compatibility contract: a request that omits "v" must
// round-trip with V==0 (meaning Version), and report lines must always
// carry "v" even when every optional field is empty.
func TestRequestVersionOmittedMeansZero(t *testing.T) {
	var req Request
	if err := json.Unmarshal([]byte(`{"memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.V != 0 {
		t.Errorf("omitted v decoded as %d, want 0", req.V)
	}
	if req.Memory != 8 || len(req.Buffers) != 1 {
		t.Errorf("request body misdecoded: %+v", req)
	}
}

func TestResponseAlwaysCarriesVersion(t *testing.T) {
	b, err := json.Marshal(Response{V: Version, Outcome: OutcomeRejected})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	if v, ok := raw["v"].(float64); !ok || v != Version {
		t.Errorf(`marshalled report %s: "v" = %v, want %d`, b, raw["v"], Version)
	}
}

func TestRetryableCode(t *testing.T) {
	retryable := []string{CodeDraining, CodeTooManyConnections, CodeOverloaded, CodeIdleTimeout, CodeShuttingDown}
	permanent := []string{CodeBadRequest, CodeUnsupportedVersion, CodeLineTooLong, CodeTruncatedLine, CodeWatchdogKilled, "", "unknown"}
	for _, c := range retryable {
		if !RetryableCode(c) {
			t.Errorf("RetryableCode(%q) = false, want true", c)
		}
	}
	for _, c := range permanent {
		if RetryableCode(c) {
			t.Errorf("RetryableCode(%q) = true, want false", c)
		}
	}
}
