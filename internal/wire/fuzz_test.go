package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzWire throws arbitrary bytes at wire request parsing — the exact
// operation telamallocd performs on every untrusted line it reads — and
// checks the schema's two safety properties: decoding never panics, and
// any line that decodes re-encodes to a line that decodes to the same
// request (marshalling is a fixed point, so a proxy that re-serialises
// requests cannot corrupt them).
func FuzzWire(f *testing.F) {
	f.Add([]byte(`{"memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`))
	f.Add([]byte(`{"v":1,"id":"a","memory":8,"buffers":[],"priority":"interactive","tenant":"t"}`))
	f.Add([]byte(`{"priority":" ","tenant":"` + string(bytes.Repeat([]byte("x"), 64)) + `"}`))
	f.Add([]byte(`{"memory":-1,"buffers":[{"start":9,"end":0,"size":-5,"align":3}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, line []byte) {
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			return // invalid lines are rejected with CodeBadRequest; nothing more to check
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("decoded request failed to re-encode: %v (line %q)", err, line)
		}
		var again Request
		if err := json.Unmarshal(out, &again); err != nil {
			t.Fatalf("re-encoded request failed to decode: %v (encoded %q)", err, out)
		}
		b1, _ := json.Marshal(again)
		if !bytes.Equal(out, b1) {
			t.Fatalf("marshalling is not a fixed point:\n first: %s\n again: %s", out, b1)
		}
	})
}
