// Package spill implements the fallback the paper's introduction describes
// for when the allocator cannot find a packing: "the framework must apply
// techniques such as rematerialization or sharding to reduce on-chip memory
// pressure at the expense of extra computations". This package plans which
// buffers to demote to off-chip memory (equivalently: rematerialise) so
// that the remaining set becomes allocatable, trying to give up as little
// on-chip traffic as possible.
//
// The planner is greedy: while the allocator fails, it inspects the most
// contended time range and evicts the live buffer with the lowest
// cost-per-byte-of-relief, then retries. Solving the eviction set optimally
// is itself NP-hard; the greedy matches what production compilers do.
package spill

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/portfolio"
)

// ErrCannotFit is returned when even spilling every eligible buffer leaves
// the problem unsolvable (e.g. a single pinned buffer exceeds memory).
var ErrCannotFit = errors.New("spill: problem unsolvable even with maximum spilling")

// Request configures a spill plan.
type Request struct {
	// Problem is the allocation problem to make feasible. Not mutated.
	Problem *buffers.Problem
	// Weights[i] is the cost of spilling buffer i (e.g. bytes re-fetched
	// from DRAM, or recomputation cost for rematerialisation). Nil means
	// every buffer costs its size.
	Weights []int64
	// Pinned[i] marks buffers that must stay on-chip (e.g. DMA targets).
	// Nil means everything is spillable.
	Pinned []bool
	// Allocator packs the retained set; typically TelaMalloc.
	Allocator heuristics.Allocator
	// MaxSpills caps evictions (0 = no cap).
	MaxSpills int
	// Ctx, when non-nil, cancels planning: it is checked before every
	// allocation attempt, and allocators implementing
	// portfolio.ContextAllocator observe it mid-solve too.
	Ctx context.Context
}

// ErrCancelled is returned when Request.Ctx is done before a plan is found.
var ErrCancelled = errors.New("spill: planning cancelled")

// ErrAllocatorPanic is wrapped when the packing allocator panics during
// planning. The panic is contained, but planning aborts: a crashing
// allocator would fail every retained set, and evicting buffers to work
// around it would misreport an internal failure as a capacity problem.
var ErrAllocatorPanic = errors.New("spill: allocator panicked")

// Plan is the result of planning.
type Plan struct {
	// Solution places every retained buffer; spilled buffers have offset -1.
	Solution *buffers.Solution
	// Spilled lists the evicted buffer IDs in eviction order.
	Spilled []int
	// SpillCost is the summed weight of evicted buffers.
	SpillCost int64
	// Attempts counts allocator invocations.
	Attempts int
}

// Make plans spills until the allocator succeeds. If the problem is already
// feasible, no buffers are spilled.
func Make(req Request) (*Plan, error) {
	p := req.Problem
	n := len(p.Buffers)
	if req.Allocator == nil {
		return nil, errors.New("spill: no allocator provided")
	}
	weights := req.Weights
	if weights == nil {
		weights = make([]int64, n)
		for i, b := range p.Buffers {
			weights[i] = b.Size
		}
	} else if len(weights) != n {
		return nil, fmt.Errorf("spill: %d weights for %d buffers", len(weights), n)
	}
	if req.Pinned != nil && len(req.Pinned) != n {
		return nil, fmt.Errorf("spill: %d pinned flags for %d buffers", len(req.Pinned), n)
	}
	pinned := func(i int) bool { return req.Pinned != nil && req.Pinned[i] }

	retained := make([]bool, n)
	for i := range retained {
		retained[i] = true
	}
	plan := &Plan{}
	for {
		if req.Ctx != nil && req.Ctx.Err() != nil {
			return nil, fmt.Errorf("%w after %d attempts: %v", ErrCancelled, plan.Attempts, req.Ctx.Err())
		}
		sub, back := subset(p, retained)
		plan.Attempts++
		sol, err := allocate(req, sub)
		if err == nil {
			full := buffers.NewSolution(n)
			for subID, off := range sol.Offsets {
				full.Offsets[back[subID]] = off
			}
			plan.Solution = full
			return plan, nil
		}
		if errors.Is(err, ErrAllocatorPanic) || errors.Is(err, core.ErrPanic) {
			return nil, err
		}
		if req.MaxSpills > 0 && len(plan.Spilled) >= req.MaxSpills {
			return nil, fmt.Errorf("%w: spill cap %d reached", ErrCannotFit, req.MaxSpills)
		}
		victim := chooseVictim(p, retained, weights, pinned)
		if victim < 0 {
			return nil, ErrCannotFit
		}
		retained[victim] = false
		plan.Spilled = append(plan.Spilled, victim)
		plan.SpillCost += weights[victim]
	}
}

// allocate runs one packing attempt inside a containment boundary — a
// panicking allocator becomes a failed attempt-chain, not a crashed planner
// — and forwards the request context to allocators that can observe it.
func allocate(req Request, sub *buffers.Problem) (sol *buffers.Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol, err = nil, fmt.Errorf("%w: %v", ErrAllocatorPanic, r)
		}
	}()
	if cm, ok := req.Allocator.(portfolio.ContextAllocator); ok && req.Ctx != nil {
		return cm.AllocateContext(req.Ctx, sub)
	}
	return req.Allocator.Allocate(sub)
}

// chooseVictim picks the cheapest useful eviction: among buffers live during
// the currently most-contended time range, the one with the lowest
// weight-per-byte-of-relief (ties: larger size first, then lower ID).
// Returns -1 when nothing is evictable.
func chooseVictim(p *buffers.Problem, retained []bool, weights []int64, pinned func(int) bool) int {
	sub, back := subset(p, retained)
	if len(sub.Buffers) == 0 {
		return -1
	}
	prof := buffers.Contention(sub)
	var peakStep buffers.ContentionStep
	for _, s := range prof.Steps {
		if s.Contention > peakStep.Contention {
			peakStep = s
		}
	}
	type cand struct {
		id    int
		score float64 // weight per byte of relief; lower is better
		size  int64
	}
	var cands []cand
	for subID, b := range sub.Buffers {
		orig := back[subID]
		if pinned(orig) {
			continue
		}
		if b.Start < peakStep.End && peakStep.Start < b.End {
			cands = append(cands, cand{
				id:    orig,
				score: float64(weights[orig]) / float64(b.Size),
				size:  b.Size,
			})
		}
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		if cands[i].size != cands[j].size {
			return cands[i].size > cands[j].size
		}
		return cands[i].id < cands[j].id
	})
	return cands[0].id
}

// subset extracts the retained buffers as a normalized problem plus the
// mapping back to original IDs.
func subset(p *buffers.Problem, retained []bool) (*buffers.Problem, []int) {
	sub := &buffers.Problem{Memory: p.Memory, Name: p.Name}
	var back []int
	for i, b := range p.Buffers {
		if retained[i] {
			sub.Buffers = append(sub.Buffers, b)
			back = append(back, i)
		}
	}
	sub.Normalize()
	return sub, back
}
