package spill

import (
	"errors"
	"math/rand"
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/workload"
)

func tmAlloc() heuristics.Allocator {
	return core.Allocator{Config: core.Config{MaxSteps: 100000}}
}

func TestNoSpillWhenFeasible(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
		Memory: 8,
	}
	p.Normalize()
	plan, err := Make(Request{Problem: p, Allocator: tmAlloc()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Spilled) != 0 || plan.SpillCost != 0 {
		t.Errorf("spilled %v on a feasible problem", plan.Spilled)
	}
	if err := plan.Solution.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestSpillsMinimalBufferOnSimpleOverflow(t *testing.T) {
	// Three fully overlapping buffers, memory fits only two. The cheapest
	// per-byte eviction is the big low-weight one.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
		Memory: 8,
	}
	p.Normalize()
	weights := []int64{100, 1, 100} // buffer 1 is cheap to spill
	plan, err := Make(Request{Problem: p, Weights: weights, Allocator: tmAlloc()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Spilled) != 1 || plan.Spilled[0] != 1 {
		t.Errorf("Spilled = %v, want [1]", plan.Spilled)
	}
	if plan.SpillCost != 1 {
		t.Errorf("SpillCost = %d, want 1", plan.SpillCost)
	}
	if plan.Solution.Offsets[1] != -1 {
		t.Error("spilled buffer has an on-chip offset")
	}
	// Retained buffers form a valid packing.
	sub := &buffers.Problem{Memory: 8, Buffers: []buffers.Buffer{p.Buffers[0], p.Buffers[2]}}
	sub.Normalize()
	s := &buffers.Solution{Offsets: []int64{plan.Solution.Offsets[0], plan.Solution.Offsets[2]}}
	if err := s.Validate(sub); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedBuffersAreNeverSpilled(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
		Memory: 8,
	}
	p.Normalize()
	pinned := []bool{true, true, false}
	plan, err := Make(Request{Problem: p, Pinned: pinned, Allocator: tmAlloc()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Spilled) != 1 || plan.Spilled[0] != 2 {
		t.Errorf("Spilled = %v, want [2]", plan.Spilled)
	}
}

func TestCannotFit(t *testing.T) {
	// Everything pinned and infeasible: must report ErrCannotFit.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
		Memory: 4,
	}
	p.Normalize()
	pinned := []bool{true, true}
	_, err := Make(Request{Problem: p, Pinned: pinned, Allocator: tmAlloc()})
	if !errors.Is(err, ErrCannotFit) {
		t.Errorf("err = %v, want ErrCannotFit", err)
	}
}

func TestMaxSpillsCap(t *testing.T) {
	p := &buffers.Problem{Memory: 4}
	for i := 0; i < 6; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 4})
	}
	p.Normalize()
	_, err := Make(Request{Problem: p, Allocator: tmAlloc(), MaxSpills: 2})
	if !errors.Is(err, ErrCannotFit) {
		t.Errorf("err = %v, want ErrCannotFit (cap)", err)
	}
	plan, err := Make(Request{Problem: p, Allocator: tmAlloc(), MaxSpills: 5})
	if err != nil {
		t.Fatalf("5 spills should suffice: %v", err)
	}
	if len(plan.Spilled) != 5 {
		t.Errorf("Spilled = %v, want 5 evictions", plan.Spilled)
	}
}

func TestRequestValidation(t *testing.T) {
	p := &buffers.Problem{Memory: 8, Buffers: []buffers.Buffer{{Start: 0, End: 1, Size: 1}}}
	p.Normalize()
	if _, err := Make(Request{Problem: p}); err == nil {
		t.Error("nil allocator accepted")
	}
	if _, err := Make(Request{Problem: p, Allocator: tmAlloc(), Weights: []int64{1, 2}}); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := Make(Request{Problem: p, Allocator: tmAlloc(), Pinned: []bool{true, false}}); err == nil {
		t.Error("mismatched pinned accepted")
	}
}

func TestSpillMakesRealModelsFitUndersizedMemory(t *testing.T) {
	// Give a model proxy only 85% of its contention peak: unsolvable
	// without spilling, solvable after evicting some buffers.
	for _, name := range []string{"FPN Model", "Segmentation"} {
		m, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Generate(1)
		peak := buffers.Contention(p).Peak()
		p.Memory = peak * 85 / 100
		plan, err := Make(Request{Problem: p, Allocator: tmAlloc()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(plan.Spilled) == 0 {
			t.Errorf("%s: solved under-peak memory without spilling?!", name)
		}
		// Retained set must be valid.
		retained := &buffers.Problem{Memory: p.Memory, Name: p.Name}
		var offs []int64
		for i, b := range p.Buffers {
			if plan.Solution.Offsets[i] >= 0 {
				retained.Buffers = append(retained.Buffers, b)
				offs = append(offs, plan.Solution.Offsets[i])
			}
		}
		retained.Normalize()
		s := &buffers.Solution{Offsets: offs}
		if err := s.Validate(retained); err != nil {
			t.Errorf("%s: invalid retained packing: %v", name, err)
		}
		t.Logf("%s: spilled %d of %d buffers (cost %d) in %d attempts",
			name, len(plan.Spilled), len(p.Buffers), plan.SpillCost, plan.Attempts)
	}
}

func TestSpillIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := &buffers.Problem{Memory: 0}
	for i := 0; i < 30; i++ {
		start := rng.Int63n(20)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start, End: start + 1 + rng.Int63n(10), Size: 1 + rng.Int63n(10),
		})
	}
	p.Normalize()
	p.Memory = buffers.Contention(p).Peak() * 9 / 10
	a, errA := Make(Request{Problem: p, Allocator: tmAlloc()})
	b, errB := Make(Request{Problem: p, Allocator: tmAlloc()})
	if (errA == nil) != (errB == nil) {
		t.Fatalf("nondeterministic outcome: %v vs %v", errA, errB)
	}
	if errA == nil {
		if len(a.Spilled) != len(b.Spilled) {
			t.Fatalf("nondeterministic spills: %v vs %v", a.Spilled, b.Spilled)
		}
		for i := range a.Spilled {
			if a.Spilled[i] != b.Spilled[i] {
				t.Fatalf("spill order differs: %v vs %v", a.Spilled, b.Spilled)
			}
		}
	}
}
