package schedule

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"telamalloc/internal/buffers"
)

// chainDAG builds a linear chain of n ops.
func chainDAG(n int, size int64) *DAG {
	d := &DAG{}
	for i := 0; i < n; i++ {
		if i == 0 {
			d.Deps = append(d.Deps, nil)
		} else {
			d.Deps = append(d.Deps, []int{i - 1})
		}
		d.OutSize = append(d.OutSize, size)
	}
	return d
}

// diamondDAG builds: 0 -> {1, 2} -> 3 with given sizes.
func diamondDAG(sizes [4]int64) *DAG {
	return &DAG{
		Deps:    [][]int{nil, {0}, {0}, {1, 2}},
		OutSize: sizes[:],
	}
}

func TestValidate(t *testing.T) {
	if err := chainDAG(5, 1).Validate(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	bad := &DAG{Deps: [][]int{{1}, {0}}, OutSize: []int64{1, 1}}
	if err := bad.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle: %v", err)
	}
	oob := &DAG{Deps: [][]int{{7}}, OutSize: []int64{1}}
	if err := oob.Validate(); !errors.Is(err, ErrDep) {
		t.Errorf("out-of-range dep: %v", err)
	}
	shape := &DAG{Deps: [][]int{nil}, OutSize: []int64{1, 2}}
	if err := shape.Validate(); !errors.Is(err, ErrShape) {
		t.Errorf("shape: %v", err)
	}
}

func TestASAPRespectsDependencies(t *testing.T) {
	d := diamondDAG([4]int64{1, 1, 1, 1})
	order, err := d.Schedule(ASAP)
	if err != nil {
		t.Fatal(err)
	}
	pos := invert(order)
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Errorf("dependency violated in %v", order)
	}
}

func TestMinLiveBeatsASAPOnWideFanOut(t *testing.T) {
	// A producer feeding many heavy branches that each reduce to a small
	// tensor: ASAP runs all heavy branch ops back-to-back (stacking big
	// intermediates); min-live finishes each branch before starting the
	// next.
	// Index layout matters: all heavy ops get lower indices than the
	// reducers, so index-ordered ASAP runs every heavy op first (stacking
	// the intermediates), while min-live finishes one branch at a time.
	d := &DAG{}
	d.Deps = append(d.Deps, nil) // 0: source
	d.OutSize = append(d.OutSize, 10)
	const branches = 4
	for b := 0; b < branches; b++ { // ops 1..4: heavy intermediates
		d.Deps = append(d.Deps, []int{0})
		d.OutSize = append(d.OutSize, 100)
	}
	var heads []int
	for b := 0; b < branches; b++ { // ops 5..8: reducers
		d.Deps = append(d.Deps, []int{1 + b})
		d.OutSize = append(d.OutSize, 1)
		heads = append(heads, len(d.OutSize)-1)
	}
	d.Deps = append(d.Deps, heads) // sink
	d.OutSize = append(d.OutSize, 1)

	asap, err := d.Schedule(ASAP)
	if err != nil {
		t.Fatal(err)
	}
	minLive, err := d.Schedule(MinLiveBytes)
	if err != nil {
		t.Fatal(err)
	}
	peakASAP, _ := d.PeakLiveBytes(asap, "asap")
	peakML, _ := d.PeakLiveBytes(minLive, "ml")
	if peakML >= peakASAP {
		t.Errorf("min-live peak %d not below ASAP peak %d", peakML, peakASAP)
	}
}

func TestProblemLiveRanges(t *testing.T) {
	d := diamondDAG([4]int64{10, 20, 30, 40})
	order := []int{0, 1, 2, 3}
	p, err := d.Problem(order, "diamond")
	if err != nil {
		t.Fatal(err)
	}
	// Op 0's output is consumed by ops 1 (t=1) and 2 (t=2): live [0, 3).
	if p.Buffers[0].Start != 0 || p.Buffers[0].End != 3 {
		t.Errorf("op0 live [%d,%d), want [0,3)", p.Buffers[0].Start, p.Buffers[0].End)
	}
	// Op 3's output has no consumers: live [3, 4).
	if p.Buffers[3].Start != 3 || p.Buffers[3].End != 4 {
		t.Errorf("op3 live [%d,%d), want [3,4)", p.Buffers[3].Start, p.Buffers[3].End)
	}
	if p.Buffers[1].Size != 20 {
		t.Errorf("size lost: %+v", p.Buffers[1])
	}
	// Bad orders are rejected.
	if _, err := d.Problem([]int{0, 1}, "x"); !errors.Is(err, ErrShape) {
		t.Errorf("short order accepted: %v", err)
	}
	if _, err := d.Problem([]int{0, 1, 1, 3}, "x"); !errors.Is(err, ErrShape) {
		t.Errorf("duplicate order accepted: %v", err)
	}
}

func TestSchedulesAreValidPermutationsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAG(rng, 3+rng.Intn(30))
		for _, pol := range []Policy{ASAP, MinLiveBytes} {
			order, err := d.Schedule(pol)
			if err != nil {
				return false
			}
			pos := invert(order)
			for i, deps := range d.Deps {
				for _, dep := range deps {
					if pos[dep] >= pos[i] {
						return false
					}
				}
			}
			p, err := d.Problem(order, "rand")
			if err != nil {
				return false
			}
			q := p.Clone()
			q.Memory = q.TotalBytes()
			if q.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMinLiveNeverWorseInAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var asapTotal, mlTotal float64
	for trial := 0; trial < 40; trial++ {
		d := randomDAG(rng, 20+rng.Intn(30))
		asap, err := d.Schedule(ASAP)
		if err != nil {
			t.Fatal(err)
		}
		ml, err := d.Schedule(MinLiveBytes)
		if err != nil {
			t.Fatal(err)
		}
		pa, _ := d.PeakLiveBytes(asap, "a")
		pm, _ := d.PeakLiveBytes(ml, "m")
		asapTotal += float64(pa)
		mlTotal += float64(pm)
	}
	if mlTotal > asapTotal {
		t.Errorf("memory-aware scheduling worse in aggregate: %.0f vs %.0f", mlTotal, asapTotal)
	}
	t.Logf("aggregate peak: ASAP %.0f vs min-live %.0f (%.1f%% saved)",
		asapTotal, mlTotal, 100*(1-mlTotal/asapTotal))
}

func TestPoliciesAffectAllocatorInput(t *testing.T) {
	// The same DAG under two schedules yields different contention peaks —
	// the §2.3 point that earlier passes change the allocation problem.
	rng := rand.New(rand.NewSource(4))
	differs := false
	for trial := 0; trial < 10 && !differs; trial++ {
		d := randomDAG(rng, 30)
		a, _ := d.Schedule(ASAP)
		m, _ := d.Schedule(MinLiveBytes)
		pa, _ := d.PeakLiveBytes(a, "a")
		pm, _ := d.PeakLiveBytes(m, "m")
		if pa != pm {
			differs = true
		}
	}
	if !differs {
		t.Error("schedules never changed the allocation problem")
	}
}

func randomDAG(rng *rand.Rand, n int) *DAG {
	d := &DAG{}
	for i := 0; i < n; i++ {
		var deps []int
		for k := 0; k < rng.Intn(3) && i > 0; k++ {
			deps = append(deps, rng.Intn(i)) // edges only point backwards: acyclic
		}
		d.Deps = append(d.Deps, dedup(deps))
		d.OutSize = append(d.OutSize, 1+rng.Int63n(100))
	}
	return d
}

func dedup(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func invert(order []int) []int {
	pos := make([]int, len(order))
	for t, op := range order {
		pos[op] = t
	}
	return pos
}

var _ = buffers.Buffer{} // keep the import for the problem checks above
