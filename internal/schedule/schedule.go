// Package schedule implements the compiler pass that runs *before* memory
// allocation: ordering a model's operator DAG into the logical timeline the
// allocator sees. The paper's §2.3 notes that the allocation problem
// "depends not only on the model but also on ... earlier compiler passes";
// this package makes that dependency concrete — the same DAG scheduled two
// ways yields allocation problems of very different difficulty.
//
// Two list-scheduling policies are provided:
//
//   - ASAP: plain topological order (dependency-ready ops run immediately,
//     lowest index first) — simple, but can hold many tensors live at once.
//   - MinLiveBytes: memory-aware list scheduling — among ready ops, pick
//     the one that minimises the resulting live-byte count, the classic
//     peak-memory reduction pass production compilers run before
//     allocation.
package schedule

import (
	"errors"
	"fmt"

	"telamalloc/internal/buffers"
)

// DAG is an operator dependency graph. Each op produces exactly one output
// tensor (size OutSize[i]); op j consuming op i's output is expressed by
// listing i in Deps[j].
type DAG struct {
	// Deps[i] lists the ops whose outputs op i consumes.
	Deps [][]int
	// OutSize[i] is the byte size of op i's output tensor.
	OutSize []int64
	// OutAlign[i] is the output tensor's alignment (0 = none).
	OutAlign []int64
}

// NumOps returns the number of operators.
func (d *DAG) NumOps() int { return len(d.OutSize) }

// Errors returned by Validate and Schedule.
var (
	ErrShape = errors.New("schedule: inconsistent DAG shapes")
	ErrCycle = errors.New("schedule: dependency cycle")
	ErrDep   = errors.New("schedule: dependency index out of range")
)

// Validate checks shapes, dependency ranges, and acyclicity.
func (d *DAG) Validate() error {
	n := d.NumOps()
	if len(d.Deps) != n || (d.OutAlign != nil && len(d.OutAlign) != n) {
		return ErrShape
	}
	for i, deps := range d.Deps {
		for _, dep := range deps {
			if dep < 0 || dep >= n {
				return fmt.Errorf("%w: op %d depends on %d", ErrDep, i, dep)
			}
		}
	}
	if _, err := d.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns a Kahn topological order (lowest index first among
// ready ops) or ErrCycle.
func (d *DAG) topoOrder() ([]int, error) {
	n := d.NumOps()
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, deps := range d.Deps {
		indeg[i] = len(deps)
		for _, dep := range deps {
			succ[dep] = append(succ[dep], i)
		}
	}
	// ready kept sorted ascending by scanning; n is small (compile-time).
	var order []int
	done := make([]bool, n)
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ {
			if !done[i] && indeg[i] == 0 {
				next = i
				break
			}
		}
		if next < 0 {
			return nil, ErrCycle
		}
		done[next] = true
		order = append(order, next)
		for _, s := range succ[next] {
			indeg[s]--
		}
	}
	return order, nil
}

// Policy selects the scheduling strategy.
type Policy int

const (
	// ASAP is plain topological order.
	ASAP Policy = iota
	// MinLiveBytes greedily minimises live tensor bytes at each step.
	MinLiveBytes
)

func (p Policy) String() string {
	if p == MinLiveBytes {
		return "min-live-bytes"
	}
	return "asap"
}

// Schedule orders the DAG under the policy. The result is a permutation of
// op indices; position in the slice is the op's logical timestamp.
func (d *DAG) Schedule(policy Policy) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if policy == ASAP {
		return d.topoOrder()
	}
	return d.minLiveSchedule()
}

// minLiveSchedule is greedy list scheduling: at each step, among
// dependency-ready ops, run the one that minimises the live-byte total
// after it executes (its output becomes live; inputs whose last remaining
// consumer it was become dead). Ties break toward the op freeing the most
// bytes, then the lowest index.
func (d *DAG) minLiveSchedule() ([]int, error) {
	n := d.NumOps()
	indeg := make([]int, n)
	succ := make([][]int, n)
	remainingConsumers := make([]int, n)
	for i, deps := range d.Deps {
		indeg[i] = len(deps)
		for _, dep := range deps {
			succ[dep] = append(succ[dep], i)
			remainingConsumers[dep]++
		}
	}
	done := make([]bool, n)
	var order []int
	var liveBytes int64
	for len(order) < n {
		best := -1
		var bestLive, bestFreed int64
		for i := 0; i < n; i++ {
			if done[i] || indeg[i] != 0 {
				continue
			}
			var freed int64
			for _, dep := range d.Deps[i] {
				if remainingConsumers[dep] == 1 {
					freed += d.OutSize[dep]
				}
			}
			after := liveBytes + d.OutSize[i] - freed
			if best < 0 || after < bestLive || (after == bestLive && freed > bestFreed) {
				best, bestLive, bestFreed = i, after, freed
			}
		}
		if best < 0 {
			return nil, ErrCycle
		}
		done[best] = true
		order = append(order, best)
		liveBytes += d.OutSize[best]
		for _, dep := range d.Deps[best] {
			remainingConsumers[dep]--
			if remainingConsumers[dep] == 0 {
				liveBytes -= d.OutSize[dep]
			}
		}
		for _, s := range succ[best] {
			indeg[s]--
		}
	}
	return order, nil
}

// Problem lowers a schedule to the allocation problem the allocator sees:
// op i's output is live from its position until just after its last
// consumer's position (or just its own slot if unconsumed). Memory is left
// zero for the caller to size.
func (d *DAG) Problem(order []int, name string) (*buffers.Problem, error) {
	n := d.NumOps()
	if len(order) != n {
		return nil, ErrShape
	}
	pos := make([]int64, n)
	seen := make([]bool, n)
	for t, op := range order {
		if op < 0 || op >= n || seen[op] {
			return nil, fmt.Errorf("%w: bad order entry %d", ErrShape, op)
		}
		seen[op] = true
		pos[op] = int64(t)
	}
	p := &buffers.Problem{Name: name}
	for i := 0; i < n; i++ {
		end := pos[i] + 1
		for _, j := range consumersOf(d, i) {
			if pos[j]+1 > end {
				end = pos[j] + 1
			}
		}
		var align int64
		if d.OutAlign != nil {
			align = d.OutAlign[i]
		}
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: pos[i],
			End:   end,
			Size:  d.OutSize[i],
			Align: align,
		})
	}
	p.Normalize()
	return p, nil
}

func consumersOf(d *DAG, op int) []int {
	var out []int
	for j, deps := range d.Deps {
		for _, dep := range deps {
			if dep == op {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// PeakLiveBytes evaluates a schedule's peak live tensor bytes — the lower
// bound the schedule imposes on any allocator.
func (d *DAG) PeakLiveBytes(order []int, name string) (int64, error) {
	p, err := d.Problem(order, name)
	if err != nil {
		return 0, err
	}
	return buffers.Contention(p).Peak(), nil
}
