package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSkylineBasic(t *testing.T) {
	s := New([]int64{0, 2, 5, 8, 10})
	if got := s.Height(0, 10); got != 0 {
		t.Fatalf("initial Height = %d, want 0", got)
	}
	s.Place(0, 5, 4) // block occupying [0,5) up to address 4
	if got := s.Height(0, 2); got != 4 {
		t.Errorf("Height(0,2) = %d, want 4", got)
	}
	if got := s.Height(5, 10); got != 0 {
		t.Errorf("Height(5,10) = %d, want 0", got)
	}
	s.Place(2, 8, 10)
	if got := s.Height(0, 10); got != 10 {
		t.Errorf("Height(0,10) = %d, want 10", got)
	}
	if got := s.Height(0, 2); got != 4 {
		t.Errorf("Height(0,2) = %d, want 4 (unchanged)", got)
	}
	if got := s.Height(8, 10); got != 0 {
		t.Errorf("Height(8,10) = %d, want 0", got)
	}
	if got := s.Peak(); got != 10 {
		t.Errorf("Peak = %d, want 10", got)
	}
}

func TestSkylineTetrisPlacement(t *testing.T) {
	// Emulate the baseline heuristic: place each block at Height(start,end).
	s := FromBuffers([]int64{0, 0, 2}, []int64{10, 10, 8})
	blocks := []struct {
		start, end, size int64
	}{
		{0, 10, 4},
		{0, 10, 4},
		{2, 8, 8},
	}
	var tops []int64
	for _, b := range blocks {
		pos := s.Height(b.start, b.end)
		s.Place(b.start, b.end, pos+b.size)
		tops = append(tops, pos)
	}
	want := []int64{0, 4, 8}
	for i := range want {
		if tops[i] != want[i] {
			t.Errorf("block %d placed at %d, want %d", i, tops[i], want[i])
		}
	}
}

func TestSkylineEmptyAndDegenerate(t *testing.T) {
	s := New(nil)
	if got := s.Height(0, 10); got != 0 {
		t.Errorf("empty skyline Height = %d", got)
	}
	s.Place(0, 10, 5) // must not panic
	if got := s.Peak(); got != 0 {
		t.Errorf("empty skyline Peak = %d", got)
	}
	one := New([]int64{5})
	one.Place(5, 5, 9)
	if got := one.Height(5, 5); got != 0 {
		t.Errorf("zero-width Height = %d", got)
	}
}

func TestSkylineMatchesBruteForce(t *testing.T) {
	// Property: the segment tree agrees with a per-slot array model.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = 64
		coords := make([]int64, horizon+1)
		for i := range coords {
			coords[i] = int64(i)
		}
		s := New(coords)
		ref := make([]int64, horizon)
		for step := 0; step < 40; step++ {
			lo := rng.Int63n(horizon)
			hi := lo + 1 + rng.Int63n(horizon-lo)
			if rng.Intn(2) == 0 {
				// Query
				var want int64
				for x := lo; x < hi; x++ {
					if ref[x] > want {
						want = ref[x]
					}
				}
				if got := s.Height(lo, hi); got != want {
					return false
				}
			} else {
				// Place on top of the current skyline.
				var base int64
				for x := lo; x < hi; x++ {
					if ref[x] > base {
						base = ref[x]
					}
				}
				top := base + 1 + rng.Int63n(16)
				s.Place(lo, hi, top)
				for x := lo; x < hi; x++ {
					ref[x] = top
				}
			}
		}
		var wantPeak int64
		for _, v := range ref {
			if v > wantPeak {
				wantPeak = v
			}
		}
		return s.Peak() == wantPeak
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSkylineDuplicateCoords(t *testing.T) {
	s := New([]int64{0, 5, 5, 5, 10, 0})
	s.Place(0, 5, 3)
	if got := s.Height(0, 10); got != 3 {
		t.Errorf("Height = %d, want 3", got)
	}
}
