// Package skyline maintains the "skyline" of already-placed buffers: the
// maximum occupied address for every logical time slot. Both the baseline
// greedy heuristic (§3.1 of the paper) and TelaMalloc's simple placement
// strategy (Figure 8a) place each new block on top of this skyline, like
// pieces in a game of Tetris.
//
// The implementation is a lazy segment tree over coordinate-compressed time,
// supporting range-max queries and range assignment in O(log n).
package skyline

import "sort"

// Skyline tracks the maximum in-use address per time slot over a fixed set
// of time boundaries established at construction.
type Skyline struct {
	coords []int64 // sorted unique event coordinates; leaf i covers [coords[i], coords[i+1])
	n      int     // number of leaf segments
	maxv   []int64 // segment tree: max over subtree
	lazy   []int64 // pending assignment (-1 = none)
}

// New builds a skyline over the given time coordinates. Every Start and End
// that will later be passed to Height or Place must appear in coords;
// workloads derive coords from their buffers' endpoints.
func New(coords []int64) *Skyline {
	cs := append([]int64(nil), coords...)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	uniq := cs[:0]
	for i, c := range cs {
		if i == 0 || c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	n := len(uniq) - 1
	if n < 0 {
		n = 0
	}
	s := &Skyline{coords: uniq, n: n}
	if n > 0 {
		s.maxv = make([]int64, 4*n)
		s.lazy = make([]int64, 4*n)
		for i := range s.lazy {
			s.lazy[i] = -1
		}
	}
	return s
}

// FromBuffers builds a skyline whose coordinates are the start/end points of
// the given (start, end) pairs.
func FromBuffers(starts, ends []int64) *Skyline {
	coords := make([]int64, 0, len(starts)+len(ends))
	coords = append(coords, starts...)
	coords = append(coords, ends...)
	return New(coords)
}

// leafRange maps [start, end) to leaf index range [lo, hi). Both start and
// end must be registered coordinates.
func (s *Skyline) leafRange(start, end int64) (int, int) {
	lo := sort.Search(len(s.coords), func(i int) bool { return s.coords[i] >= start })
	hi := sort.Search(len(s.coords), func(i int) bool { return s.coords[i] >= end })
	return lo, hi
}

func (s *Skyline) push(node int) {
	if s.lazy[node] < 0 {
		return
	}
	for _, c := range [2]int{2*node + 1, 2*node + 2} {
		s.maxv[c] = s.lazy[node]
		s.lazy[c] = s.lazy[node]
	}
	s.lazy[node] = -1
}

func (s *Skyline) assign(node, nodeLo, nodeHi, lo, hi int, v int64) {
	if hi <= nodeLo || nodeHi <= lo {
		return
	}
	if lo <= nodeLo && nodeHi <= hi {
		s.maxv[node] = v
		s.lazy[node] = v
		return
	}
	s.push(node)
	mid := (nodeLo + nodeHi) / 2
	s.assign(2*node+1, nodeLo, mid, lo, hi, v)
	s.assign(2*node+2, mid, nodeHi, lo, hi, v)
	s.maxv[node] = max64(s.maxv[2*node+1], s.maxv[2*node+2])
}

func (s *Skyline) query(node, nodeLo, nodeHi, lo, hi int) int64 {
	if hi <= nodeLo || nodeHi <= lo {
		return 0
	}
	if lo <= nodeLo && nodeHi <= hi {
		return s.maxv[node]
	}
	s.push(node)
	mid := (nodeLo + nodeHi) / 2
	return max64(
		s.query(2*node+1, nodeLo, mid, lo, hi),
		s.query(2*node+2, mid, nodeHi, lo, hi),
	)
}

// Height returns the current skyline height (maximum occupied address) over
// the time range [start, end).
func (s *Skyline) Height(start, end int64) int64 {
	if s.n == 0 || start >= end {
		return 0
	}
	lo, hi := s.leafRange(start, end)
	if lo >= hi {
		return 0
	}
	return s.query(0, 0, s.n, lo, hi)
}

// Place records that the address range up to `top` is now occupied over
// [start, end). Callers compute top = position + size where position is at
// least Height(start, end); the skyline over the range is assigned to top.
func (s *Skyline) Place(start, end, top int64) {
	if s.n == 0 || start >= end {
		return
	}
	lo, hi := s.leafRange(start, end)
	if lo >= hi {
		return
	}
	s.assign(0, 0, s.n, lo, hi, top)
}

// Peak returns the maximum skyline height across all time.
func (s *Skyline) Peak() int64 {
	if s.n == 0 {
		return 0
	}
	return s.maxv[0]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
