package workload

import (
	"testing"

	"telamalloc/internal/buffers"
)

func TestStressModelsScale(t *testing.T) {
	want := map[string]int{
		"Transformer-24L": 280,
		"MobileNet-Large": 100,
		"DeepChain-2K":    1800,
	}
	for _, m := range StressModels {
		p := m.Generate(1)
		if len(p.Buffers) < want[m.Name] {
			t.Errorf("%s: %d buffers, want >= %d", m.Name, len(p.Buffers), want[m.Name])
		}
		q := p.Clone()
		q.Memory = q.TotalBytes()
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTransformerScoresDominate(t *testing.T) {
	// Attention-score tensors must be the largest buffers, several times
	// the hidden activations.
	p := GenTransformer(1)
	var maxSize int64
	for _, b := range p.Buffers {
		if b.Size > maxSize {
			maxSize = b.Size
		}
	}
	small := 0
	for _, b := range p.Buffers {
		if b.Size*3 < maxSize {
			small++
		}
	}
	if small < len(p.Buffers)/2 {
		t.Errorf("score tensors not dominant: only %d/%d buffers are small", small, len(p.Buffers))
	}
}

func TestStressModelsDeterministic(t *testing.T) {
	for _, m := range StressModels {
		a, b := m.Generate(3), m.Generate(3)
		if len(a.Buffers) != len(b.Buffers) {
			t.Fatalf("%s nondeterministic", m.Name)
		}
		for i := range a.Buffers {
			if a.Buffers[i] != b.Buffers[i] {
				t.Fatalf("%s: buffer %d differs", m.Name, i)
			}
		}
	}
}

func TestMobileNetBlockStructure(t *testing.T) {
	// Inverted residuals: expanded tensors noticeably larger than the
	// narrow block outputs.
	p := GenMobileNet(1)
	var sizes []int64
	for _, b := range p.Buffers {
		sizes = append(sizes, b.Size)
	}
	var mx, mn int64 = 0, 1 << 62
	for _, s := range sizes {
		if s > mx {
			mx = s
		}
		if s < mn {
			mn = s
		}
	}
	if mx < 4*mn {
		t.Errorf("expansion ratio too flat: max %d vs min %d", mx, mn)
	}
}

func TestDeepChainIsAllocatorFriendlyAtPeak(t *testing.T) {
	// Short lifetimes mean the greedy heuristic should need very little
	// headroom over the contention peak on the deep chain.
	p := GenDeepChain(1)
	peak := buffers.Contention(p).Peak()
	if peak <= 0 {
		t.Fatal("no contention")
	}
	ov := buffers.ComputeOverlaps(p)
	avgDeg := float64(2*ov.PairCount) / float64(len(p.Buffers))
	if avgDeg > 8 {
		t.Errorf("deep chain too entangled: avg degree %.1f", avgDeg)
	}
}
