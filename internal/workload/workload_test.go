package workload

import (
	"testing"

	"telamalloc/internal/buffers"
)

func TestGraphLowering(t *testing.T) {
	g := NewGraph()
	op0 := g.Op()
	a := g.Out(op0, 100, 32)
	op1 := g.Op()
	g.Use(a, op1)
	b := g.Out(op1, 200, 0)
	op2 := g.Op()
	g.Use(a, op2) // a consumed twice; lives to op2
	g.Use(b, op2)
	g.Scratch(op2, 50, 0)
	p := g.Problem("test")
	if len(p.Buffers) != 3 {
		t.Fatalf("got %d buffers, want 3", len(p.Buffers))
	}
	// a: produced op0, last use op2 -> [0, 3)
	if p.Buffers[0].Start != 0 || p.Buffers[0].End != 3 {
		t.Errorf("a live range [%d,%d), want [0,3)", p.Buffers[0].Start, p.Buffers[0].End)
	}
	if p.Buffers[0].Align != 32 || p.Buffers[0].Size != 100 {
		t.Errorf("a = %+v", p.Buffers[0])
	}
	// b: produced op1, last use op2 -> [1, 3)
	if p.Buffers[1].Start != 1 || p.Buffers[1].End != 3 {
		t.Errorf("b live range [%d,%d), want [1,3)", p.Buffers[1].Start, p.Buffers[1].End)
	}
	// scratch: [2, 3)
	if p.Buffers[2].Start != 2 || p.Buffers[2].End != 3 {
		t.Errorf("scratch live range [%d,%d), want [2,3)", p.Buffers[2].Start, p.Buffers[2].End)
	}
	if g.Ops() != 3 {
		t.Errorf("Ops = %d, want 3", g.Ops())
	}
}

func TestAllModelsGenerateValidProblems(t *testing.T) {
	for _, m := range Models {
		p := m.Generate(1)
		if len(p.Buffers) == 0 {
			t.Errorf("%s: no buffers", m.Name)
			continue
		}
		if p.Name != m.Name {
			t.Errorf("%s: problem named %q", m.Name, p.Name)
		}
		// Structural sanity at a generous memory limit.
		q := p.Clone()
		q.Memory = q.TotalBytes()
		if err := q.Validate(); err != nil {
			t.Errorf("%s: invalid problem: %v", m.Name, err)
		}
		for i, b := range p.Buffers {
			if b.ID != i {
				t.Errorf("%s: not normalized", m.Name)
				break
			}
		}
	}
}

func TestModelsAreDeterministicPerSeed(t *testing.T) {
	for _, m := range Models {
		a := m.Generate(7)
		b := m.Generate(7)
		if len(a.Buffers) != len(b.Buffers) {
			t.Errorf("%s: nondeterministic buffer count", m.Name)
			continue
		}
		for i := range a.Buffers {
			if a.Buffers[i] != b.Buffers[i] {
				t.Errorf("%s: buffer %d differs across identical seeds", m.Name, i)
				break
			}
		}
		c := m.Generate(8)
		same := len(a.Buffers) == len(c.Buffers)
		if same {
			identical := true
			for i := range a.Buffers {
				if a.Buffers[i] != c.Buffers[i] {
					identical = false
					break
				}
			}
			if identical {
				t.Errorf("%s: different seeds produced identical problems", m.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("OpenPose")
	if err != nil || m.Name != "OpenPose" {
		t.Errorf("ByName(OpenPose) = %v, %v", m.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
	if got := len(SortedNames()); got != len(Models) {
		t.Errorf("SortedNames has %d entries", got)
	}
}

func TestOpenPoseHasPhasedContention(t *testing.T) {
	// §8.1: OpenPose has one high-contention phase at the beginning
	// followed by fluctuations between high and low contention.
	p := GenOpenPose(1)
	prof := buffers.Contention(p)
	peak := prof.Peak()
	// Count transitions between above-60%-of-peak and below-40%-of-peak.
	transitions := 0
	state := 0 // 1 high, -1 low
	for _, s := range prof.Steps {
		var ns int
		switch {
		case s.Contention >= peak*6/10:
			ns = 1
		case s.Contention <= peak*4/10:
			ns = -1
		default:
			continue
		}
		if ns != state && state != 0 {
			transitions++
		}
		state = ns
	}
	if transitions < 3 {
		t.Errorf("OpenPose profile has only %d high/low transitions, want fluctuation", transitions)
	}
}

func TestSRGANHasGlobalSkip(t *testing.T) {
	// The first feature map must stay live for most of the network.
	p := GenSRGAN(1)
	_, horizon := p.TimeHorizon()
	var longest int64
	for _, b := range p.Buffers {
		if l := b.Lifetime(); l > longest {
			longest = l
		}
	}
	if longest < horizon/2 {
		t.Errorf("longest lifetime %d < half the horizon %d: global skip missing", longest, horizon)
	}
}

func TestNonOverlapping(t *testing.T) {
	p := NonOverlapping(100, 1)
	ov := buffers.ComputeOverlaps(p)
	if ov.PairCount != 0 {
		t.Errorf("PairCount = %d, want 0", ov.PairCount)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFullOverlap(t *testing.T) {
	p := FullOverlap(50, 1)
	ov := buffers.ComputeOverlaps(p)
	if want := 50 * 49 / 2; ov.PairCount != want {
		t.Errorf("PairCount = %d, want %d", ov.PairCount, want)
	}
	if p.Memory != p.TotalBytes() {
		t.Errorf("Memory %d != total %d: must exactly fit", p.Memory, p.TotalBytes())
	}
}

func TestRandomInstances(t *testing.T) {
	seen := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		p := Random(seed, 110)
		if err := p.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		peak := buffers.Contention(p).Peak()
		if p.Memory < peak {
			t.Errorf("seed %d: memory %d below peak %d", seed, p.Memory, peak)
		}
		seen[len(p.Buffers)] = true
	}
	if len(seen) < 5 {
		t.Error("random instances lack size diversity")
	}
	// ratioPct below 100 clamps to the peak.
	p := Random(3, 50)
	if p.Memory != buffers.Contention(p).Peak() {
		t.Errorf("sub-peak ratio not clamped: %d", p.Memory)
	}
}

func TestModelScale(t *testing.T) {
	// The proxies should be non-trivial: at least dozens of buffers each,
	// hundreds for the big ones.
	minBuffers := map[string]int{
		"ResNet-152": 150,
		"OpenPose":   60,
		"SRGAN":      40,
	}
	for _, m := range Models {
		p := m.Generate(1)
		want := 20
		if w, ok := minBuffers[m.Name]; ok {
			want = w
		}
		if len(p.Buffers) < want {
			t.Errorf("%s: only %d buffers, want >= %d", m.Name, len(p.Buffers), want)
		}
	}
}
