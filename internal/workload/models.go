package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"telamalloc/internal/buffers"
)

// Model is one named workload proxy. Generate builds the allocation problem
// for the given seed; different seeds vary tensor sizes slightly (the way
// recompiling a model with different settings would) while preserving the
// architecture's live-range structure. Memory is left unset (0) — callers
// size it relative to the minimum required memory, as §7 of the paper does.
type Model struct {
	Name string
	// Hard marks models the paper identifies as challenging for solver
	// baselines (the long tail).
	Hard     bool
	Generate func(seed int64) *buffers.Problem
}

// Models lists the eleven benchmark proxies of Figure 12/13 and Table 2,
// in the paper's presentation order, plus SRGAN (§7.3's long-tail example).
var Models = []Model{
	{Name: "FPN Model", Generate: GenFPN},
	{Name: "ConvNet2D", Generate: GenConvNet2D},
	{Name: "Inception-ResNet", Generate: GenInceptionResNet},
	{Name: "Face Detection", Generate: GenFaceDetection},
	{Name: "OpenPose", Hard: true, Generate: GenOpenPose},
	{Name: "StereoNet", Hard: true, Generate: GenStereoNet},
	{Name: "Segmentation", Generate: GenSegmentation},
	{Name: "ResNet-152", Generate: GenResNet152},
	{Name: "Saliency Model", Generate: GenSaliency},
	{Name: "Image Model 1", Hard: true, Generate: GenImageModel1},
	{Name: "Image Model 2", Hard: true, Generate: GenImageModel2},
	{Name: "SRGAN", Hard: true, Generate: GenSRGAN},
}

// ByName returns the model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range Models {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workload: unknown model %q", name)
}

// jitter scales base by a seed-dependent factor in [0.85, 1.15], keeping
// sizes positive. It injects the run-to-run variation the paper attributes
// to compiler settings and hardware configuration.
func jitter(rng *rand.Rand, base int64) int64 {
	f := 0.85 + 0.30*rng.Float64()
	v := int64(float64(base) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// convChain emits a plain chain of n conv ops whose activations flow op to
// op. Returns the last activation tensor.
func convChain(g *Graph, rng *rand.Rand, n int, actKB int64) TensorID {
	op := g.Op()
	act := g.Out(op, kb(jitter(rng, actKB)), pickAlign(rng))
	for i := 1; i < n; i++ {
		op = g.Op()
		g.Use(act, op)
		act = g.Out(op, kb(jitter(rng, actKB)), pickAlign(rng))
		// occasional im2col-style scratch
		if rng.Intn(4) == 0 {
			g.Scratch(op, kb(jitter(rng, actKB/2+1)), 0)
		}
	}
	return act
}

// residualChain emits n residual blocks: each block's input skips over two
// convs and is re-consumed at the add, extending its live range.
func residualChain(g *Graph, rng *rand.Rand, n int, actKB int64) TensorID {
	op := g.Op()
	act := g.Out(op, kb(jitter(rng, actKB)), pickAlign(rng))
	for i := 0; i < n; i++ {
		c1 := g.Op()
		g.Use(act, c1)
		mid := g.Out(c1, kb(jitter(rng, actKB)), pickAlign(rng))
		c2 := g.Op()
		g.Use(mid, c2)
		out := g.Out(c2, kb(jitter(rng, actKB)), pickAlign(rng))
		add := g.Op()
		g.Use(out, add)
		g.Use(act, add) // the skip: input stays live across the block
		act = g.Out(add, kb(jitter(rng, actKB)), pickAlign(rng))
	}
	return act
}

// inceptionBlock emits one multi-branch block: branches computed
// back-to-back but all branch outputs stay live until the concat.
func inceptionBlock(g *Graph, rng *rand.Rand, input TensorID, branches int, actKB int64) TensorID {
	outs := make([]TensorID, 0, branches)
	for b := 0; b < branches; b++ {
		op := g.Op()
		g.Use(input, op)
		t := g.Out(op, kb(jitter(rng, actKB)), pickAlign(rng))
		if rng.Intn(2) == 0 { // two-op branch
			op2 := g.Op()
			g.Use(t, op2)
			t = g.Out(op2, kb(jitter(rng, actKB)), pickAlign(rng))
		}
		outs = append(outs, t)
	}
	concat := g.Op()
	for _, t := range outs {
		g.Use(t, concat)
	}
	return g.Out(concat, kb(jitter(rng, actKB*int64(branches)/2+1)), pickAlign(rng))
}

// GenFPN builds the Feature Pyramid Network proxy: a backbone with feature
// maps at several scales that all stay live for the top-down pathway with
// lateral connections.
func GenFPN(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	// Backbone: 4 stages, each keeping its final feature map alive for the
	// lateral connection.
	laterals := make([]TensorID, 0, 4)
	sizesKB := []int64{512, 256, 128, 64}
	var act TensorID
	for stage, s := range sizesKB {
		n := 8 + rng.Intn(5)
		if stage == 0 {
			act = convChain(g, rng, n, s)
		} else {
			op := g.Op()
			g.Use(act, op)
			act = g.Out(op, kb(jitter(rng, s)), pickAlign(rng))
			for i := 0; i < n; i++ {
				op := g.Op()
				g.Use(act, op)
				act = g.Out(op, kb(jitter(rng, s)), pickAlign(rng))
			}
		}
		laterals = append(laterals, act)
	}
	// Top-down pathway: consume laterals in reverse, merging upsampled maps.
	var td TensorID
	for i := len(laterals) - 1; i >= 0; i-- {
		op := g.Op()
		g.Use(laterals[i], op)
		if i < len(laterals)-1 {
			g.Use(td, op)
		}
		td = g.Out(op, kb(jitter(rng, sizesKB[i])), pickAlign(rng))
		// Per-level head.
		head := g.Op()
		g.Use(td, head)
		g.Out(head, kb(jitter(rng, sizesKB[i]/2+1)), 0)
	}
	return g.Problem("FPN Model")
}

// GenConvNet2D builds a plain 2D CNN: a deep chain with spatial
// downsampling, little temporal overlap beyond adjacent ops.
func GenConvNet2D(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	act := convChain(g, rng, 16, 768)
	for _, s := range []int64{384, 192, 96, 48} {
		op := g.Op()
		g.Use(act, op)
		act = g.Out(op, kb(jitter(rng, s)), pickAlign(rng))
		next := convChain(g, rng, 10+rng.Intn(6), s)
		join := g.Op()
		g.Use(act, join)
		g.Use(next, join)
		act = g.Out(join, kb(jitter(rng, s)), pickAlign(rng))
	}
	fc := g.Op()
	g.Use(act, fc)
	g.Out(fc, kb(16), 0)
	return g.Problem("ConvNet2D")
}

// GenInceptionResNet interleaves inception blocks with residual skips.
func GenInceptionResNet(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	act := convChain(g, rng, 8, 384)
	for stage := 0; stage < 3; stage++ {
		size := []int64{256, 128, 64}[stage]
		for block := 0; block < 8+rng.Intn(4); block++ {
			out := inceptionBlock(g, rng, act, 3+rng.Intn(2), size)
			add := g.Op()
			g.Use(out, add)
			g.Use(act, add) // residual skip
			act = g.Out(add, kb(jitter(rng, size)), pickAlign(rng))
		}
	}
	return g.Problem("Inception-ResNet")
}

// GenFaceDetection builds an SSD-style detector: a backbone plus detection
// heads hanging off several intermediate feature maps, which therefore stay
// live long past their position in the chain.
func GenFaceDetection(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	taps := make([]TensorID, 0, 5)
	act := convChain(g, rng, 12, 512)
	taps = append(taps, act)
	for _, s := range []int64{256, 128, 64, 32} {
		op := g.Op()
		g.Use(act, op)
		act = g.Out(op, kb(jitter(rng, s)), pickAlign(rng))
		for i := 0; i < 6+rng.Intn(4); i++ {
			op := g.Op()
			g.Use(act, op)
			act = g.Out(op, kb(jitter(rng, s)), pickAlign(rng))
		}
		taps = append(taps, act)
	}
	// Heads: each tap feeds class + box convs near the end of the graph.
	for _, tp := range taps {
		for h := 0; h < 2; h++ {
			op := g.Op()
			g.Use(tp, op)
			g.Out(op, kb(jitter(rng, 48)), 0)
		}
	}
	return g.Problem("Face Detection")
}

// GenOpenPose reproduces the structure §8.1 highlights: one difficult
// high-contention phase at the start (wide backbone features feeding both
// initial branches), followed by repeated refinement stages that alternate
// between high and low contention — the pattern contention-based grouping
// exploits.
func GenOpenPose(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	// VGG-style backbone with large, mutually overlapping feature maps:
	// several maps stay live as inputs to both initial prediction branches.
	feat := convChain(g, rng, 14, 640)
	// The shared feature map F stays live through ALL refinement stages.
	shareOp := g.Op()
	g.Use(feat, shareOp)
	shared := g.Out(shareOp, kb(jitter(rng, 256)), 32)
	// Initial branches (PAFs + heatmaps) — heavy overlap with backbone tail.
	var paf, heat TensorID
	for b := 0; b < 2; b++ {
		op := g.Op()
		g.Use(shared, op)
		t := g.Out(op, kb(jitter(rng, 320)), pickAlign(rng))
		for i := 0; i < 3; i++ {
			op := g.Op()
			g.Use(t, op)
			t = g.Out(op, kb(jitter(rng, 320)), pickAlign(rng))
		}
		if b == 0 {
			paf = t
		} else {
			heat = t
		}
	}
	// Refinement stages: concat(shared, paf, heat) -> two branches each.
	for stage := 0; stage < 6; stage++ {
		concat := g.Op()
		g.Use(shared, concat)
		g.Use(paf, concat)
		g.Use(heat, concat)
		cat := g.Out(concat, kb(jitter(rng, 448)), pickAlign(rng))
		var outs [2]TensorID
		for b := 0; b < 2; b++ {
			op := g.Op()
			g.Use(cat, op)
			t := g.Out(op, kb(jitter(rng, 224)), pickAlign(rng))
			for i := 0; i < 6; i++ {
				op := g.Op()
				g.Use(t, op)
				t = g.Out(op, kb(jitter(rng, 224)), pickAlign(rng))
			}
			// Stage outputs (the PAF/heatmap predictions) are small; only
			// they and the shared features cross the trough to the next
			// stage, producing the high/low contention fluctuation of §8.1.
			head := g.Op()
			g.Use(t, head)
			outs[b] = g.Out(head, kb(jitter(rng, 80)), 0)
		}
		paf, heat = outs[0], outs[1]
	}
	return g.Problem("OpenPose")
}

// GenStereoNet builds a siamese two-tower network with a large cost volume:
// both towers' outputs and the cost volume overlap heavily, which is why
// the heuristic needs 1.4x the optimal memory on it (Table 2).
func GenStereoNet(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	// Two feature towers; the first tower's output must survive the second
	// tower's entire execution.
	left := convChain(g, rng, 14, 256)
	right := convChain(g, rng, 14, 256)
	// Cost volume: very large tensor built from both towers.
	cv := g.Op()
	g.Use(left, cv)
	g.Use(right, cv)
	vol := g.Out(cv, kb(jitter(rng, 1536)), 64)
	// 3D conv aggregation over the volume with residual skips.
	act := vol
	for i := 0; i < 10; i++ {
		op := g.Op()
		g.Use(act, op)
		out := g.Out(op, kb(jitter(rng, 768)), pickAlign(rng))
		add := g.Op()
		g.Use(out, add)
		g.Use(vol, add) // long skip to the volume
		act = g.Out(add, kb(jitter(rng, 768)), pickAlign(rng))
	}
	// Refinement on the disparity map.
	convChain(g, rng, 9, 128)
	ref := g.Op()
	g.Use(act, ref)
	g.Out(ref, kb(jitter(rng, 96)), 0)
	return g.Problem("StereoNet")
}

// GenSegmentation builds a U-Net: encoder activations stay live across the
// bottleneck until their decoder counterparts consume them.
func GenSegmentation(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	skips := make([]TensorID, 0, 4)
	act := convChain(g, rng, 6, 512)
	for _, s := range []int64{256, 128, 64} {
		skips = append(skips, act)
		op := g.Op()
		g.Use(act, op)
		act = g.Out(op, kb(jitter(rng, s)), pickAlign(rng))
		for i := 0; i < 5+rng.Intn(3); i++ {
			op := g.Op()
			g.Use(act, op)
			act = g.Out(op, kb(jitter(rng, s)), pickAlign(rng))
		}
	}
	// Decoder: consume skips in reverse order.
	for i := len(skips) - 1; i >= 0; i-- {
		up := g.Op()
		g.Use(act, up)
		g.Use(skips[i], up)
		s := []int64{512, 256, 128}[i]
		act = g.Out(up, kb(jitter(rng, s)), pickAlign(rng))
		op := g.Op()
		g.Use(act, op)
		act = g.Out(op, kb(jitter(rng, s)), pickAlign(rng))
	}
	return g.Problem("Segmentation")
}

// GenResNet152 builds a long residual chain — many buffers but short,
// regular live ranges, which is why the heuristic is fast yet
// memory-hungry on it (Table 2: 1.24x, 0.6 ms).
func GenResNet152(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	for _, cfg := range []struct {
		blocks int
		size   int64
	}{{8, 256}, {12, 192}, {24, 128}, {6, 96}} {
		residualChain(g, rng, cfg.blocks, cfg.size)
	}
	return g.Problem("ResNet-152")
}

// GenSaliency builds a compact encoder-decoder.
func GenSaliency(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	enc := convChain(g, rng, 14, 320)
	mid := residualChain(g, rng, 8, 160)
	join := g.Op()
	g.Use(enc, join)
	g.Use(mid, join)
	act := g.Out(join, kb(jitter(rng, 160)), pickAlign(rng))
	for i := 0; i < 10; i++ {
		op := g.Op()
		g.Use(act, op)
		act = g.Out(op, kb(jitter(rng, 200)), pickAlign(rng))
	}
	return g.Problem("Saliency Model")
}

// imageModel builds the "Image Model 1/2" proxies: large fused graphs with
// heavy cross-layer overlap — the workloads the paper says were most
// challenging for the ILP solver while staying within reach of TelaMalloc.
func imageModel(name string, seed int64, stages int) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	// A global residual input that stays live for the whole model.
	in := g.Op()
	global := g.Out(in, kb(jitter(rng, 256)), 64)
	var acts []TensorID
	act := global
	for s := 0; s < stages; s++ {
		size := []int64{512, 384, 448, 320, 384, 512}[s%6]
		out := inceptionBlock(g, rng, act, 3+rng.Intn(3), size)
		acts = append(acts, out)
		// Dense connections: a random earlier activation is re-consumed.
		if len(acts) > 2 && rng.Intn(2) == 0 {
			g.Use(acts[rng.Intn(len(acts)-1)], g.Op())
		}
		act = out
	}
	// Final fusion consumes the global skip.
	fin := g.Op()
	g.Use(act, fin)
	g.Use(global, fin)
	g.Out(fin, kb(jitter(rng, 256)), 0)
	return renamed(g.Problem(name), name)
}

// GenImageModel1 is the first anonymized hard model proxy.
func GenImageModel1(seed int64) *buffers.Problem { return imageModel("Image Model 1", seed, 18) }

// GenImageModel2 is the second anonymized hard model proxy.
func GenImageModel2(seed int64) *buffers.Problem {
	return imageModel("Image Model 2", seed^0x5bd1e995, 22)
}

// GenSRGAN builds the super-resolution GAN generator used as the long-tail
// example in §7.3: many residual blocks plus a global skip connection that
// keeps the first feature map live for the entire network, followed by
// upsampling stages with growing activations.
func GenSRGAN(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	first := g.Op()
	feat := g.Out(first, kb(jitter(rng, 384)), 32)
	act := feat
	for i := 0; i < 16; i++ {
		c1 := g.Op()
		g.Use(act, c1)
		mid := g.Out(c1, kb(jitter(rng, 384)), pickAlign(rng))
		c2 := g.Op()
		g.Use(mid, c2)
		out := g.Out(c2, kb(jitter(rng, 384)), pickAlign(rng))
		add := g.Op()
		g.Use(out, add)
		g.Use(act, add)
		act = g.Out(add, kb(jitter(rng, 384)), pickAlign(rng))
	}
	// Global skip: first feature map re-joins after every residual block.
	gadd := g.Op()
	g.Use(act, gadd)
	g.Use(feat, gadd)
	act = g.Out(gadd, kb(jitter(rng, 384)), pickAlign(rng))
	// Upsampling: pixel-shuffle stages with 4x larger outputs.
	for _, s := range []int64{768, 1536} {
		op := g.Op()
		g.Use(act, op)
		act = g.Out(op, kb(jitter(rng, s)), 64)
	}
	fin := g.Op()
	g.Use(act, fin)
	g.Out(fin, kb(jitter(rng, 512)), 0)
	return g.Problem("SRGAN")
}

func renamed(p *buffers.Problem, name string) *buffers.Problem {
	p.Name = name
	return p
}

// SortedNames returns the model names sorted alphabetically (handy for
// stable experiment output).
func SortedNames() []string {
	names := make([]string, len(Models))
	for i, m := range Models {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}
