package workload

import (
	"reflect"
	"testing"

	"telamalloc/internal/buffers"
)

// The adversarial families feed the differential oracle harness, so they
// must be structurally valid (the harness measures solver disagreement, not
// input-validation behaviour), deterministic per seed (scorecards must be
// reproducible), and small enough for the exact oracle.

func adversarialInstances(seed int64) map[string]*buffers.Problem {
	return map[string]*buffers.Problem{
		"near-capacity":     NearCapacityPack(8, seed),
		"skinny-fat":        SkinnyFatMix(8, seed),
		"alignment-hostile": AlignmentHostile(8, seed),
		"align-trap":        AlignTrap(seed),
		"tiny-model-graph":  TinyModelGraph(seed),
	}
}

func TestAdversarialGeneratorsValidate(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		for name, p := range adversarialInstances(seed) {
			if err := p.Validate(); err != nil {
				t.Errorf("%s seed %d: invalid problem: %v", name, seed, err)
			}
			if len(p.Buffers) == 0 {
				t.Errorf("%s seed %d: empty problem", name, seed)
			}
			if len(p.Buffers) > 24 {
				t.Errorf("%s seed %d: %d buffers — too large for the exact oracle",
					name, seed, len(p.Buffers))
			}
		}
	}
}

func TestAdversarialGeneratorsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, b := adversarialInstances(seed), adversarialInstances(seed)
		for name := range a {
			if !reflect.DeepEqual(a[name], b[name]) {
				t.Errorf("%s seed %d: two generations differ", name, seed)
			}
		}
	}
}

// TestAdversarialFamiliesAreTight asserts the families actually sit in the
// adversarial regime: memory within a sliver of the contention peak (never
// below it minus zero — NearCapacityPack is exactly at it), so the
// instances are the near-capacity packs the differential harness needs
// rather than trivially loose ones.
func TestAdversarialFamiliesAreTight(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		if p := NearCapacityPack(8, seed); p.Memory != buffers.Contention(p).Peak() {
			t.Errorf("near-capacity seed %d: memory %d != peak %d",
				seed, p.Memory, buffers.Contention(p).Peak())
		}
		for _, p := range []*buffers.Problem{SkinnyFatMix(8, seed), TinyModelGraph(seed)} {
			peak := buffers.Contention(p).Peak()
			if p.Memory < peak || p.Memory > peak*115/100+4 {
				t.Errorf("%s seed %d: memory %d not near peak %d", p.Name, seed, p.Memory, peak)
			}
		}
	}
}

// TestAlignTrapHasInfeasibleSeeds proves the family contains instances that
// are infeasible *despite* memory at or above the contention peak — the
// cases only the exact oracle (or real search) can classify, which is the
// whole point of the differential harness.
func TestAlignTrapHasInfeasibleSeeds(t *testing.T) {
	abovePeak := false
	for seed := int64(1); seed <= 40; seed++ {
		p := AlignTrap(seed)
		peak := buffers.Contention(p).Peak()
		align := p.Buffers[0].Align
		size := p.Buffers[0].Size
		slots := (p.Memory-size)/align + 1
		if int(slots) < len(p.Buffers) && p.Memory >= peak {
			abovePeak = true
		}
	}
	if !abovePeak {
		t.Error("no seed in 1..40 produced an above-peak infeasible trap")
	}
}
