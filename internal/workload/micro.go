package workload

import (
	"math/rand"

	"telamalloc/internal/buffers"
)

// Microbenchmarks from §7.1 / Table 1. They require no backtracking and
// characterise raw per-step cost: NonOverlapping exercises the case where
// the CP solver has no pair constraints at all; FullOverlap makes the
// constraint count grow quadratically.

// NonOverlapping builds n buffers that never overlap in time, with ample
// memory ("non-overlapping-N").
func NonOverlapping(n int, seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "non-overlapping"}
	var maxSize int64 = 1
	for i := int64(0); i < int64(n); i++ {
		size := kb(1 + rng.Int63n(64))
		if size > maxSize {
			maxSize = size
		}
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: i,
			End:   i + 1,
			Size:  size,
		})
	}
	p.Memory = maxSize * 2
	p.Normalize()
	return p
}

// FullOverlap builds n buffers that all fully overlap, with exactly enough
// memory to stack them ("full-overlap-N").
func FullOverlap(n int, seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "full-overlap"}
	var total int64
	for i := 0; i < n; i++ {
		size := kb(1 + rng.Int63n(16))
		total += size
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: 0,
			End:   10,
			Size:  size,
		})
	}
	p.Memory = total
	p.Normalize()
	return p
}

// Random builds the mixed random instances used for the 1,192-configuration
// ablation sweep (§7.2): phased workloads whose shape parameters vary with
// the seed. Memory is set to ratioPct percent of the instance's contention
// peak (the paper varies memory across configurations the same way).
func Random(seed int64, ratioPct int) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "random"}
	phases := 2 + rng.Intn(6)
	perPhase := 6 + rng.Intn(18)
	span := int64(8 + rng.Intn(16))
	var clock int64
	for ph := 0; ph < phases; ph++ {
		for i := 0; i < perPhase; i++ {
			start := clock + rng.Int63n(span)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(span),
				Size:  kb(1 + rng.Int63n(48)),
				Align: pickAlign(rng),
			})
		}
		clock += span
		// Occasionally a long-lived buffer spanning multiple phases — the
		// ingredient that makes instances hard.
		if rng.Intn(2) == 0 {
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: clock - span,
				End:   clock + span*int64(1+rng.Intn(3)),
				Size:  kb(1 + rng.Int63n(24)),
			})
		}
	}
	p.Normalize()
	peak := buffers.Contention(p).Peak()
	p.Memory = peak * int64(ratioPct) / 100
	if p.Memory < peak {
		// Below-peak limits are trivially infeasible; clamp to peak so the
		// sweep measures search effort, not input validation.
		p.Memory = peak
	}
	return p
}
