package workload

import (
	"math/rand"

	"telamalloc/internal/buffers"
)

// Microbenchmarks from §7.1 / Table 1. They require no backtracking and
// characterise raw per-step cost: NonOverlapping exercises the case where
// the CP solver has no pair constraints at all; FullOverlap makes the
// constraint count grow quadratically.

// NonOverlapping builds n buffers that never overlap in time, with ample
// memory ("non-overlapping-N").
func NonOverlapping(n int, seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "non-overlapping"}
	var maxSize int64 = 1
	for i := int64(0); i < int64(n); i++ {
		size := kb(1 + rng.Int63n(64))
		if size > maxSize {
			maxSize = size
		}
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: i,
			End:   i + 1,
			Size:  size,
		})
	}
	p.Memory = maxSize * 2
	p.Normalize()
	return p
}

// FullOverlap builds n buffers that all fully overlap, with exactly enough
// memory to stack them ("full-overlap-N").
func FullOverlap(n int, seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "full-overlap"}
	var total int64
	for i := 0; i < n; i++ {
		size := kb(1 + rng.Int63n(16))
		total += size
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: 0,
			End:   10,
			Size:  size,
		})
	}
	p.Memory = total
	p.Normalize()
	return p
}

// MultiComponent builds a problem made of `components` independent
// subproblems: clusters of mutually overlapping buffers separated by time
// gaps no buffer crosses, so §5.3 splitting recovers exactly `components`
// groups. Each cluster is a tight random packing (memory is set to
// ratioPct percent of the worst cluster's contention peak), making the
// per-group searches substantial enough that solving groups in parallel
// pays off ("multi-component-C-N").
func MultiComponent(components, perComponent int, ratioPct int, seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "multi-component"}
	span := int64(24)
	const targetPeak = int64(1) << 20
	var clock int64
	for c := 0; c < components; c++ {
		cluster := &buffers.Problem{}
		for i := 0; i < perComponent; i++ {
			start := clock + rng.Int63n(span/2)
			end := start + 2 + rng.Int63n(span-(start-clock))
			if end > clock+span {
				end = clock + span
			}
			cluster.Buffers = append(cluster.Buffers, buffers.Buffer{
				Start: start,
				End:   end,
				Size:  kb(1 + rng.Int63n(48)),
				Align: pickAlign(rng),
			})
		}
		// Scale every cluster to the same contention peak: the shared
		// memory limit is derived from the global (= per-cluster) peak,
		// so each component is equally tight and the per-group searches
		// are comparably hard — without this, only the cluster that
		// happens to attain the global peak would need real search.
		peak := buffers.Contention(cluster).Peak()
		for i := range cluster.Buffers {
			b := &cluster.Buffers[i]
			b.Size = b.Size * targetPeak / peak
			if b.Size < 1 {
				b.Size = 1
			}
		}
		p.Buffers = append(p.Buffers, cluster.Buffers...)
		// Leave a one-tick gap so the next cluster is a separate component.
		clock += span + 1
	}
	p.Normalize()
	peak := buffers.Contention(p).Peak()
	p.Memory = peak * int64(ratioPct) / 100
	if p.Memory < peak {
		p.Memory = peak
	}
	return p
}

// Random builds the mixed random instances used for the 1,192-configuration
// ablation sweep (§7.2): phased workloads whose shape parameters vary with
// the seed. Memory is set to ratioPct percent of the instance's contention
// peak (the paper varies memory across configurations the same way).
func Random(seed int64, ratioPct int) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "random"}
	phases := 2 + rng.Intn(6)
	perPhase := 6 + rng.Intn(18)
	span := int64(8 + rng.Intn(16))
	var clock int64
	for ph := 0; ph < phases; ph++ {
		for i := 0; i < perPhase; i++ {
			start := clock + rng.Int63n(span)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(span),
				Size:  kb(1 + rng.Int63n(48)),
				Align: pickAlign(rng),
			})
		}
		clock += span
		// Occasionally a long-lived buffer spanning multiple phases — the
		// ingredient that makes instances hard.
		if rng.Intn(2) == 0 {
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: clock - span,
				End:   clock + span*int64(1+rng.Intn(3)),
				Size:  kb(1 + rng.Int63n(24)),
			})
		}
	}
	p.Normalize()
	peak := buffers.Contention(p).Peak()
	p.Memory = peak * int64(ratioPct) / 100
	if p.Memory < peak {
		// Below-peak limits are trivially infeasible; clamp to peak so the
		// sweep measures search effort, not input validation.
		p.Memory = peak
	}
	return p
}
