// Package workload generates the allocator inputs used throughout the
// evaluation. The paper drives its experiments with on-device traces from
// eleven (partly proprietary) Pixel 6 models plus synthetic
// microbenchmarks; since those traces are unavailable, this package rebuilds
// each model as a seeded synthetic *proxy*: a dataflow graph whose
// operators are scheduled in topological order and whose tensors' live
// ranges run from producer to last consumer. What the allocator sees —
// (start, end, size, alignment) tuples with the contention structure of the
// original architecture family (chains, residual skips, multi-branch
// inception blocks, U-Net long skips, multi-stage refinement) — matches the
// shapes §8.1 of the paper describes.
package workload

import (
	"math/rand"

	"telamalloc/internal/buffers"
)

// OpID identifies an operator (and doubles as its logical timestamp).
type OpID int64

// TensorID identifies a tensor in a Graph.
type TensorID int

type tensor struct {
	produced OpID
	lastUse  OpID
	size     int64
	align    int64
}

// Graph builds an operator/tensor dataflow graph and lowers it to a
// memory-allocation problem. Operators are issued in schedule order; each
// Op call advances logical time by one slot.
type Graph struct {
	clock   OpID
	tensors []tensor
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{clock: -1} }

// Op schedules the next operator and returns its ID/timestamp.
func (g *Graph) Op() OpID {
	g.clock++
	return g.clock
}

// Out declares that op produces a tensor of the given size and alignment.
// The tensor is initially live for just the producing slot; Use extends it.
func (g *Graph) Out(op OpID, size, align int64) TensorID {
	g.tensors = append(g.tensors, tensor{produced: op, lastUse: op, size: size, align: align})
	return TensorID(len(g.tensors) - 1)
}

// Use records that op consumes tensor t, extending its live range.
func (g *Graph) Use(t TensorID, op OpID) {
	if op > g.tensors[t].lastUse {
		g.tensors[t].lastUse = op
	}
}

// Scratch declares an operator-local scratch buffer live only during op.
func (g *Graph) Scratch(op OpID, size, align int64) {
	g.Out(op, size, align)
}

// Ops returns the number of operators scheduled so far.
func (g *Graph) Ops() int64 { return int64(g.clock + 1) }

// Problem lowers the graph to an allocation problem. Tensor live ranges are
// [produced, lastUse+1) so that a tensor consumed at slot t is still
// resident during t. Memory is left zero; callers size it (typically to a
// ratio of the minimum required memory, as the paper does).
func (g *Graph) Problem(name string) *buffers.Problem {
	p := &buffers.Problem{Name: name}
	for _, t := range g.tensors {
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: int64(t.produced),
			End:   int64(t.lastUse) + 1,
			Size:  t.size,
			Align: t.align,
		})
	}
	p.Normalize()
	return p
}

// sizes helper: pick an alignment the way real kernels do — most tensors
// unconstrained, a minority requiring vector-width multiples (§5.5).
func pickAlign(rng *rand.Rand) int64 {
	switch rng.Intn(10) {
	case 0:
		return 32
	case 1:
		return 64
	default:
		return 0
	}
}

// kb converts kilobytes to bytes, the sizing unit used by the proxies.
func kb(n int64) int64 { return n << 10 }
