package workload

import (
	"math/rand"

	"telamalloc/internal/buffers"
)

// Adversarial families for the differential verification harness
// (internal/check). Böhm et al. observe that heuristic/exact disagreement
// on 2D packing concentrates in adversarial shapes that hand-written
// fixtures never cover: packs at exactly the contention peak, extreme
// aspect-ratio mixes, and alignment-hostile sizes where the usable address
// set is much sparser than the byte count suggests. These generators
// produce *small* instances of exactly those shapes — small enough that the
// exact branch-and-bound oracle terminates, adversarial enough that the
// heuristic ladder's solve rate actually separates from the oracle's.
//
// Every generator is deterministic per seed and returns a Validate-clean
// problem; feasibility is deliberately NOT guaranteed, because the harness
// needs both feasible and infeasible instances to test the "never claim
// Solved on an ILP-proven-infeasible problem" invariant.

// NearCapacityPack builds n mutually overlapping buffers whose memory limit
// is *exactly* the contention peak: every packing must be perfectly tight
// somewhere, the regime where greedy skyline placement strands capacity.
func NearCapacityPack(n int, seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "near-capacity"}
	span := int64(8)
	for i := 0; i < n; i++ {
		start := rng.Int63n(span / 2)
		end := start + 1 + rng.Int63n(span-start)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start,
			End:   end,
			Size:  1 + rng.Int63n(64),
		})
	}
	p.Normalize()
	p.Memory = buffers.Contention(p).Peak()
	return p
}

// SkinnyFatMix interleaves long-skinny buffers (live across the whole
// horizon, small) with short-fat ones (brief, huge). The skinny buffers
// fragment the address space for every fat one that arrives later — the
// classic worst case for best-fit — with memory at the contention peak
// plus a sliver of slack.
func SkinnyFatMix(n int, seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "skinny-fat"}
	horizon := int64(12)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			// Long and skinny: nearly the whole horizon, tiny size.
			start := rng.Int63n(2)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   horizon - rng.Int63n(2),
				Size:  1 + rng.Int63n(8),
			})
		} else {
			// Short and fat: one or two slots, an order of magnitude bigger.
			start := rng.Int63n(horizon - 2)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(2),
				Size:  32 + rng.Int63n(96),
			})
		}
	}
	p.Normalize()
	peak := buffers.Contention(p).Peak()
	p.Memory = peak + rng.Int63n(4)
	return p
}

// AlignmentHostile builds buffers whose sizes sit just off their alignment
// multiples (align-1, align+1, ...), so the gap between "bytes that fit"
// and "aligned addresses that exist" is maximal. Memory is the peak plus
// slack smaller than one alignment unit: whether an instance is feasible
// depends entirely on how placements interact with alignment waste, which
// is what the checker's alignment sweep and the oracle must agree on.
func AlignmentHostile(n int, seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "alignment-hostile"}
	aligns := []int64{4, 8, 16}
	span := int64(6)
	for i := 0; i < n; i++ {
		a := aligns[rng.Intn(len(aligns))]
		size := a - 1 + rng.Int63n(3) // a-1, a, or a+1
		start := rng.Int63n(span - 1)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start,
			End:   start + 1 + rng.Int63n(span-start),
			Size:  size,
			Align: a,
		})
	}
	p.Normalize()
	peak := buffers.Contention(p).Peak()
	p.Memory = peak + rng.Int63n(aligns[len(aligns)-1])
	return p
}

// AlignTrap builds the minimal family that is infeasible *above* the
// contention peak: k fully-overlapping buffers that each demand an align-A
// address, with memory sized so only k-1 (sometimes k) aligned slots exist.
// The lower-bound check (peak <= memory) passes, so nothing short of real
// search — or the exact oracle — can tell the feasible seeds from the
// infeasible ones. Heuristics must fail here without ever claiming Solved
// on a seed the oracle proves infeasible.
func AlignTrap(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{Name: "align-trap"}
	align := int64(8) << rng.Int63n(3)        // 8, 16, or 32
	k := 2 + rng.Intn(4)                      // 2..5 overlapping aligned buffers
	size := align/2 + 1 + rng.Int63n(align/2) // > align/2, so one slot per buffer
	for i := 0; i < k; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: 0,
			End:   4,
			Size:  size,
			Align: align,
		})
	}
	// slots in {k-1, k}: with size <= align, the usable aligned addresses
	// are exactly 0, align, ..., (slots-1)*align, so k buffers into k-1
	// slots is infeasible by pigeonhole while k slots is tightly feasible.
	slots := int64(k-1) + rng.Int63n(2)
	p.Memory = (slots-1)*align + size
	if p.Memory < align {
		// One-slot instances must still pass Validate's align <= memory
		// structural check; a single aligned slot at 0 remains the only
		// usable address either way.
		p.Memory = align
	}
	p.Normalize()
	return p
}

// TinyModelGraph lowers a one-to-two-layer transformer-style block (§6-style
// model graph: Q/K/V fan-out, an oversized score tensor, residual skips) to
// an allocation problem at 100-110% of its contention peak. It is the
// smallest instance that still has the dense overlap structure of the real
// model proxies, sized so the exact oracle terminates.
func TinyModelGraph(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	layers := 1 + rng.Intn(2)
	hidden := int64(4 + rng.Int63n(8))
	in := g.Op()
	act := g.Out(in, hidden, 0)
	for l := 0; l < layers; l++ {
		var qkv [3]TensorID
		for i := range qkv {
			op := g.Op()
			g.Use(act, op)
			qkv[i] = g.Out(op, hidden, 4)
		}
		scoreOp := g.Op()
		g.Use(qkv[0], scoreOp)
		g.Use(qkv[1], scoreOp)
		score := g.Out(scoreOp, hidden*4, 4)
		ctxOp := g.Op()
		g.Use(score, ctxOp)
		g.Use(qkv[2], ctxOp)
		ctx := g.Out(ctxOp, hidden, 0)
		add := g.Op()
		g.Use(ctx, add)
		g.Use(act, add) // residual skip keeps the layer input live throughout
		act = g.Out(add, hidden, 0)
	}
	p := g.Problem("tiny-model-graph")
	peak := buffers.Contention(p).Peak()
	p.Memory = peak * (100 + rng.Int63n(11)) / 100
	return p
}
