package workload

import (
	"sort"
	"testing"

	"telamalloc/internal/buffers"
)

// These tests pin the architecture-specific live-range *shapes* the proxies
// exist to reproduce — the properties §8.1 of the paper ties to allocator
// behaviour.

func TestSegmentationHasLongSkipConnections(t *testing.T) {
	// U-Net: encoder feature maps stay live until their decoder
	// counterparts consume them, so several buffers must span a large
	// fraction of the horizon.
	p := GenSegmentation(1)
	lo, hi := p.TimeHorizon()
	horizon := hi - lo
	long := 0
	for _, b := range p.Buffers {
		if b.Lifetime() >= horizon/3 {
			long++
		}
	}
	if long < 2 {
		t.Errorf("only %d buffers span >= 1/3 of the horizon: U-Net skips missing", long)
	}
}

func TestStereoNetHasDominantCostVolume(t *testing.T) {
	// The cost volume dwarfs the feature maps and overlaps the aggregation
	// stage, which is why StereoNet is the heuristic's worst case (Table 2).
	p := GenStereoNet(1)
	sizes := make([]int64, 0, len(p.Buffers))
	var maxSize int64
	for _, b := range p.Buffers {
		sizes = append(sizes, b.Size)
		if b.Size > maxSize {
			maxSize = b.Size
		}
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	median := sizes[len(sizes)/2]
	if maxSize < 3*median {
		t.Errorf("largest buffer %d not dominant vs median %d", maxSize, median)
	}
}

func TestFaceDetectionTapsOutliveBackbone(t *testing.T) {
	// SSD heads consume intermediate feature maps near the end of the
	// graph, so some mid-graph tensors must have unusually long lifetimes.
	p := GenFaceDetection(1)
	lo, hi := p.TimeHorizon()
	horizon := hi - lo
	extended := 0
	for _, b := range p.Buffers {
		if b.Start > lo+horizon/10 && b.End > hi-horizon/5 && b.Lifetime() > horizon/3 {
			extended++
		}
	}
	if extended < 2 {
		t.Errorf("only %d mid-graph tensors survive to the heads", extended)
	}
}

func TestResNetLivesAreShortAndRegular(t *testing.T) {
	// Residual chains have short skips: no buffer should span a large
	// fraction of the horizon, which is why the heuristic is fast on it.
	p := GenResNet152(1)
	lo, hi := p.TimeHorizon()
	horizon := hi - lo
	for _, b := range p.Buffers {
		if b.Lifetime() > horizon/4 {
			t.Errorf("ResNet buffer with lifetime %d of horizon %d: unexpected long skip", b.Lifetime(), horizon)
			break
		}
	}
}

func TestImageModelsDenserThanConvNet(t *testing.T) {
	// The anonymized "hard" models carry much more temporal overlap per
	// buffer than a plain CNN — that is what made them hard for the ILP.
	dense := buffers.ComputeOverlaps(GenImageModel1(1))
	plain := buffers.ComputeOverlaps(GenConvNet2D(1))
	dAvg := float64(2*dense.PairCount) / float64(len(dense.Neighbors))
	pAvg := float64(2*plain.PairCount) / float64(len(plain.Neighbors))
	if dAvg <= pAvg {
		t.Errorf("Image Model 1 avg degree %.1f not denser than ConvNet2D %.1f", dAvg, pAvg)
	}
}

func TestMicrobenchmarkSizesMatchPaper(t *testing.T) {
	if n := len(NonOverlapping(1000, 1).Buffers); n != 1000 {
		t.Errorf("non-overlapping-1K has %d buffers", n)
	}
	if n := len(FullOverlap(100, 1).Buffers); n != 100 {
		t.Errorf("full-overlap-100 has %d buffers", n)
	}
}
