package workload

import (
	"math/rand"

	"telamalloc/internal/buffers"
)

// Stress-scale proxies. The Pixel 6 benchmark set (Models) stays at
// compile-friendly sizes; these generators produce the thousands-of-buffers
// problems the paper says are typical ("most real-world examples have a
// much larger number of buffers, typically in the thousands", §3) and the
// transformer-style graphs that dominate TPUv4 workloads.

// StressModels lists the large proxies used by scaling tests and benches.
var StressModels = []Model{
	{Name: "Transformer-24L", Hard: true, Generate: GenTransformer},
	{Name: "MobileNet-Large", Generate: GenMobileNet},
	{Name: "DeepChain-2K", Generate: GenDeepChain},
}

// GenTransformer builds a 24-layer encoder proxy: per layer, Q/K/V
// projections (all live until attention), a large attention-score tensor,
// the context projection, a residual add, and a 4x-wide MLP with its own
// residual. The layer input stays live across the whole layer (two skips),
// giving the dense overlap structure attention workloads are known for.
func GenTransformer(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	const layers = 24
	hidden := int64(96)  // KB per activation tensor
	scores := int64(384) // KB for the attention matrix

	in := g.Op()
	act := g.Out(in, kb(jitter(rng, hidden)), 64)
	for l := 0; l < layers; l++ {
		// Q, K, V projections: all three live until the attention ops.
		var qkv [3]TensorID
		for i := range qkv {
			op := g.Op()
			g.Use(act, op)
			qkv[i] = g.Out(op, kb(jitter(rng, hidden)), 32)
		}
		// Scores = Q K^T — the big one; consumes Q and K.
		scoreOp := g.Op()
		g.Use(qkv[0], scoreOp)
		g.Use(qkv[1], scoreOp)
		score := g.Out(scoreOp, kb(jitter(rng, scores)), 64)
		// Softmax in place-ish: new tensor of the same shape.
		smOp := g.Op()
		g.Use(score, smOp)
		sm := g.Out(smOp, kb(jitter(rng, scores)), 0)
		// Context = softmax · V.
		ctxOp := g.Op()
		g.Use(sm, ctxOp)
		g.Use(qkv[2], ctxOp)
		ctx := g.Out(ctxOp, kb(jitter(rng, hidden)), 32)
		// Output projection + residual with the layer input.
		projOp := g.Op()
		g.Use(ctx, projOp)
		proj := g.Out(projOp, kb(jitter(rng, hidden)), 0)
		add1 := g.Op()
		g.Use(proj, add1)
		g.Use(act, add1) // first residual skip
		mid := g.Out(add1, kb(jitter(rng, hidden)), 0)
		// MLP: up-projection (4x), activation, down-projection, residual.
		upOp := g.Op()
		g.Use(mid, upOp)
		up := g.Out(upOp, kb(jitter(rng, hidden*4)), 64)
		gelOp := g.Op()
		g.Use(up, gelOp)
		gel := g.Out(gelOp, kb(jitter(rng, hidden*4)), 0)
		downOp := g.Op()
		g.Use(gel, downOp)
		down := g.Out(downOp, kb(jitter(rng, hidden)), 0)
		add2 := g.Op()
		g.Use(down, add2)
		g.Use(mid, add2) // second residual skip
		act = g.Out(add2, kb(jitter(rng, hidden)), 0)
	}
	return g.Problem("Transformer-24L")
}

// GenMobileNet builds an inverted-residual chain: each block expands to a
// wide tensor, depthwise-convolves it, projects back down, and adds a skip.
// Many blocks, moderate overlap — a contrast to the transformer.
func GenMobileNet(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	stages := []struct {
		blocks int
		narrow int64 // KB
		expand int64 // KB
	}{
		{4, 128, 512}, {6, 96, 448}, {8, 64, 384}, {6, 48, 256}, {4, 32, 160},
	}
	op := g.Op()
	act := g.Out(op, kb(jitter(rng, 160)), 32)
	for _, st := range stages {
		for b := 0; b < st.blocks; b++ {
			expOp := g.Op()
			g.Use(act, expOp)
			exp := g.Out(expOp, kb(jitter(rng, st.expand)), pickAlign(rng))
			dwOp := g.Op()
			g.Use(exp, dwOp)
			dw := g.Out(dwOp, kb(jitter(rng, st.expand)), pickAlign(rng))
			prOp := g.Op()
			g.Use(dw, prOp)
			pr := g.Out(prOp, kb(jitter(rng, st.narrow)), 0)
			add := g.Op()
			g.Use(pr, add)
			g.Use(act, add)
			act = g.Out(add, kb(jitter(rng, st.narrow)), 0)
		}
	}
	return g.Problem("MobileNet-Large")
}

// GenDeepChain builds a ~2,000-buffer chain with occasional short skips —
// the regime where model size, not search difficulty, dominates allocator
// cost (Table 1's scaling axis on a realistic shape).
func GenDeepChain(seed int64) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	op := g.Op()
	act := g.Out(op, kb(jitter(rng, 64)), 0)
	prev := act
	for i := 0; i < 1900; i++ {
		op := g.Op()
		g.Use(act, op)
		if i%7 == 0 {
			g.Use(prev, op) // short skip
		}
		prev = act
		act = g.Out(op, kb(1+rng.Int63n(64)), pickAlign(rng))
	}
	return g.Problem("DeepChain-2K")
}
