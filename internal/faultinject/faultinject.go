// Package faultinject is a deterministic fault-injection harness for the
// allocation pipeline. It exists to *prove* the robustness contract rather
// than assume it: production ML compilers embed the allocator in-process,
// so a panic in a worker or a learned policy, an unbounded stall, or a
// starved budget must surface as a structured error — never as a crashed
// host or a hung compile.
//
// An Injector is installed through the test-only core.Config.Hook, which
// the search polls at every solver choice point (at least once per
// candidate attempt) with a stable point label ("group<i>" for subproblem
// i). Faults fire at exact per-point call counts, so a given fault hits the
// same decision point at every parallelism level — the property the
// determinism suite relies on.
//
// Three fault kinds cover the failure modes the robustness contract names:
//
//   - Panic: the hook panics at the chosen point. The containment boundary
//     in internal/core must convert it to telamon.Internal / ErrInternal.
//   - Stall: the hook sleeps, simulating a wedged policy or a descheduled
//     worker. Cancellation latency must stay bounded by stall + stride.
//   - Starve: from the chosen call on, the hook reports budget exhaustion,
//     forcing telamon.Budget — the degradation path to spilling.
package faultinject

import (
	"fmt"
	"sync"
	"time"
)

// Named decision points, beyond the solver's per-subproblem "group<i>"
// labels. The pipeline announces every stage twice — at entry, before the
// stage's allocator runs, and at exit, after it returned but before its
// verdict is recorded — so faults can be armed at the exact boundary where
// production code hands control between components. The serving layer
// (internal/server) announces its queue and lifecycle transitions the same
// way. A panic at any of these points must be contained by the layer that
// owns the point; a stall models a wedged component; a starve at
// PointServerAdmit forces a load-shed.
const (
	// PointServerAdmit fires in Submit before a request is enqueued.
	// Starve at this point forces the request to be shed.
	PointServerAdmit = "server:admit"
	// PointServerDequeue fires when a worker picks a request off the queue.
	PointServerDequeue = "server:dequeue"
	// PointServerHedge fires when a hedge attempt starts.
	PointServerHedge = "server:hedge"
	// PointServerDrain fires once when a drain begins.
	PointServerDrain = "server:drain"
	// PointServerBrownout fires on every brownout-controller evaluation
	// tick, before queue-wait pressure is compared against the target. A
	// starve makes that tick observe saturated pressure regardless of the
	// real p90 — the deterministic way to force the ladder down a level
	// without generating real load; a panic must be contained by the
	// brownout loop.
	PointServerBrownout = "server:brownout"
	// PointServerExpire fires when the server starts an eager expiry sweep
	// over the queue (a push found a class full). A starve makes the sweep
	// treat every deadline-carrying queued job as already expired — the
	// deterministic way to exercise eager eviction without waiting out
	// real budgets.
	PointServerExpire = "server:expire"
	// PointServerTenant fires when a tenant-labelled request reaches the
	// per-tenant admission check. A starve makes the check deny as if the
	// tenant's token bucket were empty — the deterministic way to force a
	// tenant shed; a panic must be contained by Submit.
	PointServerTenant = "server:tenant"
	// PointServerWatchdog fires on every solve-watchdog scan. A stall
	// models a descheduled watchdog; a panic must be contained by the
	// watchdog loop; a starve makes the watchdog treat every scanned job
	// as overdue — the deterministic way to force a watchdog kill without
	// real wall-clock overruns.
	PointServerWatchdog = "server:watchdog"
	// PointConnAccept fires in the daemon's accept loop for each accepted
	// connection, before the connection-limit check. A starve makes the
	// daemon shed the connection as if the limit were reached; a stall
	// models a wedged accept path.
	PointConnAccept = "conn:accept"
	// PointConnRead fires before each request line is read from a
	// connection. A starve synthesizes an idle-timeout on that read; a
	// stall models a slow peer holding the read loop.
	PointConnRead = "conn:read"
)

// StageEntry returns the hook label announced when a pipeline stage is
// entered, e.g. "stage:search".
func StageEntry(stage string) string { return "stage:" + stage }

// StageExit returns the hook label announced after a pipeline stage's
// allocator returned, inside the stage's containment boundary — a panic
// here discards the stage's result and fails the stage, exactly like a
// crash while persisting its verdict would.
func StageExit(stage string) string { return "stage:" + stage + ":exit" }

// Kind is the fault class to inject.
type Kind int

const (
	// Panic makes the hook panic with an *InjectedPanic value.
	Panic Kind = iota
	// Stall makes the hook sleep for StallFor.
	Stall
	// Starve makes the hook report budget exhaustion from the trigger
	// call onward (sticky), so the affected search stops with Budget.
	Starve
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Starve:
		return "starve"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled fault.
type Fault struct {
	// Point is the hook label the fault arms on; "" arms on every point.
	// Point-specific faults are deterministic under parallelism (each
	// group's search has a fixed call sequence); "" faults count global
	// calls and should only assert outcomes that are scheduling-invariant.
	Point string
	// After fires the fault on the After-th matching call (1-based;
	// values below 1 mean the first call).
	After int64
	// Kind selects the fault class.
	Kind Kind
	// StallFor is the sleep duration for Stall faults.
	StallFor time.Duration
}

// InjectedPanic is the value Panic faults panic with, so tests can assert
// the recovered error came from the injector and not a real bug.
type InjectedPanic struct {
	Point string
	Call  int64
}

func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %q call %d", p.Point, p.Call)
}

type armedFault struct {
	Fault
	calls    int64
	fired    bool
	starving bool
}

// Injector counts hook calls per fault and fires faults deterministically.
// It is safe for concurrent use from parallel search workers.
type Injector struct {
	mu     sync.Mutex
	faults []*armedFault
	fired  []string
}

// New builds an injector for the given fault schedule.
func New(faults ...Fault) *Injector {
	in := &Injector{}
	for _, f := range faults {
		if f.After < 1 {
			f.After = 1
		}
		in.faults = append(in.faults, &armedFault{Fault: f})
	}
	return in
}

// Hook is the function to install as core.Config.Hook. It returns true when
// a Starve fault is active for the point (the search must treat its budget
// as exhausted).
func (in *Injector) Hook(point string) bool {
	var stallFor time.Duration
	var panicWith *InjectedPanic
	starve := false

	in.mu.Lock()
	for _, f := range in.faults {
		if f.Point != "" && f.Point != point {
			continue
		}
		f.calls++
		if f.starving {
			starve = true
			continue
		}
		if !f.fired && f.calls >= f.After {
			f.fired = true
			in.fired = append(in.fired, fmt.Sprintf("%s@%s#%d", f.Kind, point, f.calls))
			switch f.Kind {
			case Panic:
				panicWith = &InjectedPanic{Point: point, Call: f.calls}
			case Stall:
				stallFor = f.StallFor
			case Starve:
				f.starving = true
				starve = true
			}
		}
	}
	in.mu.Unlock()

	// Side effects happen outside the lock: a stalling or panicking hook
	// must not also wedge concurrent workers' bookkeeping.
	if stallFor > 0 {
		time.Sleep(stallFor)
	}
	if panicWith != nil {
		panic(panicWith)
	}
	return starve
}

// Fired returns a record of the faults that have fired, in firing order,
// formatted "kind@point#call".
func (in *Injector) Fired() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.fired...)
}
