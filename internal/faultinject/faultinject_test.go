package faultinject

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPanicFiresAtExactCall(t *testing.T) {
	in := New(Fault{Point: "group0", After: 3, Kind: Panic})
	for i := 1; i <= 2; i++ {
		if in.Hook("group0") {
			t.Fatalf("call %d: unexpected starvation", i)
		}
	}
	in.Hook("group1") // different point must not advance the counter
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *InjectedPanic", r, r)
		}
		if ip.Point != "group0" || ip.Call != 3 {
			t.Fatalf("panic at %q call %d, want group0 call 3", ip.Point, ip.Call)
		}
		fired := in.Fired()
		if len(fired) != 1 || !strings.HasPrefix(fired[0], "panic@group0#3") {
			t.Fatalf("fired log %v", fired)
		}
	}()
	in.Hook("group0")
	t.Fatal("third matching call did not panic")
}

func TestStarveIsSticky(t *testing.T) {
	in := New(Fault{Point: "group0", After: 2, Kind: Starve})
	if in.Hook("group0") {
		t.Fatal("starved before trigger call")
	}
	for i := 0; i < 3; i++ {
		if !in.Hook("group0") {
			t.Fatalf("call %d after trigger: starvation not sticky", i)
		}
	}
	if in.Hook("group1") {
		t.Fatal("starvation leaked to an unmatched point")
	}
}

func TestStallSleeps(t *testing.T) {
	const d = 30 * time.Millisecond
	in := New(Fault{Point: "p", After: 1, Kind: Stall, StallFor: d})
	start := time.Now()
	in.Hook("p")
	if got := time.Since(start); got < d {
		t.Fatalf("stall slept %v, want at least %v", got, d)
	}
	// Fires once: the second call must be fast.
	start = time.Now()
	in.Hook("p")
	if got := time.Since(start); got > d/2 {
		t.Fatalf("second call slept %v; stall should fire once", got)
	}
}

func TestWildcardPointMatchesEverything(t *testing.T) {
	in := New(Fault{After: 2, Kind: Starve})
	if in.Hook("a") {
		t.Fatal("starved on first call")
	}
	if !in.Hook("b") {
		t.Fatal("wildcard fault did not count across points")
	}
}

func TestConcurrentHookCalls(t *testing.T) {
	// The injector must tolerate parallel search workers; exercised under
	// -race in CI.
	in := New(Fault{Point: "g", After: 100, Kind: Starve})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Hook("g")
			}
		}()
	}
	wg.Wait()
	if !in.Hook("g") {
		t.Fatal("starvation never triggered after 800 calls")
	}
}
