// Package xlasim simulates the XLA memory-space-assignment loop that
// TelaMalloc plugs into on TPUv4 (§2.3, §5.6, §7.4): the compiler
// opportunistically promotes access-intensive buffers into on-chip SRAM
// (CMEM), calling a *repacker* — the pluggable allocator — whenever the
// incremental placement runs out of space. Kernels then read promoted
// buffers from SRAM instead of HBM, so a repacker that packs more
// hot bytes into the same SRAM yields real program speedup (Figure 18).
//
// The simulator reproduces that causal chain with an analytic performance
// model: program time = compute time + Σ accesses×size×(memory cost), with
// SRAM accesses cheaper than HBM by a fixed factor. Absolute times are
// arbitrary; the *ratio* between two repackers is the quantity Figure 18
// reports.
package xlasim

import (
	"math/rand"
	"sort"

	"telamalloc/internal/buffers"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/intervals"
	"telamalloc/internal/workload"
)

// Buffer is a program buffer: an allocation-problem buffer plus its access
// intensity (how many times each byte is touched during execution).
type Buffer struct {
	buffers.Buffer
	// Accesses is the per-byte access count; promoting high-Accesses
	// buffers to SRAM saves the most HBM traffic.
	Accesses int64
}

// Program is one XLA-compiled model for the simulator.
type Program struct {
	Name    string
	Buffers []Buffer
	// SRAM is the CMEM capacity available for promotion.
	SRAM int64
	// HBMCost is the per-byte-access cost multiplier of HBM relative to
	// SRAM (always > 1).
	HBMCost float64
	// Compute is the memory-independent execution time component; larger
	// values make the model less memory-bound (muting repacker impact, as
	// the paper notes for some models).
	Compute float64
}

// Assignment is the outcome of the promotion loop.
type Assignment struct {
	// InSRAM[i] reports whether buffer i was promoted.
	InSRAM []bool
	// Offsets[i] is the SRAM address of promoted buffer i (-1 otherwise).
	Offsets []int64
	// RepackCalls counts repacker invocations.
	RepackCalls int
	// PackedBytes is the total size of promoted buffers.
	PackedBytes int64
}

// MaxRepacks caps repacker invocations per assignment, mirroring the
// paper's "runs up to 50 times" inner loop.
const MaxRepacks = 50

// Assign runs the promotion loop with the given repacker. Buffers are
// considered in decreasing access intensity. Each candidate is first
// appended into the current layout without moving anything; if that fails,
// the repacker re-packs the whole promoted set plus the candidate. If the
// repacker also fails (or the repack budget is exhausted), the candidate
// stays in HBM.
func Assign(prog *Program, repacker heuristics.Allocator) Assignment {
	n := len(prog.Buffers)
	a := Assignment{InSRAM: make([]bool, n), Offsets: make([]int64, n)}
	for i := range a.Offsets {
		a.Offsets[i] = -1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		bx, by := prog.Buffers[order[x]], prog.Buffers[order[y]]
		if bx.Accesses != by.Accesses {
			return bx.Accesses > by.Accesses
		}
		return order[x] < order[y]
	})
	var chosen []int
	for _, cand := range order {
		b := prog.Buffers[cand]
		if b.Size > prog.SRAM {
			continue
		}
		if pos, ok := appendFit(prog, a.Offsets, chosen, cand); ok {
			a.Offsets[cand] = pos
			a.InSRAM[cand] = true
			a.PackedBytes += b.Size
			chosen = append(chosen, cand)
			continue
		}
		if a.RepackCalls >= MaxRepacks {
			continue
		}
		a.RepackCalls++
		trial := append(append([]int(nil), chosen...), cand)
		sub, back := subProblem(prog, trial)
		sol, err := repacker.Allocate(sub)
		if err != nil {
			continue // candidate stays in HBM
		}
		for subID, off := range sol.Offsets {
			a.Offsets[back[subID]] = off
		}
		a.InSRAM[cand] = true
		a.PackedBytes += b.Size
		chosen = trial
	}
	return a
}

// appendFit tries to place candidate cand into the current layout without
// moving any promoted buffer: the lowest gap among temporally overlapping
// promoted buffers.
func appendFit(prog *Program, offsets []int64, chosen []int, cand int) (int64, bool) {
	b := prog.Buffers[cand]
	occ := make([]intervals.Interval, 0, len(chosen))
	for _, id := range chosen {
		o := prog.Buffers[id]
		if b.OverlapsInTime(o.Buffer) {
			occ = append(occ, intervals.Interval{Lo: offsets[id], Hi: offsets[id] + o.Size})
		}
	}
	merged := intervals.SortAndMerge(occ)
	return intervals.LowestFit(merged, b.Size, b.Align, 0, prog.SRAM)
}

// subProblem builds the allocation problem for the given buffer IDs.
func subProblem(prog *Program, ids []int) (*buffers.Problem, []int) {
	p := &buffers.Problem{Name: prog.Name, Memory: prog.SRAM}
	back := make([]int, len(ids))
	for newID, id := range ids {
		p.Buffers = append(p.Buffers, prog.Buffers[id].Buffer)
		back[newID] = id
	}
	p.Normalize()
	return p, back
}

// ExecTime evaluates the analytic performance model for an assignment.
func (prog *Program) ExecTime(a Assignment) float64 {
	var traffic float64
	for i, b := range prog.Buffers {
		bytes := float64(b.Accesses) * float64(b.Size)
		if a.InSRAM[i] {
			traffic += bytes
		} else {
			traffic += bytes * prog.HBMCost
		}
	}
	return prog.Compute + traffic
}

// Speedup returns time(base repacker) / time(test repacker) for the
// program — the y-axis of Figure 18 (values > 1 mean test wins).
func Speedup(prog *Program, test, base heuristics.Allocator) float64 {
	at := Assign(prog, test)
	ab := Assign(prog, base)
	return prog.ExecTime(ab) / prog.ExecTime(at)
}

// FromWorkload converts a workload model into a simulator program. The
// SRAM is sized to ratioPct percent of the model's contention peak (so
// promotion is contended), and access intensities follow a heavy-tailed
// distribution: a minority of buffers are very hot, as in real programs.
// memBoundPct (0..100) controls how memory-bound the program is.
func FromWorkload(m workload.Model, seed int64, ratioPct int, memBoundPct int) *Program {
	p := m.Generate(seed)
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	prog := &Program{Name: m.Name, HBMCost: 8}
	var traffic float64
	for _, b := range p.Buffers {
		acc := int64(1 + rng.Intn(4))
		if rng.Intn(4) == 0 {
			acc *= int64(8 + rng.Intn(32)) // hot buffer
		}
		prog.Buffers = append(prog.Buffers, Buffer{Buffer: b, Accesses: acc})
		traffic += float64(acc) * float64(b.Size)
	}
	peak := buffers.Contention(p).Peak()
	prog.SRAM = peak * int64(ratioPct) / 100
	if memBoundPct <= 0 {
		memBoundPct = 50
	}
	if memBoundPct > 100 {
		memBoundPct = 100
	}
	// Compute time such that memory traffic at full-HBM cost accounts for
	// memBoundPct of total time.
	prog.Compute = traffic * prog.HBMCost * float64(100-memBoundPct) / float64(memBoundPct)
	return prog
}
