package xlasim

import (
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/workload"
)

func TestSpeedupGrowsWithMemoryBoundedness(t *testing.T) {
	// The same model at increasing memory-boundedness: whatever gap exists
	// between the two repackers' memory traffic, its effect on program time
	// must be amplified as compute shrinks — |speedup − 1| is monotone in
	// memory-boundedness (the assignments themselves don't depend on it).
	m := workload.Models[4] // OpenPose: repacker-sensitive
	gc := heuristics.GreedyContention{}
	bf := heuristics.BestFit{}
	var prev float64
	for i, mb := range []int{20, 50, 90} {
		prog := FromWorkload(m, 3, 100, mb)
		dev := Speedup(prog, gc, bf) - 1
		if dev < 0 {
			dev = -dev
		}
		if i > 0 && dev < prev-1e-9 {
			t.Errorf("|speedup-1| shrank with memory-boundedness: %.5f -> %.5f at %d%%", prev, dev, mb)
		}
		prev = dev
	}
}

func TestAssignDeterministic(t *testing.T) {
	prog := FromWorkload(workload.Models[1], 9, 100, 60)
	a := Assign(prog, heuristics.GreedyContention{})
	b := Assign(prog, heuristics.GreedyContention{})
	if a.PackedBytes != b.PackedBytes || a.RepackCalls != b.RepackCalls {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatalf("offsets differ at %d", i)
		}
	}
}

func TestAssignNeverOverlapsPromotedBuffers(t *testing.T) {
	// Stronger validity check across several models/seeds: the promoted set
	// must always be a valid packing in SRAM.
	for _, m := range workload.Models[:4] {
		for seed := int64(1); seed <= 2; seed++ {
			prog := FromWorkload(m, seed, 100, 70)
			a := Assign(prog, heuristics.GreedyContention{})
			var ids []int
			for i, in := range a.InSRAM {
				if in {
					ids = append(ids, i)
				}
			}
			sub, back := subProblem(prog, ids)
			if len(sub.Buffers) == 0 {
				continue
			}
			offs := make([]int64, len(ids))
			for subID := range ids {
				offs[subID] = a.Offsets[back[subID]]
			}
			s := solution(offs)
			if err := s.Validate(sub); err != nil {
				t.Errorf("%s seed %d: invalid SRAM layout: %v", m.Name, seed, err)
			}
		}
	}
}

func TestHBMCostSanity(t *testing.T) {
	prog := FromWorkload(workload.Models[0], 1, 100, 50)
	if prog.HBMCost <= 1 {
		t.Errorf("HBMCost = %g, must exceed 1 for SRAM promotion to matter", prog.HBMCost)
	}
	if len(prog.Buffers) == 0 {
		t.Fatal("no buffers")
	}
	for _, b := range prog.Buffers {
		if b.Accesses <= 0 {
			t.Fatalf("buffer with non-positive accesses: %+v", b)
		}
	}
}

// solution is a tiny helper building a buffers.Solution from offsets.
func solution(offs []int64) *buffers.Solution {
	return &buffers.Solution{Offsets: offs}
}
