package xlasim

import (
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/workload"
)

// makeProgram builds a small deterministic program.
func makeProgram() *Program {
	prog := &Program{Name: "t", SRAM: 8, HBMCost: 5, Compute: 0}
	add := func(start, end, size, acc int64) {
		prog.Buffers = append(prog.Buffers, Buffer{
			Buffer:   buffers.Buffer{ID: len(prog.Buffers), Start: start, End: end, Size: size},
			Accesses: acc,
		})
	}
	add(0, 10, 4, 100) // hot, fits
	add(0, 10, 4, 50)  // second
	add(0, 10, 4, 10)  // doesn't fit with the other two
	add(20, 30, 8, 5)  // different epoch, fits alone
	return prog
}

func TestAssignPromotesHottestFirst(t *testing.T) {
	prog := makeProgram()
	a := Assign(prog, heuristics.GreedyContention{})
	if !a.InSRAM[0] || !a.InSRAM[1] {
		t.Errorf("hot buffers not promoted: %+v", a.InSRAM)
	}
	if a.InSRAM[2] {
		t.Error("third overlapping buffer promoted despite full SRAM")
	}
	if !a.InSRAM[3] {
		t.Error("temporally disjoint buffer not promoted")
	}
	if a.PackedBytes != 16 {
		t.Errorf("PackedBytes = %d, want 16", a.PackedBytes)
	}
	// Promoted buffers must form a valid packing.
	var ids []int
	for i, in := range a.InSRAM {
		if in {
			ids = append(ids, i)
		}
	}
	sub, back := subProblem(prog, ids)
	sol := buffers.NewSolution(len(ids))
	for subID := range ids {
		sol.Offsets[subID] = a.Offsets[back[subID]]
	}
	if err := sol.Validate(sub); err != nil {
		t.Errorf("invalid SRAM layout: %v", err)
	}
}

func TestExecTimeModel(t *testing.T) {
	prog := makeProgram()
	none := Assignment{InSRAM: make([]bool, len(prog.Buffers))}
	all := Assignment{InSRAM: []bool{true, true, true, true}}
	tNone := prog.ExecTime(none)
	tAll := prog.ExecTime(all)
	if tAll >= tNone {
		t.Errorf("SRAM promotion did not reduce time: %g vs %g", tAll, tNone)
	}
	// Exactly HBMCost ratio when compute is zero.
	if tNone/tAll != prog.HBMCost {
		t.Errorf("ratio = %g, want %g", tNone/tAll, prog.HBMCost)
	}
}

func TestSpeedupTelaMallocVsBestFit(t *testing.T) {
	// Across the workload suite, the TelaMalloc repacker must never be
	// slower than best-fit (same promotion loop, strictly better packer)
	// and should win on at least one model. This is Figure 18's shape.
	tm := core.Allocator{Config: core.Config{MaxSteps: 50000}}
	bf := heuristics.BestFit{}
	wins := 0
	for _, m := range workload.Models[:6] {
		prog := FromWorkload(m, 3, 100, 70)
		s := Speedup(prog, tm, bf)
		if s < 0.999 {
			t.Errorf("%s: TelaMalloc repacker slower than best-fit: %.4f", m.Name, s)
		}
		if s > 1.001 {
			wins++
		}
	}
	if wins == 0 {
		t.Error("TelaMalloc repacker never beat best-fit on any model")
	}
}

func TestRepackBudgetRespected(t *testing.T) {
	prog := FromWorkload(workload.Models[0], 1, 90, 80)
	a := Assign(prog, heuristics.GreedyContention{})
	if a.RepackCalls > MaxRepacks {
		t.Errorf("RepackCalls = %d exceeds cap %d", a.RepackCalls, MaxRepacks)
	}
}

func TestFromWorkloadMemBoundedness(t *testing.T) {
	hot := FromWorkload(workload.Models[0], 1, 100, 100)
	cold := FromWorkload(workload.Models[0], 1, 100, 10)
	if hot.Compute != 0 {
		t.Errorf("fully memory-bound program has compute %g", hot.Compute)
	}
	if cold.Compute <= 0 {
		t.Error("compute-bound program has no compute component")
	}
	if hot.SRAM <= 0 {
		t.Error("SRAM not sized")
	}
}

func TestOversizedBuffersStayInHBM(t *testing.T) {
	prog := &Program{Name: "big", SRAM: 4, HBMCost: 5}
	prog.Buffers = append(prog.Buffers, Buffer{
		Buffer:   buffers.Buffer{ID: 0, Start: 0, End: 5, Size: 100},
		Accesses: 1000,
	})
	a := Assign(prog, heuristics.BestFit{})
	if a.InSRAM[0] {
		t.Error("buffer larger than SRAM promoted")
	}
}
