// Package intervals provides small utilities over sets of half-open integer
// intervals [Lo, Hi). They back the spatial reasoning in the repository:
// finding the lowest aligned gap among already-placed buffers
// (solver-guided placement) and best-fit gap selection (the BFC-style
// baseline allocator).
package intervals

import "sort"

// Interval is the half-open range [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Len returns Hi - Lo.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Overlaps reports whether iv and o share at least one point.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo < o.Hi && o.Lo < iv.Hi }

// Contains reports whether x lies within [Lo, Hi).
func (iv Interval) Contains(x int64) bool { return iv.Lo <= x && x < iv.Hi }

// Set is a mutable collection of intervals kept sorted by Lo and merged so
// that stored intervals never overlap or touch. The zero value is an empty
// set ready to use.
type Set struct {
	ivs []Interval
}

// NewSet returns a set pre-populated with the given intervals.
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Add inserts [lo, hi), merging with any overlapping or adjacent intervals.
// Amortised O(log n) plus the number of merged intervals.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= iv.Lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo <= iv.Hi {
		if s.ivs[j].Lo < iv.Lo {
			iv.Lo = s.ivs[j].Lo
		}
		if s.ivs[j].Hi > iv.Hi {
			iv.Hi = s.ivs[j].Hi
		}
		j++
	}
	s.ivs = append(s.ivs[:i], append([]Interval{iv}, s.ivs[j:]...)...)
}

// Covers reports whether [lo, hi) is fully contained in the set.
func (s *Set) Covers(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > iv.Lo })
	return i < len(s.ivs) && s.ivs[i].Lo <= iv.Lo && iv.Hi <= s.ivs[i].Hi
}

// Intersects reports whether any stored interval overlaps [lo, hi).
func (s *Set) Intersects(iv Interval) bool {
	if iv.Empty() {
		return false
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > iv.Lo })
	return i < len(s.ivs) && s.ivs[i].Lo < iv.Hi
}

// Intervals returns the stored intervals in sorted order. The returned slice
// aliases internal storage and must not be modified.
func (s *Set) Intervals() []Interval { return s.ivs }

// Len returns the number of stored (merged) intervals.
func (s *Set) Len() int { return len(s.ivs) }

// Reset empties the set, retaining capacity.
func (s *Set) Reset() { s.ivs = s.ivs[:0] }

// alignUp rounds x up to a multiple of align (align <= 1 is a no-op).
func alignUp(x, align int64) int64 {
	if align <= 1 {
		return x
	}
	if rem := x % align; rem != 0 {
		return x + align - rem
	}
	return x
}

// LowestFit returns the lowest address pos >= minPos with pos % align == 0
// such that [pos, pos+size) does not intersect any interval in occupied and
// pos+size <= limit. occupied must be sorted by Lo and non-overlapping (as
// produced by Set.Intervals or SortAndMerge). The boolean result is false if
// no such position exists.
func LowestFit(occupied []Interval, size, align, minPos, limit int64) (int64, bool) {
	pos := alignUp(minPos, align)
	for _, iv := range occupied {
		if iv.Hi <= pos {
			continue
		}
		if pos+size <= iv.Lo {
			break
		}
		pos = alignUp(iv.Hi, align)
	}
	if pos+size <= limit {
		return pos, true
	}
	return 0, false
}

// BestFit returns the address of the tightest gap that can hold size bytes
// with the given alignment within [0, limit). Among equally tight gaps the
// lowest one wins, mirroring classic best-fit allocators. The boolean result
// is false if nothing fits.
func BestFit(occupied []Interval, size, align, limit int64) (int64, bool) {
	bestPos := int64(-1)
	bestSlack := int64(-1)
	gapStart := int64(0)
	consider := func(lo, hi int64) {
		pos := alignUp(lo, align)
		if pos+size > hi {
			return
		}
		slack := (hi - lo) - size
		if bestSlack < 0 || slack < bestSlack {
			bestSlack = slack
			bestPos = pos
		}
	}
	for _, iv := range occupied {
		if iv.Lo > gapStart {
			consider(gapStart, min64(iv.Lo, limit))
		}
		if iv.Hi > gapStart {
			gapStart = iv.Hi
		}
		if gapStart >= limit {
			break
		}
	}
	if gapStart < limit {
		consider(gapStart, limit)
	}
	if bestPos < 0 {
		return 0, false
	}
	return bestPos, true
}

// SortAndMerge sorts ivs by Lo and merges overlapping or touching intervals
// in place, returning the shortened slice.
func SortAndMerge(ivs []Interval) []Interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
