package intervals

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetAddMerges(t *testing.T) {
	s := NewSet()
	s.Add(Interval{0, 5})
	s.Add(Interval{10, 15})
	s.Add(Interval{4, 11}) // bridges both
	if got := s.Intervals(); !reflect.DeepEqual(got, []Interval{{0, 15}}) {
		t.Errorf("Intervals = %v, want [{0 15}]", got)
	}
}

func TestSetAddAdjacent(t *testing.T) {
	s := NewSet(Interval{0, 5}, Interval{5, 10})
	if s.Len() != 1 {
		t.Errorf("adjacent intervals not merged: %v", s.Intervals())
	}
}

func TestSetAddEmptyIgnored(t *testing.T) {
	s := NewSet()
	s.Add(Interval{5, 5})
	s.Add(Interval{7, 3})
	if s.Len() != 0 {
		t.Errorf("empty intervals stored: %v", s.Intervals())
	}
}

func TestSetCoversAndIntersects(t *testing.T) {
	s := NewSet(Interval{2, 6}, Interval{10, 20})
	cases := []struct {
		iv                Interval
		covers, intersect bool
	}{
		{Interval{3, 5}, true, true},
		{Interval{2, 6}, true, true},
		{Interval{1, 3}, false, true},
		{Interval{6, 10}, false, false},
		{Interval{5, 11}, false, true},
		{Interval{25, 30}, false, false},
		{Interval{4, 4}, true, false}, // empty interval
	}
	for _, c := range cases {
		if got := s.Covers(c.iv); got != c.covers {
			t.Errorf("Covers(%v) = %v, want %v", c.iv, got, c.covers)
		}
		if got := s.Intersects(c.iv); got != c.intersect {
			t.Errorf("Intersects(%v) = %v, want %v", c.iv, got, c.intersect)
		}
	}
}

func TestLowestFit(t *testing.T) {
	occ := []Interval{{4, 8}, {12, 16}}
	cases := []struct {
		size, align, minPos, limit int64
		want                       int64
		ok                         bool
	}{
		{4, 1, 0, 32, 0, true},   // fits before first interval
		{5, 1, 0, 32, 16, true},  // must go after everything (gap 8..12 too small)
		{4, 1, 2, 32, 8, true},   // minPos pushes past [0,4)
		{4, 8, 0, 32, 0, true},   // aligned at 0
		{4, 8, 1, 32, 8, true},   // aligned up collides with [4,8)? pos=8 works
		{3, 1, 0, 7, 0, true},    // tight limit
		{8, 1, 9, 16, 0, false},  // nothing fits
		{4, 16, 0, 20, 0, true},  // pos 0 fits before [4,8)
		{4, 16, 1, 20, 16, true}, // minPos 1 aligns up to 16
		{4, 16, 1, 19, 0, false}, // aligned candidate exceeds limit
	}
	for i, c := range cases {
		got, ok := LowestFit(occ, c.size, c.align, c.minPos, c.limit)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("case %d: LowestFit = (%d, %v), want (%d, %v)", i, got, ok, c.want, c.ok)
		}
	}
}

func TestLowestFitEmptyOccupied(t *testing.T) {
	got, ok := LowestFit(nil, 4, 8, 3, 32)
	if !ok || got != 8 {
		t.Errorf("LowestFit = (%d, %v), want (8, true)", got, ok)
	}
}

func TestBestFit(t *testing.T) {
	occ := []Interval{{0, 4}, {10, 12}, {20, 30}}
	// Gaps: [4,10) len 6, [12,20) len 8, [30,limit).
	got, ok := BestFit(occ, 5, 1, 30)
	if !ok || got != 4 {
		t.Errorf("BestFit size 5 = (%d, %v), want (4, true)", got, ok)
	}
	got, ok = BestFit(occ, 7, 1, 30)
	if !ok || got != 12 {
		t.Errorf("BestFit size 7 = (%d, %v), want (12, true)", got, ok)
	}
	got, ok = BestFit(occ, 2, 1, 40)
	// exact-tightness preference: gap [30,40) has len 10; [4,10) len 6 is tighter... but [10,12) is occupied.
	if !ok || got != 4 {
		t.Errorf("BestFit size 2 = (%d, %v), want (4, true)", got, ok)
	}
	if _, ok = BestFit(occ, 11, 1, 30); ok {
		t.Error("BestFit found room for an impossible request")
	}
}

func TestBestFitAlignment(t *testing.T) {
	occ := []Interval{{0, 3}}
	got, ok := BestFit(occ, 4, 8, 16)
	if !ok || got != 8 {
		t.Errorf("BestFit aligned = (%d, %v), want (8, true)", got, ok)
	}
}

func TestSortAndMerge(t *testing.T) {
	in := []Interval{{10, 12}, {0, 5}, {4, 6}, {12, 14}}
	got := SortAndMerge(in)
	want := []Interval{{0, 6}, {10, 14}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortAndMerge = %v, want %v", got, want)
	}
	if got := SortAndMerge(nil); len(got) != 0 {
		t.Errorf("SortAndMerge(nil) = %v", got)
	}
}

func TestPropertyLowestFitIsValidAndMinimal(t *testing.T) {
	// Property: the result of LowestFit never intersects occupied intervals,
	// respects alignment/minPos/limit, and no lower valid position exists.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ivs []Interval
		for i := 0; i < rng.Intn(8); i++ {
			lo := rng.Int63n(100)
			ivs = append(ivs, Interval{lo, lo + 1 + rng.Int63n(20)})
		}
		occ := SortAndMerge(ivs)
		size := 1 + rng.Int63n(10)
		align := []int64{1, 2, 4, 8}[rng.Intn(4)]
		minPos := rng.Int63n(30)
		limit := int64(150)
		pos, ok := LowestFit(occ, size, align, minPos, limit)
		valid := func(p int64) bool {
			if p < minPos || p%align != 0 || p+size > limit {
				return false
			}
			for _, iv := range occ {
				if p < iv.Hi && iv.Lo < p+size {
					return false
				}
			}
			return true
		}
		if ok {
			if !valid(pos) {
				return false
			}
			for p := int64(0); p < pos; p += align {
				if p >= minPos && valid(p) {
					return false // found something lower
				}
			}
			return true
		}
		// Claimed impossible: verify by brute force.
		for p := int64(0); p+size <= limit; p += align {
			if valid(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertySetInvariants(t *testing.T) {
	// Property: after arbitrary Adds, stored intervals are sorted, disjoint,
	// non-adjacent, and membership matches a brute-force bitmap.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet()
		covered := make([]bool, 200)
		for i := 0; i < 20; i++ {
			lo := rng.Int63n(180)
			hi := lo + rng.Int63n(20)
			s.Add(Interval{lo, hi})
			for x := lo; x < hi; x++ {
				covered[x] = true
			}
		}
		prev := Interval{-10, -5}
		for _, iv := range s.Intervals() {
			if iv.Empty() || iv.Lo <= prev.Hi {
				return false
			}
			prev = iv
		}
		for x := int64(0); x < 200; x++ {
			if covered[x] != s.Intersects(Interval{x, x + 1}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
