package buffers

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeOverlapsSmall(t *testing.T) {
	p := &Problem{Buffers: []Buffer{
		{Start: 0, End: 5, Size: 1},
		{Start: 3, End: 8, Size: 1},
		{Start: 5, End: 9, Size: 1}, // touches #0 only at t=5 (exclusive end): no overlap
		{Start: 20, End: 30, Size: 1},
	}, Memory: 10}
	p.Normalize()
	ov := ComputeOverlaps(p)
	wantPairs := [][2]int{{0, 1}, {1, 2}}
	if ov.PairCount != len(wantPairs) {
		t.Fatalf("PairCount = %d, want %d (neighbors: %v)", ov.PairCount, len(wantPairs), ov.Neighbors)
	}
	for _, w := range wantPairs {
		if !ov.Overlapping(w[0], w[1]) || !ov.Overlapping(w[1], w[0]) {
			t.Errorf("pair %v missing", w)
		}
	}
	if ov.Overlapping(0, 2) {
		t.Error("touching buffers 0 and 2 reported as overlapping")
	}
	if ov.Degree(3) != 0 {
		t.Errorf("isolated buffer has degree %d", ov.Degree(3))
	}
}

func TestComputeOverlapsFullOverlap(t *testing.T) {
	const n = 40
	p := &Problem{Memory: 1 << 30}
	for i := 0; i < n; i++ {
		p.Buffers = append(p.Buffers, Buffer{Start: 0, End: 10, Size: 1})
	}
	p.Normalize()
	ov := ComputeOverlaps(p)
	if want := n * (n - 1) / 2; ov.PairCount != want {
		t.Errorf("PairCount = %d, want %d", ov.PairCount, want)
	}
	for i := 0; i < n; i++ {
		if ov.Degree(i) != n-1 {
			t.Errorf("Degree(%d) = %d, want %d", i, ov.Degree(i), n-1)
		}
	}
}

func TestComputeOverlapsNonOverlapping(t *testing.T) {
	p := &Problem{Memory: 1 << 30}
	for i := int64(0); i < 50; i++ {
		p.Buffers = append(p.Buffers, Buffer{Start: i * 10, End: i*10 + 10, Size: 1})
	}
	p.Normalize()
	ov := ComputeOverlaps(p)
	if ov.PairCount != 0 {
		t.Errorf("PairCount = %d, want 0", ov.PairCount)
	}
}

func TestComputeOverlapsMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 2+rng.Intn(40))
		ov := ComputeOverlaps(p)
		for i := range p.Buffers {
			for j := range p.Buffers {
				if i == j {
					continue
				}
				want := p.Buffers[i].OverlapsInTime(p.Buffers[j])
				if got := ov.Overlapping(i, j); got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOverlapsEmptyProblem(t *testing.T) {
	ov := ComputeOverlaps(&Problem{})
	if ov.PairCount != 0 || len(ov.Neighbors) != 0 {
		t.Errorf("empty problem produced overlaps: %+v", ov)
	}
}
