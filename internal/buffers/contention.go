package buffers

import "sort"

// ContentionStep is one segment of a piecewise-constant contention profile:
// the total number of live bytes is Contention for every time slot t with
// Start <= t < End.
type ContentionStep struct {
	Start, End int64
	Contention int64
}

// ContentionProfile is the piecewise-constant function mapping logical time
// to the sum of sizes of all live buffers, as defined in §3.1 of the paper.
// Steps are sorted by Start and contiguous over the problem's time horizon.
type ContentionProfile struct {
	Steps []ContentionStep
}

// Contention computes the contention profile of the problem with a sweep
// line over start/end events. O(n log n).
func Contention(p *Problem) ContentionProfile {
	if len(p.Buffers) == 0 {
		return ContentionProfile{}
	}
	type delta struct {
		t int64
		d int64
	}
	deltas := make([]delta, 0, 2*len(p.Buffers))
	for _, b := range p.Buffers {
		deltas = append(deltas, delta{b.Start, b.Size}, delta{b.End, -b.Size})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].t < deltas[j].t })

	var profile ContentionProfile
	var cur int64
	prevT := deltas[0].t
	for i := 0; i < len(deltas); {
		t := deltas[i].t
		if t != prevT {
			profile.Steps = append(profile.Steps, ContentionStep{prevT, t, cur})
			prevT = t
		}
		for i < len(deltas) && deltas[i].t == t {
			cur += deltas[i].d
			i++
		}
	}
	return profile
}

// Peak returns the maximum contention of the profile, which is a lower bound
// on the memory needed by any packing.
func (cp ContentionProfile) Peak() int64 {
	var peak int64
	for _, s := range cp.Steps {
		if s.Contention > peak {
			peak = s.Contention
		}
	}
	return peak
}

// At returns the contention at time t (zero outside the profile's range).
// O(log n) by binary search.
func (cp ContentionProfile) At(t int64) int64 {
	i := sort.Search(len(cp.Steps), func(i int) bool { return cp.Steps[i].End > t })
	if i == len(cp.Steps) || cp.Steps[i].Start > t {
		return 0
	}
	return cp.Steps[i].Contention
}

// MaxOver returns the maximum contention over [start, end). O(log n + k).
func (cp ContentionProfile) MaxOver(start, end int64) int64 {
	i := sort.Search(len(cp.Steps), func(i int) bool { return cp.Steps[i].End > start })
	var peak int64
	for ; i < len(cp.Steps) && cp.Steps[i].Start < end; i++ {
		if cp.Steps[i].Contention > peak {
			peak = cp.Steps[i].Contention
		}
	}
	return peak
}

// BufferContention returns, for every buffer, the maximum contention of any
// time slot during which the buffer is live — the quantity the baseline
// heuristic (§3.1) orders buffers by.
func BufferContention(p *Problem) []int64 {
	profile := Contention(p)
	out := make([]int64, len(p.Buffers))
	for i, b := range p.Buffers {
		out[i] = profile.MaxOver(b.Start, b.End)
	}
	return out
}
