// Package buffers defines the core data model of the on-chip memory
// allocation problem: buffers with fixed logical live ranges and sizes that
// must be packed into a shared scratchpad memory without overlapping.
//
// The types in this package are shared by every allocator in the repository
// (the greedy heuristics, the exact ordering solver, and TelaMalloc itself)
// as well as by the workload generators and the experiment harness.
package buffers

import (
	"errors"
	"fmt"
	"sort"
)

// Buffer describes one tensor buffer that must be placed in on-chip memory.
//
// Start and End are logical (compile-time) timestamps: the buffer is live for
// every time slot t with Start <= t < End. Size is in bytes (or any other
// discrete allocation unit). Align, when greater than one, constrains the
// chosen address to be a multiple of Align; zero and one both mean
// "unconstrained".
type Buffer struct {
	// ID is the buffer's index within its Problem. Problems normalise IDs to
	// 0..n-1 so allocators can use them as slice indices.
	ID int
	// Start is the first logical time slot at which the buffer is live.
	Start int64
	// End is the first logical time slot at which the buffer is no longer
	// live (exclusive).
	End int64
	// Size is the number of bytes the buffer occupies.
	Size int64
	// Align constrains the buffer's address to a multiple of this value.
	// Values <= 1 mean the address is unconstrained.
	Align int64
}

// Lifetime returns the number of logical time slots for which the buffer is
// live.
func (b Buffer) Lifetime() int64 { return b.End - b.Start }

// Area returns size × lifetime, the quantity used by the "largest area"
// selection heuristic. It is computed in float64 so that extreme (but
// valid) sizes and lifetimes cannot overflow.
func (b Buffer) Area() float64 { return float64(b.Size) * float64(b.Lifetime()) }

// OverlapsInTime reports whether the live ranges of b and o share at least
// one time slot.
func (b Buffer) OverlapsInTime(o Buffer) bool {
	return b.Start < o.End && o.Start < b.End
}

// AlignUp rounds addr up to the buffer's alignment. Buffers with Align <= 1
// return addr unchanged.
func (b Buffer) AlignUp(addr int64) int64 {
	if b.Align <= 1 {
		return addr
	}
	rem := addr % b.Align
	if rem == 0 {
		return addr
	}
	return addr + (b.Align - rem)
}

func (b Buffer) String() string {
	return fmt.Sprintf("buf#%d[t=%d..%d size=%d align=%d]", b.ID, b.Start, b.End, b.Size, b.Align)
}

// Problem is one instance of the memory allocation problem: a set of buffers
// and a memory limit. The zero value is an empty, trivially solvable problem.
type Problem struct {
	// Buffers holds the buffers to allocate. After Normalize, Buffers[i].ID == i.
	Buffers []Buffer
	// Memory is the size of the scratchpad in bytes; every placement must
	// satisfy pos + size <= Memory.
	Memory int64
	// Name optionally identifies the workload the problem was derived from.
	Name string
}

// Errors returned by Problem.Validate.
var (
	ErrNegativeSize  = errors.New("buffers: buffer has non-positive size")
	ErrEmptyLifetime = errors.New("buffers: buffer has empty or inverted live range")
	ErrBadAlignment  = errors.New("buffers: buffer has negative alignment")
	ErrBadMemory     = errors.New("buffers: memory limit is not positive")
	ErrTooLarge      = errors.New("buffers: buffer is larger than the memory limit")
	ErrOutOfRange    = errors.New("buffers: value exceeds the supported magnitude")
)

// Magnitude caps enforced by Validate. They are far beyond any real
// accelerator scratchpad or compile-time schedule, and they guarantee that
// the arithmetic throughout the allocator (positions, contention sums,
// propagation bounds) stays safely inside int64.
const (
	// MaxMemory bounds the memory limit and therefore every size/address.
	MaxMemory = int64(1) << 44 // 16 TiB
	// MaxTime bounds |Start| and |End|.
	MaxTime = int64(1) << 32
)

// Validate checks structural sanity of the problem (positive sizes, ordered
// live ranges, buffers that individually fit in memory). It does not attempt
// to decide satisfiability.
func (p *Problem) Validate() error {
	if p.Memory <= 0 {
		return fmt.Errorf("%w: %d", ErrBadMemory, p.Memory)
	}
	if p.Memory > MaxMemory {
		return fmt.Errorf("%w: memory %d > %d", ErrOutOfRange, p.Memory, MaxMemory)
	}
	for _, b := range p.Buffers {
		switch {
		case b.Size <= 0:
			return fmt.Errorf("%w: %v", ErrNegativeSize, b)
		case b.Start >= b.End:
			return fmt.Errorf("%w: %v", ErrEmptyLifetime, b)
		case b.Align < 0:
			return fmt.Errorf("%w: %v", ErrBadAlignment, b)
		case b.Size > p.Memory:
			return fmt.Errorf("%w: %v (memory=%d)", ErrTooLarge, b, p.Memory)
		case b.Start < -MaxTime || b.End > MaxTime:
			return fmt.Errorf("%w: %v", ErrOutOfRange, b)
		case b.Align > p.Memory:
			return fmt.Errorf("%w (alignment): %v", ErrOutOfRange, b)
		case b.Align > 1 && b.AlignUp(0)+b.Size > p.Memory && b.AlignUp(p.Memory-b.Size) != p.Memory-b.Size && alignDown(p.Memory-b.Size, b.Align) < 0:
			return fmt.Errorf("%w (after alignment): %v", ErrTooLarge, b)
		}
	}
	return nil
}

func alignDown(addr, align int64) int64 {
	if align <= 1 {
		return addr
	}
	return addr - addr%align
}

// Normalize rewrites buffer IDs to their slice index. Allocators rely on this
// invariant; generators call it before returning a problem.
func (p *Problem) Normalize() {
	for i := range p.Buffers {
		p.Buffers[i].ID = i
	}
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{Memory: p.Memory, Name: p.Name}
	q.Buffers = append([]Buffer(nil), p.Buffers...)
	return q
}

// TimeHorizon returns the exclusive maximum End across all buffers (and the
// minimum Start), i.e. the logical time window covered by the problem.
func (p *Problem) TimeHorizon() (minStart, maxEnd int64) {
	if len(p.Buffers) == 0 {
		return 0, 0
	}
	minStart, maxEnd = p.Buffers[0].Start, p.Buffers[0].End
	for _, b := range p.Buffers[1:] {
		if b.Start < minStart {
			minStart = b.Start
		}
		if b.End > maxEnd {
			maxEnd = b.End
		}
	}
	return minStart, maxEnd
}

// TotalBytes returns the sum of all buffer sizes.
func (p *Problem) TotalBytes() int64 {
	var total int64
	for _, b := range p.Buffers {
		total += b.Size
	}
	return total
}

// Solution maps each buffer (by ID) to its chosen start address.
type Solution struct {
	// Offsets[i] is the address assigned to buffer i. len(Offsets) equals the
	// number of buffers in the problem the solution was produced for.
	Offsets []int64
}

// NewSolution returns a solution with n unassigned (-1) offsets.
func NewSolution(n int) *Solution {
	s := &Solution{Offsets: make([]int64, n)}
	for i := range s.Offsets {
		s.Offsets[i] = -1
	}
	return s
}

// PeakUsage returns the highest address in use at any time, i.e. the minimum
// memory limit under which this solution would still be valid.
func (s *Solution) PeakUsage(p *Problem) int64 {
	var peak int64
	for i, b := range p.Buffers {
		if off := s.Offsets[i]; off >= 0 && off+b.Size > peak {
			peak = off + b.Size
		}
	}
	return peak
}

// Errors returned by Solution.Validate.
var (
	ErrUnassigned   = errors.New("buffers: buffer has no assigned offset")
	ErrOutOfBounds  = errors.New("buffers: buffer exceeds the memory limit")
	ErrMisaligned   = errors.New("buffers: buffer offset violates its alignment")
	ErrOverlap      = errors.New("buffers: two live buffers overlap in memory")
	ErrWrongBuffers = errors.New("buffers: solution size does not match problem")
)

// Validate checks that the solution is a correct packing for p: every buffer
// assigned, in bounds, aligned, and spatially disjoint from every temporally
// overlapping buffer. It runs a sweep line and is O(n log n + k) where k is
// the number of temporally overlapping pairs in conflict-prone regions.
func (s *Solution) Validate(p *Problem) error {
	if len(s.Offsets) != len(p.Buffers) {
		return fmt.Errorf("%w: got %d offsets for %d buffers", ErrWrongBuffers, len(s.Offsets), len(p.Buffers))
	}
	for i, b := range p.Buffers {
		off := s.Offsets[i]
		switch {
		case off < 0:
			return fmt.Errorf("%w: %v", ErrUnassigned, b)
		case off+b.Size > p.Memory:
			return fmt.Errorf("%w: %v at %d (memory=%d)", ErrOutOfBounds, b, off, p.Memory)
		case b.Align > 1 && off%b.Align != 0:
			return fmt.Errorf("%w: %v at %d", ErrMisaligned, b, off)
		}
	}
	// Sweep over time: maintain the set of live buffers ordered by address
	// and check spatial disjointness pairwise on insertion.
	type event struct {
		t     int64
		add   bool
		index int
	}
	events := make([]event, 0, 2*len(p.Buffers))
	for i, b := range p.Buffers {
		events = append(events, event{b.Start, true, i}, event{b.End, false, i})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		// Process removals before additions at the same timestamp: End is
		// exclusive, so a buffer ending at t does not conflict with one
		// starting at t.
		return !events[a].add && events[b].add
	})
	live := make(map[int]struct{})
	for _, ev := range events {
		if !ev.add {
			delete(live, ev.index)
			continue
		}
		nb := p.Buffers[ev.index]
		noff := s.Offsets[ev.index]
		for j := range live {
			ob := p.Buffers[j]
			ooff := s.Offsets[j]
			if noff < ooff+ob.Size && ooff < noff+nb.Size {
				return fmt.Errorf("%w: %v at %d and %v at %d", ErrOverlap, nb, noff, ob, ooff)
			}
		}
		live[ev.index] = struct{}{}
	}
	return nil
}

// Assigned reports how many buffers have a non-negative offset.
func (s *Solution) Assigned() int {
	n := 0
	for _, off := range s.Offsets {
		if off >= 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the solution.
func (s *Solution) Clone() *Solution {
	return &Solution{Offsets: append([]int64(nil), s.Offsets...)}
}
