package buffers

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBufferLifetimeArea(t *testing.T) {
	b := Buffer{Start: 3, End: 10, Size: 4}
	if got := b.Lifetime(); got != 7 {
		t.Errorf("Lifetime = %d, want 7", got)
	}
	if got := b.Area(); got != 28 {
		t.Errorf("Area = %g, want 28", got)
	}
}

func TestOverlapsInTime(t *testing.T) {
	cases := []struct {
		a, b Buffer
		want bool
	}{
		{Buffer{Start: 0, End: 5}, Buffer{Start: 5, End: 10}, false}, // touching (End exclusive)
		{Buffer{Start: 0, End: 6}, Buffer{Start: 5, End: 10}, true},
		{Buffer{Start: 5, End: 10}, Buffer{Start: 0, End: 6}, true},
		{Buffer{Start: 0, End: 3}, Buffer{Start: 4, End: 6}, false},
		{Buffer{Start: 2, End: 8}, Buffer{Start: 3, End: 4}, true}, // containment
		{Buffer{Start: 3, End: 4}, Buffer{Start: 3, End: 4}, true}, // identical
	}
	for _, c := range cases {
		if got := c.a.OverlapsInTime(c.b); got != c.want {
			t.Errorf("OverlapsInTime(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.OverlapsInTime(c.a); got != c.want {
			t.Errorf("symmetry violated for (%v, %v)", c.a, c.b)
		}
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct {
		align, addr, want int64
	}{
		{0, 7, 7},
		{1, 7, 7},
		{8, 0, 0},
		{8, 1, 8},
		{8, 8, 8},
		{8, 9, 16},
		{32, 33, 64},
	}
	for _, c := range cases {
		b := Buffer{Align: c.align}
		if got := b.AlignUp(c.addr); got != c.want {
			t.Errorf("align=%d AlignUp(%d) = %d, want %d", c.align, c.addr, got, c.want)
		}
	}
}

func TestValidateMagnitudeCaps(t *testing.T) {
	mk := func(b Buffer, mem int64) Problem {
		return Problem{Memory: mem, Buffers: []Buffer{b}}
	}
	cases := []struct {
		name string
		p    Problem
	}{
		{"memory too large", Problem{Memory: MaxMemory + 1}},
		{"end beyond MaxTime", mk(Buffer{Start: 0, End: MaxTime + 1, Size: 1}, 8)},
		{"start below -MaxTime", mk(Buffer{Start: -MaxTime - 1, End: 0, Size: 1}, 8)},
		{"alignment beyond memory", mk(Buffer{Start: 0, End: 1, Size: 1, Align: 16}, 8)},
	}
	for _, c := range cases {
		if err := c.p.Validate(); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("%s: Validate = %v, want ErrOutOfRange", c.name, err)
		}
	}
	// A problem at exactly the caps is accepted.
	ok := mk(Buffer{Start: -MaxTime, End: MaxTime, Size: MaxMemory}, MaxMemory)
	if err := ok.Validate(); err != nil {
		t.Errorf("caps rejected at the boundary: %v", err)
	}
}

func TestProblemValidate(t *testing.T) {
	ok := &Problem{
		Buffers: []Buffer{{ID: 0, Start: 0, End: 4, Size: 8}},
		Memory:  16,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Problem
		want error
	}{
		{"zero memory", Problem{Memory: 0}, ErrBadMemory},
		{"zero size", Problem{Memory: 8, Buffers: []Buffer{{Start: 0, End: 1, Size: 0}}}, ErrNegativeSize},
		{"inverted range", Problem{Memory: 8, Buffers: []Buffer{{Start: 4, End: 2, Size: 1}}}, ErrEmptyLifetime},
		{"empty range", Problem{Memory: 8, Buffers: []Buffer{{Start: 2, End: 2, Size: 1}}}, ErrEmptyLifetime},
		{"negative align", Problem{Memory: 8, Buffers: []Buffer{{Start: 0, End: 1, Size: 1, Align: -2}}}, ErrBadAlignment},
		{"oversized", Problem{Memory: 8, Buffers: []Buffer{{Start: 0, End: 1, Size: 9}}}, ErrTooLarge},
	}
	for _, c := range cases {
		if err := c.p.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: Validate = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestNormalizeAndClone(t *testing.T) {
	p := &Problem{
		Buffers: []Buffer{{ID: 42, Start: 0, End: 1, Size: 1}, {ID: 7, Start: 1, End: 2, Size: 2}},
		Memory:  8,
		Name:    "x",
	}
	p.Normalize()
	for i, b := range p.Buffers {
		if b.ID != i {
			t.Errorf("Buffers[%d].ID = %d after Normalize", i, b.ID)
		}
	}
	q := p.Clone()
	q.Buffers[0].Size = 99
	if p.Buffers[0].Size == 99 {
		t.Error("Clone shares buffer storage with original")
	}
	if q.Memory != p.Memory || q.Name != p.Name {
		t.Error("Clone lost scalar fields")
	}
}

func TestTimeHorizonAndTotalBytes(t *testing.T) {
	p := &Problem{Buffers: []Buffer{
		{Start: 5, End: 9, Size: 3},
		{Start: 2, End: 4, Size: 4},
		{Start: 3, End: 12, Size: 5},
	}, Memory: 100}
	lo, hi := p.TimeHorizon()
	if lo != 2 || hi != 12 {
		t.Errorf("TimeHorizon = (%d, %d), want (2, 12)", lo, hi)
	}
	if got := p.TotalBytes(); got != 12 {
		t.Errorf("TotalBytes = %d, want 12", got)
	}
	empty := &Problem{}
	if lo, hi := empty.TimeHorizon(); lo != 0 || hi != 0 {
		t.Errorf("empty TimeHorizon = (%d, %d)", lo, hi)
	}
}

func TestSolutionValidateAcceptsFigure1StylePacking(t *testing.T) {
	// Two long buffers plus one that fits between them.
	p := &Problem{
		Buffers: []Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
			{Start: 2, End: 8, Size: 8},
		},
		Memory: 16,
	}
	p.Normalize()
	s := &Solution{Offsets: []int64{0, 4, 8}}
	if err := s.Validate(p); err != nil {
		t.Fatalf("valid packing rejected: %v", err)
	}
	if got := s.PeakUsage(p); got != 16 {
		t.Errorf("PeakUsage = %d, want 16", got)
	}
}

func TestSolutionValidateRejections(t *testing.T) {
	p := &Problem{
		Buffers: []Buffer{
			{Start: 0, End: 4, Size: 4, Align: 0},
			{Start: 2, End: 6, Size: 4, Align: 8},
		},
		Memory: 16,
	}
	p.Normalize()
	cases := []struct {
		name    string
		offsets []int64
		want    error
	}{
		{"wrong length", []int64{0}, ErrWrongBuffers},
		{"unassigned", []int64{-1, 0}, ErrUnassigned},
		{"out of bounds", []int64{14, 0}, ErrOutOfBounds},
		{"misaligned", []int64{0, 4}, ErrMisaligned},
		{"overlap", []int64{0, 0}, ErrOverlap},
		{"valid", []int64{0, 8}, nil},
	}
	for _, c := range cases {
		s := &Solution{Offsets: c.offsets}
		err := s.Validate(p)
		if c.want == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: Validate = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestSolutionValidateAllowsTemporallyDisjointSpatialOverlap(t *testing.T) {
	p := &Problem{
		Buffers: []Buffer{
			{Start: 0, End: 5, Size: 8},
			{Start: 5, End: 10, Size: 8}, // reuses the same addresses after the first dies
		},
		Memory: 8,
	}
	p.Normalize()
	s := &Solution{Offsets: []int64{0, 0}}
	if err := s.Validate(p); err != nil {
		t.Fatalf("address reuse across disjoint lifetimes rejected: %v", err)
	}
}

func TestNewSolutionStartsUnassigned(t *testing.T) {
	s := NewSolution(3)
	if got := s.Assigned(); got != 0 {
		t.Errorf("Assigned = %d, want 0", got)
	}
	s.Offsets[1] = 5
	if got := s.Assigned(); got != 1 {
		t.Errorf("Assigned = %d, want 1", got)
	}
	c := s.Clone()
	c.Offsets[0] = 7
	if s.Offsets[0] != -1 {
		t.Error("Clone shares offsets with original")
	}
}

// randomProblem builds a random but structurally valid problem.
func randomProblem(rng *rand.Rand, n int) *Problem {
	p := &Problem{Memory: 1 << 20}
	for i := 0; i < n; i++ {
		start := rng.Int63n(100)
		p.Buffers = append(p.Buffers, Buffer{
			Start: start,
			End:   start + 1 + rng.Int63n(40),
			Size:  1 + rng.Int63n(1000),
		})
	}
	p.Normalize()
	return p
}

func TestPropertyValidateAgreesWithBruteForce(t *testing.T) {
	// Property: the sweep-line Validate agrees with an O(n^2) brute-force
	// overlap check on random problems with random (possibly bad) offsets.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 2+rng.Intn(20))
		s := NewSolution(len(p.Buffers))
		for i, b := range p.Buffers {
			s.Offsets[i] = rng.Int63n(p.Memory - b.Size + 1)
		}
		want := bruteForceOverlap(p, s)
		got := errors.Is(s.Validate(p), ErrOverlap)
		if s.Validate(p) == nil && want {
			return false
		}
		return got == want || s.Validate(p) == nil == !want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func bruteForceOverlap(p *Problem, s *Solution) bool {
	for i := range p.Buffers {
		for j := i + 1; j < len(p.Buffers); j++ {
			a, b := p.Buffers[i], p.Buffers[j]
			if !a.OverlapsInTime(b) {
				continue
			}
			oa, ob := s.Offsets[i], s.Offsets[j]
			if oa < ob+b.Size && ob < oa+a.Size {
				return true
			}
		}
	}
	return false
}
