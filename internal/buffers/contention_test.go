package buffers

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContentionSimple(t *testing.T) {
	p := &Problem{Buffers: []Buffer{
		{Start: 0, End: 10, Size: 4},
		{Start: 2, End: 6, Size: 8},
		{Start: 8, End: 12, Size: 2},
	}, Memory: 100}
	p.Normalize()
	prof := Contention(p)
	wantAt := map[int64]int64{
		0:  4,
		1:  4,
		2:  12,
		5:  12,
		6:  4,
		8:  6,
		9:  6,
		10: 2,
		11: 2,
		12: 0, // after everything ends
		99: 0,
	}
	for tm, want := range wantAt {
		if got := prof.At(tm); got != want {
			t.Errorf("At(%d) = %d, want %d", tm, got, want)
		}
	}
	if got := prof.Peak(); got != 12 {
		t.Errorf("Peak = %d, want 12", got)
	}
	if got := prof.MaxOver(6, 12); got != 6 {
		t.Errorf("MaxOver(6,12) = %d, want 6", got)
	}
	if got := prof.MaxOver(0, 3); got != 12 {
		t.Errorf("MaxOver(0,3) = %d, want 12", got)
	}
}

func TestContentionEmpty(t *testing.T) {
	prof := Contention(&Problem{})
	if len(prof.Steps) != 0 || prof.Peak() != 0 || prof.At(5) != 0 {
		t.Errorf("empty problem produced non-empty profile: %+v", prof)
	}
}

func TestContentionStepsAreContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 50)
	prof := Contention(p)
	for i := 1; i < len(prof.Steps); i++ {
		if prof.Steps[i].Start != prof.Steps[i-1].End {
			t.Fatalf("steps %d and %d not contiguous: %+v %+v", i-1, i, prof.Steps[i-1], prof.Steps[i])
		}
	}
	if last := prof.Steps[len(prof.Steps)-1]; last.Contention != 0 {
		// The final step (after all Ends) must have zero contention only if
		// it exists; our sweep stops at the last event so the last step ends
		// exactly at the global max End.
		_, hi := p.TimeHorizon()
		if last.End != hi {
			t.Fatalf("profile does not end at the horizon: %+v vs %d", last, hi)
		}
	}
}

func TestBufferContentionMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 2+rng.Intn(30))
		got := BufferContention(p)
		for i, b := range p.Buffers {
			var want int64
			for tm := b.Start; tm < b.End; tm++ {
				var c int64
				for _, o := range p.Buffers {
					if o.Start <= tm && tm < o.End {
						c += o.Size
					}
				}
				if c > want {
					want = c
				}
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPeakIsLowerBoundOnAnyValidPacking(t *testing.T) {
	// Property: peak contention <= peak usage of any valid solution.
	p := &Problem{Buffers: []Buffer{
		{Start: 0, End: 4, Size: 6},
		{Start: 2, End: 8, Size: 6},
		{Start: 6, End: 10, Size: 6},
	}, Memory: 100}
	p.Normalize()
	s := &Solution{Offsets: []int64{0, 6, 0}}
	if err := s.Validate(p); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if peak := Contention(p).Peak(); peak > s.PeakUsage(p) {
		t.Errorf("contention peak %d exceeds packing peak %d", peak, s.PeakUsage(p))
	}
}
