package buffers

import "sort"

// Overlaps is the static temporal-overlap adjacency of a problem: for each
// buffer, the IDs of all other buffers whose live ranges intersect its own.
// The paper calls these pairs OverlappingBuffers; they determine which pairs
// need spatial-disjointness constraints. The structure is computed once per
// problem and shared by the CP engine, the ILP solver and all heuristics.
type Overlaps struct {
	// Neighbors[i] lists, in increasing ID order, the buffers that overlap
	// buffer i in time.
	Neighbors [][]int
	// PairCount is the number of unordered overlapping pairs.
	PairCount int
}

// ComputeOverlaps builds the overlap adjacency with a sweep line. The output
// size is Θ(number of overlapping pairs), which is quadratic for fully
// overlapping inputs — the same scaling limit the paper reports in Table 1.
func ComputeOverlaps(p *Problem) *Overlaps {
	n := len(p.Buffers)
	ov := &Overlaps{Neighbors: make([][]int, n)}
	if n == 0 {
		return ov
	}
	type event struct {
		t     int64
		add   bool
		index int
	}
	events := make([]event, 0, 2*n)
	for i, b := range p.Buffers {
		events = append(events, event{b.Start, true, i}, event{b.End, false, i})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return !events[a].add && events[b].add // process ends first (End exclusive)
	})
	live := make([]int, 0, n)
	for _, ev := range events {
		if !ev.add {
			for k, id := range live {
				if id == ev.index {
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					break
				}
			}
			continue
		}
		for _, id := range live {
			ov.Neighbors[id] = append(ov.Neighbors[id], ev.index)
			ov.Neighbors[ev.index] = append(ov.Neighbors[ev.index], id)
			ov.PairCount++
		}
		live = append(live, ev.index)
	}
	for i := range ov.Neighbors {
		sort.Ints(ov.Neighbors[i])
	}
	return ov
}

// Overlapping reports whether buffers a and b overlap in time, using the
// precomputed adjacency. O(log deg).
func (ov *Overlaps) Overlapping(a, b int) bool {
	ns := ov.Neighbors[a]
	i := sort.SearchInts(ns, b)
	return i < len(ns) && ns[i] == b
}

// Degree returns the number of temporal neighbours of buffer i.
func (ov *Overlaps) Degree(i int) int { return len(ov.Neighbors[i]) }
