// Package render draws allocation problems and packings as ASCII art — the
// visual language of the paper's Figure 1. Rows are addresses (top = high),
// columns are logical time; each buffer is drawn with a repeating glyph.
// Intended for examples, CLI output and debugging; large problems are
// downsampled to a requested canvas size.
package render

import (
	"fmt"
	"strings"

	"telamalloc/internal/buffers"
)

// glyphs cycles through buffer markers.
const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// Options controls the canvas.
type Options struct {
	// MaxWidth bounds the number of time columns (0 = 100).
	MaxWidth int
	// MaxHeight bounds the number of address rows (0 = 40).
	MaxHeight int
}

func (o Options) withDefaults() Options {
	if o.MaxWidth == 0 {
		o.MaxWidth = 100
	}
	if o.MaxHeight == 0 {
		o.MaxHeight = 40
	}
	return o
}

// Packing renders a solved problem. Unassigned buffers (offset < 0) are
// skipped, so partially spilled solutions render too.
func Packing(p *buffers.Problem, sol *buffers.Solution, opts Options) string {
	opts = opts.withDefaults()
	lo, hi := p.TimeHorizon()
	if hi <= lo || p.Memory <= 0 {
		return "(empty)\n"
	}
	width := int(hi - lo)
	if width > opts.MaxWidth {
		width = opts.MaxWidth
	}
	height := int(p.Memory)
	if height > opts.MaxHeight {
		height = opts.MaxHeight
	}
	// scale maps problem coordinates onto the canvas.
	colOf := func(t int64) int {
		c := int((t - lo) * int64(width) / (hi - lo))
		if c >= width {
			c = width - 1
		}
		return c
	}
	rowOf := func(addr int64) int {
		r := int(addr * int64(height) / p.Memory)
		if r >= height {
			r = height - 1
		}
		return r
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", width))
	}
	for i, b := range p.Buffers {
		off := sol.Offsets[i]
		if off < 0 {
			continue
		}
		g := glyphs[i%len(glyphs)]
		r0, r1 := rowOf(off), rowOf(off+b.Size-1)
		c0, c1 := colOf(b.Start), colOf(b.End-1)
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				grid[r][c] = g
			}
		}
	}
	var sb strings.Builder
	for r := height - 1; r >= 0; r-- {
		addr := int64(r) * p.Memory / int64(height)
		fmt.Fprintf(&sb, "%10d |%s|\n", addr, grid[r])
	}
	fmt.Fprintf(&sb, "%10s  %s\n", "", ruler(width))
	fmt.Fprintf(&sb, "%10s  t=%d .. %d, memory %d\n", "", lo, hi, p.Memory)
	return sb.String()
}

// Contention renders a contention (or usage) profile as a bar chart over
// time, normalised to the given peak.
func Contention(steps []buffers.ContentionStep, peak int64, opts Options) string {
	opts = opts.withDefaults()
	if len(steps) == 0 || peak <= 0 {
		return "(empty)\n"
	}
	ramp := []byte(" .:-=+*#%@")
	lo := steps[0].Start
	hi := steps[len(steps)-1].End
	width := int(hi - lo)
	if width > opts.MaxWidth {
		width = opts.MaxWidth
	}
	line := make([]byte, width)
	for i := range line {
		// Sample the profile at the midpoint of each column.
		t := lo + (int64(i)*2+1)*(hi-lo)/int64(2*width)
		var v int64
		for _, s := range steps {
			if s.Start <= t && t < s.End {
				v = s.Contention
				break
			}
		}
		lvl := int(v * int64(len(ramp)-1) / peak)
		if lvl >= len(ramp) {
			lvl = len(ramp) - 1
		}
		line[i] = ramp[lvl]
	}
	return fmt.Sprintf("|%s|\npeak %d over t=%d..%d\n", line, peak, lo, hi)
}

func ruler(n int) string {
	out := make([]byte, n)
	for i := range out {
		if i%10 == 0 {
			out[i] = '+'
		} else {
			out[i] = '-'
		}
	}
	return string(out)
}
