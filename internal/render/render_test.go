package render

import (
	"strings"
	"testing"

	"telamalloc/internal/buffers"
)

func smallProblem() (*buffers.Problem, *buffers.Solution) {
	p := &buffers.Problem{
		Memory: 8,
		Buffers: []buffers.Buffer{
			{Start: 0, End: 4, Size: 4},
			{Start: 4, End: 8, Size: 4},
			{Start: 0, End: 8, Size: 4},
		},
	}
	p.Normalize()
	sol := &buffers.Solution{Offsets: []int64{0, 0, 4}}
	return p, sol
}

func TestPackingRendersAllBuffers(t *testing.T) {
	p, sol := smallProblem()
	out := Packing(p, sol, Options{})
	for _, g := range []string{"0", "1", "2"} {
		if !strings.Contains(out, g) {
			t.Errorf("glyph %q missing from render:\n%s", g, out)
		}
	}
	if !strings.Contains(out, "memory 8") {
		t.Error("footer missing")
	}
	// Address 0 row must show buffer 0 early and buffer 1 late.
	lines := strings.Split(out, "\n")
	var bottom string
	for _, l := range lines {
		if strings.Contains(l, "         0 |") {
			bottom = l
		}
	}
	if bottom == "" {
		t.Fatalf("no bottom row in:\n%s", out)
	}
	if !strings.Contains(bottom, "0") || !strings.Contains(bottom, "1") {
		t.Errorf("bottom row should contain buffers 0 and 1: %q", bottom)
	}
}

func TestPackingSkipsUnassigned(t *testing.T) {
	p, sol := smallProblem()
	sol.Offsets[2] = -1 // spilled
	out := Packing(p, sol, Options{})
	// Inspect only the grid between the pipes (the address gutter contains
	// digits too).
	for _, line := range strings.Split(out, "\n") {
		l := strings.Index(line, "|")
		r := strings.LastIndex(line, "|")
		if l < 0 || r <= l {
			continue
		}
		if strings.Contains(line[l:r], "2") {
			t.Fatalf("unassigned buffer rendered:\n%s", out)
		}
	}
}

func TestPackingDownsamplesLargeProblems(t *testing.T) {
	p := &buffers.Problem{Memory: 1 << 30}
	for i := int64(0); i < 50; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: i * 100, End: i*100 + 100, Size: 1 << 20,
		})
	}
	p.Normalize()
	sol := buffers.NewSolution(len(p.Buffers))
	for i := range sol.Offsets {
		sol.Offsets[i] = 0
	}
	out := Packing(p, sol, Options{MaxWidth: 60, MaxHeight: 10})
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 60+14 {
			t.Errorf("line exceeds canvas: %q", line)
		}
	}
	if n := strings.Count(out, "\n"); n > 14 {
		t.Errorf("render has %d lines despite MaxHeight 10", n)
	}
}

func TestPackingEmpty(t *testing.T) {
	if got := Packing(&buffers.Problem{Memory: 8}, buffers.NewSolution(0), Options{}); got != "(empty)\n" {
		t.Errorf("empty render = %q", got)
	}
}

func TestContentionRender(t *testing.T) {
	steps := []buffers.ContentionStep{
		{Start: 0, End: 5, Contention: 10},
		{Start: 5, End: 10, Contention: 2},
	}
	out := Contention(steps, 10, Options{MaxWidth: 10})
	if !strings.Contains(out, "peak 10") {
		t.Errorf("missing footer: %q", out)
	}
	bar := out[strings.Index(out, "|")+1 : strings.LastIndex(out, "|")]
	if len(bar) != 10 {
		t.Errorf("bar width %d, want 10: %q", len(bar), bar)
	}
	// First half must render denser than the second half.
	if bar[0] == bar[len(bar)-1] {
		t.Errorf("profile levels indistinguishable: %q", bar)
	}
	if got := Contention(nil, 0, Options{}); got != "(empty)\n" {
		t.Errorf("empty contention = %q", got)
	}
}
