package metrics

import (
	"math"
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/cache"
	"telamalloc/internal/core"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
)

func TestComputePerfectPacking(t *testing.T) {
	// Two stacked buffers occupying all memory all the time.
	p := &buffers.Problem{
		Memory: 8,
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
		},
	}
	p.Normalize()
	sol := &buffers.Solution{Offsets: []int64{0, 4}}
	r := Compute(p, sol)
	if r.Peak != 8 || r.ContentionPeak != 8 || r.Headroom != 0 {
		t.Errorf("peaks wrong: %+v", r)
	}
	if math.Abs(r.PackingEfficiency-1) > 1e-9 {
		t.Errorf("PackingEfficiency = %g, want 1", r.PackingEfficiency)
	}
	if math.Abs(r.Utilization-1) > 1e-9 {
		t.Errorf("Utilization = %g, want 1", r.Utilization)
	}
	if r.MaxFragmentation != 0 {
		t.Errorf("MaxFragmentation = %g, want 0", r.MaxFragmentation)
	}
}

func TestComputeFragmentedPacking(t *testing.T) {
	// One small buffer in a big memory: low utilisation, high headroom.
	p := &buffers.Problem{
		Memory:  100,
		Buffers: []buffers.Buffer{{Start: 0, End: 4, Size: 10}},
	}
	p.Normalize()
	sol := &buffers.Solution{Offsets: []int64{0}}
	r := Compute(p, sol)
	if r.Peak != 10 || r.Headroom != 90 {
		t.Errorf("%+v", r)
	}
	if math.Abs(r.Utilization-0.1) > 1e-9 {
		t.Errorf("Utilization = %g, want 0.1", r.Utilization)
	}
}

func TestComputeDetectsWaste(t *testing.T) {
	// A packing with a hole: buffer at 0 and buffer at 8 (hole 4..8) while
	// both are live. Efficiency = contention/peak = 8/12.
	p := &buffers.Problem{
		Memory: 16,
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
		},
	}
	p.Normalize()
	sol := &buffers.Solution{Offsets: []int64{0, 8}}
	r := Compute(p, sol)
	if r.Peak != 12 {
		t.Fatalf("Peak = %d", r.Peak)
	}
	if math.Abs(r.PackingEfficiency-8.0/12) > 1e-9 {
		t.Errorf("PackingEfficiency = %g, want %g", r.PackingEfficiency, 8.0/12)
	}
	if math.Abs(r.MaxFragmentation-4.0/12) > 1e-9 {
		t.Errorf("MaxFragmentation = %g, want %g", r.MaxFragmentation, 4.0/12)
	}
}

// BenchmarkCompute guards the single-profile fix: Compute used to build the
// contention profile twice (an O(n log n) sweep each time), which showed up
// in per-request serving cost now that internal/server reports on every
// allocation.
func BenchmarkCompute(b *testing.B) {
	p := workload.GenFPN(1)
	p.Memory = buffers.Contention(p).Peak() * 2
	res := core.Solve(p, core.Config{MaxSteps: 300000})
	if res.Status != telamon.Solved {
		b.Fatal("unsolved")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(p, res.Solution)
	}
}

func TestComputeOnRealModel(t *testing.T) {
	p := workload.GenFPN(1)
	p.Memory = buffers.Contention(p).Peak() * 110 / 100
	res := core.Solve(p, core.Config{MaxSteps: 300000})
	if res.Status != telamon.Solved {
		t.Fatal("unsolved")
	}
	r := Compute(p, res.Solution)
	if r.Peak < r.ContentionPeak {
		t.Errorf("peak %d below contention peak %d (impossible)", r.Peak, r.ContentionPeak)
	}
	if r.PackingEfficiency <= 0 || r.PackingEfficiency > 1 {
		t.Errorf("efficiency %g out of (0,1]", r.PackingEfficiency)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization %g out of (0,1]", r.Utilization)
	}
	if r.Headroom < 0 {
		t.Errorf("negative headroom %d", r.Headroom)
	}
}

// TestComputeInvariantUnderCanonicalReplay pins the property the reuse
// layer (internal/cache, DESIGN.md §10) depends on: transporting a
// solution between two presentations of the same problem — reordered
// buffers, replayed through the canonical permutation — must not change
// any packing-quality number. A cached or hint-replayed answer reports the
// same quality as the cold solve it came from.
func TestComputeInvariantUnderCanonicalReplay(t *testing.T) {
	p := workload.MultiComponent(3, 8, 120, 7)
	res := core.Solve(p, core.Config{MaxSteps: 300000})
	if res.Status != telamon.Solved {
		t.Fatal("unsolved fixture")
	}
	_, permP := cache.Canonicalize(p)

	// The same problem with its buffers reversed.
	q := &buffers.Problem{Memory: p.Memory}
	for i := len(p.Buffers) - 1; i >= 0; i-- {
		b := p.Buffers[i]
		q.Buffers = append(q.Buffers, buffers.Buffer{Start: b.Start, End: b.End, Size: b.Size, Align: b.Align})
	}
	q.Normalize()
	fpQ, permQ := cache.Canonicalize(q)
	if fpP, _ := cache.Canonicalize(p); fpP.Key != fpQ.Key {
		t.Fatal("fixture drifted: reordered copy fingerprints differently")
	}
	replayed := &buffers.Solution{Offsets: cache.Replay(cache.ToCanonical(res.Solution.Offsets, permP), permQ)}
	if err := replayed.Validate(q); err != nil {
		t.Fatalf("replayed solution invalid: %v", err)
	}

	rp, rq := Compute(p, res.Solution), Compute(q, replayed)
	if rp != rq {
		t.Errorf("reports diverge under canonical replay:\n p %+v\n q %+v", rp, rq)
	}
}
