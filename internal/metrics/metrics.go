// Package metrics computes packing-quality measures for solved allocation
// problems: utilisation, fragmentation, and headroom. The paper optimises
// for allocation *time* under a fixed limit (allocation quality "does not
// matter" on Pixel 6 as long as it fits, §2.3), but downstream users of a
// packing — e.g. the XLA repacker deciding whether another buffer could be
// promoted — need these numbers.
package metrics

import (
	"telamalloc/internal/buffers"
)

// Report summarises a packing.
type Report struct {
	// Peak is the highest address in use at any time.
	Peak int64
	// ContentionPeak is the live-byte lower bound; Peak >= ContentionPeak.
	ContentionPeak int64
	// Headroom is Memory - Peak: bytes of guaranteed free space.
	Headroom int64
	// Utilization is mean(live bytes) / Memory over the time horizon.
	Utilization float64
	// PackingEfficiency is ContentionPeak / Peak: 1.0 means the packing
	// wastes no vertical space at its tightest moment.
	PackingEfficiency float64
	// MaxFragmentation is the largest fraction of the used address range
	// [0, Peak) that is free-but-unusable at a single time slot:
	// (Peak - liveBytes(t)) / Peak maximised over t restricted to slots
	// where something is live.
	MaxFragmentation float64
}

// Compute builds the report for a complete solution of p.
func Compute(p *buffers.Problem, sol *buffers.Solution) Report {
	prof := buffers.Contention(p)
	r := Report{
		Peak:           sol.PeakUsage(p),
		ContentionPeak: prof.Peak(),
	}
	r.Headroom = p.Memory - r.Peak
	if r.Peak > 0 {
		r.PackingEfficiency = float64(r.ContentionPeak) / float64(r.Peak)
	}
	var weighted float64
	var span int64
	for _, st := range prof.Steps {
		weighted += float64(st.Contention) * float64(st.End-st.Start)
		span += st.End - st.Start
		if st.Contention > 0 && r.Peak > 0 {
			frag := float64(r.Peak-st.Contention) / float64(r.Peak)
			if frag > r.MaxFragmentation {
				r.MaxFragmentation = frag
			}
		}
	}
	if span > 0 && p.Memory > 0 {
		r.Utilization = weighted / float64(span) / float64(p.Memory)
	}
	return r
}
