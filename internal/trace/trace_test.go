package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"telamalloc/internal/buffers"
)

func sampleProblem() *buffers.Problem {
	p := &buffers.Problem{
		Name:   "sample",
		Memory: 1024,
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 128, Align: 32},
			{Start: 3, End: 9, Size: 256},
		},
	}
	p.Normalize()
	return p
}

func TestRoundTrip(t *testing.T) {
	p := sampleProblem()
	sol := &buffers.Solution{Offsets: []int64{0, 128}}
	var buf bytes.Buffer
	if err := FromProblem(p, sol).Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, err := f.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Memory != p.Memory || len(q.Buffers) != len(p.Buffers) {
		t.Errorf("round trip lost data: %+v", q)
	}
	for i := range p.Buffers {
		if q.Buffers[i] != p.Buffers[i] {
			t.Errorf("buffer %d: %+v != %+v", i, q.Buffers[i], p.Buffers[i])
		}
	}
	got := f.Solution()
	if got == nil || got.Offsets[1] != 128 {
		t.Errorf("solution lost: %+v", got)
	}
}

func TestNoSolution(t *testing.T) {
	f := FromProblem(sampleProblem(), nil)
	if f.Solution() != nil {
		t.Error("phantom solution")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")
	if err := Save(path, FromProblem(sampleProblem(), nil)); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProblem(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sample" || len(p.Buffers) != 2 {
		t.Errorf("loaded %+v", p)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestReadRejectsBadData(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":1,"memory":8,"buffers":[{"start":0,"end":1,"size":1}],"offsets":[1,2]}`)); err == nil {
		t.Error("offset/buffer mismatch accepted")
	}
	f, err := Read(strings.NewReader(`{"version":99,"memory":8,"buffers":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Problem(); err == nil {
		t.Error("unsupported version accepted")
	}
	bad, err := Read(strings.NewReader(`{"version":1,"memory":8,"buffers":[{"start":5,"end":2,"size":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Problem(); err == nil {
		t.Error("invalid live range accepted")
	}
}
