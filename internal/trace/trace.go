// Package trace serialises allocation problems (and solutions) to a simple
// JSON format. The paper's workflow relies on collecting on-device allocator
// inputs as traces that can be replayed on workstations ("we collected a set
// of on-device allocator inputs that we can run on regular servers or
// desktops", §7); this package is that interchange format.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"telamalloc/internal/buffers"
)

// FormatVersion identifies the trace schema.
const FormatVersion = 1

// File is the on-disk representation of one allocator input, optionally
// with a recorded solution.
type File struct {
	Version int      `json:"version"`
	Name    string   `json:"name,omitempty"`
	Memory  int64    `json:"memory"`
	Buffers []Buffer `json:"buffers"`
	// Offsets optionally records a packing (same order as Buffers).
	Offsets []int64 `json:"offsets,omitempty"`
}

// Buffer is one buffer record.
type Buffer struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	Size  int64 `json:"size"`
	Align int64 `json:"align,omitempty"`
}

// FromProblem converts a problem (and optional solution) to a trace file.
func FromProblem(p *buffers.Problem, sol *buffers.Solution) *File {
	f := &File{Version: FormatVersion, Name: p.Name, Memory: p.Memory}
	for _, b := range p.Buffers {
		f.Buffers = append(f.Buffers, Buffer{Start: b.Start, End: b.End, Size: b.Size, Align: b.Align})
	}
	if sol != nil {
		f.Offsets = append([]int64(nil), sol.Offsets...)
	}
	return f
}

// Problem converts the trace back to an allocation problem.
func (f *File) Problem() (*buffers.Problem, error) {
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", f.Version)
	}
	p := &buffers.Problem{Name: f.Name, Memory: f.Memory}
	for _, b := range f.Buffers {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: b.Start, End: b.End, Size: b.Size, Align: b.Align})
	}
	p.Normalize()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return p, nil
}

// Solution returns the recorded packing, or nil if none was stored.
func (f *File) Solution() *buffers.Solution {
	if len(f.Offsets) == 0 {
		return nil
	}
	return &buffers.Solution{Offsets: append([]int64(nil), f.Offsets...)}
}

// Write encodes the trace as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read decodes a trace from JSON.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(f.Offsets) != 0 && len(f.Offsets) != len(f.Buffers) {
		return nil, fmt.Errorf("trace: %d offsets for %d buffers", len(f.Offsets), len(f.Buffers))
	}
	return &f, nil
}

// Save writes the trace to path.
func Save(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer out.Close()
	if err := f.Write(out); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return out.Close()
}

// Load reads a trace from path.
func Load(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer in.Close()
	return Read(in)
}

// LoadProblem is a convenience wrapper returning the decoded problem.
func LoadProblem(path string) (*buffers.Problem, error) {
	f, err := Load(path)
	if err != nil {
		return nil, err
	}
	return f.Problem()
}
