package telamon

import (
	"testing"
	"time"
)

// TestDeadlinePolledWithoutStepProgress is the regression test for the
// deadline-polling bug: the old code checked the clock only when
// Stats.Steps%1024 == 0, but Steps does not advance while candidates are
// skipped or during major-backtrack cascades, so a search stuck at a
// non-multiple step count never noticed an expired deadline. The poll now
// runs on a call counter, so repeated budget checks must detect the expired
// deadline even with Steps frozen at an awkward value.
func TestDeadlinePolledWithoutStepProgress(t *testing.T) {
	s := &searcher{
		st:   &State{Stats: Stats{Steps: 5}}, // 5 % 1024 != 0, frozen
		opts: Options{Deadline: time.Now().Add(-time.Minute)},
	}
	fired := false
	for i := 0; i < 4*budgetPollStride; i++ {
		if s.outOfBudget() {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("expired deadline never detected while Steps was stuck at 5")
	}
	if s.stop != Budget {
		t.Fatalf("stop status = %v, want %v", s.stop, Budget)
	}
	// Once latched, every later check must agree without flapping.
	if !s.outOfBudget() {
		t.Error("budget verdict did not latch")
	}
}

// TestCancelHookAbortsSearch exercises Options.Cancel end to end: a search
// on a hard instance with a tripped cancel flag must return Cancelled, not
// run to exhaustion.
func TestCancelHookAbortsSearch(t *testing.T) {
	p := hardInstance(3, 16)
	cancelled := false
	res := Search(p, nil, idOrderPolicy{}, Options{
		Cancel: func() bool { return cancelled },
	})
	baseline := res.Status
	if baseline == Cancelled {
		t.Fatalf("search reported Cancelled with an untripped hook")
	}

	cancelled = true
	res = Search(p, nil, idOrderPolicy{}, Options{
		Cancel: func() bool { return cancelled },
	})
	if res.Status != Cancelled {
		t.Fatalf("status = %v, want %v", res.Status, Cancelled)
	}
	if res.Solution != nil {
		t.Error("cancelled search returned a solution")
	}
}

// TestStatusStrings pins the user-visible names, including the two new
// statuses.
func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		Solved:     "solved",
		Exhausted:  "exhausted",
		Budget:     "budget-exceeded",
		Cancelled:  "cancelled",
		Invalid:    "invalid-problem",
		Status(99): "status(99)",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), name)
		}
	}
}
