package telamon

import (
	"math/rand"
	"testing"

	"telamalloc/internal/buffers"
)

// hardInstance produces a tight instance that forces major backtracks.
func hardInstance(seed int64, n int) *buffers.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &buffers.Problem{}
	for i := 0; i < n; i++ {
		start := rng.Int63n(16)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start, End: start + 1 + rng.Int63n(10), Size: 1 + rng.Int63n(8),
		})
	}
	p.Normalize()
	p.Memory = buffers.Contention(p).Peak()
	return p
}

func TestSearchTerminatesWithoutBudget(t *testing.T) {
	// The tried-candidate filter must guarantee termination even with no
	// step cap: these tight instances previously caused infinite
	// ping-pong between symmetric candidates.
	for seed := int64(0); seed < 20; seed++ {
		p := hardInstance(seed, 10)
		res := Search(p, nil, idOrderPolicy{}, Options{}) // no budget at all
		if res.Status == Budget {
			t.Fatalf("seed %d: Budget status without a budget", seed)
		}
		if res.Status == Solved {
			if err := res.Solution.Validate(p); err != nil {
				t.Fatalf("seed %d: invalid solution: %v", seed, err)
			}
		}
	}
}

func TestSymmetricPairTerminates(t *testing.T) {
	// The minimal historical livelock: two identical buffers, memory for
	// both only in one order, plus a third that can never fit.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
		Memory: 11, // two fit (8 <= 11), three never (12 > 11)
	}
	p.Normalize()
	res := Search(p, nil, idOrderPolicy{}, Options{})
	if res.Status != Exhausted {
		t.Errorf("status = %v, want exhausted", res.Status)
	}
}

func TestStuckDetectionEscapes(t *testing.T) {
	// With a tiny stuck threshold the search must still terminate and not
	// spin inside one subtree; compare against disabled stuck detection on
	// the same instances — both must agree on solvability whenever both
	// finish within budget.
	for seed := int64(0); seed < 10; seed++ {
		p := hardInstance(seed, 14)
		tiny := Search(p, nil, idOrderPolicy{}, Options{MaxSteps: 50000, StuckThreshold: 2})
		off := Search(p, nil, idOrderPolicy{}, Options{MaxSteps: 50000, StuckThreshold: -1})
		if tiny.Status == Solved {
			if err := tiny.Solution.Validate(p); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if tiny.Status == Solved && off.Status == Exhausted {
			t.Errorf("seed %d: stuck-escape found a solution the plain search proved absent?!", seed)
		}
	}
}

func TestPromotionCapRespected(t *testing.T) {
	// Queue length after promotion must never exceed the configured cap.
	capN := 5
	probe := capProbe{max: capN, t: t}
	for seed := int64(0); seed < 6; seed++ {
		p := hardInstance(seed, 16)
		Search(p, nil, &probe, Options{MaxSteps: 20000, MaxCandidatesPerLevel: capN})
	}
}

type capProbe struct {
	idOrderPolicy
	max int
	t   *testing.T
}

func (cp *capProbe) Candidates(st *State) []int {
	// The framework caps queues only when *promoting* candidates on a major
	// backtrack; initial queues are the policy's responsibility. With this
	// policy returning at most `max` candidates, any longer queue would
	// prove the promotion cap is broken.
	for _, dp := range st.Stack {
		if len(dp.Queue) > cp.max {
			cp.t.Errorf("queue length %d exceeds cap %d", len(dp.Queue), cp.max)
		}
	}
	out := cp.idOrderPolicy.Candidates(st)
	if len(out) > cp.max {
		out = out[:cp.max]
	}
	return out
}

func TestDisablePromotionStillTerminates(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := hardInstance(seed, 12)
		res := Search(p, nil, idOrderPolicy{}, Options{DisablePromotion: true, MaxSteps: 100000})
		if res.Status == Solved {
			if err := res.Solution.Validate(p); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestFixedBacktrackMode(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := hardInstance(seed, 12)
		res := Search(p, nil, idOrderPolicy{}, Options{
			DisableConflictDriven: true,
			FixedBacktrack:        2,
			MaxSteps:              100000,
		})
		if res.Status == Solved {
			if err := res.Solution.Validate(p); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestBudgetStatusIsBudget(t *testing.T) {
	// A provably huge search with a tiny cap must report Budget (not
	// Exhausted, which would wrongly claim a completeness proof).
	p := hardInstance(3, 20)
	res := Search(p, nil, idOrderPolicy{}, Options{MaxSteps: 10})
	if res.Status == Exhausted && res.Stats.Steps >= 10 {
		t.Errorf("status = exhausted at the budget boundary")
	}
}

func TestMaxDepthNeverExceedsBuffers(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := hardInstance(seed, 12)
		res := Search(p, nil, idOrderPolicy{}, Options{MaxSteps: 30000})
		if res.Stats.MaxDepth > len(p.Buffers)+1 {
			t.Errorf("seed %d: MaxDepth %d with %d buffers", seed, res.Stats.MaxDepth, len(p.Buffers))
		}
	}
}
