// Package telamon implements the search framework the paper builds
// TelaMalloc on (§4): a wrapper around a constraint solver that, instead of
// asking the solver for a complete solution, gives a *policy* callback
// control over one variable-assignment choice at a time. The framework owns
// the mechanics — the decision stack, solver state push/pop, minor and
// major backtracks, candidate promotion and stuck detection — while the
// policy owns all domain knowledge (which buffer to place next, where, and
// how far to backjump).
//
// TelaMalloc (internal/core) is one policy; the single-strategy ablation
// searchers of §7.2 and the ML-guided backtracking of §6 are others.
package telamon

import (
	"fmt"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/cp"
)

// Status is the outcome of a search.
type Status int

const (
	// Solved means every buffer was placed.
	Solved Status = iota
	// Exhausted means the search space was exhausted without a solution.
	Exhausted
	// Budget means the step budget or deadline ran out first.
	Budget
	// Cancelled means the Options.Cancel hook aborted the search. A
	// cancelled search says nothing about the subproblem's feasibility.
	Cancelled
	// Invalid means the input problem failed validation before any search
	// ran. The framework itself never returns it; core.Solve uses it to
	// keep invalid input distinguishable from an exhausted search.
	Invalid
	// Internal means the search was aborted by a contained panic — in a
	// worker, a user-supplied hook, or the solver itself. The framework
	// never returns it directly; core.Solve's panic-containment boundary
	// converts recovered panics into it so a misbehaving component can
	// never crash the host process.
	Internal
)

func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case Exhausted:
		return "exhausted"
	case Budget:
		return "budget-exceeded"
	case Cancelled:
		return "cancelled"
	case Invalid:
		return "invalid-problem"
	case Internal:
		return "internal-error"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// DecisionPoint is one node on the search stack: an ordered queue of
// candidate buffers, the candidate that was successfully committed (if
// any), and bookkeeping for smart backtracking.
type DecisionPoint struct {
	// Queue holds candidate buffer IDs in the order the policy wants them
	// tried. Next indexes the first untried candidate.
	Queue []int
	Next  int
	// tried records candidates already attempted at this decision point.
	// The state a decision point sees is exactly the placement prefix below
	// it, which a backjump to this point restores unchanged — so retrying a
	// candidate that already failed here would deterministically fail
	// again. Filtering retries is therefore sound and guarantees that
	// candidate promotion cannot cycle.
	tried map[int]bool
	// Placed is the committed buffer at this point, -1 before a commit.
	Placed int
	// Pos is the committed position (valid when Placed >= 0).
	Pos int64
	// SubtreeBacktracks counts backtracks that occurred in the subtree
	// rooted here; child counts are folded in when children are popped.
	// Drives the stuck-detection heuristic of §5.4.
	SubtreeBacktracks int
	// LastConflict is the most recent solver conflict observed while trying
	// candidates at this point.
	LastConflict *cp.Conflict
}

// State is the live search state handed to the policy.
type State struct {
	Model *cp.Model
	Prob  *buffers.Problem
	// Stack holds open decision points, root first.
	Stack []*DecisionPoint
	// PlacedLevel[buf] is the stack index at which buf was placed, or -1.
	PlacedLevel []int
	// Stats accumulates search-effort counters.
	Stats Stats
}

// Depth returns the current stack depth.
func (st *State) Depth() int { return len(st.Stack) }

// Policy supplies the domain knowledge for the search.
type Policy interface {
	// Candidates returns the ordered candidate buffers for a new decision
	// point. Returning nil lets the framework fall back to all unplaced
	// buffers in ID order.
	Candidates(st *State) []int
	// Placement chooses the position to try for buf in the current state.
	// Returning ok=false marks the candidate as dead at this point.
	Placement(st *State, buf int) (pos int64, ok bool)
	// BacktrackTarget may override the major-backtrack destination: the
	// stack index to resume at. Returning ok=false selects the framework's
	// default (conflict-driven backjump when enabled, else a fixed hop).
	BacktrackTarget(st *State, exhausted *DecisionPoint) (target int, ok bool)
}

// Options tunes the framework mechanics.
type Options struct {
	// MaxSteps caps placement attempts, including failed ones (0 = none).
	// The paper's large-scale ablation uses 500,000.
	MaxSteps int64
	// Deadline aborts the search when passed (zero = none).
	Deadline time.Time
	// StuckThreshold is the subtree-backtrack count beyond which the search
	// escapes to the deepest stuck ancestor (§5.4; the paper uses ~100).
	// Zero selects the default of 100; negative disables stuck detection.
	StuckThreshold int
	// MaxCandidatesPerLevel caps a decision point's queue after candidate
	// promotion, preventing unbounded growth (§5.4). Zero selects 64.
	MaxCandidatesPerLevel int
	// FixedBacktrack is the number of levels a major backtrack jumps when
	// conflict-driven targeting is disabled or has no information. Zero
	// selects 1.
	FixedBacktrack int
	// DisableConflictDriven turns off conflict-driven backjumps (used by
	// the ablation baselines, which "go to the last valid point").
	DisableConflictDriven bool
	// DisablePromotion turns off prepending failed candidates to the
	// backtrack target's queue.
	DisablePromotion bool
	// Cancel, when non-nil, is polled periodically during the search; the
	// first true return aborts the search with status Cancelled. It may be
	// called from the search goroutine only, but its result may be
	// computed from state shared with other goroutines — this is the
	// cooperative-cancellation hook the parallel subproblem solver uses to
	// stop sibling searches once one component definitively fails.
	Cancel func() bool
	// TestHook, when non-nil, is called on every budget check — at least
	// once per candidate attempt — making it a deterministic per-step
	// instrumentation point for fault injection (internal/faultinject).
	// Returning true forces the search to stop with status Budget
	// (injected starvation); the hook may also stall or panic, and panics
	// are contained by core.Solve's recovery boundary. Test-only: must be
	// nil in production configurations.
	TestHook func() bool
	// OnSample, when non-nil, receives the number of steps taken since the
	// previous sample. It fires on the same call-counter stride as the
	// deadline/cancellation polls — at most once per budgetPollStride
	// budget checks, plus a final flush when the search returns — so live
	// observers (the obs layer's solver counters) see search progress
	// without the hot loop allocating, locking, or branching per step. It
	// runs on the search goroutine; implementations must be cheap and safe
	// to call from concurrent subproblem workers (an atomic add).
	OnSample func(stepsDelta int64)
}

func (o Options) stuckThreshold() int {
	switch {
	case o.StuckThreshold == 0:
		return 100
	case o.StuckThreshold < 0:
		return 1 << 30
	default:
		return o.StuckThreshold
	}
}

func (o Options) maxCandidates() int {
	if o.MaxCandidatesPerLevel == 0 {
		return 64
	}
	return o.MaxCandidatesPerLevel
}

func (o Options) fixedBacktrack() int {
	if o.FixedBacktrack <= 0 {
		return 1
	}
	return o.FixedBacktrack
}

// Stats counts search effort. Steps matches the paper's step metric: every
// attempted placement, successful or not.
type Stats struct {
	Steps           int64
	Placements      int64
	MinorBacktracks int64
	MajorBacktracks int64
	MaxDepth        int
	SolverStats     cp.Stats
}

// Backtracks returns minor + major backtracks.
func (s Stats) Backtracks() int64 { return s.MinorBacktracks + s.MajorBacktracks }

// Result is the outcome of a search.
type Result struct {
	Status   Status
	Solution *buffers.Solution
	Stats    Stats
}

// Search runs the policy-guided search on problem p. ov may be nil.
func Search(p *buffers.Problem, ov *buffers.Overlaps, policy Policy, opts Options) Result {
	st := &State{
		Model:       cp.NewModel(p, ov),
		Prob:        p,
		PlacedLevel: make([]int, len(p.Buffers)),
	}
	for i := range st.PlacedLevel {
		st.PlacedLevel[i] = -1
	}
	s := &searcher{st: st, policy: policy, opts: opts}
	res := s.run()
	if opts.OnSample != nil {
		// Final flush: whatever the stride did not report yet, so sampled
		// totals converge to the exact step count once the search returns.
		if d := st.Stats.Steps - s.sampled; d > 0 {
			opts.OnSample(d)
		}
	}
	res.Stats = st.Stats
	res.Stats.SolverStats = st.Model.Stats()
	return res
}

type searcher struct {
	st     *State
	policy Policy
	opts   Options
	// checks counts outOfBudget calls; deadline and cancellation are
	// polled on a stride of it. Polling on Stats.Steps is wrong: Steps
	// does not advance while candidates are skipped or during
	// major-backtrack cascades, so a stuck search could overrun its
	// deadline indefinitely. The call counter advances on every budget
	// check regardless of search progress.
	checks int64
	// stop latches the terminal status once a budget check fires, so
	// every later check returns the same verdict without re-polling.
	stop Status
	// sampled is the step count already reported through opts.OnSample.
	sampled int64
}

// budgetPollStride is how many outOfBudget calls pass between time/cancel
// polls. outOfBudget runs at least once per candidate attempt, so the worst
// case overrun is a few hundred placement attempts — microseconds.
const budgetPollStride = 256

func (s *searcher) outOfBudget() bool {
	if s.stop != Solved {
		return true
	}
	if s.opts.MaxSteps > 0 && s.st.Stats.Steps >= s.opts.MaxSteps {
		s.stop = Budget
		return true
	}
	// The test hook runs on every check, not on the poll stride:
	// fault-injection points must fire at deterministic step counts
	// regardless of how the stride happens to align.
	if s.opts.TestHook != nil && s.opts.TestHook() {
		s.stop = Budget
		return true
	}
	s.checks++
	if s.checks%budgetPollStride == 1 {
		// The sample rides the poll stride: one predicted branch per check
		// in the common case, one callback per stride when progress was
		// made — the hot loop stays allocation-free with observers on.
		if s.opts.OnSample != nil {
			if d := s.st.Stats.Steps - s.sampled; d > 0 {
				s.opts.OnSample(d)
				s.sampled = s.st.Stats.Steps
			}
		}
		if s.opts.Cancel != nil && s.opts.Cancel() {
			s.stop = Cancelled
			return true
		}
		if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
			s.stop = Budget
			return true
		}
	}
	return false
}

func (s *searcher) run() Result {
	st := s.st
	// Initial propagation catches problems infeasible from the start.
	st.Model.Push()
	if c := st.Model.Propagate(); c != nil {
		return Result{Status: Exhausted}
	}
	for {
		if st.Model.AllPlaced() {
			return Result{Status: Solved, Solution: &buffers.Solution{Offsets: st.Model.Solution()}}
		}
		if s.outOfBudget() {
			return Result{Status: s.stop}
		}
		dp := s.top()
		if dp == nil || dp.Placed >= 0 {
			dp = s.openDecisionPoint()
		}
		if s.tryCandidates(dp) {
			continue // committed; descend
		}
		if s.outOfBudget() {
			return Result{Status: s.stop}
		}
		// Queue exhausted: major backtrack.
		st.Stats.MajorBacktracks++
		dp.SubtreeBacktracks++
		if !s.majorBacktrack(dp) {
			return Result{Status: Exhausted}
		}
	}
}

func (s *searcher) top() *DecisionPoint {
	if len(s.st.Stack) == 0 {
		return nil
	}
	return s.st.Stack[len(s.st.Stack)-1]
}

func (s *searcher) openDecisionPoint() *DecisionPoint {
	st := s.st
	queue := s.policy.Candidates(st)
	if len(queue) == 0 {
		for i := range st.Prob.Buffers {
			if !st.Model.Placed(i) {
				queue = append(queue, i)
			}
		}
	}
	dp := &DecisionPoint{Queue: queue, Placed: -1, tried: make(map[int]bool)}
	st.Stack = append(st.Stack, dp)
	if d := len(st.Stack); d > st.Stats.MaxDepth {
		st.Stats.MaxDepth = d
	}
	return dp
}

// tryCandidates attempts queue entries until one commits. Returns true on a
// successful placement.
func (s *searcher) tryCandidates(dp *DecisionPoint) bool {
	st := s.st
	for dp.Next < len(dp.Queue) {
		if s.outOfBudget() {
			return false
		}
		buf := dp.Queue[dp.Next]
		dp.Next++
		if st.Model.Placed(buf) || dp.tried[buf] {
			continue
		}
		dp.tried[buf] = true
		st.Stats.Steps++
		pos, ok := s.policy.Placement(st, buf)
		if !ok {
			st.Stats.MinorBacktracks++
			dp.SubtreeBacktracks++
			continue
		}
		st.Model.Push()
		if c := st.Model.Place(buf, pos); c != nil {
			st.Model.Pop()
			st.Stats.MinorBacktracks++
			dp.SubtreeBacktracks++
			dp.LastConflict = c
			continue
		}
		dp.Placed = buf
		dp.Pos = pos
		st.PlacedLevel[buf] = len(st.Stack) - 1
		st.Stats.Placements++
		return true
	}
	return false
}

// majorBacktrack unwinds the stack to the chosen target and resumes there.
// Returns false when the search must terminate (backtracked past the root).
func (s *searcher) majorBacktrack(exhausted *DecisionPoint) bool {
	st := s.st
	if len(st.Stack) == 1 {
		// The root decision point ran dry: nothing to backtrack to.
		st.Stack = st.Stack[:0]
		return false
	}
	target, stuck := s.chooseTarget(exhausted)
	if target < 0 {
		s.unwindTo(-1, nil)
		return false
	}
	var promoted []int
	if !s.opts.DisablePromotion {
		promoted = exhausted.Queue
	}
	s.unwindTo(target, promoted)
	if stuck {
		// Restart the escape point's counter so the escape is not
		// immediately re-triggered by its own history.
		st.Stack[target].SubtreeBacktracks = 0
	}
	return true
}

// chooseTarget picks the stack index to resume at and reports whether the
// stuck-detection escape fired. Precedence: policy override, stuck
// detection, conflict-driven backjump, fixed hop.
func (s *searcher) chooseTarget(exhausted *DecisionPoint) (int, bool) {
	st := s.st
	topIdx := len(st.Stack) - 1
	target := -2
	if t, ok := s.policy.BacktrackTarget(st, exhausted); ok {
		target = clamp(t, -1, topIdx-1)
	}
	if target == -2 && !s.opts.DisableConflictDriven && exhausted.LastConflict != nil {
		if t, ok := s.conflictTarget(exhausted.LastConflict); ok {
			target = t
		}
	}
	if target == -2 {
		target = topIdx - s.opts.fixedBacktrack()
		if target < 0 {
			target = 0
		}
	}
	// Stuck detection (§5.4): if an ancestor's subtree accumulated too many
	// backtracks, the search is stuck inside it — escape to the lowest
	// (shallowest) such ancestor.
	threshold := s.opts.stuckThreshold()
	for i := 0; i < topIdx; i++ {
		if st.Stack[i].SubtreeBacktracks > threshold {
			if i < target {
				return i, true
			}
			break
		}
	}
	return target, false
}

// conflictTarget implements the paper's smart backjump: go to the
// second-to-last conflicting placement.
func (s *searcher) conflictTarget(c *cp.Conflict) (int, bool) {
	st := s.st
	best, second := -1, -1 // two deepest conflicting levels
	for _, buf := range c.Placements {
		lvl := st.PlacedLevel[buf]
		if lvl < 0 {
			continue
		}
		switch {
		case lvl > best:
			second = best
			best = lvl
		case lvl > second && lvl != best:
			second = lvl
		}
	}
	if second >= 0 {
		return second, true
	}
	if best >= 0 {
		return best, true
	}
	return 0, false
}

// unwindTo pops decision points above target, undoing their placements and
// folding their backtrack counts into the target; the target's own
// placement is undone too so its remaining candidates can be retried.
// promoted candidates (from the exhausted point) are inserted ahead of the
// target's remaining queue, deduplicated and capped. target == -1 unwinds
// everything.
func (s *searcher) unwindTo(target int, promoted []int) {
	st := s.st
	var carried int
	for len(st.Stack)-1 > target {
		dp := st.Stack[len(st.Stack)-1]
		st.Stack = st.Stack[:len(st.Stack)-1]
		carried += dp.SubtreeBacktracks
		if dp.Placed >= 0 {
			st.PlacedLevel[dp.Placed] = -1
			dp.Placed = -1
			st.Model.Pop()
		}
	}
	if target < 0 {
		return
	}
	dp := st.Stack[target]
	dp.SubtreeBacktracks += carried
	if dp.Placed >= 0 {
		st.PlacedLevel[dp.Placed] = -1
		dp.Placed = -1
		st.Model.Pop()
	}
	if len(promoted) > 0 {
		// Promoted candidates the target has already attempted would fail
		// identically (same placement prefix); drop them.
		fresh := promoted[:0:0]
		for _, b := range promoted {
			if !dp.tried[b] {
				fresh = append(fresh, b)
			}
		}
		dp.Queue = mergeQueues(fresh, dp.Queue[dp.Next:], s.opts.maxCandidates())
		dp.Next = 0
	}
}

// mergeQueues prepends promoted to rest, removing duplicates and capping
// the result at limit entries.
func mergeQueues(promoted, rest []int, limit int) []int {
	seen := make(map[int]bool, len(promoted)+len(rest))
	out := make([]int, 0, len(promoted)+len(rest))
	for _, lists := range [2][]int{promoted, rest} {
		for _, b := range lists {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
				if len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
