package telamon

// This file documents the policy contract in one place; the interface
// itself lives in telamon.go.
//
// # Policy lifecycle
//
// The framework calls the policy at three moments:
//
//  1. Candidates — once per new decision point. The policy inspects the
//     live state (placed buffers, solver bounds, phase structure) and
//     returns an ordered queue of buffer IDs. The framework consumes the
//     queue across minor backtracks and may later extend it with promoted
//     candidates from deeper, failed decision points.
//
//  2. Placement — once per candidate attempt. The policy converts a buffer
//     ID into a concrete position; ok=false marks the candidate dead
//     without touching solver state (counted as a minor backtrack).
//
//  3. BacktrackTarget — once per major backtrack, before the framework's
//     own targeting. Policies without an opinion return ok=false; the
//     learned backtracking model (§6 of the paper) plugs in here.
//
// # State visibility rules
//
// Policies may read State freely but must not mutate Stack, PlacedLevel, or
// the model except through the documented query methods. The framework owns
// all state transitions; a policy that calls Model.Push/Pop or Place
// corrupts the trail discipline.
//
// # Determinism
//
// Search(p, ov, policy, opts) is deterministic for deterministic policies:
// no randomness, no wall-clock reads (the Deadline check observes time but
// only decides *whether* to stop, never *what* to explore next — so two
// runs that both complete within budget explore identical trees).
