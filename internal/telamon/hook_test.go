package telamon

import (
	"testing"

	"telamalloc/internal/workload"
)

// allUnplaced is the minimal policy: framework-default candidates, solver
// placement, default backtracks.
type minimalPolicy struct{}

func (minimalPolicy) Candidates(st *State) []int { return nil }
func (minimalPolicy) Placement(st *State, buf int) (int64, bool) {
	return st.Model.LowestFeasible(buf)
}
func (minimalPolicy) BacktrackTarget(*State, *DecisionPoint) (int, bool) { return 0, false }

// TestTestHookStarvesBudget: a TestHook reporting exhaustion stops the
// search with Budget on the very first check, before any placement.
func TestTestHookStarvesBudget(t *testing.T) {
	p := workload.FullOverlap(20, 1)
	res := Search(p, nil, minimalPolicy{}, Options{TestHook: func() bool { return true }})
	if res.Status != Budget {
		t.Fatalf("status %v, want budget-exceeded", res.Status)
	}
	if res.Stats.Placements != 0 {
		t.Fatalf("%d placements happened under immediate starvation", res.Stats.Placements)
	}
}

// TestTestHookCountsSteps: a hook that starves after N checks lets exactly
// the prefix run — the deterministic per-step firing fault injection needs.
func TestTestHookCountsSteps(t *testing.T) {
	p := workload.FullOverlap(20, 1)
	run := func(allow int64) int64 {
		var calls int64
		hook := func() bool {
			calls++
			return calls > allow
		}
		res := Search(p, nil, minimalPolicy{}, Options{TestHook: hook})
		if res.Status != Budget {
			t.Fatalf("allow %d: status %v, want budget-exceeded", allow, res.Status)
		}
		return res.Stats.Steps
	}
	a, b := run(10), run(30)
	if a >= b {
		t.Fatalf("steps did not grow with allowance: %d then %d", a, b)
	}
}

// TestInternalStatusString locks the new status's rendering.
func TestInternalStatusString(t *testing.T) {
	if got := Internal.String(); got != "internal-error" {
		t.Fatalf("Internal.String() = %q", got)
	}
}
