package telamon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"telamalloc/internal/buffers"
	"telamalloc/internal/cp"
)

// idOrderPolicy is a minimal policy: candidates in ID order, placement at
// the solver's lowest feasible position, default backjumps.
type idOrderPolicy struct{}

func (idOrderPolicy) Candidates(st *State) []int {
	var out []int
	for i := range st.Prob.Buffers {
		if !st.Model.Placed(i) {
			out = append(out, i)
		}
	}
	return out
}

func (idOrderPolicy) Placement(st *State, buf int) (int64, bool) {
	return st.Model.LowestFeasible(buf)
}

func (idOrderPolicy) BacktrackTarget(st *State, dp *DecisionPoint) (int, bool) {
	return 0, false
}

func searchOK(t *testing.T, p *buffers.Problem, opts Options) Result {
	t.Helper()
	res := Search(p, nil, idOrderPolicy{}, opts)
	if res.Status != Solved {
		t.Fatalf("status = %v, want solved (stats %+v)", res.Status, res.Stats)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	return res
}

func TestSearchTrivial(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
			{Start: 10, End: 15, Size: 8},
		},
		Memory: 8,
	}
	p.Normalize()
	res := searchOK(t, p, Options{})
	if res.Stats.Placements != 3 {
		t.Errorf("placements = %d, want 3", res.Stats.Placements)
	}
	if res.Stats.Backtracks() != 0 {
		t.Errorf("backtracks = %d, want 0", res.Stats.Backtracks())
	}
}

func TestSearchNeedsBacktracking(t *testing.T) {
	// ID-order placement at lowest position paints itself into a corner on
	// this instance unless it backtracks: buffer 2 (the long one) must not
	// sit at the bottom, but ID order tries it early.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 4, Size: 4},
			{Start: 1, End: 8, Size: 4}, // long one; lowest-feasible puts it at 4
			{Start: 4, End: 8, Size: 4},
			{Start: 4, End: 8, Size: 4},
		},
		Memory: 12,
	}
	p.Normalize()
	searchOK(t, p, Options{})
}

func TestSearchExhaustedOnInfeasible(t *testing.T) {
	p := &buffers.Problem{Memory: 8}
	for i := 0; i < 3; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 4})
	}
	p.Normalize()
	res := Search(p, nil, idOrderPolicy{}, Options{})
	if res.Status != Exhausted {
		t.Errorf("status = %v, want exhausted", res.Status)
	}
}

func TestSearchBudget(t *testing.T) {
	// A deliberately hard instance with a tiny step cap.
	rng := rand.New(rand.NewSource(5))
	p := &buffers.Problem{Memory: 40}
	for i := 0; i < 40; i++ {
		start := rng.Int63n(6)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start, End: start + 3 + rng.Int63n(8), Size: 3 + rng.Int63n(10),
		})
	}
	p.Normalize()
	res := Search(p, nil, idOrderPolicy{}, Options{MaxSteps: 5})
	if res.Status == Solved && res.Stats.Steps > 5 {
		t.Errorf("solved using %d steps despite cap", res.Stats.Steps)
	}
	if res.Status == Budget && res.Stats.Steps > 6 {
		t.Errorf("steps = %d, exceeded cap", res.Stats.Steps)
	}
}

func TestSearchEmptyProblem(t *testing.T) {
	p := &buffers.Problem{Memory: 8}
	res := Search(p, nil, idOrderPolicy{}, Options{})
	if res.Status != Solved {
		t.Fatalf("status = %v", res.Status)
	}
	if len(res.Solution.Offsets) != 0 {
		t.Errorf("offsets = %v", res.Solution.Offsets)
	}
}

func TestSearchSolutionsAreAlwaysValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &buffers.Problem{}
		n := 1 + rng.Intn(25)
		for i := 0; i < n; i++ {
			start := rng.Int63n(20)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(12),
				Size:  1 + rng.Int63n(10),
				Align: []int64{0, 0, 0, 4}[rng.Intn(4)],
			})
		}
		p.Normalize()
		peak := buffers.Contention(p).Peak()
		p.Memory = peak + rng.Int63n(peak+1)
		res := Search(p, nil, idOrderPolicy{}, Options{MaxSteps: 50000})
		if res.Status != Solved {
			return true // failing to solve is allowed; wrong solutions are not
		}
		return res.Solution.Validate(p) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// conflictRecordingPolicy exposes framework internals for the backjump test.
type overridePolicy struct {
	idOrderPolicy
	target int
	used   *bool
}

func (p overridePolicy) BacktrackTarget(st *State, dp *DecisionPoint) (int, bool) {
	*p.used = true
	return p.target, true
}

func TestPolicyBacktrackOverrideIsConsulted(t *testing.T) {
	// An infeasible instance whose infeasibility only surfaces at depth >= 2,
	// guaranteeing a major backtrack with an ancestor to jump to: a size-4
	// buffer plus three size-3 buffers in memory 12 (13 bytes needed), where
	// pairwise propagation accepts the first placement.
	p := &buffers.Problem{Memory: 12}
	p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 4})
	for i := 0; i < 3; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 3})
	}
	p.Normalize()
	used := false
	res := Search(p, nil, overridePolicy{target: 0, used: &used}, Options{MaxSteps: 10000})
	if res.Status == Solved {
		t.Fatal("infeasible instance solved")
	}
	if res.Stats.MajorBacktracks > 0 && !used {
		t.Error("policy override never consulted despite major backtracks")
	}
}

func TestMergeQueues(t *testing.T) {
	got := mergeQueues([]int{3, 1, 3}, []int{1, 2, 4}, 10)
	want := []int{3, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("mergeQueues = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeQueues = %v, want %v", got, want)
		}
	}
	if got := mergeQueues([]int{1, 2, 3}, []int{4, 5}, 2); len(got) != 2 {
		t.Errorf("cap ignored: %v", got)
	}
}

func TestStatsCounting(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 4, Size: 4},
			{Start: 1, End: 8, Size: 4},
			{Start: 4, End: 8, Size: 4},
			{Start: 4, End: 8, Size: 4},
		},
		Memory: 12,
	}
	p.Normalize()
	res := Search(p, nil, idOrderPolicy{}, Options{})
	if res.Status != Solved {
		t.Fatalf("status %v", res.Status)
	}
	if res.Stats.Steps < res.Stats.Placements {
		t.Errorf("steps %d < placements %d", res.Stats.Steps, res.Stats.Placements)
	}
	if res.Stats.MaxDepth == 0 {
		t.Error("MaxDepth not tracked")
	}
	if res.Stats.SolverStats.Propagations == 0 {
		t.Error("solver stats not captured")
	}
}

var _ Policy = idOrderPolicy{} // interface check

// Ensure conflict structs surface through DecisionPoint for policies.
func TestConflictSurfacedToDecisionPoint(t *testing.T) {
	p := &buffers.Problem{Memory: 8}
	for i := 0; i < 3; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 3})
	}
	p.Normalize()
	var sawConflict bool
	policy := funcPolicy{
		cands: func(st *State) []int { return idOrderPolicy{}.Candidates(st) },
		place: func(st *State, buf int) (int64, bool) { return st.Model.LowestFeasible(buf) },
		back: func(st *State, dp *DecisionPoint) (int, bool) {
			if dp.LastConflict != nil {
				sawConflict = true
			}
			return 0, false
		},
	}
	Search(p, nil, policy, Options{MaxSteps: 10000})
	_ = sawConflict // conflicts may legitimately be absent if propagation kills the root
}

type funcPolicy struct {
	cands func(*State) []int
	place func(*State, int) (int64, bool)
	back  func(*State, *DecisionPoint) (int, bool)
}

func (f funcPolicy) Candidates(st *State) []int               { return f.cands(st) }
func (f funcPolicy) Placement(st *State, b int) (int64, bool) { return f.place(st, b) }
func (f funcPolicy) BacktrackTarget(st *State, dp *DecisionPoint) (int, bool) {
	return f.back(st, dp)
}

var _ cp.Order // keep cp imported for the interface reference above
