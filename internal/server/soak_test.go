package server

// The soak suite is the serving layer's acceptance proof, meant to run
// under -race (`make soak`): N concurrent clients, a mixed workload, armed
// faults at the solver, pipeline, and server decision points — and the
// assertions the robustness contract names: every request reaches exactly
// one terminal outcome, no panic escapes, shedding kicks in before the
// queue grows, and drain completes within its deadline.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"telamalloc"
	"telamalloc/internal/faultinject"
)

// terminalClass buckets a Submit result. classify fails the test if the
// (resp, err) pair does not match exactly one bucket — the "exactly one
// terminal outcome" assertion.
type terminalClass string

const (
	classSolved    terminalClass = "solved"
	classDegraded  terminalClass = "degraded"
	classFailed    terminalClass = "failed"
	classShed      terminalClass = "shed"
	classCancelled terminalClass = "cancelled"
	classRejected  terminalClass = "rejected"
)

func classify(t *testing.T, resp *Response, err error) terminalClass {
	t.Helper()
	switch {
	case err == nil && resp != nil && resp.Outcome == OutcomeSolved:
		return classSolved
	case err == nil && resp != nil && resp.Outcome == OutcomeDegraded:
		return classDegraded
	case err == nil:
		t.Fatalf("nil error with nil response: no terminal outcome")
	case errors.Is(err, ErrOverloaded):
		if resp != nil {
			t.Fatalf("shed request also carried a response: %+v", resp)
		}
		return classShed
	case errors.Is(err, ErrDraining):
		return classRejected
	case errors.Is(err, ErrCancelled):
		if resp != nil {
			t.Fatalf("cancelled request also carried a response: %+v", resp)
		}
		return classCancelled
	case resp != nil && resp.Outcome == OutcomeFailed:
		return classFailed
	case errors.Is(err, telamalloc.ErrInternal):
		// A contained server-boundary panic (e.g. the admit hook).
		return classFailed
	}
	t.Fatalf("unclassifiable outcome: resp=%+v err=%v", resp, err)
	return ""
}

// TestServerSoakUnderFaults drives concurrent clients through a server with
// faults armed at every new boundary: solver decision points, pipeline
// stage entry/exit, and the server's own admit/dequeue/hedge points.
func TestServerSoakUnderFaults(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Point: faultinject.StageEntry(telamalloc.StageSearch), After: 2, Kind: faultinject.Panic},
		faultinject.Fault{Point: faultinject.StageExit(telamalloc.StageGreedy), After: 4, Kind: faultinject.Panic},
		faultinject.Fault{Point: faultinject.PointServerHedge, After: 3, Kind: faultinject.Panic},
		// Not Starve here: admit starvation is sticky and would shed the
		// whole remaining workload (covered by TestAdmitStarveForcesShed).
		faultinject.Fault{Point: faultinject.PointServerAdmit, After: 7, Kind: faultinject.Panic},
		faultinject.Fault{Point: faultinject.PointServerDequeue, After: 5, Kind: faultinject.Stall, StallFor: 30 * time.Millisecond},
		faultinject.Fault{Point: "group0", After: 10, Kind: faultinject.Stall, StallFor: 20 * time.Millisecond},
		faultinject.Fault{Point: "group1", After: 6, Kind: faultinject.Panic},
	)
	s := New(Config{
		Workers:        4,
		QueueDepth:     8,
		Hedge:          true,
		RequestTimeout: 5 * time.Second,
		MaxSteps:       200000,
		Breaker:        BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
		Hook:           inj.Hook,
	})

	problems := []Problem{easyProblem(), tightProblem(t), infeasibleProblem(), invalidProblem()}
	const clients = 8
	const perClient = 15
	var wg sync.WaitGroup
	var mu sync.Mutex
	tally := map[terminalClass]int{}
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				p := problems[(c+i)%len(problems)]
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (c+i)%10 == 9 {
					// A sprinkling of impatient callers.
					ctx, cancel = context.WithTimeout(ctx, time.Millisecond)
				}
				resp, err := s.Submit(ctx, Request{Problem: p})
				cancel()
				class := classify(t, resp, err)
				if class == classSolved {
					sol := telamalloc.Solution{Offsets: resp.Offsets}
					if verr := sol.Validate(p); verr != nil {
						t.Errorf("solved response carries invalid packing: %v", verr)
					}
				}
				mu.Lock()
				tally[class]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}

	total := 0
	for _, n := range tally {
		total += n
	}
	if total != clients*perClient {
		t.Fatalf("outcomes %v sum to %d, want %d — a request got zero or two verdicts", tally, total, clients*perClient)
	}
	c := s.Snapshot()
	if c.Submitted != int64(clients*perClient) {
		t.Fatalf("submitted %d, want %d", c.Submitted, clients*perClient)
	}
	// The counter ledger must balance: every submission is accounted for
	// exactly once after drain.
	accounted := c.Shed + c.RejectedDraining + c.Cancelled + c.Solved + c.Degraded + c.Failed
	if accounted != c.Submitted {
		t.Fatalf("counter ledger unbalanced: %+v (accounted %d of %d)", c, accounted, c.Submitted)
	}
	// The armed faults must actually have fired, or this soak proved nothing.
	if fired := inj.Fired(); len(fired) < 5 {
		t.Errorf("only %d faults fired (%v); the soak is under-armed", len(fired), fired)
	}
	if tally[classSolved] == 0 || tally[classDegraded] == 0 || tally[classFailed] == 0 {
		t.Errorf("workload mix did not exercise all pipeline verdicts: %v", tally)
	}
}

// TestSoakSheddingBoundsLatency: under sustained overload the queue cannot
// grow past its bound, and the shed path answers fast even while every
// worker is wedged — bounded shedding latency is the admission-control
// contract.
func TestSoakSheddingBoundsLatency(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{
		Workers:    2,
		QueueDepth: 4,
		// This soak floods identical requests on purpose; dedup would make
		// 39 of them followers of one queued solve and no shedding would
		// ever engage. Admission control is the contract under test.
		DisableDedup: true,
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				<-gate
			}
			return false
		},
	})
	p := easyProblem()
	const clients = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed := 0
	var worstShed time.Duration
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := s.Submit(context.Background(), Request{Problem: p})
			if errors.Is(err, ErrOverloaded) {
				elapsed := time.Since(start)
				mu.Lock()
				shed++
				if elapsed > worstShed {
					worstShed = elapsed
				}
				mu.Unlock()
			}
		}()
	}
	// Submissions outnumber workers+queue 40 : 6; shedding must engage
	// while the workers are still parked.
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	shedSoFar := shed
	mu.Unlock()
	if shedSoFar < clients-6-2 {
		t.Errorf("only %d shed while workers were parked; queue should bound admissions at ~6", shedSoFar)
	}
	if s.QueueDepth() > 4 {
		t.Errorf("queue depth %d exceeds its bound", s.QueueDepth())
	}
	close(gate)
	wg.Wait()
	mustDrain(t, s)
	if worstShed > time.Second {
		t.Errorf("worst shed latency %v; shedding must not wait on workers", worstShed)
	}
}

// TestSoakDrainDeadline: drain under load completes within its deadline
// (plus the cooperative-cancellation stride) even with a stalled stage.
func TestSoakDrainDeadline(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Point: "group0", After: 1, Kind: faultinject.Stall, StallFor: 250 * time.Millisecond},
	)
	s := New(Config{Workers: 2, QueueDepth: 16, MaxSteps: 200000, Hook: inj.Hook})
	problems := []Problem{easyProblem(), tightProblem(t), infeasibleProblem()}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{Problem: problems[i%len(problems)]})
			classify(t, resp, err) // must still be exactly one terminal outcome
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	deadline := 100 * time.Millisecond
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	err := s.Drain(ctx)
	elapsed := time.Since(start)
	// Clean finish under the deadline or a forced cancel just past it —
	// but never an unbounded wait.
	if err != nil && !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("drain err %v", err)
	}
	if elapsed > deadline+2*time.Second {
		t.Fatalf("drain took %v, want bounded by deadline %v + stall/stride slack", elapsed, deadline)
	}
	wg.Wait() // every client got its verdict
}
