package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"telamalloc"
	"telamalloc/internal/faultinject"
)

// wedgeProblem is infeasible for the heuristics and expensive for search:
// the job parks in the search stage, where the stall faults can wedge it.
func wedgeProblem() Problem {
	p := Problem{Memory: 64, Name: "wedge"}
	for i := 0; i < 30; i++ {
		p.Buffers = append(p.Buffers, telamalloc.Buffer{Start: 0, End: 10, Size: 7})
	}
	return p
}

// A starve at server:watchdog deterministically marks every watched job
// overdue: the kill must land as exactly one typed ErrWatchdog failure, and
// the stage that was wedged must be charged to its breaker.
func TestWatchdogKillIsTypedAndFeedsBreaker(t *testing.T) {
	inj := faultinject.New(
		// Force-kill everything on the first scan...
		faultinject.Fault{Point: faultinject.PointServerWatchdog, Kind: faultinject.Starve},
		// ...while the solve is wedged, non-cooperatively, inside search.
		faultinject.Fault{Point: "group0", Kind: faultinject.Stall, StallFor: 300 * time.Millisecond},
	)
	srv := New(Config{
		Workers:    1,
		QueueDepth: 4,
		Watchdog:   WatchdogConfig{BudgetMultiple: 2, Interval: 2 * time.Millisecond},
		Breaker:    BreakerConfig{Threshold: 1, Cooldown: time.Hour},
		Hook:       inj.Hook,
	})
	defer srv.Close()

	// A generous budget: the kill must come from the forced watchdog scan,
	// not from ordinary budget exhaustion. tightProblem parks the solve in
	// the search stage (an infeasible problem would skip search on its
	// lower-bound proof and wedge in spill instead), so the charge lands
	// on search's breaker.
	resp, err := srv.Submit(context.Background(), Request{Problem: tightProblem(t), Timeout: 30 * time.Second})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("Submit returned err %v, want ErrWatchdog", err)
	}
	if errors.Is(err, ErrCancelled) {
		t.Errorf("watchdog kill must not be conflated with caller cancellation: %v", err)
	}
	if resp == nil || resp.Outcome != OutcomeFailed || resp.Err == "" {
		t.Fatalf("watchdog kill response: %+v, want OutcomeFailed with error text", resp)
	}

	c := srv.Snapshot()
	if c.WatchdogKills != 1 {
		t.Errorf("WatchdogKills = %d, want 1", c.WatchdogKills)
	}
	if c.WatchdogScans == 0 {
		t.Errorf("WatchdogScans = 0, want > 0")
	}
	if c.Failed != 1 {
		t.Errorf("Failed = %d, want 1 (the killed job)", c.Failed)
	}

	// The wedged stage (search) must have tripped its breaker: the next
	// request's ladder skips it. The second request is unbudgeted, so the
	// sticky watchdog starve cannot touch it.
	resp2, err := srv.Submit(context.Background(), Request{Problem: easyProblem()})
	if err != nil || resp2 == nil {
		t.Fatalf("post-kill submit: resp %+v err %v", resp2, err)
	}
	found := false
	for _, stage := range resp2.SkippedByBreaker {
		if stage == telamalloc.StageSearch {
			found = true
		}
	}
	if !found {
		t.Errorf("search breaker did not trip after watchdog kill; skipped = %v (trips %d)",
			resp2.SkippedByBreaker, srv.Snapshot().BreakerTrips)
	}
}

// A wall-clock overrun (no injected watchdog fault) must also be caught:
// the job stalls past BudgetMultiple × budget and the scan kills it.
func TestWatchdogKillsRealOverrun(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Point: "group0", Kind: faultinject.Stall, StallFor: 400 * time.Millisecond},
	)
	srv := New(Config{
		Workers:    1,
		QueueDepth: 4,
		Watchdog:   WatchdogConfig{BudgetMultiple: 2, Interval: 2 * time.Millisecond},
		Hook:       inj.Hook,
	})
	defer srv.Close()

	// Budget 30ms, kill deadline 60ms, stall 400ms: the solver sleeps
	// through both its own deadline and the kill, and the first poll after
	// waking must report the cancellation (typed as a watchdog verdict).
	start := time.Now()
	resp, err := srv.Submit(context.Background(), Request{Problem: wedgeProblem(), Timeout: 30 * time.Millisecond})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("Submit returned err %v (resp %+v) after %v, want ErrWatchdog", err, resp, elapsed)
	}
	if resp == nil || resp.Outcome != OutcomeFailed {
		t.Fatalf("watchdog kill response: %+v, want OutcomeFailed", resp)
	}
	if kills := srv.Snapshot().WatchdogKills; kills != 1 {
		t.Errorf("WatchdogKills = %d, want 1", kills)
	}
}

// Unbudgeted jobs are never watched, and healthy budgeted jobs are
// unwatched again once served: the watchdog must be invisible to traffic
// that behaves.
func TestWatchdogIgnoresHealthyAndUnbudgetedJobs(t *testing.T) {
	srv := New(Config{
		Workers:    2,
		QueueDepth: 8,
		Watchdog:   WatchdogConfig{BudgetMultiple: 1.5, Interval: time.Millisecond},
	})
	defer srv.Close()

	for i := 0; i < 4; i++ {
		req := Request{Problem: easyProblem()}
		if i%2 == 0 {
			req.Timeout = 5 * time.Second // budgeted but fast: watched, never killed
		}
		resp, err := srv.Submit(context.Background(), req)
		if err != nil || resp == nil || resp.Outcome != OutcomeSolved {
			t.Fatalf("submit %d: resp %+v err %v", i, resp, err)
		}
	}
	c := srv.Snapshot()
	if c.WatchdogKills != 0 {
		t.Errorf("WatchdogKills = %d, want 0", c.WatchdogKills)
	}
	if active := srv.watchdogActive(); active != 0 {
		t.Errorf("watchdogActive = %d after all jobs served, want 0", active)
	}
	if c.Solved != 4 {
		t.Errorf("Solved = %d, want 4", c.Solved)
	}
}

// The zero multiple disables the watchdog entirely: no scans, no goroutine
// left behind after Close.
func TestWatchdogDisabledByDefault(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	resp, err := srv.Submit(context.Background(), Request{Problem: easyProblem(), Timeout: time.Second})
	if err != nil || resp == nil || resp.Outcome != OutcomeSolved {
		t.Fatalf("submit: resp %+v err %v", resp, err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if scans := srv.Snapshot().WatchdogScans; scans != 0 {
		t.Errorf("WatchdogScans = %d with watchdog disabled, want 0", scans)
	}
}

// A panicking watchdog hook must be contained: the scan is skipped, the
// loop survives, and a later scan still kills the overrun.
func TestWatchdogHookPanicContained(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Point: faultinject.PointServerWatchdog, Kind: faultinject.Panic},
		faultinject.Fault{Point: faultinject.PointServerWatchdog, After: 3, Kind: faultinject.Starve},
		faultinject.Fault{Point: "group0", Kind: faultinject.Stall, StallFor: 300 * time.Millisecond},
	)
	srv := New(Config{
		Workers:    1,
		QueueDepth: 2,
		Watchdog:   WatchdogConfig{BudgetMultiple: 3, Interval: 2 * time.Millisecond},
		Hook:       inj.Hook,
	})
	defer srv.Close()

	_, err := srv.Submit(context.Background(), Request{Problem: wedgeProblem(), Timeout: 30 * time.Second})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("Submit returned %v, want ErrWatchdog (loop must survive the hook panic)", err)
	}
	c := srv.Snapshot()
	if c.ContainedPanics == 0 {
		t.Errorf("ContainedPanics = 0, want the watchdog hook panic counted")
	}
	if c.WatchdogKills != 1 {
		t.Errorf("WatchdogKills = %d, want 1", c.WatchdogKills)
	}
}
