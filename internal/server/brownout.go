package server

import (
	"sync"
	"sync/atomic"
	"time"

	"telamalloc/internal/faultinject"
	"telamalloc/internal/stats"
)

// BrownoutConfig tunes the brownout controller — the control loop that
// trades answer quality for latency under sustained pressure instead of
// letting queue waits grow without bound (DESIGN.md §14). The zero value
// disables it.
type BrownoutConfig struct {
	// Target is the queue-wait p90 the controller defends. 0 disables the
	// controller entirely.
	Target time.Duration
	// Interval is the evaluation cadence (default 100ms).
	Interval time.Duration
	// StepUpAfter is how many consecutive hot evaluations (p90 above
	// Target) it takes to degrade one ladder level (default 3). The
	// consecutive requirement is half the hysteresis: one bad tick never
	// degrades service.
	StepUpAfter int
	// StepDownAfter is how many consecutive cool evaluations (p90 below
	// LowWater × Target, or an idle queue) it takes to recover one level
	// (default 6 — recovery is deliberately slower than degradation, so
	// the controller doesn't oscillate on the edge of saturation).
	StepDownAfter int
	// LowWater is the fraction of Target below which an evaluation counts
	// as cool (default 0.5). Between LowWater×Target and Target is the
	// deadband: the level holds and both streak counters reset.
	LowWater float64
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.StepUpAfter <= 0 {
		c.StepUpAfter = 3
	}
	if c.StepDownAfter <= 0 {
		c.StepDownAfter = 6
	}
	if c.LowWater <= 0 || c.LowWater >= 1 {
		c.LowWater = 0.5
	}
	return c
}

// enabled reports whether the controller is configured on.
func (c BrownoutConfig) enabled() bool { return c.Target > 0 }

// The brownout ladder. Each level keeps the degradations of the levels
// below it. Level 1 shrinks the per-request step pot (halved per level);
// level 2 also disables hedging (pure capacity: hedges burn a worker-
// adjacent goroutine per request and never change answers); level 3 also
// drops the search stage for batch/background requests — the expensive
// stage goes first for the traffic that can best tolerate a degraded
// packing, while interactive requests keep the full ladder at every level.
const (
	brownoutOff        = 0
	brownoutShrinkPots = 1
	brownoutNoHedge    = 2
	brownoutNoSearch   = 3
	brownoutMaxLevel   = brownoutNoSearch
)

// brownoutSampleCap bounds the per-interval sample window; at high request
// rates the p90 of the first few thousand waits of an interval is
// estimate enough.
const brownoutSampleCap = 4096

// brownout is the controller state. All methods are nil-safe so the server
// can leave it nil when disabled.
type brownout struct {
	cfg   BrownoutConfig
	level atomic.Int32

	mu      sync.Mutex
	samples []float64 // queue waits (ns) observed since the last evaluation
	hot     int       // consecutive hot evaluations
	cool    int       // consecutive cool evaluations
}

func newBrownout(cfg BrownoutConfig) *brownout {
	return &brownout{cfg: cfg.withDefaults()}
}

// currentLevel is the ladder level the serve path should apply right now.
func (b *brownout) currentLevel() int {
	if b == nil {
		return brownoutOff
	}
	return int(b.level.Load())
}

// observe records one request's queue wait into the current window. Called
// on every dequeue and every queue eviction — evicted waits are genuine
// pressure and must count.
func (b *brownout) observe(wait time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if len(b.samples) < brownoutSampleCap {
		b.samples = append(b.samples, float64(wait.Nanoseconds()))
	}
	b.mu.Unlock()
}

// brownoutTransition records one level change for counters and spans.
type brownoutTransition struct {
	from, to int
	p90      time.Duration
	samples  int
}

// evaluate runs one controller tick: classify the window as hot, cool, or
// deadband; advance the matching streak; move one level when a streak
// reaches its threshold. forceHot marks the tick hot regardless of the
// window (the server:brownout starve lever). Returns the transition and
// whether one happened.
func (b *brownout) evaluate(now time.Time, forceHot bool) (brownoutTransition, bool) {
	if b == nil {
		return brownoutTransition{}, false
	}
	b.mu.Lock()
	window := b.samples
	b.samples = nil
	b.mu.Unlock()

	p90 := time.Duration(stats.Percentile(window, 90))
	hot := forceHot || (len(window) > 0 && p90 > b.cfg.Target)
	cool := !hot && (len(window) == 0 ||
		float64(p90) < b.cfg.LowWater*float64(b.cfg.Target))

	b.mu.Lock()
	defer b.mu.Unlock()
	level := int(b.level.Load())
	tr := brownoutTransition{from: level, to: level, p90: p90, samples: len(window)}
	switch {
	case hot:
		b.cool = 0
		b.hot++
		if b.hot >= b.cfg.StepUpAfter && level < brownoutMaxLevel {
			b.hot = 0
			tr.to = level + 1
			b.level.Store(int32(tr.to))
			return tr, true
		}
	case cool:
		b.hot = 0
		b.cool++
		if b.cool >= b.cfg.StepDownAfter && level > brownoutOff {
			b.cool = 0
			tr.to = level - 1
			b.level.Store(int32(tr.to))
			return tr, true
		}
	default:
		// Deadband: the level holds and both streaks reset — this is the
		// other half of the hysteresis (a window hovering just under
		// Target neither degrades further nor recovers).
		b.hot, b.cool = 0, 0
	}
	return tr, false
}

// brownoutLoop is the server's controller goroutine, started by New when
// Config.Brownout is enabled and stopped by Drain after the workers exit.
// It is ticker-driven, never sleep-driven: tests drive brownoutTick
// directly with a manual clock (and CI lint bans bare time.Sleep in this
// package).
func (s *Server) brownoutLoop() {
	defer close(s.bwDone)
	t := time.NewTicker(s.cfg.Brownout.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.bwStop:
			return
		case now := <-t.C:
			s.brownoutTick(now)
		}
	}
}

// brownoutTick runs one controller evaluation and publishes any transition
// as counters and a span. Exposed (package-internally) so tests can drive
// the controller deterministically without the ticker.
func (s *Server) brownoutTick(now time.Time) {
	starve, herr := s.hookPoint(faultinject.PointServerBrownout)
	if herr != nil {
		// A panicking hook is contained and counted; the controller just
		// skips this tick rather than crashing the loop.
		return
	}
	tr, changed := s.brown.evaluate(now, starve)
	if !changed {
		return
	}
	if tr.to > tr.from {
		s.counters.brownoutDegrades.Add(1)
	} else {
		s.counters.brownoutRecovers.Add(1)
	}
	s.traceEvent("", "brownout", now, 0, map[string]any{
		"from":    tr.from,
		"to":      tr.to,
		"p90_ms":  float64(tr.p90) / float64(time.Millisecond),
		"samples": tr.samples,
	})
}
