package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"telamalloc/internal/obs"
	"telamalloc/internal/workload"
)

// scrapeText renders a registry in Prometheus exposition format.
func scrapeText(r *obs.Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// metricValue extracts one series' sample value from exposition text.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("series %s: bad sample %q: %v", series, rest, err)
		}
		return v
	}
	t.Fatalf("series %s not found in scrape:\n%s", series, text)
	return 0
}

// syncBuffer is a concurrency-safe tracer sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMetricsScrapeMatchesSnapshot pins the func-backed ledger contract: a
// /metrics scrape after drain reports exactly the numbers Snapshot does,
// and the serve-path histograms count exactly the admitted requests.
func TestMetricsScrapeMatchesSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	s := New(Config{Workers: 2, Obs: r})
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(context.Background(), Request{Problem: easyProblem()}); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	if _, err := s.Submit(context.Background(), Request{Problem: tightProblem(t)}); err != nil {
		t.Fatalf("submit tight: %v", err)
	}
	mustDrain(t, s)

	c := s.Snapshot()
	text := scrapeText(r)
	for series, want := range map[string]int64{
		"telamalloc_server_submitted_total":                  c.Submitted,
		"telamalloc_server_admitted_total":                   c.Admitted,
		`telamalloc_server_outcomes_total{outcome="solved"}`: c.Solved,
		`telamalloc_server_outcomes_total{outcome="failed"}`: c.Failed,
		`telamalloc_server_outcomes_total{outcome="shed"}`:   c.Shed,
		`telamalloc_server_cache_events_total{event="hit"}`:  c.CacheHits,
		`telamalloc_server_cache_events_total{event="miss"}`: c.CacheMisses,
		"telamalloc_server_queue_wait_seconds_count":         c.Admitted,
		"telamalloc_server_service_seconds_count":            c.Admitted,
		"telamalloc_server_queue_depth":                      0,
	} {
		if got := metricValue(t, text, series); got != float64(want) {
			t.Errorf("%s = %v, scrape disagrees with ledger value %d", series, got, want)
		}
	}
	if c.Solved < 5 {
		t.Errorf("solved = %d, want at least the 5 submissions", c.Solved)
	}
	// The solver's own telemetry must land in the same registry: the tight
	// problem forced a real search through the pipeline.
	if v := metricValue(t, text, "telamalloc_solver_solves_total"); v < 1 {
		t.Errorf("solver solves = %v, want >= 1 (search stage ran)", v)
	}
	assertBucketsMonotone(t, text, "telamalloc_server_queue_wait_seconds_bucket")
}

// assertBucketsMonotone checks the cumulative bucket invariant for every
// labelled series of a histogram family in the scrape.
func assertBucketsMonotone(t *testing.T, text, bucketSeries string) {
	t.Helper()
	if err := bucketsMonotone(text, bucketSeries); err != nil {
		t.Fatal(err)
	}
}

// bucketsMonotone is the goroutine-safe form: it returns the violation
// instead of failing the test, so mid-flight scraper goroutines can use it.
func bucketsMonotone(text, bucketSeries string) error {
	last := -1.0
	n := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, bucketSeries) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return fmt.Errorf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			return fmt.Errorf("bucket counts not monotone at %q (prev %v)", line, last)
		}
		last = v
		n++
	}
	if n == 0 {
		return fmt.Errorf("no %s series in scrape", bucketSeries)
	}
	return nil
}

// TestTraceSpanBalance floods a hedged server with a mix of solvable,
// degraded, and caller-cancelled requests and asserts the tracer's
// open/close accounting balances — the invariant that proves no lifecycle
// path leaks a root span even when the hedge and the ladder race or the
// caller gives up first. Run under -race by `make race`.
func TestTraceSpanBalance(t *testing.T) {
	var sink syncBuffer
	tr := obs.NewTracer(&sink)
	s := New(Config{Workers: 4, Hedge: true, Obs: obs.NewRegistry(), Tracer: tr})

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%4 == 3 {
				c, cancel := context.WithCancel(ctx)
				cancel()
				ctx = c
			}
			var p Problem
			switch i % 3 {
			case 0:
				p = easyProblem()
			case 1:
				p = fromInternal(workload.Random(int64(i), 110))
			default:
				p = infeasibleProblem()
			}
			_, _ = s.Submit(ctx, Request{Problem: p, TraceID: fmt.Sprintf("req-%d", i)})
		}(i)
	}
	wg.Wait()
	mustDrain(t, s)

	opened, closed := tr.Balance()
	if opened != closed {
		t.Fatalf("span balance broken: opened %d, closed %d", opened, closed)
	}
	if opened < n {
		t.Errorf("opened %d spans, want at least one root span per request (%d)", opened, n)
	}
	if tr.Dropped() != 0 {
		t.Errorf("tracer dropped %d spans", tr.Dropped())
	}

	// Every emitted line must be whole, schema-valid JSON.
	sc := bufio.NewScanner(strings.NewReader(sink.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, roots := 0, 0
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if rec.Span == "" {
			t.Fatalf("span record without a name: %q", sc.Text())
		}
		if rec.Span == "request" {
			roots++
			if rec.Attrs["outcome"] == nil {
				t.Fatalf("root span without outcome: %q", sc.Text())
			}
		}
		lines++
	}
	if roots != n {
		t.Errorf("root spans = %d, want exactly one per request (%d)", roots, n)
	}
	if int64(lines) != closed {
		t.Errorf("trace lines = %d, closed spans = %d", lines, closed)
	}
}

// TestObsSoak is the `make obssoak` entry point: a hedged server under
// sustained mixed load, scraped mid-flight, with the ledger ↔ histogram
// agreement checked after drain. Mid-flight scrapes only assert invariants
// that hold at any instant (bucket monotonicity, parseability).
func TestObsSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak; skipped in -short")
	}
	r := obs.NewRegistry()
	var sink syncBuffer
	tr := obs.NewTracer(&sink)
	s := New(Config{Workers: 4, QueueDepth: 16, Hedge: true, Obs: r, Tracer: tr,
		RequestTimeout: 2 * time.Second})

	stop := make(chan struct{})
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			text := scrapeText(r)
			// t.Errorf is goroutine-safe; Fatalf is not, so scrape checks
			// report and bail instead of aborting.
			if err := bucketsMonotone(text, "telamalloc_server_queue_wait_seconds_bucket"); err != nil {
				t.Errorf("mid-flight scrape: %v", err)
				return
			}
			if !strings.Contains(text, "telamalloc_server_queue_depth ") {
				t.Errorf("mid-flight scrape missing queue depth gauge")
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 24; i++ {
				var p Problem
				switch rng.Intn(3) {
				case 0:
					p = easyProblem()
				case 1:
					p = fromInternal(workload.Random(int64(c*100+i), 110))
				default:
					p = infeasibleProblem()
				}
				ctx := context.Background()
				if rng.Intn(5) == 0 {
					cc, cancel := context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
					defer cancel()
					ctx = cc
				}
				_, _ = s.Submit(ctx, Request{Problem: p, TraceID: fmt.Sprintf("c%d-%d", c, i)})
			}
		}(c)
	}
	wg.Wait()
	mustDrain(t, s)
	close(stop)
	scraperWG.Wait()

	// After drain the scrape and the ledger must agree exactly, and every
	// admitted request must have passed through both histograms.
	c := s.Snapshot()
	text := scrapeText(r)
	for series, want := range map[string]int64{
		"telamalloc_server_submitted_total":                     c.Submitted,
		"telamalloc_server_admitted_total":                      c.Admitted,
		`telamalloc_server_outcomes_total{outcome="solved"}`:    c.Solved,
		`telamalloc_server_outcomes_total{outcome="degraded"}`:  c.Degraded,
		`telamalloc_server_outcomes_total{outcome="cancelled"}`: c.Cancelled,
		"telamalloc_server_hedge_wins_total":                    c.HedgeWins,
		"telamalloc_server_queue_wait_seconds_count":            c.Admitted,
		"telamalloc_server_service_seconds_count":               c.Admitted,
	} {
		if got := metricValue(t, text, series); got != float64(want) {
			t.Errorf("%s = %v, ledger says %d", series, got, want)
		}
	}
	if c.Submitted != clients*24 {
		t.Errorf("submitted = %d, want %d", c.Submitted, clients*24)
	}
	if opened, closed := tr.Balance(); opened != closed {
		t.Errorf("span balance broken after soak: opened %d, closed %d", opened, closed)
	}
	if tr.Dropped() != 0 {
		t.Errorf("tracer dropped %d spans", tr.Dropped())
	}
}
