package server

import (
	"sync"
	"time"
)

// Priority is a request's admission class. Classes do not change answers —
// a solved packing is the same bytes at any priority — they change who
// waits and who is shed when the service is saturated (DESIGN.md §14).
type Priority string

const (
	// PriorityInteractive is latency-critical traffic (a compile a human
	// is waiting on). Dequeued first; its queue bound is never consumed by
	// lower classes.
	PriorityInteractive Priority = "interactive"
	// PriorityBatch is the default class: bulk compilation, CI. An empty
	// Priority means batch.
	PriorityBatch Priority = "batch"
	// PriorityBackground is best-effort traffic (benchmark sweeps,
	// speculative warmup). First to degrade, last to dequeue.
	PriorityBackground Priority = "background"
)

// numClasses is the number of admission classes; class indices are dequeue
// order (0 dequeues first).
const numClasses = 3

// classOrder maps class index back to the canonical Priority name, for
// labels and shed reports.
var classOrder = [numClasses]Priority{PriorityInteractive, PriorityBatch, PriorityBackground}

// class maps a Priority to its class index. The empty string is batch: the
// wire field is optional and absent must mean exactly what PR-4 traffic
// got. Unknown values are reported, not guessed at — silently downgrading
// a typo'd "interactive" would hide the misconfiguration exactly when
// latency matters.
func (p Priority) class() (int, bool) {
	switch p {
	case PriorityInteractive:
		return 0, true
	case PriorityBatch, "":
		return 1, true
	case PriorityBackground:
		return 2, true
	}
	return 0, false
}

// Valid reports whether p names a known admission class (empty counts: it
// is the documented spelling of batch).
func (p Priority) Valid() bool { _, ok := p.class(); return ok }

// pushStatus is the outcome of a classQueue push.
type pushStatus int

const (
	pushOK     pushStatus = iota // enqueued
	pushFull                     // the job's class is at its bound
	pushClosed                   // the queue is closed (server draining)
)

// classQueue is the admission queue: one bounded FIFO per priority class
// with strict-priority dequeue. It replaces the single buffered channel so
// that (a) a batch flood filling its own lane can never consume the
// interactive lane's slots, and (b) the server can walk the queue to evict
// jobs whose deadlines already expired — neither is expressible on a
// channel. Close semantics mirror a closed channel's: pushes report
// pushClosed, pops keep draining until empty, then report closed.
type classQueue struct {
	mu     sync.Mutex
	nempty *sync.Cond // signalled on push and close
	jobs   [numClasses][]*job
	bound  [numClasses]int
	closed bool
}

func newClassQueue(bound [numClasses]int) *classQueue {
	q := &classQueue{bound: bound}
	q.nempty = sync.NewCond(&q.mu)
	return q
}

// push enqueues j into its class lane, or reports why it cannot.
func (q *classQueue) push(j *job) pushStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return pushClosed
	}
	c := j.class
	if len(q.jobs[c]) >= q.bound[c] {
		return pushFull
	}
	q.jobs[c] = append(q.jobs[c], j)
	q.nempty.Signal()
	return pushOK
}

// pop blocks until a job is available and returns the oldest job of the
// highest-priority non-empty class. ok is false only once the queue is
// closed AND empty — queued work admitted before a drain is still served.
func (q *classQueue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for c := 0; c < numClasses; c++ {
			if len(q.jobs[c]) > 0 {
				j = q.jobs[c][0]
				q.jobs[c][0] = nil // release the reference; lanes are long-lived
				q.jobs[c] = q.jobs[c][1:]
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.nempty.Wait()
	}
}

// close stops admissions and wakes every blocked pop so idle workers can
// exit once the lanes drain.
func (q *classQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nempty.Broadcast()
}

// evictExpired removes and returns every queued job whose deadline has
// passed (jobs without a deadline are never evicted). With force set,
// every deadline-carrying job is treated as expired — the deterministic
// lever behind the server:expire starve fault. FIFO order within each lane
// is preserved for the survivors.
func (q *classQueue) evictExpired(now time.Time, force bool) []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var evicted []*job
	for c := 0; c < numClasses; c++ {
		kept := q.jobs[c][:0]
		for _, j := range q.jobs[c] {
			if !j.expires.IsZero() && (force || !now.Before(j.expires)) {
				evicted = append(evicted, j)
			} else {
				kept = append(kept, j)
			}
		}
		// Nil the tail so evicted jobs aren't pinned by the lane's backing
		// array.
		for i := len(kept); i < len(q.jobs[c]); i++ {
			q.jobs[c][i] = nil
		}
		q.jobs[c] = kept
	}
	return evicted
}

// len reports total queue occupancy across classes.
func (q *classQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for c := 0; c < numClasses; c++ {
		n += len(q.jobs[c])
	}
	return n
}

// lenClass reports one class lane's occupancy.
func (q *classQueue) lenClass(c int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs[c])
}

// lenAhead reports the work queued at or above the given class's priority —
// the jobs a new arrival of that class would wait behind. This is the depth
// retry-after pricing uses: a shed background request behind a deep
// interactive backlog must not be told to come back in a millisecond.
func (q *classQueue) lenAhead(class int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for c := 0; c <= class && c < numClasses; c++ {
		n += len(q.jobs[c])
	}
	return n
}
