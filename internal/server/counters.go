package server

import "sync/atomic"

// counters aggregates service-level telemetry. All fields are updated with
// atomics; Snapshot reads them without stopping the world, so a snapshot
// taken while requests are in flight is internally consistent only once the
// server has drained.
type counters struct {
	submitted        atomic.Int64
	admitted         atomic.Int64
	shed             atomic.Int64
	rejectedDraining atomic.Int64
	solved           atomic.Int64
	degraded         atomic.Int64
	failed           atomic.Int64
	cancelled        atomic.Int64
	hedgeWins        atomic.Int64
	breakerTrips     atomic.Int64
	breakerProbes    atomic.Int64
	breakerRecovered atomic.Int64
	containedPanics  atomic.Int64
	forceCancelled   atomic.Int64
	dedupShared      atomic.Int64
	hintReplays      atomic.Int64
	watchdogScans    atomic.Int64
	watchdogKills    atomic.Int64
	expiredDequeued  atomic.Int64
	expiredEvicted   atomic.Int64
	tenantShed       atomic.Int64
	brownoutDegrades atomic.Int64
	brownoutRecovers atomic.Int64
	brownoutMarked   atomic.Int64
}

// Counters is a point-in-time snapshot of the service counters.
type Counters struct {
	// Submitted counts every Submit call.
	Submitted int64
	// Admitted counts requests that entered the queue.
	Admitted int64
	// Shed counts requests rejected by admission control (ErrOverloaded).
	Shed int64
	// RejectedDraining counts requests rejected after drain began.
	RejectedDraining int64
	// Solved / Degraded / Failed count pipeline verdicts delivered to
	// callers.
	Solved   int64
	Degraded int64
	Failed   int64
	// Cancelled counts requests whose caller's context ended first.
	Cancelled int64
	// HedgeWins counts responses delivered by the hedge before the ladder.
	HedgeWins int64
	// BreakerTrips / BreakerProbes / BreakerRecoveries count circuit
	// breaker transitions: closed→open, half-open probe admissions, and
	// half-open→closed recoveries.
	BreakerTrips      int64
	BreakerProbes     int64
	BreakerRecoveries int64
	// ContainedPanics counts panics recovered at a server boundary (the
	// pipeline contains its own; those surface as Failed, not here).
	ContainedPanics int64
	// ForceCancelled counts in-flight requests cancelled by a drain whose
	// deadline expired.
	ForceCancelled int64
	// DedupShared counts responses shared from a concurrent identical
	// request's solve (singleflight followers). Each is also counted under
	// Solved — sharing changes who did the work, not the outcome.
	DedupShared int64
	// HintReplays counts pipeline runs settled by replaying a decision
	// trace instead of searching.
	HintReplays int64
	// WatchdogScans counts solve-watchdog passes over the active-job
	// registry; WatchdogKills counts jobs force-cancelled for running past
	// the configured multiple of their budget. Each kill is also counted
	// under Failed once the worker delivers the typed verdict.
	WatchdogScans int64
	WatchdogKills int64
	// ExpiredInQueue counts requests whose budget ran out while queued and
	// were short-circuited at dequeue; ExpiredEvicted counts those removed
	// by an eager eviction sweep before any worker touched them. Both are
	// also counted under Failed — these annotate how the failure happened.
	ExpiredInQueue int64
	ExpiredEvicted int64
	// TenantShed counts sheds decided by per-tenant limits (token bucket
	// or in-flight share). Each is also counted under Shed.
	TenantShed int64
	// BrownoutDegrades / BrownoutRecovers count brownout-ladder level
	// transitions (down and up). BrownoutDegraded counts responses
	// delivered with the DegradedByBrownout marker set.
	BrownoutDegrades int64
	BrownoutRecovers int64
	BrownoutDegraded int64
	// CacheHits / CacheMisses count solution-cache lookups; CacheNearHits
	// counts shape-only matches that seeded a hint. CacheInsertions -
	// CacheEvictions == CacheLen while the server lives. All zero when the
	// cache is disabled.
	CacheHits       int64
	CacheMisses     int64
	CacheNearHits   int64
	CacheInsertions int64
	CacheEvictions  int64
	CacheLen        int
}

// Snapshot returns the current counter values, merging in the solution
// cache's own telemetry when a cache is configured.
func (s *Server) Snapshot() Counters {
	c := &s.counters
	out := Counters{
		Submitted:         c.submitted.Load(),
		Admitted:          c.admitted.Load(),
		Shed:              c.shed.Load(),
		RejectedDraining:  c.rejectedDraining.Load(),
		Solved:            c.solved.Load(),
		Degraded:          c.degraded.Load(),
		Failed:            c.failed.Load(),
		Cancelled:         c.cancelled.Load(),
		HedgeWins:         c.hedgeWins.Load(),
		BreakerTrips:      c.breakerTrips.Load(),
		BreakerProbes:     c.breakerProbes.Load(),
		BreakerRecoveries: c.breakerRecovered.Load(),
		ContainedPanics:   c.containedPanics.Load(),
		ForceCancelled:    c.forceCancelled.Load(),
		DedupShared:       c.dedupShared.Load(),
		HintReplays:       c.hintReplays.Load(),
		WatchdogScans:     c.watchdogScans.Load(),
		WatchdogKills:     c.watchdogKills.Load(),
		ExpiredInQueue:    c.expiredDequeued.Load(),
		ExpiredEvicted:    c.expiredEvicted.Load(),
		TenantShed:        c.tenantShed.Load(),
		BrownoutDegrades:  c.brownoutDegrades.Load(),
		BrownoutRecovers:  c.brownoutRecovers.Load(),
		BrownoutDegraded:  c.brownoutMarked.Load(),
	}
	if s.cache != nil {
		cc := s.cache.Counters()
		out.CacheHits = cc.Hits
		out.CacheMisses = cc.Misses
		out.CacheNearHits = cc.NearHits
		out.CacheInsertions = cc.Insertions
		out.CacheEvictions = cc.Evictions
		out.CacheLen = cc.Len
	}
	return out
}
