package server

import (
	"fmt"
	"time"

	"telamalloc/internal/faultinject"
)

// WatchdogConfig tunes the solve watchdog: the server's last line of
// defence against a wedged solve. The per-request budget already bounds a
// *cooperative* solver — it polls its deadline every stride and stops
// itself. The watchdog covers the uncooperative failure modes production
// actually sees: a stalled hook, a descheduled worker, a stage that
// stopped polling. Any job still running past BudgetMultiple × its budget
// is force-cancelled through the same context plumbing Drain uses, the
// kill is recorded in the telamalloc_watchdog_* metrics, and the stage
// that was running when the kill landed is reported to its circuit
// breaker as a failure — a stage that wedges repeatedly gets skipped,
// exactly like one that crashes repeatedly.
type WatchdogConfig struct {
	// BudgetMultiple enables the watchdog when > 0: a job still running
	// after BudgetMultiple × its effective wall budget (measured from
	// Submit, like the budget itself) is force-cancelled. Jobs with no
	// budget are never watched — with no pot there is no overrun.
	// Values in (0,1) are clamped to 1: the watchdog must never fire
	// before the budget the solver is still honestly entitled to.
	BudgetMultiple float64
	// Interval is the scan period (default 25ms). Detection latency is
	// bounded by one interval plus the solver's cancellation latency.
	Interval time.Duration
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.BudgetMultiple > 0 && c.BudgetMultiple < 1 {
		c.BudgetMultiple = 1
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	return c
}

// enabled reports whether the watchdog should run at all.
func (c WatchdogConfig) enabled() bool { return c.BudgetMultiple > 0 }

// watchJob registers a dequeued job with the watchdog. No-op when the
// watchdog is off or the job carries no budget.
func (s *Server) watchJob(j *job) (unwatch func()) {
	if !s.cfg.Watchdog.enabled() || j.budget <= 0 {
		return func() {}
	}
	j.wdDeadline = j.submitted.Add(time.Duration(float64(j.budget) * s.cfg.Watchdog.BudgetMultiple))
	s.wdMu.Lock()
	s.wdJobs[j] = struct{}{}
	s.wdMu.Unlock()
	return func() {
		s.wdMu.Lock()
		delete(s.wdJobs, j)
		s.wdMu.Unlock()
	}
}

// watchdogLoop scans the active-job registry every Interval and
// force-cancels overruns. It runs for the life of the server; Drain stops
// it after the workers exit, so every kill it could ever deliver has a
// live worker to observe it.
func (s *Server) watchdogLoop() {
	defer close(s.wdDone)
	ticker := time.NewTicker(s.cfg.Watchdog.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.wdStop:
			return
		case <-ticker.C:
			s.watchdogScan(time.Now())
		}
	}
}

// watchdogScan is one pass over the registered jobs. A starve injected at
// the server:watchdog point makes every scanned job overdue — the
// deterministic path the fault suite uses to prove a kill ends in exactly
// one typed outcome without arming real multi-second stalls.
func (s *Server) watchdogScan(now time.Time) {
	forceAll, herr := s.hookPoint(faultinject.PointServerWatchdog)
	if herr != nil {
		// A crashing watchdog hook is contained (counted by hookPoint);
		// the scan is skipped, never the loop.
		return
	}
	s.counters.watchdogScans.Add(1)
	var overdue []*job
	s.wdMu.Lock()
	for j := range s.wdJobs {
		if forceAll || now.After(j.wdDeadline) {
			overdue = append(overdue, j)
		}
	}
	s.wdMu.Unlock()
	for _, j := range overdue {
		if j.wdKilled.CompareAndSwap(false, true) {
			s.counters.watchdogKills.Add(1)
			if over := now.Sub(j.wdDeadline); over > 0 {
				s.metrics.watchdogOverrun.ObserveDuration(over.Nanoseconds())
			} else {
				s.metrics.watchdogOverrun.ObserveDuration(0)
			}
			// The job's own context is the one cancellation surface every
			// layer below already honours; the kill rides it.
			j.cancel()
		}
	}
}

// watchdogError builds the typed terminal error for a watchdog-killed job.
func (s *Server) watchdogError(j *job) error {
	return fmt.Errorf("%w: solve exceeded %.1f× its %v budget and was force-cancelled",
		ErrWatchdog, s.cfg.Watchdog.BudgetMultiple, j.budget)
}

// watchdogActive reports the current number of watched jobs (metrics).
func (s *Server) watchdogActive() int64 {
	s.wdMu.Lock()
	defer s.wdMu.Unlock()
	return int64(len(s.wdJobs))
}
