package server

// Tests for the cross-request reuse layer: solution-cache hits, decision-
// trace hint replay, singleflight deduplication — and the bugfix sweep's
// regressions (settle-ledger balance under cancellation at the dequeue
// window, half-open breaker probes that get cancelled mid-run).

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"telamalloc"
	"telamalloc/internal/faultinject"
	"telamalloc/internal/workload"
)

// TestSubmitCacheHitByteIdentical: a repeated submission is served from the
// cache without re-queueing, and its canonical bytes are identical to the
// cold solve's.
func TestSubmitCacheHitByteIdentical(t *testing.T) {
	s := New(Config{Workers: 1, MaxSteps: 200000})
	defer mustDrain(t, s)
	p := tightProblem(t)

	cold, err := s.Submit(context.Background(), Request{Problem: p})
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	if cold.CacheHit || cold.Winner != telamalloc.StageSearch {
		t.Fatalf("cold response %+v, want a search win without a cache hit", cold)
	}
	if cold.Trace == nil || cold.Trace.Winner != telamalloc.StageSearch {
		t.Fatalf("cold response trace %+v, want the winning stage's trace", cold.Trace)
	}

	// A reordered copy of the same problem must hit too: the fingerprint is
	// order-invariant and the replayed offsets follow the new order.
	q := Problem{Memory: p.Memory, Buffers: append([]telamalloc.Buffer(nil), p.Buffers...)}
	q.Buffers[0], q.Buffers[len(q.Buffers)-1] = q.Buffers[len(q.Buffers)-1], q.Buffers[0]
	warmQ, err := s.Submit(context.Background(), Request{Problem: q})
	if err != nil {
		t.Fatalf("reordered warm submit: %v", err)
	}
	if !warmQ.CacheHit {
		t.Errorf("reordered copy missed the cache")
	}
	if verr := (telamalloc.Solution{Offsets: warmQ.Offsets}).Validate(q); verr != nil {
		t.Errorf("replayed packing invalid for the reordered copy: %v", verr)
	}

	warm, err := s.Submit(context.Background(), Request{Problem: p})
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	if !warm.CacheHit {
		t.Errorf("second identical submission was not a cache hit")
	}
	if !bytes.Equal(warm.CanonicalJSON(), cold.CanonicalJSON()) {
		t.Errorf("warm bytes differ from cold:\n cold %s\n warm %s", cold.CanonicalJSON(), warm.CanonicalJSON())
	}

	c := s.Snapshot()
	if c.CacheHits != 2 || c.CacheInsertions != 1 {
		t.Errorf("counters %+v, want 2 cache hits from 1 insertion", c)
	}
	if c.Admitted != 1 {
		t.Errorf("admitted %d, want 1 — cache hits must not re-queue", c.Admitted)
	}
}

// TestSubmitWarmSpeedup is the repeated-workload acceptance criterion: warm
// submissions at least 5x faster than the cold solve, byte-identical output.
func TestSubmitWarmSpeedup(t *testing.T) {
	s := New(Config{Workers: 1, MaxSteps: 1 << 20})
	defer mustDrain(t, s)
	p := tightProblem(t)

	start := time.Now()
	cold, err := s.Submit(context.Background(), Request{Problem: p})
	coldTime := time.Since(start)
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}

	warmBest := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		start = time.Now()
		warm, werr := s.Submit(context.Background(), Request{Problem: p})
		elapsed := time.Since(start)
		if werr != nil {
			t.Fatalf("warm submit %d: %v", i, werr)
		}
		if !warm.CacheHit {
			t.Fatalf("warm submit %d missed the cache", i)
		}
		if !bytes.Equal(warm.CanonicalJSON(), cold.CanonicalJSON()) {
			t.Fatalf("warm submit %d bytes differ from cold", i)
		}
		if elapsed < warmBest {
			warmBest = elapsed
		}
	}
	if coldTime < 5*warmBest {
		t.Errorf("cold %v vs best warm %v: want warm at least 5x faster", coldTime, warmBest)
	}
}

// TestSubmitDedupSharesOneSolve: concurrent identical requests collapse to
// one queued solve; every follower gets the leader's bytes.
func TestSubmitDedupSharesOneSolve(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		Workers: 1,
		// Cache off so followers exercise the flight path, not the cache.
		CacheSize: -1,
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				<-release
			}
			return false
		},
	})
	defer mustDrain(t, s)
	p := easyProblem()

	const clients = 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	var responses []*Response
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{Problem: p})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			mu.Lock()
			responses = append(responses, resp)
			mu.Unlock()
		}()
	}
	// Let every client reach the flight map while the worker is parked,
	// then let the single solve run.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if len(responses) != clients {
		t.Fatalf("%d responses, want %d", len(responses), clients)
	}
	deduped := 0
	for _, r := range responses {
		if r.Deduped {
			deduped++
		}
		if !bytes.Equal(r.CanonicalJSON(), responses[0].CanonicalJSON()) {
			t.Errorf("shared responses disagree")
		}
		if verr := (telamalloc.Solution{Offsets: r.Offsets}).Validate(p); verr != nil {
			t.Errorf("shared packing invalid: %v", verr)
		}
	}
	c := s.Snapshot()
	if c.Admitted != 1 {
		t.Errorf("admitted %d, want 1 — the flood must share one solve", c.Admitted)
	}
	if deduped != clients-1 || c.DedupShared != int64(clients-1) {
		t.Errorf("deduped %d (counter %d), want %d followers", deduped, c.DedupShared, clients-1)
	}
	if c.Solved != clients {
		t.Errorf("solved %d, want %d — every caller still gets a terminal outcome", c.Solved, clients)
	}
}

// TestSubmitNearMissHintReplay: the same buffers under a different capacity
// miss the cache but warm-start through the shape index — the pipeline
// replays the stored trace instead of searching.
func TestSubmitNearMissHintReplay(t *testing.T) {
	s := New(Config{Workers: 1, MaxSteps: 200000})
	defer mustDrain(t, s)
	p := tightProblem(t)

	cold, err := s.Submit(context.Background(), Request{Problem: p})
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}

	wider := p
	wider.Memory = p.Memory + 64 // same shape, new full fingerprint
	warm, err := s.Submit(context.Background(), Request{Problem: wider})
	if err != nil {
		t.Fatalf("near-miss submit: %v", err)
	}
	if warm.CacheHit {
		t.Fatalf("capacity change must not be an exact cache hit")
	}
	if !warm.HintReplayed {
		t.Errorf("near miss did not replay the stored trace: %+v", warm)
	}
	if warm.Winner != cold.Winner {
		t.Errorf("replay winner %q, want the trace's %q", warm.Winner, cold.Winner)
	}
	if verr := (telamalloc.Solution{Offsets: warm.Offsets}).Validate(wider); verr != nil {
		t.Errorf("replayed packing invalid at the new capacity: %v", verr)
	}
	c := s.Snapshot()
	if c.CacheNearHits != 1 || c.HintReplays != 1 {
		t.Errorf("counters %+v, want 1 near hit and 1 hint replay", c)
	}
}

// TestSubmitCancelAtDequeueLedger is the settle-path regression: callers
// cancel while the worker is stalled inside the dequeue window — between
// delivery and the CAS settle — and the counter ledger must still balance,
// with exactly one terminal outcome per submission.
func TestSubmitCancelAtDequeueLedger(t *testing.T) {
	const clients = 8
	faults := make([]faultinject.Fault, clients)
	for i := range faults {
		// Every dequeue stalls, so each job sits in the delivery window
		// while its caller cancels.
		faults[i] = faultinject.Fault{
			Point:    faultinject.PointServerDequeue,
			After:    int64(i + 1),
			Kind:     faultinject.Stall,
			StallFor: 30 * time.Millisecond,
		}
	}
	inj := faultinject.New(faults...)
	s := New(Config{
		Workers:    2,
		QueueDepth: clients,
		// Identical requests must each own a job for the window to exist.
		DisableDedup: true,
		CacheSize:    -1,
		Hook:         inj.Hook,
	})
	p := easyProblem()

	var wg sync.WaitGroup
	var mu sync.Mutex
	tally := map[terminalClass]int{}
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			// Spread cancellations across the stall window so both sides
			// of the settle race run under -race.
			time.AfterFunc(time.Duration(5+4*i)*time.Millisecond, cancel)
			defer cancel()
			resp, err := s.Submit(ctx, Request{Problem: p})
			class := classify(t, resp, err)
			mu.Lock()
			tally[class]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	mustDrain(t, s)

	total := 0
	for _, n := range tally {
		total += n
	}
	if total != clients {
		t.Fatalf("outcomes %v sum to %d, want %d", tally, total, clients)
	}
	c := s.Snapshot()
	accounted := c.Shed + c.RejectedDraining + c.Cancelled + c.Solved + c.Degraded + c.Failed
	if accounted != c.Submitted || c.Submitted != clients {
		t.Fatalf("counter ledger unbalanced: %+v (accounted %d of %d)", c, accounted, c.Submitted)
	}
	if c.Cancelled != int64(tally[classCancelled]) || c.Solved != int64(tally[classSolved]) {
		t.Errorf("counters %+v disagree with observed outcomes %v", c, tally)
	}
	if tally[classCancelled] == 0 {
		t.Errorf("no caller cancelled inside the dequeue window; the regression window was not exercised")
	}
}

// TestBreakerProbeIgnoresCancelledStage is the half-open probe regression: a
// probe whose stage was cancelled mid-run (here: the caller gave up) carries
// no health signal. It must neither close the breaker as a success nor count
// as a failure — and the probe slot must be released for the next request.
func TestBreakerProbeIgnoresCancelledStage(t *testing.T) {
	p := tightProblem(t)
	inj := faultinject.New(
		faultinject.Fault{Point: faultinject.StageEntry(telamalloc.StageSearch), After: 1, Kind: faultinject.Panic},
		faultinject.Fault{Point: faultinject.StageEntry(telamalloc.StageSearch), After: 2, Kind: faultinject.Panic},
		faultinject.Fault{Point: faultinject.StageEntry(telamalloc.StageSearch), After: 3, Kind: faultinject.Panic},
		// The 4th search entry — the half-open probe — stalls long enough
		// for the caller to cancel while the stage is running.
		faultinject.Fault{Point: faultinject.StageEntry(telamalloc.StageSearch), After: 4, Kind: faultinject.Stall, StallFor: 150 * time.Millisecond},
	)
	s := New(Config{
		Workers:   1,
		Breaker:   BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
		CacheSize: -1,
		Hook:      inj.Hook,
	})
	defer mustDrain(t, s)

	// Three injected search panics trip the breaker (spill recovers each).
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(), Request{Problem: p, MaxSteps: 100000}); err != nil {
			t.Fatalf("trip request %d: %v", i, err)
		}
	}
	if c := s.Snapshot(); c.BreakerTrips != 1 {
		t.Fatalf("counters %+v, want the breaker tripped", c)
	}
	time.Sleep(80 * time.Millisecond) // past the cooldown: next request probes

	// The probe request: its caller cancels while the search stage stalls.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(40 * time.Millisecond)
		cancel()
	}()
	if _, err := s.Submit(ctx, Request{Problem: p, MaxSteps: 100000}); !errors.Is(err, ErrCancelled) {
		t.Fatalf("probe request err %v, want ErrCancelled", err)
	}
	// Give the cancelled ladder goroutine time to settle its observation.
	time.Sleep(200 * time.Millisecond)
	c := s.Snapshot()
	if c.BreakerProbes != 1 {
		t.Fatalf("counters %+v, want exactly 1 probe so far", c)
	}
	if c.BreakerRecoveries != 0 {
		t.Fatalf("cancelled probe closed the breaker: %+v", c)
	}

	// The slot was released without a verdict: the next request probes
	// again, runs clean (faults exhausted), and closes the breaker.
	resp, err := s.Submit(context.Background(), Request{Problem: p, MaxSteps: 100000})
	if err != nil {
		t.Fatalf("recovery request: %v", err)
	}
	if resp.Winner != telamalloc.StageSearch {
		t.Fatalf("recovery winner %s, want search re-admitted", resp.Winner)
	}
	c = s.Snapshot()
	if c.BreakerProbes != 2 || c.BreakerRecoveries != 1 {
		t.Fatalf("counters %+v, want a second probe and exactly 1 recovery", c)
	}
}

// soakShapes builds structurally distinct solvable problems, so every
// cold/warm byte comparison is within one fingerprint (near-miss hint
// replay across capacities is legitimate but not byte-pinned).
func soakShapes(t *testing.T) []Problem {
	t.Helper()
	ps := []Problem{easyProblem(), tightProblem(t)}
	for i := 2; i < 6; i++ {
		q := fromInternal(workload.NonOverlapping(6+i, int64(i)))
		q.Memory *= 2
		ps = append(ps, q)
	}
	return ps
}

// TestCacheSoak is the reuse layer's -race acceptance soak: concurrent
// clients replaying a fixed workload against a hedged server. Every solved
// response — cold, hedged, cached, deduped, hint-replayed — must be
// byte-identical to the cold reference, and the cache/dedup counters must
// balance with the terminal-outcome ledger after drain.
func TestCacheSoak(t *testing.T) {
	problems := soakShapes(t)

	// Cold references from a reuse-free, hedge-free server.
	reference := make([]*Response, len(problems))
	cold := New(Config{Workers: 1, MaxSteps: 200000, CacheSize: -1, DisableDedup: true})
	for i, p := range problems {
		resp, err := cold.Submit(context.Background(), Request{Problem: p})
		if err != nil {
			t.Fatalf("cold reference %d: %v", i, err)
		}
		reference[i] = resp
	}
	mustDrain(t, cold)

	s := New(Config{
		Workers:    4,
		QueueDepth: 64,
		MaxSteps:   200000,
		Hedge:      true,
		CacheSize:  4, // smaller than the distinct-problem count: evictions happen too
	})
	const clients = 8
	const perClient = 15
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				k := (c + i) % len(problems)
				resp, err := s.Submit(context.Background(), Request{Problem: problems[k]})
				if err != nil {
					t.Errorf("client %d iter %d: %v", c, i, err)
					continue
				}
				if !bytes.Equal(resp.CanonicalJSON(), reference[k].CanonicalJSON()) {
					t.Errorf("client %d iter %d: response bytes differ from the cold solve\n cold %s\n got  %s (cacheHit=%v deduped=%v hintReplayed=%v)",
						c, i, reference[k].CanonicalJSON(), resp.CanonicalJSON(), resp.CacheHit, resp.Deduped, resp.HintReplayed)
				}
			}
		}(c)
	}
	wg.Wait()
	mustDrain(t, s)

	c := s.Snapshot()
	if c.Submitted != clients*perClient {
		t.Fatalf("submitted %d, want %d", c.Submitted, clients*perClient)
	}
	accounted := c.Shed + c.RejectedDraining + c.Cancelled + c.Solved + c.Degraded + c.Failed
	if accounted != c.Submitted {
		t.Fatalf("counter ledger unbalanced: %+v (accounted %d of %d)", c, accounted, c.Submitted)
	}
	// Every submission performed exactly one cache lookup (none were shed
	// before reaching the reuse layer in this workload).
	if c.CacheHits+c.CacheMisses != c.Submitted {
		t.Fatalf("cache lookups %d+%d don't cover %d submissions: %+v", c.CacheHits, c.CacheMisses, c.Submitted, c)
	}
	if c.CacheInsertions-c.CacheEvictions != int64(c.CacheLen) {
		t.Fatalf("cache ledger unbalanced: %+v", c)
	}
	if c.CacheHits == 0 {
		t.Errorf("a repeated workload produced zero cache hits: %+v", c)
	}
	if c.Admitted >= c.Submitted {
		t.Errorf("reuse layer never skipped the queue: admitted %d of %d", c.Admitted, c.Submitted)
	}
	if c.DedupShared > c.Solved {
		t.Errorf("counters %+v: more shared responses than solved ones", c)
	}
}
