package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"telamalloc"
)

// Outcome is the terminal verdict of a request that reached the pipeline.
// Requests that never reach it terminate through Submit's error instead:
// shed (ErrOverloaded), rejected while draining (ErrDraining), or cancelled
// (ErrCancelled). Every submitted request gets exactly one of these seven
// terminal outcomes.
type Outcome string

const (
	// OutcomeSolved is a full packing within the memory limit.
	OutcomeSolved Outcome = "solved"
	// OutcomeDegraded is a served-but-spilled packing: some buffers were
	// evicted off-chip (offset -1) so the rest fits.
	OutcomeDegraded Outcome = "degraded"
	// OutcomeFailed means the pipeline ran to a structured failure; the
	// Response carries the lower-bound evidence and Submit's error wraps
	// the pipeline sentinel.
	OutcomeFailed Outcome = "failed"
)

// Errors returned by Submit for requests that never reach a pipeline
// verdict.
var (
	// ErrOverloaded is wrapped by the *OverloadError Submit returns when
	// admission control sheds the request.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrDraining rejects requests submitted after Drain/Close began.
	ErrDraining = errors.New("server: draining, not admitting requests")
	// ErrCancelled reports that the caller's context ended before the
	// request reached a verdict; any in-flight work was cancelled.
	ErrCancelled = errors.New("server: request cancelled")
	// ErrDrainTimeout is returned by Drain when in-flight work had to be
	// force-cancelled because the drain deadline expired.
	ErrDrainTimeout = errors.New("server: drain deadline exceeded, in-flight work cancelled")
	// ErrWatchdog is wrapped by the error Submit returns when the solve
	// watchdog force-cancelled the request for running past the configured
	// multiple of its budget (Config.Watchdog). The Response, when present,
	// carries OutcomeFailed. Deliberately distinct from ErrCancelled: the
	// caller did nothing; the solve wedged.
	ErrWatchdog = errors.New("server: solve watchdog killed request")
	// ErrExpiredInQueue is wrapped by the error Submit returns (alongside
	// telamalloc.ErrBudget) when a request's wall budget ran out while it
	// was still queued — at dequeue, or during an eager eviction sweep.
	// No solver step was spent on it. The Response carries OutcomeFailed.
	// Not retryable as-is: the same budget pushed through the same
	// congestion expires again; raise the budget or back off.
	ErrExpiredInQueue = errors.New("server: deadline exceeded in queue")
	// ErrBadPriority rejects a request whose Priority names no known
	// admission class. Typos are surfaced, never silently downgraded.
	ErrBadPriority = errors.New("server: unknown priority class")
)

// OverloadError is the typed load-shed error: the queue was full (or
// admission was starved by a fault), and RetryAfter estimates when capacity
// will free up — queue depth × observed request latency / workers.
type OverloadError struct {
	// QueueDepth is the queue occupancy at shed time.
	QueueDepth int
	// RetryAfter is the backoff hint. It is a floor, not a guarantee —
	// and crucially it is the SAME floor for every caller shed in the
	// same congestion episode, because it is priced from shared state
	// (queue depth × EWMA latency). A client that sleeps exactly
	// RetryAfter therefore retries in lockstep with every other shed
	// client and the herd re-arrives together, re-overloading the queue
	// it was shed from. Clients MUST add their own randomness on top:
	// wait RetryAfter plus a full-jitter term (uniform in [0, backoff)),
	// never RetryAfter alone. internal/client implements this contract
	// and tests that a fleet shed with one floor spreads its retries.
	RetryAfter time.Duration
	// Class is the admission class the shed request carried. QueueDepth
	// is class-aware: the work queued at or above Class's priority — what
	// the request would actually have waited behind — not total queue
	// occupancy.
	Class Priority
	// Tenant is the request's tenant label when the shed was a per-tenant
	// decision ("" for global sheds).
	Tenant string
	// Reason says why the request was shed: ShedQueueFull,
	// ShedTenantRate, or ShedTenantShare ("" from servers predating
	// overload control; treat as ShedQueueFull).
	Reason string
}

func (e *OverloadError) Error() string {
	msg := fmt.Sprintf("server: overloaded (queue depth %d), retry after %v", e.QueueDepth, e.RetryAfter)
	if e.Tenant != "" {
		msg += fmt.Sprintf(" (tenant %q: %s)", e.Tenant, e.Reason)
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrOverloaded) work.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Request is one allocation request submitted to the server.
type Request struct {
	// Problem is the allocation problem, in the public schema.
	Problem Problem
	// MaxSteps overrides the server's per-request step pot when > 0.
	MaxSteps int64
	// Timeout overrides the server's per-request wall budget when > 0 and
	// smaller. The budget is measured from Submit — queue wait spends it —
	// so tail latency stays bounded under load.
	Timeout time.Duration
	// Hint optionally supplies a decision trace from a previous response
	// (Response.Trace) to warm-start the solve. When nil the server fills
	// it from its own cache on a shape near-miss. Hints are advisory: every
	// replayed packing is re-validated before being served.
	Hint *telamalloc.DecisionTrace
	// TraceID labels this request's spans in the lifecycle trace stream
	// (Config.Tracer). Empty is fine — spans are still emitted, they are
	// just not attributable to one request.
	TraceID string
	// Priority selects the admission class (DESIGN.md §14): interactive
	// dequeues first and is never shed by lower-class floods; background
	// degrades first under brownout. Empty means PriorityBatch. Unknown
	// values are rejected with ErrBadPriority.
	Priority Priority
	// Tenant attributes the request to a fairness domain for per-tenant
	// token buckets and in-flight shares (Config.Tenant). Empty bypasses
	// tenant accounting.
	Tenant string
}

// Response is the structured per-request report.
type Response struct {
	// Outcome is the terminal verdict.
	Outcome Outcome
	// Winner is the pipeline stage that produced the packing ("" on
	// failure). Hedge wins report the heuristic's stage name — the same
	// name the full ladder would have reported, which is what keeps
	// results byte-identical with hedging on and off.
	Winner string
	// Offsets is the packing (spilled buffers carry -1). Nil on failure.
	Offsets []int64
	// Spilled lists evicted buffer indices for degraded outcomes.
	Spilled []int
	// SpillCost is the summed weight of evicted buffers.
	SpillCost int64
	// LowerBound and Memory carry the feasibility evidence: LowerBound >
	// Memory proves no full packing exists.
	LowerBound int64
	Memory     int64
	// SkippedByBreaker lists stages the per-stage circuit breaker removed
	// from this request's ladder.
	SkippedByBreaker []string
	// Err is the terminal error string for OutcomeFailed ("" otherwise).
	Err string

	// HedgeWon reports that the hedge delivered this response before the
	// full ladder. Timing-dependent, hence excluded from CanonicalJSON.
	HedgeWon bool
	// QueueWait is time spent queued before a worker picked the request up.
	QueueWait time.Duration
	// Elapsed is service time (dequeue to verdict), excluding queue wait.
	Elapsed time.Duration
	// CacheHit reports the response was served from the solution cache
	// without running the pipeline. Deduped reports it was shared from a
	// concurrent identical request's solve. HintReplayed reports the
	// pipeline short-circuited by replaying a decision trace. All three are
	// load- and scheduling-dependent, hence excluded from CanonicalJSON —
	// the offsets they annotate are byte-identical to a cold solve's.
	CacheHit     bool
	Deduped      bool
	HintReplayed bool
	// Trace is the replayable record of a full (non-degraded) packing; feed
	// it back through Request.Hint to warm-start a repeat. Excluded from
	// CanonicalJSON (it is derived data, not part of the verdict).
	Trace *telamalloc.DecisionTrace
	// DegradedByBrownout marks a verdict produced while the brownout
	// controller had this request's ladder degraded — its step pot was
	// shrunk or its search stage dropped. The packing is still valid; the
	// marker says it was bought at reduced quality. Load-dependent, hence
	// excluded from CanonicalJSON (and never set when the controller is
	// idle, which is what keeps no-overload responses byte-identical).
	DegradedByBrownout bool
}

// canonicalResponse is the deterministic subset of Response: everything a
// caller can act on, nothing that depends on timing or scheduling.
type canonicalResponse struct {
	Outcome          Outcome  `json:"outcome"`
	Winner           string   `json:"winner,omitempty"`
	Offsets          []int64  `json:"offsets,omitempty"`
	Spilled          []int    `json:"spilled,omitempty"`
	SpillCost        int64    `json:"spill_cost,omitempty"`
	LowerBound       int64    `json:"lower_bound"`
	Memory           int64    `json:"memory"`
	SkippedByBreaker []string `json:"skipped_by_breaker,omitempty"`
	Err              string   `json:"error,omitempty"`
}

// ResponseFrom maps a pipeline result to the response the server would
// serve for it, with no breaker bookkeeping (a direct run skips no stages).
// It exists for differential harnesses: run the same problem through a bare
// Allocator and through a served fleet, then compare CanonicalJSON
// byte-for-byte.
func ResponseFrom(res telamalloc.PipelineResult, perr error) *Response {
	return responseFrom(res, perr, nil)
}

// CanonicalJSON serialises the scheduling-invariant part of the response.
// For a fixed request against a fresh server, these bytes are identical
// with hedging on and off, at every parallelism level — the determinism
// contract the soak suite asserts.
func (r *Response) CanonicalJSON() []byte {
	b, err := json.Marshal(canonicalResponse{
		Outcome:          r.Outcome,
		Winner:           r.Winner,
		Offsets:          r.Offsets,
		Spilled:          r.Spilled,
		SpillCost:        r.SpillCost,
		LowerBound:       r.LowerBound,
		Memory:           r.Memory,
		SkippedByBreaker: r.SkippedByBreaker,
		Err:              r.Err,
	})
	if err != nil {
		// Unreachable: the struct is marshal-safe by construction.
		panic(err)
	}
	return b
}
