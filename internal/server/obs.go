package server

import (
	"errors"
	"time"

	"telamalloc"
	"telamalloc/internal/obs"
)

// Server metric names (the naming contract is recorded in DESIGN.md §11).
//
// Every ledger-backed series is func-backed: the scrape reads the same
// atomics Snapshot does, at scrape time, so /metrics and the Counters
// ledger can never disagree — there is one source of truth, exposed two
// ways. When several servers share one registry, the last server bound owns
// the func-backed series (obs last-registration-wins); give each server its
// own registry via Config.Obs when per-server numbers matter. The two
// latency histograms are registry-shared state: with several servers on one
// registry they aggregate across servers.
const (
	metricQueueDepth    = "telamalloc_server_queue_depth"
	metricQueueWait     = "telamalloc_server_queue_wait_seconds"
	metricService       = "telamalloc_server_service_seconds"
	metricSubmitted     = "telamalloc_server_submitted_total"
	metricAdmitted      = "telamalloc_server_admitted_total"
	metricOutcomes      = "telamalloc_server_outcomes_total"
	metricHedgeWins     = "telamalloc_server_hedge_wins_total"
	metricBreakerEvents = "telamalloc_server_breaker_events_total"
	metricPanics        = "telamalloc_server_contained_panics_total"
	metricForceCancel   = "telamalloc_server_force_cancelled_total"
	metricDedupShared   = "telamalloc_server_dedup_shared_total"
	metricHintReplays   = "telamalloc_server_hint_replays_total"
	metricCacheEvents   = "telamalloc_server_cache_events_total"
	metricCacheEntries  = "telamalloc_server_cache_entries"

	metricWatchdogScans   = "telamalloc_watchdog_scans_total"
	metricWatchdogKills   = "telamalloc_watchdog_kills_total"
	metricWatchdogActive  = "telamalloc_watchdog_active_jobs"
	metricWatchdogOverrun = "telamalloc_watchdog_overrun_seconds"

	metricClassDepth = "telamalloc_server_class_queue_depth"
	metricExpired    = "telamalloc_server_expired_in_queue_total"
	metricTenantShed = "telamalloc_server_tenant_shed_total"

	metricBrownoutLevel       = "telamalloc_brownout_level"
	metricBrownoutTransitions = "telamalloc_brownout_transitions_total"
	metricBrownoutDegraded    = "telamalloc_brownout_degraded_total"
)

// serverMetrics holds the stateful series the serve path observes into;
// everything else is func-backed and needs no handle.
type serverMetrics struct {
	queueWait       *obs.Histogram
	service         *obs.Histogram
	watchdogOverrun *obs.Histogram
}

// registry resolves the server's metrics registry (nil → process-global).
func (s *Server) registry() *obs.Registry {
	if s.cfg.Obs != nil {
		return s.cfg.Obs
	}
	return obs.Default()
}

// bindMetrics registers the server's series. Called once from New, after
// the queue and cache exist, so every closure captures fully-built state.
func (s *Server) bindMetrics() {
	r := s.registry()
	s.metrics = &serverMetrics{
		queueWait:       r.Histogram(metricQueueWait, "time requests spent queued before a worker dequeued them"),
		service:         r.Histogram(metricService, "worker service time per dequeued request"),
		watchdogOverrun: r.Histogram(metricWatchdogOverrun, "how far past their watchdog deadline killed jobs had run"),
	}
	r.GaugeFunc(metricQueueDepth, "current admission queue occupancy",
		func() int64 { return int64(s.queue.len()) })
	for c := 0; c < numClasses; c++ {
		c := c
		r.GaugeFunc(metricClassDepth, "current queue occupancy per admission class",
			func() int64 { return int64(s.queue.lenClass(c)) },
			obs.Label{Key: "class", Value: string(classOrder[c])})
	}

	c := &s.counters
	r.CounterFunc(metricSubmitted, "Submit calls", c.submitted.Load)
	r.CounterFunc(metricAdmitted, "requests that entered the queue", c.admitted.Load)
	for _, o := range []struct {
		label string
		fn    func() int64
	}{
		{"solved", c.solved.Load},
		{"degraded", c.degraded.Load},
		{"failed", c.failed.Load},
		{"cancelled", c.cancelled.Load},
		{"shed", c.shed.Load},
		{"rejected_draining", c.rejectedDraining.Load},
	} {
		r.CounterFunc(metricOutcomes, "terminal request outcomes", o.fn,
			obs.Label{Key: "outcome", Value: o.label})
	}
	r.CounterFunc(metricHedgeWins, "responses delivered by the hedge before the ladder", c.hedgeWins.Load)
	for _, e := range []struct {
		label string
		fn    func() int64
	}{
		{"trip", c.breakerTrips.Load},
		{"probe", c.breakerProbes.Load},
		{"recover", c.breakerRecovered.Load},
	} {
		r.CounterFunc(metricBreakerEvents, "circuit breaker state transitions", e.fn,
			obs.Label{Key: "event", Value: e.label})
	}
	r.CounterFunc(metricPanics, "panics contained at a server boundary", c.containedPanics.Load)
	r.CounterFunc(metricForceCancel, "in-flight requests force-cancelled by an expired drain", c.forceCancelled.Load)
	r.CounterFunc(metricDedupShared, "responses shared from a concurrent identical solve", c.dedupShared.Load)
	r.CounterFunc(metricHintReplays, "pipeline runs settled by replaying a decision trace", c.hintReplays.Load)
	r.CounterFunc(metricWatchdogScans, "solve-watchdog passes over the active-job registry", c.watchdogScans.Load)
	r.CounterFunc(metricWatchdogKills, "jobs force-cancelled for overrunning the watchdog budget multiple", c.watchdogKills.Load)
	r.GaugeFunc(metricWatchdogActive, "jobs currently watched by the solve watchdog", s.watchdogActive)

	for _, e := range []struct {
		label string
		fn    func() int64
	}{
		{"dequeue", c.expiredDequeued.Load},
		{"evict", c.expiredEvicted.Load},
	} {
		r.CounterFunc(metricExpired, "requests whose budget expired while queued, by detection point", e.fn,
			obs.Label{Key: "point", Value: e.label})
	}
	r.CounterFunc(metricTenantShed, "requests shed by per-tenant limits", c.tenantShed.Load)

	r.GaugeFunc(metricBrownoutLevel, "current brownout ladder level (0 = full service)",
		func() int64 { return int64(s.brown.currentLevel()) })
	for _, e := range []struct {
		label string
		fn    func() int64
	}{
		{"degrade", c.brownoutDegrades.Load},
		{"recover", c.brownoutRecovers.Load},
	} {
		r.CounterFunc(metricBrownoutTransitions, "brownout ladder level transitions", e.fn,
			obs.Label{Key: "direction", Value: e.label})
	}
	r.CounterFunc(metricBrownoutDegraded, "responses delivered with the degraded-by-brownout marker", c.brownoutMarked.Load)

	for _, e := range []struct {
		label string
		fn    func(c Counters) int64
	}{
		{"hit", func(c Counters) int64 { return c.CacheHits }},
		{"miss", func(c Counters) int64 { return c.CacheMisses }},
		{"near_hit", func(c Counters) int64 { return c.CacheNearHits }},
		{"insert", func(c Counters) int64 { return c.CacheInsertions }},
		{"evict", func(c Counters) int64 { return c.CacheEvictions }},
	} {
		fn := e.fn
		r.CounterFunc(metricCacheEvents, "solution cache events", func() int64 {
			if s.cache == nil {
				return 0
			}
			return fn(s.Snapshot())
		}, obs.Label{Key: "event", Value: e.label})
	}
	r.GaugeFunc(metricCacheEntries, "solution cache entries", func() int64 {
		if s.cache == nil {
			return 0
		}
		return int64(s.cache.Counters().Len)
	})
}

// traceEvent emits one retroactive lifecycle span (admit, cache, dedup,
// queue, settle). Nil-safe: no tracer, no work.
func (s *Server) traceEvent(traceID, span string, start time.Time, dur time.Duration, attrs map[string]any) {
	s.cfg.Tracer.Emit(traceID, span, start, dur, attrs)
}

// traceStages emits one retroactive span per pipeline stage report,
// reconstructing start times by walking the reports backwards from now —
// the reports carry exact durations but not absolute starts, so the
// timeline is positionally approximate (gaps between stages are attributed
// to the stage before them) while every duration is exact.
func (s *Server) traceStages(traceID string, res telamalloc.PipelineResult) {
	tr := s.cfg.Tracer
	if tr == nil || len(res.Stages) == 0 {
		return
	}
	end := time.Now()
	for i := len(res.Stages) - 1; i >= 0; i-- {
		rep := res.Stages[i]
		attrs := make(map[string]any, 4)
		switch {
		case rep.Skipped:
			attrs["outcome"] = "skipped"
			attrs["reason"] = rep.SkipReason
		case rep.Err != nil:
			attrs["outcome"] = "failed"
			attrs["error"] = rep.Err.Error()
		default:
			attrs["outcome"] = "won"
		}
		if rep.Stats.Steps > 0 {
			attrs["steps"] = rep.Stats.Steps
			attrs["backtracks"] = rep.Stats.MinorBacktracks + rep.Stats.MajorBacktracks
		}
		if rep.StepBudget > 0 {
			attrs["step_budget"] = rep.StepBudget
		}
		start := end.Add(-rep.Elapsed)
		tr.Emit(traceID, "stage:"+rep.Stage, start, rep.Elapsed, attrs)
		end = start
	}
}

// submitOutcome labels the root request span's terminal outcome.
func submitOutcome(resp *Response, err error) string {
	if resp != nil {
		return string(resp.Outcome)
	}
	if err == nil {
		return string(OutcomeSolved)
	}
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		return "shed"
	case errors.Is(err, ErrDraining):
		return "rejected_draining"
	case errors.Is(err, ErrCancelled):
		return "cancelled"
	}
	return "failed"
}
