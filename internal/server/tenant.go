package server

import (
	"math"
	"sync"
	"time"
)

// Shed reasons carried by OverloadError.Reason, so a shed caller (and the
// daemon mapping sheds to wire codes) can tell "the queue is full" from
// "your tenant is over quota" without parsing prose.
const (
	// ShedQueueFull is the classic admission shed: the request's class
	// lane is at its bound (or admission was starved by a fault).
	ShedQueueFull = "queue_full"
	// ShedTenantRate means the request's tenant exhausted its token
	// bucket (TenantConfig.RPS/Burst).
	ShedTenantRate = "tenant_rate"
	// ShedTenantShare means the request's tenant holds its maximum
	// in-flight share (TenantConfig.MaxShare) of server capacity.
	ShedTenantShare = "tenant_share"
)

// TenantConfig tunes per-tenant fair shedding. The zero value disables it.
// Limits apply only to requests that carry a tenant label; unlabelled
// traffic is never throttled here (isolation is opt-in per request — the
// alternative, lumping all anonymous traffic into one throttled pseudo-
// tenant, would punish exactly the callers that never asked for fairness).
type TenantConfig struct {
	// RPS is each tenant's sustained admission rate in requests/second
	// (token-bucket refill). 0 disables rate limiting.
	RPS float64
	// Burst is each tenant's token-bucket capacity — how far above RPS a
	// tenant may spike. Defaults to ceil(RPS), minimum 1.
	Burst int
	// MaxShare caps one tenant's in-flight requests (queued + being
	// solved) as a fraction of server capacity (queue bounds + workers).
	// 0 or anything ≥ 1 disables the share cap.
	MaxShare float64
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Burst <= 0 && c.RPS > 0 {
		c.Burst = int(math.Ceil(c.RPS))
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// enabled reports whether any tenant limit is configured.
func (c TenantConfig) enabled() bool {
	return c.RPS > 0 || (c.MaxShare > 0 && c.MaxShare < 1)
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	tokens   float64 // current token-bucket level
	refilled time.Time
	inflight int // admitted, not yet settled/evicted
	lastSeen time.Time
}

// tenantGCThreshold bounds the table: past this many tenants, admit sweeps
// out entries idle for tenantGCIdle with nothing in flight. A tenant that
// returns after a sweep simply starts from a full bucket — forgetting an
// idle tenant's debt is safe; forgetting its credit is the point.
const (
	tenantGCThreshold = 4096
	tenantGCIdle      = time.Minute
)

// tenantTable holds per-tenant token buckets and in-flight counts. All
// methods are safe for concurrent use.
type tenantTable struct {
	cfg         TenantConfig
	maxInflight int // 0 = share cap disabled

	mu     sync.Mutex
	states map[string]*tenantState
}

// newTenantTable builds the table. capacity is the server's total
// concurrent occupancy (sum of class queue bounds + workers), the base the
// MaxShare fraction is taken of.
func newTenantTable(cfg TenantConfig, capacity int) *tenantTable {
	t := &tenantTable{cfg: cfg.withDefaults(), states: make(map[string]*tenantState)}
	if cfg.MaxShare > 0 && cfg.MaxShare < 1 {
		t.maxInflight = int(math.Ceil(cfg.MaxShare * float64(capacity)))
		if t.maxInflight < 1 {
			t.maxInflight = 1
		}
	}
	return t
}

// admit charges one request against the tenant's bucket and share. On
// success it returns a release func (idempotent) that must be called when
// the request settles, is evicted, or fails to enqueue. On denial it
// returns the shed reason and, for rate denials, how long until the bucket
// refills one token — the tenant-specific retry-after floor. starve forces
// a rate denial (the server:tenant fault lever).
func (t *tenantTable) admit(tenant string, now time.Time, starve bool) (release func(), reason string, rateWait time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.states[tenant]
	if !ok {
		if len(t.states) >= tenantGCThreshold {
			t.gcLocked(now)
		}
		st = &tenantState{tokens: float64(t.cfg.Burst), refilled: now}
		t.states[tenant] = st
	}
	st.lastSeen = now
	if t.cfg.RPS > 0 {
		elapsed := now.Sub(st.refilled).Seconds()
		if elapsed > 0 {
			st.tokens = math.Min(float64(t.cfg.Burst), st.tokens+elapsed*t.cfg.RPS)
			st.refilled = now
		}
		if starve || st.tokens < 1 {
			need := 1 - st.tokens
			if need < 0 || starve {
				need = 1
			}
			return nil, ShedTenantRate, time.Duration(need / t.cfg.RPS * float64(time.Second))
		}
	} else if starve {
		return nil, ShedTenantRate, 0
	}
	if t.maxInflight > 0 && st.inflight >= t.maxInflight {
		return nil, ShedTenantShare, 0
	}
	if t.cfg.RPS > 0 {
		st.tokens--
	}
	st.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			st.inflight--
			t.mu.Unlock()
		})
	}, "", 0
}

// gcLocked drops tenants idle past tenantGCIdle with nothing in flight.
// Called with t.mu held.
func (t *tenantTable) gcLocked(now time.Time) {
	for name, st := range t.states {
		if st.inflight == 0 && now.Sub(st.lastSeen) > tenantGCIdle {
			delete(t.states, name)
		}
	}
}

// inflight reports one tenant's current in-flight count (diagnostic).
func (t *tenantTable) inflight(tenant string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.states[tenant]; ok {
		return st.inflight
	}
	return 0
}
