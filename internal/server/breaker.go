package server

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-stage circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive qualifying failures that
	// opens a stage's breaker (default 3; negative disables breakers).
	Threshold int
	// Cooldown is how long an open breaker skips its stage before
	// admitting a half-open probe (default 5s).
	Cooldown time.Duration
	// SlowStage, when > 0, additionally counts a stage as failed when it
	// returned a budget verdict after at least this much wall time — the
	// "stage times out" trip condition. Zero counts only ErrInternal,
	// because budget exhaustion alone is the pipeline's normal escalation
	// path on hard instances, not a sign the stage is broken.
	SlowStage time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// breaker isolates one pipeline stage. Closed admits the stage and counts
// consecutive qualifying failures; at Threshold it opens. Open skips the
// stage until Cooldown elapses, then admits exactly one in-flight probe
// (half-open). A probe that runs cleanly closes the breaker; one that fails
// re-opens it for another cooldown. A probe whose request never actually
// reached the stage (an earlier stage won, or the problem was provably
// infeasible) releases the probe slot without a verdict, so the next
// request probes again.
type breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreaker(cfg BreakerConfig) *breaker { return &breaker{cfg: cfg} }

// decision records what admit granted, so observe can settle it.
type decision struct {
	include bool
	probe   bool
}

// admit decides whether the stage joins this request's ladder.
func (b *breaker) admit(now time.Time) decision {
	if b.cfg.Threshold < 0 {
		return decision{include: true}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return decision{include: true}
	case stateOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return decision{}
		}
		b.state = stateHalfOpen
		b.probing = true
		return decision{include: true, probe: true}
	default: // stateHalfOpen
		if b.probing {
			return decision{}
		}
		b.probing = true
		return decision{include: true, probe: true}
	}
}

// observe settles a request's verdict for this stage. ran reports whether
// the stage actually executed (not skipped by the pipeline); failed whether
// its outcome qualifies as a breaker failure. It returns which transitions
// happened so the server can count trips and recoveries.
func (b *breaker) observe(d decision, ran, failed bool, now time.Time) (tripped, recovered bool) {
	if b.cfg.Threshold < 0 || !d.include {
		return false, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if d.probe {
		b.probing = false
	}
	if !ran {
		// No signal: the ladder never reached the stage. A probe slot was
		// already released above; state is unchanged.
		return false, false
	}
	if failed {
		if d.probe || b.state == stateHalfOpen {
			b.state = stateOpen
			b.openedAt = now
			b.fails = 0
			return false, false
		}
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.state = stateOpen
			b.openedAt = now
			b.fails = 0
			return true, false
		}
		return false, false
	}
	// Clean run: a probe (or any run observed in half-open) closes the
	// breaker; in closed state it resets the consecutive-failure count.
	if d.probe || b.state == stateHalfOpen {
		b.state = stateClosed
		b.fails = 0
		return false, true
	}
	b.fails = 0
	return false, false
}
