package server

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"telamalloc"
	"telamalloc/internal/buffers"
	"telamalloc/internal/faultinject"
	"telamalloc/internal/workload"
)

// fromInternal converts a generated workload to the public problem type.
func fromInternal(q *buffers.Problem) Problem {
	p := Problem{Memory: q.Memory, Name: q.Name}
	for _, b := range q.Buffers {
		p.Buffers = append(p.Buffers, telamalloc.Buffer{Start: b.Start, End: b.End, Size: b.Size, Align: b.Align})
	}
	return p
}

// easyProblem is solvable by the greedy heuristic.
func easyProblem() Problem {
	p := fromInternal(workload.NonOverlapping(12, 1))
	p.Memory *= 2
	return p
}

// tightProblem defeats both heuristics but the search solves it.
func tightProblem(t *testing.T) Problem {
	t.Helper()
	p := fromInternal(workload.MultiComponent(4, 15, 105, 1))
	if _, err := telamalloc.AllocateGreedy(p); err == nil {
		t.Fatal("fixture drifted: greedy solves the tight problem")
	}
	if _, err := telamalloc.AllocateBestFit(p); err == nil {
		t.Fatal("fixture drifted: best-fit solves the tight problem")
	}
	return p
}

// infeasibleProblem is provably unsatisfiable, so the pipeline degrades.
func infeasibleProblem() Problem {
	return Problem{
		Memory: 4,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
	}
}

// invalidProblem fails validation (zero memory with buffers).
func invalidProblem() Problem {
	return Problem{Memory: 0, Buffers: []telamalloc.Buffer{{Start: 0, End: 1, Size: 1}}}
}

func mustDrain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSubmitSolvesEasy(t *testing.T) {
	s := New(Config{Workers: 2})
	defer mustDrain(t, s)
	p := easyProblem()
	resp, err := s.Submit(context.Background(), Request{Problem: p})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.Outcome != OutcomeSolved || resp.Winner != telamalloc.StageGreedy {
		t.Fatalf("outcome %s winner %s, want solved by greedy", resp.Outcome, resp.Winner)
	}
	sol := telamalloc.Solution{Offsets: resp.Offsets}
	if verr := sol.Validate(p); verr != nil {
		t.Fatalf("invalid packing: %v", verr)
	}
	if c := s.Snapshot(); c.Solved != 1 || c.Admitted != 1 {
		t.Errorf("counters %+v, want 1 solved / 1 admitted", c)
	}
}

func TestSubmitDegradesInfeasible(t *testing.T) {
	s := New(Config{Workers: 1})
	defer mustDrain(t, s)
	resp, err := s.Submit(context.Background(), Request{Problem: infeasibleProblem()})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.Outcome != OutcomeDegraded || len(resp.Spilled) != 1 {
		t.Fatalf("outcome %s spilled %v, want degraded with one eviction", resp.Outcome, resp.Spilled)
	}
	if resp.LowerBound != 8 || resp.Memory != 4 {
		t.Errorf("evidence lb=%d mem=%d, want 8 > 4", resp.LowerBound, resp.Memory)
	}
}

func TestSubmitFailsInvalidProblem(t *testing.T) {
	s := New(Config{Workers: 1})
	defer mustDrain(t, s)
	resp, err := s.Submit(context.Background(), Request{Problem: invalidProblem()})
	if !errors.Is(err, telamalloc.ErrInvalidProblem) {
		t.Fatalf("err %v, want ErrInvalidProblem", err)
	}
	if resp == nil || resp.Outcome != OutcomeFailed || resp.Err == "" {
		t.Fatalf("resp %+v, want a structured failed response", resp)
	}
	if c := s.Snapshot(); c.Failed != 1 {
		t.Errorf("counters %+v, want 1 failed", c)
	}
}

// TestSubmitShedsWhenFull: with one worker parked at the dequeue fault point
// and the queue at capacity, further submissions are shed immediately with a
// typed overload error carrying a positive retry-after hint.
func TestSubmitShedsWhenFull(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{
		Workers:    1,
		QueueDepth: 2,
		// The flood is intentionally identical requests; dedup would
		// collapse it to one queued solve and no shedding. This test is
		// about admission control, so dedup is off.
		DisableDedup: true,
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				<-gate
			}
			return false
		},
	})
	p := easyProblem()
	const clients = 30
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sheds []*OverloadError
	served := 0
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{Problem: p})
			mu.Lock()
			defer mu.Unlock()
			var ov *OverloadError
			switch {
			case errors.As(err, &ov):
				if !errors.Is(err, ErrOverloaded) {
					t.Error("OverloadError must unwrap ErrOverloaded")
				}
				sheds = append(sheds, ov)
			case err == nil && resp != nil:
				served++
			default:
				t.Errorf("unexpected outcome resp=%v err=%v", resp, err)
			}
		}()
	}
	// Give the submitters time to hit admission; the shed path must not
	// depend on the worker making progress.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()
	mustDrain(t, s)

	// At most 1 in the blocked worker + 2 queued are admitted; the rest shed.
	if served > 3 || served == 0 {
		t.Errorf("served %d, want 1..3 with a 2-deep queue and a parked worker", served)
	}
	if len(sheds) != clients-served {
		t.Errorf("sheds %d + served %d != %d clients", len(sheds), served, clients)
	}
	for _, ov := range sheds {
		if ov.RetryAfter < time.Millisecond {
			t.Errorf("retry-after %v below the 1ms floor", ov.RetryAfter)
		}
	}
	c := s.Snapshot()
	if c.Shed != int64(len(sheds)) || c.Admitted != int64(served) {
		t.Errorf("counters %+v disagree with observed shed=%d served=%d", c, len(sheds), served)
	}
}

func TestSubmitRejectedWhileDraining(t *testing.T) {
	s := New(Config{Workers: 1})
	mustDrain(t, s)
	if _, err := s.Submit(context.Background(), Request{Problem: easyProblem()}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err %v, want ErrDraining", err)
	}
	if c := s.Snapshot(); c.RejectedDraining != 1 {
		t.Errorf("counters %+v, want 1 rejected-draining", c)
	}
}

func TestSubmitCallerCancelled(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{
		Workers: 1,
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				<-gate
			}
			return false
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Request{Problem: easyProblem()})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, ErrCancelled) {
		t.Fatalf("err %v, want ErrCancelled", err)
	}
	close(gate)
	mustDrain(t, s)
	if c := s.Snapshot(); c.Cancelled != 1 {
		t.Errorf("counters %+v, want 1 cancelled", c)
	}
}

func TestAdmitHookPanicContained(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Point: faultinject.PointServerAdmit, After: 1, Kind: faultinject.Panic,
	})
	s := New(Config{Workers: 1, Hook: inj.Hook})
	defer mustDrain(t, s)
	resp, err := s.Submit(context.Background(), Request{Problem: easyProblem()})
	if !errors.Is(err, telamalloc.ErrInternal) || resp != nil {
		t.Fatalf("resp=%v err=%v, want contained ErrInternal", resp, err)
	}
	// The fault is one-shot; the service keeps serving.
	resp, err = s.Submit(context.Background(), Request{Problem: easyProblem()})
	if err != nil || resp.Outcome != OutcomeSolved {
		t.Fatalf("post-panic submit resp=%v err=%v, want solved", resp, err)
	}
	if c := s.Snapshot(); c.ContainedPanics != 1 {
		t.Errorf("counters %+v, want 1 contained panic", c)
	}
}

func TestAdmitStarveForcesShed(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Point: faultinject.PointServerAdmit, After: 1, Kind: faultinject.Starve,
	})
	s := New(Config{Workers: 1, Hook: inj.Hook})
	defer mustDrain(t, s)
	if _, err := s.Submit(context.Background(), Request{Problem: easyProblem()}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err %v, want forced shed", err)
	}
}

// TestDrainClean: a drain with a generous deadline finishes without
// force-cancelling anything.
func TestDrainClean(t *testing.T) {
	s := New(Config{Workers: 2})
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(context.Background(), Request{Problem: easyProblem()}); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if c := s.Snapshot(); c.ForceCancelled != 0 {
		t.Errorf("clean drain force-cancelled %d requests", c.ForceCancelled)
	}
}

// TestDrainForceCancelsInFlight: a stage stalled past the drain deadline is
// force-cancelled; Drain returns ErrDrainTimeout and still completes within
// the stall bound, not the request's own (unlimited) budget.
func TestDrainForceCancelsInFlight(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Point: "group0", After: 1, Kind: faultinject.Stall, StallFor: 300 * time.Millisecond,
	})
	s := New(Config{Workers: 1, Hook: inj.Hook})
	respCh := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{Problem: tightProblem(t), MaxSteps: 1 << 40})
		respCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the worker enter the stalled search
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	drainTime := time.Since(start)
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("drain err %v, want ErrDrainTimeout", err)
	}
	if drainTime > 2*time.Second {
		t.Fatalf("forced drain took %v, want bounded by stall + polling stride", drainTime)
	}
	if serr := <-respCh; !errors.Is(serr, ErrCancelled) {
		t.Errorf("in-flight request err %v, want ErrCancelled", serr)
	}
	if c := s.Snapshot(); c.ForceCancelled != 1 {
		t.Errorf("counters %+v, want 1 force-cancelled", c)
	}
}

// TestBreakerTripsSkipsAndRecovers is the acceptance scenario: a stage made
// to fail three times in a row is skipped for the cooldown window and
// re-admitted through a half-open probe that closes the breaker.
func TestBreakerTripsSkipsAndRecovers(t *testing.T) {
	p := tightProblem(t)
	inj := faultinject.New(
		faultinject.Fault{Point: faultinject.StageEntry(telamalloc.StageSearch), After: 1, Kind: faultinject.Panic},
		faultinject.Fault{Point: faultinject.StageEntry(telamalloc.StageSearch), After: 2, Kind: faultinject.Panic},
		faultinject.Fault{Point: faultinject.StageEntry(telamalloc.StageSearch), After: 3, Kind: faultinject.Panic},
	)
	var mu sync.Mutex
	searchEntries := 0
	s := New(Config{
		Workers: 1,
		Breaker: BreakerConfig{Threshold: 3, Cooldown: 150 * time.Millisecond},
		// Every submission repeats the same problem and must actually run
		// the ladder for the breaker to see the injected failures; a cache
		// hit would short-circuit the pipeline.
		CacheSize: -1,
		Hook: func(point string) bool {
			if point == faultinject.StageEntry(telamalloc.StageSearch) {
				mu.Lock()
				searchEntries++
				mu.Unlock()
			}
			return inj.Hook(point)
		},
	})
	defer mustDrain(t, s)
	submit := func() *Response {
		t.Helper()
		resp, err := s.Submit(context.Background(), Request{Problem: p, MaxSteps: 100000})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		return resp
	}

	// Three requests, three injected search-stage panics: the spill stage
	// recovers each (full packing, no eviction), and the third failure
	// trips the breaker.
	for i := 0; i < 3; i++ {
		resp := submit()
		if resp.Outcome != OutcomeSolved || resp.Winner != telamalloc.StageSpill {
			t.Fatalf("request %d: outcome %s winner %s, want spill-stage recovery", i, resp.Outcome, resp.Winner)
		}
		if len(resp.SkippedByBreaker) != 0 {
			t.Fatalf("request %d skipped %v before the trip", i, resp.SkippedByBreaker)
		}
	}
	if c := s.Snapshot(); c.BreakerTrips != 1 {
		t.Fatalf("counters %+v, want exactly 1 breaker trip", c)
	}

	// Inside the cooldown window the search stage is demonstrably skipped:
	// its entry point is never announced again.
	resp := submit()
	if len(resp.SkippedByBreaker) != 1 || resp.SkippedByBreaker[0] != telamalloc.StageSearch {
		t.Fatalf("skipped %v, want [search]", resp.SkippedByBreaker)
	}
	mu.Lock()
	entries := searchEntries
	mu.Unlock()
	if entries != 3 {
		t.Fatalf("search entered %d times, want 3 (skipped while open)", entries)
	}

	// After the cooldown a half-open probe re-admits the stage; the faults
	// are exhausted, the probe runs clean, and the breaker closes.
	time.Sleep(200 * time.Millisecond)
	resp = submit()
	if len(resp.SkippedByBreaker) != 0 {
		t.Fatalf("probe request skipped %v, want the stage re-admitted", resp.SkippedByBreaker)
	}
	if resp.Winner != telamalloc.StageSearch {
		t.Fatalf("probe winner %s, want search once the faults stop", resp.Winner)
	}
	c := s.Snapshot()
	if c.BreakerProbes < 1 || c.BreakerRecoveries != 1 {
		t.Fatalf("counters %+v, want >=1 probe and exactly 1 recovery", c)
	}
	// And the recovered stage keeps serving.
	if resp := submit(); resp.Winner != telamalloc.StageSearch {
		t.Fatalf("post-recovery winner %s, want search", resp.Winner)
	}
}

// TestHedgeDeterminism is the acceptance contract: for fixed requests the
// canonical response bytes are identical with hedging on and off, across
// repeats.
func TestHedgeDeterminism(t *testing.T) {
	problems := []Problem{easyProblem(), tightProblem(t), infeasibleProblem()}
	collect := func(hedge bool) [][]byte {
		s := New(Config{Workers: 2, Hedge: hedge})
		defer mustDrain(t, s)
		var out [][]byte
		for _, p := range problems {
			for rep := 0; rep < 3; rep++ {
				resp, err := s.Submit(context.Background(), Request{Problem: p, MaxSteps: 100000})
				if err != nil {
					t.Fatalf("hedge=%v: %v", hedge, err)
				}
				out = append(out, resp.CanonicalJSON())
			}
		}
		return out
	}
	off := collect(false)
	on := collect(true)
	for i := range off {
		if !bytes.Equal(off[i], on[i]) {
			t.Errorf("request %d differs:\n hedge off: %s\n hedge on:  %s", i, off[i], on[i])
		}
	}
}

// TestHedgeWinsOnEasyProblem: with the ladder parked at its entry point,
// the hedge serves the easy problem alone — first valid answer wins.
func TestHedgeWinsOnEasyProblem(t *testing.T) {
	stall := faultinject.New(faultinject.Fault{
		Point: faultinject.StageEntry(telamalloc.StageGreedy), After: 1,
		Kind: faultinject.Stall, StallFor: 200 * time.Millisecond,
	})
	s := New(Config{Workers: 1, Hedge: true, Hook: stall.Hook})
	p := easyProblem()
	start := time.Now()
	resp, err := s.Submit(context.Background(), Request{Problem: p})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !resp.HedgeWon || resp.Winner != telamalloc.StageGreedy {
		t.Fatalf("hedgeWon=%v winner=%s, want a greedy hedge win", resp.HedgeWon, resp.Winner)
	}
	if elapsed > 150*time.Millisecond {
		t.Errorf("hedged response took %v despite a 200ms ladder stall", elapsed)
	}
	sol := telamalloc.Solution{Offsets: resp.Offsets}
	if verr := sol.Validate(p); verr != nil {
		t.Fatalf("hedge packing invalid: %v", verr)
	}
	mustDrain(t, s)
	if c := s.Snapshot(); c.HedgeWins != 1 {
		t.Errorf("counters %+v, want 1 hedge win", c)
	}
}

func TestQueueBudgetExhaustedInQueue(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{
		Workers:        1,
		RequestTimeout: 30 * time.Millisecond,
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				<-gate
			}
			return false
		},
	})
	// First request parks the worker; the second's whole pot burns in queue.
	first := make(chan struct{})
	go func() {
		s.Submit(context.Background(), Request{Problem: easyProblem()})
		close(first)
	}()
	time.Sleep(20 * time.Millisecond)
	errCh := make(chan error, 1)
	respCh := make(chan *Response, 1)
	go func() {
		resp, err := s.Submit(context.Background(), Request{Problem: easyProblem()})
		respCh <- resp
		errCh <- err
	}()
	time.Sleep(60 * time.Millisecond) // exceed the 30ms pot while queued
	close(gate)
	<-first
	resp, err := <-respCh, <-errCh
	if !errors.Is(err, telamalloc.ErrBudget) {
		t.Fatalf("err %v, want ErrBudget for a pot spent in queue", err)
	}
	if resp == nil || resp.Outcome != OutcomeFailed || !strings.Contains(resp.Err, "queue") {
		t.Fatalf("resp %+v, want structured queue-budget failure", resp)
	}
	mustDrain(t, s)
}
