package server

// Tests for the overload-control layer (DESIGN.md §14): priority classes
// with per-class bounds, deadline-aware queueing (typed expiry at dequeue
// and eager eviction), per-tenant fair shedding, the brownout controller's
// hysteresis, and the sustained-overload acceptance soak (`make
// overloadsoak`, under -race).

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"telamalloc"
	"telamalloc/internal/faultinject"
	"telamalloc/internal/stats"
)

// --- Priority classes -----------------------------------------------------

func TestPriorityClassMapping(t *testing.T) {
	cases := []struct {
		p     Priority
		class int
		ok    bool
	}{
		{PriorityInteractive, 0, true},
		{PriorityBatch, 1, true},
		{Priority(""), 1, true}, // absent means batch
		{PriorityBackground, 2, true},
		{Priority("Interactive"), 0, false}, // case-sensitive: reject, don't guess
		{Priority("realtime"), 0, false},
	}
	for _, c := range cases {
		got, ok := c.p.class()
		if ok != c.ok || (ok && got != c.class) {
			t.Errorf("Priority(%q).class() = (%d, %v), want (%d, %v)", c.p, got, ok, c.class, c.ok)
		}
		if c.p.Valid() != c.ok {
			t.Errorf("Priority(%q).Valid() = %v, want %v", c.p, c.p.Valid(), c.ok)
		}
	}
}

func TestUnknownPriorityRejectedTyped(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1})
	defer mustDrain(t, s)
	resp, err := s.Submit(context.Background(), Request{Problem: easyProblem(), Priority: "urgent"})
	if resp != nil {
		t.Fatalf("bad-priority request carried a response: %+v", resp)
	}
	if !errors.Is(err, ErrBadPriority) {
		t.Fatalf("want ErrBadPriority, got %v", err)
	}
	c := s.Snapshot()
	if c.Failed != 1 || c.Submitted != 1 {
		t.Fatalf("ledger: want submitted=1 failed=1, got %+v", c)
	}
}

func TestClassQueueStrictPriorityAndBounds(t *testing.T) {
	q := newClassQueue([numClasses]int{2, 2, 1})
	mk := func(class int) *job { return &job{class: class, done: make(chan struct{})} }

	bg, ba, in := mk(2), mk(1), mk(0)
	for _, j := range []*job{bg, ba, in} {
		if st := q.push(j); st != pushOK {
			t.Fatalf("push class %d: %v", j.class, st)
		}
	}
	// Background lane (bound 1) is full; batch and interactive lanes are not.
	if st := q.push(mk(2)); st != pushFull {
		t.Fatalf("background over bound: want pushFull, got %v", st)
	}
	if st := q.push(mk(0)); st != pushOK {
		t.Fatalf("interactive must not be bounded by the background lane: %v", st)
	}
	if got := q.len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if got := q.lenAhead(1); got != 3 {
		t.Fatalf("lenAhead(batch) = %d, want 3 (2 interactive + 1 batch)", got)
	}

	// Strict priority: both interactive jobs, then batch, then background —
	// regardless of push order.
	var order []int
	for i := 0; i < 4; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue reported closed", i)
		}
		order = append(order, j.class)
	}
	want := []int{0, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order = %v, want %v", order, want)
		}
	}

	// Close semantics mirror a closed channel: queued work still pops, then
	// ok=false; pushes report pushClosed.
	q.push(mk(0))
	q.close()
	if st := q.push(mk(0)); st != pushClosed {
		t.Fatalf("push after close: want pushClosed, got %v", st)
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("queued job must still pop after close")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("empty closed queue must report ok=false")
	}
}

func TestClassQueueEvictExpired(t *testing.T) {
	q := newClassQueue([numClasses]int{4, 4, 4})
	now := time.Now()
	dead := &job{class: 1, expires: now.Add(-time.Millisecond)}
	live := &job{class: 1, expires: now.Add(time.Hour)}
	nodeadline := &job{class: 1}
	for _, j := range []*job{dead, live, nodeadline} {
		q.push(j)
	}
	ev := q.evictExpired(now, false)
	if len(ev) != 1 || ev[0] != dead {
		t.Fatalf("evictExpired: want exactly the dead job, got %d jobs", len(ev))
	}
	if q.len() != 2 {
		t.Fatalf("len after evict = %d, want 2", q.len())
	}
	// force evicts every deadline-carrying job, never the deadline-free one.
	ev = q.evictExpired(now, true)
	if len(ev) != 1 || ev[0] != live {
		t.Fatalf("force evict: want the live deadline job, got %d jobs", len(ev))
	}
	j, ok := q.pop()
	if !ok || j != nodeadline {
		t.Fatal("deadline-free job must survive every sweep")
	}
}

// TestBatchFloodCannotShedInteractive is the tentpole isolation property:
// a batch flood saturating its own lane can never consume interactive
// admission capacity.
func TestBatchFloodCannotShedInteractive(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	s := New(Config{
		Workers:      1,
		QueueDepth:   4,
		CacheSize:    -1,
		DisableDedup: true,
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				<-gate // wedge the lone worker until the test releases it
			}
			return false
		},
	})

	var wg sync.WaitGroup
	launch := func(p Priority, n int, results chan<- error) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := s.Submit(context.Background(), Request{Problem: easyProblem(), Priority: p})
				results <- err
			}()
		}
	}

	// One job occupies the worker (blocked on the gate), then the batch
	// flood: far more than the lane bound, so sheds are guaranteed.
	batchRes := make(chan error, 16)
	launch(PriorityBatch, 16, batchRes)
	// Wait until the batch lane is actually full before interactive joins.
	deadline := time.Now().Add(5 * time.Second)
	for s.queue.lenClass(1) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("batch lane never filled")
		}
		time.Sleep(time.Millisecond)
	}
	interRes := make(chan error, 4)
	launch(PriorityInteractive, 4, interRes)
	// Interactive lane bound is 4 and exactly 4 were submitted: all admit.
	for s.queue.lenClass(0) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("interactive lane stuck at %d/4 while batch flooded", s.queue.lenClass(0))
		}
		time.Sleep(time.Millisecond)
	}
	once.Do(func() { close(gate) })
	wg.Wait()

	for i := 0; i < 4; i++ {
		if err := <-interRes; err != nil {
			t.Fatalf("interactive request shed during batch flood: %v", err)
		}
	}
	shed := 0
	for i := 0; i < 16; i++ {
		err := <-batchRes
		if err == nil {
			continue
		}
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("batch failure is not a typed shed: %v", err)
		}
		if oe.Class != PriorityBatch || oe.Reason != ShedQueueFull {
			t.Fatalf("shed carries class=%q reason=%q, want batch/queue_full", oe.Class, oe.Reason)
		}
		shed++
	}
	if shed == 0 {
		t.Fatal("flooding 16 requests into a 4-deep lane shed nothing")
	}
	mustDrain(t, s)
}

// --- Retry-after pricing --------------------------------------------------

// TestRetryAfterMonotonic pins the pricing contract: non-decreasing in
// queue depth, never below the 1ms floor (cold or zero EWMA included), and
// capped so one pathological latency observation cannot price callers out
// for hours.
func TestRetryAfterMonotonic(t *testing.T) {
	cases := []struct {
		name    string
		observe []float64 // latency observations seeded into the EWMA (ns)
	}{
		{"cold EWMA", nil},
		{"zero EWMA", []float64{0}},
		{"typical", []float64{float64(5 * time.Millisecond)}},
		{"pathological", []float64{float64(3 * time.Hour)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New(Config{Workers: 2, CacheSize: -1})
			defer mustDrain(t, s)
			for _, v := range c.observe {
				s.latency.Observe(v)
			}
			prev := time.Duration(-1)
			for _, depth := range []int{-1, 0, 1, 2, 5, 64, 1 << 20} {
				ra := s.retryAfter(depth)
				if ra < time.Millisecond {
					t.Fatalf("retryAfter(%d) = %v, below the 1ms floor", depth, ra)
				}
				if ra > maxRetryAfter {
					t.Fatalf("retryAfter(%d) = %v, above the %v cap", depth, ra, maxRetryAfter)
				}
				if ra < prev {
					t.Fatalf("retryAfter(%d) = %v < retryAfter at smaller depth %v: not monotone", depth, ra, prev)
				}
				prev = ra
			}
		})
	}
}

// --- Deadline-aware queueing ----------------------------------------------

// TestExpiredInQueueTypedAtDequeue is the doomed-work regression test (run
// under -race by `make overloadsoak`): a job whose budget died in queue is
// short-circuited with the typed error before any solver step, and the
// counter ledger still balances.
func TestExpiredInQueueTypedAtDequeue(t *testing.T) {
	release := make(chan struct{})
	var gateOnce sync.Once
	var dequeues atomic.Int64
	s := New(Config{
		Workers:      1,
		QueueDepth:   4,
		CacheSize:    -1,
		DisableDedup: true,
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				if dequeues.Add(1) == 1 {
					<-release // first job wedges the worker past the budget
				}
			}
			return false
		},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Submit(context.Background(), Request{Problem: easyProblem()})
	}()
	for s.QueueDepth() == 0 && dequeues.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	var resp *Response
	var err error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err = s.Submit(context.Background(), Request{Problem: tightProblem(t), Timeout: 5 * time.Millisecond})
	}()
	for s.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the 5ms budget die in queue
	gateOnce.Do(func() { close(release) })
	wg.Wait()
	mustDrain(t, s)

	if !errors.Is(err, ErrExpiredInQueue) {
		t.Fatalf("want ErrExpiredInQueue, got %v", err)
	}
	if !errors.Is(err, telamalloc.ErrBudget) {
		t.Fatalf("expired-in-queue error must still wrap ErrBudget, got %v", err)
	}
	if !strings.Contains(err.Error(), "queue") {
		t.Fatalf("error must say the budget died in queue: %v", err)
	}
	if resp == nil || resp.Outcome != OutcomeFailed {
		t.Fatalf("want OutcomeFailed response, got %+v", resp)
	}
	c := s.Snapshot()
	if c.ExpiredInQueue != 1 {
		t.Fatalf("ExpiredInQueue = %d, want 1", c.ExpiredInQueue)
	}
	accounted := c.Shed + c.RejectedDraining + c.Cancelled + c.Solved + c.Degraded + c.Failed
	if accounted != c.Submitted {
		t.Fatalf("ledger does not balance: submitted %d, accounted %d (%+v)", c.Submitted, accounted, c)
	}
}

// TestExpireSweepEvictsDoomed exercises eager eviction: when a push finds
// the lane full, queued jobs past their deadlines are evicted (settled
// with the typed verdict) to make room for live work, deterministically
// forced through the server:expire starve point.
func TestExpireSweepEvictsDoomed(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	var wedged, starving atomic.Bool
	s := New(Config{
		Workers:      1,
		QueueDepth:   2,
		CacheSize:    -1,
		DisableDedup: true,
		Hook: func(point string) bool {
			switch point {
			case faultinject.PointServerDequeue:
				wedged.Store(true)
				<-gate
			case faultinject.PointServerExpire:
				return starving.Load()
			}
			return false
		},
	})

	type result struct {
		resp *Response
		err  error
	}
	results := make(chan result, 4)
	submit := func(timeout time.Duration) {
		go func() {
			r, e := s.Submit(context.Background(), Request{Problem: easyProblem(), Timeout: timeout})
			results <- result{r, e}
		}()
	}
	// One job wedges the worker; then exactly two more fill the 2-deep
	// batch lane, both carrying budgets (so the forced sweep may evict them).
	submit(0)
	deadline := time.Now().Add(5 * time.Second)
	for !wedged.Load() {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the wedge job")
		}
		time.Sleep(time.Millisecond)
	}
	submit(time.Hour)
	submit(time.Hour)
	for s.queue.lenClass(1) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("lane stuck at %d/2", s.queue.lenClass(1))
		}
		time.Sleep(time.Millisecond)
	}
	// Lane full. Arm the forced sweep and push one more: the sweep evicts
	// both queued jobs, and the newcomer takes a freed slot.
	starving.Store(true)
	submit(time.Hour)
	evicted := 0
	for i := 0; i < 2; i++ {
		r := <-results
		if !errors.Is(r.err, ErrExpiredInQueue) {
			t.Fatalf("evicted job: want ErrExpiredInQueue, got %v", r.err)
		}
		if r.resp == nil || r.resp.Outcome != OutcomeFailed {
			t.Fatalf("evicted job response: %+v", r.resp)
		}
		evicted++
	}
	starving.Store(false)
	gateOnce.Do(func() { close(gate) })
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("surviving request failed: %v", r.err)
		}
	}
	mustDrain(t, s)
	c := s.Snapshot()
	if c.ExpiredEvicted != int64(evicted) {
		t.Fatalf("ExpiredEvicted = %d, want %d", c.ExpiredEvicted, evicted)
	}
	accounted := c.Shed + c.RejectedDraining + c.Cancelled + c.Solved + c.Degraded + c.Failed
	if accounted != c.Submitted {
		t.Fatalf("ledger does not balance after evictions: %+v", c)
	}
}

// --- Per-tenant fairness --------------------------------------------------

func TestTenantRateShed(t *testing.T) {
	s := New(Config{
		Workers:   2,
		CacheSize: -1, DisableDedup: true,
		Tenant: TenantConfig{RPS: 0.001, Burst: 2}, // ~one token per 17min: no refill mid-test
	})
	defer mustDrain(t, s)

	sub := func(tenant string) error {
		_, err := s.Submit(context.Background(), Request{Problem: easyProblem(), Tenant: tenant})
		return err
	}
	if err := sub("hog"); err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	if err := sub("hog"); err != nil {
		t.Fatalf("second request within burst: %v", err)
	}
	err := sub("hog")
	var oe *OverloadError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-burst request: want typed OverloadError, got %v", err)
	}
	if oe.Reason != ShedTenantRate || oe.Tenant != "hog" {
		t.Fatalf("shed reason/tenant = %q/%q, want tenant_rate/hog", oe.Reason, oe.Tenant)
	}
	if oe.RetryAfter < time.Millisecond {
		t.Fatalf("tenant shed retry-after %v below floor", oe.RetryAfter)
	}
	// Another tenant and the anonymous tenant are unaffected: fairness is
	// per-tenant, not global.
	if err := sub("bystander"); err != nil {
		t.Fatalf("bystander tenant throttled by the hog: %v", err)
	}
	if err := sub(""); err != nil {
		t.Fatalf("anonymous request throttled: %v", err)
	}
	c := s.Snapshot()
	if c.TenantShed != 1 {
		t.Fatalf("TenantShed = %d, want 1", c.TenantShed)
	}
}

func TestTenantShareShed(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	s := New(Config{
		Workers:    1,
		QueueDepth: 8,
		CacheSize:  -1, DisableDedup: true,
		// Capacity = 3 lanes × 8 + 1 worker = 25; share 0.08 → max 2 in flight.
		Tenant: TenantConfig{MaxShare: 0.08},
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				<-gate
			}
			return false
		},
	})

	errs := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Submit(context.Background(), Request{Problem: easyProblem(), Tenant: "greedy"})
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.tenants.inflight("greedy") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("tenant in-flight stuck at %d", s.tenants.inflight("greedy"))
		}
		time.Sleep(time.Millisecond)
	}
	_, err := s.Submit(context.Background(), Request{Problem: easyProblem(), Tenant: "greedy"})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedTenantShare {
		t.Fatalf("over-share request: want tenant_share shed, got %v", err)
	}
	gateOnce.Do(func() { close(gate) })
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("in-share request failed: %v", err)
		}
	}
	mustDrain(t, s)
	// The release path must return every slot: after drain the tenant holds
	// nothing in flight.
	if got := s.tenants.inflight("greedy"); got != 0 {
		t.Fatalf("in-flight slots leaked: %d held after drain", got)
	}
}

func TestTenantStarvePointForcesShed(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{Point: faultinject.PointServerTenant, After: 1, Kind: faultinject.Starve})
	s := New(Config{
		Workers: 1, CacheSize: -1, DisableDedup: true,
		Tenant: TenantConfig{RPS: 1000},
		Hook:   inj.Hook,
	})
	defer mustDrain(t, s)
	_, err := s.Submit(context.Background(), Request{Problem: easyProblem(), Tenant: "t"})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedTenantRate {
		t.Fatalf("starved tenant admission: want tenant_rate shed, got %v", err)
	}
}

// --- Brownout controller --------------------------------------------------

// TestBrownoutHysteresis drives the controller directly with a manual
// clock: degradation needs StepUpAfter consecutive hot windows, recovery
// needs StepDownAfter consecutive cool ones, and the deadband in between
// resets both streaks.
func TestBrownoutHysteresis(t *testing.T) {
	b := newBrownout(BrownoutConfig{
		Target: 10 * time.Millisecond, StepUpAfter: 3, StepDownAfter: 2, LowWater: 0.5,
	})
	now := time.Now()
	tick := func(wait time.Duration) bool {
		if wait >= 0 {
			b.observe(wait)
		}
		_, changed := b.evaluate(now, false)
		return changed
	}

	hot := 50 * time.Millisecond  // above target
	warm := 7 * time.Millisecond  // deadband: between low-water (5ms) and target
	cool := 1 * time.Millisecond  // below low-water

	// Two hot windows are not enough; the third degrades.
	if tick(hot) || tick(hot) {
		t.Fatal("degraded before StepUpAfter consecutive hot windows")
	}
	if !tick(hot) || b.currentLevel() != 1 {
		t.Fatalf("third hot window must degrade to level 1, at %d", b.currentLevel())
	}

	// A deadband window resets the hot streak: two more hot windows still
	// don't degrade further; it takes three again.
	tick(hot)
	tick(hot)
	if tick(warm) {
		t.Fatal("deadband window must not transition")
	}
	if tick(hot) || tick(hot) {
		t.Fatal("hot streak must restart after a deadband window")
	}
	if !tick(hot) || b.currentLevel() != 2 {
		t.Fatalf("want level 2, at %d", b.currentLevel())
	}

	// Recovery: one cool window is not enough; the second steps down. An
	// empty window (idle server) counts as cool too.
	if tick(cool) {
		t.Fatal("recovered before StepDownAfter consecutive cool windows")
	}
	if !tick(-1) || b.currentLevel() != 1 {
		t.Fatalf("second cool (empty) window must recover to level 1, at %d", b.currentLevel())
	}
	if tick(cool) {
		t.Fatal("cool streak must reset after a transition")
	}
	if !tick(cool) || b.currentLevel() != 0 {
		t.Fatalf("want full recovery to level 0, at %d", b.currentLevel())
	}
	// At the floor, cool windows do nothing.
	if tick(cool) || tick(cool) || b.currentLevel() != 0 {
		t.Fatal("level must not drop below 0")
	}

	// The ladder tops out at brownoutMaxLevel.
	for i := 0; i < 20; i++ {
		tick(hot)
	}
	if b.currentLevel() != brownoutMaxLevel {
		t.Fatalf("level = %d, want cap %d", b.currentLevel(), brownoutMaxLevel)
	}
}

// TestBrownoutLadderApplication pins what each level does to a request:
// level 3 drops search for batch (degraded answer, marked) but never for
// interactive; level 1 shrinks the step pot (marked even when still
// solved); level 0 marks nothing.
func TestBrownoutLadderApplication(t *testing.T) {
	s := New(Config{
		Workers: 2, CacheSize: -1, DisableDedup: true,
		MaxSteps: 400000,
		Brownout: BrownoutConfig{Target: time.Hour, Interval: time.Hour}, // enabled, never self-triggers
	})
	defer mustDrain(t, s)
	tight := tightProblem(t)

	// Level 0: full service, no markers, the search stage wins.
	resp, err := s.Submit(context.Background(), Request{Problem: tight})
	if err != nil || resp.Outcome != OutcomeSolved {
		t.Fatalf("level 0 tight solve: %+v %v", resp, err)
	}
	if resp.Winner != "search" {
		t.Fatalf("tight problem is meant to need search; winner = %q", resp.Winner)
	}
	if resp.DegradedByBrownout {
		t.Fatal("idle controller must never mark responses")
	}
	baseline := string(resp.CanonicalJSON())

	// Level 3, batch: search is dropped from the ladder — some other stage
	// must settle the request, and the verdict is marked.
	s.brown.level.Store(brownoutNoSearch)
	resp, err = s.Submit(context.Background(), Request{Problem: tight, Priority: PriorityBatch})
	if err != nil {
		t.Fatalf("level 3 batch tight: %v", err)
	}
	if resp.Winner == "search" {
		t.Fatal("level-3 batch request still ran the search stage")
	}
	if !resp.DegradedByBrownout {
		t.Fatal("level-3 batch verdict must carry the brownout marker")
	}

	// Level 3, interactive: keeps the full ladder — still solved by search.
	// (The shrunk pot marks the response; the answer bytes must match the
	// un-browned solve, since the search found the same packing.)
	resp, err = s.Submit(context.Background(), Request{Problem: tight, Priority: PriorityInteractive})
	if err != nil || resp.Outcome != OutcomeSolved {
		t.Fatalf("level 3 interactive tight: want solved, got %+v %v", resp, err)
	}
	if !resp.DegradedByBrownout {
		t.Fatal("shrunk-pot solve must carry the marker")
	}
	if got := string(resp.CanonicalJSON()); got != baseline {
		t.Fatalf("interactive answer changed under brownout:\n  level0: %s\n  level3: %s", baseline, got)
	}

	// Back to level 0: markers stop.
	s.brown.level.Store(brownoutOff)
	resp, err = s.Submit(context.Background(), Request{Problem: tight})
	if err != nil || resp.DegradedByBrownout {
		t.Fatalf("recovered controller still marking: %+v %v", resp, err)
	}
	c := s.Snapshot()
	if c.BrownoutDegraded != 2 {
		t.Fatalf("BrownoutDegraded = %d, want 2", c.BrownoutDegraded)
	}
}

// TestBrownoutTickTransitions exercises the server-side tick path: forced
// hot ticks (server:brownout starve) degrade, idle ticks recover, and both
// directions land in the counters.
func TestBrownoutTickTransitions(t *testing.T) {
	forceHot := atomic.Bool{}
	s := New(Config{
		Workers: 1, CacheSize: -1,
		Brownout: BrownoutConfig{Target: 10 * time.Millisecond, Interval: time.Hour, StepUpAfter: 2, StepDownAfter: 2},
		Hook: func(point string) bool {
			return point == faultinject.PointServerBrownout && forceHot.Load()
		},
	})
	defer mustDrain(t, s)

	forceHot.Store(true)
	now := time.Now()
	for i := 0; i < 4 && s.BrownoutLevel() == 0; i++ {
		s.brownoutTick(now)
	}
	if s.BrownoutLevel() == 0 {
		t.Fatal("forced-hot ticks never degraded")
	}
	forceHot.Store(false)
	for i := 0; i < 20 && s.BrownoutLevel() > 0; i++ {
		s.brownoutTick(now)
	}
	if s.BrownoutLevel() != 0 {
		t.Fatalf("idle ticks never recovered: level %d", s.BrownoutLevel())
	}
	c := s.Snapshot()
	if c.BrownoutDegrades < 1 || c.BrownoutRecovers < 1 {
		t.Fatalf("transitions not counted: degrades %d recovers %d", c.BrownoutDegrades, c.BrownoutRecovers)
	}
}

// --- No-overload byte identity --------------------------------------------

// TestNoOverloadByteIdentical is the acceptance criterion: with every
// overload-control feature configured but no overload signal firing, every
// response's canonical bytes are identical to a plain server's.
func TestNoOverloadByteIdentical(t *testing.T) {
	plain := New(Config{Workers: 2, CacheSize: -1, DisableDedup: true, MaxSteps: 400000})
	defer mustDrain(t, plain)
	featured := New(Config{
		Workers: 2, CacheSize: -1, DisableDedup: true, MaxSteps: 400000,
		ClassDepth: map[Priority]int{PriorityInteractive: 32, PriorityBackground: 8},
		Tenant:     TenantConfig{RPS: 1e6, MaxShare: 0.9},
		Brownout:   BrownoutConfig{Target: time.Hour, Interval: time.Hour},
	})
	defer mustDrain(t, featured)

	corpus := []struct {
		name string
		p    Problem
	}{
		{"easy", easyProblem()},
		{"tight", tightProblem(t)},
		{"infeasible", infeasibleProblem()},
	}
	for _, c := range corpus {
		for _, prio := range []Priority{"", PriorityInteractive, PriorityBackground} {
			want, werr := plain.Submit(context.Background(), Request{Problem: c.p})
			got, gerr := featured.Submit(context.Background(), Request{Problem: c.p, Priority: prio, Tenant: "team-a"})
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s/%s: error divergence: plain %v, featured %v", c.name, prio, werr, gerr)
			}
			if want == nil || got == nil {
				if want != got {
					t.Fatalf("%s/%s: response presence diverged", c.name, prio)
				}
				continue
			}
			if w, g := string(want.CanonicalJSON()), string(got.CanonicalJSON()); w != g {
				t.Fatalf("%s/%s: canonical bytes diverged\n plain:    %s\n featured: %s", c.name, prio, w, g)
			}
			if got.DegradedByBrownout {
				t.Fatalf("%s/%s: idle brownout marked a response", c.name, prio)
			}
		}
	}
	if lvl := featured.BrownoutLevel(); lvl != 0 {
		t.Fatalf("brownout engaged without overload: level %d", lvl)
	}
}

// --- Sustained-overload acceptance soak -----------------------------------

// TestOverloadSoak is the `make overloadsoak` acceptance test (run under
// -race): a sustained mixed-class, mixed-tenant flood against a slowed
// server. It asserts every request reaches exactly one terminal outcome,
// no solver steps are spent on expired-in-queue jobs, interactive latency
// stays bounded and interactive is never shed, the counter ledger
// balances, and the brownout controller both engages and disengages.
func TestOverloadSoak(t *testing.T) {
	s := New(Config{
		Workers:      2,
		CacheSize:    -1,
		DisableDedup: true,
		MaxSteps:     50000,
		// Background's lane bound (2) is below its offered concurrency (4
		// submitters), so queue-full sheds are guaranteed; interactive's
		// bound (16) is far above its concurrency (2), so it never sheds.
		ClassDepth: map[Priority]int{
			PriorityInteractive: 16,
			PriorityBatch:       8,
			PriorityBackground:  2,
		},
		Tenant: TenantConfig{RPS: 200, Burst: 20, MaxShare: 0.5},
		// Interval one hour: the soak drives ticks manually below, so the
		// controller's cadence is deterministic relative to the flood.
		Brownout: BrownoutConfig{Target: 2 * time.Millisecond, Interval: time.Hour, StepUpAfter: 2, StepDownAfter: 2},
		Hook: func(point string) bool {
			if point == faultinject.PointServerDequeue {
				time.Sleep(2 * time.Millisecond) // slow service: queues build
			}
			return false
		},
	})

	type outcome struct {
		class   terminalClass
		prio    Priority
		budget  time.Duration
		wait    time.Duration
		latency time.Duration
		browned bool
	}
	var mu sync.Mutex
	var outcomes []outcome
	record := func(prio Priority, budget time.Duration, started time.Time, resp *Response, err error) {
		o := outcome{class: classify(t, resp, err), prio: prio, budget: budget, latency: time.Since(started)}
		if resp != nil {
			o.wait = resp.QueueWait
			o.browned = resp.DegradedByBrownout
		}
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
	}

	// Manual brownout ticks while the flood runs.
	tickStop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		for {
			select {
			case <-tickStop:
				return
			default:
				s.brownoutTick(time.Now())
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	launch := func(goroutines, perG int, prio Priority, budget time.Duration, tenant func(g int) string) {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					started := time.Now()
					resp, err := s.Submit(context.Background(), Request{
						Problem:  easyProblem(),
						Priority: prio,
						Timeout:  budget,
						Tenant:   tenant(g),
					})
					record(prio, budget, started, resp, err)
				}
			}(g)
		}
	}
	noTenant := func(int) string { return "" }
	launch(2, 40, PriorityInteractive, 500*time.Millisecond, noTenant)
	launch(8, 25, PriorityBatch, 25*time.Millisecond, func(g int) string {
		return []string{"t0", "t1", "t2", "t3"}[g%4]
	})
	launch(4, 25, PriorityBackground, 10*time.Millisecond, noTenant)
	wg.Wait()
	close(tickStop)
	<-tickDone

	c := s.Snapshot()
	if c.BrownoutDegrades < 1 {
		t.Fatalf("brownout never engaged under sustained overload (degrades=0): %+v", c)
	}

	// Recovery: idle ticks must walk the ladder back to level 0.
	for i := 0; i < 50 && s.BrownoutLevel() > 0; i++ {
		s.brownoutTick(time.Now())
	}
	if s.BrownoutLevel() != 0 {
		t.Fatalf("brownout never disengaged: level %d", s.BrownoutLevel())
	}

	// After recovery, a fresh request is served unmarked with the canonical
	// full-service bytes.
	resp, err := s.Submit(context.Background(), Request{Problem: easyProblem()})
	if err != nil || resp.Outcome != OutcomeSolved || resp.DegradedByBrownout {
		t.Fatalf("post-recovery solve degraded: %+v %v", resp, err)
	}
	mustDrain(t, s)
	c = s.Snapshot()
	if c.BrownoutRecovers < 1 {
		t.Fatalf("recovery transitions not counted: %+v", c)
	}

	// Exactly-once: every submission recorded one terminal outcome, and the
	// ledger balances.
	wantTotal := 2*40 + 8*25 + 4*25 // the post-recovery probe is not recorded
	if len(outcomes) != wantTotal {
		t.Fatalf("recorded %d outcomes, want %d", len(outcomes), wantTotal)
	}
	accounted := c.Shed + c.RejectedDraining + c.Cancelled + c.Solved + c.Degraded + c.Failed
	if accounted != c.Submitted {
		t.Fatalf("ledger does not balance: submitted %d accounted %d (%+v)", c.Submitted, accounted, c)
	}
	if c.Submitted != c.Admitted+c.Shed {
		t.Fatalf("admission ledger: submitted %d != admitted %d + shed %d", c.Submitted, c.Admitted, c.Shed)
	}

	var interLat []float64
	for _, o := range outcomes {
		// Zero doomed jobs solved: a served verdict whose queue wait
		// already consumed the whole budget would mean the worker solved
		// dead work.
		if (o.class == classSolved || o.class == classDegraded) && o.budget > 0 && o.wait >= o.budget {
			t.Fatalf("doomed job was solved: waited %v of a %v budget", o.wait, o.budget)
		}
		if o.prio == PriorityInteractive {
			if o.class == classShed {
				t.Fatal("interactive request shed during a batch/background flood")
			}
			interLat = append(interLat, float64(o.latency))
		}
	}
	if p99 := time.Duration(stats.Percentile(interLat, 99)); p99 > 2*time.Second {
		t.Fatalf("interactive p99 = %v, want bounded under overload", p99)
	}

	// The flood must actually have exercised the machinery the soak exists
	// to prove: expiries (lazy or eager) and per-tenant sheds.
	if c.ExpiredInQueue+c.ExpiredEvicted == 0 {
		t.Fatal("no queued budget ever expired — the soak did not overload the queue")
	}
	if c.Shed == 0 {
		t.Fatal("nothing was shed — the soak did not overload admission")
	}
}
