// Package server is the long-lived allocation service around the public
// escalation pipeline: the serving harness production deployments put in
// front of the allocator when many clients hit it at model-load time
// (paper §2, §6.1). It adds the discipline the one-shot API lacks:
//
//   - admission control: a bounded queue; when it is full the request is
//     shed immediately with a typed *OverloadError carrying a retry-after
//     hint derived from queue depth × observed request latency, so load
//     sheds in O(1) instead of queueing without bound;
//   - per-request deadlines: one wall-clock pot per request, measured from
//     Submit so queue wait spends it, carved across pipeline stages by the
//     pipeline's share logic;
//   - hedged solving: a cheap heuristic hedge (greedy, then best-fit)
//     races the full ladder; the first valid packing is served and the
//     loser is cancelled through the context plumbing. Because the hedge
//     mirrors the ladder's own deterministic prefix, responses are
//     byte-identical (CanonicalJSON) with hedging on and off;
//   - per-stage circuit breakers: a stage that repeatedly fails with
//     ErrInternal (or times out, when configured) is skipped for a
//     cooldown window and re-admitted through half-open probes;
//   - graceful drain: Drain stops admitting, lets in-flight work finish,
//     and force-cancels whatever remains when the drain deadline expires.
//
// Every submitted request reaches exactly one terminal outcome: solved,
// degraded, failed, shed, rejected-draining, or cancelled. No panic in a
// stage, a hook, or the server's own plumbing escapes Submit.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"telamalloc"
	"telamalloc/internal/buffers"
	"telamalloc/internal/cache"
	"telamalloc/internal/faultinject"
	"telamalloc/internal/obs"
	"telamalloc/internal/stats"
)

// Problem aliases the public problem type so daemon code needs only this
// package.
type Problem = telamalloc.Problem

// pipelineStages is the full ladder the server admits stages from, in
// escalation order.
var pipelineStages = []string{
	telamalloc.StageGreedy,
	telamalloc.StageBestFit,
	telamalloc.StageSearch,
	telamalloc.StageSpill,
}

// Config tunes the server. The zero value is usable: GOMAXPROCS workers, a
// 64-deep queue, no per-request budget, hedging off, breakers at 3
// failures / 5s cooldown.
type Config struct {
	// Workers is the number of concurrent pipeline executions (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds each admission class's queue lane (default 64).
	// Submit sheds instead of blocking when the request's class lane is
	// full — lanes are independent, so a batch flood filling its own lane
	// can never shed interactive traffic.
	QueueDepth int
	// ClassDepth overrides QueueDepth per admission class (entries ≤ 0 or
	// with unknown keys are ignored). Sizing guidance: interactive lanes
	// deep enough to absorb bursts, background lanes shallow so stale
	// best-effort work sheds early.
	ClassDepth map[Priority]int
	// Tenant enables per-tenant fair shedding (token buckets + in-flight
	// share). Zero value = disabled; limits apply only to requests that
	// carry a Tenant label.
	Tenant TenantConfig
	// Brownout enables the brownout controller: under sustained queue-wait
	// pressure it steps the service down a degradation ladder (shrink step
	// pots → disable hedging → skip search for batch/background) and back
	// up when pressure clears, with hysteresis. Zero value = disabled.
	Brownout BrownoutConfig
	// RequestTimeout is the default per-request wall-clock pot, measured
	// from Submit (0 = none). Request.Timeout can only shrink it.
	RequestTimeout time.Duration
	// MaxSteps is the default per-request search step pot (0 = unlimited).
	MaxSteps int64
	// Parallelism is forwarded to the allocator (0 = GOMAXPROCS).
	Parallelism int
	// Hedge races a greedy/best-fit hedge against the full ladder.
	Hedge bool
	// Breaker tunes the per-stage circuit breakers.
	Breaker BreakerConfig
	// Watchdog tunes the solve watchdog (off by default). When enabled it
	// force-cancels jobs still running past a multiple of their budget,
	// records telamalloc_watchdog_* metrics, and reports the wedged stage
	// to its breaker as a failure.
	Watchdog WatchdogConfig
	// DrainTimeout is Close's drain deadline (default 5s).
	DrainTimeout time.Duration
	// CacheSize bounds the solution cache (0 = default 256 entries,
	// negative = cache disabled). Cached answers are re-validated against
	// the submitting request's own problem before being served.
	CacheSize int
	// DisableDedup turns off singleflight deduplication of concurrent
	// identical requests, so every submission runs its own solve. Mainly
	// for tests that exercise admission control with identical floods.
	DisableDedup bool
	// Hook is the test-only fault-injection hook, threaded through the
	// server's own decision points (server:admit, server:dequeue,
	// server:hedge, server:drain, server:brownout, server:expire,
	// server:tenant) and into the pipeline's stage and solver points.
	// Must be nil in production configurations.
	Hook func(point string) bool
	// Obs, when non-nil, routes the server's metrics — queue depth, wait and
	// service histograms, the func-backed counter ledger — and every solve's
	// solver/pipeline telemetry into the given registry instead of the
	// process-global obs.Default().
	Obs *obs.Registry
	// Tracer, when non-nil, emits the request-lifecycle span stream
	// (admit → queue → cache/dedup → stage:<s> → settle under a root
	// "request" span) as JSON Lines. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	c.Breaker = c.Breaker.withDefaults()
	c.Watchdog = c.Watchdog.withDefaults()
	c.Tenant = c.Tenant.withDefaults()
	c.Brownout = c.Brownout.withDefaults()
	return c
}

// classBounds resolves the per-class queue bounds: QueueDepth everywhere,
// overridden by ClassDepth.
func (c Config) classBounds() [numClasses]int {
	var bounds [numClasses]int
	for i := range bounds {
		bounds[i] = c.QueueDepth
	}
	for p, d := range c.ClassDepth {
		if idx, ok := p.class(); ok && d > 0 {
			bounds[idx] = d
		}
	}
	return bounds
}

// Server is the long-lived allocation service. Build with New; it is safe
// for concurrent use by any number of clients.
type Server struct {
	cfg   Config
	queue *classQueue

	tenants *tenantTable // nil when Config.Tenant is disabled
	brown   *brownout    // nil when Config.Brownout is disabled

	admitMu  sync.RWMutex // guards draining vs. enqueue (see Submit)
	draining bool
	closeQ   sync.Once

	workerWG sync.WaitGroup // worker loops
	bgWG     sync.WaitGroup // hedge/ladder goroutines, may outlive delivery

	forceCtx    context.Context // cancelled to force-cancel in-flight work
	forceCancel context.CancelFunc

	breakers map[string]*breaker
	latency  *stats.EWMA
	counters counters
	metrics  *serverMetrics

	cache *cache.Cache // nil when Config.CacheSize < 0

	wdMu       sync.Mutex // guards wdJobs
	wdJobs     map[*job]struct{}
	wdStop     chan struct{}
	wdStopOnce sync.Once
	wdDone     chan struct{}

	bwStop     chan struct{} // brownout controller lifecycle, mirrors wd*
	bwStopOnce sync.Once
	bwDone     chan struct{}

	flightMu sync.Mutex
	flights  map[string]*flight
}

// flight is one in-progress solve that concurrent identical requests wait
// on. Only a full solved packing is shared; every other leader outcome
// sends the followers through the cold path.
type flight struct {
	done      chan struct{}
	shareable bool        // set before done closes
	entry     cache.Entry // canonical packing, valid when shareable
}

// job is one admitted request and its delivery state.
type job struct {
	req       Request
	ctx       context.Context
	cancel    context.CancelFunc
	stop      func() bool // deregisters the force-cancel AfterFunc
	submitted time.Time
	budget    time.Duration // effective wall pot (0 = none)
	class     int           // admission class index (see Priority.class)
	expires   time.Time     // submitted + budget; zero when budget == 0
	release   func()        // returns the tenant's in-flight slot; may be nil

	settled atomic.Bool
	done    chan struct{}
	resp    *Response
	err     error

	wdDeadline time.Time   // submitted + budget × watchdog multiple
	wdKilled   atomic.Bool // set once by the watchdog before j.cancel
}

// settle claims the right to deliver the job's terminal outcome. Exactly
// one of the worker and the Submit-side cancellation path wins.
func (j *job) settle() bool { return j.settled.CompareAndSwap(false, true) }

// New builds and starts the server. Stop it with Drain or Close.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	bounds := cfg.classBounds()
	s := &Server{
		cfg:      cfg,
		queue:    newClassQueue(bounds),
		breakers: make(map[string]*breaker, len(pipelineStages)),
		latency:  stats.NewEWMA(0.2),
		flights:  make(map[string]*flight),
		wdJobs:   make(map[*job]struct{}),
		wdStop:   make(chan struct{}),
		wdDone:   make(chan struct{}),
		bwStop:   make(chan struct{}),
		bwDone:   make(chan struct{}),
	}
	if cfg.Tenant.enabled() {
		capacity := cfg.Workers
		for _, b := range bounds {
			capacity += b
		}
		s.tenants = newTenantTable(cfg.Tenant, capacity)
	}
	if cfg.Brownout.enabled() {
		s.brown = newBrownout(cfg.Brownout)
	}
	if cfg.CacheSize > 0 {
		s.cache = cache.New(cfg.CacheSize)
	}
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	for _, stage := range pipelineStages {
		s.breakers[stage] = newBreaker(cfg.Breaker)
	}
	s.bindMetrics()
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.Watchdog.enabled() {
		go s.watchdogLoop()
	} else {
		close(s.wdDone)
	}
	if s.brown != nil {
		go s.brownoutLoop()
	} else {
		close(s.bwDone)
	}
	return s
}

// Submit runs one allocation request through the service and blocks until
// its terminal outcome. A non-nil Response is returned whenever the
// pipeline reached a verdict — including structured failures, where err
// additionally wraps the pipeline sentinel. A nil Response means the
// request never reached the allocator: shed (*OverloadError), rejected
// while draining (ErrDraining), or cancelled (ErrCancelled).
//
// Repeated traffic takes progressively cheaper paths: an exact-fingerprint
// cache hit answers without queueing at all; a shape near-miss seeds a
// decision-trace hint so the pipeline skips search; and concurrent
// identical requests share one solve (singleflight) while each caller
// keeps its own deadline, cancellation, and exactly-once terminal outcome.
// Every cached or shared packing is re-validated against the submitting
// request's own problem before it is served; validation failure falls
// through to the cold path, so reuse can change latency but never answers.
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.counters.submitted.Add(1)
	t0 := time.Now()
	// The root span is opened here and closed on every exit path by the
	// single End below — the balance invariant (opened == closed after
	// drain) holds under hedging, cancellation, and contained panics
	// because no path returns without passing through it.
	span := s.cfg.Tracer.Start(req.TraceID, "request")
	resp, err := s.submit(ctx, req, t0)
	span.Set("outcome", submitOutcome(resp, err))
	span.End()
	return resp, err
}

// submit is Submit's body, running inside the root request span.
func (s *Server) submit(ctx context.Context, req Request, t0 time.Time) (*Response, error) {
	class, ok := req.Priority.class()
	if !ok {
		// A typo'd class is a bad request, not a degraded one — counted as
		// failed so the terminal-outcome ledger still balances.
		s.counters.failed.Add(1)
		s.traceEvent(req.TraceID, "admit", time.Now(), 0, map[string]any{"verdict": "bad_priority"})
		return nil, fmt.Errorf("%w %q", ErrBadPriority, req.Priority)
	}
	starve, herr := s.hookPoint(faultinject.PointServerAdmit)
	if herr != nil {
		s.counters.failed.Add(1)
		return nil, herr
	}
	if starve {
		// A starved admission models exhausted admission capacity: shed.
		s.traceEvent(req.TraceID, "admit", time.Now(), 0, map[string]any{"verdict": "shed"})
		return nil, s.shed(class)
	}

	// Draining rejects before the reuse layer: a server that is shutting
	// down must not keep answering from its cache. submitQueued re-checks
	// under the lock that actually guards the queue close.
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	if draining {
		s.counters.rejectedDraining.Add(1)
		s.traceEvent(req.TraceID, "admit", time.Now(), 0, map[string]any{"verdict": "draining"})
		return nil, ErrDraining
	}

	q := internalProblem(req.Problem)
	if q.Validate() != nil {
		// Fingerprints of invalid problems are meaningless; let the queue
		// path produce the structured rejection.
		return s.submitQueued(ctx, req, t0, cache.Fingerprint{}, nil)
	}
	fp, perm := cache.Canonicalize(q)

	if s.cache != nil {
		c0 := time.Now()
		if resp := s.cacheLookup(q, fp, perm, t0); resp != nil {
			s.counters.solved.Add(1)
			s.traceEvent(req.TraceID, "cache", c0, time.Since(c0), map[string]any{"verdict": "hit"})
			return resp, nil
		}
		verdict := "miss"
		if req.Hint == nil {
			if e, ok := s.cache.GetShape(fp.ShapeKey, fp.Key); ok {
				// Same buffers, different capacity: the old packing may still
				// fit. Ride it down as a hint; the pipeline validates before
				// trusting it.
				req.Hint = &telamalloc.DecisionTrace{Winner: e.Winner, Shape: fp.ShapeKey, Offsets: e.Offsets}
				verdict = "near_hit"
			}
		}
		s.traceEvent(req.TraceID, "cache", c0, time.Since(c0), map[string]any{"verdict": verdict})
	}

	if s.cfg.DisableDedup {
		return s.submitQueued(ctx, req, t0, fp, perm)
	}
	maxSteps := s.cfg.MaxSteps
	if req.MaxSteps > 0 {
		maxSteps = req.MaxSteps
	}
	// The flight key pins everything that could change the answer's bytes:
	// the full problem fingerprint and the effective step pot. Timeouts
	// deliberately don't join the key — a solved packing is valid under any
	// deadline, and followers keep their own budget timers below.
	flightKey := fp.Key + "#" + strconv.FormatInt(maxSteps, 10)
	s.flightMu.Lock()
	if f, ok := s.flights[flightKey]; ok {
		s.flightMu.Unlock()
		return s.awaitFlight(ctx, f, req, q, fp, perm, t0)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[flightKey] = f
	s.flightMu.Unlock()

	resp, err := s.submitQueued(ctx, req, t0, fp, perm)
	if err == nil && resp != nil && resp.Outcome == OutcomeSolved {
		f.entry = cache.Entry{Winner: resp.Winner, Offsets: cache.ToCanonical(resp.Offsets, perm)}
		f.shareable = f.entry.Offsets != nil
	}
	s.flightMu.Lock()
	delete(s.flights, flightKey)
	s.flightMu.Unlock()
	close(f.done)
	return resp, err
}

// internalProblem converts the public problem into the internal schema the
// fingerprint and validators operate on. Buffer order is preserved, so the
// canonical permutation computed here transports response offsets too.
func internalProblem(p Problem) *buffers.Problem {
	q := &buffers.Problem{Memory: p.Memory, Name: p.Name}
	for _, b := range p.Buffers {
		q.Buffers = append(q.Buffers, buffers.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	q.Normalize()
	return q
}

// effectiveBudget resolves the per-request wall pot: the server default,
// shrunk by the request's own timeout.
func (s *Server) effectiveBudget(req Request) time.Duration {
	budget := s.cfg.RequestTimeout
	if req.Timeout > 0 && (budget == 0 || req.Timeout < budget) {
		budget = req.Timeout
	}
	return budget
}

// cacheLookup serves an exact-fingerprint cache hit: replay through the
// canonical permutation, re-validate against this request's own problem,
// and answer without touching the queue. An entry that fails validation is
// dropped and the request proceeds cold — a bad entry costs one validation
// sweep, never a wrong answer.
func (s *Server) cacheLookup(q *buffers.Problem, fp cache.Fingerprint, perm []int, t0 time.Time) *Response {
	if s.cache == nil {
		return nil
	}
	e, ok := s.cache.Get(fp.Key)
	if !ok {
		return nil
	}
	offsets := cache.Replay(e.Offsets, perm)
	if offsets == nil || (&buffers.Solution{Offsets: offsets}).Validate(q) != nil {
		s.cache.Drop(fp.Key)
		return nil
	}
	return &Response{
		Outcome:    OutcomeSolved,
		Winner:     e.Winner,
		Offsets:    offsets,
		LowerBound: buffers.Contention(q).Peak(),
		Memory:     q.Memory,
		CacheHit:   true,
		Elapsed:    time.Since(t0),
		Trace:      &telamalloc.DecisionTrace{Winner: e.Winner, Shape: fp.ShapeKey, Offsets: e.Offsets},
	}
}

// awaitFlight is the follower side of singleflight: wait for the leader's
// verdict while keeping this caller's own deadline and cancellation. Only
// a full solved packing is shared, and it is re-validated against the
// follower's own problem first; any other leader outcome — failure,
// degradation, cancellation, a packing that doesn't validate — sends the
// follower through the cold path so its verdict is earned, not inherited.
func (s *Server) awaitFlight(ctx context.Context, f *flight, req Request, q *buffers.Problem, fp cache.Fingerprint, perm []int, t0 time.Time) (*Response, error) {
	w0 := time.Now()
	var budgetC <-chan time.Time
	if budget := s.effectiveBudget(req); budget > 0 {
		timer := time.NewTimer(budget - time.Since(t0))
		defer timer.Stop()
		budgetC = timer.C
	}
	select {
	case <-f.done:
		if f.shareable {
			if offsets := cache.Replay(f.entry.Offsets, perm); offsets != nil &&
				(&buffers.Solution{Offsets: offsets}).Validate(q) == nil {
				s.counters.dedupShared.Add(1)
				s.counters.solved.Add(1)
				s.traceEvent(req.TraceID, "dedup", w0, time.Since(w0), map[string]any{"verdict": "shared"})
				return &Response{
					Outcome:    OutcomeSolved,
					Winner:     f.entry.Winner,
					Offsets:    offsets,
					LowerBound: buffers.Contention(q).Peak(),
					Memory:     q.Memory,
					Deduped:    true,
					Elapsed:    time.Since(t0),
					Trace:      &telamalloc.DecisionTrace{Winner: f.entry.Winner, Shape: fp.ShapeKey, Offsets: f.entry.Offsets},
				}, nil
			}
		}
		s.traceEvent(req.TraceID, "dedup", w0, time.Since(w0), map[string]any{"verdict": "cold"})
		return s.submitQueued(ctx, req, t0, fp, perm)
	case <-ctx.Done():
		s.counters.cancelled.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrCancelled, context.Cause(ctx))
	case <-budgetC:
		// The shared solve outlived this caller's own pot. The queue path
		// turns the spent budget into its usual fast-fail verdict (and
		// still sheds or rejects if the server state demands it).
		return s.submitQueued(ctx, req, t0, fp, perm)
	}
}

// submitQueued is the cold path: enqueue the request, wait for the worker's
// verdict or the caller's cancellation, and feed full packings back into
// the solution cache. t0 is the Submit entry time, so queue-wait accounting
// and the request budget span reuse-layer time too.
func (s *Server) submitQueued(ctx context.Context, req Request, t0 time.Time, fp cache.Fingerprint, perm []int) (*Response, error) {
	class, _ := req.Priority.class() // validated at the top of submit
	jctx, cancel := context.WithCancel(ctx)
	j := &job{
		req:       req,
		ctx:       jctx,
		cancel:    cancel,
		stop:      context.AfterFunc(s.forceCtx, cancel),
		submitted: t0,
		budget:    s.effectiveBudget(req),
		class:     class,
		done:      make(chan struct{}),
	}
	if j.budget > 0 {
		j.expires = t0.Add(j.budget)
	}

	// Per-tenant admission runs before the queue: a tenant over its rate
	// or share is shed without consuming a queue slot. The release func
	// returns the in-flight slot on every exit — settle, eviction, or a
	// failed enqueue below.
	if s.tenants != nil && req.Tenant != "" {
		tstarve, therr := s.hookPoint(faultinject.PointServerTenant)
		if therr != nil {
			j.stop()
			cancel()
			s.counters.failed.Add(1)
			return nil, therr
		}
		release, reason, rateWait := s.tenants.admit(req.Tenant, time.Now(), tstarve)
		if reason != "" {
			j.stop()
			cancel()
			s.traceEvent(req.TraceID, "admit", time.Now(), 0,
				map[string]any{"verdict": "tenant_shed", "tenant": req.Tenant, "reason": reason})
			return nil, s.shedTenant(class, req.Tenant, reason, rateWait)
		}
		j.release = release
	}

	// The RLock makes "set draining, then close the queue" safe: Drain
	// takes the write lock between those steps, so no Submit can observe
	// not-draining stale enough to matter (and a push that still loses the
	// race reports pushClosed and is rejected the same way).
	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		return nil, s.rejectDraining(j)
	}
	st := s.queue.push(j)
	s.admitMu.RUnlock()
	if st == pushFull {
		// The class lane is full. Before shedding, sweep out queued jobs
		// whose deadlines already passed — dead work holding live slots —
		// and retry once. Under pressure this converts "shed a live
		// request" into "evict a doomed one".
		s.expireSweep(time.Now())
		s.admitMu.RLock()
		if s.draining {
			s.admitMu.RUnlock()
			return nil, s.rejectDraining(j)
		}
		st = s.queue.push(j)
		s.admitMu.RUnlock()
	}
	switch st {
	case pushOK:
		s.counters.admitted.Add(1)
		s.traceEvent(req.TraceID, "admit", time.Now(), 0, map[string]any{"verdict": "admitted"})
	case pushClosed:
		return nil, s.rejectDraining(j)
	default: // pushFull
		j.stop()
		cancel()
		if j.release != nil {
			j.release()
		}
		s.traceEvent(req.TraceID, "admit", time.Now(), 0, map[string]any{"verdict": "shed"})
		return nil, s.shed(class)
	}

	select {
	case <-j.done:
		s.cachePut(j.resp, j.err, fp, perm)
		return j.resp, j.err
	case <-ctx.Done():
		if j.settle() {
			cancel() // abort queued or in-flight work
			s.counters.cancelled.Add(1)
			return nil, fmt.Errorf("%w: %v", ErrCancelled, context.Cause(ctx))
		}
		// The worker delivered first; its verdict stands.
		<-j.done
		s.cachePut(j.resp, j.err, fp, perm)
		return j.resp, j.err
	}
}

// cachePut feeds a solved full packing back into the cache and stamps the
// response with its replayable trace. Degraded packings are not cacheable
// (spilled offsets aren't transportable) and failures carry no packing.
func (s *Server) cachePut(resp *Response, err error, fp cache.Fingerprint, perm []int) {
	if err != nil || resp == nil || resp.Outcome != OutcomeSolved || perm == nil {
		return
	}
	canonical := cache.ToCanonical(resp.Offsets, perm)
	if canonical == nil {
		return
	}
	if resp.Trace == nil {
		resp.Trace = &telamalloc.DecisionTrace{Winner: resp.Winner, Shape: fp.ShapeKey, Offsets: canonical}
	}
	if s.cache != nil {
		s.cache.Put(fp, cache.Entry{Winner: resp.Winner, Offsets: canonical})
	}
}

// rejectDraining is the common admission-refused-by-drain exit: undo the
// job's registrations and report ErrDraining.
func (s *Server) rejectDraining(j *job) error {
	j.stop()
	j.cancel()
	if j.release != nil {
		j.release()
	}
	s.counters.rejectedDraining.Add(1)
	s.traceEvent(j.req.TraceID, "admit", time.Now(), 0, map[string]any{"verdict": "draining"})
	return ErrDraining
}

// shed records a load-shed and prices the retry-after hint. Depth is
// class-aware: the work queued at or above the request's class — what it
// would actually have waited behind.
func (s *Server) shed(class int) error {
	depth := s.queue.lenAhead(class)
	s.counters.shed.Add(1)
	return &OverloadError{
		QueueDepth: depth,
		RetryAfter: s.retryAfter(depth),
		Class:      classOrder[class],
		Reason:     ShedQueueFull,
	}
}

// shedTenant records a per-tenant shed. The retry-after floor is the larger
// of the global congestion estimate and the tenant's own bucket-refill
// time — a rate-limited tenant retrying into an idle server must still wait
// out its own quota.
func (s *Server) shedTenant(class int, tenant, reason string, rateWait time.Duration) error {
	depth := s.queue.lenAhead(class)
	ra := s.retryAfter(depth)
	if rateWait > ra {
		ra = rateWait
	}
	if ra > maxRetryAfter {
		ra = maxRetryAfter
	}
	s.counters.shed.Add(1)
	s.counters.tenantShed.Add(1)
	return &OverloadError{
		QueueDepth: depth,
		RetryAfter: ra,
		Class:      classOrder[class],
		Tenant:     tenant,
		Reason:     reason,
	}
}

// maxRetryAfter caps the retry-after hint. Without it a pathological
// latency estimate (one multi-minute solve observed into the EWMA) would
// tell shed callers to go away for hours — a self-inflicted outage that
// outlives the congestion it was priced from.
const maxRetryAfter = time.Minute

// retryAfter estimates when a slot frees up: the work ahead of the caller
// (depth+1 requests) divided across the workers, at the observed per-request
// service latency. Floored at 1ms so callers never busy-loop on a cold
// estimator; capped at maxRetryAfter so one slow solve cannot price callers
// out for hours. Monotonically non-decreasing in depth (a table test pins
// this — clients infer congestion severity from the hint).
func (s *Server) retryAfter(depth int) time.Duration {
	lat := time.Duration(s.latency.Value())
	if lat < time.Millisecond {
		lat = time.Millisecond
	}
	if lat > maxRetryAfter {
		// Pre-clamp so the multiply below cannot overflow int64 at any
		// realistic depth.
		lat = maxRetryAfter
	}
	if depth < 0 {
		depth = 0
	}
	ra := time.Duration(depth+1) * lat / time.Duration(s.cfg.Workers)
	if ra < time.Millisecond {
		ra = time.Millisecond
	}
	if ra > maxRetryAfter {
		ra = maxRetryAfter
	}
	return ra
}

// expireSweep eagerly evicts queued jobs whose deadlines have passed and
// settles each with the typed expiry verdict. force (the server:expire
// starve lever) treats every deadline-carrying job as expired.
func (s *Server) expireSweep(now time.Time) {
	force, herr := s.hookPoint(faultinject.PointServerExpire)
	if herr != nil {
		// A panicking hook is contained and counted; skip the sweep.
		return
	}
	for _, j := range s.queue.evictExpired(now, force) {
		s.expireJob(j, now)
	}
}

// expiredErr builds the typed expired-in-queue error. It wraps both
// ErrExpiredInQueue (the queue discipline's typed verdict) and
// telamalloc.ErrBudget (what the budget-expiry has always worn), so both
// errors.Is checks hold.
func expiredErr(budget, wait time.Duration) error {
	return fmt.Errorf("%w: %w: request budget %v exhausted in queue (waited %v)",
		ErrExpiredInQueue, telamalloc.ErrBudget, budget, wait)
}

// expireJob settles one evicted job with the expired-in-queue verdict. The
// job never reaches a worker: its queue wait is observed (the wait
// histograms count every admitted request exactly once) but no service
// time is, and no solver step is spent.
func (s *Server) expireJob(j *job, now time.Time) {
	defer j.stop()
	defer j.cancel()
	if j.release != nil {
		j.release()
	}
	wait := now.Sub(j.submitted)
	s.metrics.queueWait.ObserveDuration(wait.Nanoseconds())
	s.brown.observe(wait)
	s.traceEvent(j.req.TraceID, "queue", j.submitted, wait, nil)
	err := expiredErr(j.budget, wait)
	resp := &Response{
		Outcome:   OutcomeFailed,
		Memory:    j.req.Problem.Memory,
		Err:       err.Error(),
		QueueWait: wait,
	}
	j.resp, j.err = resp, err
	if j.settle() {
		s.counters.failed.Add(1)
		s.counters.expiredEvicted.Add(1)
		s.traceEvent(j.req.TraceID, "expire", now, 0, map[string]any{"verdict": "evicted", "waited_ms": float64(wait) / float64(time.Millisecond)})
	}
	close(j.done)
}

// hookPoint announces a server decision point to the fault hook with the
// server's own containment: a panicking hook surfaces as ErrInternal, never
// as a crash.
func (s *Server) hookPoint(point string) (starve bool, err error) {
	if s.cfg.Hook == nil {
		return false, nil
	}
	defer func() {
		if r := recover(); r != nil {
			s.counters.containedPanics.Add(1)
			starve = false
			err = fmt.Errorf("%w: panic at %s: %v", telamalloc.ErrInternal, point, r)
		}
	}()
	return s.cfg.Hook(point), nil
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.serveJob(j)
	}
}

// serveJob runs one job to its terminal outcome and delivers it.
func (s *Server) serveJob(j *job) {
	defer j.stop()
	defer j.cancel()
	if j.release != nil {
		defer j.release()
	}
	unwatch := s.watchJob(j)
	defer unwatch()
	wait := time.Since(j.submitted)
	s.metrics.queueWait.ObserveDuration(wait.Nanoseconds())
	s.brown.observe(wait)
	s.traceEvent(j.req.TraceID, "queue", j.submitted, wait, nil)
	start := time.Now()
	resp, err := s.runJob(j, wait)
	elapsed := time.Since(start)
	s.latency.Observe(float64(elapsed))
	s.metrics.service.ObserveDuration(elapsed.Nanoseconds())
	if resp != nil {
		resp.QueueWait = wait
		resp.Elapsed = elapsed
	}
	j.resp, j.err = resp, err
	delivered := j.settle()
	if delivered {
		if resp != nil && resp.HintReplayed {
			s.counters.hintReplays.Add(1)
		}
		if resp != nil && resp.DegradedByBrownout {
			s.counters.brownoutMarked.Add(1)
		}
		switch {
		case err == nil && resp.Outcome == OutcomeDegraded:
			s.counters.degraded.Add(1)
		case err == nil:
			s.counters.solved.Add(1)
		case errors.Is(err, ErrCancelled):
			s.counters.cancelled.Add(1)
			if s.forceCtx.Err() != nil {
				s.counters.forceCancelled.Add(1)
			}
		default:
			s.counters.failed.Add(1)
		}
	}
	if s.cfg.Tracer != nil {
		attrs := map[string]any{
			"outcome": submitOutcome(resp, err),
			// delivered=false means the caller's cancellation path won the
			// settle race and this verdict was discarded.
			"delivered": delivered,
		}
		if resp != nil {
			if resp.Winner != "" {
				attrs["winner"] = resp.Winner
			}
			if resp.HedgeWon {
				attrs["hedge_won"] = true
			}
			if resp.DegradedByBrownout {
				attrs["degraded_by_brownout"] = true
			}
			if len(resp.SkippedByBreaker) > 0 {
				attrs["skipped_by_breaker"] = resp.SkippedByBreaker
			}
		}
		s.traceEvent(j.req.TraceID, "settle", start, elapsed, attrs)
	}
	close(j.done)
}

// attempt is one arm of the hedged race.
type attempt struct {
	main bool // produced by the full ladder
	miss bool // hedge found nothing; wait for the ladder
	resp *Response
	err  error
}

// runJob executes the pipeline (optionally hedged) for one job. Any panic
// that slips past the inner boundaries is contained here and reported as a
// failed outcome.
func (s *Server) runJob(j *job, wait time.Duration) (resp *Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.counters.containedPanics.Add(1)
			err = fmt.Errorf("%w: panic in server worker: %v", telamalloc.ErrInternal, r)
			resp = &Response{Outcome: OutcomeFailed, Memory: j.req.Problem.Memory, Err: err.Error()}
		}
	}()

	if s.cfg.Hook != nil {
		// Starvation has no meaning at dequeue; stalls and panics do, and
		// a panic here is contained by the deferred recover above.
		s.cfg.Hook(faultinject.PointServerDequeue)
	}
	if cerr := j.ctx.Err(); cerr != nil {
		if j.wdKilled.Load() {
			werr := s.watchdogError(j)
			return &Response{Outcome: OutcomeFailed, Memory: j.req.Problem.Memory, Err: werr.Error()}, werr
		}
		return nil, fmt.Errorf("%w: %v", ErrCancelled, cerr)
	}
	var timeout time.Duration
	if j.budget > 0 {
		timeout = j.budget - wait
		if timeout <= 0 {
			// The pot was spent waiting in line. The typed short-circuit —
			// instead of running a doomed 0-budget pipeline — keeps
			// shedding latency bounded under sustained overload and spends
			// zero solver steps on dead work.
			s.counters.expiredDequeued.Add(1)
			err = expiredErr(j.budget, wait)
			return &Response{Outcome: OutcomeFailed, Memory: j.req.Problem.Memory, Err: err.Error()}, err
		}
	}

	// The brownout level is read once per job: a mid-solve transition
	// affects the next job, never a running one.
	level := s.brown.currentLevel()
	browned := false

	ladder, skipped, decisions := s.admitStages()
	if level >= brownoutNoSearch && j.class != 0 {
		// Level 3: drop the expensive search stage for batch/background.
		// Interactive keeps its full ladder at every brownout level.
		trimmed := make([]string, 0, len(ladder))
		for _, st := range ladder {
			if st == telamalloc.StageSearch {
				continue
			}
			trimmed = append(trimmed, st)
		}
		if len(trimmed) > 0 && len(trimmed) < len(ladder) {
			ladder = trimmed
			browned = true
		}
	}
	ladderCtx, cancelLadder := context.WithCancel(j.ctx)
	defer cancelLadder()
	opts := []telamalloc.Option{
		telamalloc.WithContext(ladderCtx),
		telamalloc.WithParallelism(s.cfg.Parallelism),
		telamalloc.WithStages(ladder...),
	}
	maxSteps := s.cfg.MaxSteps
	if j.req.MaxSteps > 0 {
		maxSteps = j.req.MaxSteps
	}
	if level >= brownoutShrinkPots && maxSteps > 0 {
		// Levels 1+: halve the step pot per level. The request still gets
		// an answer — greedy and best-fit are step-free — it just buys
		// less search for it.
		shrunk := maxSteps >> level
		if shrunk < 1 {
			shrunk = 1
		}
		if shrunk < maxSteps {
			maxSteps = shrunk
			browned = true
		}
	}
	if maxSteps > 0 {
		opts = append(opts, telamalloc.WithMaxSteps(maxSteps))
	}
	if timeout > 0 {
		opts = append(opts, telamalloc.WithTimeout(timeout))
	}
	if s.cfg.Hook != nil {
		opts = append(opts, telamalloc.WithFaultHook(s.cfg.Hook))
	}
	if j.req.Hint != nil {
		opts = append(opts, telamalloc.WithHints(j.req.Hint))
	}
	if s.cfg.Obs != nil {
		opts = append(opts, telamalloc.WithObservability(s.cfg.Obs))
	}

	ch := make(chan attempt, 2)
	s.bgWG.Add(1)
	go func() {
		defer s.bgWG.Done()
		defer func() {
			if r := recover(); r != nil {
				s.counters.containedPanics.Add(1)
				// Settle the breaker decisions with no signal: without this,
				// a half-open probe slot would stay held forever and the
				// stage could never be re-admitted.
				s.observeBreakers(decisions, telamalloc.PipelineResult{}, false)
				ferr := fmt.Errorf("%w: panic around pipeline: %v", telamalloc.ErrInternal, r)
				ch <- attempt{main: true, err: ferr, resp: &Response{
					Outcome: OutcomeFailed, Memory: j.req.Problem.Memory, Err: ferr.Error(),
				}}
			}
		}()
		res, perr := telamalloc.AllocatePipeline(j.req.Problem, opts...)
		s.observeBreakers(decisions, res, j.wdKilled.Load())
		s.traceStages(j.req.TraceID, res)
		ch <- attempt{main: true, resp: responseFrom(res, perr, skipped), err: perr}
	}()
	// Level 2+: no hedging. Hedges never change answers, only burn
	// capacity racing the ladder — exactly what a saturated server lacks.
	hedgePending := s.cfg.Hedge && level < brownoutNoHedge
	if hedgePending {
		s.bgWG.Add(1)
		go func() {
			defer s.bgWG.Done()
			defer func() {
				if r := recover(); r != nil {
					s.counters.containedPanics.Add(1)
					ch <- attempt{miss: true}
				}
			}()
			ch <- s.hedge(j)
		}()
	}

	for {
		a := <-ch
		switch {
		case a.miss:
			hedgePending = false
			continue
		case !a.main:
			// The hedge found a full packing first. Cancel the ladder (the
			// deferred cancelLadder fires on return) and serve the hedge's
			// answer — identical bytes to what the ladder's own heuristic
			// prefix would have produced.
			s.counters.hedgeWins.Add(1)
			a.resp.HedgeWon = true
			a.resp.SkippedByBreaker = skipped
			return a.resp, nil
		default:
			// The full ladder's verdict — win, degradation, or structured
			// failure — always outranks a pending hedge.
			if errors.Is(a.err, telamalloc.ErrCancelled) {
				if j.wdKilled.Load() {
					// The cancellation was the watchdog's kill, not the
					// caller's: surface it as the typed overrun failure.
					werr := s.watchdogError(j)
					return &Response{Outcome: OutcomeFailed, Memory: j.req.Problem.Memory, Err: werr.Error()}, werr
				}
				return nil, fmt.Errorf("%w: %v", ErrCancelled, a.err)
			}
			if browned && a.resp != nil {
				// The verdict was bought with a degraded ladder (shrunk
				// pot or dropped search) — mark it. Hedge wins are never
				// marked: a heuristic's full packing is the same bytes
				// browned or not.
				a.resp.DegradedByBrownout = true
			}
			return a.resp, a.err
		}
	}
}

// hedge runs the cheap deterministic prefix of the ladder: greedy, then
// best-fit. It reports a win only on a full packing, which is exactly when
// the ladder's own first stages would have won with the same offsets.
func (s *Server) hedge(j *job) attempt {
	if s.cfg.Hook != nil {
		s.cfg.Hook(faultinject.PointServerHedge) // panic contained by caller
	}
	p := j.req.Problem
	if j.ctx.Err() != nil {
		return attempt{miss: true}
	}
	if sol, err := telamalloc.AllocateGreedy(p); err == nil {
		return attempt{resp: s.hedgeResponse(p, telamalloc.StageGreedy, sol)}
	}
	if j.ctx.Err() != nil {
		return attempt{miss: true}
	}
	if sol, err := telamalloc.AllocateBestFit(p); err == nil {
		return attempt{resp: s.hedgeResponse(p, telamalloc.StageBestFit, sol)}
	}
	return attempt{miss: true}
}

func (s *Server) hedgeResponse(p Problem, winner string, sol telamalloc.Solution) *Response {
	return &Response{
		Outcome:    OutcomeSolved,
		Winner:     winner,
		Offsets:    sol.Offsets,
		LowerBound: telamalloc.MinMemoryLowerBound(p),
		Memory:     p.Memory,
	}
}

// responseFrom maps a pipeline result to the service response.
func responseFrom(res telamalloc.PipelineResult, perr error, skipped []string) *Response {
	r := &Response{
		LowerBound:       res.LowerBound,
		Memory:           res.Memory,
		SkippedByBreaker: skipped,
	}
	if perr != nil {
		r.Outcome = OutcomeFailed
		r.Err = perr.Error()
		return r
	}
	r.Winner = res.Winner
	r.Offsets = res.Solution.Offsets
	r.Trace = res.Trace
	r.HintReplayed = res.HintReplayed
	if res.Degraded {
		r.Outcome = OutcomeDegraded
		r.Spilled = res.Spill.Spilled
		r.SpillCost = res.Spill.SpillCost
	} else {
		r.Outcome = OutcomeSolved
	}
	return r
}

// admitStages consults every stage's breaker and builds this request's
// ladder. If every breaker is open the full ladder runs anyway — running
// nothing guarantees failure, so total-open has nothing left to protect —
// with no breaker observations recorded for the bypass.
func (s *Server) admitStages() (ladder, skipped []string, decisions map[string]decision) {
	now := time.Now()
	decisions = make(map[string]decision, len(pipelineStages))
	for _, stage := range pipelineStages {
		d := s.breakers[stage].admit(now)
		if d.probe {
			s.counters.breakerProbes.Add(1)
		}
		decisions[stage] = d
		if d.include {
			ladder = append(ladder, stage)
		} else {
			skipped = append(skipped, stage)
		}
	}
	if len(ladder) == 0 {
		return append([]string(nil), pipelineStages...), nil, decisions
	}
	return ladder, skipped, decisions
}

// observeBreakers settles each stage's breaker decision against the
// pipeline's per-stage reports. wdKilled marks a run the solve watchdog
// force-cancelled: unlike an ordinary cancellation, the kill IS a health
// signal, charged to the stage that was running when it landed.
func (s *Server) observeBreakers(decisions map[string]decision, res telamalloc.PipelineResult, wdKilled bool) {
	now := time.Now()
	reports := make(map[string]telamalloc.StageReport, len(res.Stages))
	for _, rep := range res.Stages {
		reports[rep.Stage] = rep
	}
	for stage, d := range decisions {
		rep, ok := reports[stage]
		ran := ok && !rep.Skipped
		if ran && errors.Is(rep.Err, telamalloc.ErrCancelled) && !wdKilled {
			// A cancelled stage (hedge won the race, caller gave up, drain
			// force-cancel) carries no health signal: it must not close a
			// half-open breaker as a "successful" probe, and it is not a
			// failure either. Report it as not-run so the breaker releases
			// the probe slot without a verdict. A watchdog kill is the
			// exception: the stage wedged past its budget multiple, which
			// is exactly the unhealthiness breakers exist to contain.
			ran = false
		}
		failed := false
		if ran && rep.Err != nil {
			switch {
			case errors.Is(rep.Err, telamalloc.ErrInternal):
				failed = true
			case wdKilled && errors.Is(rep.Err, telamalloc.ErrCancelled):
				failed = true
			case s.cfg.Breaker.SlowStage > 0 &&
				errors.Is(rep.Err, telamalloc.ErrBudget) &&
				rep.Elapsed >= s.cfg.Breaker.SlowStage:
				failed = true
			}
		}
		tripped, recovered := s.breakers[stage].observe(d, ran, failed, now)
		if tripped {
			s.counters.breakerTrips.Add(1)
		}
		if recovered {
			s.counters.breakerRecovered.Add(1)
		}
	}
}

// Drain stops admitting requests, waits for queued and in-flight work to
// finish, and — if ctx expires first — force-cancels whatever remains and
// waits for the cancellations to land (bounded by the solver's cooperative
// polling stride). It returns nil on a clean drain and ErrDrainTimeout when
// force-cancellation was needed.
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if !already {
		if _, err := s.hookPoint(faultinject.PointServerDrain); err != nil {
			// A crashing drain hook must not block shutdown; it is
			// already counted as a contained panic.
			_ = err
		}
		s.closeQ.Do(func() { s.queue.close() })
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		s.bgWG.Wait()
		// The watchdog outlives the workers (a kill needs a live worker to
		// observe it) and stops only once they are gone. The brownout
		// controller follows the same discipline — its last evaluations
		// see the final queue waits drain out.
		s.wdStopOnce.Do(func() { close(s.wdStop) })
		<-s.wdDone
		s.bwStopOnce.Do(func() { close(s.bwStop) })
		<-s.bwDone
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceCancel()
		<-done
		return fmt.Errorf("%w (%v)", ErrDrainTimeout, context.Cause(ctx))
	}
}

// Close drains with the configured DrainTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Drain(ctx)
}

// QueueDepth reports current queue occupancy across all classes
// (diagnostic).
func (s *Server) QueueDepth() int { return s.queue.len() }

// BrownoutLevel reports the brownout ladder level currently applied to new
// jobs (0 = full service; diagnostic).
func (s *Server) BrownoutLevel() int { return s.brown.currentLevel() }
