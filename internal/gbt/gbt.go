// Package gbt implements gradient boosted regression trees — the
// repository's substitute for the Yggdrasil decision-forest library the
// paper trains its backtracking model with (§6.5). It provides exactly what
// TelaMalloc's learned backtracking needs:
//
//   - training a regression forest from (feature-vector, score) samples,
//   - microsecond-scale batched inference (Figure 16),
//   - permutation feature importance measured as mean RMSE increase
//     (Figure 17).
//
// Training uses histogram (quantile-binned) splits so that the paper's
// 300k-sample training sets remain tractable.
package gbt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
)

// Options configures training. Zero fields select the defaults noted.
type Options struct {
	// Trees is the number of boosting stages (default 100, as the paper's
	// forest of 100 trees).
	Trees int
	// LearningRate shrinks each stage's contribution (default 0.1).
	LearningRate float64
	// MaxDepth limits tree depth (default 4).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 8).
	MinLeaf int
	// Bins is the number of histogram bins per feature (default 32).
	Bins int
	// Subsample is the per-tree row sampling fraction (default 1.0).
	Subsample float64
	// Seed drives row subsampling; training is deterministic per seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Trees == 0 {
		o.Trees = 100
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.1
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 4
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 8
	}
	if o.Bins == 0 {
		o.Bins = 32
	}
	if o.Subsample == 0 {
		o.Subsample = 1.0
	}
	return o
}

// Dataset is a feature matrix with regression targets. All rows must have
// the same width.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Node is one tree node in a flattened array representation.
type Node struct {
	// Feature is the split feature index; -1 marks a leaf.
	Feature int `json:"f"`
	// Threshold: rows with x[Feature] <= Threshold go left.
	Threshold float64 `json:"t"`
	// Left and Right index into the tree's node array.
	Left  int `json:"l"`
	Right int `json:"r"`
	// Value is the prediction at a leaf.
	Value float64 `json:"v"`
}

// Tree is one regression tree.
type Tree struct {
	Nodes []Node `json:"nodes"`
}

// predict walks the tree for one row.
func (t *Tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Forest is a trained gradient-boosted ensemble.
type Forest struct {
	Base         float64 `json:"base"`
	LearningRate float64 `json:"learning_rate"`
	NumFeatures  int     `json:"num_features"`
	Trees        []Tree  `json:"trees"`
}

// Predict returns the model output for one feature vector.
func (f *Forest) Predict(x []float64) float64 {
	out := f.Base
	for i := range f.Trees {
		out += f.LearningRate * f.Trees[i].predict(x)
	}
	return out
}

// PredictBatch fills out[i] with the prediction for xs[i]. The batched form
// is what TelaMalloc uses at a major backtrack: all candidate targets are
// scored in one call (§6.5).
func (f *Forest) PredictBatch(xs [][]float64, out []float64) {
	for i, x := range xs {
		out[i] = f.Predict(x)
	}
}

// Errors returned by Train.
var (
	ErrNoData    = errors.New("gbt: empty training set")
	ErrBadShapes = errors.New("gbt: inconsistent feature widths")
)

// Train fits a gradient boosted forest with squared loss: stage k fits a
// tree to the residuals of the running prediction.
func Train(ds Dataset, opts Options) (*Forest, error) {
	opts = opts.withDefaults()
	n := len(ds.X)
	if n == 0 || len(ds.Y) != n {
		return nil, ErrNoData
	}
	width := len(ds.X[0])
	for _, row := range ds.X {
		if len(row) != width {
			return nil, ErrBadShapes
		}
	}
	b := newBinner(ds.X, opts.Bins)
	var base float64
	for _, y := range ds.Y {
		base += y
	}
	base /= float64(n)

	forest := &Forest{Base: base, LearningRate: opts.LearningRate, NumFeatures: width}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	resid := make([]float64, n)
	rng := rand.New(rand.NewSource(opts.Seed))
	rows := make([]int, n)
	for stage := 0; stage < opts.Trees; stage++ {
		for i := range resid {
			resid[i] = ds.Y[i] - pred[i]
		}
		rows = rows[:0]
		if opts.Subsample >= 1.0 {
			for i := 0; i < n; i++ {
				rows = append(rows, i)
			}
		} else {
			for i := 0; i < n; i++ {
				if rng.Float64() < opts.Subsample {
					rows = append(rows, i)
				}
			}
			if len(rows) == 0 {
				rows = append(rows, rng.Intn(n))
			}
		}
		tree := growTree(b, resid, rows, opts)
		forest.Trees = append(forest.Trees, tree)
		for i := 0; i < n; i++ {
			pred[i] += opts.LearningRate * tree.predict(ds.X[i])
		}
	}
	return forest, nil
}

// binner holds the quantile-binned representation of the feature matrix.
type binner struct {
	x          [][]float64
	thresholds [][]float64 // per feature, sorted candidate thresholds
	bins       [][]uint8   // bins[row][feature]
}

func newBinner(x [][]float64, nbins int) *binner {
	if nbins > 255 {
		nbins = 255
	}
	width := len(x[0])
	b := &binner{x: x, thresholds: make([][]float64, width), bins: make([][]uint8, len(x))}
	vals := make([]float64, 0, len(x))
	for f := 0; f < width; f++ {
		vals = vals[:0]
		for _, row := range x {
			vals = append(vals, row[f])
		}
		sort.Float64s(vals)
		var thr []float64
		for q := 1; q < nbins; q++ {
			v := vals[q*(len(vals)-1)/nbins]
			if len(thr) == 0 || v > thr[len(thr)-1] {
				thr = append(thr, v)
			}
		}
		b.thresholds[f] = thr
	}
	for i, row := range x {
		b.bins[i] = make([]uint8, width)
		for f := 0; f < width; f++ {
			b.bins[i][f] = uint8(binOf(b.thresholds[f], row[f]))
		}
	}
	return b
}

// binOf returns the smallest i with v <= thr[i], or len(thr) if none.
func binOf(thr []float64, v float64) int {
	return sort.SearchFloat64s(thr, v) // thr[i] >= v — matches "v <= thr[i]"
}

// growTree builds one regression tree over the given rows against target.
func growTree(b *binner, target []float64, rows []int, opts Options) Tree {
	t := Tree{}
	var build func(rows []int, depth int) int
	build = func(rows []int, depth int) int {
		var sum float64
		for _, r := range rows {
			sum += target[r]
		}
		mean := sum / float64(len(rows))
		idx := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{Feature: -1, Value: mean})
		if depth >= opts.MaxDepth || len(rows) < 2*opts.MinLeaf {
			return idx
		}
		feat, bin, ok := bestSplit(b, target, rows, sum, opts.MinLeaf)
		if !ok {
			return idx
		}
		left := make([]int, 0, len(rows)/2)
		right := make([]int, 0, len(rows)/2)
		for _, r := range rows {
			if int(b.bins[r][feat]) <= bin {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		l := build(left, depth+1)
		r := build(right, depth+1)
		t.Nodes[idx] = Node{
			Feature:   feat,
			Threshold: b.thresholds[feat][bin],
			Left:      l,
			Right:     r,
			Value:     mean,
		}
		return idx
	}
	build(rows, 0)
	return t
}

// bestSplit scans histogram bins for the variance-reducing split with the
// highest gain. Returns ok=false when no split improves on the parent.
func bestSplit(b *binner, target []float64, rows []int, totalSum float64, minLeaf int) (feat, bin int, ok bool) {
	n := float64(len(rows))
	parentScore := totalSum * totalSum / n
	bestGain := 1e-12
	width := len(b.thresholds)
	var sums [256]float64
	var counts [256]int
	for f := 0; f < width; f++ {
		nbins := len(b.thresholds[f]) + 1
		if nbins < 2 {
			continue
		}
		for i := 0; i < nbins; i++ {
			sums[i], counts[i] = 0, 0
		}
		for _, r := range rows {
			bi := b.bins[r][f]
			sums[bi] += target[r]
			counts[bi]++
		}
		var leftSum float64
		leftCount := 0
		for s := 0; s < nbins-1; s++ {
			leftSum += sums[s]
			leftCount += counts[s]
			rightCount := len(rows) - leftCount
			if leftCount < minLeaf || rightCount < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			gain := leftSum*leftSum/float64(leftCount) + rightSum*rightSum/float64(rightCount) - parentScore
			if gain > bestGain {
				bestGain, feat, bin, ok = gain, f, s, true
			}
		}
	}
	return feat, bin, ok
}

// RMSE computes the model's root-mean-square error on the dataset.
func (f *Forest) RMSE(ds Dataset) float64 {
	if len(ds.X) == 0 {
		return 0
	}
	var ss float64
	for i, x := range ds.X {
		d := f.Predict(x) - ds.Y[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(ds.X)))
}

// PermutationImportance returns, per feature, the mean increase in RMSE
// when that feature's column is shuffled — the metric Figure 17 plots.
func PermutationImportance(f *Forest, ds Dataset, seed int64) []float64 {
	base := f.RMSE(ds)
	width := f.NumFeatures
	out := make([]float64, width)
	rng := rand.New(rand.NewSource(seed))
	n := len(ds.X)
	if n == 0 {
		return out
	}
	col := make([]float64, n)
	perm := make([]int, n)
	for feat := 0; feat < width; feat++ {
		for i, row := range ds.X {
			col[i] = row[feat]
		}
		copy(perm, rng.Perm(n))
		// Shuffle the column, measure, restore.
		for i, row := range ds.X {
			row[feat] = col[perm[i]]
		}
		out[feat] = f.RMSE(ds) - base
		for i, row := range ds.X {
			row[feat] = col[i]
		}
	}
	return out
}

// Save serialises the forest as JSON (the "baked into the allocator" model
// artefact of §6.5).
func (f *Forest) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(f)
}

// Load reads a forest saved with Save.
func Load(r io.Reader) (*Forest, error) {
	var f Forest
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("gbt: %w", err)
	}
	return &f, nil
}
