package gbt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// synth builds a dataset from a known function plus noise.
func synth(n int, seed int64, f func([]float64) float64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{}
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, f(x)+rng.NormFloat64()*0.05)
	}
	return ds
}

func TestTrainLearnsStepFunction(t *testing.T) {
	target := func(x []float64) float64 {
		if x[0] > 5 {
			return 10
		}
		return 0
	}
	ds := synth(2000, 1, target)
	forest, err := Train(ds, Options{Trees: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := forest.Predict([]float64{8, 1, 1}); math.Abs(got-10) > 1.5 {
		t.Errorf("Predict(high) = %g, want ~10", got)
	}
	if got := forest.Predict([]float64{2, 9, 9}); math.Abs(got) > 1.5 {
		t.Errorf("Predict(low) = %g, want ~0", got)
	}
}

func TestTrainLearnsInteraction(t *testing.T) {
	target := func(x []float64) float64 { return x[0] + 2*x[1] }
	ds := synth(4000, 2, target)
	forest, err := Train(ds, Options{Trees: 150, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	eval := synth(500, 3, target)
	if rmse := forest.RMSE(eval); rmse > 2.0 {
		t.Errorf("RMSE = %g, want < 2.0", rmse)
	}
	// Boosting must improve on the constant predictor.
	var mean, varsum float64
	for _, y := range eval.Y {
		mean += y
	}
	mean /= float64(len(eval.Y))
	for _, y := range eval.Y {
		varsum += (y - mean) * (y - mean)
	}
	baseline := math.Sqrt(varsum / float64(len(eval.Y)))
	if forest.RMSE(eval) > baseline/2 {
		t.Errorf("RMSE %g not clearly better than constant baseline %g", forest.RMSE(eval), baseline)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(Dataset{}, Options{}); err != ErrNoData {
		t.Errorf("empty: %v", err)
	}
	bad := Dataset{X: [][]float64{{1, 2}, {1}}, Y: []float64{1, 2}}
	if _, err := Train(bad, Options{}); err != ErrBadShapes {
		t.Errorf("ragged: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	ds := synth(500, 4, func(x []float64) float64 { return x[0] })
	a, _ := Train(ds, Options{Trees: 20, Seed: 7, Subsample: 0.8})
	b, _ := Train(ds, Options{Trees: 20, Seed: 7, Subsample: 0.8})
	probe := []float64{3, 3, 3}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("training is nondeterministic for identical seeds")
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	ds := synth(300, 5, func(x []float64) float64 { return x[1] })
	forest, _ := Train(ds, Options{Trees: 10})
	xs := ds.X[:50]
	out := make([]float64, len(xs))
	forest.PredictBatch(xs, out)
	for i, x := range xs {
		if out[i] != forest.Predict(x) {
			t.Fatalf("batch[%d] = %g != %g", i, out[i], forest.Predict(x))
		}
	}
}

func TestPermutationImportanceIdentifiesRelevantFeature(t *testing.T) {
	// Only feature 1 matters; its importance must dominate.
	ds := synth(3000, 6, func(x []float64) float64 { return 5 * x[1] })
	forest, _ := Train(ds, Options{Trees: 60})
	imp := PermutationImportance(forest, ds, 1)
	if len(imp) != 3 {
		t.Fatalf("importance width %d", len(imp))
	}
	if imp[1] <= imp[0] || imp[1] <= imp[2] {
		t.Errorf("importances %v: feature 1 should dominate", imp)
	}
	if imp[1] <= 0 {
		t.Errorf("relevant feature has non-positive importance %g", imp[1])
	}
}

func TestPermutationImportanceRestoresData(t *testing.T) {
	ds := synth(100, 7, func(x []float64) float64 { return x[0] })
	before := make([]float64, len(ds.X))
	for i := range ds.X {
		before[i] = ds.X[i][0]
	}
	forest, _ := Train(ds, Options{Trees: 5})
	PermutationImportance(forest, ds, 2)
	for i := range ds.X {
		if ds.X[i][0] != before[i] {
			t.Fatal("PermutationImportance corrupted the dataset")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := synth(400, 8, func(x []float64) float64 { return x[0] - x[2] })
	forest, _ := Train(ds, Options{Trees: 15})
	var buf bytes.Buffer
	if err := forest.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1, 2, 3}
	if loaded.Predict(probe) != forest.Predict(probe) {
		t.Error("round-tripped forest predicts differently")
	}
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Error("malformed model accepted")
	}
}

func TestConstantTarget(t *testing.T) {
	ds := Dataset{}
	for i := 0; i < 50; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, 42)
	}
	forest, err := Train(ds, Options{Trees: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := forest.Predict([]float64{25}); math.Abs(got-42) > 1e-9 {
		t.Errorf("constant target predicted as %g", got)
	}
}

func TestBinOf(t *testing.T) {
	thr := []float64{1, 3, 5}
	cases := []struct {
		v    float64
		want int
	}{{0.5, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {9, 3}}
	for _, c := range cases {
		if got := binOf(thr, c.v); got != c.want {
			t.Errorf("binOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}
