package gbt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstantFeatureIsNeverSplit(t *testing.T) {
	// Feature 0 is constant; the model must still learn from feature 1.
	ds := Dataset{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := []float64{5, rng.Float64() * 10}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, x[1]*3)
	}
	forest, err := Train(ds, Options{Trees: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range forest.Trees {
		for _, n := range tree.Nodes {
			if n.Feature == 0 {
				t.Fatal("split on a constant feature")
			}
		}
	}
	if got := forest.Predict([]float64{5, 8}); math.Abs(got-24) > 3 {
		t.Errorf("Predict = %g, want ~24", got)
	}
}

func TestSingleSample(t *testing.T) {
	ds := Dataset{X: [][]float64{{1}}, Y: []float64{7}}
	forest, err := Train(ds, Options{Trees: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := forest.Predict([]float64{1}); math.Abs(got-7) > 1e-9 {
		t.Errorf("Predict = %g, want 7", got)
	}
}

func TestSubsampleStillLearns(t *testing.T) {
	ds := synth(3000, 10, func(x []float64) float64 { return 4 * x[0] })
	forest, err := Train(ds, Options{Trees: 80, Subsample: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eval := synth(300, 11, func(x []float64) float64 { return 4 * x[0] })
	if rmse := forest.RMSE(eval); rmse > 4 {
		t.Errorf("subsampled RMSE = %g, too high", rmse)
	}
}

func TestMoreTreesNeverHurtTrainingFit(t *testing.T) {
	// Property of gradient boosting with squared loss and a fixed learning
	// rate: training RMSE is non-increasing in ensemble size (up to small
	// numerical noise).
	ds := synth(600, 12, func(x []float64) float64 { return x[0] - 2*x[1] })
	var prev float64 = math.Inf(1)
	for _, n := range []int{5, 20, 60} {
		forest, err := Train(ds, Options{Trees: n})
		if err != nil {
			t.Fatal(err)
		}
		rmse := forest.RMSE(ds)
		if rmse > prev+1e-6 {
			t.Errorf("training RMSE rose from %g to %g at %d trees", prev, rmse, n)
		}
		prev = rmse
	}
}

func TestPredictionsAreFiniteProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := Dataset{}
		n := 10 + rng.Intn(200)
		for i := 0; i < n; i++ {
			ds.X = append(ds.X, []float64{rng.NormFloat64(), rng.NormFloat64()})
			ds.Y = append(ds.Y, rng.NormFloat64()*100)
		}
		forest, err := Train(ds, Options{Trees: 10})
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			v := forest.Predict([]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMinLeafRespected(t *testing.T) {
	ds := synth(200, 13, func(x []float64) float64 { return x[0] })
	forest, err := Train(ds, Options{Trees: 5, MinLeaf: 50})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 50 over 200 samples, trees can have at most 4 leaves =
	// 7 nodes.
	for _, tree := range forest.Trees {
		if len(tree.Nodes) > 7 {
			t.Errorf("tree with %d nodes violates MinLeaf bound", len(tree.Nodes))
		}
	}
}
