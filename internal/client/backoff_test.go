package client

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The anti-herd contract from server.OverloadError.RetryAfter: the server
// hands every shed caller the SAME floor, so the client must (a) never wait
// less than the floor and (b) spread a fleet's retries so they do not
// re-arrive in lockstep.
func TestDelayRespectsFloorAndSpreads(t *testing.T) {
	const (
		floor = 25 * time.Millisecond
		base  = 4 * time.Millisecond
		max   = 64 * time.Millisecond
	)
	j := newJitter(42)
	seen := map[time.Duration]int{}
	for i := 0; i < 400; i++ {
		d := j.delay(2, base, max, floor) // backoff window = base<<2 = 16ms
		if d < floor {
			t.Fatalf("delay %v below the server floor %v", d, floor)
		}
		if d >= floor+16*time.Millisecond {
			t.Fatalf("delay %v outside the jitter window [floor, floor+16ms)", d)
		}
		seen[d]++
	}
	// Full jitter over a 16ms window: a fleet of 400 must not collapse
	// onto a handful of instants. (Distinct nanosecond durations — the
	// spread satellite: synchronized floors must not herd.)
	if len(seen) < 100 {
		t.Errorf("400 delays collapsed onto %d distinct values; jitter is not spreading retries", len(seen))
	}
}

func TestDelayGrowsAndCaps(t *testing.T) {
	j := newJitter(7)
	const base, max = time.Millisecond, 8 * time.Millisecond
	// Attempt 0 jitters within [0, base).
	for i := 0; i < 50; i++ {
		if d := j.delay(0, base, max, 0); d >= base {
			t.Fatalf("attempt 0 delay %v ≥ base %v", d, base)
		}
	}
	// A huge attempt number must cap at max, not overflow.
	for i := 0; i < 50; i++ {
		if d := j.delay(1000, base, max, 0); d >= max {
			t.Fatalf("capped delay %v ≥ max %v", d, max)
		}
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleep on cancelled ctx: %v, want context.Canceled", err)
	}
	start := time.Now()
	if err := sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Error("1ms sleep took over a second")
	}
}
