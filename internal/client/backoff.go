package client

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// jitter is the client's only source of retry delays. Every wait in this
// package goes through delay+sleep — the lint gate bans bare time.Sleep in
// internal/client precisely so no retry loop can quietly devolve into a
// fixed-interval herd.
type jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitter(seed int64) *jitter {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &jitter{rng: rand.New(rand.NewSource(seed))}
}

// delay prices the wait before retry number attempt (0-based): the server's
// floor plus a full-jitter exponential term, uniform in [0, min(max,
// base<<attempt)). The floor is respected exactly — the server priced it
// from real queue state — while the jitter term spreads a fleet that was
// shed together, so their retries do not re-arrive together
// (server.OverloadError.RetryAfter documents why the floor alone herds).
func (j *jitter) delay(attempt int, base, max, floor time.Duration) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	backoff := max
	// 1<<attempt overflows quickly; past the cap the shift is irrelevant.
	if attempt < 30 {
		if b := base << uint(attempt); b > 0 && b < max {
			backoff = b
		}
	}
	j.mu.Lock()
	u := time.Duration(j.rng.Int63n(int64(backoff)))
	j.mu.Unlock()
	return floor + u
}

// sleep waits d, honoring ctx. Returns the context's cause if it ends
// first. (No time.Sleep: an abandoned retry must release its goroutine the
// moment the caller gives up.)
func sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return context.Cause(ctx)
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}
