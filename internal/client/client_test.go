package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"telamalloc/internal/wire"
)

// fake is a scripted daemon speaking the v1 line protocol, so tests control
// exactly when replies arrive, are withheld, or connections die.
type fake struct {
	t  *testing.T
	ln net.Listener

	mu    sync.Mutex
	reqs  []wire.Request
	times []time.Time
}

func newFake(t *testing.T) *fake {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fake{t: t, ln: ln}
	t.Cleanup(func() { ln.Close() })
	return f
}

func (f *fake) addr() string { return f.ln.Addr().String() }

// serve accepts connections and runs handler per connection (sequentially,
// so scripts stay deterministic) until the listener closes.
func (f *fake) serve(handler func(conn net.Conn, sc *bufio.Scanner)) {
	go func() {
		for {
			conn, err := f.ln.Accept()
			if err != nil {
				return
			}
			sc := bufio.NewScanner(conn)
			handler(conn, sc)
			conn.Close()
		}
	}()
}

// readReq scans one request line, recording it and its arrival time.
func (f *fake) readReq(sc *bufio.Scanner) (wire.Request, bool) {
	if !sc.Scan() {
		return wire.Request{}, false
	}
	var req wire.Request
	if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
		f.t.Errorf("fake: bad request line %q: %v", sc.Text(), err)
		return wire.Request{}, false
	}
	f.mu.Lock()
	f.reqs = append(f.reqs, req)
	f.times = append(f.times, time.Now())
	f.mu.Unlock()
	return req, true
}

func (f *fake) requests() []wire.Request {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]wire.Request(nil), f.reqs...)
}

func (f *fake) arrivals() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Time(nil), f.times...)
}

func reply(conn net.Conn, resp wire.Response) {
	resp.V = wire.Version
	b, _ := json.Marshal(resp)
	conn.Write(append(b, '\n'))
}

func solvedFor(req wire.Request) wire.Response {
	return wire.Response{ID: req.ID, Outcome: wire.OutcomeSolved, Winner: "greedy", Offsets: []int64{0, 4}}
}

func mustDial(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

var oneBuffer = []wire.Buffer{{Start: 0, End: 4, Size: 4}}

func TestSubmitSolved(t *testing.T) {
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			req, ok := f.readReq(sc)
			if !ok {
				return
			}
			reply(conn, solvedFor(req))
		}
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 1})

	resp, err := c.Submit(context.Background(), Request{ID: "r1", Memory: 8, Buffers: oneBuffer})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != wire.OutcomeSolved || resp.ID != "r1" || len(resp.Offsets) != 2 {
		t.Errorf("report: %+v", resp)
	}
	reqs := f.requests()
	if len(reqs) != 1 || reqs[0].V != wire.Version || reqs[0].ID != "r1" {
		t.Errorf("daemon saw requests %+v, want one v1 request with id r1", reqs)
	}

	// A second request with a generated id reuses the connection.
	if _, err := c.Submit(context.Background(), Request{Memory: 8, Buffers: oneBuffer}); err != nil {
		t.Fatal(err)
	}
	if got := c.Dials(); got != 1 {
		t.Errorf("Dials = %d, want 1 (connection must be reused)", got)
	}
	if reqs := f.requests(); len(reqs) != 2 || reqs[1].ID == "" {
		t.Errorf("second request must carry a generated id: %+v", reqs)
	}
}

// The shed→retry loop must respect the server's floor on every retry and
// eventually serve the solve.
func TestShedRetryHonorsFloor(t *testing.T) {
	const floorMS = 40
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			req, ok := f.readReq(sc)
			if !ok {
				return
			}
			if len(f.requests()) <= 2 {
				reply(conn, wire.Response{ID: req.ID, Outcome: wire.OutcomeShed,
					ErrorCode: wire.CodeOverloaded, RetryAfterMS: floorMS, Error: "overloaded"})
				continue
			}
			reply(conn, solvedFor(req))
		}
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 7, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond})

	resp, err := c.Submit(context.Background(), Request{ID: "r1", Memory: 8, Buffers: oneBuffer})
	if err != nil || resp.Outcome != wire.OutcomeSolved {
		t.Fatalf("resp %+v err %v", resp, err)
	}
	at := f.arrivals()
	if len(at) != 3 {
		t.Fatalf("daemon saw %d requests, want 3 (2 sheds + 1 solve)", len(at))
	}
	for i := 1; i < len(at); i++ {
		if gap := at[i].Sub(at[i-1]); gap < floorMS*time.Millisecond {
			t.Errorf("retry %d arrived %v after the shed, violating the %dms floor", i, gap, floorMS)
		}
	}
}

func TestRetriesExhaustedIsTyped(t *testing.T) {
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			req, ok := f.readReq(sc)
			if !ok {
				return
			}
			reply(conn, wire.Response{ID: req.ID, Outcome: wire.OutcomeShed,
				ErrorCode: wire.CodeOverloaded, RetryAfterMS: 1, Error: "overloaded"})
		}
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 3, MaxAttempts: 3,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	_, err := c.Submit(context.Background(), Request{Memory: 8, Buffers: oneBuffer})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if got := len(f.requests()); got != 3 {
		t.Errorf("daemon saw %d attempts, want exactly MaxAttempts=3", got)
	}
}

// A connection that dies after the request was fully written must surface
// as the typed ambiguous outcome — never a silent retry, never a hang.
func TestAmbiguousOnConnDropAfterWrite(t *testing.T) {
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		f.readReq(sc) // swallow the request, reply with nothing: conn closes on return
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 5})

	_, err := c.Submit(context.Background(), Request{ID: "lost", Memory: 8, Buffers: oneBuffer})
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v, want ErrAmbiguous", err)
	}
	var amb *AmbiguousError
	if !errors.As(err, &amb) || amb.ID != "lost" || amb.Cause == nil {
		t.Errorf("ambiguous error detail: %#v", err)
	}
	if got := len(f.requests()); got != 1 {
		t.Errorf("daemon saw %d requests, want 1 — an ambiguous outcome must NOT be auto-retried", got)
	}
}

// After the daemon restarts, the next Submit must transparently reconnect.
func TestReconnectAfterRestart(t *testing.T) {
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		req, ok := f.readReq(sc)
		if !ok {
			return
		}
		reply(conn, solvedFor(req)) // one request per connection, then "crash"
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 9, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})

	if _, err := c.Submit(context.Background(), Request{ID: "a", Memory: 8, Buffers: oneBuffer}); err != nil {
		t.Fatal(err)
	}
	// Wait until the client has observed the connection loss, so the next
	// Submit deterministically takes the redial path.
	c.mu.Lock()
	cn := c.cur
	c.mu.Unlock()
	select {
	case <-cn.broken:
	case <-time.After(5 * time.Second):
		t.Fatal("client never noticed the daemon closing the connection")
	}

	resp, err := c.Submit(context.Background(), Request{ID: "b", Memory: 8, Buffers: oneBuffer})
	if err != nil || resp.Outcome != wire.OutcomeSolved {
		t.Fatalf("post-restart submit: resp %+v err %v", resp, err)
	}
	if got := c.Dials(); got != 2 {
		t.Errorf("Dials = %d, want 2 (one reconnect)", got)
	}
}

// A draining daemon answers typed rejected/draining; the client must treat
// it as retryable and succeed against the restarted daemon.
func TestDrainingRejectionRetries(t *testing.T) {
	first := true
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		req, ok := f.readReq(sc)
		if !ok {
			return
		}
		if first {
			first = false
			reply(conn, wire.Response{ID: req.ID, Outcome: wire.OutcomeRejected,
				ErrorCode: wire.CodeDraining, Error: "draining"})
			return // and the connection closes, like a real shutdown
		}
		reply(conn, solvedFor(req))
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 11, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})

	resp, err := c.Submit(context.Background(), Request{Memory: 8, Buffers: oneBuffer})
	if err != nil || resp.Outcome != wire.OutcomeSolved {
		t.Fatalf("resp %+v err %v", resp, err)
	}
	if got := len(f.requests()); got < 2 {
		t.Errorf("daemon saw %d requests, want ≥ 2 (rejected then retried)", got)
	}
}

// The caller's context deadline must reach the daemon as timeout_ms, and
// an explicit Request.Timeout must only shrink it.
func TestDeadlinePropagation(t *testing.T) {
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			req, ok := f.readReq(sc)
			if !ok {
				return
			}
			reply(conn, solvedFor(req))
		}
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 13})

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(ctx, Request{ID: "d1", Memory: 8, Buffers: oneBuffer}); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel2()
	if _, err := c.Submit(ctx2, Request{ID: "d2", Memory: 8, Buffers: oneBuffer, Timeout: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	reqs := f.requests()
	if len(reqs) != 2 {
		t.Fatalf("daemon saw %d requests, want 2", len(reqs))
	}
	if ms := reqs[0].TimeoutMS; ms <= 0 || ms > 300 {
		t.Errorf("d1 timeout_ms = %d, want in (0, 300]", ms)
	}
	if ms := reqs[1].TimeoutMS; ms <= 0 || ms > 50 {
		t.Errorf("d2 timeout_ms = %d, want in (0, 50] (request timeout shrinks the pot)", ms)
	}
}

func TestDuplicateInFlightID(t *testing.T) {
	release := make(chan struct{})
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			req, ok := f.readReq(sc)
			if !ok {
				return
			}
			if req.ID == "dup" && len(f.requests()) == 1 {
				<-release // park the first "dup" unanswered
			}
			reply(conn, solvedFor(req))
		}
	})
	defer close(release)
	c := mustDial(t, Config{Addr: f.addr(), Seed: 15})

	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), Request{ID: "dup", Memory: 8, Buffers: oneBuffer})
		firstDone <- err
	}()
	// Wait for the first request to be in flight on the wire.
	deadline := time.Now().Add(5 * time.Second)
	for len(f.requests()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the daemon")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := c.Submit(context.Background(), Request{ID: "dup", Memory: 8, Buffers: oneBuffer})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("second in-flight submit with same id: err = %v, want ErrDuplicateID", err)
	}
}

func TestSubmitAfterCloseAndDialFailure(t *testing.T) {
	f := newFake(t)
	c := mustDial(t, Config{Addr: f.addr(), Seed: 17, MaxAttempts: 2,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	c.Close()
	if _, err := c.Submit(context.Background(), Request{Memory: 8, Buffers: oneBuffer}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}

	// A dead address is a retryable condition that must exhaust typed, not
	// hang or crash.
	f.ln.Close()
	c2 := mustDial(t, Config{Addr: f.addr(), Seed: 19, MaxAttempts: 2,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	_, err := c2.Submit(context.Background(), Request{Memory: 8, Buffers: oneBuffer})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("dead daemon: err = %v, want ErrRetriesExhausted", err)
	}
}

// The exhausted-retries error must expose the LAST attempt's cause through
// the errors.Is/As chain — "retries exhausted" alone tells an operator
// nothing about what kept failing.
func TestRetriesExhaustedWrapsLastCause(t *testing.T) {
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			req, ok := f.readReq(sc)
			if !ok {
				return
			}
			reply(conn, wire.Response{ID: req.ID, Outcome: wire.OutcomeShed,
				ErrorCode: wire.CodeOverloaded, RetryAfterMS: 1, Error: "queue full (depth 7)"})
		}
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 21, MaxAttempts: 2,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	_, err := c.Submit(context.Background(), Request{Memory: 8, Buffers: oneBuffer})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	var re *retryableError
	if !errors.As(err, &re) {
		t.Fatalf("last attempt's typed cause not in the chain: %v", err)
	}
	if !strings.Contains(err.Error(), "queue full (depth 7)") {
		t.Errorf("server's shed message lost from the chain: %v", err)
	}

	// Same contract when the retryable condition is a failed dial: the net
	// error must survive in the chain.
	f.ln.Close()
	c2 := mustDial(t, Config{Addr: f.addr(), Seed: 23, MaxAttempts: 2,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	_, err = c2.Submit(context.Background(), Request{Memory: 8, Buffers: oneBuffer})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("dead daemon: err = %v, want ErrRetriesExhausted", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		t.Errorf("dial failure's net.Error not in the chain: %v", err)
	}
}

// Backoff sleeps must abort the moment the caller's context ends — an
// abandoned retry may not park its goroutine for the full delay.
func TestBackoffSleepAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sleep(ctx, time.Hour)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sleep held its goroutine %v after cancel", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("sleep returned %v, want the context's cause", err)
	}
	// An already-dead context never sleeps at all.
	if err := sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("sleep on dead context returned %v", err)
	}

	// End to end: a server-priced floor far beyond the caller's patience
	// must not delay Submit's return past the cancel.
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			req, ok := f.readReq(sc)
			if !ok {
				return
			}
			reply(conn, wire.Response{ID: req.ID, Outcome: wire.OutcomeShed,
				ErrorCode: wire.CodeOverloaded, RetryAfterMS: 3_600_000, Error: "overloaded"})
		}
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 25})
	sctx, scancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer scancel()
	start = time.Now()
	_, err = c.Submit(sctx, Request{Memory: 8, Buffers: oneBuffer})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Submit sat in backoff %v after its context expired", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled-in-backoff Submit returned %v, want the context's cause", err)
	}
}

// Priority and tenant must reach the daemon verbatim on the wire, and be
// absent (not empty strings) when unset.
func TestPriorityAndTenantForwarded(t *testing.T) {
	var lines [][]byte
	var mu sync.Mutex
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			if !sc.Scan() {
				return
			}
			mu.Lock()
			lines = append(lines, append([]byte(nil), sc.Bytes()...))
			mu.Unlock()
			var req wire.Request
			if err := json.Unmarshal(lines[len(lines)-1], &req); err != nil {
				f.t.Errorf("bad line: %v", err)
				return
			}
			reply(conn, solvedFor(req))
		}
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 27})

	if _, err := c.Submit(context.Background(), Request{ID: "p1", Memory: 8, Buffers: oneBuffer,
		Priority: "interactive", Tenant: "team-a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), Request{ID: "p2", Memory: 8, Buffers: oneBuffer}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("daemon saw %d lines, want 2", len(lines))
	}
	var r1 wire.Request
	json.Unmarshal(lines[0], &r1)
	if r1.Priority != "interactive" || r1.Tenant != "team-a" {
		t.Errorf("fields did not reach the wire: %s", lines[0])
	}
	for _, key := range []string{"priority", "tenant"} {
		if strings.Contains(string(lines[1]), `"`+key+`"`) {
			t.Errorf("unset %s serialised onto the wire (breaks old daemons expecting omitted optionals): %s", key, lines[1])
		}
	}
}

// A tenant_overloaded shed is retryable with the server's floor — the
// daemon as a whole may be fine, only this tenant's bucket is empty.
func TestTenantOverloadedRetries(t *testing.T) {
	const floorMS = 30
	f := newFake(t)
	f.serve(func(conn net.Conn, sc *bufio.Scanner) {
		for {
			req, ok := f.readReq(sc)
			if !ok {
				return
			}
			if len(f.requests()) == 1 {
				reply(conn, wire.Response{ID: req.ID, Outcome: wire.OutcomeShed,
					ErrorCode: wire.CodeTenantOverloaded, RetryAfterMS: floorMS, Error: "tenant over quota"})
				continue
			}
			reply(conn, solvedFor(req))
		}
	})
	c := mustDial(t, Config{Addr: f.addr(), Seed: 29, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	resp, err := c.Submit(context.Background(), Request{Memory: 8, Buffers: oneBuffer, Tenant: "hog"})
	if err != nil || resp.Outcome != wire.OutcomeSolved {
		t.Fatalf("resp %+v err %v", resp, err)
	}
	at := f.arrivals()
	if len(at) != 2 {
		t.Fatalf("daemon saw %d requests, want 2", len(at))
	}
	if gap := at[1].Sub(at[0]); gap < floorMS*time.Millisecond {
		t.Errorf("retry arrived %v after the tenant shed, violating the %dms floor", gap, floorMS)
	}
}
