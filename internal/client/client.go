// Package client is the resilient client for the telamallocd line protocol
// (internal/wire, DESIGN.md §12): the piece a production compiler links so
// that a shed, a restart, or a lost TCP connection becomes a retry or a
// typed error instead of a user-visible compile failure.
//
// The contract is exactly-once terminal outcomes: every Submit call ends in
// precisely one of
//
//   - a wire report (solved, degraded, failed, cancelled, or a permanent
//     rejection such as bad_request);
//   - a typed retryable-condition error after the retry budget is spent
//     (ErrRetriesExhausted, wrapping the last cause);
//   - a typed *AmbiguousError, when the request had been fully written but
//     the connection died (or the caller gave up) before the reply arrived
//     — the solve may or may not have executed, and the client refuses to
//     guess.
//
// Submit never silently resends a request that might already have been
// received: only requests that provably never formed a complete line on the
// wire are retried automatically. Allocation is pure, so a caller that can
// tolerate duplicate solves may retry an ambiguous outcome itself; the
// client keeps that decision above the transport where it belongs.
//
// Retries (shed requests, refused dials, draining daemons) back off
// exponentially with full jitter, honoring the server's retry_after_ms as a
// floor: wait = floor + uniform[0, min(MaxBackoff, BaseBackoff<<attempt)).
// The caller's context deadline propagates into each attempt's wire
// timeout_ms, so the server stops working on an answer nobody is waiting
// for.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"telamalloc/internal/wire"
)

// Report is the terminal wire report a successful Submit returns.
type Report = wire.Response

// Request is one allocation request. ID is optional; when empty the client
// generates one. IDs must be unique among a client's in-flight requests —
// the line protocol correlates replies by id.
type Request struct {
	ID       string
	Name     string
	Memory   int64
	Buffers  []wire.Buffer
	MaxSteps int64
	// Timeout caps the server-side budget for this request. The caller's
	// context deadline, when sooner, shrinks it further at each attempt.
	Timeout time.Duration
	// Priority selects the daemon's admission class: "interactive",
	// "batch", or "background" (empty = batch). Unknown values are
	// rejected by the daemon with bad_request — a permanent error.
	Priority string
	// Tenant attributes the request to a fairness domain for the daemon's
	// per-tenant quotas. A shed priced against this tenant's own quota
	// (error_code tenant_overloaded) is retried like any other shed,
	// honouring the tenant-specific retry_after_ms floor — the floor is
	// what keeps one throttled tenant from hammering the daemon while
	// other tenants' traffic flows.
	Tenant string
}

// Config tunes a Client. Only Addr is required.
type Config struct {
	// Addr is the daemon's TCP address.
	Addr string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds each request write (default 10s). A write that
	// times out part-way is retried safely: an incomplete line is never
	// parsed by the daemon.
	WriteTimeout time.Duration
	// BaseBackoff and MaxBackoff shape the jittered exponential backoff
	// (defaults 10ms and 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds Submit's total attempts across sheds, redials,
	// and reconnects (default 8; negative = retry until the context
	// ends).
	MaxAttempts int
	// Seed makes the jitter deterministic for tests (0 = time-seeded).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	return c
}

// Typed terminal errors.
var (
	// ErrClosed reports Submit on a closed client.
	ErrClosed = errors.New("client: closed")
	// ErrAmbiguous is wrapped by *AmbiguousError: the request was fully
	// written but no reply arrived. The solve may have executed.
	ErrAmbiguous = errors.New("client: ambiguous outcome: request may have executed, reply lost")
	// ErrRetriesExhausted reports that MaxAttempts retryable failures
	// (sheds, refused dials, draining daemons) occurred in a row; it
	// wraps the last cause.
	ErrRetriesExhausted = errors.New("client: retries exhausted")
	// ErrDuplicateID reports a Submit whose ID collides with a request
	// still in flight on the same connection.
	ErrDuplicateID = errors.New("client: duplicate in-flight request id")
)

// AmbiguousError is the typed may-have-executed outcome. It wraps both
// ErrAmbiguous and the transport-level cause, so errors.Is works against
// either.
type AmbiguousError struct {
	// ID is the wire id the lost reply would have carried.
	ID string
	// Cause is what ended the wait: the connection error or the caller's
	// context cause.
	Cause error
}

func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("%v (id %q): %v", ErrAmbiguous, e.ID, e.Cause)
}

func (e *AmbiguousError) Unwrap() []error { return []error{ErrAmbiguous, e.Cause} }

// maxLine mirrors the daemon's report-line cap.
const maxLine = 1 << 26

// netConn is one live connection: a writer (serialised by wmu), a reader
// goroutine demultiplexing reports by id, and a broken latch every pending
// Submit watches.
type netConn struct {
	nc  net.Conn
	wmu sync.Mutex // serialises request writes

	pmu     sync.Mutex
	pending map[string]chan wire.Response

	broken     chan struct{}
	brokenOnce sync.Once
	err        error // set before broken closes
}

// fail latches the connection as broken. Every pending and future waiter
// observes it; the underlying conn is closed so the reader unblocks too.
func (cn *netConn) fail(err error) {
	cn.brokenOnce.Do(func() {
		cn.err = err
		close(cn.broken)
		cn.nc.Close()
	})
}

// register claims id on this connection. False means a duplicate in-flight
// id.
func (cn *netConn) register(id string) (chan wire.Response, bool) {
	ch := make(chan wire.Response, 1)
	cn.pmu.Lock()
	defer cn.pmu.Unlock()
	if _, dup := cn.pending[id]; dup {
		return nil, false
	}
	cn.pending[id] = ch
	return ch, true
}

func (cn *netConn) unregister(id string) {
	cn.pmu.Lock()
	delete(cn.pending, id)
	cn.pmu.Unlock()
}

// readLoop demultiplexes report lines to waiting Submits. Reports without
// an id are connection-level events (idle timeout, shutdown, oversized
// line); they explain the EOF that follows, so they become the broken
// latch's cause.
func (c *Client) readLoop(cn *netConn) {
	sc := bufio.NewScanner(cn.nc)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	var connReport *wire.Response
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var resp wire.Response
		if err := json.Unmarshal(line, &resp); err != nil {
			continue // not ours to interpret; correlation is impossible
		}
		if resp.ID == "" {
			r := resp
			connReport = &r
			continue
		}
		cn.pmu.Lock()
		ch := cn.pending[resp.ID]
		delete(cn.pending, resp.ID)
		cn.pmu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
	err := sc.Err()
	switch {
	case connReport != nil:
		cause := fmt.Errorf("client: connection closed by daemon: %s (%s)", connReport.ErrorCode, connReport.Error)
		if err != nil {
			cause = fmt.Errorf("%v; read: %w", cause, err)
		}
		cn.fail(cause)
	case err != nil:
		cn.fail(fmt.Errorf("client: connection lost: %w", err))
	default:
		cn.fail(errors.New("client: connection closed by daemon"))
	}
}

// Client is a resilient telamallocd client. Safe for concurrent use; all
// Submits multiplex over one connection, re-established on demand.
type Client struct {
	cfg Config
	jit *jitter

	mu     sync.Mutex
	cur    *netConn
	closed bool

	seq   atomic.Uint64
	dials atomic.Int64
}

// Dial builds a client for addr. The first connection is established
// lazily by Submit — a daemon that is down at Dial time is a retryable
// condition, not a constructor failure; that is the point of this package.
func Dial(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("client: Config.Addr is required")
	}
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, jit: newJitter(cfg.Seed)}, nil
}

// Close tears down the current connection. In-flight Submits end with an
// *AmbiguousError (their replies can no longer arrive); later Submits
// return ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	cn := c.cur
	c.cur = nil
	c.mu.Unlock()
	if cn != nil {
		cn.fail(ErrClosed)
	}
	return nil
}

// Dials counts connection attempts that succeeded (diagnostic; tests use
// it to assert reconnection happened).
func (c *Client) Dials() int64 { return c.dials.Load() }

// getConn returns the live connection, dialing a fresh one if the previous
// broke.
func (c *Client) getConn() (*netConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.cur != nil {
		select {
		case <-c.cur.broken:
			c.cur = nil // fall through to redial
		default:
			return c.cur, nil
		}
	}
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.cfg.Addr, err)
	}
	cn := &netConn{nc: nc, pending: make(map[string]chan wire.Response), broken: make(chan struct{})}
	c.cur = cn
	c.dials.Add(1)
	go c.readLoop(cn)
	return cn, nil
}

// Submit runs one request to its single terminal outcome: a wire report, a
// typed *AmbiguousError, ErrRetriesExhausted, or the context's cause. See
// the package comment for the exact contract.
func (c *Client) Submit(ctx context.Context, req Request) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	id := req.ID
	if id == "" {
		id = "c" + strconv.FormatUint(c.seq.Add(1), 10)
	}
	var lastErr error
	for attempt := 0; c.cfg.MaxAttempts < 0 || attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, c.ctxError(ctx, lastErr)
		}
		resp, floor, err := c.attempt(ctx, req, id)
		switch {
		case err == nil && resp != nil:
			return resp, nil
		case err != nil && !retryable(err):
			return nil, err
		}
		lastErr = err
		if serr := sleep(ctx, c.jit.delay(attempt, c.cfg.BaseBackoff, c.cfg.MaxBackoff, floor)); serr != nil {
			return nil, c.ctxError(ctx, lastErr)
		}
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, c.cfg.MaxAttempts, lastErr)
}

// ctxError is the terminal error for a context that ended between
// attempts: plain context cause (nothing of this request can be in flight
// — attempt() already settled any written request).
func (c *Client) ctxError(ctx context.Context, lastErr error) error {
	cause := context.Cause(ctx)
	if lastErr != nil {
		return fmt.Errorf("%w (last attempt: %v)", cause, lastErr)
	}
	return cause
}

// retryableError marks transient attempt failures (shed, refused dial,
// draining daemon, connection broken before the request was written).
type retryableError struct{ cause error }

func (e *retryableError) Error() string { return e.cause.Error() }
func (e *retryableError) Unwrap() error { return e.cause }

func retryable(err error) bool {
	var re *retryableError
	return errors.As(err, &re)
}

// attempt makes one wire attempt. Returns exactly one of: a terminal
// report; a *retryableError (with a retry floor when the server priced
// one); or a terminal error (ambiguous, duplicate id, closed).
func (c *Client) attempt(ctx context.Context, req Request, id string) (resp *Report, floor time.Duration, err error) {
	cn, err := c.getConn()
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return nil, 0, err
		}
		return nil, 0, &retryableError{cause: err}
	}

	wreq := wire.Request{
		V:        wire.Version,
		ID:       id,
		Name:     req.Name,
		Memory:   req.Memory,
		Buffers:  req.Buffers,
		MaxSteps: req.MaxSteps,
		Priority: req.Priority,
		Tenant:   req.Tenant,
	}
	// Deadline propagation: the effective server-side pot is the caller's
	// request timeout shrunk by the context's remaining time, recomputed
	// per attempt — a retry after backoff asks for less, never more.
	budget := req.Timeout
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, 0, c.ctxError(ctx, nil)
		}
		if budget == 0 || remaining < budget {
			budget = remaining
		}
	}
	if budget > 0 {
		ms := budget.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		wreq.TimeoutMS = ms
	}

	line, err := json.Marshal(wreq)
	if err != nil {
		return nil, 0, fmt.Errorf("client: marshal request: %w", err)
	}
	line = append(line, '\n')

	ch, ok := cn.register(id)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}

	cn.wmu.Lock()
	cn.nc.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	n, werr := cn.nc.Write(line)
	cn.wmu.Unlock()
	if werr != nil {
		cn.unregister(id)
		cn.fail(fmt.Errorf("client: write: %w", werr))
		if n < len(line) {
			// The daemon never saw a complete line: it cannot have parsed
			// this request (a truncated line is rejected, not executed), so
			// resending is safe.
			return nil, 0, &retryableError{cause: fmt.Errorf("client: connection lost before request was sent: %w", werr)}
		}
		// Every byte including the newline was handed to the kernel: the
		// daemon may have executed the request. Refuse to guess.
		return nil, 0, &AmbiguousError{ID: id, Cause: werr}
	}

	select {
	case r := <-ch:
		return classify(&r)
	case <-cn.broken:
		// Fully written, reply never arrived: the defining ambiguous case.
		return nil, 0, &AmbiguousError{ID: id, Cause: cn.err}
	case <-ctx.Done():
		cn.unregister(id)
		// The request is on the wire and the caller is gone. The reply (if
		// any) will be discarded by the read loop; the outcome is ambiguous
		// by construction.
		return nil, 0, &AmbiguousError{ID: id, Cause: context.Cause(ctx)}
	}
}

// classify sorts a terminal report into served / retryable.
func classify(r *Report) (*Report, time.Duration, error) {
	switch {
	case r.Outcome == wire.OutcomeShed:
		floor := time.Duration(r.RetryAfterMS * float64(time.Millisecond))
		return nil, floor, &retryableError{cause: fmt.Errorf("client: shed by server: %s", r.Error)}
	case r.Outcome == wire.OutcomeRejected && wire.RetryableCode(r.ErrorCode):
		return nil, 0, &retryableError{cause: fmt.Errorf("client: rejected (%s): %s", r.ErrorCode, r.Error)}
	}
	return r, 0, nil
}
