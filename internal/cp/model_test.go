package cp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"telamalloc/internal/buffers"
)

func twoOverlapping(mem int64) *buffers.Problem {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
		},
		Memory: mem,
	}
	p.Normalize()
	return p
}

func TestInitialBounds(t *testing.T) {
	p := twoOverlapping(16)
	m := NewModel(p, nil)
	for i := 0; i < 2; i++ {
		if m.MinPos(i) != 0 || m.MaxPos(i) != 12 {
			t.Errorf("buffer %d bounds = [%d, %d], want [0, 12]", i, m.MinPos(i), m.MaxPos(i))
		}
	}
	if m.NumPairs() != 1 {
		t.Errorf("NumPairs = %d, want 1", m.NumPairs())
	}
}

func TestPlacePropagatesOrdering(t *testing.T) {
	// Memory 8, two size-4 buffers fully overlapping: placing one at 0
	// forces the other to [4, 4].
	p := twoOverlapping(8)
	m := NewModel(p, nil)
	m.Push()
	if c := m.Place(0, 0); c != nil {
		t.Fatalf("unexpected conflict: %v", c)
	}
	if m.MinPos(1) != 4 || m.MaxPos(1) != 4 {
		t.Errorf("buffer 1 bounds = [%d, %d], want [4, 4]", m.MinPos(1), m.MaxPos(1))
	}
}

func TestPlaceConflictAndExplanation(t *testing.T) {
	// Memory 12; buffer 0 (size 4) placed mid-memory splits the space into
	// two gaps of 4. Three size-3 buffers remain; each pairwise combination
	// is fine, so propagation accepts the first two placements, but after
	// buffer 1 goes into the lower gap, buffers 2 and 3 are both forced into
	// the upper gap and conflict. The explanation must implicate placed
	// buffers.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 3},
			{Start: 0, End: 10, Size: 3},
			{Start: 0, End: 10, Size: 3},
		},
		Memory: 12,
	}
	p.Normalize()
	m := NewModel(p, nil)
	m.Push()
	if c := m.Place(0, 4); c != nil {
		t.Fatalf("placement 0: %v", c)
	}
	m.Push()
	c := m.Place(1, 0)
	if c == nil {
		t.Fatal("expected conflict: buffers 2 and 3 cannot share the upper gap")
	}
	found := map[int]bool{}
	for _, id := range c.Placements {
		found[id] = true
	}
	if !found[0] && !found[1] {
		t.Errorf("conflict explanation %v names neither placed buffer", c.Placements)
	}
	// Recovery: pop and place buffer 1 in the upper gap instead; then the
	// problem stays infeasible (2 and 3 must share the lower gap), so the
	// alternative also conflicts — the instance truly needs buffer 0 moved.
	m.Pop()
	if c := m.Place(1, 8); c == nil {
		t.Error("expected conflict for the mirrored placement too")
	}
}

func TestPopRestoresState(t *testing.T) {
	p := twoOverlapping(8)
	m := NewModel(p, nil)
	m.Push()
	if c := m.Place(0, 0); c != nil {
		t.Fatalf("place: %v", c)
	}
	if m.MinPos(1) != 4 {
		t.Fatalf("propagation missing")
	}
	m.Pop()
	if m.Placed(0) {
		t.Error("buffer 0 still placed after Pop")
	}
	if m.MinPos(0) != 0 || m.MaxPos(0) != 4 {
		t.Errorf("buffer 0 bounds = [%d, %d], want [0, 4]", m.MinPos(0), m.MaxPos(0))
	}
	if m.MinPos(1) != 0 || m.MaxPos(1) != 4 {
		t.Errorf("buffer 1 bounds = [%d, %d], want [0, 4]", m.MinPos(1), m.MaxPos(1))
	}
	// The model must be reusable after Pop.
	m.Push()
	if c := m.Place(1, 4); c != nil {
		t.Fatalf("re-place after pop: %v", c)
	}
	if m.MinPos(0) != 0 || m.MaxPos(0) != 0 {
		t.Errorf("buffer 0 bounds = [%d, %d], want [0, 0]", m.MinPos(0), m.MaxPos(0))
	}
}

func TestAlignmentSnapping(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 3},
			{Start: 0, End: 10, Size: 4, Align: 8},
		},
		Memory: 16,
	}
	p.Normalize()
	m := NewModel(p, nil)
	if m.MaxPos(1) != 8 {
		t.Errorf("aligned MaxPos = %d, want 8 (snap down from 12)", m.MaxPos(1))
	}
	m.Push()
	if c := m.Place(0, 0); c != nil {
		t.Fatalf("place: %v", c)
	}
	// Buffer 1 must now start at >= 3, snapped up to 8.
	if m.MinPos(1) != 8 {
		t.Errorf("aligned MinPos after propagation = %d, want 8", m.MinPos(1))
	}
}

func TestLowestFeasible(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},  // will sit at 4
			{Start: 0, End: 10, Size: 4},  // will sit at 12
			{Start: 0, End: 10, Size: 4},  // query: lowest gap is 0, then 8
			{Start: 20, End: 30, Size: 4}, // temporally disjoint; must not matter
		},
		Memory: 16,
	}
	p.Normalize()
	m := NewModel(p, nil)
	m.Push()
	if c := m.Place(3, 0); c != nil {
		t.Fatalf("place: %v", c)
	}
	m.Push()
	if c := m.Place(0, 4); c != nil {
		t.Fatalf("place: %v", c)
	}
	m.Push()
	if c := m.Place(1, 12); c != nil {
		t.Fatalf("place: %v", c)
	}
	pos, ok := m.LowestFeasible(2)
	if !ok || pos != 0 {
		t.Errorf("LowestFeasible = (%d, %v), want (0, true)", pos, ok)
	}
	next, ok := m.NextFeasibleAbove(2, 0)
	if !ok || next != 8 {
		t.Errorf("NextFeasibleAbove(0) = (%d, %v), want (8, true)", next, ok)
	}
	if _, ok := m.NextFeasibleAbove(2, 8); ok {
		t.Error("NextFeasibleAbove(8) should fail: no room above 12")
	}
}

func TestSolverGuidedPlacementUnderOverhang(t *testing.T) {
	// Paper §5.2: blocks can be placed *underneath* an already placed block
	// whose live range only partially overlaps. A skyline cannot do this.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 4, Size: 4}, // early
			{Start: 2, End: 8, Size: 4}, // placed high, overhangs t in [4,8)
			{Start: 4, End: 8, Size: 4}, // late; fits under the overhang
		},
		Memory: 8,
	}
	p.Normalize()
	m := NewModel(p, nil)
	m.Push()
	if c := m.Place(0, 0); c != nil {
		t.Fatalf("place 0: %v", c)
	}
	m.Push()
	if c := m.Place(1, 4); c != nil {
		t.Fatalf("place 1: %v", c)
	}
	pos, ok := m.LowestFeasible(2)
	if !ok || pos != 0 {
		t.Errorf("buffer 2 lowest = (%d, %v), want (0, true): must fit under the overhang", pos, ok)
	}
}

func TestFixOrder(t *testing.T) {
	p := twoOverlapping(8)
	m := NewModel(p, nil)
	m.Push()
	if c := m.FixOrder(0, AFirst); c != nil {
		t.Fatalf("FixOrder: %v", c)
	}
	if m.MinPos(1) != 4 {
		t.Errorf("MinPos(1) = %d, want 4", m.MinPos(1))
	}
	if m.MaxPos(0) != 0 {
		t.Errorf("MaxPos(0) = %d, want 0", m.MaxPos(0))
	}
	// Fixing the same order again is a no-op.
	if c := m.FixOrder(0, AFirst); c != nil {
		t.Errorf("re-fixing same order conflicted: %v", c)
	}
	// Contradicting it conflicts.
	if c := m.FixOrder(0, BFirst); c == nil {
		t.Error("contradictory FixOrder did not conflict")
	}
}

func TestDisjunctionAutoResolves(t *testing.T) {
	// Memory so tight that one ordering is impossible from the start:
	// a size-6 and a size-4 buffer in memory 10: both orders feasible.
	// Shrink memory to 10 with sizes 6 and 4: pos(a) in [0,4], pos(b) in [0,6].
	// After placing a at 4, b cannot go above (4+6=10 > 10-4) => must be below.
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 5, Size: 6},
			{Start: 0, End: 5, Size: 4},
		},
		Memory: 10,
	}
	p.Normalize()
	m := NewModel(p, nil)
	m.Push()
	if c := m.Place(0, 4); c != nil {
		t.Fatalf("place: %v", c)
	}
	if m.MinPos(1) != 0 || m.MaxPos(1) != 0 {
		t.Errorf("buffer 1 bounds = [%d, %d], want pinned to 0", m.MinPos(1), m.MaxPos(1))
	}
	_, order := m.PairAt(0)
	if order != BFirst {
		t.Errorf("order = %v, want B<A", order)
	}
}

func TestSolutionExtraction(t *testing.T) {
	p := twoOverlapping(16)
	m := NewModel(p, nil)
	m.Push()
	if c := m.Place(0, 4); c != nil {
		t.Fatalf("place: %v", c)
	}
	sol := m.Solution()
	if sol[0] != 4 || sol[1] != -1 {
		t.Errorf("Solution = %v, want [4 -1]", sol)
	}
	if m.AllPlaced() {
		t.Error("AllPlaced true with one unplaced buffer")
	}
	m.Push()
	if c := m.Place(1, 8); c != nil {
		t.Fatalf("place: %v", c)
	}
	if !m.AllPlaced() {
		t.Error("AllPlaced false with all buffers placed")
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := twoOverlapping(8)
	m := NewModel(p, nil)
	m.Push()
	_ = m.Place(0, 0)
	st := m.Stats()
	if st.Propagations == 0 {
		t.Error("no propagations recorded")
	}
	if st.PairWakeups == 0 {
		t.Error("no pair wakeups recorded")
	}
}

// TestPropertyRandomPlacementSequences checks two invariants on random
// problems: (1) if the model accepts a full placement sequence, the result
// is a valid packing; (2) Push/Pop restores bounds exactly.
func TestPropertyRandomPlacementSequences(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		p := &buffers.Problem{Memory: 64}
		for i := 0; i < n; i++ {
			start := rng.Int63n(20)
			p.Buffers = append(p.Buffers, buffers.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(10),
				Size:  1 + rng.Int63n(16),
				Align: []int64{0, 1, 2, 4}[rng.Intn(4)],
			})
		}
		p.Normalize()
		m := NewModel(p, nil)

		// Snapshot initial bounds.
		initMin := make([]int64, n)
		initMax := make([]int64, n)
		for i := 0; i < n; i++ {
			initMin[i], initMax[i] = m.MinPos(i), m.MaxPos(i)
		}

		placedAll := true
		var pushes int
		for i := 0; i < n; i++ {
			pos, ok := m.LowestFeasible(i)
			if !ok {
				placedAll = false
				break
			}
			m.Push()
			pushes++
			if c := m.Place(i, pos); c != nil {
				m.Pop()
				pushes--
				placedAll = false
				break
			}
		}
		if placedAll {
			sol := &buffers.Solution{Offsets: m.Solution()}
			if err := sol.Validate(p); err != nil {
				t.Logf("seed %d: invalid solution accepted: %v", seed, err)
				return false
			}
		}
		for ; pushes > 0; pushes-- {
			m.Pop()
		}
		for i := 0; i < n; i++ {
			if m.MinPos(i) != initMin[i] || m.MaxPos(i) != initMax[i] {
				t.Logf("seed %d: bounds of %d not restored", seed, i)
				return false
			}
			if m.Placed(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop without Push did not panic")
		}
	}()
	m := NewModel(twoOverlapping(8), nil)
	m.Pop()
}
