package cp

// Conflict explanation: when a domain wipes out, we walk the reason chains
// of the implicated variables and collect the *placed* buffers that
// (transitively) tightened the failing bounds. This mirrors the behaviour
// the paper relies on in §5.4: "When the CP solver reports a failure, it
// also reports conflicting variable assignments. This tells us which block
// placements caused the problem."

// explainBudget bounds the breadth-first walk over reason chains so that
// explanation cost stays negligible next to propagation.
const explainBudget = 256

// explainVar builds a conflict for a wipeout of variable v detected while
// propagating pair pr.
func (m *Model) explainVar(pr Pair, v int32) *Conflict {
	c := &Conflict{Pair: pr, Var: v}
	c.Placements = m.collect(v, pr.A, pr.B)
	return c
}

// explainPair builds a conflict for a dead disjunction (neither ordering of
// pr is feasible).
func (m *Model) explainPair(pr Pair) *Conflict {
	c := &Conflict{Pair: pr, Var: -1}
	c.Placements = m.collect(pr.A, pr.B)
	return c
}

// collect gathers the IDs of placed buffers reachable through the reason
// chains of the seed variables, breadth-first and deduplicated.
func (m *Model) collect(seeds ...int32) []int {
	visited := make(map[int32]bool, 16)
	var frontier []int32
	push := func(v int32) {
		if v >= 0 && !visited[v] {
			visited[v] = true
			frontier = append(frontier, v)
		}
	}
	for _, s := range seeds {
		push(s)
	}
	var placements []int
	budget := explainBudget
	for i := 0; i < len(frontier) && budget > 0; i++ {
		v := frontier[i]
		if m.placed[v] {
			placements = append(placements, int(v))
			// A placed buffer's position is a decision; its own reasons are
			// irrelevant to the explanation.
			continue
		}
		for node := m.minReason[v]; node != nil && budget > 0; node = node.prev {
			push(node.by)
			budget--
		}
		for node := m.maxReason[v]; node != nil && budget > 0; node = node.prev {
			push(node.by)
			budget--
		}
	}
	return placements
}
