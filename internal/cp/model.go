// Package cp implements the constraint-programming engine that TelaMalloc
// drives through the Telamon search framework. It is the repository's
// substitute for the CP-SAT solver the paper builds on: it provides exactly
// the four capabilities TelaMalloc needs from a solver —
//
//  1. incremental variable assignment with propagation to fixpoint,
//  2. detection of immediate unsatisfiability (domain wipeout),
//  3. conflict explanations naming the placements that caused a failure,
//  4. queries for the currently valid range / lowest valid position of
//     every position variable (solver-guided placement, Figure 8b).
//
// The model follows §5.1 of the paper: one integer variable pos(X) per
// buffer with domain [0, M-size(X)], and for every temporally overlapping
// pair an ordering disjunction (pos(X)+size(X) <= pos(Y)) XOR
// (pos(Y)+size(Y) <= pos(X)). Alignment (§5.5) is folded into the bound
// updates: bounds snap to each buffer's alignment grid.
//
// State is managed with a trail so that decisions can be pushed and popped
// in O(changes), which is what makes heuristic-driven backtracking search
// cheap.
package cp

import (
	"fmt"

	"telamalloc/internal/buffers"
	"telamalloc/internal/intervals"
)

// Order is the state of one pairwise ordering disjunction.
type Order int8

const (
	// Unknown means neither ordering has been committed yet.
	Unknown Order = iota
	// AFirst means pair.A is below pair.B: pos(A) + size(A) <= pos(B).
	AFirst
	// BFirst means pair.B is below pair.A: pos(B) + size(B) <= pos(A).
	BFirst
)

func (o Order) String() string {
	switch o {
	case AFirst:
		return "A<B"
	case BFirst:
		return "B<A"
	default:
		return "?"
	}
}

// Pair identifies one temporally overlapping buffer pair (A < B by ID).
type Pair struct {
	A, B int32
}

// Conflict describes a propagation failure. Placements lists the IDs of
// placed buffers whose positions (transitively) explain the failure — the
// "backtrack reason" TelaMalloc's smart backtracking and ML policy consume.
type Conflict struct {
	// Pair is the disjunction whose propagation detected the wipeout.
	Pair Pair
	// Var is the position variable whose domain wiped out, or -1 when the
	// conflict was a dead disjunction (neither ordering feasible).
	Var int32
	// Placements holds the IDs of placed buffers implicated in the failure,
	// deduplicated, in no particular order.
	Placements []int
}

func (c *Conflict) Error() string {
	return fmt.Sprintf("cp: conflict on pair (%d,%d), %d placements implicated", c.Pair.A, c.Pair.B, len(c.Placements))
}

// Stats counts solver work; TelaMalloc's evaluation reports these.
type Stats struct {
	// Propagations is the number of bound updates applied.
	Propagations int64
	// OrderFixes is the number of disjunctions resolved by propagation
	// (rather than by decisions).
	OrderFixes int64
	// Conflicts is the number of wipeouts detected.
	Conflicts int64
	// PairWakeups counts pair-propagator invocations.
	PairWakeups int64
}

// reasonNode forms an immutable chain of "which variable caused this bound"
// breadcrumbs. Chains are persistent so that popping the trail can restore a
// previous chain by pointer.
type reasonNode struct {
	by   int32 // variable whose bounds/placement triggered the tightening; -1 for decisions
	prev *reasonNode
}

type trailKind uint8

const (
	tMin trailKind = iota
	tMax
	tOrder
	tPlaced
)

type trailEntry struct {
	kind      trailKind
	idx       int32
	old       int64
	oldReason *reasonNode
}

// Model is the CP representation of one allocation problem. It is not safe
// for concurrent use.
type Model struct {
	prob *buffers.Problem
	ov   *buffers.Overlaps

	posMin, posMax []int64
	minReason      []*reasonNode
	maxReason      []*reasonNode
	placed         []bool

	pairs   []Pair
	order   []Order
	pairsOf [][]int32

	trail  []trailEntry
	levels []int

	// queue is the pending pair-propagator worklist. queueHead indexes the
	// next entry to process; advancing the head instead of re-slicing the
	// queue keeps the backing array reusable across the model's lifetime
	// (a re-slice would permanently strand the capacity before the head).
	queue     []int32
	queueHead int
	inQueue   []bool

	stats Stats

	// scratch buffers reused by queries
	occScratch []intervals.Interval
}

// NewModel builds the CP model for p. The overlap adjacency may be nil, in
// which case it is computed. NewModel is O(n + pairs).
func NewModel(p *buffers.Problem, ov *buffers.Overlaps) *Model {
	if ov == nil {
		ov = buffers.ComputeOverlaps(p)
	}
	n := len(p.Buffers)
	m := &Model{
		prob:      p,
		ov:        ov,
		posMin:    make([]int64, n),
		posMax:    make([]int64, n),
		minReason: make([]*reasonNode, n),
		maxReason: make([]*reasonNode, n),
		placed:    make([]bool, n),
		pairsOf:   make([][]int32, n),
	}
	for i, b := range p.Buffers {
		m.posMin[i] = b.AlignUp(0)
		m.posMax[i] = alignDown(p.Memory-b.Size, b.Align)
	}
	for a := 0; a < n; a++ {
		for _, bID := range ov.Neighbors[a] {
			if bID <= a {
				continue
			}
			idx := int32(len(m.pairs))
			m.pairs = append(m.pairs, Pair{int32(a), int32(bID)})
			m.pairsOf[a] = append(m.pairsOf[a], idx)
			m.pairsOf[bID] = append(m.pairsOf[bID], idx)
		}
	}
	m.order = make([]Order, len(m.pairs))
	m.inQueue = make([]bool, len(m.pairs))
	return m
}

func alignDown(addr, align int64) int64 {
	if align <= 1 {
		return addr
	}
	return addr - addr%align
}

// Problem returns the underlying problem.
func (m *Model) Problem() *buffers.Problem { return m.prob }

// Overlaps returns the shared overlap adjacency.
func (m *Model) Overlaps() *buffers.Overlaps { return m.ov }

// Stats returns a copy of the work counters.
func (m *Model) Stats() Stats { return m.stats }

// NumPairs returns the number of ordering disjunctions in the model.
func (m *Model) NumPairs() int { return len(m.pairs) }

// PairAt returns the k-th pair and its current ordering state.
func (m *Model) PairAt(k int) (Pair, Order) { return m.pairs[k], m.order[k] }

// MinPos returns the current lower bound of pos(buf).
func (m *Model) MinPos(buf int) int64 { return m.posMin[buf] }

// MaxPos returns the current upper bound of pos(buf).
func (m *Model) MaxPos(buf int) int64 { return m.posMax[buf] }

// Placed reports whether buf has been fixed by a Place call.
func (m *Model) Placed(buf int) bool { return m.placed[buf] }

// Position returns the fixed position of a placed buffer.
func (m *Model) Position(buf int) int64 { return m.posMin[buf] }

// Level returns the current decision level (number of pushes).
func (m *Model) Level() int { return len(m.levels) }

// Push opens a new decision level. Pop undoes everything since the matching
// Push.
func (m *Model) Push() {
	m.levels = append(m.levels, len(m.trail))
}

// Pop restores the model to the state before the most recent Push.
func (m *Model) Pop() {
	if len(m.levels) == 0 {
		panic("cp: Pop without Push")
	}
	mark := m.levels[len(m.levels)-1]
	m.levels = m.levels[:len(m.levels)-1]
	for len(m.trail) > mark {
		e := m.trail[len(m.trail)-1]
		m.trail = m.trail[:len(m.trail)-1]
		switch e.kind {
		case tMin:
			m.posMin[e.idx] = e.old
			m.minReason[e.idx] = e.oldReason
		case tMax:
			m.posMax[e.idx] = e.old
			m.maxReason[e.idx] = e.oldReason
		case tOrder:
			m.order[e.idx] = Order(e.old)
		case tPlaced:
			m.placed[e.idx] = false
		}
	}
	m.clearQueue()
}

func (m *Model) clearQueue() {
	for _, k := range m.queue[m.queueHead:] {
		m.inQueue[k] = false
	}
	m.queue = m.queue[:0]
	m.queueHead = 0
}

// setMin raises the lower bound of variable v to at least val (snapped up to
// the alignment grid). by names the variable that caused the tightening (-1
// for decisions). Returns false on domain wipeout.
func (m *Model) setMin(v int32, val int64, by int32) bool {
	val = m.prob.Buffers[v].AlignUp(val)
	if val <= m.posMin[v] {
		return true
	}
	m.trail = append(m.trail, trailEntry{tMin, v, m.posMin[v], m.minReason[v]})
	m.posMin[v] = val
	m.minReason[v] = &reasonNode{by: by, prev: m.minReason[v]}
	m.stats.Propagations++
	if m.posMin[v] > m.posMax[v] {
		return false
	}
	m.wake(v)
	return true
}

// setMax lowers the upper bound of variable v to at most val (snapped down
// to the alignment grid). Returns false on domain wipeout.
func (m *Model) setMax(v int32, val int64, by int32) bool {
	val = alignDown(val, m.prob.Buffers[v].Align)
	if val >= m.posMax[v] {
		return true
	}
	m.trail = append(m.trail, trailEntry{tMax, v, m.posMax[v], m.maxReason[v]})
	m.posMax[v] = val
	m.maxReason[v] = &reasonNode{by: by, prev: m.maxReason[v]}
	m.stats.Propagations++
	if m.posMin[v] > m.posMax[v] {
		return false
	}
	m.wake(v)
	return true
}

func (m *Model) setOrder(k int32, o Order) {
	m.trail = append(m.trail, trailEntry{tOrder, k, int64(m.order[k]), nil})
	m.order[k] = o
	m.stats.OrderFixes++
}

// wake enqueues all pairs touching variable v for (re-)propagation.
func (m *Model) wake(v int32) {
	for _, k := range m.pairsOf[v] {
		if !m.inQueue[k] {
			m.inQueue[k] = true
			m.queue = append(m.queue, k)
		}
	}
}

// Place fixes buffer buf at position pos inside the current decision level
// and propagates to fixpoint. It returns a Conflict if propagation detects
// unsatisfiability (the caller is then expected to Pop). Place does not
// validate that pos itself is inside the current bounds of buf; a violation
// simply surfaces as an immediate conflict.
func (m *Model) Place(buf int, pos int64) *Conflict {
	v := int32(buf)
	m.trail = append(m.trail, trailEntry{tPlaced, v, 0, nil})
	m.placed[buf] = true
	if !m.setMin(v, pos, -1) || !m.setMax(v, pos, -1) {
		m.stats.Conflicts++
		c := m.explainVar(Pair{v, v}, v)
		m.clearQueue()
		return c
	}
	// Guard against a pos that is below the current minimum (setMin is a
	// no-op then, but the placement is still invalid).
	if m.posMin[buf] != pos || m.posMax[buf] != pos {
		m.stats.Conflicts++
		c := m.explainVar(Pair{v, v}, v)
		m.clearQueue()
		return c
	}
	return m.Propagate()
}

// Propagate runs the pair propagators to fixpoint. On success it returns
// nil; otherwise the conflict explanation.
func (m *Model) Propagate() *Conflict {
	for m.queueHead < len(m.queue) {
		k := m.queue[m.queueHead]
		m.queueHead++
		m.inQueue[k] = false
		if c := m.propagatePair(k); c != nil {
			m.stats.Conflicts++
			m.clearQueue()
			return c
		}
	}
	m.queue = m.queue[:0]
	m.queueHead = 0
	return nil
}

// propagatePair enforces the disjunction of pair k under current bounds.
func (m *Model) propagatePair(k int32) *Conflict {
	m.stats.PairWakeups++
	pr := m.pairs[k]
	a, b := pr.A, pr.B
	sa := m.prob.Buffers[a].Size
	sb := m.prob.Buffers[b].Size
	switch m.order[k] {
	case AFirst:
		if !m.setMin(b, m.posMin[a]+sa, a) {
			return m.explainVar(pr, b)
		}
		if !m.setMax(a, m.posMax[b]-sa, b) {
			return m.explainVar(pr, a)
		}
	case BFirst:
		if !m.setMin(a, m.posMin[b]+sb, b) {
			return m.explainVar(pr, a)
		}
		if !m.setMax(b, m.posMax[a]-sb, a) {
			return m.explainVar(pr, b)
		}
	case Unknown:
		abOK := m.posMin[a]+sa <= m.posMax[b]
		baOK := m.posMin[b]+sb <= m.posMax[a]
		switch {
		case !abOK && !baOK:
			return m.explainPair(pr)
		case !abOK:
			m.setOrder(k, BFirst)
			return m.propagatePair(k)
		case !baOK:
			m.setOrder(k, AFirst)
			return m.propagatePair(k)
		}
	}
	return nil
}

// FixOrder commits the ordering of pair k by decision and propagates. Used
// by the pure-CP baseline searcher.
func (m *Model) FixOrder(k int, o Order) *Conflict {
	if m.order[k] != Unknown {
		if m.order[k] == o {
			return nil
		}
		// Contradicting an already-propagated ordering: conflict.
		m.stats.Conflicts++
		return m.explainPair(m.pairs[k])
	}
	m.setOrder(int32(k), o)
	if c := m.propagatePair(int32(k)); c != nil {
		m.stats.Conflicts++
		m.clearQueue()
		return c
	}
	return m.Propagate()
}
