package cp

import (
	"math/rand"
	"testing"

	"telamalloc/internal/buffers"
)

// queueWorkload builds a deterministic, moderately dense instance whose
// propagation exercises the pair queue heavily: staggered live ranges give
// every buffer several temporal neighbours.
func queueWorkload() *buffers.Problem {
	rng := rand.New(rand.NewSource(7))
	p := &buffers.Problem{Memory: 256}
	for i := 0; i < 40; i++ {
		start := rng.Int63n(30)
		p.Buffers = append(p.Buffers, buffers.Buffer{
			Start: start,
			End:   start + 3 + rng.Int63n(20),
			Size:  4 + rng.Int63n(28),
		})
	}
	p.Normalize()
	return p
}

// exerciseQueue drives the model through a deterministic mix of
// placements, conflicts, and pops — the access pattern whose propagation
// counts must not change when the queue representation changes.
func exerciseQueue(m *Model) Stats {
	n := len(m.Problem().Buffers)
	for i := 0; i < n; i++ {
		m.Push()
		pos, ok := m.LowestFeasible(i)
		if !ok {
			m.Pop()
			continue
		}
		if c := m.Place(i, pos); c != nil {
			m.Pop()
			continue
		}
		// Periodically undo and re-place one level higher to exercise
		// Pop's queue clearing mid-propagation history.
		if i%7 == 3 {
			m.Pop()
			m.Push()
			if pos2, ok2 := m.LowestFeasible(i); ok2 {
				if c := m.Place(i, pos2); c != nil {
					m.Pop()
				}
			} else {
				m.Pop()
			}
		}
	}
	return m.Stats()
}

// TestPropagationCountsGolden pins the exact propagation work done on a
// fixed scenario. The goldens were captured before the queue switched from
// slice re-slicing (m.queue = m.queue[1:]) to a head index; the change must
// be a pure representation swap, leaving every counter identical.
func TestPropagationCountsGolden(t *testing.T) {
	p := queueWorkload()
	got := exerciseQueue(NewModel(p, nil))
	want := Stats{
		Propagations: 425,
		OrderFixes:   481,
		Conflicts:    10,
		PairWakeups:  6338,
	}
	if got != want {
		t.Errorf("propagation stats changed:\n got  %+v\n want %+v", got, want)
	}
}

// TestQueueConsistencyAfterPop verifies that no stale inQueue marks survive
// a conflict or a Pop: a fresh Propagate on a quiescent model must do no
// work at all.
func TestQueueConsistencyAfterPop(t *testing.T) {
	p := queueWorkload()
	m := NewModel(p, nil)
	exerciseQueue(m)
	before := m.Stats()
	if c := m.Propagate(); c != nil {
		t.Fatalf("unexpected conflict on quiescent model: %v", c)
	}
	after := m.Stats()
	if before.PairWakeups != after.PairWakeups {
		t.Errorf("quiescent Propagate woke %d pairs; queue not drained cleanly",
			after.PairWakeups-before.PairWakeups)
	}
	for k, in := range m.inQueue {
		if in {
			t.Errorf("pair %d still marked in-queue on an empty queue", k)
		}
	}
}
