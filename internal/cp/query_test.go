package cp

import (
	"testing"

	"telamalloc/internal/buffers"
)

func TestNumPairsGrowsQuadratically(t *testing.T) {
	mk := func(n int) *Model {
		p := &buffers.Problem{Memory: 1 << 40}
		for i := 0; i < n; i++ {
			p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 10, Size: 1})
		}
		p.Normalize()
		return NewModel(p, nil)
	}
	if got := mk(10).NumPairs(); got != 45 {
		t.Errorf("NumPairs(10) = %d, want 45", got)
	}
	if got := mk(100).NumPairs(); got != 4950 {
		t.Errorf("NumPairs(100) = %d, want 4950", got)
	}
}

func TestFreeSlackShrinksUnderPropagation(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
		},
		Memory: 12,
	}
	p.Normalize()
	m := NewModel(p, nil)
	before := m.FreeSlack(1)
	m.Push()
	if c := m.Place(0, 0); c != nil {
		t.Fatalf("place: %v", c)
	}
	after := m.FreeSlack(1)
	if after >= before {
		t.Errorf("slack did not shrink: %d -> %d", before, after)
	}
}

func TestLevelTracking(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{{Start: 0, End: 5, Size: 1}},
		Memory:  8,
	}
	p.Normalize()
	m := NewModel(p, nil)
	if m.Level() != 0 {
		t.Errorf("Level = %d", m.Level())
	}
	m.Push()
	m.Push()
	if m.Level() != 2 {
		t.Errorf("Level = %d, want 2", m.Level())
	}
	m.Pop()
	if m.Level() != 1 {
		t.Errorf("Level = %d, want 1", m.Level())
	}
}

func TestOccupiedIntervalsMergesNeighbours(t *testing.T) {
	p := &buffers.Problem{
		Buffers: []buffers.Buffer{
			{Start: 0, End: 10, Size: 4},  // will occupy [0,4)
			{Start: 0, End: 10, Size: 4},  // will occupy [4,8) — adjacent, must merge
			{Start: 0, End: 10, Size: 2},  // query subject
			{Start: 50, End: 60, Size: 9}, // temporally disjoint, ignored
		},
		Memory: 16,
	}
	p.Normalize()
	m := NewModel(p, nil)
	m.Push()
	if c := m.Place(0, 0); c != nil {
		t.Fatal(c)
	}
	m.Push()
	if c := m.Place(1, 4); c != nil {
		t.Fatal(c)
	}
	m.Push()
	if c := m.Place(3, 0); c != nil {
		t.Fatal(c)
	}
	occ := m.OccupiedIntervals(2)
	if len(occ) != 1 || occ[0].Lo != 0 || occ[0].Hi != 8 {
		t.Errorf("OccupiedIntervals = %v, want [{0 8}]", occ)
	}
	pos, ok := m.LowestFeasible(2)
	if !ok || pos != 8 {
		t.Errorf("LowestFeasible = (%d, %v), want (8, true)", pos, ok)
	}
}

func TestDeepPropagationChain(t *testing.T) {
	// A chain of n stacked buffers in exactly-fitting memory: placing the
	// bottom one pins every other via transitive propagation once orderings
	// resolve. Verify positions settle correctly through a long chain.
	const n = 20
	p := &buffers.Problem{Memory: n}
	for i := 0; i < n; i++ {
		p.Buffers = append(p.Buffers, buffers.Buffer{Start: 0, End: 5, Size: 1})
	}
	p.Normalize()
	m := NewModel(p, nil)
	m.Push()
	for i := 0; i < n; i++ {
		pos, ok := m.LowestFeasible(i)
		if !ok {
			t.Fatalf("buffer %d has no feasible position", i)
		}
		m.Push()
		if c := m.Place(i, pos); c != nil {
			t.Fatalf("place %d: %v", i, c)
		}
	}
	sol := &buffers.Solution{Offsets: m.Solution()}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	if peak := sol.PeakUsage(p); peak != n {
		t.Errorf("peak = %d, want %d (exact packing)", peak, n)
	}
}

func TestConflictErrorString(t *testing.T) {
	c := &Conflict{Pair: Pair{1, 2}, Placements: []int{3, 4}}
	if c.Error() == "" {
		t.Error("empty error string")
	}
}

func TestOrderString(t *testing.T) {
	if Unknown.String() != "?" || AFirst.String() != "A<B" || BFirst.String() != "B<A" {
		t.Errorf("Order strings wrong: %v %v %v", Unknown, AFirst, BFirst)
	}
}
