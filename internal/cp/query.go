package cp

import "telamalloc/internal/intervals"

// Queries used for solver-guided placement (Figure 8b in the paper): instead
// of stacking blocks on the skyline, TelaMalloc asks the solver for the
// lowest currently-valid location of a buffer, which can be *underneath*
// overhangs left by earlier placements.

// OccupiedIntervals returns the merged address intervals occupied by placed
// temporal neighbours of buf. The returned slice is reused between calls;
// callers must not retain it.
func (m *Model) OccupiedIntervals(buf int) []intervals.Interval {
	m.occScratch = m.occScratch[:0]
	for _, nb := range m.ov.Neighbors[buf] {
		if m.placed[nb] {
			pos := m.posMin[nb]
			m.occScratch = append(m.occScratch, intervals.Interval{Lo: pos, Hi: pos + m.prob.Buffers[nb].Size})
		}
	}
	m.occScratch = intervals.SortAndMerge(m.occScratch)
	return m.occScratch
}

// LowestFeasible returns the lowest aligned position for buf that respects
// its current propagated bounds and does not collide with any placed
// temporal neighbour. The boolean is false when no such position exists
// (the caller should treat this as a dead end).
//
// Note that this is necessary but not sufficient for global feasibility:
// deeper consequences only surface when Place propagates. That residual gap
// is exactly why the search can still backtrack.
func (m *Model) LowestFeasible(buf int) (int64, bool) {
	occ := m.OccupiedIntervals(buf)
	b := m.prob.Buffers[buf]
	return intervals.LowestFit(occ, b.Size, b.Align, m.posMin[buf], m.posMax[buf]+b.Size)
}

// NextFeasibleAbove returns the lowest valid position for buf that is
// strictly greater than prev, or false if none exists. It lets the search
// enumerate alternative placements for the same buffer on backtracking.
func (m *Model) NextFeasibleAbove(buf int, prev int64) (int64, bool) {
	occ := m.OccupiedIntervals(buf)
	b := m.prob.Buffers[buf]
	minPos := prev + 1
	if m.posMin[buf] > minPos {
		minPos = m.posMin[buf]
	}
	if b.Align > 1 {
		minPos = b.AlignUp(minPos)
	}
	return intervals.LowestFit(occ, b.Size, b.Align, minPos, m.posMax[buf]+b.Size)
}

// FreeSlack returns posMax - posMin for buf: how much freedom propagation
// has left the variable. Zero means the buffer is effectively pinned.
func (m *Model) FreeSlack(buf int) int64 { return m.posMax[buf] - m.posMin[buf] }

// Solution extracts the fixed positions of placed buffers into offsets
// (indexed by buffer ID); unplaced buffers receive -1.
func (m *Model) Solution() []int64 {
	out := make([]int64, len(m.posMin))
	for i := range out {
		if m.placed[i] {
			out[i] = m.posMin[i]
		} else {
			out[i] = -1
		}
	}
	return out
}

// AllPlaced reports whether every buffer has been fixed.
func (m *Model) AllPlaced() bool {
	for _, p := range m.placed {
		if !p {
			return false
		}
	}
	return true
}
