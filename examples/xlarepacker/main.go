// XLA repacker: the TPUv4-style integration of §2.3/§7.4.
//
// XLA's memory-space-assignment pass opportunistically promotes
// access-intensive buffers into on-chip SRAM (CMEM), invoking a repacker
// whenever incremental placement runs out of space. A better repacker packs
// more hot bytes into the same SRAM, which makes the *compiled program*
// faster — this example runs the simulated promotion loop with TelaMalloc
// and with the best-fit baseline and compares modeled execution time
// (Figure 18 of the paper).
//
// Run with: go run ./examples/xlarepacker
package main

import (
	"fmt"

	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/workload"
	"telamalloc/internal/xlasim"
)

func main() {
	fmt.Println("XLA SRAM promotion loop: TelaMalloc repacker vs best-fit")
	fmt.Println()
	fmt.Printf("%-20s %12s %12s %10s %9s\n", "model", "TM bytes", "BF bytes", "repacks", "speedup")

	tm := core.Allocator{Config: core.Config{MaxSteps: 200000}}
	bf := heuristics.BestFit{}
	memBound := []int{85, 40, 70, 25, 90, 60, 35, 75, 50, 80, 65, 55}
	for i, m := range workload.Models {
		prog := xlasim.FromWorkload(m, 7, 100, memBound[i%len(memBound)])
		withTM := xlasim.Assign(prog, tm)
		withBF := xlasim.Assign(prog, bf)
		speedup := prog.ExecTime(withBF) / prog.ExecTime(withTM)
		fmt.Printf("%-20s %12d %12d %10d %8.2f%%\n",
			m.Name, withTM.PackedBytes, withBF.PackedBytes, withTM.RepackCalls, (speedup-1)*100)
	}
	fmt.Println()
	fmt.Println("speedup = modeled program time with best-fit repacking / with TelaMalloc repacking")
	fmt.Println("(models differ in memory-boundedness, muting some speedups — as in the paper)")
}
