// Quickstart: allocate a handful of tensor buffers into a tiny scratchpad
// with the public telamalloc API and print the resulting layout.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"telamalloc"
)

func main() {
	// The running example of the paper (Figure 1): ten buffers with fixed
	// live ranges that must share a 10-byte scratchpad. The placement of
	// the block spanning t=2..9 decides whether everything fits.
	problem := telamalloc.Problem{
		Name:   "figure-1",
		Memory: 10,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 12, Size: 3},  // (1)
			{Start: 0, End: 7, Size: 3},   // (2)
			{Start: 3, End: 7, Size: 2},   // (3)
			{Start: 7, End: 12, Size: 3},  // (4)
			{Start: 12, End: 16, Size: 5}, // (5)
			{Start: 12, End: 16, Size: 3}, // (6)
			{Start: 2, End: 9, Size: 2},   // (7) the pivotal block
			{Start: 0, End: 3, Size: 2},   // (8)
			{Start: 16, End: 20, Size: 6}, // (9)
			{Start: 16, End: 20, Size: 2}, // (10)
		},
	}

	// The greedy heuristic is tried first in production; on this instance
	// it may or may not fit, which is exactly why TelaMalloc exists.
	if _, err := telamalloc.AllocateGreedy(problem); err != nil {
		fmt.Println("greedy heuristic failed (expected on tight instances):", err)
	} else {
		fmt.Println("greedy heuristic solved it — TelaMalloc is the fallback for when it can't")
	}

	// Build a reusable handle: options are validated once and the same
	// handle serves every subsequent allocation (here there is just one).
	alloc, err := telamalloc.New()
	if err != nil {
		log.Fatalf("configuring allocator: %v", err)
	}
	sol, stats, err := alloc.Allocate(context.Background(), problem)
	if err != nil {
		log.Fatalf("allocation failed: %v", err)
	}
	fmt.Printf("TelaMalloc solved it in %d steps (%d backtracks)\n\n",
		stats.Steps, stats.MinorBacktracks+stats.MajorBacktracks)

	fmt.Println("buffer  live-range  size  -> address")
	for i, b := range problem.Buffers {
		fmt.Printf("  (%2d)   [%2d,%2d)    %2d   -> %d\n", i+1, b.Start, b.End, b.Size, sol.Offsets[i])
	}
	fmt.Printf("\npeak usage: %d / %d bytes", sol.PeakUsage(problem), problem.Memory)
	fmt.Printf(" (lower bound %d)\n\n", telamalloc.MinMemoryLowerBound(problem))

	// Render the packing: rows are addresses (top = high), columns time.
	fmt.Println(render(problem, sol))
}

// render draws the 2D packing as ASCII art: one character per buffer.
func render(p telamalloc.Problem, s telamalloc.Solution) string {
	var horizon int64
	for _, b := range p.Buffers {
		if b.End > horizon {
			horizon = b.End
		}
	}
	grid := make([][]byte, p.Memory)
	for r := range grid {
		grid[r] = make([]byte, horizon)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	glyphs := "0123456789abcdefghijklmnopqrstuvwxyz"
	for i, b := range p.Buffers {
		g := glyphs[i%len(glyphs)]
		for r := s.Offsets[i]; r < s.Offsets[i]+b.Size; r++ {
			for c := b.Start; c < b.End; c++ {
				grid[r][c] = g
			}
		}
	}
	out := ""
	for r := int(p.Memory) - 1; r >= 0; r-- {
		out += fmt.Sprintf("addr %2d |%s|\n", r, grid[r])
	}
	out += fmt.Sprintf("         %s\n", ruler(int(horizon)))
	return out
}

func ruler(n int) string {
	out := make([]byte, n)
	for i := range out {
		if i%5 == 0 {
			out[i] = '+'
		} else {
			out[i] = '-'
		}
	}
	return string(out)
}
