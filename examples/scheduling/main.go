// Scheduling: how the compiler pass *before* allocation shapes the
// allocator's problem. §2.3 of the paper notes the allocation problem
// "depends not only on the model but also on ... earlier compiler passes" —
// here the same operator DAG is scheduled two ways (plain topological vs.
// memory-aware list scheduling) and both timelines are handed to
// TelaMalloc at the same memory limit.
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"math/rand"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/schedule"
	"telamalloc/internal/telamon"
)

func main() {
	d := randomModelDAG(120, 7)
	fmt.Printf("operator DAG: %d ops\n\n", d.NumOps())
	fmt.Printf("%-16s %12s %14s %10s %12s\n", "schedule", "peak bytes", "fits @ limit", "steps", "backtracks")

	// Size the scratchpad between the two schedules' peaks: the memory-
	// aware schedule fits, the naive one cannot (no allocator can beat the
	// contention peak).
	asap, err := d.Schedule(schedule.ASAP)
	if err != nil {
		log.Fatal(err)
	}
	ml, err := d.Schedule(schedule.MinLiveBytes)
	if err != nil {
		log.Fatal(err)
	}
	peakASAP, _ := d.PeakLiveBytes(asap, "asap")
	peakML, _ := d.PeakLiveBytes(ml, "min-live")
	limit := (peakASAP + peakML) / 2

	for _, s := range []struct {
		name  string
		order []int
	}{{"asap", asap}, {"min-live-bytes", ml}} {
		p, err := d.Problem(s.order, s.name)
		if err != nil {
			log.Fatal(err)
		}
		p.Memory = limit
		peak := buffers.Contention(p).Peak()
		res := core.Solve(p, core.Config{MaxSteps: 200000})
		fits := "yes"
		if res.Status != telamon.Solved {
			fits = "NO"
		}
		fmt.Printf("%-16s %12d %14s %10d %12d\n",
			s.name, peak, fits, res.Stats.Steps, res.Stats.Backtracks())
	}
	fmt.Printf("\nshared memory limit: %d bytes — between the two schedules' contention peaks\n", limit)
	fmt.Println("the memory-aware schedule turns an impossible allocation into a solvable one")
}

// randomModelDAG builds a synthetic operator graph with chains, fan-outs
// and reductions — the structures that make schedule choice matter.
func randomModelDAG(n int, seed int64) *schedule.DAG {
	rng := rand.New(rand.NewSource(seed))
	d := &schedule.DAG{}
	for i := 0; i < n; i++ {
		var deps []int
		if i > 0 {
			deps = append(deps, i-1-rng.Intn(min(i, 4))) // mostly local edges
			if rng.Intn(4) == 0 {
				deps = append(deps, rng.Intn(i)) // occasional long edge
			}
		}
		size := int64(1+rng.Intn(64)) << 10
		if rng.Intn(6) == 0 {
			size *= 8 // occasional huge intermediate
		}
		d.Deps = append(d.Deps, dedup(deps))
		d.OutSize = append(d.OutSize, size)
	}
	return d
}

func dedup(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
