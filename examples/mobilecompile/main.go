// Mobile compile: the Pixel-6-style on-the-fly compilation flow of §2.3.
//
// When an app loads an ML model through NNAPI, the on-device compiler must
// pack the model's buffers into the accelerator's scratchpad *right now* —
// the user is waiting. The production flow (§7.2) therefore:
//
//  1. tries the fast greedy heuristic;
//  2. falls back to TelaMalloc when the heuristic fails;
//  3. (before TelaMalloc existed, the fallback was an ILP solver that
//     could take tens of seconds — the delays that motivated the paper).
//
// This example replays that flow for each built-in model proxy at a tight
// memory limit and prints what each stage did, including the ILP fallback's
// time-to-budget for contrast.
//
// Run with: go run ./examples/mobilecompile
package main

import (
	"context"
	"fmt"
	"time"

	"telamalloc"
	"telamalloc/internal/buffers"
	"telamalloc/internal/workload"
)

func main() {
	fmt.Println("On-device compilation flow (greedy -> TelaMalloc fallback)")
	fmt.Println()
	// One handle serves every model: on-device compilers keep a configured
	// allocator around rather than re-validating options per compilation.
	fallback, err := telamalloc.New(
		telamalloc.WithMaxSteps(2_000_000),
		telamalloc.WithTimeout(10*time.Second))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-20s %8s %14s %16s %12s\n", "model", "buffers", "greedy", "telamalloc", "result")
	for _, m := range workload.Models {
		p := m.Generate(42)
		// Size the scratchpad at 105% of the contention peak: tight enough
		// that simple heuristics often fail, as on real devices where
		// earlier compiler stages pack SRAM as full as they can.
		peak := buffers.Contention(p).Peak()
		pub := toPublic(p, peak*105/100)

		start := time.Now()
		_, greedyErr := telamalloc.AllocateGreedy(pub)
		greedyTime := time.Since(start)

		if greedyErr == nil {
			fmt.Printf("%-20s %8d %11.2fms %16s %12s\n",
				p.Name, len(pub.Buffers), msf(greedyTime), "(not needed)", "greedy ok")
			continue
		}

		start = time.Now()
		_, stats, err := fallback.Allocate(context.Background(), pub)
		tmTime := time.Since(start)
		result := "telamalloc ok"
		if err != nil {
			result = "FAILED: " + err.Error()
		}
		fmt.Printf("%-20s %8d %11.2fms* %13.2fms %12s  (steps %d, backtracks %d)\n",
			p.Name, len(pub.Buffers), msf(greedyTime), msf(tmTime), result,
			stats.Steps, stats.MinorBacktracks+stats.MajorBacktracks)
	}
	fmt.Println()
	fmt.Println("* = greedy heuristic failed at this memory limit; TelaMalloc fallback used")
	fmt.Println()

	// Show why the pre-TelaMalloc fallback was a problem: the exact solver
	// on one of the harder models, with a 2-second budget.
	m, _ := workload.ByName("Image Model 1")
	p := m.Generate(42)
	peak := buffers.Contention(p).Peak()
	pub := toPublic(p, peak*105/100)
	fmt.Println("For contrast, the old ILP fallback on Image Model 1 (2s budget):")
	start := time.Now()
	_, ilpErr := telamalloc.SolveExact(pub, 0, 2*time.Second)
	fmt.Printf("  ILP: %v after %.0f ms — this is the user-visible stall TelaMalloc removes\n",
		errString(ilpErr), msf(time.Since(start)))
}

func toPublic(p *buffers.Problem, memory int64) telamalloc.Problem {
	pub := telamalloc.Problem{Name: p.Name, Memory: memory}
	for _, b := range p.Buffers {
		pub.Buffers = append(pub.Buffers, telamalloc.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	return pub
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func errString(err error) string {
	if err == nil {
		return "solved"
	}
	return err.Error()
}
