// Learned backtracking: the §6 flow end-to-end through the public API.
//
//  1. Collect imitation-learning data by solving training problems with an
//     exact-solver oracle in the loop.
//  2. Train the gradient-boosted backtracking model.
//  3. Solve hard held-out instances with and without the model and compare
//     backtrack counts (the paper's Figure 15 / §7.3 metric).
//
// Run with: go run ./examples/learnedbacktrack
package main

import (
	"context"
	"fmt"
	"log"

	"telamalloc"
	"telamalloc/internal/buffers"
	"telamalloc/internal/workload"
)

func main() {
	// Training set: random tight instances (the paper trains on its 11
	// benchmark models; random instances keep this example fast).
	var train []telamalloc.Problem
	for seed := int64(0); seed < 16; seed++ {
		train = append(train, toPublic(workload.Random(seed, 101)))
	}
	fmt.Printf("collecting imitation data from %d training problems ...\n", len(train))
	model, err := telamalloc.TrainBacktrackModel(train, 1, 60000, 20000)
	if err != nil {
		log.Fatalf("training failed: %v", err)
	}
	fmt.Println("trained 100-tree backtracking forest")
	fmt.Println()

	// Two reusable handles — one per arm — so the model is bound and the
	// options validated once, not per held-out instance. Both arms use
	// strict candidate mode so the comparison isolates the backtracking
	// policy (WithBacktrackModel implies it).
	baseline, err := telamalloc.New(
		telamalloc.WithMaxSteps(60000), telamalloc.WithoutSubproblemSplit(),
		telamalloc.WithStrictCandidates())
	if err != nil {
		log.Fatalf("configuring baseline allocator: %v", err)
	}
	learned, err := telamalloc.New(
		telamalloc.WithMaxSteps(60000), telamalloc.WithBacktrackModel(model))
	if err != nil {
		log.Fatalf("configuring learned allocator: %v", err)
	}

	fmt.Printf("%-12s %14s %14s %10s %10s\n", "instance", "backtracks", "backtracks+ML", "solved", "solved+ML")
	improved, evaluated := 0, 0
	ctx := context.Background()
	for seed := int64(100); seed < 112; seed++ {
		p := toPublic(workload.Random(seed, 101))
		_, off, errOff := baseline.Allocate(ctx, p)
		_, on, errOn := learned.Allocate(ctx, p)
		offBT := off.MinorBacktracks + off.MajorBacktracks
		onBT := on.MinorBacktracks + on.MajorBacktracks
		fmt.Printf("seed-%-7d %14d %14d %10v %10v\n",
			seed, offBT, onBT, errOff == nil, errOn == nil)
		if offBT > 0 {
			evaluated++
			if onBT < offBT || (errOff != nil && errOn == nil) {
				improved++
			}
		}
	}
	fmt.Println()
	fmt.Printf("ML reduced backtracks on %d of %d backtracking instances\n", improved, evaluated)
	fmt.Println("(the paper reports ML helping 102 of 117 hard inputs; like there, a few regressions are expected)")
}

func toPublic(p *buffers.Problem) telamalloc.Problem {
	pub := telamalloc.Problem{Name: p.Name, Memory: p.Memory}
	for _, b := range p.Buffers {
		pub.Buffers = append(pub.Buffers, telamalloc.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	return pub
}
