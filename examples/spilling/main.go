// Spilling: what an ML framework does when even TelaMalloc cannot fit the
// model. The paper's introduction: "If the allocator fails to find a
// solution, the framework must apply techniques such as rematerialization
// or sharding to reduce on-chip memory pressure at the expense of extra
// computations." This example squeezes a model into a scratchpad *smaller
// than its contention peak* — provably impossible without evictions — and
// shows the planner choosing the cheapest buffers to demote off-chip.
//
// Run with: go run ./examples/spilling
package main

import (
	"fmt"
	"log"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/spill"
	"telamalloc/internal/workload"
)

func main() {
	m, err := workload.ByName("Segmentation")
	if err != nil {
		log.Fatal(err)
	}
	p := m.Generate(3)
	peak := buffers.Contention(p).Peak()

	fmt.Printf("model %s: %d buffers, contention peak %d bytes\n", p.Name, len(p.Buffers), peak)
	fmt.Println()
	fmt.Printf("%8s %10s %12s %12s %10s\n", "memory", "% of peak", "spilled", "spill cost", "attempts")
	alloc := core.Allocator{Config: core.Config{MaxSteps: 200000}}
	for _, pct := range []int64{110, 100, 90, 80, 70, 60} {
		q := p.Clone()
		q.Memory = peak * pct / 100
		plan, err := spill.Make(spill.Request{Problem: q, Allocator: alloc})
		if err != nil {
			fmt.Printf("%8d %9d%% %12s\n", q.Memory, pct, "IMPOSSIBLE")
			continue
		}
		fmt.Printf("%8d %9d%% %6d/%-5d %12d %10d\n",
			q.Memory, pct, len(plan.Spilled), len(q.Buffers), plan.SpillCost, plan.Attempts)
	}
	fmt.Println()
	fmt.Println("every row's retained buffers form a verified packing; spilled buffers")
	fmt.Println("would be re-fetched from DRAM (or rematerialised) by the compiler")
}
