package telamalloc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/cache"
	"telamalloc/internal/core"
	"telamalloc/internal/faultinject"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/spill"
	"telamalloc/internal/telamon"
)

// AllocatePipeline runs the production escalation ladder the paper's
// deployment story describes (§7.2): cheap heuristics first, the TelaMalloc
// search when they fail, and spill planning as the last resort, so the
// caller always gets either a packing, a degradation plan, or a structured
// failure — never a crash and never an unbounded stall.
//
// The default ladder is greedy → best-fit → search → spill. Each stage is
// run inside a panic-containment boundary: a stage that panics (including a
// misbehaving learned policy inside the search) records ErrInternal for
// that stage and the ladder escalates instead of crashing the process. A
// context cancellation (WithContext) stops the ladder with ErrCancelled.
//
// One global budget — WithMaxSteps for search steps, WithTimeout for wall
// clock — is carved into per-stage shares (WithStageShare); whatever a
// stage leaves unused rolls forward to the stages after it.

// Stage names accepted by WithStages and WithStageShare, in the default
// ladder order.
const (
	StageGreedy  = "greedy"
	StageBestFit = "best-fit"
	StageSearch  = "search"
	StageSpill   = "spill"
)

// defaultLadder is the escalation order when WithStages is not given.
var defaultLadder = []string{StageGreedy, StageBestFit, StageSearch, StageSpill}

// defaultShares weight the global step/time pot across stages. The
// heuristic stages are practically instant, so nearly the whole pot belongs
// to the search, with a reserve for spill planning's repeated solves.
var defaultShares = map[string]float64{
	StageGreedy:  0.01,
	StageBestFit: 0.01,
	StageSearch:  0.68,
	StageSpill:   0.30,
}

// pipelineConfig is the pipeline-specific part of config.
type pipelineConfig struct {
	stages    []string
	shares    map[string]float64
	maxSpills int
	weights   []int64
	pinned    []bool
}

// WithStages overrides the escalation ladder. Stages run in the given
// order; each must be one of StageGreedy, StageBestFit, StageSearch,
// StageSpill, and may appear at most once.
func WithStages(stages ...string) Option {
	// Non-nil even for zero stages, so an explicitly empty ladder is
	// rejected instead of silently becoming the default one.
	return func(c *config) { c.pipe.stages = append(make([]string, 0, len(stages)), stages...) }
}

// WithStageShare sets a stage's weight when carving the global deadline and
// step pot. Weights are relative: a stage's budget is its weight divided by
// the summed weights of the stages that have not run yet, applied to
// whatever budget remains — so unused budget automatically rolls forward.
func WithStageShare(stage string, share float64) Option {
	return func(c *config) {
		if c.pipe.shares == nil {
			c.pipe.shares = make(map[string]float64)
		}
		c.pipe.shares[stage] = share
	}
}

// WithMaxSpills caps evictions in the spill stage (0 = no cap).
func WithMaxSpills(n int) Option {
	return func(c *config) { c.pipe.maxSpills = n }
}

// WithSpillCosts sets per-buffer spill weights and pin flags for the spill
// stage: weights[i] is the cost of demoting buffer i (nil = its size), and
// pinned[i] marks buffers that must stay on-chip (nil = none).
func WithSpillCosts(weights []int64, pinned []bool) Option {
	return func(c *config) {
		c.pipe.weights = append([]int64(nil), weights...)
		c.pipe.pinned = append([]bool(nil), pinned...)
	}
}

// StageReport is one stage's outcome inside a PipelineResult.
type StageReport struct {
	// Stage is the stage name (StageGreedy, ...).
	Stage string
	// Err is nil when the stage produced the winning solution; otherwise
	// it wraps exactly one public sentinel explaining why the ladder
	// escalated past the stage.
	Err error
	// Skipped marks stages that never ran, with SkipReason saying why
	// (provable infeasibility, an earlier win, or cancellation).
	Skipped    bool
	SkipReason string
	// Stats holds search-effort counters for stages that search.
	Stats Stats
	// StepBudget is the share of the global step pot the stage received
	// (0 = unlimited).
	StepBudget int64
	// Elapsed is the stage's wall-clock time.
	Elapsed time.Duration
}

// SpillPlan describes the degradation the spill stage chose.
type SpillPlan struct {
	// Spilled lists evicted buffer indices (into Problem.Buffers) in
	// eviction order; their Solution offsets are -1.
	Spilled []int
	// SpillCost is the summed weight of evicted buffers.
	SpillCost int64
	// Attempts counts allocator invocations during planning.
	Attempts int
}

// DecisionTrace is the replayable record of a pipeline win: which stage
// produced the packing and the packing itself in canonical buffer order,
// keyed by the problem's shape fingerprint. Feeding a trace back through
// WithHints lets a later solve of a fingerprint-equal problem — or the same
// buffers under a larger capacity — skip the ladder entirely. Traces are
// advisory: replay validates against the new problem and falls through to
// the cold ladder when the trace does not fit.
type DecisionTrace struct {
	// Winner is the stage whose packing the trace records.
	Winner string
	// Shape is the canonical shape fingerprint (internal/cache.ShapeKey) of
	// the problem the trace solved. Replay refuses traces whose shape does
	// not match the new problem, before even attempting validation.
	Shape string
	// Offsets is the packing in canonical buffer order, transportable onto
	// any problem with the same Shape via the canonical permutation.
	Offsets []int64
}

// PipelineResult is the structured outcome of AllocatePipeline.
type PipelineResult struct {
	// Solution holds the packing when Err is nil. When Degraded, spilled
	// buffers carry offset -1 and the remaining offsets form a valid
	// packing of the retained set.
	Solution Solution
	// Winner is the stage that produced the solution ("" on failure).
	Winner string
	// Degraded reports that the solution required evicting buffers.
	Degraded bool
	// Spill is set whenever the spill stage won, even with zero evictions
	// (Attempts is still informative); Degraded is true only when Spilled
	// is non-empty.
	Spill *SpillPlan
	// Stages reports every configured stage in ladder order.
	Stages []StageReport
	// LowerBound is the contention peak — an unconditional lower bound on
	// the memory any packing needs. On hard failure it is the evidence:
	// LowerBound > Memory proves no packing exists.
	LowerBound int64
	// Memory echoes the problem's limit, so LowerBound is interpretable.
	Memory int64
	// Trace is the replayable record of the win, exported for full
	// (non-degraded) packings so callers can warm-start repeated problems
	// via WithHints. Nil on failure and for degraded results — a packing
	// with evicted buffers is not transportable.
	Trace *DecisionTrace
	// HintReplayed reports that the solution came from replaying a
	// WithHints trace rather than running the ladder.
	HintReplayed bool
}

// AllocatePipeline packs the problem through the escalation ladder. A nil
// error guarantees a usable result: either a full packing (Degraded false,
// same validity contract as Allocate) or a spill-degraded one (Degraded
// true). On failure the error wraps exactly one public sentinel and
// PipelineResult still carries the per-stage evidence.
//
// AllocatePipeline is a thin wrapper over a shared zero-option [Allocator]
// handle; programs making repeated calls with the same options should build
// their own handle with [New] and call [Allocator.Pipeline].
func AllocatePipeline(p Problem, opts ...Option) (PipelineResult, error) {
	return defaultHandle().Pipeline(context.Background(), p, opts...)
}

// pipelineWith runs one ladder pass under an already-validated config,
// recording per-stage telemetry into pm.
func pipelineWith(c config, pm *pipelineMetrics, p Problem) (PipelineResult, error) {
	pm.runs.Inc()
	q := toInternal(p)
	out := PipelineResult{Memory: p.Memory}
	if err := q.Validate(); err != nil {
		return out, fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	out.LowerBound = buffers.Contention(q).Peak()

	ladder := c.pipe.stages
	if ladder == nil {
		ladder = defaultLadder
	}
	if err := validateLadder(ladder); err != nil {
		return out, err
	}

	// Resolve the global budget once, at pipeline start: the step pot from
	// WithMaxSteps and the deadline from WithTimeout (measured from now) or
	// an explicit core deadline.
	globalDeadline := time.Time{}
	if c.timeout > 0 {
		globalDeadline = time.Now().Add(c.timeout)
	}
	if !c.core.Deadline.IsZero() && (globalDeadline.IsZero() || c.core.Deadline.Before(globalDeadline)) {
		globalDeadline = c.core.Deadline
	}
	c.core.Deadline = globalDeadline
	c.timeout = 0 // finalize must not re-resolve it per stage
	stepPot := c.core.MaxSteps

	// Provable infeasibility: no packing fits under the contention peak,
	// so every packing stage would only burn its budget before failing.
	// Jump straight to degradation.
	infeasible := out.LowerBound > p.Memory

	fp, perm := cache.Canonicalize(q)

	// Hint replay: a trace from a previous fingerprint-equal win, replayed
	// through the canonical permutation and re-validated, settles the whole
	// ladder for the cost of one validation sweep. An unusable hint (wrong
	// shape, stale offsets, panic during replay) is silently discarded and
	// the cold ladder below runs exactly as if no hint existed.
	if !infeasible && c.hint != nil {
		if sol := replayTrace(c.hint, q, fp, perm); sol != nil {
			pm.replays.Inc()
			out.Winner = c.hint.Winner
			out.Solution = Solution{Offsets: sol.Offsets}
			out.HintReplayed = true
			out.Trace = &DecisionTrace{
				Winner:  c.hint.Winner,
				Shape:   fp.ShapeKey,
				Offsets: cache.ToCanonical(sol.Offsets, perm),
			}
			for _, s := range ladder {
				out.Stages = append(out.Stages, StageReport{Stage: s, Skipped: true, SkipReason: "hint replay succeeded"})
			}
			return out, nil
		}
	}

	run := newLadderRun(c, pm, q, ladder, stepPot, globalDeadline)
	for i, stage := range ladder {
		if err := run.ctxErr(); err != nil {
			run.skipFrom(i, "pipeline cancelled")
			out.Stages = run.reports
			return out, fmt.Errorf("%w: %v", ErrCancelled, err)
		}
		if infeasible && stage != StageSpill {
			run.skip(stage, fmt.Sprintf("provably infeasible: lower bound %d > memory %d", out.LowerBound, p.Memory))
			continue
		}
		rep, sol, plan := run.runStage(stage)
		if sol != nil {
			run.skipFrom(i+1, "earlier stage succeeded")
			out.Stages = run.reports
			out.Winner = stage
			out.Solution = Solution{Offsets: sol.Offsets}
			if plan != nil {
				out.Spill = plan
				out.Degraded = len(plan.Spilled) > 0
				pm.spilled.Add(int64(len(plan.Spilled)))
			}
			if !out.Degraded {
				out.Trace = &DecisionTrace{
					Winner:  stage,
					Shape:   fp.ShapeKey,
					Offsets: cache.ToCanonical(sol.Offsets, perm),
				}
			}
			return out, nil
		}
		if errors.Is(rep.Err, ErrCancelled) {
			run.skipFrom(i+1, "pipeline cancelled")
			out.Stages = run.reports
			return out, rep.Err
		}
	}
	out.Stages = run.reports
	return out, run.failure(out)
}

// replayTrace transports a decision trace onto q and returns the packing
// when it is provably valid, nil otherwise. The shape check rejects traces
// from structurally different problems before validation; the containment
// boundary turns any replay panic into a cold-path fallthrough, matching
// the pipeline's never-crash contract.
func replayTrace(t *DecisionTrace, q *buffers.Problem, fp cache.Fingerprint, perm []int) (sol *buffers.Solution) {
	defer func() {
		if recover() != nil {
			sol = nil
		}
	}()
	if t == nil || t.Shape != fp.ShapeKey {
		return nil
	}
	offsets := cache.Replay(t.Offsets, perm)
	if offsets == nil {
		return nil
	}
	candidate := &buffers.Solution{Offsets: offsets}
	if candidate.Validate(q) != nil {
		return nil
	}
	return candidate
}

// validateLadder rejects unknown or duplicated stage names.
func validateLadder(ladder []string) error {
	if len(ladder) == 0 {
		return fmt.Errorf("%w: empty pipeline ladder", ErrInvalidProblem)
	}
	seen := make(map[string]bool, len(ladder))
	for _, s := range ladder {
		switch s {
		case StageGreedy, StageBestFit, StageSearch, StageSpill:
		default:
			return fmt.Errorf("%w: unknown pipeline stage %q", ErrInvalidProblem, s)
		}
		if seen[s] {
			return fmt.Errorf("%w: duplicate pipeline stage %q", ErrInvalidProblem, s)
		}
		seen[s] = true
	}
	return nil
}

// ladderRun carries the escalation state: remaining budget, per-stage
// reports, and the configuration shared by all stages.
type ladderRun struct {
	c              config
	pm             *pipelineMetrics
	q              *buffers.Problem
	ladder         []string
	remainingSteps int64
	globalDeadline time.Time
	reports        []StageReport
	started        int // stages run or skipped so far
}

func newLadderRun(c config, pm *pipelineMetrics, q *buffers.Problem, ladder []string, pot int64, deadline time.Time) *ladderRun {
	return &ladderRun{c: c, pm: pm, q: q, ladder: ladder, remainingSteps: pot, globalDeadline: deadline}
}

func (lr *ladderRun) ctxErr() error {
	if lr.c.ctx != nil {
		return lr.c.ctx.Err()
	}
	return nil
}

// shareOf returns stage's weight under the configured (or default) shares.
func (lr *ladderRun) shareOf(stage string) float64 {
	if lr.c.pipe.shares != nil {
		if w, ok := lr.c.pipe.shares[stage]; ok && w > 0 {
			return w
		}
	}
	if w, ok := defaultShares[stage]; ok {
		return w
	}
	return 1
}

// carve computes the stage's slice of the remaining step pot and wall
// clock: its weight over the summed weights of the not-yet-run stages.
// Stages that left budget unused implicitly roll it forward, because every
// carve starts from what actually remains.
func (lr *ladderRun) carve(stage string) (steps int64, deadline time.Time) {
	var sum float64
	for _, s := range lr.ladder[lr.started:] {
		sum += lr.shareOf(s)
	}
	frac := 1.0
	if sum > 0 {
		frac = lr.shareOf(stage) / sum
	}
	if lr.remainingSteps > 0 {
		steps = int64(float64(lr.remainingSteps) * frac)
		if steps < 1 {
			steps = 1
		}
	}
	deadline = lr.globalDeadline
	if !deadline.IsZero() && frac < 1 {
		if left := time.Until(deadline); left > 0 {
			deadline = time.Now().Add(time.Duration(float64(left) * frac))
		}
	}
	return steps, deadline
}

// skip records a stage that never ran.
func (lr *ladderRun) skip(stage, reason string) {
	if sm := lr.pm.stages[stage]; sm != nil {
		sm.skipped.Inc()
	}
	lr.reports = append(lr.reports, StageReport{Stage: stage, Skipped: true, SkipReason: reason})
	lr.started++
}

// skipFrom marks every stage at index i and beyond as skipped.
func (lr *ladderRun) skipFrom(i int, reason string) {
	for _, s := range lr.ladder[i:] {
		lr.skip(s, reason)
	}
}

// runStage executes one stage inside the containment boundary and records
// its report. A non-nil sol means the stage won; plan is non-nil only for
// the spill stage.
func (lr *ladderRun) runStage(stage string) (rep StageReport, sol *buffers.Solution, plan *SpillPlan) {
	steps, deadline := lr.carve(stage)
	rep = StageReport{Stage: stage, StepBudget: steps}
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				sol, plan = nil, nil
				rep.Err = fmt.Errorf("%w: panic in stage %s: %v", ErrInternal, stage, r)
			}
		}()
		if hook := lr.c.core.Hook; hook != nil {
			hook(faultinject.StageEntry(stage))
		}
		sol, plan, rep.Stats, rep.Err = lr.execute(stage, steps, deadline)
		if hook := lr.c.core.Hook; hook != nil {
			// The exit point sits inside the containment boundary on
			// purpose: a crash while the stage's verdict is being handed
			// back discards the result and fails the stage, so the ladder
			// escalates instead of trusting a half-delivered answer.
			hook(faultinject.StageExit(stage))
		}
	}()
	rep.Elapsed = time.Since(start)
	if rep.Stats.Steps > 0 && lr.remainingSteps > 0 {
		lr.remainingSteps -= rep.Stats.Steps
		if lr.remainingSteps < 1 {
			lr.remainingSteps = 1 // a zero pot would read as "unlimited"
		}
	}
	if sm := lr.pm.stages[stage]; sm != nil {
		sm.seconds.ObserveDuration(rep.Elapsed.Nanoseconds())
		sm.steps.Add(rep.Stats.Steps)
		sm.budget.Add(rep.StepBudget)
		if sol != nil {
			sm.won.Inc()
		} else {
			sm.failed.Inc()
		}
	}
	lr.reports = append(lr.reports, rep)
	lr.started++
	return rep, sol, plan
}

// execute dispatches one stage. Every error path wraps exactly one public
// sentinel.
func (lr *ladderRun) execute(stage string, steps int64, deadline time.Time) (*buffers.Solution, *SpillPlan, Stats, error) {
	switch stage {
	case StageGreedy:
		sol, err := heuristics.GreedyContention{}.Allocate(lr.q)
		if err != nil {
			return nil, nil, Stats{}, fmt.Errorf("%w: greedy: %v", ErrNoSolution, err)
		}
		return sol, nil, Stats{}, nil
	case StageBestFit:
		sol, err := heuristics.BestFit{}.Allocate(lr.q)
		if err != nil {
			return nil, nil, Stats{}, fmt.Errorf("%w: best-fit: %v", ErrNoSolution, err)
		}
		return sol, nil, Stats{}, nil
	case StageSearch:
		cfg := lr.searchConfig(steps, deadline)
		res := core.Solve(lr.q, cfg)
		st := statsFrom(res)
		switch res.Status {
		case telamon.Solved:
			return res.Solution, nil, st, nil
		case telamon.Budget:
			return nil, nil, st, fmt.Errorf("%w: search stage", ErrBudget)
		case telamon.Cancelled:
			return nil, nil, st, fmt.Errorf("%w: search stage", ErrCancelled)
		case telamon.Internal:
			return nil, nil, st, fmt.Errorf("%w: search stage: %v", ErrInternal, res.Err)
		default:
			return nil, nil, st, fmt.Errorf("%w: search stage", ErrNoSolution)
		}
	case StageSpill:
		cfg := lr.searchConfig(steps, deadline)
		req := spill.Request{
			Problem:   lr.q,
			Weights:   lr.c.pipe.weights,
			Pinned:    lr.c.pipe.pinned,
			Allocator: core.Allocator{Config: cfg},
			MaxSpills: lr.c.pipe.maxSpills,
			Ctx:       lr.c.ctx,
		}
		if req.Weights != nil && len(req.Weights) == 0 {
			req.Weights = nil
		}
		if req.Pinned != nil && len(req.Pinned) == 0 {
			req.Pinned = nil
		}
		plan, err := spill.Make(req)
		if err != nil {
			switch {
			case errors.Is(err, spill.ErrCancelled):
				return nil, nil, Stats{}, fmt.Errorf("%w: spill stage: %v", ErrCancelled, err)
			case errors.Is(err, spill.ErrAllocatorPanic), errors.Is(err, core.ErrPanic):
				return nil, nil, Stats{}, fmt.Errorf("%w: spill stage: %v", ErrInternal, err)
			case errors.Is(err, spill.ErrCannotFit):
				return nil, nil, Stats{}, fmt.Errorf("%w: spill stage: %v", ErrNoSolution, err)
			default:
				return nil, nil, Stats{}, fmt.Errorf("%w: spill stage: %v", ErrNoSolution, err)
			}
		}
		return plan.Solution, &SpillPlan{
			Spilled:   append([]int(nil), plan.Spilled...),
			SpillCost: plan.SpillCost,
			Attempts:  plan.Attempts,
		}, Stats{}, nil
	}
	return nil, nil, Stats{}, fmt.Errorf("%w: unknown pipeline stage %q", ErrInvalidProblem, stage)
}

// searchConfig finalizes the user config for a searching stage with the
// stage's carved budget.
func (lr *ladderRun) searchConfig(steps int64, deadline time.Time) core.Config {
	cfg := lr.c.finalize(lr.q)
	cfg.MaxSteps = steps
	cfg.Deadline = deadline
	return cfg
}

func statsFrom(res core.Result) Stats {
	return Stats{
		Steps:           res.Stats.Steps,
		Placements:      res.Stats.Placements,
		MinorBacktracks: res.Stats.MinorBacktracks,
		MajorBacktracks: res.Stats.MajorBacktracks,
		Subproblems:     res.Subproblems,
	}
}

// failure picks the terminal error after every stage failed: the verdict
// of the last stage that actually ran, since the ladder escalates and the
// final stage is the most empowered one — a greedy miss means nothing once
// the search has spoken, and ErrCannotFit from the spill stage outranks
// both. (Cancellation never reaches here; the ladder returns ErrCancelled
// as soon as a stage reports it.) The PipelineResult carries the
// lower-bound evidence either way.
func (lr *ladderRun) failure(out PipelineResult) error {
	for i := len(lr.reports) - 1; i >= 0; i-- {
		if rep := lr.reports[i]; !rep.Skipped && rep.Err != nil {
			return rep.Err
		}
	}
	// Every stage skipped (e.g. a ladder without a spill stage on a
	// provably infeasible problem): report the evidence directly.
	return fmt.Errorf("%w: no stage produced a packing (lower bound %d, memory %d)",
		ErrNoSolution, out.LowerBound, out.Memory)
}
