package telamalloc_test

import (
	"bytes"
	"errors"
	"testing"

	"telamalloc"
	"telamalloc/internal/check"
)

// TestSolveExactStatusMapping pins the public error mapping of the exact
// solver: a packing on feasible instances, ErrNoSolution on a proven
// pigeonhole, ErrBudget when the step pot runs dry before either.
func TestSolveExactStatusMapping(t *testing.T) {
	feasible := telamalloc.Problem{
		Memory: 32,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 4, Size: 16},
			{Start: 2, End: 6, Size: 16},
			{Start: 4, End: 8, Size: 16},
		},
	}
	sol, err := telamalloc.SolveExact(feasible, 100_000, 0)
	if err != nil {
		t.Fatalf("feasible instance: %v", err)
	}
	if verr := sol.Validate(feasible); verr != nil {
		t.Fatalf("exact packing invalid: %v", verr)
	}
	if rep := check.Solution(feasible, sol.Offsets); !rep.OK() {
		t.Fatalf("independent checker rejected the exact packing: %v", rep.Err())
	}

	infeasible := telamalloc.Problem{
		Memory: 16,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 4, Size: 12},
			{Start: 0, End: 4, Size: 12},
		},
	}
	if _, err := telamalloc.SolveExact(infeasible, 100_000, 0); !errors.Is(err, telamalloc.ErrNoSolution) {
		t.Fatalf("pigeonhole pair: got %v, want ErrNoSolution", err)
	}

	// A one-step pot on a multi-buffer instance exhausts before the search
	// can either pack or prove anything.
	if _, err := telamalloc.SolveExact(feasible, 1, 0); !errors.Is(err, telamalloc.ErrBudget) {
		t.Fatalf("step-starved solve: got %v, want ErrBudget", err)
	}
}

// TestTrainBacktrackModelDeterministic: same problems, same seed, same step
// budgets must serialise to the same bytes — training is part of the
// reproducibility surface (a model file diff must mean the training set or
// solver changed, never scheduling).
func TestTrainBacktrackModelDeterministic(t *testing.T) {
	var problems []telamalloc.Problem
	for _, fam := range check.DefaultFamilies() {
		for seed := int64(1); seed <= 2; seed++ {
			problems = append(problems, fam.Generate(seed))
		}
	}
	train := func() []byte {
		t.Helper()
		m, err := telamalloc.TrainBacktrackModel(problems, 42, 5_000, 20_000)
		if err != nil {
			t.Fatalf("training failed: %v", err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := train(), train()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed trained different models:\n%s\n%s", a, b)
	}

	m, err := telamalloc.TrainBacktrackModel(problems, 43, 5_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, buf.Bytes()) {
		t.Log("different seeds produced identical models (legal, but worth knowing)")
	}
}
