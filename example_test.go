package telamalloc_test

import (
	"fmt"

	"telamalloc"
)

// ExampleAllocate packs three overlapping buffers into a 12-byte scratchpad.
func ExampleAllocate() {
	problem := telamalloc.Problem{
		Memory: 12,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
		},
	}
	sol, _, err := telamalloc.Allocate(problem)
	if err != nil {
		fmt.Println("failed:", err)
		return
	}
	fmt.Println("valid:", sol.Validate(problem) == nil)
	fmt.Println("peak:", sol.PeakUsage(problem))
	// Output:
	// valid: true
	// peak: 12
}

// ExampleAllocateGreedy shows the fast baseline that production compilers
// try before falling back to the full search.
func ExampleAllocateGreedy() {
	problem := telamalloc.Problem{
		Memory: 64,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 5, Size: 16},
			{Start: 5, End: 9, Size: 16}, // disjoint in time: reuses the space
		},
	}
	sol, err := telamalloc.AllocateGreedy(problem)
	if err != nil {
		fmt.Println("failed:", err)
		return
	}
	fmt.Println("offsets:", sol.Offsets[0], sol.Offsets[1])
	// Output:
	// offsets: 0 0
}

// ExampleMinMemoryLowerBound computes the contention peak — the
// unconditional lower bound on any packing.
func ExampleMinMemoryLowerBound() {
	problem := telamalloc.Problem{
		Memory: 1 << 20,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 4, Size: 100},
			{Start: 2, End: 6, Size: 50}, // overlaps the first in [2,4)
			{Start: 4, End: 8, Size: 60},
		},
	}
	fmt.Println(telamalloc.MinMemoryLowerBound(problem))
	// Output:
	// 150
}

// ExampleSolveExact demonstrates the exact solver proving infeasibility.
func ExampleSolveExact() {
	problem := telamalloc.Problem{
		Memory: 7,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
	}
	_, err := telamalloc.SolveExact(problem, 0, 0)
	fmt.Println(err)
	// Output:
	// telamalloc: no feasible packing found
}
