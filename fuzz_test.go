package telamalloc_test

// Native fuzz targets for the two public entry points. The properties
// fuzzed for are the package's hard robustness contract:
//
//  1. no input — however adversarial — panics;
//  2. a nil error implies a solution that passes Validate;
//  3. every error wraps exactly one public sentinel, so callers can always
//     dispatch with errors.Is.

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"telamalloc"
)

// decodeProblem builds a problem from raw fuzz bytes: five bytes per
// buffer (start, duration, size low byte, size high byte, align code), plus
// a memory word. The size bytes can combine into huge, overflow-adjacent
// values; duration zero produces Start == End; align codes include
// non-powers of two and math.MaxInt64.
func decodeProblem(data []byte, memory uint32) telamalloc.Problem {
	aligns := []int64{0, 1, 2, 3, 4, 64, 1 << 40, math.MaxInt64}
	p := telamalloc.Problem{Memory: int64(memory)}
	for len(data) >= 5 && len(p.Buffers) < 24 {
		start := int64(data[0])
		dur := int64(data[1])
		size := int64(binary.LittleEndian.Uint16(data[2:4]))
		if size&1 == 1 {
			// Odd sizes escalate to the overflow-adjacent regime.
			size = math.MaxInt64 - size
		}
		p.Buffers = append(p.Buffers, telamalloc.Buffer{
			Start: start,
			End:   start + dur, // dur 0 → empty live range
			Size:  size,
			Align: aligns[int(data[4])%len(aligns)],
		})
		data = data[5:]
	}
	return p
}

// sentinels are the public error taxonomy.
var sentinels = []error{
	telamalloc.ErrNoSolution,
	telamalloc.ErrBudget,
	telamalloc.ErrCancelled,
	telamalloc.ErrInvalidProblem,
	telamalloc.ErrInternal,
}

// checkSentinel asserts err wraps exactly one public sentinel.
func checkSentinel(t *testing.T, err error) {
	t.Helper()
	n := 0
	for _, s := range sentinels {
		if errors.Is(err, s) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("error %v matches %d public sentinels, want exactly 1", err, n)
	}
}

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{}, uint32(0))                                  // no buffers, zero memory
	f.Add([]byte{0, 5, 4, 0, 0, 0, 5, 4, 0, 0}, uint32(4))      // two co-live 4s in 4: infeasible
	f.Add([]byte{0, 0, 8, 0, 0}, uint32(16))                    // Start == End
	f.Add([]byte{0, 10, 255, 255, 7}, uint32(100))              // huge size, MaxInt64 align
	f.Add([]byte{0, 10, 3, 0, 0, 2, 9, 4, 0, 5}, uint32(64))    // benign pair, odd aligns
	f.Add([]byte{0, 200, 9, 0, 6, 0, 200, 9, 0, 6}, uint32(30)) // overflow-adjacent sizes
}

func FuzzAllocate(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, memory uint32) {
		p := decodeProblem(data, memory)
		sol, _, err := telamalloc.Allocate(p, telamalloc.WithMaxSteps(2000))
		if err != nil {
			checkSentinel(t, err)
			return
		}
		if verr := sol.Validate(p); verr != nil {
			t.Fatalf("nil error but invalid solution: %v", verr)
		}
	})
}

func FuzzPipeline(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, memory uint32) {
		p := decodeProblem(data, memory)
		res, err := telamalloc.AllocatePipeline(p, telamalloc.WithMaxSteps(2000))
		if err != nil {
			checkSentinel(t, err)
			return
		}
		if !res.Degraded {
			if verr := res.Solution.Validate(p); verr != nil {
				t.Fatalf("nil error but invalid solution (winner %s): %v", res.Winner, verr)
			}
			return
		}
		// Degraded: spilled buffers must be marked off-chip and the
		// retained subset must form a valid packing on its own.
		spilled := make(map[int]bool, len(res.Spill.Spilled))
		for _, i := range res.Spill.Spilled {
			spilled[i] = true
		}
		var retained telamalloc.Problem
		retained.Memory = p.Memory
		var offsets []int64
		for i, off := range res.Solution.Offsets {
			if spilled[i] {
				if off != -1 {
					t.Fatalf("spilled buffer %d has offset %d, want -1", i, off)
				}
				continue
			}
			retained.Buffers = append(retained.Buffers, p.Buffers[i])
			offsets = append(offsets, off)
		}
		sub := telamalloc.Solution{Offsets: offsets}
		if verr := sub.Validate(retained); verr != nil {
			t.Fatalf("degraded plan's retained packing invalid: %v", verr)
		}
	})
}
