package telamalloc_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"telamalloc"
	"telamalloc/internal/obs"
)

func TestNewValidatesOptions(t *testing.T) {
	for name, opts := range map[string][]telamalloc.Option{
		"negative timeout":    {telamalloc.WithTimeout(-time.Second)},
		"negative steps":      {telamalloc.WithMaxSteps(-1)},
		"empty ladder":        {telamalloc.WithStages()},
		"unknown stage":       {telamalloc.WithStages("greedy", "oracle")},
		"duplicate stage":     {telamalloc.WithStages("greedy", "greedy")},
		"negative share":      {telamalloc.WithStageShare(telamalloc.StageSearch, -0.5)},
		"unknown share stage": {telamalloc.WithStageShare("oracle", 0.5)},
		"negative spill cap":  {telamalloc.WithMaxSpills(-1)},
	} {
		if _, err := telamalloc.New(opts...); !errors.Is(err, telamalloc.ErrInvalidProblem) {
			t.Errorf("%s: New err = %v, want ErrInvalidProblem", name, err)
		}
	}
	if _, err := telamalloc.New(); err != nil {
		t.Fatalf("zero-option New: %v", err)
	}
}

// TestDeadlinePrecedence pins the Allocator's earliest-wins deadline rule:
// whichever stop source has already fired when the solve first polls decides
// the sentinel — WithTimeout → ErrBudget; a done context (WithContext or the
// call context) or a WithCancel hook → ErrCancelled — and cancellation
// outranks the wall clock on ties because the search polls Cancel first.
func TestDeadlinePrecedence(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancelExpired()

	cases := []struct {
		name string
		ctx  context.Context
		opts []telamalloc.Option
		want error
	}{
		{"timeout only", context.Background(),
			[]telamalloc.Option{telamalloc.WithTimeout(time.Nanosecond)}, telamalloc.ErrBudget},
		{"call context cancelled", cancelled, nil, telamalloc.ErrCancelled},
		{"call context deadline passed", expired, nil, telamalloc.ErrCancelled},
		{"WithContext cancelled", context.Background(),
			[]telamalloc.Option{telamalloc.WithContext(cancelled)}, telamalloc.ErrCancelled},
		{"WithCancel fires", context.Background(),
			[]telamalloc.Option{telamalloc.WithCancel(func() bool { return true })}, telamalloc.ErrCancelled},
		{"cancellation outranks expired timeout", cancelled,
			[]telamalloc.Option{telamalloc.WithTimeout(time.Nanosecond)}, telamalloc.ErrCancelled},
		{"timeout expires under live contexts", context.Background(),
			[]telamalloc.Option{
				telamalloc.WithTimeout(time.Nanosecond),
				telamalloc.WithContext(context.TODO()),
			}, telamalloc.ErrBudget},
		{"WithContext cancelled while call context live", context.TODO(),
			[]telamalloc.Option{telamalloc.WithContext(cancelled)}, telamalloc.ErrCancelled},
	}
	p := figure1()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := telamalloc.New(tc.opts...)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if _, _, err := a.Allocate(tc.ctx, p); !errors.Is(err, tc.want) {
				t.Errorf("Allocate err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestAllocatorHandleSolves(t *testing.T) {
	a, err := telamalloc.New(telamalloc.WithMaxSteps(200000))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := figure1()
	sol, stats, err := a.Allocate(context.Background(), p)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if stats.Placements != int64(len(p.Buffers)) {
		t.Errorf("placements = %d, want %d", stats.Placements, len(p.Buffers))
	}
	res, err := a.Pipeline(context.Background(), p)
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatalf("invalid pipeline solution: %v", err)
	}
}

func TestAllocatorPerCallOptionsDoNotLeak(t *testing.T) {
	a, err := telamalloc.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := figure1()
	// A per-call bad option must fail that call only.
	if _, _, err := a.Allocate(context.Background(), p, telamalloc.WithMaxSteps(-1)); !errors.Is(err, telamalloc.ErrInvalidProblem) {
		t.Fatalf("per-call invalid option err = %v, want ErrInvalidProblem", err)
	}
	// A per-call stage share must not contaminate the handle's later calls.
	if _, err := a.Pipeline(context.Background(), p, telamalloc.WithStageShare(telamalloc.StageSearch, 0.9)); err != nil {
		t.Fatalf("Pipeline with per-call share: %v", err)
	}
	if _, _, err := a.Allocate(context.Background(), p); err != nil {
		t.Fatalf("handle damaged by per-call options: %v", err)
	}
}

func TestPipelineRecordsObservability(t *testing.T) {
	r := obs.NewRegistry()
	a, err := telamalloc.New(telamalloc.WithObservability(r))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := figure1()
	if _, _, err := a.Allocate(context.Background(), p); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	res, err := a.Pipeline(context.Background(), p)
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	text := scrape(r)
	for _, want := range []string{
		"telamalloc_pipeline_runs_total 1",
		`telamalloc_stage_outcomes_total{outcome="won",stage="` + res.Winner + `"} 1`,
		"telamalloc_solver_solves_total 1",
	} {
		if !containsLine(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}

	// Hint replay settles the ladder and is counted as a replay, with every
	// stage skipped.
	if res.Trace == nil {
		t.Fatal("expected a replayable trace from a full win")
	}
	if _, err := a.Pipeline(context.Background(), p, telamalloc.WithHints(res.Trace)); err != nil {
		t.Fatalf("hinted Pipeline: %v", err)
	}
	text = scrape(r)
	if !containsLine(text, "telamalloc_pipeline_hint_replays_total 1") {
		t.Errorf("scrape missing hint replay count\n%s", text)
	}
}

// scrape renders the registry in Prometheus text format.
func scrape(r *obs.Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// containsLine reports whether the exposition text has a line starting with
// the given prefix.
func containsLine(text, prefix string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}
