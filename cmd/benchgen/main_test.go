package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"telamalloc/internal/trace"
)

func TestBenchgenGeneratesLoadableTraces(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchgen")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-out", dir, "-model", "OpenPose", "-random", "3", "-micro").CombinedOutput()
	if err != nil {
		t.Fatalf("benchgen: %v\n%s", err, out)
	}
	for _, name := range []string{
		"openpose.json",
		"random-000.json",
		"random-002.json",
		"non-overlapping-1k.json",
		"full-overlap-100.json",
	} {
		p, err := trace.LoadProblem(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(p.Buffers) == 0 {
			t.Errorf("%s: empty problem", name)
		}
	}
	if !strings.Contains(string(out), "wrote") {
		t.Errorf("no progress output: %s", out)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Image Model 1"); got != "image-model-1" {
		t.Errorf("sanitize = %q", got)
	}
}
