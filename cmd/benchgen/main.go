// Command benchgen generates workload traces: the benchmark model proxies,
// the microbenchmarks, and random ablation instances, saved in the JSON
// trace format so they can be replayed with cmd/telamalloc.
//
// Usage:
//
//	benchgen -out traces/                      # all model proxies
//	benchgen -out traces/ -model OpenPose      # one model
//	benchgen -out traces/ -random 100          # 100 random instances
//	benchgen -out traces/ -micro               # microbenchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"telamalloc/internal/buffers"
	"telamalloc/internal/trace"
	"telamalloc/internal/workload"
)

func main() {
	var (
		outDir    = flag.String("out", "traces", "output directory")
		modelName = flag.String("model", "", "generate only this model proxy")
		seed      = flag.Int64("seed", 1, "generation seed")
		ratio     = flag.Int("ratio", 110, "memory as percent of contention peak")
		randomN   = flag.Int("random", 0, "also generate N random ablation instances")
		micro     = flag.Bool("micro", false, "also generate the Table 1 microbenchmarks")
	)
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	save := func(name string, p *buffers.Problem) {
		path := filepath.Join(*outDir, sanitize(name)+".json")
		if err := trace.Save(path, trace.FromProblem(p, nil)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %-40s %6d buffers, memory %d\n", path, len(p.Buffers), p.Memory)
	}
	sized := func(p *buffers.Problem) *buffers.Problem {
		peak := buffers.Contention(p).Peak()
		p.Memory = peak * int64(*ratio) / 100
		if p.Memory < peak {
			p.Memory = peak
		}
		return p
	}

	if *modelName != "" {
		m, err := workload.ByName(*modelName)
		if err != nil {
			fatal(err)
		}
		save(m.Name, sized(m.Generate(*seed)))
	} else {
		for _, m := range workload.Models {
			save(m.Name, sized(m.Generate(*seed)))
		}
	}
	if *micro {
		save("non-overlapping-1K", workload.NonOverlapping(1000, *seed))
		save("non-overlapping-10K", workload.NonOverlapping(10000, *seed))
		save("full-overlap-100", workload.FullOverlap(100, *seed))
		save("full-overlap-1K", workload.FullOverlap(1000, *seed))
	}
	for i := 0; i < *randomN; i++ {
		p := workload.Random(*seed+int64(i), *ratio)
		save(fmt.Sprintf("random-%03d", i), p)
	}
}

func sanitize(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
