package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the CLI binary one time for all tests in this package.
var (
	buildMu   sync.Mutex
	builtPath string
	buildErr  error
)

func cliPath(t *testing.T) string {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if builtPath == "" && buildErr == nil {
		dir, err := os.MkdirTemp("", "telamalloc-cli")
		if err != nil {
			t.Fatal(err)
		}
		builtPath = filepath.Join(dir, "telamalloc")
		out, err := exec.Command("go", "build", "-o", builtPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			t.Fatalf("build failed: %v\n%s", err, out)
		}
	}
	if buildErr != nil {
		t.Fatalf("build previously failed: %v", buildErr)
	}
	return builtPath
}

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(cliPath(t), args...).CombinedOutput()
	return string(out), err
}

func TestCLISolveModel(t *testing.T) {
	out, err := run(t, "-model", "FPN Model", "-ratio", "120", "-max-steps", "200000")
	if err != nil {
		t.Fatalf("CLI failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "solved in") {
		t.Errorf("missing summary: %s", out)
	}
	if !strings.Contains(out, "overlapping pairs") {
		t.Errorf("missing problem header: %s", out)
	}
}

func TestCLITraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	out, err := run(t, "-model", "Segmentation", "-ratio", "130", "-out", tracePath, "-q", "-max-steps", "200000")
	if err != nil {
		t.Fatalf("solve+save failed: %v\n%s", err, out)
	}
	out, err = run(t, "-trace", tracePath, "-alloc", "greedy", "-q")
	if err != nil {
		t.Fatalf("greedy on saved trace failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "greedy: solved") {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestCLIAllAllocators(t *testing.T) {
	for _, alloc := range []string{"telamalloc", "greedy", "bestfit", "ilp", "cp"} {
		out, err := run(t, "-model", "Saliency Model", "-ratio", "150", "-alloc", alloc, "-q",
			"-max-steps", "300000", "-timeout", "20s")
		if err != nil {
			t.Errorf("%s failed: %v\n%s", alloc, err, out)
		}
	}
}

func TestCLISpillFallback(t *testing.T) {
	out, err := run(t, "-model", "Segmentation", "-ratio", "80", "-spill", "-q", "-max-steps", "100000")
	if err != nil {
		t.Fatalf("spill path failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "spilled") {
		t.Errorf("spill summary missing: %s", out)
	}
}

func TestCLIPipeline(t *testing.T) {
	// Tight enough that the heuristics fail and the search stage wins.
	out, err := run(t, "-model", "OpenPose", "-ratio", "105", "-pipeline", "-max-steps", "200000")
	if err != nil {
		t.Fatalf("pipeline failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "stage search") || !strings.Contains(out, "pipeline: search solved") {
		t.Errorf("stage report missing: %s", out)
	}
	// Sub-peak ratio: provably infeasible, must degrade via spill — served,
	// but flagged with exit code 4 so callers can tell it from a full packing.
	out, err = run(t, "-model", "OpenPose", "-ratio", "90", "-pipeline", "-max-steps", "200000")
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 4 {
		t.Fatalf("degraded pipeline: err %v, want exit code 4\n%s", err, out)
	}
	if !strings.Contains(out, "provably infeasible") || !strings.Contains(out, "degraded via spill") {
		t.Errorf("degradation report missing: %s", out)
	}
}

func TestCLIPipelineExitCodes(t *testing.T) {
	// Solved: exit 0 (run returns nil error). Degraded-but-served (exit 4)
	// is asserted in TestCLIPipeline; hard failures (exit 2) need a spill
	// stage that cannot serve — pinned buffers or a spill cap, neither of
	// which the CLI exposes — so here we pin down the remaining boundary:
	// usage/I-O errors keep exit 1, distinct from pipeline verdicts.
	if out, err := run(t, "-model", "FPN Model", "-ratio", "130", "-pipeline", "-q", "-max-steps", "200000"); err != nil {
		t.Errorf("solved pipeline: %v, want exit 0\n%s", err, out)
	}
	out, err := run(t, "-trace", "/nonexistent.json", "-pipeline", "-q")
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Errorf("missing trace in pipeline mode: err %v, want exit code 1\n%s", err, out)
	}
}

func TestCLIRender(t *testing.T) {
	out, err := run(t, "-model", "FPN Model", "-ratio", "130", "-render", "-q", "-max-steps", "200000")
	if err != nil {
		t.Fatalf("render failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "|") || !strings.Contains(out, "memory") {
		t.Errorf("render output missing: %s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if out, err := run(t); err == nil {
		t.Errorf("no-args run succeeded: %s", out)
	}
	if out, err := run(t, "-model", "No Such Model"); err == nil {
		t.Errorf("unknown model accepted: %s", out)
	} else if !strings.Contains(out, "available") {
		t.Errorf("unknown-model error should list models: %s", out)
	}
	if out, err := run(t, "-trace", "/nonexistent.json"); err == nil {
		t.Errorf("missing trace accepted: %s", out)
	}
	// Infeasible without -spill exits non-zero.
	if out, err := run(t, "-model", "Segmentation", "-ratio", "80", "-q", "-max-steps", "50000"); err == nil {
		t.Errorf("infeasible problem reported success: %s", out)
	}
}
