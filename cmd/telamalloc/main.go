// Command telamalloc solves one allocation trace with a chosen allocator
// and reports the packing and search statistics.
//
// Usage:
//
//	telamalloc -trace model.json                 # TelaMalloc (default)
//	telamalloc -trace model.json -alloc greedy   # greedy baseline
//	telamalloc -trace model.json -alloc ilp      # exact solver
//	telamalloc -trace model.json -out packed.json
//	telamalloc -model OpenPose -ratio 110        # built-in workload proxy
//	telamalloc -model OpenPose -ratio 90 -pipeline  # full escalation ladder
//
// Exit codes in -pipeline mode distinguish how the request was served, so
// callers (CI, compile drivers) can branch without parsing output:
//
//	0  full packing within the memory limit
//	4  degraded but served — the ladder fell through to spill planning;
//	   the packing is valid for the reduced buffer set
//	2  hard failure: no packing and no viable spill plan
//	3  allocator bug: a stage reported success with an invalid packing
//	1  usage or I/O error
//
// Other modes keep the historical contract: 0 success, 2 solve failure,
// 3 invalid packing, 1 usage/I/O.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"telamalloc"
	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/ilp"
	"telamalloc/internal/render"
	"telamalloc/internal/spill"
	"telamalloc/internal/telamon"
	"telamalloc/internal/trace"
	"telamalloc/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "JSON trace file to solve")
		modelName = flag.String("model", "", "built-in workload proxy to solve instead of a trace")
		seed      = flag.Int64("seed", 1, "seed for -model generation")
		ratio     = flag.Int("ratio", 110, "memory as percent of contention peak for -model")
		alloc     = flag.String("alloc", "telamalloc", "allocator: telamalloc, greedy, bestfit, ilp, cp")
		maxSteps  = flag.Int64("max-steps", 0, "global search step budget shared across subproblems (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		parallel  = flag.Int("parallel", 0, "independent subproblems searched concurrently (0 = GOMAXPROCS, 1 = sequential)")
		outPath   = flag.String("out", "", "write the solved trace (with offsets) here")
		quiet     = flag.Bool("q", false, "only print the summary line")
		doSpill   = flag.Bool("spill", false, "on failure, plan buffer spills until the problem fits")
		doRender  = flag.Bool("render", false, "draw the resulting packing as ASCII art")
		doPipe    = flag.Bool("pipeline", false, "run the full escalation ladder (greedy → best-fit → search → spill) and report per-stage outcomes")
	)
	flag.Parse()

	p, err := loadProblem(*tracePath, *modelName, *seed, *ratio)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !*quiet {
		ov := buffers.ComputeOverlaps(p)
		fmt.Printf("problem: %s — %d buffers, %d overlapping pairs, memory %d (peak contention %d)\n",
			p.Name, len(p.Buffers), ov.PairCount, p.Memory, buffers.Contention(p).Peak())
	}

	if *doPipe {
		runPipeline(p, *maxSteps, *timeout, *parallel, *quiet, *outPath, *doRender)
		return
	}

	start := time.Now()
	sol, stats, err := solve(p, *alloc, *maxSteps, *timeout, *parallel, !*quiet)
	elapsed := time.Since(start)
	if err != nil && *doSpill {
		// Production fallback (§1 of the paper): reduce on-chip pressure by
		// demoting buffers until the rest fits.
		plan, serr := spill.Make(spill.Request{
			Problem:   p,
			Allocator: core.Allocator{Config: core.Config{MaxSteps: *maxSteps, Parallelism: *parallel}},
		})
		elapsed = time.Since(start)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "%s+spill: %v (%.2f ms)\n", *alloc, serr, float64(elapsed.Microseconds())/1e3)
			os.Exit(2)
		}
		fmt.Printf("%s failed (%v); spilled %d buffers (cost %d) in %d attempts, %.2f ms total\n",
			*alloc, err, len(plan.Spilled), plan.SpillCost, plan.Attempts,
			float64(elapsed.Microseconds())/1e3)
		if *outPath != "" {
			if err := trace.Save(*outPath, trace.FromProblem(p, plan.Solution)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v (%.2f ms)\n", *alloc, err, float64(elapsed.Microseconds())/1e3)
		os.Exit(2)
	}
	if verr := sol.Validate(p); verr != nil {
		fmt.Fprintf(os.Stderr, "BUG: allocator returned invalid packing: %v\n", verr)
		os.Exit(3)
	}
	fmt.Printf("%s: solved in %.2f ms, peak usage %d / %d%s\n",
		*alloc, float64(elapsed.Microseconds())/1e3, sol.PeakUsage(p), p.Memory, stats)
	if *doRender {
		fmt.Print(render.Packing(p, sol, render.Options{}))
	}
	if *outPath != "" {
		if err := trace.Save(*outPath, trace.FromProblem(p, sol)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *outPath)
		}
	}
}

// runPipeline drives the public escalation ladder and prints the per-stage
// report the library returns.
func runPipeline(p *buffers.Problem, maxSteps int64, timeout time.Duration, parallel int, quiet bool, outPath string, doRender bool) {
	pub := telamalloc.Problem{Memory: p.Memory, Name: p.Name}
	for _, b := range p.Buffers {
		pub.Buffers = append(pub.Buffers, telamalloc.Buffer{
			Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
		})
	}
	opts := []telamalloc.Option{telamalloc.WithParallelism(parallel)}
	if maxSteps > 0 {
		opts = append(opts, telamalloc.WithMaxSteps(maxSteps))
	}
	if timeout > 0 {
		opts = append(opts, telamalloc.WithTimeout(timeout))
	}
	alloc, err := telamalloc.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	res, err := alloc.Pipeline(context.Background(), pub)
	elapsed := time.Since(start)
	if !quiet {
		for _, rep := range res.Stages {
			switch {
			case rep.Skipped:
				fmt.Printf("  stage %-8s skipped: %s\n", rep.Stage, rep.SkipReason)
			case rep.Err != nil:
				fmt.Printf("  stage %-8s failed in %.2f ms: %v\n",
					rep.Stage, float64(rep.Elapsed.Microseconds())/1e3, rep.Err)
			default:
				fmt.Printf("  stage %-8s won in %.2f ms (steps %d/%d)\n",
					rep.Stage, float64(rep.Elapsed.Microseconds())/1e3, rep.Stats.Steps, rep.StepBudget)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipeline: %v (%.2f ms; lower bound %d, memory %d)\n",
			err, float64(elapsed.Microseconds())/1e3, res.LowerBound, res.Memory)
		os.Exit(2)
	}
	if res.Degraded {
		fmt.Printf("pipeline: degraded via %s in %.2f ms — spilled %d buffers (cost %d) in %d attempts\n",
			res.Winner, float64(elapsed.Microseconds())/1e3,
			len(res.Spill.Spilled), res.Spill.SpillCost, res.Spill.Attempts)
	} else {
		// A full packing claim is checked before we vouch for it with exit
		// code 0; a stage that lied is a bug, not a solve failure.
		if verr := res.Solution.Validate(pub); verr != nil {
			fmt.Fprintf(os.Stderr, "BUG: pipeline stage %s returned invalid packing: %v\n", res.Winner, verr)
			os.Exit(3)
		}
		fmt.Printf("pipeline: %s solved in %.2f ms, peak usage %d / %d\n",
			res.Winner, float64(elapsed.Microseconds())/1e3,
			res.Solution.PeakUsage(pub), pub.Memory)
	}
	sol := &buffers.Solution{Offsets: res.Solution.Offsets}
	if doRender && !res.Degraded {
		fmt.Print(render.Packing(p, sol, render.Options{}))
	}
	if outPath != "" {
		if err := trace.Save(outPath, trace.FromProblem(p, sol)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !quiet {
			fmt.Printf("wrote %s\n", outPath)
		}
	}
	if res.Degraded {
		// Served, but not at full fidelity: exit 4 so callers can tell a
		// spilled packing from a complete one without parsing stdout.
		os.Exit(4)
	}
}

// printGroups reports per-subproblem outcomes and timings of a parallel
// TelaMalloc solve.
func printGroups(groups []core.GroupReport) {
	for i, g := range groups {
		retry := ""
		if g.Retried {
			retry = ", retried with pot leftover"
		}
		fmt.Printf("  group %d: %d buffers, %s in %.2f ms (steps %d%s)\n",
			i, g.Buffers, g.Status, float64(g.Elapsed.Microseconds())/1e3, g.Steps, retry)
	}
}

func loadProblem(tracePath, modelName string, seed int64, ratio int) (*buffers.Problem, error) {
	switch {
	case tracePath != "":
		return trace.LoadProblem(tracePath)
	case modelName != "":
		m, err := workload.ByName(modelName)
		if err != nil {
			return nil, fmt.Errorf("%v (available: %v)", err, workload.SortedNames())
		}
		p := m.Generate(seed)
		peak := buffers.Contention(p).Peak()
		// Sub-peak ratios produce provably infeasible problems — useful
		// together with -spill, which evicts buffers until the rest fits.
		p.Memory = peak * int64(ratio) / 100
		return p, nil
	default:
		return nil, fmt.Errorf("one of -trace or -model is required")
	}
}

func solve(p *buffers.Problem, alloc string, maxSteps int64, timeout time.Duration, parallel int, groupReport bool) (*buffers.Solution, string, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	switch alloc {
	case "telamalloc":
		res := core.Solve(p, core.Config{MaxSteps: maxSteps, Deadline: deadline, Parallelism: parallel})
		if groupReport && len(res.Groups) > 1 {
			printGroups(res.Groups)
		}
		info := fmt.Sprintf(" (steps %d, backtracks %d, subproblems %d)",
			res.Stats.Steps, res.Stats.Backtracks(), res.Subproblems)
		if res.Err != nil {
			return nil, "", res.Err
		}
		if res.Status != telamon.Solved {
			return nil, "", fmt.Errorf("%v%s", res.Status, info)
		}
		return res.Solution, info, nil
	case "greedy":
		s, err := heuristics.GreedyContention{}.Allocate(p)
		return s, "", err
	case "bestfit":
		s, err := heuristics.BestFit{}.Allocate(p)
		return s, "", err
	case "ilp", "cp":
		rule := ilp.BranchMostConstraining
		if alloc == "cp" {
			rule = ilp.BranchFirstUnresolved
		}
		res := ilp.Solve(p, nil, ilp.Options{MaxSteps: maxSteps, Deadline: deadline, Rule: rule})
		info := fmt.Sprintf(" (nodes %d, conflicts %d)", res.Steps, res.Conflicts)
		if res.Status != ilp.Solved {
			return nil, "", fmt.Errorf("%v%s", res.Status, info)
		}
		return res.Solution, info, nil
	default:
		return nil, "", fmt.Errorf("unknown allocator %q", alloc)
	}
}
