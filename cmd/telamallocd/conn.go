// Connection lifecycle for -listen mode: accept limiting, per-connection
// idle read deadlines, typed scanner-failure reports, and shutdown
// propagation so SIGTERM drain is bounded by -drain-timeout even with
// idle, slowloris, or half-written connections open (DESIGN.md §13).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"telamalloc/internal/faultinject"
	"telamalloc/internal/server"
	"telamalloc/internal/wire"
)

// Sentinel read errors, each surfaced to the peer as a typed rejected
// report before its connection closes.
var (
	errIdleTimeout   = errors.New("idle read deadline exceeded")
	errShuttingDown  = errors.New("daemon shutting down")
	errTruncatedLine = errors.New("connection closed mid-line")
)

// scanLinesStrict is bufio.ScanLines minus the final-partial-line
// forgiveness: data after the last newline at EOF is a mid-line disconnect,
// not a request. Parsing it would misinterpret a truncated line as a
// (possibly valid!) request — the one thing a versioned protocol must never
// do — so it surfaces as errTruncatedLine and a typed report instead.
func scanLinesStrict(data []byte, atEOF bool) (int, []byte, error) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line := data[:i]
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		return i + 1, line, nil
	}
	if atEOF {
		if len(data) > 0 {
			return 0, nil, errTruncatedLine
		}
		return 0, nil, nil
	}
	return 0, nil, nil
}

// newWireScanner builds the request-line scanner used by both stdin and TCP
// modes. maxLine caps one request line; beyond it the scanner fails with
// bufio.ErrTooLong, reported typed as line_too_long.
func newWireScanner(r io.Reader, maxLine int) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	sc.Split(scanLinesStrict)
	return sc
}

// connReader reads request bytes from a TCP connection under the daemon's
// lifecycle rules: every read must complete within the idle window, and the
// shutdown latch overrides everything — including the deadline extension a
// slowloris would otherwise earn by dribbling bytes.
type connReader struct {
	nc       net.Conn
	idle     time.Duration
	shutdown <-chan struct{}
	hook     func(string) bool // faultinject; nil in production
}

func (cr *connReader) Read(p []byte) (int, error) {
	select {
	case <-cr.shutdown:
		return 0, errShuttingDown
	default:
	}
	if cr.hook != nil && cr.hook(faultinject.PointConnRead) {
		return 0, errIdleTimeout // a starved read models an idle peer
	}
	if cr.idle > 0 {
		cr.nc.SetReadDeadline(time.Now().Add(cr.idle))
	}
	n, err := cr.nc.Read(p)
	if err != nil {
		// The shutdown poke fires the deadline early; name the real cause.
		select {
		case <-cr.shutdown:
			return n, errShuttingDown
		default:
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return n, errIdleTimeout
		}
	}
	return n, err
}

// scanErrorCode maps a scanner failure to its typed wire code ("" = an
// untyped transport error; the report still carries the text).
func scanErrorCode(err error) string {
	switch {
	case errors.Is(err, bufio.ErrTooLong):
		return wire.CodeLineTooLong
	case errors.Is(err, errTruncatedLine):
		return wire.CodeTruncatedLine
	case errors.Is(err, errIdleTimeout):
		return wire.CodeIdleTimeout
	case errors.Is(err, errShuttingDown):
		return wire.CodeShuttingDown
	}
	return ""
}

// health is the daemon's liveness/readiness state, served on -metrics-addr.
// Liveness is the process being up; readiness flips false the moment
// draining begins — before the listener closes — so a load balancer stops
// routing to a daemon that is about to reject.
type health struct {
	ready atomic.Bool
}

func (h *health) setReady(v bool) { h.ready.Store(v) }

func (h *health) healthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (h *health) readyz(w http.ResponseWriter, _ *http.Request) {
	if h.ready.Load() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "draining")
}

// connShedRetryMS is the retry floor handed to connections shed at the
// limit. Deliberately modest: connection slots churn faster than queue
// slots, and the client adds jitter on top (it must — see
// server.OverloadError.RetryAfter).
const connShedRetryMS = 100

// tcpDaemon serves the line protocol over TCP with a bounded connection
// count and a bounded shutdown.
type tcpDaemon struct {
	srv          *server.Server
	ln           net.Listener
	idle         time.Duration
	maxLine      int
	drainTimeout time.Duration
	health       *health
	hook         func(string) bool // faultinject; nil in production

	sem      chan struct{} // connection slots
	shutdown chan struct{}
	shutOnce sync.Once
	wg       sync.WaitGroup
}

func newTCPDaemon(srv *server.Server, ln net.Listener, h *health, idle time.Duration, maxConns, maxLine int, drainTimeout time.Duration) *tcpDaemon {
	if maxConns <= 0 {
		maxConns = 256
	}
	if maxLine <= 0 {
		maxLine = 1 << 26
	}
	return &tcpDaemon{
		srv:          srv,
		ln:           ln,
		idle:         idle,
		maxLine:      maxLine,
		drainTimeout: drainTimeout,
		health:       h,
		sem:          make(chan struct{}, maxConns),
		shutdown:     make(chan struct{}),
	}
}

// shutdownNow begins shutdown: readiness flips first (load balancers stop
// routing), then the shutdown latch trips (open connections' reads
// unblock), then the listener closes (no new connections). Idempotent.
func (d *tcpDaemon) shutdownNow() {
	d.shutOnce.Do(func() {
		d.health.setReady(false)
		close(d.shutdown)
		d.ln.Close()
	})
}

// run accepts connections until shutdownNow (or a fatal accept error),
// then drains: the server stops admitting and force-cancels in-flight work
// at the drain deadline *concurrently* with connection teardown — this is
// the fix for the historical drain hang, where wg.Wait() blocked forever on
// a connection idle in Scan. Returns server.ErrDrainTimeout when the drain
// had to force-cancel.
func (d *tcpDaemon) run() error {
	for {
		conn, aerr := d.ln.Accept()
		if aerr != nil {
			break
		}
		shed := d.hook != nil && d.hook(faultinject.PointConnAccept)
		if !shed {
			select {
			case d.sem <- struct{}{}:
			default:
				shed = true
			}
		}
		if shed {
			d.shedConn(conn)
			continue
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() { <-d.sem }()
			d.serveConn(conn)
		}()
	}
	d.shutdownNow()
	// Drain concurrently with connection teardown: in-flight Submits can
	// only settle once the server cancels them, and idle reads only
	// unblock via the shutdown latch — neither may wait on the other.
	ctx, cancel := context.WithTimeout(context.Background(), d.drainTimeout)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- d.srv.Drain(ctx) }()
	d.wg.Wait()
	return <-drained
}

// shedConn answers an over-limit connection with one typed report and
// closes it: the client learns it was capacity, not protocol, and retries
// elsewhere-in-time instead of hammering reconnects.
func (d *tcpDaemon) shedConn(conn net.Conn) {
	resp := wireResponse{
		V:            wire.Version,
		Outcome:      wire.OutcomeShed,
		ErrorCode:    wire.CodeTooManyConnections,
		RetryAfterMS: connShedRetryMS,
		Error:        fmt.Sprintf("connection limit %d reached", cap(d.sem)),
	}
	if b, err := json.Marshal(resp); err == nil {
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		conn.Write(append(b, '\n'))
	}
	conn.Close()
}

// serveConn runs one connection's request loop. A goroutine watches the
// shutdown latch and pokes the read deadline, so a connection blocked in
// Read observes shutdown immediately instead of at its idle deadline.
func (d *tcpDaemon) serveConn(conn net.Conn) {
	defer conn.Close()
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-d.shutdown:
			conn.SetReadDeadline(time.Now())
		case <-connDone:
		}
	}()
	cr := &connReader{nc: conn, idle: d.idle, shutdown: d.shutdown, hook: d.hook}
	serveScanner(d.srv, newWireScanner(cr, d.maxLine), conn)
}
