// Command telamallocd runs the long-lived allocation service: the serving
// harness a production fleet puts in front of the allocator so many
// concurrent clients can load models at once without crashing, queueing
// without bound, or hanging a compile (internal/server, DESIGN.md §9).
//
// Requests are line-delimited JSON, one request per line, answered with one
// JSON report per line (order may differ from request order under
// concurrency; correlate with "id"). By default the daemon serves stdin and
// answers on stdout; with -listen it serves every TCP connection the same
// protocol.
//
// Usage:
//
//	echo '{"v":1,"id":"r1","memory":8,"buffers":[{"start":0,"end":4,"size":4},{"start":0,"end":4,"size":4}]}' | telamallocd
//	telamallocd -hedge -workers 8 -req-timeout 2s < requests.jsonl
//	telamallocd -listen :7333 -metrics-addr :9100 -trace-file trace.jsonl &
//
// Request schema (wire protocol version 1, DESIGN.md §12):
//
//	{"v":1,                     // protocol version; omitted means 1
//	 "id":"r1",                 // echoed back, optional
//	 "name":"model-a",          // diagnostic label, optional
//	 "memory":1048576,          // scratchpad limit, required
//	 "buffers":[{"start":0,"end":4,"size":512,"align":64}, ...],
//	 "max_steps":200000,        // per-request step pot, optional
//	 "timeout_ms":500,          // per-request wall pot, optional
//	 "priority":"interactive",  // admission class, optional (default batch)
//	 "tenant":"team-a"}         // fairness domain, optional
//
// Report schema (one line per request; "v" is always the version served):
//
//	{"v":1,"id":"r1","outcome":"solved","winner":"greedy","offsets":[0,512],
//	 "lower_bound":1024,"memory":1048576,"elapsed_ms":0.21,...}
//
// outcome is one of solved, degraded, failed, shed, cancelled, rejected;
// shed reports carry "retry_after_ms". A request with an unknown "v" is
// rejected without being parsed further: outcome "rejected" with
// error_code "unsupported_version" — never a silent misinterpretation.
//
// Under overload the daemon applies the server's overload-control layer
// (DESIGN.md §14): per-class queue lanes with strict-priority dequeue
// (-class-depth), per-tenant token buckets and in-flight shares
// (-tenant-rps, -tenant-burst, -tenant-share; sheds carry error_code
// "tenant_overloaded"), eviction of requests whose budget expired in queue
// (error_code "deadline_exceeded_in_queue" — no solver step is spent on
// dead work), and a brownout controller (-brownout-target) that trades
// answer quality for latency with hysteresis; responses produced under a
// degraded ladder carry "degraded_by_brownout":true.
//
// With -metrics-addr the daemon serves its observability surface over HTTP:
// Prometheus metrics at /metrics, liveness at /healthz, readiness at
// /readyz (503 the moment draining begins, before the listener closes),
// the expvar JSON dump at /debug/vars, and the pprof profiles under
// /debug/pprof/. With -trace-file every request's lifecycle spans (admit →
// queue → cache/dedup → stage:<s> → settle) are appended to the given file
// as JSON Lines.
//
// In -listen mode each connection reads under an -idle-timeout deadline,
// -max-conns bounds concurrency (excess connections are shed with a typed
// report), and scanner failures — oversized or truncated lines, idle
// reaps, shutdown — emit one final typed rejection before the connection
// closes. -watchdog-multiple arms the server's solve watchdog
// (DESIGN.md §13).
//
// On stdin EOF (or SIGINT/SIGTERM in -listen mode) the daemon drains
// gracefully — stops admitting, finishes or cancels in-flight work within
// -drain-timeout — and prints the service counters to stderr. Exit code 0
// after a clean drain, 3 after a forced one, 1 on usage errors.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"telamalloc"
	"telamalloc/internal/obs"
	"telamalloc/internal/server"
	"telamalloc/internal/wire"
)

// wireVersion is the line protocol version this daemon speaks. Requests may
// omit "v" (treated as 1); any other value is rejected up front. The schema
// itself lives in internal/wire, shared with internal/client so both ends
// marshal against the same struct.
const wireVersion = wire.Version

type (
	wireBuffer   = wire.Buffer
	wireRequest  = wire.Request
	wireResponse = wire.Response
)

func main() {
	var (
		listen       = flag.String("listen", "", "TCP address to serve (empty = stdin/stdout)")
		workers      = flag.Int("workers", 0, "concurrent pipeline executions (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "admission queue bound; beyond it requests are shed")
		reqTimeout   = flag.Duration("req-timeout", 0, "per-request wall-clock pot, measured from admission (0 = none)")
		maxSteps     = flag.Int64("max-steps", 0, "per-request search step pot (0 = unlimited)")
		parallel     = flag.Int("parallel", 0, "solver parallelism per request (0 = GOMAXPROCS)")
		hedge        = flag.Bool("hedge", false, "race a greedy/best-fit hedge against the full ladder")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive internal failures that open a stage's breaker (-1 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker window before a half-open probe")
		slowStage    = flag.Duration("slow-stage", 0, "also trip a breaker when a stage times out after this long (0 = off)")
		drainTO      = flag.Duration("drain-timeout", 5*time.Second, "graceful-drain deadline on shutdown")
		cacheSize    = flag.Int("cache-size", 256, "solution cache capacity in entries (0 disables caching)")
		noDedup      = flag.Bool("no-dedup", false, "disable singleflight deduplication of concurrent identical requests")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "close a -listen connection after this long without a completed read (0 = never)")
		maxConns     = flag.Int("max-conns", 256, "concurrent -listen connections; excess connections are shed with a typed report")
		maxLine      = flag.Int("max-line", 1<<26, "largest accepted request line in bytes")
		wdMultiple   = flag.Float64("watchdog-multiple", 0, "force-cancel a solve exceeding this multiple of its budget (0 = off)")
		classDepth   = flag.String("class-depth", "", `per-class queue bounds, e.g. "interactive=128,batch=64,background=16" (unset classes use -queue)`)
		tenantRPS    = flag.Float64("tenant-rps", 0, "per-tenant sustained admission rate in requests/second (0 = no rate limit)")
		tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = ceil of -tenant-rps)")
		tenantShare  = flag.Float64("tenant-share", 0, "max fraction of server capacity one tenant may hold in flight (0 or >=1 = off)")
		brownTarget  = flag.Duration("brownout-target", 0, "queue-wait p90 the brownout controller defends; under sustained pressure it degrades the ladder and recovers with hysteresis (0 = off)")
		brownIntv    = flag.Duration("brownout-interval", 0, "brownout controller evaluation cadence (0 = 100ms default)")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP address for /metrics, /healthz, /readyz, /debug/vars and /debug/pprof/ (empty = off)")
		traceFile    = flag.String("trace-file", "", "append request lifecycle spans to this file as JSON Lines (empty = off)")
		quiet        = flag.Bool("q", false, "suppress the counters summary on shutdown")
	)
	flag.Parse()

	var tracer *obs.Tracer
	var flushTrace func()
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telamallocd: -trace-file: %v\n", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		tracer = obs.NewTracer(bw)
		// main exits via os.Exit, so the flush is explicit, after drain.
		flushTrace = func() {
			bw.Flush()
			f.Close()
		}
	}

	hlt := &health{}
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telamallocd: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telamallocd: observability on http://%s/metrics\n", mln.Addr())
		go func() { _ = http.Serve(mln, obsMux(hlt)) }()
	}

	cacheCfg := *cacheSize
	if cacheCfg <= 0 {
		cacheCfg = -1 // the server treats 0 as "default"; the flag's 0 means off
	}
	classBounds, err := parseClassDepth(*classDepth)
	if err != nil {
		fmt.Fprintf(os.Stderr, "telamallocd: -class-depth: %v\n", err)
		os.Exit(1)
	}
	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
		MaxSteps:       *maxSteps,
		Parallelism:    *parallel,
		Hedge:          *hedge,
		DrainTimeout:   *drainTO,
		CacheSize:      cacheCfg,
		DisableDedup:   *noDedup,
		Breaker: server.BreakerConfig{
			Threshold: *brkThreshold,
			Cooldown:  *brkCooldown,
			SlowStage: *slowStage,
		},
		Watchdog:   server.WatchdogConfig{BudgetMultiple: *wdMultiple},
		ClassDepth: classBounds,
		Tenant: server.TenantConfig{
			RPS:      *tenantRPS,
			Burst:    *tenantBurst,
			MaxShare: *tenantShare,
		},
		Brownout: server.BrownoutConfig{
			Target:   *brownTarget,
			Interval: *brownIntv,
		},
		Tracer: tracer,
	})

	var drainErr error
	if *listen == "" {
		hlt.setReady(true)
		serveStream(srv, os.Stdin, os.Stdout)
		hlt.setReady(false)
		drainErr = srv.Close()
	} else {
		drainErr = serveTCP(srv, *listen, hlt, *idleTimeout, *maxConns, *maxLine, *drainTO)
	}

	code := 0
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "telamallocd: %v\n", drainErr)
		if errors.Is(drainErr, server.ErrDrainTimeout) {
			code = 3 // forced drain: served what it could, then cut the rest
		} else {
			code = 1 // usage/listen failure
		}
	}
	if flushTrace != nil {
		flushTrace()
	}
	if !*quiet {
		c := srv.Snapshot()
		fmt.Fprintf(os.Stderr,
			"telamallocd: submitted %d admitted %d shed %d rejected %d | solved %d degraded %d failed %d cancelled %d | hedge-wins %d breaker trips/probes/recoveries %d/%d/%d | cache hits/misses/near %d/%d/%d len %d | dedup-shared %d hint-replays %d | expired dequeue/evict %d/%d tenant-shed %d | brownout degrades/recovers %d/%d marked %d\n",
			c.Submitted, c.Admitted, c.Shed, c.RejectedDraining,
			c.Solved, c.Degraded, c.Failed, c.Cancelled,
			c.HedgeWins, c.BreakerTrips, c.BreakerProbes, c.BreakerRecoveries,
			c.CacheHits, c.CacheMisses, c.CacheNearHits, c.CacheLen,
			c.DedupShared, c.HintReplays,
			c.ExpiredInQueue, c.ExpiredEvicted, c.TenantShed,
			c.BrownoutDegrades, c.BrownoutRecovers, c.BrownoutDegraded)
	}
	os.Exit(code)
}

// parseClassDepth parses the -class-depth flag: comma-separated
// class=depth pairs over the known priority classes.
func parseClassDepth(s string) (map[server.Priority]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[server.Priority]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("%q: want class=depth", part)
		}
		p := server.Priority(strings.TrimSpace(name))
		if !p.Valid() || p == "" {
			return nil, fmt.Errorf("unknown class %q (want interactive, batch, or background)", name)
		}
		d, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("%q: depth must be a positive integer", part)
		}
		out[p] = d
	}
	return out, nil
}

// obsMux builds the observability HTTP surface served on -metrics-addr:
// Prometheus metrics, expvar, pprof, and the liveness/readiness endpoints.
func obsMux(hlt *health) *http.ServeMux {
	reg := obs.Default()
	reg.PublishExpvar("telamalloc")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", hlt.healthz)
	mux.HandleFunc("/readyz", hlt.readyz)
	return mux
}

// serveTCP serves the line protocol over TCP until SIGINT/SIGTERM, then
// drains within drainTimeout (connection lifecycle in conn.go). Returns
// server.ErrDrainTimeout when the drain had to force-cancel work.
func serveTCP(srv *server.Server, addr string, hlt *health, idle time.Duration, maxConns, maxLine int, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telamallocd: %w", err)
	}
	d := newTCPDaemon(srv, ln, hlt, idle, maxConns, maxLine, drainTimeout)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		d.shutdownNow()
	}()
	hlt.setReady(true)
	fmt.Fprintf(os.Stderr, "telamallocd: listening on %s\n", ln.Addr())
	return d.run()
}

// serveStream answers line-delimited JSON requests from r on w until EOF —
// the stdin/stdout mode. TCP connections run the same loop via serveConn.
func serveStream(srv *server.Server, r io.Reader, w io.Writer) {
	serveScanner(srv, newWireScanner(r, 1<<26), w)
}

// serveScanner answers each request line from sc on w. Requests run
// concurrently through the server (which is where admission control lives);
// a mutex serialises report lines. A scanner failure — oversized line,
// mid-line disconnect, idle timeout, shutdown — emits one final typed
// rejected report before the stream closes, so the peer always learns why.
func serveScanner(srv *server.Server, sc *bufio.Scanner, w io.Writer) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	emit := func(resp wireResponse) {
		resp.V = wireVersion // every report declares the version it speaks
		line, err := json.Marshal(resp)
		if err != nil {
			line = []byte(`{"v":1,"outcome":"failed","error":"report marshal failure"}`)
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, "%s\n", line)
	}
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var req wireRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			emit(wireResponse{Outcome: wire.OutcomeRejected, ErrorCode: wire.CodeBadRequest,
				Error: fmt.Sprintf("bad request line: %v", err)})
			continue
		}
		// Version gate: v omitted (0) means 1; anything else is a client
		// speaking a protocol this daemon does not — reject typed, never
		// guess at field semantics.
		if req.V != 0 && req.V != wireVersion {
			emit(wireResponse{ID: req.ID, Outcome: wire.OutcomeRejected, ErrorCode: wire.CodeUnsupportedVersion,
				Error: fmt.Sprintf("unsupported wire protocol version %d (this daemon speaks %d)", req.V, wireVersion)})
			continue
		}
		wg.Add(1)
		go func(req wireRequest) {
			defer wg.Done()
			emit(handle(srv, req))
		}(req)
	}
	if err := sc.Err(); err != nil {
		emit(wireResponse{Outcome: wire.OutcomeRejected, ErrorCode: scanErrorCode(err),
			Error: fmt.Sprintf("read: %v", err)})
	}
	wg.Wait()
}

// handle runs one request through the service and maps the terminal outcome
// to the wire schema.
func handle(srv *server.Server, wreq wireRequest) wireResponse {
	p := server.Problem{Memory: wreq.Memory, Name: wreq.Name}
	for _, b := range wreq.Buffers {
		p.Buffers = append(p.Buffers, telamalloc.Buffer{Start: b.Start, End: b.End, Size: b.Size, Align: b.Align})
	}
	resp, err := srv.Submit(context.Background(), server.Request{
		Problem:  p,
		MaxSteps: wreq.MaxSteps,
		Timeout:  time.Duration(wreq.TimeoutMS) * time.Millisecond,
		TraceID:  wreq.ID,
		Priority: server.Priority(wreq.Priority),
		Tenant:   wreq.Tenant,
	})
	out := wireResponse{ID: wreq.ID}
	var overload *server.OverloadError
	switch {
	case errors.As(err, &overload):
		out.Outcome = wire.OutcomeShed
		out.ErrorCode = wire.CodeOverloaded
		if overload.Tenant != "" {
			// A per-tenant shed is the tenant's quota, not daemon
			// capacity — a distinct code so fleet dashboards (and other
			// tenants' clients) don't read one hot tenant as an outage.
			out.ErrorCode = wire.CodeTenantOverloaded
		}
		out.Error = err.Error()
		out.RetryAfterMS = float64(overload.RetryAfter.Microseconds()) / 1e3
	case errors.Is(err, server.ErrBadPriority):
		out.Outcome = wire.OutcomeRejected
		out.ErrorCode = wire.CodeBadRequest
		out.Error = err.Error()
	case errors.Is(err, server.ErrExpiredInQueue):
		// The budget ran out while queued; no solver step was spent. Typed
		// so clients can tell "raise your budget or back off" from a solve
		// that ran and failed.
		out.Outcome = wire.OutcomeFailed
		out.ErrorCode = wire.CodeDeadlineExceededInQueue
		out.Error = err.Error()
		if resp != nil {
			out.Memory = resp.Memory
			out.QueueWaitMS = float64(resp.QueueWait.Microseconds()) / 1e3
			out.ElapsedMS = float64(resp.Elapsed.Microseconds()) / 1e3
		}
	case errors.Is(err, server.ErrDraining):
		out.Outcome = wire.OutcomeRejected
		out.ErrorCode = wire.CodeDraining
		out.Error = err.Error()
	case errors.Is(err, server.ErrWatchdog):
		// The watchdog's kill is terminal and non-retryable as-is: the job
		// provably blew through its budget, so a verbatim retry would too.
		out.Outcome = wire.OutcomeFailed
		out.ErrorCode = wire.CodeWatchdogKilled
		out.Error = err.Error()
		if resp != nil {
			out.Memory = resp.Memory
			out.ElapsedMS = float64(resp.Elapsed.Microseconds()) / 1e3
		}
	case errors.Is(err, server.ErrCancelled):
		out.Outcome = wire.OutcomeCancelled
		out.Error = err.Error()
	case resp != nil:
		out.Outcome = string(resp.Outcome)
		out.Winner = resp.Winner
		out.Offsets = resp.Offsets
		out.Spilled = resp.Spilled
		out.SpillCost = resp.SpillCost
		out.LowerBound = resp.LowerBound
		out.Memory = resp.Memory
		out.SkippedByBreaker = resp.SkippedByBreaker
		out.HedgeWon = resp.HedgeWon
		out.CacheHit = resp.CacheHit
		out.Deduped = resp.Deduped
		out.HintReplayed = resp.HintReplayed
		out.DegradedByBrownout = resp.DegradedByBrownout
		out.QueueWaitMS = float64(resp.QueueWait.Microseconds()) / 1e3
		out.ElapsedMS = float64(resp.Elapsed.Microseconds()) / 1e3
		out.Error = resp.Err
	default:
		out.Outcome = "failed"
		if err != nil {
			out.Error = err.Error()
		}
	}
	return out
}
