// The differential soak (make diffsoak): a client fleet drives a seeded
// adversarial stream through a live daemon while the same stream runs
// through a bare Allocator, and every served verdict must match the direct
// run byte-for-byte on the canonical response — across the cache-hit,
// dedup, hedged, and brownout-configured-but-idle paths. Every wire report
// is additionally re-verified by the independent checker (internal/check),
// which shares no code with the solver's own validators.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"telamalloc"
	"telamalloc/internal/check"
	"telamalloc/internal/client"
	"telamalloc/internal/server"
	"telamalloc/internal/wire"
)

// diffProblem is one instance of the soak stream with its precomputed
// direct-arm expectation.
type diffProblem struct {
	problem  telamalloc.Problem
	buffers  []wire.Buffer
	expected []byte // CanonicalJSON of the direct Allocator run
}

const diffSoakSteps = 40_000

// buildDiffStream generates the adversarial stream and solves each instance
// once through a bare Allocator — the reference arm every served response
// is compared against.
func buildDiffStream(t *testing.T, seeds []int64) []diffProblem {
	t.Helper()
	a, err := telamalloc.New(telamalloc.WithMaxSteps(diffSoakSteps))
	if err != nil {
		t.Fatal(err)
	}
	var stream []diffProblem
	for _, fam := range check.DefaultFamilies() {
		for _, seed := range seeds {
			p := fam.Generate(seed)
			p.Name = fmt.Sprintf("%s-%d", p.Name, seed)
			res, perr := a.Pipeline(context.Background(), p)
			dp := diffProblem{
				problem:  p,
				expected: server.ResponseFrom(res, perr).CanonicalJSON(),
			}
			for _, b := range p.Buffers {
				dp.buffers = append(dp.buffers, wire.Buffer{
					Start: b.Start, End: b.End, Size: b.Size, Align: b.Align,
				})
			}
			stream = append(stream, dp)
		}
	}
	return stream
}

// canonicalOfReport projects a wire report onto the server's canonical
// response form, so served bytes and direct bytes compare through the same
// serialiser.
func canonicalOfReport(rep *client.Report) []byte {
	r := server.Response{
		Outcome:          server.Outcome(rep.Outcome),
		Winner:           rep.Winner,
		Offsets:          rep.Offsets,
		Spilled:          rep.Spilled,
		SpillCost:        rep.SpillCost,
		LowerBound:       rep.LowerBound,
		Memory:           rep.Memory,
		SkippedByBreaker: rep.SkippedByBreaker,
		Err:              rep.Error,
	}
	return r.CanonicalJSON()
}

// runDiffArm floods one daemon configuration with the stream — every
// instance submitted by every fleet worker, so identical in-flight requests
// dedup and repeats hit the cache — and asserts byte-identity plus
// checker-cleanness for each report. Returns how many reports were served
// from the cache and how many were deduped.
func runDiffArm(t *testing.T, arm string, cfg server.Config, stream []diffProblem) (cacheHits, deduped int64) {
	t.Helper()
	h := startDaemon(t, cfg, 0, 64, 1<<20, 5*time.Second, nil)

	const fleet = 6
	var wg sync.WaitGroup
	var mu sync.Mutex // guards cacheHits/deduped and t across workers
	clients := make([]*client.Client, fleet)
	for w := range clients {
		c, err := client.Dial(client.Config{Addr: h.addr, Seed: int64(w + 1)})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[w] = c
	}
	for w := 0; w < fleet; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, dp := range stream {
				id := fmt.Sprintf("%s-w%d-i%d", arm, w, i)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				rep, err := clients[w].Submit(ctx, client.Request{
					ID:       id,
					Name:     dp.problem.Name,
					Memory:   dp.problem.Memory,
					Buffers:  dp.buffers,
					MaxSteps: diffSoakSteps,
				})
				cancel()
				mu.Lock()
				func() {
					defer mu.Unlock()
					if err != nil {
						t.Errorf("[%s] %s: submit: %v", arm, id, err)
						return
					}
					if got := canonicalOfReport(rep); !bytes.Equal(got, dp.expected) {
						t.Errorf("[%s] %s: served response diverged from the direct run\n got: %s\nwant: %s",
							arm, id, got, dp.expected)
					}
					wreq := wire.Request{ID: id, Name: dp.problem.Name, Memory: dp.problem.Memory, Buffers: dp.buffers}
					if crep := check.Wire(wreq, *rep); !crep.OK() {
						t.Errorf("[%s] %s: independent checker rejected the report: %v", arm, id, crep.Err())
					}
					if rep.CacheHit {
						cacheHits++
					}
					if rep.Deduped {
						deduped++
					}
				}()
			}
		}(w)
	}
	wg.Wait()
	return cacheHits, deduped
}

func TestDiffSoak(t *testing.T) {
	if os.Getenv("TELAMALLOC_DIFFSOAK") == "" {
		t.Skip("set TELAMALLOC_DIFFSOAK=1 (make diffsoak) to run the differential soak")
	}

	stream := buildDiffStream(t, []int64{1, 2, 3, 4})

	// Queue depth is sized to the whole fleet's flood: a shed would be a
	// capacity artefact, not a differential signal, so the soak leaves the
	// overload machinery no reason to engage.
	depth := 6*len(stream) + 16

	arms := []struct {
		name string
		cfg  server.Config
	}{
		{"plain", server.Config{Workers: 4, QueueDepth: depth}},
		{"hedge", server.Config{Workers: 4, QueueDepth: depth, Hedge: true}},
		// Brownout configured but idle: thresholds far above anything this
		// load can reach. The controller being armed must not perturb a
		// single byte (the no-overload identity the brownout PR promised).
		{"brownout-idle", server.Config{Workers: 4, QueueDepth: depth, Brownout: server.BrownoutConfig{
			Target:      time.Hour,
			StepUpAfter: 1 << 30,
		}}},
	}
	for _, arm := range arms {
		hits, deduped := runDiffArm(t, arm.name, arm.cfg, stream)
		t.Logf("[%s] cache hits: %d, deduped: %d", arm.name, hits, deduped)
		// Each worker submits the same stream, so repeats are guaranteed:
		// the cache/dedup fast paths must actually fire for the arm to have
		// tested them.
		if hits+deduped == 0 {
			t.Errorf("[%s] fleet repeats produced no cache hits and no dedups; the fast paths went unexercised", arm.name)
		}
	}
}
