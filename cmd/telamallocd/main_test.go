package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"telamalloc/internal/server"
)

// decodeReports parses every line serveStream wrote and indexes them by id.
func decodeReports(t *testing.T, out *bytes.Buffer) map[string]wireResponse {
	t.Helper()
	byID := map[string]wireResponse{}
	sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
	for sc.Scan() {
		var resp wireResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("unparseable report line %q: %v", sc.Text(), err)
		}
		byID[resp.ID] = resp
	}
	return byID
}

func TestServeStreamOutcomes(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, QueueDepth: 8, MaxSteps: 200000})
	defer srv.Close()

	in := strings.Join([]string{
		// Two non-overlapping 4-byte buffers in 8 bytes: trivially solvable.
		`{"id":"solve","memory":8,"buffers":[{"start":0,"end":4,"size":4},{"start":4,"end":8,"size":4}]}`,
		// Three concurrent 4-byte buffers in 8 bytes: provably infeasible,
		// served degraded via spill.
		`{"id":"spill","memory":8,"buffers":[{"start":0,"end":4,"size":4},{"start":0,"end":4,"size":4},{"start":0,"end":4,"size":4}]}`,
		// Memory 0 with a buffer: invalid problem, structured failure.
		`{"id":"bad-problem","memory":0,"buffers":[{"start":0,"end":4,"size":4}]}`,
		``, // blank lines are skipped, not answered
		`this is not json`,
	}, "\n") + "\n"

	var out bytes.Buffer
	serveStream(srv, strings.NewReader(in), &out)
	byID := decodeReports(t, &out)
	if len(byID) != 4 {
		t.Fatalf("got %d reports (%v), want 4", len(byID), byID)
	}

	solve := byID["solve"]
	if solve.Outcome != "solved" || solve.Winner == "" {
		t.Errorf("solve report: %+v, want outcome solved with a winner", solve)
	}
	if len(solve.Offsets) != 2 || solve.Error != "" {
		t.Errorf("solve report carries offsets %v err %q", solve.Offsets, solve.Error)
	}

	spill := byID["spill"]
	if spill.Outcome != "degraded" || len(spill.Spilled) == 0 || spill.SpillCost <= 0 {
		t.Errorf("spill report: %+v, want degraded with spilled buffers", spill)
	}
	if spill.LowerBound <= spill.Memory {
		t.Errorf("degraded report must carry infeasibility evidence, got lower bound %d vs memory %d",
			spill.LowerBound, spill.Memory)
	}

	bad := byID["bad-problem"]
	if bad.Outcome != "failed" || bad.Error == "" {
		t.Errorf("bad-problem report: %+v, want failed with an error", bad)
	}

	// The non-JSON line has no id; it lands under the empty key.
	garbage := byID[""]
	if garbage.Outcome != "rejected" || !strings.Contains(garbage.Error, "bad request line") {
		t.Errorf("garbage line report: %+v, want rejected", garbage)
	}
}

func TestServeStreamRequestBudget(t *testing.T) {
	srv := server.New(server.Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()

	// A hard instance with a 1ms pot: the pipeline must come back with a
	// bounded budget verdict, not hang the stream.
	var lines []string
	var bufs []string
	for i := 0; i < 30; i++ {
		bufs = append(bufs, `{"start":0,"end":10,"size":7}`)
	}
	lines = append(lines,
		`{"id":"tight","memory":64,"timeout_ms":1,"buffers":[`+strings.Join(bufs, ",")+`]}`)
	var out bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		serveStream(srv, strings.NewReader(strings.Join(lines, "\n")+"\n"), &out)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("serveStream did not finish: request budget was not enforced")
	}
	byID := decodeReports(t, &out)
	tight := byID["tight"]
	// Either verdict is a legitimate bounded answer; hanging is the bug.
	if tight.Outcome != "degraded" && tight.Outcome != "failed" {
		t.Errorf("tight report: %+v, want a bounded degraded/failed verdict", tight)
	}
}

func TestHandleShedReport(t *testing.T) {
	// Park the only worker via the dequeue point so the queue fills, then
	// check the shed report shape (outcome + retry-after hint).
	gate := make(chan struct{})
	srv := server.New(server.Config{
		Workers:    1,
		QueueDepth: 1,
		// Identical requests on purpose: this test wants the queue to fill,
		// and singleflight would collapse the flood to one solve.
		DisableDedup: true,
		Hook: func(point string) bool {
			if point == "server:dequeue" {
				<-gate
			}
			return false
		},
	})
	// Cleanups run LIFO: the gate must open before Close drains the parked
	// worker, so register Close first.
	t.Cleanup(func() { srv.Close() })
	t.Cleanup(func() { close(gate) })

	// One submission parks in the worker and one sits in the queue; the
	// other eight must shed immediately.
	const submissions = 10
	results := make(chan wireResponse, submissions)
	for i := 0; i < submissions; i++ {
		go func(i int) {
			results <- handle(srv, wireRequest{
				ID:      fmt.Sprintf("r%d", i),
				Memory:  8,
				Buffers: []wireBuffer{{Start: 0, End: 4, Size: 4}},
			})
		}(i)
	}
	sawShed := false
	timeout := time.After(10 * time.Second)
	for got := 0; got < submissions-2 && !sawShed; got++ {
		select {
		case resp := <-results:
			if resp.Outcome != "shed" {
				continue
			}
			sawShed = true
			if resp.RetryAfterMS <= 0 {
				t.Errorf("shed report missing retry-after hint: %+v", resp)
			}
			if resp.Error == "" {
				t.Errorf("shed report missing error text: %+v", resp)
			}
		case <-timeout:
			t.Fatal("shed submissions did not return promptly; shedding must not wait on workers")
		}
	}
	if !sawShed {
		t.Fatal("queue of depth 1 with a parked worker never shed")
	}
}

func TestServeStreamVersioning(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, QueueDepth: 8})
	defer srv.Close()

	in := strings.Join([]string{
		// Explicit v:1 and omitted v are the same protocol.
		`{"v":1,"id":"explicit","memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`,
		`{"id":"implicit","memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`,
		// A future version must be rejected up front, fields unread.
		`{"v":2,"id":"future","memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`,
		`{"v":-1,"id":"negative","memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`,
	}, "\n") + "\n"

	var out bytes.Buffer
	serveStream(srv, strings.NewReader(in), &out)
	byID := decodeReports(t, &out)
	if len(byID) != 4 {
		t.Fatalf("got %d reports (%v), want 4", len(byID), byID)
	}

	for _, id := range []string{"explicit", "implicit"} {
		resp := byID[id]
		if resp.Outcome != "solved" {
			t.Errorf("%s: outcome %q, want solved", id, resp.Outcome)
		}
		if resp.ErrorCode != "" {
			t.Errorf("%s: unexpected error_code %q", id, resp.ErrorCode)
		}
	}
	for _, id := range []string{"future", "negative"} {
		resp := byID[id]
		if resp.Outcome != "rejected" || resp.ErrorCode != "unsupported_version" {
			t.Errorf("%s: got outcome %q error_code %q, want rejected/unsupported_version",
				id, resp.Outcome, resp.ErrorCode)
		}
		if resp.Offsets != nil {
			t.Errorf("%s: rejected report must not carry offsets: %+v", id, resp)
		}
		if !strings.Contains(resp.Error, "version") {
			t.Errorf("%s: error text should name the version problem: %q", id, resp.Error)
		}
	}

	// Every report line, including rejections, declares the served version.
	sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
	for sc.Scan() {
		var raw map[string]any
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			t.Fatalf("unparseable report line %q: %v", sc.Text(), err)
		}
		if v, ok := raw["v"].(float64); !ok || v != 1 {
			t.Errorf("report %q: \"v\" = %v, want 1 on every line", sc.Text(), raw["v"])
		}
	}
}

func TestParseClassDepth(t *testing.T) {
	got, err := parseClassDepth("interactive=32,background=4")
	if err != nil {
		t.Fatal(err)
	}
	if got[server.PriorityInteractive] != 32 || got[server.PriorityBackground] != 4 || len(got) != 2 {
		t.Errorf("parsed %v", got)
	}
	if got, err := parseClassDepth(""); err != nil || got != nil {
		t.Errorf("empty spec: got %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{
		"realtime=4",       // unknown class
		"=4",               // empty class (would silently mean batch)
		"interactive=0",    // non-positive depth
		"interactive=-2",   //
		"interactive=four", // not a number
		"interactive",      // missing depth
	} {
		if _, err := parseClassDepth(bad); err == nil {
			t.Errorf("parseClassDepth(%q) accepted, want error", bad)
		}
	}
}

// Priority and tenant flow from the wire into the server, and an unknown
// priority is a typed bad_request — never silently downgraded.
func TestServeStreamPriorityAndTenant(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, QueueDepth: 8})
	defer srv.Close()

	in := strings.Join([]string{
		`{"id":"pi","priority":"interactive","tenant":"team-a","memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`,
		`{"id":"pb","priority":"background","memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`,
		`{"id":"typo","priority":"Interactive","memory":8,"buffers":[{"start":0,"end":4,"size":4}]}`,
	}, "\n") + "\n"
	var out bytes.Buffer
	serveStream(srv, strings.NewReader(in), &out)
	byID := decodeReports(t, &out)

	for _, id := range []string{"pi", "pb"} {
		if resp := byID[id]; resp.Outcome != "solved" {
			t.Errorf("%s: %+v, want solved", id, resp)
		}
	}
	typo := byID["typo"]
	if typo.Outcome != "rejected" || typo.ErrorCode != "bad_request" {
		t.Errorf("typo'd priority: got outcome %q error_code %q, want rejected/bad_request", typo.Outcome, typo.ErrorCode)
	}
	if !strings.Contains(typo.Error, "Interactive") {
		t.Errorf("rejection should echo the unknown class: %q", typo.Error)
	}
}

// A budget that dies in queue maps to failed/deadline_exceeded_in_queue on
// the wire, carrying the queue-wait evidence. The worker is gated so the
// doomed request deterministically waits out its 1ms budget in queue.
func TestHandleExpiredInQueue(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	var entered atomic.Bool
	srv := server.New(server.Config{
		Workers:      1,
		QueueDepth:   4,
		DisableDedup: true,
		CacheSize:    -1,
		Hook: func(point string) bool {
			if point == "server:dequeue" {
				entered.Store(true)
				<-gate
			}
			return false
		},
	})
	// Cleanups run LIFO: the gate must open before Close drains the parked
	// worker.
	t.Cleanup(func() { srv.Close() })
	t.Cleanup(release)

	results := make(chan wireResponse, 2)
	submit := func(req wireRequest) {
		go func() { results <- handle(srv, req) }()
	}
	submit(wireRequest{ID: "occupy", Memory: 8, Buffers: []wireBuffer{{Start: 0, End: 4, Size: 4}}})
	deadline := time.Now().Add(5 * time.Second)
	for !entered.Load() {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the occupying request")
		}
		time.Sleep(time.Millisecond)
	}
	submit(wireRequest{ID: "doomed", TimeoutMS: 1, Memory: 8,
		Buffers: []wireBuffer{{Start: 0, End: 4, Size: 4}, {Start: 4, End: 8, Size: 4}}})
	for srv.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("doomed request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the 1ms budget die in queue
	release()

	byID := map[string]wireResponse{}
	for i := 0; i < 2; i++ {
		resp := <-results
		byID[resp.ID] = resp
	}
	if occupy := byID["occupy"]; occupy.Outcome != "solved" {
		t.Fatalf("occupying request: %+v", occupy)
	}
	doomed := byID["doomed"]
	if doomed.Outcome != "failed" || doomed.ErrorCode != "deadline_exceeded_in_queue" {
		t.Fatalf("doomed report: outcome %q error_code %q, want failed/deadline_exceeded_in_queue (%+v)",
			doomed.Outcome, doomed.ErrorCode, doomed)
	}
	if doomed.QueueWaitMS <= 0 {
		t.Errorf("expired report must carry the queue wait it burned: %+v", doomed)
	}
	if len(doomed.Offsets) != 0 {
		t.Errorf("no solver ran; the report must carry no offsets: %+v", doomed)
	}
}

// A tenant over its bucket maps to shed/tenant_overloaded with a
// retry-after floor, while the daemon stays available to other tenants.
func TestHandleTenantOverloaded(t *testing.T) {
	srv := server.New(server.Config{
		Workers: 2, DisableDedup: true,
		// Cache off: a cache hit is served before admission and would never
		// consult the tenant bucket, hiding the shed this test pins.
		CacheSize: -1,
		Tenant:    server.TenantConfig{RPS: 0.001, Burst: 1},
	})
	defer srv.Close()

	req := func(id, tenant string) wireRequest {
		return wireRequest{ID: id, Tenant: tenant, Memory: 8, Buffers: []wireBuffer{{Start: 0, End: 4, Size: 4}}}
	}
	if resp := handle(srv, req("h1", "hog")); resp.Outcome != "solved" {
		t.Fatalf("first request within burst: %+v", resp)
	}
	resp := handle(srv, req("h2", "hog"))
	if resp.Outcome != "shed" || resp.ErrorCode != "tenant_overloaded" {
		t.Fatalf("over-quota report: outcome %q error_code %q, want shed/tenant_overloaded", resp.Outcome, resp.ErrorCode)
	}
	if resp.RetryAfterMS <= 0 {
		t.Errorf("tenant shed must price the retry: %+v", resp)
	}
	if other := handle(srv, req("h3", "bystander")); other.Outcome != "solved" {
		t.Errorf("bystander tenant throttled: %+v", other)
	}
}
